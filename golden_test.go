package ksan

import (
	"testing"
)

// The compatibility contract of this package: Run and RunAll are now thin
// wrappers over the streaming engine, but on any fixed-seed trace they
// must produce Result{Name, Requests, Routing, Adjust} bit-identical to
// the seed's plain serve loop. seedLoop reproduces that loop verbatim, and
// the hardcoded goldens below pin the absolute values so the wrapper and
// the reference cannot drift together unnoticed.

func seedLoop(net Network, reqs []Request) Result {
	res := Result{Name: net.Name(), Requests: int64(len(reqs))}
	for _, rq := range reqs {
		c := net.Serve(rq.Src, rq.Dst)
		res.Routing += c.Routing
		res.Adjust += c.Adjust
	}
	return res
}

func goldenTrace() Trace { return TemporalWorkload(127, 50_000, 0.75, 42) }

func TestRunGoldenBitIdentical(t *testing.T) {
	tr := goldenTrace()
	golden := map[string]Result{
		"4-ary SplayNet": {Name: "4-ary SplayNet", Requests: 50000, Routing: 123648, Adjust: 82864},
		"3-SplayNet":     {Name: "3-SplayNet", Requests: 50000, Routing: 196784, Adjust: 96462},
		"SplayNet":       {Name: "SplayNet", Requests: 50000, Routing: 144903, Adjust: 107608},
		"full":           {Name: "full", Requests: 50000, Routing: 254331, Adjust: 0},
	}
	makers := map[string]func() Network{
		"4-ary SplayNet": func() Network { n, _ := NewKArySplayNet(127, 4); return n },
		"3-SplayNet":     func() Network { n, _ := NewCentroidSplayNet(127, 2); return n },
		"SplayNet":       func() Network { n, _ := NewSplayNet(127); return n },
		"full":           func() Network { f, _ := FullTree(127, 4); return NewStaticNet("full", f) },
	}
	for name, mk := range makers {
		got := Run(mk(), tr.Reqs)
		if got != golden[name] {
			t.Errorf("%s: Run %+v, golden %+v", name, got, golden[name])
		}
		ref := seedLoop(mk(), tr.Reqs)
		if got != ref {
			t.Errorf("%s: Run %+v diverges from seed loop %+v", name, got, ref)
		}
	}
}

func TestRunAllGoldenBitIdentical(t *testing.T) {
	tr := goldenTrace()
	makers := []func() Network{
		func() Network { n, _ := NewKArySplayNet(127, 4); return n },
		func() Network { n, _ := NewCentroidSplayNet(127, 2); return n },
		func() Network { f, _ := FullTree(127, 4); return NewStaticNet("full", f) },
	}
	got := RunAll(makers, tr.Reqs)
	if len(got) != len(makers) {
		t.Fatalf("got %d results", len(got))
	}
	for i, mk := range makers {
		ref := seedLoop(mk(), tr.Reqs)
		if got[i] != ref {
			t.Errorf("result %d: RunAll %+v diverges from seed loop %+v", i, got[i], ref)
		}
	}
}
