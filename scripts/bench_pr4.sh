#!/usr/bin/env bash
# Regenerates BENCH_PR4.json, the machine-readable perf baseline seeded in
# PR 4: the key offline-optimum, demand-aggregation and serve-path
# benchmarks, as {name -> ns/op, bytes/op, allocs/op} (schema ksan-bench/v1,
# produced by cmd/benchjson). Future PRs rerun this on the same machine and
# diff against the checked-in file.
#
# Usage: scripts/bench_pr4.sh [output.json]
#   BENCHTIME=1x scripts/bench_pr4.sh /tmp/check.json   # CI schema check
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_PR4.json}"
# Time-based by default so the fast serve-path benchmarks get enough
# iterations to mean something; CI sets BENCHTIME=1x for a compile-and-
# schema check only.
benchtime="${BENCHTIME:-1s}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

run() { # run <package> <bench regex>
  go test -run '^$' -bench "$2" -benchmem -benchtime "$benchtime" "$1" >>"$tmp"
}

# The PR 4 trajectory grid: the cubic DP across n × k, the shared-solver
# arity sweep, the exhaustive reference, and the matrix build it shares.
run ./internal/statictree 'BenchmarkOptimal$|BenchmarkSolverSweep$|BenchmarkOptimalExhaustive$|BenchmarkSegmentCosts$'
# The sort-based demand aggregation and its map-based reference.
run ./internal/workload 'BenchmarkDemandFromTrace$|BenchmarkDemandFromTraceMap$'
# The serve-path and facade-level DP benchmarks tracked since PR 2.
run . 'BenchmarkServeKAryTemporal$|BenchmarkServeCentroidTemporal$|BenchmarkServeSplayNetTemporal$|BenchmarkOptimalDPCubic$|BenchmarkTable8OptimalBSTBuild$|BenchmarkRemark10UniformDP$'

go run ./cmd/benchjson <"$tmp" >"$out"
echo "bench_pr4: wrote $out ($(grep -c '"ns_per_op"' "$out") benchmarks at -benchtime=$benchtime)" >&2
