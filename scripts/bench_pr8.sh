#!/usr/bin/env bash
# Regenerates BENCH_PR8.json, the machine-readable perf baseline of the
# concurrent serving-layer PR: the BenchmarkLoad shard grid (one full
# serving run per op — frozen lock-free path at S ∈ {1,2,4,8} and the
# adjusting owner-loop path at S ∈ {1,4}, clients = shards), the serving
# layer's per-request primitives (BenchmarkRoute and the Hist
# Observe/Merge/Percentile set — the enforced contract is zero
# allocations per op on all of them), and the engine's sequential serve
# benchmarks from the repo root, which pin that bolting a serving front-end
# onto policy.Net did not slow the single-threaded serve path down.
# Schema ksan-bench/v1, produced by cmd/benchjson.
#
# Like BENCH_PR6/PR7.json this baseline is enforced, not advisory: CI
# regenerates a candidate at a fixed iteration count and gates it with
# cmd/benchdiff (allocation and bytes contracts cross-machine; ns/op and
# the req/s metric are only meaningful when diffing two runs of this
# script on one machine — in particular the shard-grid wall-clock only
# shows parallel speedup on multi-core hosts).
#
# Usage: scripts/bench_pr8.sh [output.json]
#   BENCHTIME=1x scripts/bench_pr8.sh /tmp/check.json   # CI schema check
#   BENCHTIME=20x scripts/bench_pr8.sh /tmp/cand.json   # CI benchdiff candidate
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_PR8.json}"
benchtime="${BENCHTIME:-1s}"
count="${COUNT:-1}" # repeats; benchjson keeps each benchmark's min
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

run() { # run <package> <bench regex> <benchtime> <count>
  go test -run '^$' -bench "$2" -benchmem -benchtime "$3" -count "$4" "$1" >>"$tmp"
}

# The serving layer: end-to-end shard grid plus per-request primitives.
run ./internal/serve 'BenchmarkLoad|BenchmarkRoute|BenchmarkHist' "$benchtime" "$count"
# The sequential serve paths the front-end is built on: any regression
# here is a serve-layer cost leaking into the single-threaded hot path.
run . 'BenchmarkServeKAryTemporal|BenchmarkServeKAryUniform|BenchmarkServeSplayNetTemporal' "$benchtime" "$count"

go run ./cmd/benchjson <"$tmp" >"$out"
echo "bench_pr8: wrote $out ($(grep -c '"ns_per_op"' "$out") benchmarks at -benchtime=$benchtime)" >&2
