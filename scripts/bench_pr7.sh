#!/usr/bin/env bash
# Regenerates BENCH_PR7.json, the machine-readable perf baseline of the
# streaming trace pipeline PR: the BenchmarkGenerate grid (one full
# streaming pass per op for every generator kind — the enforced contract
# is the constant per-pass allocation profile: generators allocate their
# rng, permutations and samplers once, never per request), the
# materializing BenchmarkCollect counterpart, and the engine's streaming
# serve paths (RunGen over generators on the sequential and batch paths).
# Schema ksan-bench/v1, produced by cmd/benchjson.
#
# Like BENCH_PR6.json this baseline is enforced, not advisory: CI
# regenerates a candidate at a fixed iteration count and gates it with
# cmd/benchdiff (allocation and bytes contracts cross-machine; ns/op is
# only meaningful when diffing two runs of this script on one machine).
#
# Usage: scripts/bench_pr7.sh [output.json]
#   BENCHTIME=1x scripts/bench_pr7.sh /tmp/check.json   # CI schema check
#   BENCHTIME=20x scripts/bench_pr7.sh /tmp/cand.json   # CI benchdiff candidate
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_PR7.json}"
benchtime="${BENCHTIME:-1s}"
count="${COUNT:-1}" # repeats; benchjson keeps each benchmark's min
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

run() { # run <package> <bench regex> <benchtime> <count>
  go test -run '^$' -bench "$2" -benchmem -benchtime "$3" -count "$4" "$1" >>"$tmp"
}

# One full streaming pass per op, every generator kind, plus the
# materializing Collect for the memory-story comparison.
run ./internal/workload 'BenchmarkGenerate|BenchmarkCollect' "$benchtime" "$count"
# The engine's serve paths, which now pull from streams.
run ./internal/engine 'BenchmarkRunGenStream' "$benchtime" "$count"

go run ./cmd/benchjson <"$tmp" >"$out"
echo "bench_pr7: wrote $out ($(grep -c '"ns_per_op"' "$out") benchmarks at -benchtime=$benchtime)" >&2
