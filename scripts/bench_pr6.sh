#!/usr/bin/env bash
# Regenerates BENCH_PR6.json, the machine-readable perf baseline of the
# arena-tree PR: the sequential serve paths (where the index-based
# structure-of-arrays storage and the specialized interleaved-span
# rebuilds land), the BenchmarkPolicyServe trigger×adjuster grid (where
# the reusable static-stretch oracle shows up on the deferred
# compositions), the DP solver grid (whose working set shrinks with the
# arena Build), and the policy churn microbenchmarks. Schema
# ksan-bench/v1, produced by cmd/benchjson.
#
# Unlike its predecessors this baseline is enforced, not advisory: CI
# regenerates a candidate at a fixed iteration count and gates it with
# cmd/benchdiff (allocation and bytes contracts cross-machine; ns/op is
# only meaningful when diffing two runs of this script on one machine).
#
# Usage: scripts/bench_pr6.sh [output.json]
#   BENCHTIME=1x scripts/bench_pr6.sh /tmp/check.json      # CI schema check
#   BENCHTIME=1000x SOLVER_BENCHTIME=1x scripts/bench_pr6.sh /tmp/cand.json
#     # CI benchdiff candidate: serve paths warm at 1000 iterations, the
#     # expensive DP grid at one (its per-op allocations don't amortize).
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_PR6.json}"
benchtime="${BENCHTIME:-1s}"
solver_benchtime="${SOLVER_BENCHTIME:-$benchtime}"
count="${COUNT:-1}" # serve-path repeats; benchjson keeps each benchmark's min
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

run() { # run <package> <bench regex> <benchtime> <count>
  go test -run '^$' -bench "$2" -benchmem -benchtime "$3" -count "$4" "$1" >>"$tmp"
}

# The sequential serve paths and the policy plane over them.
run . 'BenchmarkPolicyServe|BenchmarkServeKAryTemporal$|BenchmarkServeCentroidTemporal$|BenchmarkServeSplayNetTemporal$' "$benchtime" "$count"
# The sort-based link churn against its map-based reference.
run ./internal/policy 'BenchmarkLinkChurn' "$benchtime" "$count"
# The DP solver grid and the shared-scratch sweep (arena Build shrinks
# both working sets).
run ./internal/statictree 'BenchmarkOptimal$|BenchmarkSolverSweep' "$solver_benchtime" 1

go run ./cmd/benchjson <"$tmp" >"$out"
echo "bench_pr6: wrote $out ($(grep -c '"ns_per_op"' "$out") benchmarks at -benchtime=$benchtime, solver at $solver_benchtime)" >&2
