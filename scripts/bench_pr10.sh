#!/usr/bin/env bash
# Regenerates BENCH_PR10.json, the machine-readable perf baseline of the
# routing-kernel PR. It is a strict superset of the PR 9 fault/serving
# baseline — the shard grid, per-request primitives, fault machinery and
# the sequential flagship serve keys — plus the kernel layer the serve
# hot path now dispatches through:
#
#   BenchmarkServeKAryGrid   the serve path across the arity axis
#                            (uniform and temporal, k ∈ {2,5,8,16,32}) —
#                            the grid where the per-node threshold search
#                            grows from noise into the dominant term
#   BenchmarkSlotFor         the kernel microbenchmark grid: every kernel
#                            family (scalar scan, unrolled, SWAR, bisect,
#                            deinterleaved-plane variants) × the threshold
#                            counts served arities produce (node spans and
#                            d=2/d=3 rebuild merges) — the evidence behind
#                            kernelForCount's three regimes (DESIGN.md §13)
#   BenchmarkMov             scalar loop vs copy()/memmove on the span
#                            lengths rebuilds move; sets movCopyMin
#
# The superset shape is the point: CI regenerates one candidate from this
# script and benchdiffs it against BOTH BENCH_PR9.json (the serving layer
# and disarmed/armed fault paths must keep their exact allocation
# profiles — kernel dispatch is selected once at construction and must
# cost nothing per request) and BENCH_PR10.json (the kernel grid and the
# widened serve grid stay allocation-free). Schema ksan-bench/v1 via
# cmd/benchjson; ns/op is only meaningful when diffing two runs on one
# machine.
#
# Usage: scripts/bench_pr10.sh [output.json]
#   BENCHTIME=1x scripts/bench_pr10.sh /tmp/check.json   # CI schema check
#   BENCHTIME=2x scripts/bench_pr10.sh /tmp/cand.json    # CI benchdiff candidate
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_PR10.json}"
benchtime="${BENCHTIME:-1s}"
count="${COUNT:-1}" # repeats; benchjson keeps each benchmark's min
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

run() { # run <package> <bench regex> <benchtime> <count>
  go test -run '^$' -bench "$2" -benchmem -benchtime "$3" -count "$4" "$1" >>"$tmp"
}

# The serving layer: the PR 8 grid and primitives, plus the fault path —
# unchanged from bench_pr9.sh so the candidate diffs cleanly against it.
run ./internal/serve 'BenchmarkLoad|BenchmarkFaultedLoad|BenchmarkRoute|BenchmarkHist|BenchmarkCheckpoint|BenchmarkRecovery' "$benchtime" "$count"
# The sequential serve paths: the long-lived flagship keys plus the arity
# grid the kernels were built for (k ∈ {2,5,8,16,32} on both families).
run . 'BenchmarkServeKAryTemporal|BenchmarkServeKAryUniform|BenchmarkServeSplayNetTemporal|BenchmarkServeKAryGrid' "$benchtime" "$count"
# The kernel layer itself: the per-fragment microbenchmark grid and the
# span-move crossover behind movCopyMin.
run ./internal/core 'BenchmarkSlotFor|BenchmarkMov' "$benchtime" "$count"

go run ./cmd/benchjson <"$tmp" >"$out"
echo "bench_pr10: wrote $out ($(grep -c '"ns_per_op"' "$out") benchmarks at -benchtime=$benchtime)" >&2
