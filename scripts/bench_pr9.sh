#!/usr/bin/env bash
# Regenerates BENCH_PR9.json, the machine-readable perf baseline of the
# fault-injection/recovery PR. It is a strict superset of the PR 8
# serving-layer baseline — the BenchmarkLoad shard grid, the per-request
# primitives (Route, Hist) and the sequential engine serve benchmarks —
# plus the robustness machinery:
#
#   BenchmarkCheckpoint      one periodic snapshot into a reused
#                            checkpoint (enforced contract: 0 allocs/op —
#                            steady-state checkpoints reuse their arrays)
#   BenchmarkRecovery        restore + full-interval replay, the worst-
#                            case crash recovery (allocates by design:
#                            once per recovery, never per request)
#   BenchmarkFaultedLoad     end-to-end runs with a plan armed: "idle"
#                            (checkpointing only) and "crash-recover"
#                            (one lossless crash per shard)
#
# The superset shape is the point: CI regenerates one candidate from this
# script and benchdiffs it against BOTH BENCH_PR8.json (the disarmed
# serving path must keep its exact PR 8 allocation profile — zero
# overhead when no fault schedule is configured) and BENCH_PR9.json (the
# fault-path contracts above). Schema ksan-bench/v1 via cmd/benchjson;
# ns/op is only meaningful when diffing two runs on one machine.
#
# Usage: scripts/bench_pr9.sh [output.json]
#   BENCHTIME=1x scripts/bench_pr9.sh /tmp/check.json   # CI schema check
#   BENCHTIME=2x scripts/bench_pr9.sh /tmp/cand.json    # CI benchdiff candidate
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_PR9.json}"
benchtime="${BENCHTIME:-1s}"
count="${COUNT:-1}" # repeats; benchjson keeps each benchmark's min
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

run() { # run <package> <bench regex> <benchtime> <count>
  go test -run '^$' -bench "$2" -benchmem -benchtime "$3" -count "$4" "$1" >>"$tmp"
}

# The serving layer: the PR 8 grid and primitives, plus the fault path.
run ./internal/serve 'BenchmarkLoad|BenchmarkFaultedLoad|BenchmarkRoute|BenchmarkHist|BenchmarkCheckpoint|BenchmarkRecovery' "$benchtime" "$count"
# The sequential serve paths the front-end is built on: any regression
# here is a serve-layer cost leaking into the single-threaded hot path.
run . 'BenchmarkServeKAryTemporal|BenchmarkServeKAryUniform|BenchmarkServeSplayNetTemporal' "$benchtime" "$count"

go run ./cmd/benchjson <"$tmp" >"$out"
echo "bench_pr9: wrote $out ($(grep -c '"ns_per_op"' "$out") benchmarks at -benchtime=$benchtime)" >&2
