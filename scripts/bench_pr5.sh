#!/usr/bin/env bash
# Regenerates BENCH_PR5.json, the machine-readable perf baseline of the
# policy-layer PR: the BenchmarkPolicyServe trigger×adjuster grid (where
# the static-stretch Euler-tour/RMQ oracle shows up on the deferred
# compositions), the serve-path benchmarks tracked since PR 2, and the
# policy-internal churn/window microbenchmarks. Schema ksan-bench/v1,
# produced by cmd/benchjson; future PRs rerun this on the same machine
# and diff against the checked-in file (BENCH_PR4.json stays as the
# pre-policy baseline).
#
# Usage: scripts/bench_pr5.sh [output.json]
#   BENCHTIME=1x scripts/bench_pr5.sh /tmp/check.json   # CI schema check
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_PR5.json}"
benchtime="${BENCHTIME:-1s}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

run() { # run <package> <bench regex>
  go test -run '^$' -bench "$2" -benchmem -benchtime "$benchtime" "$1" >>"$tmp"
}

# The policy plane and the sequential serve paths it generalizes.
run . 'BenchmarkPolicyServe|BenchmarkServeKAryTemporal$|BenchmarkServeCentroidTemporal$|BenchmarkServeSplayNetTemporal$'
# The sort-based link churn against its map-based reference.
run ./internal/policy 'BenchmarkLinkChurn'

go run ./cmd/benchjson <"$tmp" >"$out"
echo "bench_pr5: wrote $out ($(grep -c '"ns_per_op"' "$out") benchmarks at -benchtime=$benchtime)" >&2
