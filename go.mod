module github.com/ksan-net/ksan

go 1.23
