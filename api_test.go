package ksan

import (
	"bytes"
	"testing"
)

func TestPublicAPIQuickstart(t *testing.T) {
	// The README quickstart, as a test.
	net, err := NewKArySplayNet(64, 4)
	if err != nil {
		t.Fatal(err)
	}
	tr := TemporalWorkload(64, 5000, 0.75, 1)
	res := Run(net, tr.Reqs)
	if res.Requests != 5000 || res.Routing <= 0 {
		t.Fatalf("unexpected result %+v", res)
	}
	if err := net.Tree().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIStaticPlanning(t *testing.T) {
	tr := ProjecToRWorkload(40, 5000, 2)
	d := DemandFromTrace(tr)
	opt, optCost, err := OptimalStaticTree(d, 3)
	if err != nil {
		t.Fatal(err)
	}
	full, err := FullTree(40, 3)
	if err != nil {
		t.Fatal(err)
	}
	if optCost > TotalDistance(full, d) {
		t.Error("optimal static tree worse than the oblivious baseline")
	}
	res := Run(NewStaticNet("optimal", opt), tr.Reqs)
	if res.Routing != optCost {
		t.Errorf("serving the trace on the optimal tree cost %d, demand says %d", res.Routing, optCost)
	}
	if res.Adjust != 0 {
		t.Error("static network reported adjustment cost")
	}
}

func TestPublicAPINetworksImplementInterface(t *testing.T) {
	makers := []func() Network{
		func() Network { n, _ := NewKArySplayNet(30, 3); return n },
		func() Network { n, _ := NewCentroidSplayNet(30, 2); return n },
		func() Network { n, _ := NewSplayNet(30); return n },
		func() Network { tr, _ := FullTree(30, 2); return NewStaticNet("full", tr) },
	}
	tr := UniformWorkload(30, 2000, 3)
	results := RunAll(makers, tr.Reqs)
	if len(results) != 4 {
		t.Fatalf("got %d results", len(results))
	}
	for _, r := range results {
		if r.Requests != 2000 || r.Routing <= 0 {
			t.Errorf("result %+v implausible", r)
		}
	}
	if results[3].Adjust != 0 {
		t.Error("static net adjusted")
	}
}

func TestPublicAPITraceRoundTrip(t *testing.T) {
	tr := HPCWorkload(50, 300, 4)
	var buf bytes.Buffer
	if err := WriteTraceCSV(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTraceCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tr.Len() || back.N != tr.N {
		t.Fatal("round trip changed the trace")
	}
}

func TestPublicAPICentroidMatchesOptimal(t *testing.T) {
	for _, n := range []int{17, 63, 200} {
		cen, err := CentroidTree(n, 3)
		if err != nil {
			t.Fatal(err)
		}
		_, opt, err := OptimalUniformTree(n, 3)
		if err != nil {
			t.Fatal(err)
		}
		if TotalDistanceUniform(cen) != opt {
			t.Errorf("n=%d: centroid not uniform-optimal", n)
		}
	}
}

func TestPublicAPIStatsAndBound(t *testing.T) {
	tr := TemporalWorkload(100, 20000, 0.5, 5)
	st := MeasureTrace(tr)
	if st.RepeatFraction < 0.45 || st.RepeatFraction > 0.55 {
		t.Errorf("repeat fraction %.3f", st.RepeatFraction)
	}
	if EntropyBound(tr) <= 0 {
		t.Error("entropy bound not positive")
	}
}

func TestPublicAPIWorstCaseStart(t *testing.T) {
	path, err := NewPathTree(40, 3)
	if err != nil {
		t.Fatal(err)
	}
	net := NewKArySplayNetFromTree(path)
	tr := UniformWorkload(40, 2000, 6)
	Run(net, tr.Reqs)
	if err := net.Tree().Validate(); err != nil {
		t.Fatal(err)
	}
}
