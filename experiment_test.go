package ksan

import (
	"bytes"
	"context"
	"os"
	"reflect"
	"strings"
	"testing"
)

// The serialization contract of the declarative API: testdata/
// experiment.json is the canonical golden document (also run by CI through
// ksanbench -experiment and shown in EXPERIMENTS.md). Decoding it must
// yield exactly the struct below, and re-encoding must reproduce the file
// byte for byte.

func goldenExperiment() *Experiment {
	return &Experiment{
		Name: "quick-kary-sweep",
		Networks: []NetworkDef{
			{Kind: "kary", K: 2},
			{Kind: "kary", K: 4},
			{Kind: "centroid", K: 2},
			{Kind: "splaynet"},
			{Kind: "full", K: 4},
			// The policy layer's composability, file-addressable: lazy
			// k-ary splay (adjust by splaying, but only once 2000 units of
			// routing cost accumulate).
			{Kind: "kary", K: 4, Policy: &PolicyDef{Trigger: "alpha", Alpha: 2000, Adjuster: "splay"}},
		},
		Traces: []TraceDef{
			{Kind: "temporal", N: 127, M: 20000, P: 0.75, Seed: 42},
			{Kind: "uniform", N: 127, M: 20000, Seed: 1},
			{Kind: "zipf", N: 127, M: 20000, S: 1.2, Seed: 7},
			// The YCSB-style hotspot kind: 10% of the nodes draw 90% of the
			// endpoint traffic.
			{Kind: "hotspot", N: 127, M: 20000, Hot: 0.1, HotOpn: 0.9, Seed: 9},
			// A phased drifting scenario declared entirely in data: uniform
			// background, a flash crowd concentrating on a 5% hot set, then
			// back to uniform.
			{Kind: "phased", Name: "flash-crowd", Phases: []TraceDef{
				{Kind: "uniform", N: 127, M: 8000, Seed: 1},
				{Kind: "hotspot", N: 127, M: 4000, Hot: 0.05, HotOpn: 0.95, Seed: 9},
				{Kind: "uniform", N: 127, M: 8000, Seed: 2},
			}},
		},
		Engine: EngineDef{Window: 5000},
	}
}

func TestExperimentGoldenDocument(t *testing.T) {
	raw, err := os.ReadFile("testdata/experiment.json")
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeExperiment(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	want := goldenExperiment()
	if !reflect.DeepEqual(decoded, want) {
		t.Fatalf("decoded document diverges from the golden struct:\n%+v\nvs\n%+v", decoded, want)
	}
	var buf bytes.Buffer
	if err := want.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != string(raw) {
		t.Fatalf("Encode does not reproduce testdata/experiment.json byte for byte:\n%s\nvs\n%s", buf.String(), raw)
	}
}

func TestExperimentFileMatchesHandWrittenGrid(t *testing.T) {
	// The acceptance contract: a grid defined purely in the JSON file must
	// produce the same cells as the equivalent hand-written closure grid.
	// The golden trace (127 nodes, temporal 0.75, seed 42) appears in both,
	// so this also ties the file-driven path to golden_test.go's values.
	f, err := os.Open("testdata/experiment.json")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	x, err := DecodeExperiment(f)
	if err != nil {
		t.Fatal(err)
	}
	x.Traces = x.Traces[:1]     // the golden trace only
	x.Traces[0].M = 50_000      // golden_test.go's length
	x.Networks = x.Networks[:2] // 2-ary and 4-ary SplayNet
	x.Engine = EngineDef{}      // plain aggregates
	nets, traces, opts, err := x.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	grid, err := RunGrid(context.Background(), nets, traces, opts...)
	if err != nil {
		t.Fatal(err)
	}
	tr := goldenTrace()
	for i, k := range []int{2, 4} {
		net, err := NewKArySplayNet(127, k)
		if err != nil {
			t.Fatal(err)
		}
		want := Run(net, tr.Reqs)
		if grid[i][0].Result != want {
			t.Errorf("file-driven %d-ary cell %+v != hand-written %+v", k, grid[i][0].Result, want)
		}
	}
	// And the hardcoded golden value, so file-driven results cannot drift
	// together with the wrapper.
	if got := grid[1][0].Result; got.Routing != 123648 || got.Adjust != 82864 {
		t.Errorf("4-ary golden drift: %+v", got)
	}
}

func TestStreamCollectsToRunGrid(t *testing.T) {
	// Stream cells merged by (I, J) must equal RunGrid bit for bit, across
	// worker counts, through the public API.
	nets := []NetworkSpec{
		{Name: "4-ary", Make: func(n int) Network { net, _ := NewKArySplayNet(n, 4); return net }},
		{Name: "splay", Make: func(n int) Network { net, _ := NewSplayNet(n); return net }},
	}
	traces := []TraceSpec{
		TraceSpecOf(TemporalWorkload(64, 8000, 0.6, 3)),
		TraceSpecOf(UniformWorkload(64, 6000, 4)),
	}
	ref, err := RunGrid(context.Background(), nets, traces, WithWindow(1000))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		got := make([][]EngineResult, len(nets))
		for i := range got {
			got[i] = make([]EngineResult, len(traces))
		}
		n := 0
		for c, err := range Stream(context.Background(), nets, traces, WithWindow(1000), WithWorkers(workers)) {
			if err != nil {
				t.Fatal(err)
			}
			got[c.I][c.J] = c.Result
			n++
		}
		if n != len(nets)*len(traces) {
			t.Fatalf("stream yielded %d cells", n)
		}
		for i := range ref {
			for j := range ref[i] {
				if !reflect.DeepEqual(got[i][j].Stripped(), ref[i][j].Stripped()) {
					t.Errorf("workers=%d cell (%d,%d): stream %+v != grid %+v",
						workers, i, j, got[i][j].Stripped(), ref[i][j].Stripped())
				}
			}
		}
	}
}

func TestRegisterDuplicateKindPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("duplicate registration did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "already registered") {
			t.Fatalf("panic %v lacks a clear message", r)
		}
	}()
	RegisterNetwork("kary", func(NetworkDef) (NetworkSpec, error) { return NetworkSpec{}, nil })
}

func TestUnknownKindRejectedAtDecode(t *testing.T) {
	in := `{"networks":[{"kind":"quantum"}],"traces":[{"kind":"uniform","n":8,"m":10}]}`
	_, err := DecodeExperiment(strings.NewReader(in))
	if err == nil {
		t.Fatal("unknown network kind decoded")
	}
	if !strings.Contains(err.Error(), "quantum") || !strings.Contains(err.Error(), "kary") {
		t.Errorf("error %q should name the unknown kind and list registered ones", err)
	}
}

func TestPublicKindListings(t *testing.T) {
	nk, tk := NetworkKinds(), TraceKinds()
	for _, want := range []string{"kary", "centroid", "splaynet", "lazy", "full"} {
		found := false
		for _, k := range nk {
			if k == want {
				found = true
			}
		}
		if !found {
			t.Errorf("network kinds %v missing %q", nk, want)
		}
	}
	for _, want := range []string{"uniform", "temporal", "csv", "hotspot", "exponential", "latest", "sequential", "histogram", "phased"} {
		found := false
		for _, k := range tk {
			if k == want {
				found = true
			}
		}
		if !found {
			t.Errorf("trace kinds %v missing %q", tk, want)
		}
	}
}
