// Centroidviz renders the structural figures of the paper in ASCII:
//
//   - Figure 2/9: the static centroid (k+1)-degree tree after re-rooting
//     at a leaf (a centroid k-ary search tree),
//   - Figure 7: the 3-SplayNet layout (k=2: c1 with one small SplayNet and
//     c2; c2 with two SplayNets),
//   - Figure 8: the general (k+1)-SplayNet layout.
//
// Node lines show "id r=[routing array]"; fractional routing elements are
// the padding cuts that keep every routing array at exactly k−1 entries.
package main

import (
	"fmt"
	"log"

	"github.com/ksan-net/ksan"
)

func main() {
	fmt.Println("=== Figure 2/9: centroid k-ary search tree (n=25, k=3) ===")
	cen, err := ksan.CentroidTree(25, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(cen.Render())
	_, opt, err := ksan.OptimalUniformTree(25, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uniform total distance: %d (DP optimum: %d — Remark 10)\n\n",
		ksan.TotalDistanceUniform(cen), opt)

	fmt.Println("=== Figure 7: 3-SplayNet structure (n=23, k=2) ===")
	three, err := ksan.NewCentroidSplayNet(23, 2)
	if err != nil {
		log.Fatal(err)
	}
	c1, c2 := three.Centroids()
	fmt.Printf("c1=%d (root), c2=%d; subtrees stay intact while self-adjusting\n", c1, c2)
	fmt.Println(three.Tree().Render())

	fmt.Println("=== Figure 8: (k+1)-SplayNet structure (n=33, k=3) ===")
	gen, err := ksan.NewCentroidSplayNet(33, 3)
	if err != nil {
		log.Fatal(err)
	}
	c1, c2 = gen.Centroids()
	fmt.Printf("c1=%d (root, k-1 small subtrees + c2), c2=%d (k subtrees)\n", c1, c2)
	fmt.Println(gen.Tree().Render())

	fmt.Println("serving a few cross-subtree requests; the centroids never move:")
	for _, rq := range []ksan.Request{{Src: 1, Dst: 33}, {Src: 2, Dst: 20}, {Src: 1, Dst: 33}} {
		cost := gen.Serve(rq.Src, rq.Dst)
		fmt.Printf("  serve (%d,%d): routing %d, rotations %d\n", rq.Src, rq.Dst, cost.Routing, cost.Adjust)
	}
	fmt.Println()
	fmt.Println(gen.Tree().Render())
}
