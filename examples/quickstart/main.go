// Quickstart: build a small k-ary SplayNet, watch it self-adjust, and
// verify that the search property (and hence greedy local routing) holds
// throughout. This walks the node model of Figure 1 and the rotations of
// Figures 3–6 on a 15-node network.
//
// The second half demonstrates the declarative experiment flow: an
// Experiment document (networks × traces as data, not closures) is
// encoded to a JSON file, decoded back — exactly what `ksanbench
// -experiment file.json` does — and streamed cell by cell.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"github.com/ksan-net/ksan"
)

func main() {
	const n, k = 15, 3
	net, err := ksan.NewKArySplayNet(n, k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial %d-ary search tree network on %d nodes\n", k, n)
	fmt.Println("(each line: node id, r=[routing array] in id space)")
	fmt.Println(net.Tree().Render())

	requests := []ksan.Request{{Src: 1, Dst: 15}, {Src: 1, Dst: 15}, {Src: 7, Dst: 14}}
	for _, rq := range requests {
		cost := net.Serve(rq.Src, rq.Dst)
		fmt.Printf("serve (%d,%d): routed %d hops, %d rotations\n",
			rq.Src, rq.Dst, cost.Routing, cost.Adjust)
	}
	fmt.Println("\nafter self-adjustment (1 and 15 now adjacent):")
	fmt.Println(net.Tree().Render())

	if err := net.Tree().Validate(); err != nil {
		log.Fatalf("search property violated: %v", err)
	}
	fmt.Println("search property intact: every id reachable by greedy routing")

	// Greedy local routing still works after reconfiguration: route a
	// packet hop by hop from 2 to 13 using only routing arrays.
	path, err := net.Tree().SearchFromRoot(13)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("greedy search path from root to 13: %v\n", path)

	declarative()
}

// declarative runs the same kind of comparison as a serializable
// experiment document: written to a file, decoded back, and streamed.
func declarative() {
	x := &ksan.Experiment{
		Name: "quickstart",
		Networks: []ksan.NetworkDef{
			{Kind: "kary", K: 3},
			{Kind: "splaynet"},
			{Kind: "full", K: 3},
		},
		Traces: []ksan.TraceDef{
			{Kind: "temporal", N: 63, M: 20_000, P: 0.75, Seed: 1},
			{Kind: "zipf", N: 63, M: 20_000, S: 1.2, Seed: 1},
		},
	}

	// Experiments are data: this file is what ksanbench -experiment runs.
	file := filepath.Join(os.TempDir(), "quickstart-experiment.json")
	var buf bytes.Buffer
	if err := x.Encode(&buf); err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(file, buf.Bytes(), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexperiment document written to %s:\n%s", file, buf.String())

	f, err := os.Open(file)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	back, err := ksan.DecodeExperiment(f)
	if err != nil {
		log.Fatal(err)
	}
	nets, traces, opts, err := back.Resolve()
	if err != nil {
		log.Fatal(err)
	}

	// Stream delivers cells as they finish; (I, J) index the grid.
	fmt.Println("streamed results (completion order):")
	for c, err := range ksan.Stream(context.Background(), nets, traces, opts...) {
		if err != nil {
			log.Fatal(err)
		}
		r := c.Result
		fmt.Printf("  cell (%d,%d) %-14s on %-13s avg routing %.3f, p99 %.0f\n",
			c.I, c.J, r.Name, r.Trace, r.AvgRouting(), r.P99Routing)
	}
}
