// Quickstart: build a small k-ary SplayNet, watch it self-adjust, and
// verify that the search property (and hence greedy local routing) holds
// throughout. This walks the node model of Figure 1 and the rotations of
// Figures 3–6 on a 15-node network.
package main

import (
	"fmt"
	"log"

	"github.com/ksan-net/ksan"
)

func main() {
	const n, k = 15, 3
	net, err := ksan.NewKArySplayNet(n, k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial %d-ary search tree network on %d nodes\n", k, n)
	fmt.Println("(each line: node id, r=[routing array] in id space)")
	fmt.Println(net.Tree().Render())

	requests := []ksan.Request{{Src: 1, Dst: 15}, {Src: 1, Dst: 15}, {Src: 7, Dst: 14}}
	for _, rq := range requests {
		cost := net.Serve(rq.Src, rq.Dst)
		fmt.Printf("serve (%d,%d): routed %d hops, %d rotations\n",
			rq.Src, rq.Dst, cost.Routing, cost.Adjust)
	}
	fmt.Println("\nafter self-adjustment (1 and 15 now adjacent):")
	fmt.Println(net.Tree().Render())

	if err := net.Tree().Validate(); err != nil {
		log.Fatalf("search property violated: %v", err)
	}
	fmt.Println("search property intact: every id reachable by greedy routing")

	// Greedy local routing still works after reconfiguration: route a
	// packet hop by hop from 2 to 13 using only routing arrays.
	path, err := net.Tree().SearchFromRoot(13)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("greedy search path from root to 13: %v\n", path)
}
