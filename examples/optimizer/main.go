// Offline topology planning: given a measured demand matrix, compute the
// optimal static routing-based k-ary search tree (the O(n³·k) dynamic
// program of Section 3.1) and compare it against the oblivious full tree,
// the centroid tree, and the fast weight-balanced approximation.
//
// This is the workflow of a periodically reconfiguring operator: collect a
// demand snapshot, solve for the best static topology, deploy it until the
// next epoch (the partially reactive regime the paper describes).
package main

import (
	"fmt"
	"log"
	"sort"

	"github.com/ksan-net/ksan"
)

func main() {
	const (
		nodes    = 60
		requests = 50_000
		k        = 3
	)
	trace := ksan.ProjecToRWorkload(nodes, requests, 7)
	demand := ksan.DemandFromTrace(trace)
	fmt.Printf("demand snapshot: %d nodes, %d requests, %d distinct pairs\n\n",
		nodes, requests, len(demand.Pairs))

	// One solver answers every arity for this demand: the boundary-traffic
	// matrix and DP scratch are built once, so sweeping k to pick the best
	// radix costs far less than independent solves.
	solver, err := ksan.NewOptimalSolver(demand)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("optimal static tree cost by arity (one shared solver):")
	for _, kk := range []int{2, 3, 4, 5} {
		_, c, err := solver.Optimal(kk)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  k=%d  %10d\n", kk, c)
	}
	fmt.Println()

	opt, optCost, err := solver.Optimal(k)
	if err != nil {
		log.Fatal(err)
	}
	full, err := ksan.FullTree(nodes, k)
	if err != nil {
		log.Fatal(err)
	}
	cen, err := ksan.CentroidTree(nodes, k)
	if err != nil {
		log.Fatal(err)
	}
	wb, wbCost, err := ksan.WeightBalancedTree(demand, k)
	if err != nil {
		log.Fatal(err)
	}

	fullCost := ksan.TotalDistance(full, demand)
	cenCost := ksan.TotalDistance(cen, demand)
	fmt.Println("total distance under the snapshot demand (lower is better):")
	fmt.Printf("  optimal (DP, Theorem 2)      %10d  1.00x\n", optCost)
	fmt.Printf("  weight-balanced (approx)     %10d  %.2fx\n", wbCost, float64(wbCost)/float64(optCost))
	fmt.Printf("  centroid tree (Theorem 8)    %10d  %.2fx\n", cenCost, float64(cenCost)/float64(optCost))
	fmt.Printf("  full %d-ary tree (oblivious)  %10d  %.2fx\n", k, fullCost, float64(fullCost)/float64(optCost))

	_ = wb
	fmt.Println("\nhot pairs and their distance in the optimal topology:")
	pairs := append([]ksanPair(nil), toPairs(demand)...)
	sortByCountDesc(pairs)
	for i := 0; i < 5 && i < len(pairs); i++ {
		pc := pairs[i]
		fmt.Printf("  %3d → %-3d  weight %6d  distance %d\n",
			pc.src, pc.dst, pc.count, opt.DistanceID(pc.src, pc.dst))
	}
}

type ksanPair struct {
	src, dst int
	count    int64
}

func toPairs(d *ksan.Demand) []ksanPair {
	out := make([]ksanPair, len(d.Pairs))
	for i, pc := range d.Pairs {
		out[i] = ksanPair{pc.Src, pc.Dst, pc.Count}
	}
	return out
}

func sortByCountDesc(p []ksanPair) {
	sort.Slice(p, func(i, j int) bool { return p[i].count > p[j].count })
}
