// Policies: every self-adjusting network in this library factors into
// "route on the current tree, then decide when and how to restructure" —
// a Trigger × Adjuster composition over a topology. This example walks
// the policy plane on one workload:
//
//   - the canonical corners (the fully reactive k-ary SplayNet, the lazy
//     rebuild net, the frozen balanced tree) recovered as compositions;
//   - the points in between that the decoupling makes free — lazy k-ary
//     splay, periodic semi-splay, frozen-after-warmup;
//   - the same compositions as data: a NetworkDef with a policy field,
//     ready for `ksanbench -experiment file.json`.
package main

import (
	"bytes"
	"fmt"
	"log"

	"github.com/ksan-net/ksan"
)

func main() {
	const n, k = 255, 4
	tr := ksan.TemporalWorkload(n, 30_000, 0.75, 7)
	fmt.Printf("workload: %s (%d requests over %d nodes)\n\n", tr.Name, tr.Len(), n)

	compositions := []struct {
		note string
		trig ksan.PolicyTrigger
		adj  ksan.PolicyAdjuster
	}{
		{"the k-ary SplayNet", ksan.TriggerAlways(), ksan.AdjusterSplay()},
		{"rotation-repertoire ablation", ksan.TriggerAlways(), ksan.AdjusterSemiSplay()},
		{"periodic semi-splay", ksan.TriggerEveryM(4), ksan.AdjusterSemiSplay()},
		{"lazy k-ary splay", ksan.TriggerAlpha(60_000), ksan.AdjusterSplay()},
		{"the lazy net", ksan.TriggerAlpha(60_000), ksan.AdjusterRebuild("weight-balanced", ksan.WeightBalancedTree)},
		{"frozen after warmup", ksan.TriggerFirst(3_000), ksan.AdjusterSplay()},
		{"static balanced tree", ksan.TriggerNever(), ksan.AdjusterNone()},
	}
	fmt.Printf("%-28s %-28s %10s %10s %10s\n", "composition", "note", "routing", "adjust", "total")
	for _, c := range compositions {
		tree, err := ksan.NewBalancedTree(n, k)
		if err != nil {
			log.Fatal(err)
		}
		label := fmt.Sprintf("%s×%s", c.trig.Name(), c.adj.Name())
		net, err := ksan.NewPolicyNet(label, tree, c.trig, c.adj)
		if err != nil {
			log.Fatal(err)
		}
		res := ksan.Run(net, tr.Reqs)
		fmt.Printf("%-28s %-28s %10d %10d %10d\n", label, c.note, res.Routing, res.Adjust, res.Total())
	}

	// The same plane, file-addressable: kind picks the topology family,
	// the policy field picks the composition.
	x := &ksan.Experiment{
		Name: "policy-plane",
		Networks: []ksan.NetworkDef{
			{Kind: "kary", K: k}, // canonical: always × splay
			{Kind: "kary", K: k, Policy: &ksan.PolicyDef{Trigger: "alpha", Alpha: 60_000, Adjuster: "splay"}},
			{Kind: "kary", K: k, Policy: &ksan.PolicyDef{Trigger: "first", M: 3_000, Adjuster: "splay"}},
			{Kind: "centroid-tree", K: k}, // canonical: never × none (frozen, batch-served)
		},
		Traces: []ksan.TraceDef{{Kind: "temporal", N: n, M: 30_000, P: 0.75, Seed: 7}},
	}
	var buf bytes.Buffer
	if err := x.Encode(&buf); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nas an experiment document (ksanbench -experiment):\n%s", buf.String())
}
