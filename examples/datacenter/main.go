// Datacenter scenario: a day of rack-to-rack traffic with bursty temporal
// locality, served by four network designs side by side — the workload the
// paper's introduction motivates (reconfigurable optical topologies
// adapting to skewed, bursty datacenter demand).
//
// The example compares total service cost (routing + reconfiguration) of
// the self-adjusting designs against static trees, and prints the trace's
// complexity statistics that explain the outcome.
package main

import (
	"fmt"
	"log"

	"github.com/ksan-net/ksan"
)

func main() {
	const (
		racks    = 500
		requests = 200_000
		k        = 4
	)
	// Bursty rack-to-rack traffic: 75% of requests repeat the previous one.
	trace := ksan.TemporalWorkload(racks, requests, 0.75, 42)
	st := ksan.MeasureTrace(trace)
	fmt.Printf("trace: %d racks, %d requests, repeat fraction %.2f, %d distinct pairs\n\n",
		racks, requests, st.RepeatFraction, st.DistinctPairs)

	demand := ksan.DemandFromTrace(trace)
	makers := []func() ksan.Network{
		func() ksan.Network {
			n, err := ksan.NewKArySplayNet(racks, k)
			if err != nil {
				log.Fatal(err)
			}
			return n
		},
		func() ksan.Network {
			n, err := ksan.NewCentroidSplayNet(racks, k)
			if err != nil {
				log.Fatal(err)
			}
			return n
		},
		func() ksan.Network {
			n, err := ksan.NewSplayNet(racks)
			if err != nil {
				log.Fatal(err)
			}
			return n
		},
		func() ksan.Network {
			t, err := ksan.FullTree(racks, k)
			if err != nil {
				log.Fatal(err)
			}
			return ksan.NewStaticNet(fmt.Sprintf("static full %d-ary tree", k), t)
		},
		func() ksan.Network {
			t, _, err := ksan.WeightBalancedTree(demand, k)
			if err != nil {
				log.Fatal(err)
			}
			return ksan.NewStaticNet("static demand-aware tree", t)
		},
	}
	fmt.Println("serving the trace on all designs (concurrently):")
	results := ksan.RunAll(makers, trace.Reqs)
	for _, r := range results {
		fmt.Printf("  %-28s routing %8.3f  adjustment %8.3f  total %8.3f  (per request)\n",
			r.Name, r.AvgRouting(), float64(r.Adjust)/float64(r.Requests), r.AvgTotal())
	}

	fmt.Println("\nwith 75% burst repetition the self-adjusting networks amortize")
	fmt.Println("their reconfigurations: repeated requests cost one hop, which no")
	fmt.Println("static tree can match (compare the totals above).")
}
