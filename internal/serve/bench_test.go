package serve

import (
	"context"
	"fmt"
	"testing"

	"github.com/ksan-net/ksan/internal/workload"
)

// BenchmarkLoad measures end-to-end serving throughput over the shard
// grid the EXPERIMENTS.md table reports (clients = shards, frozen
// network, cheap deterministic trace so serve work dominates generation).
// One op = one full run over the stream; requests/sec is b.N-independent,
// so per-op time divided by the stream length is the serve-path cost.
func BenchmarkLoad(b *testing.B) {
	const n, m = 1024, 200_000
	for _, s := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("frozen/s=%d", s), func(b *testing.B) {
			gen := workload.SequentialGen(n, m)
			cfg := Config{Shards: s, Clients: s}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				stats, err := Run(context.Background(), cfg, mkFrozen, gen)
				if err != nil {
					b.Fatal(err)
				}
				if stats.Requests != m {
					b.Fatalf("served %d, want %d", stats.Requests, m)
				}
			}
			b.SetBytes(0)
			b.ReportMetric(float64(m)/(float64(b.Elapsed().Nanoseconds())/float64(b.N)/1e9), "req/s")
		})
	}
	// The adjusting grid exercises the owner-loop path end to end.
	for _, s := range []int{1, 4} {
		b.Run(fmt.Sprintf("adjusting/s=%d", s), func(b *testing.B) {
			gen := workload.SequentialGen(n, m/4)
			cfg := Config{Shards: s, Clients: s}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Run(context.Background(), cfg, mkKary, gen); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkHistObserve is the per-request measurement overhead: one
// Observe on the hot path.
func BenchmarkHistObserve(b *testing.B) {
	var h Hist
	h.Observe(0xfffff) // pre-grow the bucket array
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i) & 0xfffff)
	}
}

// BenchmarkHistMerge is the end-of-run cost of folding one client
// histogram into the aggregate.
func BenchmarkHistMerge(b *testing.B) {
	var src Hist
	for v := int64(0); v < 1<<20; v += 97 {
		src.Observe(v)
	}
	var dst Hist
	dst.Merge(&src) // pre-grow so the measured loop is allocation-free
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst.Merge(&src)
	}
}

func BenchmarkHistPercentile(b *testing.B) {
	var h Hist
	for v := int64(0); v < 1<<20; v += 13 {
		h.Observe(v)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = h.Percentile(0.99)
	}
}

// BenchmarkRoute is the router's per-request cost (must stay
// allocation-free: the hot path calls it once per request).
func BenchmarkRoute(b *testing.B) {
	p, err := NewPartition(1024, 8)
	if err != nil {
		b.Fatal(err)
	}
	var r Route
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := 1 + i%1024
		v := 1 + (i*7)%1024
		p.Route(u, v, &r)
	}
}
