package serve

import (
	"context"
	"fmt"
	"testing"

	"github.com/ksan-net/ksan/internal/policy"
	"github.com/ksan-net/ksan/internal/sim"
	"github.com/ksan-net/ksan/internal/workload"
)

// BenchmarkLoad measures end-to-end serving throughput over the shard
// grid the EXPERIMENTS.md table reports (clients = shards, frozen
// network, cheap deterministic trace so serve work dominates generation).
// One op = one full run over the stream; requests/sec is b.N-independent,
// so per-op time divided by the stream length is the serve-path cost.
func BenchmarkLoad(b *testing.B) {
	const n, m = 1024, 200_000
	for _, s := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("frozen/s=%d", s), func(b *testing.B) {
			gen := workload.SequentialGen(n, m)
			cfg := Config{Shards: s, Clients: s}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				stats, err := Run(context.Background(), cfg, mkFrozen, gen)
				if err != nil {
					b.Fatal(err)
				}
				if stats.Requests != m {
					b.Fatalf("served %d, want %d", stats.Requests, m)
				}
			}
			b.SetBytes(0)
			b.ReportMetric(float64(m)/(float64(b.Elapsed().Nanoseconds())/float64(b.N)/1e9), "req/s")
		})
	}
	// The adjusting grid exercises the owner-loop path end to end.
	for _, s := range []int{1, 4} {
		b.Run(fmt.Sprintf("adjusting/s=%d", s), func(b *testing.B) {
			gen := workload.SequentialGen(n, m/4)
			cfg := Config{Shards: s, Clients: s}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Run(context.Background(), cfg, mkKary, gen); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// warmShardNet builds an n-node adjusting shard network and serves a
// deterministic request prefix into it, returning the network and its
// checkpoint surface.
func warmShardNet(b *testing.B, n, prefix int) (sim.Network, recoverable) {
	b.Helper()
	net, err := mkKary(n)
	if err != nil {
		b.Fatal(err)
	}
	for r, err := range workload.SequentialGen(n, prefix).Requests() {
		if err != nil {
			b.Fatal(err)
		}
		net.Serve(r.Src, r.Dst)
	}
	return net, net.(recoverable)
}

// BenchmarkCheckpoint is the owner-loop cost of one periodic snapshot:
// CheckpointInto with a reused checkpoint, amortized over the interval.
// The enforced contract is zero allocations per op — the first snapshot
// grows the backing arrays, every later one reuses them, so a checkpoint
// never pressures the collector mid-run.
func BenchmarkCheckpoint(b *testing.B) {
	_, rec := warmShardNet(b, 1024, 10_000)
	var cp policy.Checkpoint
	if err := rec.CheckpointInto(&cp); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rec.CheckpointInto(&cp); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecovery is the cost of one crash recovery: restore the last
// checkpoint and replay a full interval's log (the worst case — a crash
// just before the next checkpoint boundary). Restore rebuilds the tree
// from the snapshot, so this path allocates; it runs once per recovery,
// never per request.
func BenchmarkRecovery(b *testing.B) {
	const n = 1024
	net, rec := warmShardNet(b, n, 10_000)
	var cp policy.Checkpoint
	if err := rec.CheckpointInto(&cp); err != nil {
		b.Fatal(err)
	}
	wal := make([]sim.Request, DefaultCheckpointEvery)
	for i := range wal {
		wal[i] = sim.Request{Src: 1 + i%n, Dst: 1 + (i*7)%n}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rec.Restore(&cp); err != nil {
			b.Fatal(err)
		}
		for _, r := range wal {
			net.Serve(r.Src, r.Dst)
		}
	}
	b.ReportMetric(float64(len(wal)), "replayed/op")
}

// BenchmarkFaultedLoad is the end-to-end serving run with the fault
// machinery armed: "idle" measures the standing cost of the faulted owner
// loop and periodic checkpoints with an empty schedule (the overhead a
// run pays just for being recoverable), "crash-recover" adds a scripted
// lossless crash per shard mid-run. Compare against
// BenchmarkLoad/adjusting for the disarmed baseline — the nil-plan path
// itself is gated by benchdiff to stay bit-identical to PR 8.
func BenchmarkFaultedLoad(b *testing.B) {
	const n, m = 1024, 50_000
	const shards = 4
	plans := []struct {
		name string
		plan func() *FaultPlan
	}{
		{"idle", func() *FaultPlan {
			return &FaultPlan{CheckpointEvery: 1024}
		}},
		{"crash-recover", func() *FaultPlan {
			p := &FaultPlan{CheckpointEvery: 1024}
			for s := 0; s < shards; s++ {
				p.Events = append(p.Events, FaultEvent{Shard: s, At: 5000, Kind: FaultCrash})
			}
			return p
		}},
	}
	for _, pc := range plans {
		b.Run(pc.name, func(b *testing.B) {
			gen := workload.SequentialGen(n, m)
			cfg := Config{Shards: shards, Clients: shards, Faults: pc.plan()}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				stats, err := Run(context.Background(), cfg, mkKary, gen)
				if err != nil {
					b.Fatal(err)
				}
				if stats.Requests != m {
					b.Fatalf("served %d, want %d", stats.Requests, m)
				}
			}
			b.ReportMetric(float64(m)/(float64(b.Elapsed().Nanoseconds())/float64(b.N)/1e9), "req/s")
		})
	}
}

// BenchmarkHistObserve is the per-request measurement overhead: one
// Observe on the hot path.
func BenchmarkHistObserve(b *testing.B) {
	var h Hist
	h.Observe(0xfffff) // pre-grow the bucket array
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i) & 0xfffff)
	}
}

// BenchmarkHistMerge is the end-of-run cost of folding one client
// histogram into the aggregate.
func BenchmarkHistMerge(b *testing.B) {
	var src Hist
	for v := int64(0); v < 1<<20; v += 97 {
		src.Observe(v)
	}
	var dst Hist
	dst.Merge(&src) // pre-grow so the measured loop is allocation-free
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst.Merge(&src)
	}
}

func BenchmarkHistPercentile(b *testing.B) {
	var h Hist
	for v := int64(0); v < 1<<20; v += 13 {
		h.Observe(v)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = h.Percentile(0.99)
	}
}

// BenchmarkRoute is the router's per-request cost (must stay
// allocation-free: the hot path calls it once per request).
func BenchmarkRoute(b *testing.B) {
	p, err := NewPartition(1024, 8)
	if err != nil {
		b.Fatal(err)
	}
	var r Route
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := 1 + i%1024
		v := 1 + (i*7)%1024
		p.Route(u, v, &r)
	}
}
