// Package serve is the concurrent sharded serving front-end: it turns the
// strictly-sequential evaluation engine into a system that serves a
// request stream from many client routines at once (ROADMAP item 1).
//
// The node space 1..n is hash-partitioned across S independent shards,
// each owning a private network instance (its tree, trigger state and
// demand window) behind a single-writer owner goroutine; a deterministic
// router maps every request to the shard(s) that serve it, charging
// cross-shard pairs under a documented inter-shard cost rule; and C
// closed-loop client routines drive the shards, each iterating its own
// private pass of the workload stream (workload.SplitGen — the YCSB
// per-routine-state pattern, no locks on the request hot path). Frozen
// shards — compositions whose trigger can never fire, detected through
// the StaticOracle hook — are served lock-free by the clients themselves
// through the shard's Euler-tour/RMQ distance oracle; every other shard
// serializes exclusively through its owner loop, preserving the
// repository-wide single-writer contract on serve paths (DESIGN.md §11).
//
// Measurement is bounded-memory by construction: every per-request
// observation goes into a mergeable log-bucketed Hist, so per-client and
// per-shard statistics combine into global percentiles without sample
// buffers (ROADMAP item 3's OneMeasurement shape).
package serve

import "github.com/ksan-net/ksan/internal/hist"

// Hist is the shared streaming log-bucketed histogram (internal/hist),
// re-exported under its historical name. It started here as the serving
// layer's bounded-memory percentile sketch and was lifted into its own
// package when the sequential engine adopted the same accounting; the
// alias keeps the serving API and its callers stable.
type Hist = hist.Hist
