// Package serve is the concurrent sharded serving front-end: it turns the
// strictly-sequential evaluation engine into a system that serves a
// request stream from many client routines at once (ROADMAP item 1).
//
// The node space 1..n is hash-partitioned across S independent shards,
// each owning a private network instance (its tree, trigger state and
// demand window) behind a single-writer owner goroutine; a deterministic
// router maps every request to the shard(s) that serve it, charging
// cross-shard pairs under a documented inter-shard cost rule; and C
// closed-loop client routines drive the shards, each iterating its own
// private pass of the workload stream (workload.SplitGen — the YCSB
// per-routine-state pattern, no locks on the request hot path). Frozen
// shards — compositions whose trigger can never fire, detected through
// the StaticOracle hook — are served lock-free by the clients themselves
// through the shard's Euler-tour/RMQ distance oracle; every other shard
// serializes exclusively through its owner loop, preserving the
// repository-wide single-writer contract on serve paths (DESIGN.md §11).
//
// Measurement is bounded-memory by construction: every per-request
// observation goes into a mergeable log-bucketed Hist, so per-client and
// per-shard statistics combine into global percentiles without sample
// buffers (ROADMAP item 3's OneMeasurement shape).
package serve

import (
	"fmt"
	"math"
	"math/bits"
)

// Log-bucket geometry. Values below histBase land in exact unit buckets;
// beyond that each doubling of the value range is split into histSubHalf
// linear sub-buckets, so the relative quantization error is bounded by
// 1/histSubHalf ≈ 3%. Routing costs (tree-path lengths, at most a few
// dozen edges) therefore record exactly, and only nanosecond-scale
// latencies pay the bounded rounding — the standard HDR-histogram
// trade-off.
const (
	histSubBits = 6
	histBase    = 1 << histSubBits       // 64 exact unit buckets
	histSubHalf = 1 << (histSubBits - 1) // 32 sub-buckets per octave beyond
)

// Hist is a streaming log-bucketed histogram over non-negative int64
// values: O(1) Observe, O(buckets) Merge and Percentile, O(log(max))
// buckets total — never a per-sample buffer. The zero value is an empty,
// usable histogram. Hist is not safe for concurrent use; the serving
// layer gives each client routine its own instances and merges them once
// the run drains (Merge is associative and commutative, so any merge
// grouping yields the same histogram).
type Hist struct {
	counts []int64
	count  int64
	sum    int64
	min    int64 // valid only when count > 0
	max    int64
}

// histBucket maps a value to its bucket index.
func histBucket(v int64) int {
	if v < histBase {
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - histSubBits - 1 // v in [histBase<<exp, histBase<<(exp+1))
	return histBase + exp*histSubHalf + int(v>>uint(exp+1)) - histSubHalf
}

// histLower returns the smallest value that maps to bucket idx — the
// representative Percentile reports, chosen as the lower bound so that in
// the exact region the histogram's percentile definition coincides with
// the engine's ("the smallest cost c such that at least ceil(q·total)
// observations are ≤ c").
func histLower(idx int) int64 {
	if idx < histBase {
		return int64(idx)
	}
	rel := idx - histBase
	exp, sub := rel/histSubHalf, rel%histSubHalf
	return int64(histSubHalf+sub) << uint(exp+1)
}

// Observe folds one value into the histogram. Negative values are a
// caller bug (costs and latencies are non-negative) and panic.
func (h *Hist) Observe(v int64) {
	if v < 0 {
		panic(fmt.Sprintf("serve: Hist.Observe(%d): negative value", v))
	}
	idx := histBucket(v)
	if idx >= len(h.counts) {
		grown := make([]int64, idx+1)
		copy(grown, h.counts)
		h.counts = grown
	}
	h.counts[idx]++
	h.count++
	h.sum += v
	if h.count == 1 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Merge folds o into h. Merging is associative and commutative, so shard-
// and client-local histograms combine into global percentiles in any
// grouping. o is unchanged; a nil or empty o is a no-op.
func (h *Hist) Merge(o *Hist) {
	if o == nil || o.count == 0 {
		return
	}
	if len(o.counts) > len(h.counts) {
		grown := make([]int64, len(o.counts))
		copy(grown, h.counts)
		h.counts = grown
	}
	for i, n := range o.counts {
		h.counts[i] += n
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
}

// Count returns the number of observations.
func (h *Hist) Count() int64 { return h.count }

// Sum returns the exact sum of all observations (tracked outside the
// buckets, so it carries no quantization error).
func (h *Hist) Sum() int64 { return h.sum }

// Min returns the exact smallest observation (0 when empty).
func (h *Hist) Min() int64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the exact largest observation (0 when empty).
func (h *Hist) Max() int64 { return h.max }

// Mean returns the exact arithmetic mean (0 when empty).
func (h *Hist) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Percentile returns the value at quantile q in [0,1]: the lower bound of
// the first bucket whose cumulative count reaches ceil(q·count) — in the
// exact region (values < 64) bit-identical to the engine's sorted-sample
// percentile rule, beyond it a lower bound within 1/32 of the exact
// order statistic. Returns 0 on an empty histogram.
func (h *Hist) Percentile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	if rank > h.count {
		rank = h.count
	}
	var cum int64
	for idx, n := range h.counts {
		cum += n
		if cum >= rank {
			return float64(histLower(idx))
		}
	}
	return float64(h.max) // unreachable: cum reaches count >= rank
}
