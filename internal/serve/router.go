package serve

import (
	"fmt"

	"github.com/ksan-net/ksan/internal/sim"
)

// InterShardHop is the link cost charged for crossing the shard backbone:
// shards are modelled as trees hanging off a single inter-shard exchange,
// so a cross-shard request pays one backbone hop between the two gateway
// nodes on top of its two intra-shard path segments (the cost rule below).
const InterShardHop = 1

// Partition hash-partitions the global node space 1..n across S shards.
// It is a pure function of (n, S): the shard of a node is derived from a
// fixed 64-bit mix of its id, so every run — and every process — agrees
// on the layout without coordination. Within a shard, local ids are
// assigned in increasing global-id order, which makes the S=1 partition
// the identity mapping (local id == global id); that is what lets the
// single-shard serving path reproduce the sequential engine bit-for-bit.
//
// Each shard's gateway is its local node 1 (the smallest global id it
// owns): the node wired to the inter-shard backbone.
//
// The cost rule (DESIGN.md §11): a request (u,v) with both endpoints on
// one shard is a single local request (lu,lv) there, charged that shard's
// serve cost. A cross-shard request splits into the source half (lu →
// gateway) on u's shard, one InterShardHop on the backbone, and the
// destination half (gateway → lv) on v's shard; each half is an ordinary
// serve on its shard (it feeds that shard's trigger and adjuster), and
// the halves are always served source-first. A half whose local endpoint
// is the gateway itself is a self-loop, which serve paths charge nothing
// for and triggers never see.
type Partition struct {
	S     int
	n     int
	shard []int32 // 1..n → owning shard
	local []int32 // 1..n → local id on the owning shard
	sizes []int   // nodes per shard
}

// mix64 is the splitmix64 finalizer: the fixed node-id hash of the
// partition function.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// NewPartition builds the partition of nodes 1..n across s shards. Every
// shard must end up with at least two nodes (a one-node shard cannot form
// a tree network worth serving); the hash keeps shards balanced to within
// the usual multinomial fluctuation, so this only fails when n is small
// relative to s.
func NewPartition(n, s int) (*Partition, error) {
	if n < 2 {
		return nil, fmt.Errorf("serve: partition needs n >= 2, got %d", n)
	}
	if s < 1 {
		return nil, fmt.Errorf("serve: partition needs shards >= 1, got %d", s)
	}
	p := &Partition{
		S:     s,
		n:     n,
		shard: make([]int32, n+1),
		local: make([]int32, n+1),
		sizes: make([]int, s),
	}
	for id := 1; id <= n; id++ {
		sh := 0
		if s > 1 {
			sh = int(mix64(uint64(id)) % uint64(s))
		}
		p.shard[id] = int32(sh)
		p.sizes[sh]++
		p.local[id] = int32(p.sizes[sh])
	}
	for sh, size := range p.sizes {
		if size < 2 {
			return nil, fmt.Errorf("serve: partition leaves shard %d with %d node(s) (n=%d, shards=%d); use fewer shards or more nodes", sh, size, n, s)
		}
	}
	return p, nil
}

// N returns the global node count.
func (p *Partition) N() int { return p.n }

// ShardOf returns the shard owning global node id.
func (p *Partition) ShardOf(id int) int { return int(p.shard[id]) }

// LocalOf returns node id's local id on its owning shard.
func (p *Partition) LocalOf(id int) int { return int(p.local[id]) }

// Size returns the node count of shard sh.
func (p *Partition) Size(sh int) int { return p.sizes[sh] }

// Route is the routed form of one global request: either a single local
// request on one shard, or the two gateway halves of a cross-shard pair.
type Route struct {
	Cross bool
	// S1 serves the local request (A1, B1): the whole request when not
	// Cross, the source half (local u → gateway) when Cross.
	S1     int
	A1, B1 int
	// S2 serves the destination half (gateway → local v); meaningful only
	// when Cross.
	S2     int
	A2, B2 int
}

// Route maps the global request (u,v) onto shards, writing the result
// into r (caller-owned, so the hot path allocates nothing).
func (p *Partition) Route(u, v int, r *Route) {
	s1, s2 := int(p.shard[u]), int(p.shard[v])
	if s1 == s2 {
		*r = Route{S1: s1, A1: int(p.local[u]), B1: int(p.local[v])}
		return
	}
	*r = Route{
		Cross: true,
		S1:    s1, A1: int(p.local[u]), B1: 1,
		S2: s2, A2: 1, B2: int(p.local[v]),
	}
}

// Project splits a global request sequence into the per-shard local
// request sequences the router would dispatch, in global-stream order —
// the reference the sequential-equivalence property is stated against: a
// serving run with one client must produce, on every shard, exactly the
// costs of serving Project's subsequence for that shard on a fresh
// identical network. Cross-shard pairs contribute their source half then
// their destination half, matching the router's source-first rule.
func (p *Partition) Project(reqs []sim.Request) [][]sim.Request {
	out := make([][]sim.Request, p.S)
	var r Route
	for _, rq := range reqs {
		p.Route(rq.Src, rq.Dst, &r)
		out[r.S1] = append(out[r.S1], sim.Request{Src: r.A1, Dst: r.B1})
		if r.Cross {
			out[r.S2] = append(out[r.S2], sim.Request{Src: r.A2, Dst: r.B2})
		}
	}
	return out
}
