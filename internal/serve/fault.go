package serve

import (
	"fmt"
	"sort"
	"time"

	"github.com/ksan-net/ksan/internal/core"
	"github.com/ksan-net/ksan/internal/policy"
)

// DefaultCheckpointEvery is the checkpoint interval (local serves between
// snapshots) when a FaultPlan leaves CheckpointEvery at 0.
const DefaultCheckpointEvery = 1024

// FaultKind labels one scripted fault.
type FaultKind uint8

const (
	// FaultCrash loses the shard's in-memory network state. The owner
	// stays up but answers "down" until recovery, which rebuilds the
	// exact pre-crash state from the last checkpoint plus a deterministic
	// replay of the post-checkpoint request log.
	FaultCrash FaultKind = iota
	// FaultStall freezes the owner loop for a wall-clock duration without
	// losing state — the slow-shard scenario that exercises client
	// deadlines.
	FaultStall
)

func (k FaultKind) String() string {
	switch k {
	case FaultCrash:
		return "crash"
	case FaultStall:
		return "stall"
	}
	return fmt.Sprintf("FaultKind(%d)", uint8(k))
}

// DegradedMode selects what clients do with a request half whose shard is
// down after retries are exhausted.
type DegradedMode uint8

const (
	// DegradedFail fails the request fast (counted, never served).
	DegradedFail DegradedMode = iota
	// DegradedStale serves the half read-only through the shard's
	// last-checkpoint distance oracle: possibly stale routing answers,
	// no adjustment, counted separately from healthy serves.
	DegradedStale
)

func (m DegradedMode) String() string {
	switch m {
	case DegradedFail:
		return "fail"
	case DegradedStale:
		return "stale"
	}
	return fmt.Sprintf("DegradedMode(%d)", uint8(m))
}

// FaultEvent is one scripted fault. Trigger points are logical — the
// owning shard's local serve count, never wall clock — so a schedule
// replays identically across runs and machines.
type FaultEvent struct {
	// Shard is the target shard index.
	Shard int
	// At fires the event immediately after the shard's At-th local serve
	// completes (At >= 1). Rejected arrivals and recovery replays do not
	// advance the count, so At addresses a point in the shard's logical
	// serve sequence.
	At int64
	// Kind is what happens at the trigger point.
	Kind FaultKind
	// RecoverAfter (crashes only) is how many arrivals the downed shard
	// rejects before the next arrival triggers recovery: 0 recovers on
	// the first post-crash arrival (no request is ever lost), -1 never
	// recovers.
	RecoverAfter int64
	// Stall (stalls only) is how long the owner sleeps.
	Stall time.Duration
}

// FaultPlan scripts the faults of one serving run and configures the
// robustness machinery around them. The zero plan is invalid; a nil
// *FaultPlan in Config means faults are disarmed and the serving layer
// runs its unchanged PR 8 hot path.
type FaultPlan struct {
	// CheckpointEvery is the per-shard checkpoint interval in local
	// serves (0 = DefaultCheckpointEvery). Between checkpoints each shard
	// appends served requests to an in-memory replay log, so the log is
	// bounded by this interval.
	CheckpointEvery int64
	// Degraded selects the client policy for down shards once retries
	// are exhausted.
	Degraded DegradedMode
	// Timeout bounds each owner round-trip (send plus reply) per attempt;
	// 0 disables deadlines. Timed-out requests are never retried: the
	// request may have been delivered, and a delivered request is served
	// exactly once (its late reply is drained and ledgered).
	Timeout time.Duration
	// Retries is how many times a client re-sends a half-request after a
	// "down" reply (each attempt ticks the shard's recovery clock).
	Retries int
	// Backoff is the base delay before the first retry, doubling per
	// attempt up to BackoffCap, with deterministic jitter in [1/2, 1)
	// seeded by (Seed, client id). 0 retries immediately.
	Backoff    time.Duration
	BackoffCap time.Duration
	// Seed seeds the backoff jitter stream.
	Seed uint64
	// Events is the fault schedule. Per shard, At values must be
	// strictly increasing.
	Events []FaultEvent
}

// checkpointInterval resolves the configured interval.
func (p *FaultPlan) checkpointInterval() int64 {
	if p.CheckpointEvery == 0 {
		return DefaultCheckpointEvery
	}
	return p.CheckpointEvery
}

// validate checks the plan against the run's shard count and returns the
// per-shard event schedules, each sorted by At.
func (p *FaultPlan) validate(shards int) ([][]FaultEvent, error) {
	if p.CheckpointEvery < 0 {
		return nil, fmt.Errorf("serve: fault plan: checkpoint interval %d < 0", p.CheckpointEvery)
	}
	if p.Degraded != DegradedFail && p.Degraded != DegradedStale {
		return nil, fmt.Errorf("serve: fault plan: unknown degraded mode %d", p.Degraded)
	}
	if p.Timeout < 0 || p.Retries < 0 || p.Backoff < 0 || p.BackoffCap < 0 {
		return nil, fmt.Errorf("serve: fault plan: negative timeout/retries/backoff")
	}
	perShard := make([][]FaultEvent, shards)
	for i, ev := range p.Events {
		if ev.Shard < 0 || ev.Shard >= shards {
			return nil, fmt.Errorf("serve: fault event %d targets shard %d of %d", i, ev.Shard, shards)
		}
		if ev.At < 1 {
			return nil, fmt.Errorf("serve: fault event %d fires at %d; trigger points start at 1", i, ev.At)
		}
		switch ev.Kind {
		case FaultCrash:
			if ev.RecoverAfter < -1 {
				return nil, fmt.Errorf("serve: fault event %d: recover-after %d < -1", i, ev.RecoverAfter)
			}
			if ev.Stall != 0 {
				return nil, fmt.Errorf("serve: fault event %d: crash with a stall duration", i)
			}
		case FaultStall:
			if ev.Stall <= 0 {
				return nil, fmt.Errorf("serve: fault event %d: stall without a positive duration", i)
			}
			if ev.RecoverAfter != 0 {
				return nil, fmt.Errorf("serve: fault event %d: stall with recover-after", i)
			}
		default:
			return nil, fmt.Errorf("serve: fault event %d: unknown kind %d", i, ev.Kind)
		}
		perShard[ev.Shard] = append(perShard[ev.Shard], ev)
	}
	for sh, evs := range perShard {
		sort.SliceStable(evs, func(a, b int) bool { return evs[a].At < evs[b].At })
		for j := 1; j < len(evs); j++ {
			if evs[j].At == evs[j-1].At {
				return nil, fmt.Errorf("serve: shard %d has two fault events at serve %d", sh, evs[j].At)
			}
		}
	}
	return perShard, nil
}

// recoverable is the checkpoint surface the fault machinery requires of
// every shard network when a plan is armed: policy.Net's exact-state
// checkpoint/restore plus tree access for the stale-read oracle.
// *policy.Net (and therefore every tree-backed composition the spec layer
// can build) implements it; custom substrates do not and are rejected at
// Run start.
type recoverable interface {
	Checkpointable() bool
	CheckpointInto(cp *policy.Checkpoint) error
	Restore(cp *policy.Checkpoint) error
	Tree() *core.Tree
}

// FaultStats is the fault ledger of one run: everything the robustness
// machinery did, separated from the healthy serving totals. All counters
// cover the whole run (warmup included — faults don't respect measurement
// regions).
type FaultStats struct {
	Crashes     int64 // crash events fired
	Recoveries  int64 // snapshot+replay recoveries completed
	Checkpoints int64 // checkpoints taken across all shards

	ReplayedRequests int64 // requests re-served from replay logs during recovery
	ReplayRouting    int64 // cost of replayed serves (excluded from serving totals)
	ReplayAdjust     int64

	Stalls   int64 // stall events fired
	Rejected int64 // "down" replies sent by owners

	Timeouts int64 // attempts that missed their deadline (send or reply)
	Retries  int64 // re-sends after down replies

	FailedRequests   int64 // requests abandoned (timeout, or down after retries under fail-fast)
	DegradedRequests int64 // requests served through a stale checkpoint oracle
	DegradedRouting  int64 // their routing cost (excluded from serving totals)

	LateReplies int64 // replies that arrived after their request timed out
	LateRouting int64 // routing cost of late-served halves (kept in per-shard totals)
}

// merge folds b into f.
func (f *FaultStats) merge(b *FaultStats) {
	f.Crashes += b.Crashes
	f.Recoveries += b.Recoveries
	f.Checkpoints += b.Checkpoints
	f.ReplayedRequests += b.ReplayedRequests
	f.ReplayRouting += b.ReplayRouting
	f.ReplayAdjust += b.ReplayAdjust
	f.Stalls += b.Stalls
	f.Rejected += b.Rejected
	f.Timeouts += b.Timeouts
	f.Retries += b.Retries
	f.FailedRequests += b.FailedRequests
	f.DegradedRequests += b.DegradedRequests
	f.DegradedRouting += b.DegradedRouting
	f.LateReplies += b.LateReplies
	f.LateRouting += b.LateRouting
}
