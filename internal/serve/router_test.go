package serve

import (
	"reflect"
	"testing"

	"github.com/ksan-net/ksan/internal/sim"
	"github.com/ksan-net/ksan/internal/workload"
)

// TestPartitionDeterminism pins the pure-function contract: two builds of
// the same (n, S) agree on every assignment, and the assignment does not
// depend on anything but (n, S).
func TestPartitionDeterminism(t *testing.T) {
	for _, s := range []int{1, 2, 4, 8} {
		a, err := NewPartition(1000, s)
		if err != nil {
			t.Fatalf("NewPartition(1000, %d): %v", s, err)
		}
		b, _ := NewPartition(1000, s)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("S=%d: two builds of the same partition differ", s)
		}
	}
}

// TestPartitionIdentity pins the property the bit-for-bit golden relies
// on: with one shard, local ids equal global ids.
func TestPartitionIdentity(t *testing.T) {
	p, err := NewPartition(257, 1)
	if err != nil {
		t.Fatal(err)
	}
	for id := 1; id <= 257; id++ {
		if p.ShardOf(id) != 0 || p.LocalOf(id) != id {
			t.Fatalf("node %d: shard %d local %d, want 0/%d", id, p.ShardOf(id), p.LocalOf(id), id)
		}
	}
}

// TestPartitionInvariants checks structural invariants across sizes:
// shard sizes sum to n, local ids are dense 1..size in increasing
// global-id order, every shard has >= 2 nodes.
func TestPartitionInvariants(t *testing.T) {
	for _, tc := range []struct{ n, s int }{{127, 4}, {1000, 8}, {64, 2}, {5000, 16}} {
		p, err := NewPartition(tc.n, tc.s)
		if err != nil {
			t.Fatalf("NewPartition(%d, %d): %v", tc.n, tc.s, err)
		}
		total := 0
		next := make([]int, tc.s)
		for sh := 0; sh < tc.s; sh++ {
			if p.Size(sh) < 2 {
				t.Errorf("(%d,%d): shard %d has %d nodes", tc.n, tc.s, sh, p.Size(sh))
			}
			total += p.Size(sh)
		}
		if total != tc.n {
			t.Errorf("(%d,%d): sizes sum to %d, want %d", tc.n, tc.s, total, tc.n)
		}
		for id := 1; id <= tc.n; id++ {
			sh := p.ShardOf(id)
			next[sh]++
			if p.LocalOf(id) != next[sh] {
				t.Fatalf("(%d,%d): node %d local id %d, want %d (dense, increasing global order)",
					tc.n, tc.s, id, p.LocalOf(id), next[sh])
			}
		}
	}
}

// TestPartitionPinned pins the concrete hash layout so an accidental
// change to mix64 or the assignment rule — which would silently re-shard
// every serving run — fails loudly.
func TestPartitionPinned(t *testing.T) {
	p, err := NewPartition(127, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := []int{p.Size(0), p.Size(1), p.Size(2), p.Size(3)}, []int{30, 28, 35, 34}; !reflect.DeepEqual(got, want) {
		t.Errorf("sizes = %v, want %v", got, want)
	}
	wantShard := map[int]int{1: 1, 2: 2, 3: 1, 64: 3, 127: 0}
	for id, sh := range wantShard {
		if p.ShardOf(id) != sh {
			t.Errorf("ShardOf(%d) = %d, want %d", id, p.ShardOf(id), sh)
		}
	}
}

func TestPartitionErrors(t *testing.T) {
	if _, err := NewPartition(1, 1); err == nil {
		t.Errorf("n=1 must fail")
	}
	if _, err := NewPartition(100, 0); err == nil {
		t.Errorf("s=0 must fail")
	}
	// Far more shards than nodes must leave some shard under 2 nodes.
	if _, err := NewPartition(4, 4); err == nil {
		t.Errorf("n=4,s=4 must fail (some shard gets < 2 nodes)")
	}
}

// TestRouteCostRule pins the cross-shard decomposition: a same-shard pair
// is one local request; a cross-shard pair is the source half to the
// gateway (local node 1), then the destination half from the gateway.
func TestRouteCostRule(t *testing.T) {
	p, err := NewPartition(127, 4)
	if err != nil {
		t.Fatal(err)
	}
	var r Route
	seenCross, seenLocal := false, false
	for u := 1; u <= 127; u++ {
		for v := 1; v <= 127; v++ {
			p.Route(u, v, &r)
			if p.ShardOf(u) == p.ShardOf(v) {
				seenLocal = true
				want := Route{S1: p.ShardOf(u), A1: p.LocalOf(u), B1: p.LocalOf(v)}
				if r != want {
					t.Fatalf("Route(%d,%d) = %+v, want local %+v", u, v, r, want)
				}
			} else {
				seenCross = true
				want := Route{
					Cross: true,
					S1:    p.ShardOf(u), A1: p.LocalOf(u), B1: 1,
					S2: p.ShardOf(v), A2: 1, B2: p.LocalOf(v),
				}
				if r != want {
					t.Fatalf("Route(%d,%d) = %+v, want cross %+v", u, v, r, want)
				}
			}
		}
	}
	if !seenCross || !seenLocal {
		t.Fatalf("test must exercise both route kinds (cross=%v local=%v)", seenCross, seenLocal)
	}
}

// TestProject pins the reference projection: per-shard subsequences in
// global-stream order, cross pairs contributing source half then
// destination half, and nothing else.
func TestProject(t *testing.T) {
	p, err := NewPartition(64, 2)
	if err != nil {
		t.Fatal(err)
	}
	var reqs []sim.Request
	for rq, err := range workload.UniformGen(64, 500, 9).Requests() {
		if err != nil {
			t.Fatal(err)
		}
		reqs = append(reqs, rq)
	}
	proj := p.Project(reqs)
	if len(proj) != 2 {
		t.Fatalf("Project returned %d shards, want 2", len(proj))
	}
	// Rebuild each shard's expected subsequence by walking the stream.
	want := make([][]sim.Request, 2)
	var r Route
	for _, rq := range reqs {
		p.Route(rq.Src, rq.Dst, &r)
		want[r.S1] = append(want[r.S1], sim.Request{Src: r.A1, Dst: r.B1})
		if r.Cross {
			want[r.S2] = append(want[r.S2], sim.Request{Src: r.A2, Dst: r.B2})
		}
	}
	for sh := range want {
		if !reflect.DeepEqual(proj[sh], want[sh]) {
			t.Errorf("shard %d projection diverges", sh)
		}
	}
	// Conservation: local halves count once, cross pairs once per side.
	total := len(proj[0]) + len(proj[1])
	cross := 0
	for _, rq := range reqs {
		if p.ShardOf(rq.Src) != p.ShardOf(rq.Dst) {
			cross++
		}
	}
	if total != len(reqs)+cross {
		t.Errorf("projected %d halves, want %d requests + %d cross halves", total, len(reqs), cross)
	}
}
