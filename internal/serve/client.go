package serve

import (
	"sync/atomic"
	"time"

	"github.com/ksan-net/ksan/internal/sim"
	"github.com/ksan-net/ksan/internal/workload"
)

// counterFlush is how many completed requests a client accumulates
// locally before flushing them into the shared live counter: the live
// requests/sec display costs one atomic add per this many requests
// instead of one per request.
const counterFlush = 256

// shardAcc accumulates one client's view of one shard: the local serves
// it routed there (warmup included — these are the totals the per-shard
// sequential-equivalence property compares against a replay).
type shardAcc struct {
	requests, routing, adjust int64
	hist                      Hist
}

// clientAcc is everything one client routine measures. Clients never
// share accumulators — each routine observes into its own and the pool
// merges them after the run drains — so measurement adds no locks to the
// request hot path.
type clientAcc struct {
	requests, routing, adjust, cross     int64 // measurement region
	warmRequests, warmRouting, warmAdjust, warmCross int64
	routingHist, latencyHist             Hist
	perShard                             []shardAcc
	err                                  error
}

// client is one closed-loop load routine: it iterates its private pass of
// the workload stream (an independent SplitGen substream), serves each
// request to completion before drawing the next, and paces itself to its
// share of the aggregate target throughput.
type client struct {
	pool   *pool
	id     int
	gen    workload.Generator
	budget int64 // requests this client may serve; <0 = until stream end
	acc    clientAcc
	reply  chan sim.Cost
}

// serveLocal serves one local (half-)request on a shard: lock-free
// through the distance oracle when the shard is frozen, through the owner
// loop otherwise.
func (c *client) serveLocal(s *shard, a, b int) sim.Cost {
	if s.oracle != nil {
		if a == b {
			return sim.Cost{}
		}
		return sim.Cost{Routing: s.oracle.Dist(a, b)}
	}
	s.ch <- request{u: a, v: b, reply: c.reply}
	return <-c.reply
}

// run drives the client loop. It returns normally on stream end, budget
// exhaustion, or a pool-wide stop (duration elapsed or context
// cancelled); a stream error is terminal and recorded in the accumulator.
func (c *client) run() {
	p := c.pool
	c.acc.perShard = make([]shardAcc, p.part.S)
	c.reply = make(chan sim.Cost, 1)

	var interval time.Duration
	if p.cfg.TargetOps > 0 {
		perClient := p.cfg.TargetOps / float64(p.cfg.Clients)
		interval = time.Duration(float64(time.Second) / perClient)
	}
	sample := p.cfg.LatencySample
	warmup := int64(p.cfg.Warmup)

	var served, unflushed int64
	start := time.Now()
	var r Route
	for rq, err := range c.gen.Requests() {
		if err != nil {
			c.acc.err = err
			break
		}
		if c.budget >= 0 && served >= c.budget {
			break
		}
		if p.stop.Load() {
			break
		}
		if interval > 0 {
			// Schedule-based pacing (the YCSB "throttle to target"
			// loop): sleep until this request's release time, computed
			// from the start so that transient stalls are caught up.
			if wait := time.Until(start.Add(time.Duration(served) * interval)); wait > 0 {
				time.Sleep(wait)
			}
		}

		p.part.Route(rq.Src, rq.Dst, &r)
		timed := sample > 0 && served%int64(sample) == 0
		var t0 time.Time
		if timed {
			t0 = time.Now()
		}
		c1 := c.serveLocal(p.shards[r.S1], r.A1, r.B1)
		var c2 sim.Cost
		routing, adjust := c1.Routing, c1.Adjust
		if r.Cross {
			c2 = c.serveLocal(p.shards[r.S2], r.A2, r.B2)
			routing += InterShardHop + c2.Routing
			adjust += c2.Adjust
		}
		var lat int64
		if timed {
			lat = int64(time.Since(t0))
		}

		sa := &c.acc.perShard[r.S1]
		sa.requests++
		sa.routing += c1.Routing
		sa.adjust += c1.Adjust
		sa.hist.Observe(c1.Routing)
		if r.Cross {
			sa2 := &c.acc.perShard[r.S2]
			sa2.requests++
			sa2.routing += c2.Routing
			sa2.adjust += c2.Adjust
			sa2.hist.Observe(c2.Routing)
		}
		if served < warmup {
			c.acc.warmRequests++
			c.acc.warmRouting += routing
			c.acc.warmAdjust += adjust
			if r.Cross {
				c.acc.warmCross++
			}
		} else {
			c.acc.requests++
			c.acc.routing += routing
			c.acc.adjust += adjust
			if r.Cross {
				c.acc.cross++
			}
			c.acc.routingHist.Observe(routing)
			if timed {
				c.acc.latencyHist.Observe(lat)
			}
		}

		served++
		unflushed++
		if unflushed == counterFlush {
			p.served.Add(unflushed)
			unflushed = 0
		}
	}
	if unflushed > 0 {
		p.served.Add(unflushed)
	}
}

// pool is the shared run state of one serving run.
type pool struct {
	cfg    Config
	part   *Partition
	shards []*shard
	stop   atomic.Bool
	served atomic.Int64
}
