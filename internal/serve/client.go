package serve

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/ksan-net/ksan/internal/sim"
	"github.com/ksan-net/ksan/internal/workload"
)

// counterFlush is how many completed requests a client accumulates
// locally before flushing them into the shared live counter: the live
// requests/sec display costs one atomic add per this many requests
// instead of one per request.
const counterFlush = 256

// shardAcc accumulates one client's view of one shard: the local serves
// it routed there (warmup included — these are the totals the per-shard
// sequential-equivalence property compares against a replay).
type shardAcc struct {
	requests, routing, adjust int64
	hist                      Hist
}

// clientAcc is everything one client routine measures. Clients never
// share accumulators — each routine observes into its own and the pool
// merges them after the run drains — so measurement adds no locks to the
// request hot path.
type clientAcc struct {
	requests, routing, adjust, cross                 int64 // measurement region
	warmRequests, warmRouting, warmAdjust, warmCross int64
	routingHist, latencyHist                         Hist
	perShard                                         []shardAcc
	faults                                           FaultStats // client-side ledger slice (timeouts, retries, failed, degraded, late)
	err                                              error
}

// client is one closed-loop load routine: it iterates its private pass of
// the workload stream (an independent SplitGen substream), serves each
// request to completion before drawing the next, and paces itself to its
// share of the aggregate target throughput.
type client struct {
	pool   *pool
	id     int
	gen    workload.Generator
	budget int64 // requests this client may serve; <0 = until stream end
	acc    clientAcc
	reply  chan sim.Cost

	// Fault-mode state.
	freply      chan response
	seq         uint64 // attempt sequence tag, matches replies to awaits
	outstanding int    // delivered requests whose replies are unconsumed
	timer       *time.Timer
	jit         uint64 // deterministic backoff-jitter stream
}

// serveLocal serves one local (half-)request on a shard: lock-free
// through the distance oracle when the shard is frozen, through the owner
// loop otherwise.
func (c *client) serveLocal(s *shard, a, b int) sim.Cost {
	if s.oracle != nil {
		if a == b {
			return sim.Cost{}
		}
		return sim.Cost{Routing: s.oracle.Dist(a, b)}
	}
	s.ch <- request{u: a, v: b, reply: c.reply}
	return <-c.reply
}

// resetTimer arms the client's reusable timer (Go 1.23 timer semantics:
// Reset discards any pending fire, so no drain dance is needed).
func (c *client) resetTimer(d time.Duration) {
	if c.timer == nil {
		c.timer = time.NewTimer(d)
		return
	}
	c.timer.Reset(d)
}

// sleepStop sleeps for d or until the pool halts, whichever comes first,
// and reports whether the pool is still running — so pacing waits and
// retry backoffs never delay cancellation by more than a scheduler tick
// (the PR 8 pacing loop slept through stops for up to a full interval).
func (c *client) sleepStop(d time.Duration) bool {
	if d <= 0 {
		return !c.pool.stop.Load()
	}
	c.resetTimer(d)
	select {
	case <-c.timer.C:
		return !c.pool.stop.Load()
	case <-c.pool.stopCh:
		c.timer.Stop()
		return false
	}
}

// run drives the client loop. It returns normally on stream end, budget
// exhaustion, or a pool-wide stop (duration elapsed or context
// cancelled); a stream error is terminal and recorded in the accumulator.
func (c *client) run() {
	p := c.pool
	c.acc.perShard = make([]shardAcc, p.part.S)
	c.reply = make(chan sim.Cost, 1)

	var interval time.Duration
	if p.cfg.TargetOps > 0 {
		perClient := p.cfg.TargetOps / float64(p.cfg.Clients)
		interval = time.Duration(float64(time.Second) / perClient)
	}
	sample := p.cfg.LatencySample
	warmup := int64(p.cfg.Warmup)

	var served, unflushed int64
	start := time.Now()
	var r Route
	for rq, err := range c.gen.Requests() {
		if err != nil {
			c.acc.err = err
			break
		}
		if c.budget >= 0 && served >= c.budget {
			break
		}
		if p.stop.Load() {
			break
		}
		if interval > 0 {
			// Schedule-based pacing (the YCSB "throttle to target"
			// loop): sleep until this request's release time, computed
			// from the start so that transient stalls are caught up.
			if wait := time.Until(start.Add(time.Duration(served) * interval)); wait > 0 {
				if !c.sleepStop(wait) {
					break
				}
			}
		}

		p.part.Route(rq.Src, rq.Dst, &r)
		timed := sample > 0 && served%int64(sample) == 0
		var t0 time.Time
		if timed {
			t0 = time.Now()
		}
		c1 := c.serveLocal(p.shards[r.S1], r.A1, r.B1)
		var c2 sim.Cost
		routing, adjust := c1.Routing, c1.Adjust
		if r.Cross {
			c2 = c.serveLocal(p.shards[r.S2], r.A2, r.B2)
			routing += InterShardHop + c2.Routing
			adjust += c2.Adjust
		}
		var lat int64
		if timed {
			lat = int64(time.Since(t0))
		}

		sa := &c.acc.perShard[r.S1]
		sa.requests++
		sa.routing += c1.Routing
		sa.adjust += c1.Adjust
		sa.hist.Observe(c1.Routing)
		if r.Cross {
			sa2 := &c.acc.perShard[r.S2]
			sa2.requests++
			sa2.routing += c2.Routing
			sa2.adjust += c2.Adjust
			sa2.hist.Observe(c2.Routing)
		}
		if served < warmup {
			c.acc.warmRequests++
			c.acc.warmRouting += routing
			c.acc.warmAdjust += adjust
			if r.Cross {
				c.acc.warmCross++
			}
		} else {
			c.acc.requests++
			c.acc.routing += routing
			c.acc.adjust += adjust
			if r.Cross {
				c.acc.cross++
			}
			c.acc.routingHist.Observe(routing)
			if timed {
				c.acc.latencyHist.Observe(lat)
			}
		}

		served++
		unflushed++
		if unflushed == counterFlush {
			p.served.Add(unflushed)
			unflushed = 0
		}
	}
	if unflushed > 0 {
		p.served.Add(unflushed)
	}
}

// Half-request outcomes of the faulted serve path.
const (
	outcomeOK       uint8 = iota
	outcomeDegraded       // served read-only through a stale checkpoint oracle
	outcomeFailed         // timed out, or down after retries under fail-fast
)

// lateReply accounts an owner reply that arrived after its attempt's
// deadline. The shard did serve the half — exactly once, the delivered
// request was simply slow — so an OK late half stays in the per-shard
// serve totals (keeping them equal to what the shards actually did) and
// is ledgered; the request itself was already counted as a timeout.
func (c *client) lateReply(r response) {
	if r.status != statusOK {
		return
	}
	c.acc.faults.LateReplies++
	c.acc.faults.LateRouting += r.cost.Routing
	sa := &c.acc.perShard[r.shard]
	sa.requests++
	sa.routing += r.cost.Routing
	sa.adjust += r.cost.Adjust
	sa.hist.Observe(r.cost.Routing)
}

// drainOutstanding consumes every delivered-but-unconsumed reply before
// the client exits. This is the invariant that makes shutdown sound:
// owners never block forever on a reply to a departed client, so Run's
// close-and-wait drain always terminates.
func (c *client) drainOutstanding() {
	for c.outstanding > 0 {
		r := <-c.freply
		c.outstanding--
		c.lateReply(r)
	}
}

// backoff sleeps before retry number attempt+1: exponential from
// plan.Backoff, capped at plan.BackoffCap, with deterministic jitter in
// [1/2, 1) drawn from a splitmix64 stream seeded by (plan.Seed, client
// id) — a replayed fault schedule backs off identically, run after run.
func (c *client) backoff(attempt int) {
	plan := c.pool.plan
	if plan.Backoff <= 0 {
		return
	}
	if attempt > 30 {
		attempt = 30
	}
	d := plan.Backoff << uint(attempt)
	if d <= 0 { // overflowed
		d = plan.BackoffCap
	}
	if plan.BackoffCap > 0 && d > plan.BackoffCap {
		d = plan.BackoffCap
	}
	c.jit = mix64(c.jit)
	frac := 0.5 + float64(c.jit>>11)/float64(1<<53)/2
	c.sleepStop(time.Duration(float64(d) * frac))
}

// serveHalfFaulted serves one local half through the faulted owner
// protocol: a deadline-bounded round trip per attempt, bounded retries
// with backoff on down replies (each attempt ticks the shard's recovery
// clock), and the configured degraded fallback once retries run out.
// Timeouts are never retried — the request may have been delivered, and a
// delivered request is served exactly once (its late reply is drained).
func (c *client) serveHalfFaulted(s *shard, a, b int) (sim.Cost, uint8) {
	p := c.pool
	plan := p.plan
	for attempt := 0; ; attempt++ {
		c.seq++
		seq := c.seq
		deadline := plan.Timeout > 0
		if deadline {
			c.resetTimer(plan.Timeout)
		}
		rq := frequest{u: a, v: b, seq: seq, reply: c.freply}
		if deadline {
			select {
			case s.fch <- rq:
				c.outstanding++
			case <-c.timer.C:
				// Undelivered: nothing outstanding, no late reply to come.
				c.acc.faults.Timeouts++
				return sim.Cost{}, outcomeFailed
			}
		} else {
			s.fch <- rq
			c.outstanding++
		}
		var resp response
		timedOut := false
		for {
			if deadline {
				select {
				case r := <-c.freply:
					c.outstanding--
					if r.seq != seq {
						c.lateReply(r)
						continue
					}
					resp = r
				case <-c.timer.C:
					timedOut = true
				}
			} else {
				r := <-c.freply
				c.outstanding--
				if r.seq != seq {
					c.lateReply(r)
					continue
				}
				resp = r
			}
			break
		}
		if timedOut {
			c.acc.faults.Timeouts++
			return sim.Cost{}, outcomeFailed
		}
		if resp.status == statusOK {
			return resp.cost, outcomeOK
		}
		// Down reply: safe to retry — the shard rejected without serving.
		if attempt < plan.Retries && !p.stop.Load() {
			c.acc.faults.Retries++
			c.backoff(attempt)
			continue
		}
		if plan.Degraded == DegradedStale {
			if ix := s.stale.Load(); ix != nil {
				var cost sim.Cost
				if a != b {
					cost.Routing = ix.Dist(a, b)
				}
				return cost, outcomeDegraded
			}
		}
		return sim.Cost{}, outcomeFailed
	}
}

// runFaulted is the client loop with a fault plan armed. Structure and
// accounting order mirror run exactly; the differences are the faulted
// half-request protocol and the outcome split: only fully-OK requests
// enter the warmup/measured serving totals, degraded and failed requests
// go to the fault ledger (with OK halves of mixed requests still
// attributed to their shards, which served them).
func (c *client) runFaulted() {
	p := c.pool
	plan := p.plan
	c.acc.perShard = make([]shardAcc, p.part.S)
	c.freply = make(chan response, 8)
	c.jit = mix64(plan.Seed ^ (uint64(c.id)+1)*0x9e3779b97f4a7c15)
	defer c.drainOutstanding()

	var interval time.Duration
	if p.cfg.TargetOps > 0 {
		perClient := p.cfg.TargetOps / float64(p.cfg.Clients)
		interval = time.Duration(float64(time.Second) / perClient)
	}
	sample := p.cfg.LatencySample
	warmup := int64(p.cfg.Warmup)

	var served, unflushed int64
	start := time.Now()
	var r Route
	for rq, err := range c.gen.Requests() {
		if err != nil {
			c.acc.err = err
			break
		}
		if c.budget >= 0 && served >= c.budget {
			break
		}
		if p.stop.Load() {
			break
		}
		if interval > 0 {
			if wait := time.Until(start.Add(time.Duration(served) * interval)); wait > 0 {
				if !c.sleepStop(wait) {
					break
				}
			}
		}

		p.part.Route(rq.Src, rq.Dst, &r)
		timed := sample > 0 && served%int64(sample) == 0
		var t0 time.Time
		if timed {
			t0 = time.Now()
		}
		c1, o1 := c.serveHalfFaulted(p.shards[r.S1], r.A1, r.B1)
		var c2 sim.Cost
		o2 := outcomeOK
		if r.Cross && o1 != outcomeFailed {
			// A failed source half fails the request; don't disturb the
			// destination shard for a request that cannot complete.
			c2, o2 = c.serveHalfFaulted(p.shards[r.S2], r.A2, r.B2)
		}
		var lat int64
		if timed {
			lat = int64(time.Since(t0))
		}

		if o1 == outcomeOK {
			sa := &c.acc.perShard[r.S1]
			sa.requests++
			sa.routing += c1.Routing
			sa.adjust += c1.Adjust
			sa.hist.Observe(c1.Routing)
		}
		if r.Cross && o2 == outcomeOK {
			sa2 := &c.acc.perShard[r.S2]
			sa2.requests++
			sa2.routing += c2.Routing
			sa2.adjust += c2.Adjust
			sa2.hist.Observe(c2.Routing)
		}
		switch {
		case o1 == outcomeFailed || o2 == outcomeFailed:
			c.acc.faults.FailedRequests++
		case o1 == outcomeDegraded || o2 == outcomeDegraded:
			routing := c1.Routing + c2.Routing
			if r.Cross {
				routing += InterShardHop
			}
			c.acc.faults.DegradedRequests++
			c.acc.faults.DegradedRouting += routing
		default:
			routing, adjust := c1.Routing, c1.Adjust
			if r.Cross {
				routing += InterShardHop + c2.Routing
				adjust += c2.Adjust
			}
			if served < warmup {
				c.acc.warmRequests++
				c.acc.warmRouting += routing
				c.acc.warmAdjust += adjust
				if r.Cross {
					c.acc.warmCross++
				}
			} else {
				c.acc.requests++
				c.acc.routing += routing
				c.acc.adjust += adjust
				if r.Cross {
					c.acc.cross++
				}
				c.acc.routingHist.Observe(routing)
				if timed {
					c.acc.latencyHist.Observe(lat)
				}
			}
		}

		served++
		unflushed++
		if unflushed == counterFlush {
			p.served.Add(unflushed)
			unflushed = 0
		}
	}
	if unflushed > 0 {
		p.served.Add(unflushed)
	}
}

// pool is the shared run state of one serving run.
type pool struct {
	cfg      Config
	part     *Partition
	shards   []*shard
	plan     *FaultPlan // nil: faults disarmed, PR 8 fast path
	stop     atomic.Bool
	stopCh   chan struct{}
	stopOnce sync.Once
	served   atomic.Int64
}

// halt flips the stop flag and wakes every client sleeping in pacing or
// backoff waits.
func (p *pool) halt() {
	p.stopOnce.Do(func() {
		p.stop.Store(true)
		close(p.stopCh)
	})
}

// shutdownShards closes every started owner loop and waits for each to
// exit. It tolerates a partially-built pool, which is what makes the
// mid-construction error path leak-free: owners started for shards built
// before the failing one are shut down too.
func (p *pool) shutdownShards() {
	for _, s := range p.shards {
		if s == nil {
			continue
		}
		if s.ch != nil {
			close(s.ch)
		}
		if s.fch != nil {
			close(s.fch)
		}
	}
	for _, s := range p.shards {
		if s != nil && s.done != nil {
			<-s.done
		}
	}
}
