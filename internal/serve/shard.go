package serve

import (
	"github.com/ksan-net/ksan/internal/sim"
	"github.com/ksan-net/ksan/internal/statictree"
)

// staticServer is the shard-safe serving hook: a network whose topology
// is provably static (a frozen composition) exposes its Euler-tour/RMQ
// distance oracle, and the serving layer then answers its requests
// lock-free from the client routines themselves — the oracle is immutable,
// so concurrent Dist calls need no coordination. policy.Net and
// statictree.Net implement it; any network that does not (or whose
// StaticOracle reports false because its trigger can still fire) is
// served through its shard's owner goroutine instead.
type staticServer interface {
	StaticOracle() (*statictree.DistIndex, bool)
}

// request is one unit of work sent to a shard's owner loop. The reply
// channel is client-owned and reused across requests (capacity 1), so the
// closed-loop hot path allocates nothing per request.
type request struct {
	u, v  int
	reply chan sim.Cost
}

// shard owns one partition of the node space: a private network instance
// plus the single goroutine allowed to mutate it. All self-adjustment —
// rotations, trigger state, demand windows, churn scratch — happens
// inside the owner loop, which is what makes serving concurrent without
// any locks on network state (the single-writer rule, DESIGN.md §11).
// Frozen shards additionally carry their distance oracle; clients serve
// those without ever touching the loop.
type shard struct {
	id     int
	nodes  int
	net    sim.Network
	oracle *statictree.DistIndex // non-nil: frozen, clients serve lock-free
	ch     chan request
	done   chan struct{}
	record bool
	local  []sim.Request // processed local sequence, when record is set
}

// run is the owner loop: the only goroutine that ever calls Serve on this
// shard's network. It drains the request channel in arrival order, which
// defines the shard's local request sequence — the sequence the
// sequential-equivalence property replays.
func (s *shard) run() {
	defer close(s.done)
	for rq := range s.ch {
		if s.record {
			s.local = append(s.local, sim.Request{Src: rq.u, Dst: rq.v})
		}
		rq.reply <- s.net.Serve(rq.u, rq.v)
	}
}
