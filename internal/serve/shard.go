package serve

import (
	"fmt"
	"sync/atomic"
	"time"

	"github.com/ksan-net/ksan/internal/policy"
	"github.com/ksan-net/ksan/internal/sim"
	"github.com/ksan-net/ksan/internal/statictree"
)

// staticServer is the shard-safe serving hook: a network whose topology
// is provably static (a frozen composition) exposes its Euler-tour/RMQ
// distance oracle, and the serving layer then answers its requests
// lock-free from the client routines themselves — the oracle is immutable,
// so concurrent Dist calls need no coordination. policy.Net and
// statictree.Net implement it; any network that does not (or whose
// StaticOracle reports false because its trigger can still fire) is
// served through its shard's owner goroutine instead.
type staticServer interface {
	StaticOracle() (*statictree.DistIndex, bool)
}

// request is one unit of work sent to a shard's owner loop. The reply
// channel is client-owned and reused across requests (capacity 1), so the
// closed-loop hot path allocates nothing per request.
type request struct {
	u, v  int
	reply chan sim.Cost
}

// frequest is the fault-mode unit of work: requests carry a client
// sequence number so a reply that arrives after its deadline can be told
// apart from the reply being awaited, and replies carry a status so a
// downed shard can refuse without serving.
type frequest struct {
	u, v  int
	seq   uint64
	reply chan response
}

// response statuses.
const (
	statusOK uint8 = iota
	statusDown
)

// response is one fault-mode owner reply.
type response struct {
	cost   sim.Cost
	seq    uint64
	shard  int32
	status uint8
}

// shard owns one partition of the node space: a private network instance
// plus the single goroutine allowed to mutate it. All self-adjustment —
// rotations, trigger state, demand windows, churn scratch — happens
// inside the owner loop, which is what makes serving concurrent without
// any locks on network state (the single-writer rule, DESIGN.md §11).
// Frozen shards additionally carry their distance oracle; clients serve
// those without ever touching the loop. When a fault plan is armed every
// shard — frozen included — runs the faulted owner loop instead, which
// adds checkpointing, crash/stall injection, and snapshot+replay
// recovery (DESIGN.md §12).
type shard struct {
	id     int
	nodes  int
	net    sim.Network
	oracle *statictree.DistIndex // non-nil: frozen, clients serve lock-free
	ch     chan request
	fch    chan frequest
	done   chan struct{}
	record bool
	local  []sim.Request // processed local sequence, when record is set

	// Fault-mode state (owner-goroutine-private except stale).
	recov       recoverable
	events      []FaultEvent
	wal         []sim.Request // post-checkpoint replay log, bounded by the checkpoint interval
	localServed int64
	// stale is the last-checkpoint distance oracle published for
	// degraded-mode reads (DegradedStale only). Each publish is a fresh
	// immutable index, so clients may keep querying one they loaded
	// while the owner publishes the next.
	stale atomic.Pointer[statictree.DistIndex]

	faults FaultStats // owner-side ledger slice (crashes, recoveries, checkpoints, replays, stalls, rejections)
}

// run is the owner loop: the only goroutine that ever calls Serve on this
// shard's network. It drains the request channel in arrival order, which
// defines the shard's local request sequence — the sequence the
// sequential-equivalence property replays.
func (s *shard) run() {
	defer close(s.done)
	for rq := range s.ch {
		if s.record {
			s.local = append(s.local, sim.Request{Src: rq.u, Dst: rq.v})
		}
		rq.reply <- s.net.Serve(rq.u, rq.v)
	}
}

// checkpoint snapshots the shard's full cost-relevant network state,
// truncates the replay log (the new checkpoint supersedes it), and — in
// stale-read mode — publishes a fresh distance oracle over the
// checkpointed topology. The CheckpointInto error path is unreachable:
// Run rejects non-checkpointable networks before starting any owner.
func (s *shard) checkpoint(cp *policy.Checkpoint, publishStale bool) {
	if err := s.recov.CheckpointInto(cp); err != nil {
		panic(fmt.Sprintf("serve: shard %d checkpoint failed after Run-time validation: %v", s.id, err))
	}
	s.faults.Checkpoints++
	s.wal = s.wal[:0]
	if publishStale {
		s.stale.Store(statictree.NewDistIndex(s.recov.Tree()))
	}
}

// runFaulted is the owner loop with the fault machinery armed: it
// checkpoints every interval serves, fires the scripted events at their
// logical trigger points, rejects arrivals while down, and recovers by
// restoring the last checkpoint and replaying the post-checkpoint log —
// which provably rebuilds the exact pre-crash state (the policy layer's
// checkpoint-restore equivalence), so a recovered shard's subsequent
// serves are bit-identical to a run that never crashed.
func (s *shard) runFaulted(plan *FaultPlan) {
	defer close(s.done)
	interval := plan.checkpointInterval()
	publishStale := plan.Degraded == DegradedStale
	var cp policy.Checkpoint
	s.checkpoint(&cp, publishStale) // recovery point for a crash before the first interval
	evIdx := 0
	down := false
	var downRemaining int64
	for rq := range s.fch {
		if down {
			if downRemaining != 0 {
				if downRemaining > 0 {
					downRemaining--
				}
				s.faults.Rejected++
				rq.reply <- response{seq: rq.seq, shard: int32(s.id), status: statusDown}
				continue
			}
			// Recovery: restore the checkpoint, replay the log. The
			// restore error path is unreachable for the same reason as
			// in checkpoint (the checkpoint came from this very net).
			if err := s.recov.Restore(&cp); err != nil {
				panic(fmt.Sprintf("serve: shard %d restore failed after Run-time validation: %v", s.id, err))
			}
			for _, r := range s.wal {
				c := s.net.Serve(r.Src, r.Dst)
				s.faults.ReplayRouting += c.Routing
				s.faults.ReplayAdjust += c.Adjust
			}
			s.faults.ReplayedRequests += int64(len(s.wal))
			s.faults.Recoveries++
			down = false
		}
		if s.record {
			s.local = append(s.local, sim.Request{Src: rq.u, Dst: rq.v})
		}
		cost := s.net.Serve(rq.u, rq.v)
		s.wal = append(s.wal, sim.Request{Src: rq.u, Dst: rq.v})
		s.localServed++
		rq.reply <- response{cost: cost, seq: rq.seq, shard: int32(s.id)}
		// Post-serve boundaries: the checkpoint first, then any event at
		// the same point — a crash scheduled on a checkpoint boundary
		// loses nothing and replays nothing.
		if s.localServed%interval == 0 {
			s.checkpoint(&cp, publishStale)
		}
		for evIdx < len(s.events) && s.events[evIdx].At == s.localServed {
			ev := s.events[evIdx]
			evIdx++
			switch ev.Kind {
			case FaultCrash:
				down = true
				downRemaining = ev.RecoverAfter
				s.faults.Crashes++
			case FaultStall:
				s.faults.Stalls++
				time.Sleep(ev.Stall)
			}
		}
	}
}
