package serve

import (
	"context"
	"errors"
	"iter"
	"testing"

	"github.com/ksan-net/ksan/internal/karynet"
	"github.com/ksan-net/ksan/internal/policy"
	"github.com/ksan-net/ksan/internal/sim"
	"github.com/ksan-net/ksan/internal/workload"
)

// mkKary builds the canonical fully-reactive 4-ary SplayNet sized to a
// shard — the adjusting network the equivalence properties exercise.
func mkKary(n int) (sim.Network, error) {
	return karynet.New(n, 4)
}

// mkFrozen builds a frozen 4-ary composition (never × none): Batchable,
// so the serving layer serves it lock-free through the distance oracle.
func mkFrozen(n int) (sim.Network, error) {
	return karynet.Compose("frozen-4ary", n, 4, policy.Never(), policy.None())
}

// collect materializes a generator stream.
func collect(t *testing.T, g workload.Generator) []sim.Request {
	t.Helper()
	var reqs []sim.Request
	for rq, err := range g.Requests() {
		if err != nil {
			t.Fatal(err)
		}
		reqs = append(reqs, rq)
	}
	return reqs
}

// replay serves a local request sequence sequentially on a fresh net and
// returns its cost totals — the sequential-semantics reference the
// concurrent layer must match shard for shard.
func replay(t *testing.T, mk func(n int) (sim.Network, error), n int, reqs []sim.Request) (routing, adjust int64) {
	t.Helper()
	net, err := mk(n)
	if err != nil {
		t.Fatal(err)
	}
	for _, rq := range reqs {
		c := net.Serve(rq.Src, rq.Dst)
		routing += c.Routing
		adjust += c.Adjust
	}
	return routing, adjust
}

// TestServeSingleShardGolden pins the anchor of the whole construction:
// one shard, one client reproduces the sequential engine bit-for-bit on
// the repo's golden workload (the same totals golden_test.go pins for the
// engine path).
func TestServeSingleShardGolden(t *testing.T) {
	gen := workload.TemporalGen(127, 50_000, 0.75, 42)
	stats, err := Run(context.Background(), Config{Shards: 1, Clients: 1}, mkKary, gen)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Routing != 123648 || stats.Adjust != 82864 {
		t.Errorf("routing/adjust = %d/%d, want golden 123648/82864", stats.Routing, stats.Adjust)
	}
	if stats.Requests != 50_000 || stats.CrossShard != 0 {
		t.Errorf("requests/cross = %d/%d, want 50000/0", stats.Requests, stats.CrossShard)
	}
	if got := stats.RoutingHist.Sum(); got != stats.Routing {
		t.Errorf("routing histogram sum %d != routing %d", got, stats.Routing)
	}
	if got := stats.RoutingHist.Count(); got != stats.Requests {
		t.Errorf("routing histogram count %d != requests %d", got, stats.Requests)
	}
	ps := stats.PerShard[0]
	if ps.Requests != 50_000 || ps.Routing != 123648 || ps.Adjust != 82864 {
		t.Errorf("per-shard totals %+v diverge from aggregate", ps)
	}
}

// TestServeMultiShardSingleClient pins the S-shard ≡ S-sequential-runs
// property in its deterministic form: with one client, every shard serves
// exactly Partition.Project's subsequence, so its totals equal a
// sequential replay of that subsequence on a fresh identical network.
func TestServeMultiShardSingleClient(t *testing.T) {
	for _, tc := range []struct {
		shards int
		seed   int64
	}{{2, 1}, {4, 1}, {4, 7}, {8, 7}} {
		gen := workload.TemporalGen(200, 20_000, 0.6, tc.seed)
		stats, err := Run(context.Background(), Config{Shards: tc.shards, Clients: 1}, mkKary, gen)
		if err != nil {
			t.Fatal(err)
		}
		part, err := NewPartition(200, tc.shards)
		if err != nil {
			t.Fatal(err)
		}
		proj := part.Project(collect(t, gen))
		var sumRouting, sumAdjust int64
		for sh := 0; sh < tc.shards; sh++ {
			wantR, wantA := replay(t, mkKary, part.Size(sh), proj[sh])
			ps := stats.PerShard[sh]
			if ps.Routing != wantR || ps.Adjust != wantA {
				t.Errorf("S=%d seed=%d shard %d: routing/adjust = %d/%d, sequential replay %d/%d",
					tc.shards, tc.seed, sh, ps.Routing, ps.Adjust, wantR, wantA)
			}
			if ps.Requests != int64(len(proj[sh])) {
				t.Errorf("S=%d seed=%d shard %d: %d local serves, projection has %d",
					tc.shards, tc.seed, sh, ps.Requests, len(proj[sh]))
			}
			sumRouting += ps.Routing
			sumAdjust += ps.Adjust
		}
		// The documented cost rule: aggregate routing exceeds the shard
		// sum by exactly one backbone hop per cross-shard request.
		if want := sumRouting + InterShardHop*stats.CrossShard; stats.Routing != want {
			t.Errorf("S=%d seed=%d: aggregate routing %d, want shard sum %d + %d hops",
				tc.shards, tc.seed, stats.Routing, sumRouting, stats.CrossShard)
		}
		if stats.Adjust != sumAdjust {
			t.Errorf("S=%d seed=%d: aggregate adjust %d != shard sum %d", tc.shards, tc.seed, stats.Adjust, sumAdjust)
		}
	}
}

// TestServeMultiClientRecordLocal pins the equivalence property under
// real concurrency: with C clients the per-shard arrival order is
// nondeterministic, but each shard still serves one well-defined sequence
// through its owner loop. RecordLocal captures that sequence; replaying
// it sequentially on a fresh identical network must reproduce the shard's
// totals exactly. Run under -race in CI, this is also the single-writer
// assertion: any unsynchronized second writer would trip the detector.
func TestServeMultiClientRecordLocal(t *testing.T) {
	const n, m, shards, clients = 200, 20_000, 4, 4
	gen := workload.TemporalGen(n, m, 0.6, 3)
	stats, err := Run(context.Background(),
		Config{Shards: shards, Clients: clients, RecordLocal: true}, mkKary, gen)
	if err != nil {
		t.Fatal(err)
	}
	part, err := NewPartition(n, shards)
	if err != nil {
		t.Fatal(err)
	}
	var localTotal int64
	for sh := 0; sh < shards; sh++ {
		ps := stats.PerShard[sh]
		if ps.Local == nil {
			t.Fatalf("shard %d: RecordLocal left no sequence", sh)
		}
		if int64(len(ps.Local)) != ps.Requests {
			t.Fatalf("shard %d: recorded %d requests, accounted %d", sh, len(ps.Local), ps.Requests)
		}
		wantR, wantA := replay(t, mkKary, part.Size(sh), ps.Local)
		if ps.Routing != wantR || ps.Adjust != wantA {
			t.Errorf("shard %d: routing/adjust = %d/%d, replay of recorded sequence %d/%d",
				sh, ps.Routing, ps.Adjust, wantR, wantA)
		}
		localTotal += ps.Requests
	}
	// Conservation: every stream request shows up once, cross pairs twice.
	if want := int64(m) + stats.CrossShard; localTotal != want {
		t.Errorf("local serves %d, want %d requests + %d cross halves", localTotal, m, stats.CrossShard)
	}
	if stats.Requests != m {
		t.Errorf("measured %d requests, want the full stream %d", stats.Requests, m)
	}
}

// TestServeFrozenMultiClient pins the lock-free path: on a frozen
// composition request costs are order-independent, so a concurrent
// multi-client run must produce exactly the totals of the sequential
// single-client run. Under -race this asserts the immutable-oracle claim.
func TestServeFrozenMultiClient(t *testing.T) {
	gen := workload.UniformGen(200, 30_000, 5)
	seq, err := Run(context.Background(), Config{Shards: 4, Clients: 1}, mkFrozen, gen)
	if err != nil {
		t.Fatal(err)
	}
	con, err := Run(context.Background(), Config{Shards: 4, Clients: 8}, mkFrozen, gen)
	if err != nil {
		t.Fatal(err)
	}
	if con.Routing != seq.Routing || con.Adjust != 0 || seq.Adjust != 0 {
		t.Errorf("concurrent routing/adjust = %d/%d, sequential %d/%d",
			con.Routing, con.Adjust, seq.Routing, seq.Adjust)
	}
	if con.Requests != seq.Requests || con.CrossShard != seq.CrossShard {
		t.Errorf("concurrent requests/cross = %d/%d, sequential %d/%d",
			con.Requests, con.CrossShard, seq.Requests, seq.CrossShard)
	}
	for sh := range con.PerShard {
		if con.PerShard[sh].Routing != seq.PerShard[sh].Routing {
			t.Errorf("shard %d: concurrent routing %d, sequential %d",
				sh, con.PerShard[sh].Routing, seq.PerShard[sh].Routing)
		}
	}
	// The histograms observe the same multiset of per-request costs.
	for _, q := range []float64{0.5, 0.99, 1} {
		if con.RoutingHist.Percentile(q) != seq.RoutingHist.Percentile(q) {
			t.Errorf("Percentile(%v): concurrent %v, sequential %v",
				q, con.RoutingHist.Percentile(q), seq.RoutingHist.Percentile(q))
		}
	}
}

// TestServeWarmup pins the measurement-region split: warmup requests
// adjust network state and are reported separately, and warm + measured
// totals equal a run with no warmup at all.
func TestServeWarmup(t *testing.T) {
	gen := workload.TemporalGen(127, 10_000, 0.5, 11)
	full, err := Run(context.Background(), Config{}, mkKary, gen)
	if err != nil {
		t.Fatal(err)
	}
	const w = 2_000
	warm, err := Run(context.Background(), Config{Warmup: w}, mkKary, gen)
	if err != nil {
		t.Fatal(err)
	}
	if warm.WarmupRequests != w || warm.Requests != 10_000-w {
		t.Errorf("warmup/measured = %d/%d, want %d/%d", warm.WarmupRequests, warm.Requests, w, 10_000-w)
	}
	if warm.Routing+warm.WarmupRouting != full.Routing ||
		warm.Adjust+warm.WarmupAdjust != full.Adjust {
		t.Errorf("warm+measured = %d/%d, full run = %d/%d",
			warm.Routing+warm.WarmupRouting, warm.Adjust+warm.WarmupAdjust, full.Routing, full.Adjust)
	}
	if got := warm.RoutingHist.Count(); got != 10_000-w {
		t.Errorf("histogram holds %d observations, want measured region %d", got, 10_000-w)
	}
}

// TestServeBudget pins MaxRequests: the run serves exactly the budget,
// split across clients.
func TestServeBudget(t *testing.T) {
	gen := workload.UniformGen(127, 100_000, 2)
	for _, clients := range []int{1, 3} {
		stats, err := Run(context.Background(),
			Config{Shards: 2, Clients: clients, MaxRequests: 5_000}, mkKary, gen)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Requests != 5_000 {
			t.Errorf("clients=%d: served %d, want budget 5000", clients, stats.Requests)
		}
	}
}

// errGen yields a few requests, then fails — the terminal-error contract.
type errGen struct{ boom error }

func (e errGen) Label() string { return "errgen" }
func (e errGen) Nodes() int    { return 16 }
func (e errGen) Len() int      { return workload.UnknownLen }
func (e errGen) Requests() iter.Seq2[sim.Request, error] {
	return func(yield func(sim.Request, error) bool) {
		for i := 0; i < 10; i++ {
			if !yield(sim.Request{Src: 1 + i%16, Dst: 1 + (i+1)%16}, nil) {
				return
			}
		}
		yield(sim.Request{}, e.boom)
	}
}

func TestServeStreamError(t *testing.T) {
	boom := errors.New("disk on fire")
	_, err := Run(context.Background(), Config{}, mkKary, errGen{boom: boom})
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want the stream error surfaced", err)
	}
}

func TestServeCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	stats, err := Run(ctx, Config{}, mkKary, workload.UniformGen(64, 1_000_000, 1))
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if stats == nil {
		t.Errorf("cancellation must still return partial stats")
	}
}

func TestServeInvalidConfig(t *testing.T) {
	gen := workload.UniformGen(64, 100, 1)
	for _, cfg := range []Config{
		{Shards: -1}, {Clients: -2}, {Warmup: -1}, {MaxRequests: -1}, {TargetOps: -1},
	} {
		if _, err := Run(context.Background(), cfg, mkKary, gen); err == nil {
			t.Errorf("config %+v must be rejected", cfg)
		}
	}
	// Shards the node space cannot sustain.
	if _, err := Run(context.Background(), Config{Shards: 40}, mkKary, workload.UniformGen(50, 100, 1)); err == nil {
		t.Errorf("oversharding must surface the partition error")
	}
}
