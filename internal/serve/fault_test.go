package serve

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"github.com/ksan-net/ksan/internal/karynet"
	"github.com/ksan-net/ksan/internal/sim"
	"github.com/ksan-net/ksan/internal/splaynet"
	"github.com/ksan-net/ksan/internal/workload"
)

// TestRecoveryEquivalenceGolden is the new rung of the equivalence
// ladder: with S=1/C=1 and crashes that recover on the next arrival
// (RecoverAfter=0, no request lost), snapshot+replay recovery must
// reproduce the engine golden totals bit-for-bit — routing 123648 /
// adjust 82864 on the repo's golden workload, exactly as if no crash had
// ever happened. Crash points cover mid-interval (non-empty replay log)
// and an exact checkpoint boundary (empty replay log).
func TestRecoveryEquivalenceGolden(t *testing.T) {
	gen := workload.TemporalGen(127, 50_000, 0.75, 42)
	plan := &FaultPlan{
		CheckpointEvery: 1000,
		Events: []FaultEvent{
			{Shard: 0, At: 1500, Kind: FaultCrash, RecoverAfter: 0},
			{Shard: 0, At: 3000, Kind: FaultCrash, RecoverAfter: 0}, // checkpoint boundary
			{Shard: 0, At: 49_999, Kind: FaultCrash, RecoverAfter: 0},
		},
	}
	stats, err := Run(context.Background(), Config{Shards: 1, Clients: 1, Faults: plan}, mkKary, gen)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Routing != 123648 || stats.Adjust != 82864 {
		t.Errorf("routing/adjust = %d/%d under injected crashes, want golden 123648/82864",
			stats.Routing, stats.Adjust)
	}
	if stats.Requests != 50_000 {
		t.Errorf("served %d requests, want all 50000 (RecoverAfter=0 loses nothing)", stats.Requests)
	}
	f := stats.Faults
	if f == nil {
		t.Fatal("no fault ledger despite an armed plan")
	}
	if f.Crashes != 3 || f.Recoveries != 3 {
		t.Errorf("crashes/recoveries = %d/%d, want 3/3", f.Crashes, f.Recoveries)
	}
	// Replay lengths are fully determined by the logical schedule:
	// 1500 % 1000 = 500 post-checkpoint requests, 3000 % 1000 = 0 (the
	// checkpoint fires first at a shared boundary), 49999 % 1000 = 999.
	if f.ReplayedRequests != 500+0+999 {
		t.Errorf("replayed %d requests, want 1499", f.ReplayedRequests)
	}
	if f.Rejected != 0 || f.FailedRequests != 0 || f.DegradedRequests != 0 || f.Timeouts != 0 {
		t.Errorf("ledger shows losses %+v, want none under RecoverAfter=0", *f)
	}
	if f.Checkpoints != 1+50 {
		t.Errorf("checkpoints = %d, want 51 (initial + every 1000 serves)", f.Checkpoints)
	}
	if f.ReplayRouting == 0 || f.ReplayAdjust == 0 {
		t.Error("replays charged no cost; the replay path was not exercised")
	}
}

// TestRecoveryEquivalenceMultiShard extends the rung to S shards: with
// one client and lossless crashes scheduled on several shards, aggregate
// and per-shard totals must equal the fault-free run's exactly.
func TestRecoveryEquivalenceMultiShard(t *testing.T) {
	gen := workload.TemporalGen(200, 20_000, 0.6, 7)
	base, err := Run(context.Background(), Config{Shards: 4, Clients: 1}, mkKary, gen)
	if err != nil {
		t.Fatal(err)
	}
	plan := &FaultPlan{
		CheckpointEvery: 512,
		Events: []FaultEvent{
			{Shard: 0, At: 700, Kind: FaultCrash, RecoverAfter: 0},
			{Shard: 1, At: 1, Kind: FaultCrash, RecoverAfter: 0}, // crash after the very first serve
			{Shard: 2, At: 1024, Kind: FaultCrash, RecoverAfter: 0},
			{Shard: 2, At: 3000, Kind: FaultCrash, RecoverAfter: 0},
		},
	}
	faulted, err := Run(context.Background(), Config{Shards: 4, Clients: 1, Faults: plan}, mkKary, gen)
	if err != nil {
		t.Fatal(err)
	}
	if faulted.Routing != base.Routing || faulted.Adjust != base.Adjust ||
		faulted.Requests != base.Requests || faulted.CrossShard != base.CrossShard {
		t.Errorf("faulted totals %d/%d/%d/%d, fault-free %d/%d/%d/%d",
			faulted.Routing, faulted.Adjust, faulted.Requests, faulted.CrossShard,
			base.Routing, base.Adjust, base.Requests, base.CrossShard)
	}
	for sh := range base.PerShard {
		b, f := base.PerShard[sh], faulted.PerShard[sh]
		if f.Routing != b.Routing || f.Adjust != b.Adjust || f.Requests != b.Requests {
			t.Errorf("shard %d: faulted %d/%d/%d, fault-free %d/%d/%d",
				sh, f.Routing, f.Adjust, f.Requests, b.Routing, b.Adjust, b.Requests)
		}
	}
	if faulted.PerShard[2].Crashes != 2 || faulted.PerShard[2].Recoveries != 2 {
		t.Errorf("shard 2 ledger %d/%d, want 2 crashes and 2 recoveries",
			faulted.PerShard[2].Crashes, faulted.PerShard[2].Recoveries)
	}
	if faulted.PerShard[3].Crashes != 0 {
		t.Error("unscheduled shard reports crashes")
	}
}

// TestRecoveryEquivalenceMultiClient pins the ladder under real
// concurrency and crash recovery at once: with C clients the arrival
// order is nondeterministic, but each shard's recorded local sequence
// replayed on a fresh identical network must still reproduce the shard's
// totals — recovery restores exact state, so the crash is invisible to
// the sequence semantics. Run under -race in CI, this also asserts the
// fault machinery keeps the single-writer rule.
func TestRecoveryEquivalenceMultiClient(t *testing.T) {
	const n, m, shards, clients = 200, 20_000, 4, 4
	gen := workload.TemporalGen(n, m, 0.6, 3)
	plan := &FaultPlan{
		CheckpointEvery: 256,
		Events: []FaultEvent{
			{Shard: 0, At: 300, Kind: FaultCrash, RecoverAfter: 0},
			{Shard: 1, At: 900, Kind: FaultCrash, RecoverAfter: 0},
			{Shard: 3, At: 2000, Kind: FaultCrash, RecoverAfter: 0},
		},
	}
	stats, err := Run(context.Background(),
		Config{Shards: shards, Clients: clients, RecordLocal: true, Faults: plan}, mkKary, gen)
	if err != nil {
		t.Fatal(err)
	}
	part, err := NewPartition(n, shards)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Faults.Crashes != 3 || stats.Faults.Recoveries != 3 {
		t.Fatalf("crashes/recoveries = %d/%d, want 3/3", stats.Faults.Crashes, stats.Faults.Recoveries)
	}
	for sh := 0; sh < shards; sh++ {
		ps := stats.PerShard[sh]
		if int64(len(ps.Local)) != ps.Requests {
			t.Fatalf("shard %d: recorded %d, accounted %d", sh, len(ps.Local), ps.Requests)
		}
		wantR, wantA := replay(t, mkKary, part.Size(sh), ps.Local)
		if ps.Routing != wantR || ps.Adjust != wantA {
			t.Errorf("shard %d: routing/adjust %d/%d, sequential replay of recorded sequence %d/%d",
				sh, ps.Routing, ps.Adjust, wantR, wantA)
		}
	}
	if stats.Requests != m {
		t.Errorf("measured %d requests, want the full stream %d", stats.Requests, m)
	}
}

// TestFaultLedgerDeterministic pins that a purely logical schedule (no
// timeouts, no stalls) yields a bit-identical ledger and totals across
// runs: rejected counts, failed requests, and serving totals are all
// functions of the schedule, never of timing.
func TestFaultLedgerDeterministic(t *testing.T) {
	gen := workload.TemporalGen(127, 5_000, 0.7, 9)
	mkPlan := func() *FaultPlan {
		return &FaultPlan{
			CheckpointEvery: 500,
			Degraded:        DegradedFail,
			Retries:         1,
			Events: []FaultEvent{
				{Shard: 0, At: 1000, Kind: FaultCrash, RecoverAfter: 6},
				{Shard: 0, At: 4000, Kind: FaultCrash, RecoverAfter: 3},
			},
		}
	}
	run := func() *Stats {
		stats, err := Run(context.Background(), Config{Shards: 1, Clients: 1, Faults: mkPlan()}, mkKary, gen)
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	a, b := run(), run()
	if *a.Faults != *b.Faults {
		t.Errorf("ledgers diverge across identical runs:\n%+v\n%+v", *a.Faults, *b.Faults)
	}
	if a.Routing != b.Routing || a.Adjust != b.Adjust || a.Requests != b.Requests {
		t.Errorf("totals diverge: %d/%d/%d vs %d/%d/%d",
			a.Routing, a.Adjust, a.Requests, b.Routing, b.Adjust, b.Requests)
	}
	// With one client and Retries=1, each failed request makes exactly two
	// attempts; RecoverAfter=6 and 3 reject 6+3 attempts = 3+2 failed
	// requests, then the next arrival recovers. One of the 3-rejection
	// crash's requests takes one rejection then one successful retry...
	// pin the exact arithmetic instead of re-deriving it loosely:
	f := a.Faults
	if f.Rejected != 9 {
		t.Errorf("rejected = %d, want 9 (6+3 scheduled rejections)", f.Rejected)
	}
	// 6 rejections consume: req1 (2 attempts), req2 (2), req3 (2) → 3
	// failed; 3 rejections: req1 (2 attempts), req2 first attempt rejected,
	// retry lands post-recovery and serves → 1 failed, 1 recovered retry.
	if f.FailedRequests != 4 {
		t.Errorf("failed = %d, want 4", f.FailedRequests)
	}
	if f.Retries != 5 {
		t.Errorf("retries = %d, want 5", f.Retries)
	}
	if got := a.Requests + a.WarmupRequests + f.FailedRequests; got != 5_000 {
		t.Errorf("ok+failed = %d, want 5000 (conservation)", got)
	}
	if f.Crashes != 2 || f.Recoveries != 2 || f.DegradedRequests != 0 || f.Timeouts != 0 {
		t.Errorf("unexpected ledger %+v", *f)
	}
}

// TestDegradedStaleServes pins the stale-read fallback: a shard that
// crashes and never recovers keeps serving read-only through its
// last-checkpoint oracle. Every post-crash request degrades (none fail),
// its routing cost is charged to the ledger, and the healthy totals stop
// at the crash point.
func TestDegradedStaleServes(t *testing.T) {
	const m = 1_000
	const crashAt = 100
	gen := workload.TemporalGen(64, m, 0.6, 5)
	plan := &FaultPlan{
		Degraded: DegradedStale,
		Retries:  1,
		Events:   []FaultEvent{{Shard: 0, At: crashAt, Kind: FaultCrash, RecoverAfter: -1}},
	}
	stats, err := Run(context.Background(), Config{Shards: 1, Clients: 1, Faults: plan}, mkKary, gen)
	if err != nil {
		t.Fatal(err)
	}
	f := stats.Faults
	if stats.Requests != crashAt {
		t.Errorf("healthy requests = %d, want %d (everything before the crash)", stats.Requests, crashAt)
	}
	if f.DegradedRequests != m-crashAt || f.FailedRequests != 0 {
		t.Errorf("degraded/failed = %d/%d, want %d/0", f.DegradedRequests, f.FailedRequests, m-crashAt)
	}
	if f.DegradedRouting == 0 {
		t.Error("degraded serves charged no routing cost")
	}
	// Each degraded request burns its retry against the downed shard:
	// 2 attempts per request, all rejected.
	if f.Rejected != 2*(m-crashAt) || f.Retries != m-crashAt {
		t.Errorf("rejected/retries = %d/%d, want %d/%d", f.Rejected, f.Retries, 2*(m-crashAt), m-crashAt)
	}
	if f.Recoveries != 0 {
		t.Errorf("recoveries = %d for a RecoverAfter=-1 crash", f.Recoveries)
	}
	// The stale oracle answers from the initial checkpoint (the balanced
	// starting tree — the crash predates the first interval checkpoint),
	// so degraded routing is deterministic: pin it against a direct
	// replay on the frozen starting topology.
	frozen, err := mkFrozen(64)
	if err != nil {
		t.Fatal(err)
	}
	reqs := collect(t, gen)
	var wantDegraded int64
	for _, rq := range reqs[crashAt:] {
		wantDegraded += frozen.Serve(rq.Src, rq.Dst).Routing
	}
	if f.DegradedRouting != wantDegraded {
		t.Errorf("degraded routing = %d, want %d (stale reads on the checkpoint topology)",
			f.DegradedRouting, wantDegraded)
	}
}

// TestDegradedFailFast pins the fail-fast policy: same scenario, but
// every post-crash request fails instead of degrading.
func TestDegradedFailFast(t *testing.T) {
	const m = 1_000
	const crashAt = 100
	gen := workload.TemporalGen(64, m, 0.6, 5)
	plan := &FaultPlan{
		Degraded: DegradedFail,
		Events:   []FaultEvent{{Shard: 0, At: crashAt, Kind: FaultCrash, RecoverAfter: -1}},
	}
	stats, err := Run(context.Background(), Config{Shards: 1, Clients: 1, Faults: plan}, mkKary, gen)
	if err != nil {
		t.Fatal(err)
	}
	f := stats.Faults
	if f.FailedRequests != m-crashAt || f.DegradedRequests != 0 {
		t.Errorf("failed/degraded = %d/%d, want %d/0", f.FailedRequests, f.DegradedRequests, m-crashAt)
	}
	if stats.Requests != crashAt {
		t.Errorf("healthy requests = %d, want %d", stats.Requests, crashAt)
	}
}

// TestFaultedFrozenShard: with a plan armed, frozen shards are served
// through owner loops too (the lock-free oracle path cannot inject
// faults), and lossless crash recovery holds on them trivially.
func TestFaultedFrozenShard(t *testing.T) {
	gen := workload.UniformGen(100, 5_000, 5)
	base, err := Run(context.Background(), Config{Shards: 2, Clients: 1}, mkFrozen, gen)
	if err != nil {
		t.Fatal(err)
	}
	plan := &FaultPlan{Events: []FaultEvent{{Shard: 1, At: 500, Kind: FaultCrash, RecoverAfter: 0}}}
	faulted, err := Run(context.Background(), Config{Shards: 2, Clients: 1, Faults: plan}, mkFrozen, gen)
	if err != nil {
		t.Fatal(err)
	}
	if faulted.Routing != base.Routing || faulted.Requests != base.Requests {
		t.Errorf("faulted frozen run %d/%d, fault-free %d/%d",
			faulted.Routing, faulted.Requests, base.Routing, base.Requests)
	}
	if faulted.Faults.Crashes != 1 || faulted.Faults.Recoveries != 1 {
		t.Errorf("ledger %+v, want one crash and one recovery", *faulted.Faults)
	}
}

// TestStallAndTimeout exercises the wall-clock corner: a stalled owner
// trips client deadlines, timed-out requests fail without retry, and
// the late replies of delivered-but-slow requests are drained and
// ledgered rather than lost. Counts here are timing-dependent, so the
// assertions are structural, plus the conservation law.
func TestStallAndTimeout(t *testing.T) {
	const m = 200
	gen := workload.TemporalGen(64, m, 0.6, 13)
	plan := &FaultPlan{
		Timeout: 20 * time.Millisecond,
		Events:  []FaultEvent{{Shard: 0, At: 10, Kind: FaultStall, Stall: 150 * time.Millisecond}},
	}
	stats, err := Run(context.Background(), Config{Shards: 1, Clients: 1, Faults: plan}, mkKary, gen)
	if err != nil {
		t.Fatal(err)
	}
	f := stats.Faults
	if f.Stalls != 1 {
		t.Errorf("stalls = %d, want 1", f.Stalls)
	}
	if f.Timeouts == 0 || f.FailedRequests == 0 {
		t.Errorf("stall tripped no deadlines: timeouts=%d failed=%d", f.Timeouts, f.FailedRequests)
	}
	if got := stats.Requests + stats.WarmupRequests + f.FailedRequests + f.DegradedRequests; got != m {
		t.Errorf("ok+failed+degraded = %d, want %d (conservation)", got, m)
	}
	// Per-shard totals count what the shard actually served: OK requests
	// plus late-served halves.
	if want := stats.Requests + f.LateReplies; stats.PerShard[0].Requests != want {
		t.Errorf("shard served %d, want %d ok + %d late", stats.PerShard[0].Requests, stats.Requests, f.LateReplies)
	}
}

// TestFaultPlanValidation pins the spec-facing validation surface.
func TestFaultPlanValidation(t *testing.T) {
	gen := workload.UniformGen(64, 100, 1)
	for name, plan := range map[string]*FaultPlan{
		"shard out of range":  {Events: []FaultEvent{{Shard: 2, At: 1, Kind: FaultCrash}}},
		"negative shard":      {Events: []FaultEvent{{Shard: -1, At: 1, Kind: FaultCrash}}},
		"at zero":             {Events: []FaultEvent{{Shard: 0, At: 0, Kind: FaultCrash}}},
		"duplicate at":        {Events: []FaultEvent{{Shard: 0, At: 5, Kind: FaultCrash}, {Shard: 0, At: 5, Kind: FaultStall, Stall: time.Millisecond}}},
		"crash with stall":    {Events: []FaultEvent{{Shard: 0, At: 1, Kind: FaultCrash, Stall: time.Second}}},
		"stall without dur":   {Events: []FaultEvent{{Shard: 0, At: 1, Kind: FaultStall}}},
		"stall with recover":  {Events: []FaultEvent{{Shard: 0, At: 1, Kind: FaultStall, Stall: time.Second, RecoverAfter: 2}}},
		"recover below -1":    {Events: []FaultEvent{{Shard: 0, At: 1, Kind: FaultCrash, RecoverAfter: -2}}},
		"unknown kind":        {Events: []FaultEvent{{Shard: 0, At: 1, Kind: FaultKind(9)}}},
		"unknown degraded":    {Degraded: DegradedMode(7)},
		"negative checkpoint": {CheckpointEvery: -1},
		"negative timeout":    {Timeout: -time.Second},
		"negative retries":    {Retries: -1},
	} {
		if _, err := Run(context.Background(), Config{Shards: 2, Clients: 1, Faults: plan}, mkKary, gen); err == nil {
			t.Errorf("%s: plan accepted", name)
		}
	}

	// A custom substrate cannot checkpoint: arming any plan must fail,
	// and the error path must not leak the owners already started.
	mkSplay := func(n int) (sim.Network, error) { return splaynet.New(n) }
	before := runtime.NumGoroutine()
	_, err := Run(context.Background(),
		Config{Shards: 2, Clients: 1, Faults: &FaultPlan{}}, mkSplay, gen)
	if err == nil {
		t.Error("fault plan over a custom substrate accepted")
	}
	waitForGoroutines(t, before)
}

// waitForGoroutines waits until the goroutine count drops back to the
// baseline (scheduler exits are asynchronous), failing with a full stack
// dump if it never does.
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutines leaked: %d > baseline %d\n%s", runtime.NumGoroutine(), baseline, buf[:n])
}

// TestServeMkFailureShutsDownOwners is the regression test for the PR 8
// shard-construction leak: when mk fails mid-construction, the owner
// loops already started for earlier shards must be shut down, not leaked.
func TestServeMkFailureShutsDownOwners(t *testing.T) {
	gen := workload.UniformGen(100, 1000, 1)
	boom := errors.New("shard 2 refused to build")
	built := 0
	mk := func(n int) (sim.Network, error) {
		if built == 2 {
			return nil, boom
		}
		built++
		return karynet.New(n, 4)
	}
	before := runtime.NumGoroutine()
	_, err := Run(context.Background(), Config{Shards: 4, Clients: 2}, mk, gen)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the mk error", err)
	}
	waitForGoroutines(t, before)

	// Same property with a fault plan armed (faulted owner loops).
	built = 0
	before = runtime.NumGoroutine()
	_, err = Run(context.Background(),
		Config{Shards: 4, Clients: 2, Faults: &FaultPlan{}}, mk, gen)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the mk error", err)
	}
	waitForGoroutines(t, before)
}

// TestServeCancellationLatencyBounded is the regression test for the
// stop-deaf pacing sleep: a client throttled to one request per minute
// must still react to cancellation within milliseconds, not a pacing
// interval.
func TestServeCancellationLatencyBounded(t *testing.T) {
	gen := workload.UniformGen(64, 100_000, 1)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	stats, err := Run(ctx, Config{Shards: 1, Clients: 1, TargetOps: 1.0 / 60}, mkKary, gen)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if stats == nil {
		t.Fatal("cancellation returned no partial stats")
	}
	// The pacing interval is 60s; anything close to that means the sleep
	// ignored the stop. Allow generous CI scheduling slack.
	if elapsed > 5*time.Second {
		t.Errorf("cancellation took %v with a 60s pacing interval; the sleep is not stop-aware", elapsed)
	}
}

// TestServeCancelMidFlight pins the cancellation semantics end to end:
// cancelling a run mid-flight returns partial Stats with ctx.Err(), every
// shard owner and the rate reporter exit, and the generator is untouched
// state-wise — a second run on it completes with full totals.
func TestServeCancelMidFlight(t *testing.T) {
	const m = 400_000 // far more than the cancel window can serve
	gen := workload.TemporalGen(127, m, 0.75, 42)
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	rateSeen := false
	cfg := Config{
		Shards: 2, Clients: 2,
		OnRate:    func(RateSample) { rateSeen = true },
		RateEvery: 10 * time.Millisecond,
	}
	go func() {
		time.Sleep(60 * time.Millisecond)
		cancel()
	}()
	stats, err := Run(ctx, cfg, mkKary, gen)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if stats == nil {
		t.Fatal("no partial stats")
	}
	total := stats.Requests + stats.WarmupRequests
	if total <= 0 || total >= m {
		t.Errorf("partial run served %d of %d; expected a strict mid-flight cut", total, m)
	}
	if !rateSeen {
		t.Error("rate reporter never fired before cancellation")
	}
	waitForGoroutines(t, before)

	// The generator contract: every Requests() call is an independent
	// pass, so the aborted pass must not disturb a fresh full run.
	full, err := Run(context.Background(), Config{Shards: 1, Clients: 1}, mkKary, gen)
	if err != nil {
		t.Fatal(err)
	}
	if full.Requests != m {
		t.Errorf("post-cancel run served %d, want the full stream %d", full.Requests, m)
	}
}
