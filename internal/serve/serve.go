package serve

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/ksan-net/ksan/internal/sim"
	"github.com/ksan-net/ksan/internal/workload"
)

// Config parameterizes one serving run. The zero value means: one shard,
// as many clients as shards, unthrottled, no warmup, serve the stream to
// its end, no latency sampling, no live-rate reporting.
type Config struct {
	// Shards is the number of node-space partitions (>= 1; 0 means 1).
	Shards int
	// Clients is the number of closed-loop client routines (0 means one
	// per shard). Each client iterates its own round-robin substream of
	// the workload (workload.SplitGen), so request generation needs no
	// locks; the cost is that every client scans the full underlying
	// stream to extract its share (generators are O(ns)/request, so this
	// is generation work, not serve-path work).
	Clients int
	// TargetOps throttles the aggregate offered load to this many
	// requests/sec, spread evenly across clients (0 = unthrottled).
	TargetOps float64
	// Warmup is the number of requests each client serves before its
	// measurement region begins. Warmup requests adjust network state and
	// are excluded from measured totals and histograms (reported
	// separately); note this is per client routine, not a global prefix —
	// with one client the two coincide.
	Warmup int
	// MaxRequests caps the total requests served across all clients
	// (split evenly; 0 = serve every client's substream to its end).
	MaxRequests int64
	// Duration stops the run after this much wall-clock time (0 = no
	// limit). Stopping by duration is a normal completion, not an error.
	Duration time.Duration
	// LatencySample measures closed-loop request latency on every k-th
	// request of each client (1 = every request, 0 = latency off). The
	// routing-cost histograms are always exact and unsampled.
	LatencySample int
	// RecordLocal makes every shard record the local request sequence it
	// processed, and forces all shards — frozen included — through their
	// owner loops so the sequence is well-defined. Test instrumentation
	// for the sequential-equivalence property; leave off under load.
	RecordLocal bool
	// OnRate, when set, receives a live aggregate-throughput sample every
	// RateEvery (default 1s) from a reporter goroutine.
	OnRate    func(RateSample)
	RateEvery time.Duration
	// Faults arms the deterministic fault-injection machinery (DESIGN.md
	// §12): scripted crashes/stalls at logical trigger points, periodic
	// checkpoints with snapshot+replay recovery, client deadlines/retries,
	// and degraded-mode serving. nil (the default) disarms everything and
	// the run uses the unchanged PR 8 hot path. With a plan armed, every
	// shard — frozen included — is served through its owner loop, and
	// every shard network must support exact checkpoint/restore
	// (tree-backed policy compositions do; custom substrates are
	// rejected).
	Faults *FaultPlan
}

// RateSample is one live-throughput report.
type RateSample struct {
	Elapsed  time.Duration
	Requests int64   // requests completed since the run started
	Rate     float64 // requests/sec since the previous sample
}

// ShardStats is one shard's serving totals: every local serve it
// performed (gateway halves included, warmup included — these are the
// raw sequential-semantics totals the equivalence property pins).
type ShardStats struct {
	Shard    int
	Nodes    int
	Requests int64 // local serve calls (a cross-shard request counts on both shards)
	Routing  int64
	Adjust   int64
	Hist     *Hist // local serve routing costs
	// Local is the processed local request sequence (RecordLocal runs
	// only; nil otherwise).
	Local []sim.Request
	// Fault-ledger slice of this shard (zero unless a plan was armed).
	Crashes     int64
	Recoveries  int64
	Checkpoints int64
	Replayed    int64 // requests re-served from the replay log
	Rejected    int64 // down replies sent while crashed
}

// Stats aggregates a serving run. The measurement region excludes each
// client's warmup prefix; warmup totals are reported separately, mirroring
// the engine's Result shape. Cross-shard requests charge their two local
// path segments plus InterShardHop, so aggregate Routing exceeds the sum
// of per-shard Routing by exactly InterShardHop per cross-shard request.
type Stats struct {
	Network string
	Trace   string
	Shards  int
	Clients int

	Requests   int64 // measurement region
	Routing    int64
	Adjust     int64
	CrossShard int64

	WarmupRequests int64
	WarmupRouting  int64
	WarmupAdjust   int64
	WarmupCross    int64

	RoutingHist *Hist // full per-request routing cost (hop included), measured region
	LatencyHist *Hist // sampled closed-loop latency, nanoseconds, measured region

	PerShard []ShardStats

	// Faults is the run's fault ledger (nil when no plan was armed).
	Faults *FaultStats

	Elapsed    time.Duration
	Throughput float64 // requests/sec, warmup included (the engine's convention)
}

// Total returns measured routing plus adjustment cost.
func (s *Stats) Total() int64 { return s.Routing + s.Adjust }

// Run executes one serving run: partition the node space of gen across
// cfg.Shards shards, build one network per shard with mk (sized to the
// shard's node count), and drive the shards from cfg.Clients closed-loop
// client routines until the stream, the budget, the duration, or ctx ends.
//
// Determinism: with one shard and one client, the serve sequence is
// exactly the generator stream and the run reproduces the sequential
// engine bit-for-bit (identity partition, no cross-shard traffic). With
// one client and S shards, each shard serves Partition.Project's
// subsequence in order. With C clients, per-shard arrival order
// interleaves client substreams nondeterministically — but every shard
// still serves a single well-defined sequence (single-writer loop), which
// RecordLocal captures for equivalence replay.
//
// Cancellation of ctx stops the run and returns the partial Stats
// together with ctx.Err(); cfg.Duration elapsing is a normal completion.
func Run(ctx context.Context, cfg Config, mk func(n int) (sim.Network, error), gen workload.Generator) (*Stats, error) {
	if cfg.Shards == 0 {
		cfg.Shards = 1
	}
	if cfg.Clients == 0 {
		cfg.Clients = cfg.Shards
	}
	if cfg.Shards < 1 || cfg.Clients < 1 || cfg.Warmup < 0 || cfg.MaxRequests < 0 ||
		cfg.TargetOps < 0 || cfg.LatencySample < 0 || cfg.Duration < 0 {
		return nil, fmt.Errorf("serve: invalid config %+v", cfg)
	}

	part, err := NewPartition(gen.Nodes(), cfg.Shards)
	if err != nil {
		return nil, err
	}
	var events [][]FaultEvent
	if cfg.Faults != nil {
		if events, err = cfg.Faults.validate(cfg.Shards); err != nil {
			return nil, err
		}
	}
	p := &pool{cfg: cfg, part: part, shards: make([]*shard, cfg.Shards),
		plan: cfg.Faults, stopCh: make(chan struct{})}
	for i := range p.shards {
		net, err := mk(part.Size(i))
		if err != nil {
			// Owners already started for shards < i must not leak.
			p.shutdownShards()
			return nil, fmt.Errorf("serve: building shard %d (%d nodes): %w", i, part.Size(i), err)
		}
		s := &shard{id: i, nodes: part.Size(i), net: net, record: cfg.RecordLocal}
		if cfg.Faults != nil {
			// Fault mode: every shard is served through a faulted owner
			// loop and must support exact checkpoint/restore.
			rec, ok := net.(recoverable)
			if !ok || !rec.Checkpointable() {
				p.shutdownShards()
				return nil, fmt.Errorf("serve: fault plan armed, but shard %d network %q cannot checkpoint/restore",
					i, net.Name())
			}
			s.recov = rec
			s.events = events[i]
			s.fch = make(chan frequest, cfg.Clients)
			s.done = make(chan struct{})
			go s.runFaulted(cfg.Faults)
			p.shards[i] = s
			continue
		}
		if !cfg.RecordLocal {
			if ss, ok := net.(staticServer); ok {
				if ix, frozen := ss.StaticOracle(); frozen {
					s.oracle = ix
				}
			}
		}
		if s.oracle == nil {
			s.ch = make(chan request, cfg.Clients)
			s.done = make(chan struct{})
			go s.run()
		}
		p.shards[i] = s
	}

	// Stop signals: wall-clock duration (normal completion) and context
	// cancellation (error). Both halt the pool, which flips the flag
	// clients poll and wakes any client sleeping in pacing or backoff.
	watchDone := make(chan struct{})
	if cfg.Duration > 0 {
		t := time.AfterFunc(cfg.Duration, p.halt)
		defer t.Stop()
	}
	go func() {
		select {
		case <-ctx.Done():
			p.halt()
		case <-watchDone:
		}
	}()

	var reporterWG sync.WaitGroup
	if cfg.OnRate != nil {
		every := cfg.RateEvery
		if every <= 0 {
			every = time.Second
		}
		reporterWG.Add(1)
		go func() {
			defer reporterWG.Done()
			tick := time.NewTicker(every)
			defer tick.Stop()
			start := time.Now()
			var prev int64
			var prevAt time.Duration
			for {
				select {
				case <-watchDone:
					return
				case <-tick.C:
					now := time.Since(start)
					cur := p.served.Load()
					rate := float64(cur-prev) / (now - prevAt).Seconds()
					cfg.OnRate(RateSample{Elapsed: now, Requests: cur, Rate: rate})
					prev, prevAt = cur, now
				}
			}
		}()
	}

	clients := make([]*client, cfg.Clients)
	var wg sync.WaitGroup
	start := time.Now()
	for i := range clients {
		budget := int64(-1)
		if cfg.MaxRequests > 0 {
			budget = cfg.MaxRequests / int64(cfg.Clients)
			if int64(i) < cfg.MaxRequests%int64(cfg.Clients) {
				budget++
			}
		}
		clients[i] = &client{pool: p, id: i, gen: workload.SplitGen(gen, i, cfg.Clients), budget: budget}
		wg.Add(1)
		go func(c *client) {
			defer wg.Done()
			if p.plan != nil {
				c.runFaulted()
			} else {
				c.run()
			}
		}(clients[i])
	}
	wg.Wait()
	p.shutdownShards()
	elapsed := time.Since(start)
	close(watchDone)
	reporterWG.Wait()

	stats := &Stats{
		Network: p.shards[0].net.Name(),
		Trace:   gen.Label(),
		Shards:  cfg.Shards,
		Clients: cfg.Clients,
		Elapsed: elapsed,
	}
	stats.RoutingHist = new(Hist)
	stats.LatencyHist = new(Hist)
	stats.PerShard = make([]ShardStats, cfg.Shards)
	for i, s := range p.shards {
		stats.PerShard[i] = ShardStats{Shard: i, Nodes: s.nodes, Hist: new(Hist), Local: s.local,
			Crashes: s.faults.Crashes, Recoveries: s.faults.Recoveries,
			Checkpoints: s.faults.Checkpoints, Replayed: s.faults.ReplayedRequests,
			Rejected: s.faults.Rejected}
	}
	if cfg.Faults != nil {
		stats.Faults = new(FaultStats)
		for _, s := range p.shards {
			stats.Faults.merge(&s.faults)
		}
		for _, c := range clients {
			stats.Faults.merge(&c.acc.faults)
		}
	}
	var streamErr error
	for _, c := range clients {
		a := &c.acc
		stats.Requests += a.requests
		stats.Routing += a.routing
		stats.Adjust += a.adjust
		stats.CrossShard += a.cross
		stats.WarmupRequests += a.warmRequests
		stats.WarmupRouting += a.warmRouting
		stats.WarmupAdjust += a.warmAdjust
		stats.WarmupCross += a.warmCross
		stats.RoutingHist.Merge(&a.routingHist)
		stats.LatencyHist.Merge(&a.latencyHist)
		for sh := range stats.PerShard {
			ps, as := &stats.PerShard[sh], &a.perShard[sh]
			ps.Requests += as.requests
			ps.Routing += as.routing
			ps.Adjust += as.adjust
			ps.Hist.Merge(&as.hist)
		}
		if a.err != nil && streamErr == nil {
			streamErr = a.err
		}
	}
	if secs := elapsed.Seconds(); secs > 0 {
		stats.Throughput = float64(stats.Requests+stats.WarmupRequests) / secs
	}
	if streamErr != nil {
		return stats, fmt.Errorf("serve: workload stream: %w", streamErr)
	}
	if err := ctx.Err(); err != nil {
		return stats, err
	}
	return stats, nil
}
