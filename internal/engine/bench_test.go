package engine

import (
	"context"
	"runtime"
	"testing"

	"github.com/ksan-net/ksan/internal/sim"
	"github.com/ksan-net/ksan/internal/statictree"
	"github.com/ksan-net/ksan/internal/workload"
)

// These benchmarks back the engine's headline claim: evaluating a static
// tree's routing cost over a trace (the TotalDistance-style measurement of
// the scale experiments) through the sim.BatchServer path must beat the
// per-request Serve loop by ≥2× wall-clock. The batch path wins twice —
// the Euler-tour/RMQ distance oracle replaces three pointer walks per
// request even on one core, and the chunked trace shards across the
// worker pool on multicore machines.

func benchTrace(b *testing.B) (*statictree.Net, []sim.Request) {
	b.Helper()
	tr, err := statictree.Full(1023, 3)
	if err != nil {
		b.Fatal(err)
	}
	return statictree.NewNet("full", tr), workload.Uniform(1023, 200_000, 1).Reqs
}

// BenchmarkStaticTraceSequential is the baseline: the seed-style
// per-request Serve loop (ServeBatch hidden behind a plain wrapper).
func BenchmarkStaticTraceSequential(b *testing.B) {
	net, rs := benchTrace(b)
	eng := New()
	wrapped := &serveOnly{net: net}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(context.Background(), wrapped, rs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStaticTraceBatch1 isolates the batch kernel: one worker, so any
// speedup over Sequential is the distance oracle alone.
func BenchmarkStaticTraceBatch1(b *testing.B) {
	net, rs := benchTrace(b)
	eng := New(WithWorkers(1))
	net.ServeBatch(rs[:1]) // build the oracle outside the timed region
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(context.Background(), net, rs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStaticTraceBatchSharded adds the worker pool on top of the
// batch kernel (on a 1-CPU machine it matches Batch1; on multicore it
// scales further).
func BenchmarkStaticTraceBatchSharded(b *testing.B) {
	net, rs := benchTrace(b)
	eng := New(WithWorkers(runtime.GOMAXPROCS(0)))
	net.ServeBatch(rs[:1])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(context.Background(), net, rs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStaticGridSharded runs a whole grid of static trees — the
// scale-experiment shape — through the pool.
func BenchmarkStaticGridSharded(b *testing.B) {
	var nets []NetworkSpec
	for _, k := range []int{2, 3, 5, 10} {
		k := k
		nets = append(nets, NetworkSpec{
			Name: "full",
			Make: func(n int) sim.Network {
				tr, err := statictree.Full(n, k)
				if err != nil {
					b.Fatal(err)
				}
				return statictree.NewNet("full", tr)
			},
		})
	}
	traces := []TraceSpec{{Name: "uniform", N: 1023, Reqs: workload.Uniform(1023, 100_000, 1).Reqs}}
	eng := New(WithWorkers(runtime.GOMAXPROCS(0)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.RunGrid(context.Background(), nets, traces); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunGenStream serves a generator's stream without ever
// materializing it — the tentpole path of the streaming pipeline — on
// both engine paths. Compare against the StaticTrace benchmarks above to
// see what pulling from the stream costs over iterating a slice.
func BenchmarkRunGenStream(b *testing.B) {
	gen := workload.UniformGen(1023, 200_000, 1)
	b.Run("sequential", func(b *testing.B) {
		net, _ := benchTrace(b)
		eng := New()
		wrapped := &serveOnly{net: net}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.RunGen(context.Background(), wrapped, gen); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		net, rs := benchTrace(b)
		eng := New(WithWorkers(runtime.GOMAXPROCS(0)))
		net.ServeBatch(rs[:1]) // build the oracle outside the timed region
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.RunGen(context.Background(), net, gen); err != nil {
				b.Fatal(err)
			}
		}
	})
}
