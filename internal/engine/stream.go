package engine

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"sync/atomic"
)

// Cell is one finished cell of a streamed grid: the result of serving
// traces[J] on a fresh networks[I] instance.
type Cell struct {
	I, J   int
	Result Result
}

// errStreamStopped aborts in-flight grid workers after the stream's
// consumer breaks out of the range loop; it never escapes Stream.
var errStreamStopped = errors.New("engine: stream consumer stopped")

// Stream evaluates the cross product of networks × traces on the engine's
// bounded worker pool and yields each cell as it finishes, in completion
// order (the I/J indices identify the cell; collect and index by them to
// recover grid order). Each yielded error is the cell's own: nil for a
// clean run, the construction/validation failure, or ctx.Err() alongside
// the cell's contiguous partial result on cancellation. After the first
// failed cell no new cells are dispatched (in-flight cells still drain),
// matching RunGrid's first-error semantics. Breaking out of the range loop
// stops dispatch and abandons in-flight cells.
//
// On cancellation, cells that were never dispatched are not yielded at
// all — the stream just ends short. A consumer that needs whole-grid
// coverage must check ctx.Err() after the loop (RunGrid does).
//
// Every cell's Result is deterministic across worker counts and
// consumption order (see the package determinism contract); only the
// completion order is not. RunGrid is a thin barrier over Stream.
func (e *Engine) Stream(ctx context.Context, networks []NetworkSpec, traces []TraceSpec) iter.Seq2[Cell, error] {
	return func(yield func(Cell, error) bool) {
		cells := len(networks) * len(traces)
		if cells == 0 {
			return
		}
		type item struct {
			cell Cell
			err  error
		}
		ch := make(chan item)
		stop := make(chan struct{})
		var cellsDone atomic.Int64
		go func() {
			defer close(ch)
			// ParallelFor's error (first cell failure, errStreamStopped, or
			// ctx.Err()) is deliberately dropped: per-cell errors were already
			// delivered through ch, and grid-level cancellation is the
			// caller's ctx to inspect.
			_ = ParallelFor(ctx, e.workers, cells, func(c int) error {
				// Check for a consumer break before starting the cell: the
				// drain loop below re-enables the blocked sends, so without
				// this a worker whose send won the race against <-stop would
				// return nil and be handed another cell to evaluate.
				select {
				case <-stop:
					return errStreamStopped
				default:
				}
				i, j := c/len(traces), c%len(traces)
				cell, err := e.runCell(ctx, networks[i], traces[j], i, j, cells, &cellsDone)
				select {
				case ch <- item{cell: cell, err: err}:
				case <-stop:
					return errStreamStopped
				}
				return err // a failed cell halts dispatch of the rest
			})
		}()
		for it := range ch {
			if !yield(it.cell, it.err) {
				close(stop)
				for range ch { // unblock and drain in-flight workers
				}
				return
			}
		}
	}
}

// runCell evaluates grid cell (i, j): a fresh spec instance serving tr,
// with cell-count progress decoration and a completion progress event.
func (e *Engine) runCell(ctx context.Context, spec NetworkSpec, tr TraceSpec, i, j, cells int, cellsDone *atomic.Int64) (Cell, error) {
	cell := Cell{I: i, J: j}
	nodes := tr.Nodes()
	net := spec.Make(nodes)
	if net == nil {
		return cell, fmt.Errorf("engine: network %q returned nil for n=%d", spec.Name, nodes)
	}
	if f, ok := net.(*failedNetwork); ok {
		return cell, fmt.Errorf("engine: building network %q for n=%d: %w", spec.Name, nodes, f.err)
	}
	res, err := e.runOne(ctx, net, tr.Generator(), tr.Label(), func(p *Progress) {
		p.Cells = int(cellsDone.Load())
		p.CellsTotal = cells
	}, 1)
	cell.Result = res
	if err != nil {
		return cell, err
	}
	n := cellsDone.Add(1)
	if e.progress != nil {
		served := int(res.Requests + res.WarmupRequests)
		e.mu.Lock()
		e.progress(Progress{
			Network: res.Name, Trace: tr.Label(),
			Requests: served, Total: served,
			Cells: int(n), CellsTotal: cells,
		})
		e.mu.Unlock()
	}
	return cell, nil
}
