package engine

import (
	"time"

	"github.com/ksan-net/ksan/internal/sim"
)

// WindowSample is one point of a run's cost time-series: the aggregate cost
// of the measurement-window requests with (0-based) indices [Start, End)
// counted from the end of the warmup prefix. Feeding these into a plot
// shows how routing cost converges as a self-adjusting network learns the
// workload.
type WindowSample struct {
	Start   int
	End     int
	Routing int64
	Adjust  int64
}

// Result extends the seed sim.Result with the observability surface of the
// streaming engine. The embedded sim.Result covers the measurement region
// only (everything after the warmup prefix), so with zero warmup it is
// bit-identical to what the seed loop produced.
type Result struct {
	sim.Result

	// Trace labels the trace this run served (grid runs; empty otherwise).
	Trace string

	// Warmup accounting: requests served before measurement began and the
	// cost they incurred (excluded from the embedded sim.Result).
	WarmupRequests int64
	WarmupRouting  int64
	WarmupAdjust   int64

	// P50Routing and P99Routing are per-request routing-cost percentiles
	// over the measurement region.
	P50Routing float64
	P99Routing float64

	// LinkChurn is the number of physical links added plus removed during
	// the run, when churn tracking is enabled and the network exposes it
	// (zero otherwise).
	LinkChurn int64

	// Series is the per-window cost time-series (nil unless a sample
	// window was configured).
	Series []WindowSample

	// Elapsed and Throughput report wall-clock performance: total run time
	// and requests served per second (warmup included). They are the only
	// nondeterministic fields.
	Elapsed    time.Duration
	Throughput float64
}

// Stripped returns the result with its nondeterministic wall-clock fields
// zeroed, leaving only fields that are reproducible across runs and worker
// counts. Determinism tests compare Stripped values.
func (r Result) Stripped() Result {
	r.Elapsed = 0
	r.Throughput = 0
	return r
}

// Progress is a progress-callback event. For single runs, Requests/Total
// advance within the trace as window samples complete; for grid runs,
// Cells/CellsTotal additionally advance as grid cells finish.
type Progress struct {
	Network    string
	Trace      string
	Requests   int
	Total      int
	Cells      int
	CellsTotal int
}

// The percentile rule lives in internal/hist: P50Routing/P99Routing are
// hist.Hist.Percentile values — "the smallest routing cost c such that at
// least ceil(q·total) of the measured requests cost at most c". Routing
// costs are path lengths inside the histogram's exact region, so the
// reported percentiles are exact order statistics, bit-identical to the
// cost-indexed count vector this package used before adopting the shared
// histogram.
