package engine

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"github.com/ksan-net/ksan/internal/karynet"
	"github.com/ksan-net/ksan/internal/sim"
	"github.com/ksan-net/ksan/internal/statictree"
	"github.com/ksan-net/ksan/internal/workload"
)

// staticNet builds a batch-capable static network over n nodes.
func staticNet(t *testing.T, n int) sim.Network {
	t.Helper()
	full, err := statictree.Full(n, 3)
	if err != nil {
		t.Fatal(err)
	}
	return statictree.NewNet("full", full)
}

// TestRunGenMatchesRunOnCollectedTrace pins the tentpole's determinism
// claim at the engine boundary: serving a generator's stream and serving
// its collected slice are the same run, bit for bit, on both the
// sequential and the batch path.
func TestRunGenMatchesRunOnCollectedTrace(t *testing.T) {
	gen := workload.TemporalGen(48, 9000, 0.7, 5)
	tr := workload.MustCollect(gen)
	for _, tc := range []struct {
		name string
		make func() sim.Network
	}{
		{"sequential", func() sim.Network { return karynet.MustNew(48, 3) }},
		{"batch", func() sim.Network { return staticNet(t, 48) }},
	} {
		eng := New(WithWindow(1500))
		fromGen, err := eng.RunGen(context.Background(), tc.make(), gen)
		if err != nil {
			t.Fatal(err)
		}
		fromSlice, err := eng.Run(context.Background(), tc.make(), tr.Reqs)
		if err != nil {
			t.Fatal(err)
		}
		a, b := fromGen.Stripped(), fromSlice.Stripped()
		// Run labels the trace "" (anonymous slice); RunGen uses the label.
		a.Trace, b.Trace = "", ""
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: stream run %+v != materialized run %+v", tc.name, a, b)
		}
	}
}

// TestEngineServesUnknownLengthStream runs a CSV-backed generator — the
// one kind that cannot declare its length — through both engine paths.
func TestEngineServesUnknownLengthStream(t *testing.T) {
	tr := workload.Uniform(24, 4000, 9)
	path := filepath.Join(t.TempDir(), "trace.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := workload.WriteCSV(f, tr); err != nil {
		t.Fatal(err)
	}
	f.Close()
	gen, err := workload.OpenCSV(path)
	if err != nil {
		t.Fatal(err)
	}
	if gen.Len() != workload.UnknownLen {
		t.Fatalf("csv generator Len() = %d, want UnknownLen", gen.Len())
	}
	for _, tc := range []struct {
		name string
		make func() sim.Network
	}{
		{"sequential", func() sim.Network { return karynet.MustNew(24, 3) }},
		{"batch", func() sim.Network { return staticNet(t, 24) }},
	} {
		eng := New(WithWindow(500))
		got, err := eng.RunGen(context.Background(), tc.make(), gen)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		want, err := eng.Run(context.Background(), tc.make(), tr.Reqs)
		if err != nil {
			t.Fatal(err)
		}
		a, b := got.Stripped(), want.Stripped()
		a.Trace, b.Trace = "", ""
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: csv stream %+v != materialized %+v", tc.name, a, b)
		}
	}
}

// TestUnknownLengthProgressReportsNegativeTotal pins the Progress contract
// for unknown-length streams: Total is -1 on mid-run events.
func TestUnknownLengthProgressReportsNegativeTotal(t *testing.T) {
	tr := workload.Uniform(16, 6000, 11)
	path := filepath.Join(t.TempDir(), "trace.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := workload.WriteCSV(f, tr); err != nil {
		t.Fatal(err)
	}
	f.Close()
	gen, err := workload.OpenCSV(path)
	if err != nil {
		t.Fatal(err)
	}
	events := 0
	eng := New(WithWindow(1000), WithProgress(func(p Progress) {
		events++
		if p.Total != -1 {
			t.Errorf("progress event %d has Total=%d, want -1 for an unknown-length stream", events, p.Total)
		}
	}))
	if _, err := eng.RunGen(context.Background(), karynet.MustNew(16, 3), gen); err != nil {
		t.Fatal(err)
	}
	if events == 0 {
		t.Error("no progress events fired")
	}
}

// TestGridSharesOneGeneratorAcrossCells runs a grid whose traces are
// TraceSpecFor factories and checks it matches the materialized grid:
// every cell takes its own pass over the shared stream.
func TestGridSharesOneGeneratorAcrossCells(t *testing.T) {
	gens := []workload.Generator{
		workload.TemporalGen(32, 5000, 0.6, 2),
		workload.HotspotGen(32, 5000, 0.25, 0.9, 3),
	}
	nets := []NetworkSpec{}
	for _, k := range []int{2, 3, 4} {
		k := k
		nets = append(nets, NetworkSpec{
			Name: "kary",
			Make: func(n int) sim.Network { return karynet.MustNew(n, k) },
		})
	}
	var streaming, materialized []TraceSpec
	for _, g := range gens {
		streaming = append(streaming, TraceSpecFor(g))
		tr := workload.MustCollect(g)
		materialized = append(materialized, TraceSpec{Name: tr.Name, N: tr.N, Reqs: tr.Reqs})
	}
	run := func(traces []TraceSpec, workers int) [][]Result {
		grid, err := New(WithWorkers(workers)).RunGrid(context.Background(), nets, traces)
		if err != nil {
			t.Fatal(err)
		}
		for i := range grid {
			for j := range grid[i] {
				grid[i][j] = grid[i][j].Stripped()
			}
		}
		return grid
	}
	want := run(materialized, 1)
	for _, workers := range []int{1, 8} {
		if got := run(streaming, workers); !reflect.DeepEqual(got, want) {
			t.Errorf("streaming grid (workers=%d) differs from materialized grid:\n%+v\nvs\n%+v",
				workers, got, want)
		}
	}
}

// TestInlineValidationStopsAtFirstBadRequest pins the replacement for the
// up-front Validate pass: the run fails at the first invalid request with
// its index in the error and the valid prefix measured.
func TestInlineValidationStopsAtFirstBadRequest(t *testing.T) {
	rs := reqs(16, 100, 1)
	rs[40] = sim.Request{Src: 5, Dst: 99}
	net := &fakeNet{n: 16, name: "fake"}
	res, err := New().Run(context.Background(), net, rs)
	if err == nil || !strings.Contains(err.Error(), "request 40") {
		t.Fatalf("error %v does not name the bad request index", err)
	}
	if res.Requests != 40 {
		t.Errorf("measured %d requests before the bad one, want 40", res.Requests)
	}
	if net.served != 40 {
		t.Errorf("network served %d requests, want 40 (the bad request must not be served)", net.served)
	}
}
