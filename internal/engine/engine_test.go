package engine

import (
	"context"
	"errors"
	"reflect"
	"sync/atomic"
	"testing"

	"github.com/ksan-net/ksan/internal/karynet"
	"github.com/ksan-net/ksan/internal/sim"
	"github.com/ksan-net/ksan/internal/statictree"
	"github.com/ksan-net/ksan/internal/workload"
)

// fakeNet is a deterministic sequential Network: request (u,v) costs u+v
// routing and v adjustment.
type fakeNet struct {
	n      int
	name   string
	served int64
}

func (f *fakeNet) Name() string { return f.name }
func (f *fakeNet) N() int       { return f.n }
func (f *fakeNet) Serve(u, v int) sim.Cost {
	f.served++
	return sim.Cost{Routing: int64(u + v), Adjust: int64(v)}
}

func reqs(n, m int, seed int64) []sim.Request {
	return workload.Uniform(n, m, seed).Reqs
}

func TestRunMatchesSeedLoop(t *testing.T) {
	rs := reqs(32, 5000, 1)
	eng := New()
	got, err := eng.Run(context.Background(), &fakeNet{n: 32, name: "fake"}, rs)
	if err != nil {
		t.Fatal(err)
	}
	want := sim.Run(&fakeNet{n: 32, name: "fake"}, rs)
	if got.Result != want {
		t.Fatalf("engine result %+v != seed loop %+v", got.Result, want)
	}
	if got.Throughput <= 0 || got.Elapsed <= 0 {
		t.Errorf("throughput/elapsed not populated: %+v", got)
	}
}

func TestGridDeterministicAcrossWorkers(t *testing.T) {
	tr := workload.Temporal(48, 8000, 0.6, 2)
	nets := []NetworkSpec{}
	for _, k := range []int{2, 3, 5} {
		k := k
		nets = append(nets, NetworkSpec{
			Name: "kary",
			Make: func(n int) sim.Network { return karynet.MustNew(n, k) },
		})
	}
	traces := []TraceSpec{
		{Name: tr.Name, N: tr.N, Reqs: tr.Reqs},
		{Name: "uniform", N: 48, Reqs: reqs(48, 6000, 7)},
	}
	run := func(workers int) [][]Result {
		grid, err := New(WithWorkers(workers), WithWindow(1000)).RunGrid(context.Background(), nets, traces)
		if err != nil {
			t.Fatal(err)
		}
		for i := range grid {
			for j := range grid[i] {
				grid[i][j] = grid[i][j].Stripped()
			}
		}
		return grid
	}
	seq := run(1)
	par := run(8)
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("grid results differ between 1 and 8 workers:\n%+v\nvs\n%+v", seq, par)
	}
	if seq[0][0].Routing <= 0 || seq[0][0].Requests != 8000 {
		t.Errorf("implausible cell %+v", seq[0][0])
	}
}

// cancelNet cancels its context from inside Serve at a fixed request
// index, making mid-trace cancellation deterministic.
type cancelNet struct {
	fakeNet
	at     int64
	cancel context.CancelFunc
}

func (c *cancelNet) Serve(u, v int) sim.Cost {
	cost := c.fakeNet.Serve(u, v)
	if c.served == c.at {
		c.cancel()
	}
	return cost
}

func TestRunCancellationMidTrace(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	net := &cancelNet{fakeNet: fakeNet{n: 16, name: "cancel"}, at: 30_000, cancel: cancel}
	rs := reqs(16, 100_000, 3)
	res, err := New().Run(ctx, net, rs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if res.Requests < 30_000 || res.Requests >= int64(len(rs)) {
		t.Errorf("partial result should cover a strict prefix past the cancel point, served %d of %d",
			res.Requests, len(rs))
	}
}

func TestCancellationDuringWarmupEmitsNoWindow(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	net := &cancelNet{fakeNet: fakeNet{n: 16, name: "warmcancel"}, at: 2_000, cancel: cancel}
	rs := reqs(16, 50_000, 4)
	res, err := New(WithWarmup(10_000), WithWindow(1_000)).Run(ctx, net, rs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if len(res.Series) != 0 {
		t.Fatalf("cancellation inside the warmup prefix must not emit windows, got %+v", res.Series)
	}
	for _, s := range res.Series {
		if s.End <= s.Start {
			t.Errorf("corrupt window %+v", s)
		}
	}
}

func TestGridCancellationPropagates(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	nets := []NetworkSpec{{Make: func(n int) sim.Network { return &fakeNet{n: n, name: "x"} }}}
	traces := []TraceSpec{{N: 8, Reqs: reqs(8, 100, 1)}}
	_, err := New().RunGrid(ctx, nets, traces)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestWarmupAccounting(t *testing.T) {
	rs := reqs(16, 1000, 5)
	eng := New(WithWarmup(300))
	got, err := eng.Run(context.Background(), &fakeNet{n: 16, name: "warm"}, rs)
	if err != nil {
		t.Fatal(err)
	}
	if got.WarmupRequests != 300 || got.Requests != 700 {
		t.Fatalf("warmup split %d/%d, want 300/700", got.WarmupRequests, got.Requests)
	}
	all := sim.Run(&fakeNet{n: 16, name: "warm"}, rs)
	if got.Routing+got.WarmupRouting != all.Routing || got.Adjust+got.WarmupAdjust != all.Adjust {
		t.Errorf("warmup+measured != total: %+v vs %+v", got, all)
	}
	head := sim.Run(&fakeNet{n: 16, name: "warm"}, rs[:300])
	if got.WarmupRouting != head.Routing || got.WarmupAdjust != head.Adjust {
		t.Errorf("warmup window misaccounted: %+v vs %+v", got, head)
	}
	// Warmup longer than the trace measures nothing.
	over, err := New(WithWarmup(5000)).Run(context.Background(), &fakeNet{n: 16, name: "warm"}, rs)
	if err != nil {
		t.Fatal(err)
	}
	if over.Requests != 0 || over.WarmupRequests != 1000 {
		t.Errorf("oversized warmup split %d/%d", over.WarmupRequests, over.Requests)
	}
}

func TestWindowSeries(t *testing.T) {
	rs := reqs(16, 2500, 6)
	got, err := New(WithWarmup(500), WithWindow(1000)).Run(context.Background(), &fakeNet{n: 16, name: "series"}, rs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Series) != 2 {
		t.Fatalf("want 2 windows (1000+1000), got %d: %+v", len(got.Series), got.Series)
	}
	var routing, adjust int64
	prevEnd := 0
	for _, s := range got.Series {
		if s.Start != prevEnd || s.End <= s.Start {
			t.Errorf("window %+v not contiguous after %d", s, prevEnd)
		}
		prevEnd = s.End
		routing += s.Routing
		adjust += s.Adjust
	}
	if prevEnd != 2000 || routing != got.Routing || adjust != got.Adjust {
		t.Errorf("series does not tile the measured region: end %d, %d/%d vs %d/%d",
			prevEnd, routing, adjust, got.Routing, got.Adjust)
	}
}

func TestPercentiles(t *testing.T) {
	// 98 requests costing 1 and two costing 50: the 50th-smallest cost is
	// 1 and the 99th-smallest is 50.
	net := &scriptNet{costs: make([]int64, 100)}
	for i := range net.costs {
		net.costs[i] = 1
	}
	net.costs[42] = 50
	net.costs[77] = 50
	rs := make([]sim.Request, 100)
	for i := range rs {
		rs[i] = sim.Request{Src: 1, Dst: 2}
	}
	got, err := New().Run(context.Background(), net, rs)
	if err != nil {
		t.Fatal(err)
	}
	if got.P50Routing != 1 || got.P99Routing != 50 {
		t.Errorf("p50=%v p99=%v, want 1 and 50", got.P50Routing, got.P99Routing)
	}
}

type scriptNet struct {
	costs []int64
	i     int
}

func (s *scriptNet) Name() string { return "script" }
func (s *scriptNet) N() int       { return 4 }
func (s *scriptNet) Serve(u, v int) sim.Cost {
	c := s.costs[s.i]
	s.i++
	return sim.Cost{Routing: c}
}

func TestValidationRejectsBadTrace(t *testing.T) {
	bad := []sim.Request{{Src: 1, Dst: 99}}
	if _, err := New().Run(context.Background(), &fakeNet{n: 4, name: "v"}, bad); err == nil {
		t.Fatal("out-of-range endpoint accepted")
	}
	if _, err := New(WithValidation(false)).Run(context.Background(), &fakeNet{n: 4, name: "v"}, bad); err != nil {
		t.Fatalf("validation off must not reject: %v", err)
	}
}

func TestBatchMatchesSequential(t *testing.T) {
	full, err := statictree.Full(200, 3)
	if err != nil {
		t.Fatal(err)
	}
	rs := reqs(200, 40_000, 8)
	batch, err := New(WithWorkers(8), WithWindow(5000)).Run(context.Background(), statictree.NewNet("full", full), rs)
	if err != nil {
		t.Fatal(err)
	}
	// Reference: the per-request Serve path on a plain (non-batch) wrapper.
	seq, err := New().Run(context.Background(), &serveOnly{net: statictree.NewNet("full", full)}, rs)
	if err != nil {
		t.Fatal(err)
	}
	if batch.Result != seq.Result {
		t.Fatalf("batch totals %+v != sequential %+v", batch.Result, seq.Result)
	}
	if batch.P50Routing != seq.P50Routing || batch.P99Routing != seq.P99Routing {
		t.Errorf("percentiles differ: batch %v/%v seq %v/%v",
			batch.P50Routing, batch.P99Routing, seq.P50Routing, seq.P99Routing)
	}
	var fromSeries int64
	for _, s := range batch.Series {
		fromSeries += s.Routing
	}
	if fromSeries != batch.Routing {
		t.Errorf("batch series sums to %d, total %d", fromSeries, batch.Routing)
	}
}

// serveOnly hides a static net's ServeBatch (no embedding, so nothing is
// promoted) to force the engine onto the sequential path.
type serveOnly struct{ net *statictree.Net }

func (s *serveOnly) Name() string            { return s.net.Name() }
func (s *serveOnly) N() int                  { return s.net.N() }
func (s *serveOnly) Serve(u, v int) sim.Cost { return s.net.Serve(u, v) }

func TestLinkChurnReporting(t *testing.T) {
	tr := workload.Temporal(32, 3000, 0.5, 9)
	res, err := New(WithLinkChurn(true)).Run(context.Background(), karynet.MustNew(32, 3), tr.Reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Adjust > 0 && res.LinkChurn <= res.Adjust {
		t.Errorf("churn %d should exceed rotations %d (each rotation rewires several links)",
			res.LinkChurn, res.Adjust)
	}
	// Without the option the field stays zero.
	off, err := New().Run(context.Background(), karynet.MustNew(32, 3), tr.Reqs)
	if err != nil {
		t.Fatal(err)
	}
	if off.LinkChurn != 0 {
		t.Errorf("churn tracked despite option off: %d", off.LinkChurn)
	}
}

func TestProgressEvents(t *testing.T) {
	var events []Progress
	eng := New(WithWindow(500), WithProgress(func(p Progress) { events = append(events, p) }), WithWorkers(2))
	nets := []NetworkSpec{{Name: "fake", Make: func(n int) sim.Network { return &fakeNet{n: n, name: "fake"} }}}
	traces := []TraceSpec{{Name: "t", N: 16, Reqs: reqs(16, 2000, 4)}}
	if _, err := eng.RunGrid(context.Background(), nets, traces); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no progress events")
	}
	last := events[len(events)-1]
	if last.Cells != 1 || last.CellsTotal != 1 || last.Requests != 2000 {
		t.Errorf("final event %+v", last)
	}
}

func TestProgressWithoutWindowFiresMidTrace(t *testing.T) {
	// Regression: flush is the only windowed emitter and returns immediately
	// when no window is configured, so WithProgress without WithWindow never
	// fired before a sequential trace completed (ksanbench -progress stayed
	// mute until a whole cell was done). The checkEvery cancellation
	// checkpoints must emit too.
	var events []Progress
	eng := New(WithProgress(func(p Progress) { events = append(events, p) }))
	rs := reqs(16, 10_000, 7)
	if _, err := eng.Run(context.Background(), &fakeNet{n: 16, name: "mute"}, rs); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no progress events without a window")
	}
	mid := 0
	prev := -1
	for _, p := range events {
		if p.Requests <= prev {
			t.Errorf("progress not monotone: %d after %d", p.Requests, prev)
		}
		prev = p.Requests
		if p.Requests > 0 && p.Requests < len(rs) {
			mid++
		}
		if p.Total != len(rs) || p.Network != "mute" {
			t.Errorf("event misses run metadata: %+v", p)
		}
	}
	if mid < 3 {
		t.Errorf("want mid-trace progress events every 2048 requests, got %d of %d total",
			mid, len(events))
	}
	if events[len(events)-1].Requests != len(rs) {
		t.Errorf("last event at %d requests, want a completion event at %d",
			events[len(events)-1].Requests, len(rs))
	}

	// Traces shorter than the checkpoint interval must still report
	// completion (the original bug: zero events without a window).
	events = events[:0]
	short := reqs(16, 2000, 8)
	if _, err := eng.Run(context.Background(), &fakeNet{n: 16, name: "short"}, short); err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Requests != len(short) {
		t.Errorf("short windowless trace: events %+v, want exactly one completion event at %d",
			events, len(short))
	}

	// With a window configured, flush already emits at every boundary: the
	// checkpoints must stay quiet so the callback sees no duplicates.
	events = events[:0]
	withWin := New(WithWindow(1024), WithProgress(func(p Progress) { events = append(events, p) }))
	if _, err := withWin.Run(context.Background(), &fakeNet{n: 16, name: "win"}, rs); err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, p := range events {
		if seen[p.Requests] {
			t.Errorf("duplicate progress event at %d requests with a window configured", p.Requests)
		}
		seen[p.Requests] = true
	}
	if len(events) != (len(rs)+1023)/1024 {
		t.Errorf("windowed run emitted %d events, want one per window", len(events))
	}
}

func TestParallelFor(t *testing.T) {
	var sum atomic.Int64
	if err := ParallelFor(context.Background(), 8, 1000, func(i int) error {
		sum.Add(int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := sum.Load(); got != 499_500 {
		t.Errorf("sum %d, every index must run exactly once", got)
	}
	boom := errors.New("boom")
	var ran atomic.Int64
	err := ParallelFor(context.Background(), 4, 100_000, func(i int) error {
		ran.Add(1)
		if i == 10 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
	if ran.Load() == 100_000 {
		t.Error("error did not stop dispatch early")
	}
}

// TestWorkerPoolRace exercises the grid worker pool with shared result
// slices under -race (CI runs go test -race ./...).
func TestWorkerPoolRace(t *testing.T) {
	full, err := statictree.Full(64, 2)
	if err != nil {
		t.Fatal(err)
	}
	nets := []NetworkSpec{
		{Name: "static", Make: func(n int) sim.Network { return statictree.NewNet("full", full) }},
		{Name: "fake", Make: func(n int) sim.Network { return &fakeNet{n: n, name: "fake"} }},
	}
	var traces []TraceSpec
	for s := int64(0); s < 8; s++ {
		traces = append(traces, TraceSpec{Name: "u", N: 64, Reqs: reqs(64, 3000, s)})
	}
	eng := New(WithWorkers(8), WithWindow(700), WithProgress(func(Progress) {}))
	grid, err := eng.RunGrid(context.Background(), nets, traces)
	if err != nil {
		t.Fatal(err)
	}
	for i := range grid {
		for j := range grid[i] {
			if grid[i][j].Requests != 3000 {
				t.Fatalf("cell (%d,%d) served %d", i, j, grid[i][j].Requests)
			}
		}
	}
}
