package engine

import (
	"context"
	"errors"
	"reflect"
	"sync/atomic"
	"testing"

	"github.com/ksan-net/ksan/internal/karynet"
	"github.com/ksan-net/ksan/internal/sim"
	"github.com/ksan-net/ksan/internal/statictree"
	"github.com/ksan-net/ksan/internal/workload"
)

// streamGrid collects a stream into grid shape, failing on any cell error.
func streamGrid(t *testing.T, e *Engine, nets []NetworkSpec, traces []TraceSpec) [][]Result {
	t.Helper()
	out := make([][]Result, len(nets))
	for i := range out {
		out[i] = make([]Result, len(traces))
	}
	seen := map[[2]int]bool{}
	for c, err := range e.Stream(context.Background(), nets, traces) {
		if err != nil {
			t.Fatalf("cell (%d,%d): %v", c.I, c.J, err)
		}
		if seen[[2]int{c.I, c.J}] {
			t.Fatalf("cell (%d,%d) yielded twice", c.I, c.J)
		}
		seen[[2]int{c.I, c.J}] = true
		out[c.I][c.J] = c.Result.Stripped()
	}
	if len(seen) != len(nets)*len(traces) {
		t.Fatalf("stream yielded %d cells, want %d", len(seen), len(nets)*len(traces))
	}
	return out
}

// TestStreamMatchesRunGridAcrossWorkers is the streaming determinism
// contract: cells collected from Stream and merged by (I, J) are identical
// to RunGrid's barrier output, at every worker count.
func TestStreamMatchesRunGridAcrossWorkers(t *testing.T) {
	tr := workload.Temporal(48, 6000, 0.6, 2)
	var nets []NetworkSpec
	for _, k := range []int{2, 3, 5} {
		k := k
		nets = append(nets, NetworkSpec{
			Name: "kary",
			Make: func(n int) sim.Network { return karynet.MustNew(n, k) },
		})
	}
	full, err := statictree.Full(48, 3)
	if err != nil {
		t.Fatal(err)
	}
	nets = append(nets, NetworkSpec{
		Name: "full",
		Make: func(n int) sim.Network { return statictree.NewNet("full", full) },
	})
	traces := []TraceSpec{
		{Name: tr.Name, N: tr.N, Reqs: tr.Reqs},
		{Name: "uniform", N: 48, Reqs: workload.Uniform(48, 5000, 7).Reqs},
	}

	ref, err := New(WithWorkers(1), WithWindow(1000)).RunGrid(context.Background(), nets, traces)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		for j := range ref[i] {
			ref[i][j] = ref[i][j].Stripped()
		}
	}
	for _, workers := range []int{1, 2, 8} {
		got := streamGrid(t, New(WithWorkers(workers), WithWindow(1000)), nets, traces)
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("stream with %d workers diverges from RunGrid:\n%+v\nvs\n%+v", workers, got, ref)
		}
	}
}

func TestStreamEmptyGrid(t *testing.T) {
	count := 0
	for range New().Stream(context.Background(), nil, nil) {
		count++
	}
	if count != 0 {
		t.Fatalf("empty grid yielded %d cells", count)
	}
}

func TestStreamEarlyBreakStopsDispatch(t *testing.T) {
	// Break after the first cell: the stream must terminate promptly and
	// not run the whole 64-cell grid behind the consumer's back.
	var served atomic.Int64
	nets := []NetworkSpec{{Name: "count", Make: func(n int) sim.Network {
		return countingNet{n: n, served: &served}
	}}}
	var traces []TraceSpec
	for s := int64(0); s < 64; s++ {
		traces = append(traces, TraceSpec{Name: "u", N: 8, Reqs: workload.Uniform(8, 100, s).Reqs})
	}
	e := New(WithWorkers(2))
	got := 0
	for range e.Stream(context.Background(), nets, traces) {
		got++
		break
	}
	if got != 1 {
		t.Fatalf("consumed %d cells", got)
	}
	// The unbuffered channel caps pre-break completions at one blocked send
	// per worker, and the stop check at the top of the worker body caps
	// post-break work at the in-flight cells: a handful of 100-request
	// cells, nowhere near the 6400-request grid.
	if n := served.Load(); n > 10*100 {
		t.Errorf("early break did not stop dispatch: %d requests served", n)
	}
}

func TestStreamMakeErrorCarriesCause(t *testing.T) {
	// A Make that cannot build for the trace's n reports the constructor's
	// own message through FailedNetwork, not just a generic nil-network
	// error.
	cause := errors.New("arity 7 incompatible with 3 nodes")
	nets := []NetworkSpec{{Name: "picky", Make: func(n int) sim.Network {
		return FailedNetwork(cause)
	}}}
	traces := []TraceSpec{{Name: "t", N: 3, Reqs: workload.Uniform(3, 10, 1).Reqs}}
	seen := 0
	for _, err := range New().Stream(context.Background(), nets, traces) {
		seen++
		if !errors.Is(err, cause) {
			t.Errorf("cell error %v does not wrap the construction cause", err)
		}
	}
	if seen != 1 {
		t.Fatalf("yielded %d cells", seen)
	}
	if _, err := New().RunGrid(context.Background(), nets, traces); !errors.Is(err, cause) {
		t.Errorf("RunGrid error %v does not wrap the construction cause", err)
	}
}

func TestStreamYieldsCellErrorsAndHalts(t *testing.T) {
	// Cell (0,0) fails to construct; the stream must yield that error and
	// stop dispatching, like RunGrid's first-error semantics.
	nets := []NetworkSpec{{Name: "nil", Make: func(n int) sim.Network { return nil }}}
	traces := []TraceSpec{
		{Name: "a", N: 8, Reqs: workload.Uniform(8, 50, 1).Reqs},
		{Name: "b", N: 8, Reqs: workload.Uniform(8, 50, 2).Reqs},
	}
	var errs []error
	cells := 0
	for _, err := range New(WithWorkers(1)).Stream(context.Background(), nets, traces) {
		cells++
		errs = append(errs, err)
	}
	if cells != 1 || errs[0] == nil {
		t.Fatalf("want exactly one failed cell, got %d cells, errs %v", cells, errs)
	}

	// RunGrid over the same grid surfaces the same first error.
	_, err := New(WithWorkers(1)).RunGrid(context.Background(), nets, traces)
	if err == nil || err.Error() != errs[0].Error() {
		t.Fatalf("RunGrid error %v != streamed cell error %v", err, errs[0])
	}
}

func TestStreamCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	yielded := 0
	for _, err := range New().Stream(ctx, []NetworkSpec{{Make: func(n int) sim.Network { return &fakeNet{n: n, name: "x"} }}},
		[]TraceSpec{{N: 8, Reqs: workload.Uniform(8, 100, 1).Reqs}}) {
		if err == nil {
			t.Error("cancelled stream yielded a clean cell")
		}
		yielded++
	}
	// A pre-cancelled context may yield zero cells (dispatch never starts)
	// — RunGrid is responsible for surfacing ctx.Err() then.
	if yielded > 1 {
		t.Fatalf("pre-cancelled stream yielded %d cells", yielded)
	}
	if _, err := New().RunGrid(ctx, nil, nil); err != nil {
		t.Fatalf("empty grid must not error even cancelled: %v", err)
	}
}

// countingNet counts served requests across instances via a shared counter.
type countingNet struct {
	n      int
	served *atomic.Int64
}

func (c countingNet) Name() string { return "count" }
func (c countingNet) N() int       { return c.n }
func (c countingNet) Serve(u, v int) sim.Cost {
	c.served.Add(1)
	return sim.Cost{Routing: 1}
}

func TestBatchProgressFromWorkers(t *testing.T) {
	// Regression: runBatch only emitted progress from the post-barrier
	// merge loop, so batch (static-net) runs reported nothing until every
	// shard had finished. Workers must emit serialized, monotone progress
	// as chunks complete.
	full, err := statictree.Full(64, 3)
	if err != nil {
		t.Fatal(err)
	}
	rs := workload.Uniform(64, 40_000, 3).Reqs
	var events []Progress
	eng := New(WithWorkers(4), WithProgress(func(p Progress) { events = append(events, p) }))
	if _, err := eng.Run(context.Background(), statictree.NewNet("full", full), rs); err != nil {
		t.Fatal(err)
	}
	if len(events) < 2 {
		t.Fatalf("want one progress event per chunk (several chunks), got %d", len(events))
	}
	mid := 0
	prev := -1
	for _, p := range events {
		if p.Requests <= prev {
			t.Errorf("batch progress not monotone: %d after %d", p.Requests, prev)
		}
		prev = p.Requests
		if p.Requests > 0 && p.Requests < len(rs) {
			mid++
		}
		if p.Total != len(rs) || p.Network != "full" {
			t.Errorf("event misses run metadata: %+v", p)
		}
	}
	if mid == 0 {
		t.Error("no mid-run progress events from batch workers")
	}
	if events[len(events)-1].Requests != len(rs) {
		t.Errorf("final event at %d requests, want %d", events[len(events)-1].Requests, len(rs))
	}

	// Warmup prefix: worker progress counts from the end of the warmup.
	events = events[:0]
	eng = New(WithWorkers(4), WithWarmup(10_000), WithProgress(func(p Progress) { events = append(events, p) }))
	if _, err := eng.Run(context.Background(), statictree.NewNet("full", full), rs); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 || events[len(events)-1].Requests != len(rs) {
		t.Fatalf("warmup run final event %+v, want %d requests", events, len(rs))
	}
}

func TestBatchProgressMatchesChunkCount(t *testing.T) {
	// With a window configured, chunks are window-sized: the event count is
	// exactly the chunk count.
	full, err := statictree.Full(32, 2)
	if err != nil {
		t.Fatal(err)
	}
	rs := workload.Uniform(32, 10_000, 5).Reqs
	var events []Progress
	eng := New(WithWorkers(3), WithWindow(1024), WithProgress(func(p Progress) { events = append(events, p) }))
	if _, err := eng.Run(context.Background(), statictree.NewNet("full", full), rs); err != nil {
		t.Fatal(err)
	}
	want := (len(rs) + 1023) / 1024
	if len(events) != want {
		t.Errorf("windowed batch run emitted %d events, want one per chunk (%d)", len(events), want)
	}
}

func TestRunGridStillReturnsFirstError(t *testing.T) {
	// Belt and braces for the reimplementation on Stream: a mid-grid
	// validation failure must surface as RunGrid's error with the healthy
	// cells still populated.
	nets := []NetworkSpec{{Name: "fake", Make: func(n int) sim.Network { return &fakeNet{n: n, name: "fake"} }}}
	traces := []TraceSpec{
		{Name: "good", N: 16, Reqs: workload.Uniform(16, 200, 1).Reqs},
		{Name: "bad", N: 16, Reqs: []sim.Request{{Src: 1, Dst: 99}}},
	}
	grid, err := New(WithWorkers(1)).RunGrid(context.Background(), nets, traces)
	if err == nil {
		t.Fatal("invalid trace accepted")
	}
	if errors.Is(err, context.Canceled) {
		t.Fatalf("unexpected cancellation: %v", err)
	}
	if grid[0][0].Requests != 200 {
		t.Errorf("healthy cell lost: %+v", grid[0][0])
	}
}
