// Package engine is the streaming, sharded experiment engine behind the
// paper's evaluation: it serves communication traces on network topologies
// under the Section 2 cost model (like the seed internal/sim loop it
// replaces) and adds the machinery a production-scale evaluation harness
// needs — context cancellation, warmup/measurement windows, per-window
// cost time-series, per-request routing percentiles, link-churn and
// wall-clock throughput reporting, progress callbacks, and deterministic
// parallel execution of declarative network×trace grids on a bounded
// worker pool.
//
// Determinism contract: every field of Result except the wall-clock pair
// (Elapsed, Throughput) is identical across runs and across worker counts.
// Self-adjusting networks are always served sequentially (their state is
// the experiment); only networks that opt in via sim.BatchServer — and,
// when they also carry sim.BatchGate, report Batchable — have their
// traces sharded across goroutines, and integer cost merging is
// associative, so the totals cannot depend on the sharding.
package engine

import (
	"context"
	"runtime"
	"sync"
	"time"

	"github.com/ksan-net/ksan/internal/core"
	"github.com/ksan-net/ksan/internal/sim"
)

// ChurnReporter is an optional Network extension for designs that account
// their own physical link churn (e.g. lazynet, whose topology object is
// replaced wholesale on every rebuild).
type ChurnReporter interface {
	LinkChurn() int64
}

// treeHolder matches networks backed by a stable core.Tree, whose built-in
// edge-churn counters the engine can enable and read.
type treeHolder interface {
	Tree() *core.Tree
}

// edgeTracking matches networks that manage their own per-rotation
// edge-churn switch (policy nets propagate it across rebuild swaps, so
// the engine must not reach past them to the current tree).
type edgeTracking interface {
	SetTrackEdges(on bool)
}

// Engine runs traces on networks. Construct with New; the zero value is
// not usable. An Engine is immutable after construction and safe for
// concurrent use.
type Engine struct {
	workers  int
	warmup   int
	window   int
	validate bool
	churn    bool
	progress func(Progress)

	mu sync.Mutex // serializes progress callbacks
}

// Option configures an Engine.
type Option func(*Engine)

// WithWorkers bounds the worker pool used for grid cells and batch-server
// shards. Values below 1 fall back to GOMAXPROCS.
func WithWorkers(n int) Option {
	return func(e *Engine) {
		if n >= 1 {
			e.workers = n
		}
	}
}

// WithWarmup excludes the first n requests of every trace from the
// measured result; their cost is still reported in the Warmup* fields.
func WithWarmup(n int) Option {
	return func(e *Engine) {
		if n > 0 {
			e.warmup = n
		}
	}
}

// WithWindow enables the per-window cost time-series: one WindowSample per
// w measured requests (plus a final partial window).
func WithWindow(w int) Option {
	return func(e *Engine) {
		if w > 0 {
			e.window = w
		}
	}
}

// WithProgress installs a progress callback. Callbacks are serialized, so
// fn need not be goroutine-safe; it must not block for long.
func WithProgress(fn func(Progress)) Option {
	return func(e *Engine) { e.progress = fn }
}

// WithValidation toggles trace validation (on by default): runs reject
// traces whose endpoints fall outside 1..net.N() with an error instead of
// panicking deep inside a network.
func WithValidation(on bool) Option {
	return func(e *Engine) { e.validate = on }
}

// WithLinkChurn enables physical link-churn accounting on networks that
// expose it (a ChurnReporter, or a stable core.Tree whose edge tracking
// the engine can switch on). Off by default because tracking allocates on
// every rotation.
func WithLinkChurn(on bool) Option {
	return func(e *Engine) { e.churn = on }
}

// New constructs an Engine; defaults are GOMAXPROCS workers, no warmup, no
// time-series window, validation on, churn tracking off.
func New(opts ...Option) *Engine {
	e := &Engine{
		workers:  runtime.GOMAXPROCS(0),
		validate: true,
	}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Workers returns the configured worker-pool bound, so callers scheduling
// auxiliary work (e.g. static-tree DP solves) on ParallelFor can honor the
// same limit.
func (e *Engine) Workers() int { return e.workers }

// Run serves the trace on the network and returns the extended result. It
// honors ctx: on cancellation it returns the partial result accumulated so
// far together with ctx.Err(). Networks implementing sim.BatchServer are
// evaluated through the batch path (sharded across the worker pool when
// workers > 1); everything else is served strictly sequentially.
func (e *Engine) Run(ctx context.Context, net sim.Network, reqs []sim.Request) (Result, error) {
	return e.runOne(ctx, net, reqs, "", nil, e.workers)
}

// runOne is Run plus the grid bookkeeping (trace label, cell-progress
// decoration) and an explicit shard bound: grid cells already occupy the
// worker pool, so they pass shardWorkers=1 to keep total concurrency at
// the configured bound instead of workers².
func (e *Engine) runOne(ctx context.Context, net sim.Network, reqs []sim.Request, traceName string, decorate func(*Progress), shardWorkers int) (Result, error) {
	res := Result{Result: sim.Result{Name: net.Name()}, Trace: traceName}
	if e.validate {
		if err := sim.Validate(reqs, net.N()); err != nil {
			return res, err
		}
	}

	// Unified churn accounting: first switch rotation-level edge tracking
	// on (through the network's own toggle when it has one, so the
	// setting survives rebuild swaps), then pick the counter to read — a
	// ChurnReporter subsumes the tree counter (policy nets fold both
	// rebuild churn and rotation churn into LinkChurn), the bare tree
	// counter covers the rest.
	var churner ChurnReporter
	var churnTree *core.Tree
	var churnBase int64
	if e.churn {
		switch n := net.(type) {
		case edgeTracking:
			n.SetTrackEdges(true)
		case treeHolder:
			n.Tree().SetTrackEdges(true)
		}
		switch n := net.(type) {
		case ChurnReporter:
			churner = n
			churnBase = n.LinkChurn()
		case treeHolder:
			churnTree = n.Tree()
			churnBase = churnTree.EdgeChanges()
		}
	}

	emit := func(p Progress) {
		if e.progress == nil {
			return
		}
		p.Network = res.Name
		p.Trace = traceName
		p.Total = len(reqs)
		if decorate != nil {
			decorate(&p)
		}
		e.mu.Lock()
		e.progress(p)
		e.mu.Unlock()
	}

	start := time.Now()
	warm := e.warmup
	if warm > len(reqs) {
		warm = len(reqs)
	}
	var hist []int64
	var err error
	bs, batch := net.(sim.BatchServer)
	if batch {
		if g, ok := net.(sim.BatchGate); ok && !g.Batchable() {
			batch = false
		}
	}
	if batch {
		hist, err = e.runBatch(ctx, bs, reqs, warm, &res, emit, shardWorkers)
	} else {
		hist, err = e.runSequential(ctx, net, reqs, warm, &res, emit)
	}
	res.Elapsed = time.Since(start)
	if secs := res.Elapsed.Seconds(); secs > 0 {
		res.Throughput = float64(res.Requests+res.WarmupRequests) / secs
	}
	if e.churn {
		if churner != nil {
			res.LinkChurn = churner.LinkChurn() - churnBase
		} else if churnTree != nil {
			res.LinkChurn = churnTree.EdgeChanges() - churnBase
		}
	}
	res.P50Routing = percentile(hist, res.Requests, 0.50)
	res.P99Routing = percentile(hist, res.Requests, 0.99)
	return res, err
}

// runSequential serves requests one by one, in order, on a single
// goroutine: the only sound schedule for self-adjusting networks, whose
// topology after request t is the input to request t+1. Cancellation is
// checked at window boundaries and every checkEvery requests; when no
// time-series window is configured the same checkpoints emit progress,
// plus one completion event after the last request, so a progress
// callback fires mid-trace and at the end even for traces shorter than
// checkEvery (flush, the only other emitter, is a no-op without a window
// — progress used to stay silent for the whole trace). With a window,
// flush already emits at every boundary including the final partial
// window, and the checkpoints stay quiet to avoid a duplicate stream.
func (e *Engine) runSequential(ctx context.Context, net sim.Network, reqs []sim.Request, warm int, res *Result, emit func(Progress)) ([]int64, error) {
	const checkEvery = 2048
	var hist []int64
	wStart := 0
	var wRouting, wAdjust int64
	flush := func(end int) {
		if e.window <= 0 || end == wStart {
			return
		}
		res.Series = append(res.Series, WindowSample{Start: wStart, End: end, Routing: wRouting, Adjust: wAdjust})
		emit(Progress{Requests: warm + end})
		wStart = end
		wRouting, wAdjust = 0, 0
	}
	for i, rq := range reqs {
		if i%checkEvery == 0 {
			if ctx.Err() != nil {
				if m := i - warm; m > 0 {
					flush(m)
				}
				return hist, ctx.Err()
			}
			if i > 0 && e.window <= 0 {
				emit(Progress{Requests: i})
			}
		}
		c := net.Serve(rq.Src, rq.Dst)
		if i < warm {
			res.WarmupRequests++
			res.WarmupRouting += c.Routing
			res.WarmupAdjust += c.Adjust
			continue
		}
		res.Requests++
		res.Routing += c.Routing
		res.Adjust += c.Adjust
		hist = sim.ObserveHist(hist, c.Routing)
		if e.window > 0 {
			wRouting += c.Routing
			wAdjust += c.Adjust
			if m := i - warm + 1; m-wStart == e.window {
				flush(m)
			}
		}
	}
	flush(len(reqs) - warm)
	if e.window <= 0 && len(reqs) > 0 {
		emit(Progress{Requests: len(reqs)})
	}
	return hist, nil
}

// runBatch evaluates a batch-capable (static) network: the warmup prefix
// and then the measured region, the latter cut into chunks — window-sized
// when a time-series is requested, load-balancing-sized otherwise — that
// the worker pool serves concurrently and merges back in order. Workers
// emit progress as their chunks complete (cumulative served count, made
// monotone by taking the counter update and the emit under one lock); the
// post-barrier merge loop used to be the only emitter, so batch runs
// reported nothing until every shard had finished.
func (e *Engine) runBatch(ctx context.Context, bs sim.BatchServer, reqs []sim.Request, warm int, res *Result, emit func(Progress), shardWorkers int) ([]int64, error) {
	if warm > 0 {
		bc := bs.ServeBatch(reqs[:warm])
		res.WarmupRequests = int64(warm)
		res.WarmupRouting = bc.Routing
		res.WarmupAdjust = bc.Adjust
	}
	measured := reqs[warm:]
	if len(measured) == 0 {
		return nil, ctx.Err()
	}
	if shardWorkers < 1 {
		shardWorkers = 1
	}
	chunk := e.window
	if chunk <= 0 {
		chunk = (len(measured) + shardWorkers*4 - 1) / (shardWorkers * 4)
		if chunk < 1 {
			chunk = 1
		}
	}
	nchunks := (len(measured) + chunk - 1) / chunk
	costs := make([]sim.BatchCost, nchunks)
	done := make([]bool, nchunks)
	var pmu sync.Mutex
	var completed int
	perr := ParallelFor(ctx, shardWorkers, nchunks, func(i int) error {
		lo := i * chunk
		hi := lo + chunk
		if hi > len(measured) {
			hi = len(measured)
		}
		costs[i] = bs.ServeBatch(measured[lo:hi])
		done[i] = true
		if e.progress != nil {
			pmu.Lock()
			completed += hi - lo
			emit(Progress{Requests: warm + completed})
			pmu.Unlock()
		}
		return nil
	})
	// Merge the completed prefix in order, so a cancelled run still
	// reports a contiguous, well-ordered partial result.
	var total sim.BatchCost
	for i := 0; i < nchunks && done[i]; i++ {
		lo := i * chunk
		hi := lo + chunk
		if hi > len(measured) {
			hi = len(measured)
		}
		res.Requests += int64(hi - lo)
		if e.window > 0 {
			res.Series = append(res.Series, WindowSample{Start: lo, End: hi, Routing: costs[i].Routing, Adjust: costs[i].Adjust})
		}
		total.Merge(costs[i])
	}
	res.Routing = total.Routing
	res.Adjust = total.Adjust
	return total.Hist, perr
}
