// Package engine is the streaming, sharded experiment engine behind the
// paper's evaluation: it serves communication traces on network topologies
// under the Section 2 cost model (like the seed internal/sim loop it
// replaces) and adds the machinery a production-scale evaluation harness
// needs — context cancellation, warmup/measurement windows, per-window
// cost time-series, per-request routing percentiles, link-churn and
// wall-clock throughput reporting, progress callbacks, and deterministic
// parallel execution of declarative network×trace grids on a bounded
// worker pool.
//
// Determinism contract: every field of Result except the wall-clock pair
// (Elapsed, Throughput) is identical across runs and across worker counts.
// Self-adjusting networks are always served sequentially (their state is
// the experiment); only networks that opt in via sim.BatchServer — and,
// when they also carry sim.BatchGate, report Batchable — have their
// traces sharded across goroutines, and integer cost merging is
// associative, so the totals cannot depend on the sharding.
package engine

import (
	"context"
	"fmt"
	"iter"
	"runtime"
	"sync"
	"time"

	"github.com/ksan-net/ksan/internal/core"
	"github.com/ksan-net/ksan/internal/hist"
	"github.com/ksan-net/ksan/internal/sim"
	"github.com/ksan-net/ksan/internal/workload"
)

// ChurnReporter is an optional Network extension for designs that account
// their own physical link churn (e.g. lazynet, whose topology object is
// replaced wholesale on every rebuild).
type ChurnReporter interface {
	LinkChurn() int64
}

// treeHolder matches networks backed by a stable core.Tree, whose built-in
// edge-churn counters the engine can enable and read.
type treeHolder interface {
	Tree() *core.Tree
}

// edgeTracking matches networks that manage their own per-rotation
// edge-churn switch (policy nets propagate it across rebuild swaps, so
// the engine must not reach past them to the current tree).
type edgeTracking interface {
	SetTrackEdges(on bool)
}

// Engine runs traces on networks. Construct with New; the zero value is
// not usable. An Engine is immutable after construction and safe for
// concurrent use.
type Engine struct {
	workers  int
	warmup   int
	window   int
	validate bool
	churn    bool
	progress func(Progress)

	mu sync.Mutex // serializes progress callbacks
}

// Option configures an Engine.
type Option func(*Engine)

// WithWorkers bounds the worker pool used for grid cells and batch-server
// shards. Values below 1 fall back to GOMAXPROCS.
func WithWorkers(n int) Option {
	return func(e *Engine) {
		if n >= 1 {
			e.workers = n
		}
	}
}

// WithWarmup excludes the first n requests of every trace from the
// measured result; their cost is still reported in the Warmup* fields.
func WithWarmup(n int) Option {
	return func(e *Engine) {
		if n > 0 {
			e.warmup = n
		}
	}
}

// WithWindow enables the per-window cost time-series: one WindowSample per
// w measured requests (plus a final partial window).
func WithWindow(w int) Option {
	return func(e *Engine) {
		if w > 0 {
			e.window = w
		}
	}
}

// WithProgress installs a progress callback. Callbacks are serialized, so
// fn need not be goroutine-safe; it must not block for long.
func WithProgress(fn func(Progress)) Option {
	return func(e *Engine) { e.progress = fn }
}

// WithValidation toggles trace validation (on by default): runs reject
// requests whose endpoints fall outside 1..net.N() with an error instead of
// panicking deep inside a network. Validation is inline — each request is
// checked as it is drawn from the stream, so a run ends at the first bad
// request with the contiguous prefix before it measured and reported.
func WithValidation(on bool) Option {
	return func(e *Engine) { e.validate = on }
}

// WithLinkChurn enables physical link-churn accounting on networks that
// expose it (a ChurnReporter, or a stable core.Tree whose edge tracking
// the engine can switch on). Off by default because tracking allocates on
// every rotation.
func WithLinkChurn(on bool) Option {
	return func(e *Engine) { e.churn = on }
}

// New constructs an Engine; defaults are GOMAXPROCS workers, no warmup, no
// time-series window, validation on, churn tracking off.
func New(opts ...Option) *Engine {
	e := &Engine{
		workers:  runtime.GOMAXPROCS(0),
		validate: true,
	}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Workers returns the configured worker-pool bound, so callers scheduling
// auxiliary work (e.g. static-tree DP solves) on ParallelFor can honor the
// same limit.
func (e *Engine) Workers() int { return e.workers }

// Run serves the materialized trace on the network and returns the
// extended result; it is RunGen on the trivial (already-materialized)
// generator. It honors ctx: on cancellation it returns the partial result
// accumulated so far together with ctx.Err().
func (e *Engine) Run(ctx context.Context, net sim.Network, reqs []sim.Request) (Result, error) {
	return e.runOne(ctx, net, workload.Trace{N: net.N(), Reqs: reqs}, "", nil, e.workers)
}

// RunGen serves a generator's request stream on the network and returns
// the extended result. The trace is never materialized: warmup, windows,
// progress, cancellation checkpoints and per-request validation are all
// driven off the stream, so trace length is not memory-bound. It honors
// ctx: on cancellation it returns the partial result accumulated so far
// together with ctx.Err(); a stream error (bad CSV row, under-run phase)
// or an out-of-range request likewise ends the run with the contiguous
// prefix measured. Networks implementing sim.BatchServer are evaluated
// through the batch path (chunk waves sharded across the worker pool when
// workers > 1); everything else is served strictly sequentially.
func (e *Engine) RunGen(ctx context.Context, net sim.Network, gen workload.Generator) (Result, error) {
	return e.runOne(ctx, net, gen, "", nil, e.workers)
}

// runOne is RunGen plus the grid bookkeeping (trace label, cell-progress
// decoration) and an explicit shard bound: grid cells already occupy the
// worker pool, so they pass shardWorkers=1 to keep total concurrency at
// the configured bound instead of workers².
func (e *Engine) runOne(ctx context.Context, net sim.Network, gen workload.Generator, traceName string, decorate func(*Progress), shardWorkers int) (Result, error) {
	res := Result{Result: sim.Result{Name: net.Name()}, Trace: traceName}

	// Unified churn accounting: first switch rotation-level edge tracking
	// on (through the network's own toggle when it has one, so the
	// setting survives rebuild swaps), then pick the counter to read — a
	// ChurnReporter subsumes the tree counter (policy nets fold both
	// rebuild churn and rotation churn into LinkChurn), the bare tree
	// counter covers the rest.
	var churner ChurnReporter
	var churnTree *core.Tree
	var churnBase int64
	if e.churn {
		switch n := net.(type) {
		case edgeTracking:
			n.SetTrackEdges(true)
		case treeHolder:
			n.Tree().SetTrackEdges(true)
		}
		switch n := net.(type) {
		case ChurnReporter:
			churner = n
			churnBase = n.LinkChurn()
		case treeHolder:
			churnTree = n.Tree()
			churnBase = churnTree.EdgeChanges()
		}
	}

	total := gen.Len() // workload.UnknownLen for file-backed streams
	emit := func(p Progress) {
		if e.progress == nil {
			return
		}
		p.Network = res.Name
		p.Trace = traceName
		p.Total = total
		if decorate != nil {
			decorate(&p)
		}
		e.mu.Lock()
		e.progress(p)
		e.mu.Unlock()
	}

	start := time.Now()
	warm := e.warmup
	if total >= 0 && warm > total {
		warm = total
	}
	var h hist.Hist
	var err error
	bs, batch := net.(sim.BatchServer)
	if batch {
		if g, ok := net.(sim.BatchGate); ok && !g.Batchable() {
			batch = false
		}
	}
	if batch {
		h, err = e.runBatch(ctx, bs, gen, net.N(), warm, &res, emit, shardWorkers)
	} else {
		h, err = e.runSequential(ctx, net, gen, warm, &res, emit)
	}
	res.Elapsed = time.Since(start)
	if secs := res.Elapsed.Seconds(); secs > 0 {
		res.Throughput = float64(res.Requests+res.WarmupRequests) / secs
	}
	if e.churn {
		if churner != nil {
			res.LinkChurn = churner.LinkChurn() - churnBase
		} else if churnTree != nil {
			res.LinkChurn = churnTree.EdgeChanges() - churnBase
		}
	}
	res.P50Routing = h.Percentile(0.50)
	res.P99Routing = h.Percentile(0.99)
	return res, err
}

// runSequential serves the stream one request at a time, in order, on a
// single goroutine: the only sound schedule for self-adjusting networks,
// whose topology after request t is the input to request t+1. Cancellation
// is checked at window boundaries and every checkEvery requests; when no
// time-series window is configured the same checkpoints emit progress,
// plus one completion event after the last request, so a progress
// callback fires mid-trace and at the end even for traces shorter than
// checkEvery (flush, the only other emitter, is a no-op without a window
// — progress used to stay silent for the whole trace). With a window,
// flush already emits at every boundary including the final partial
// window, and the checkpoints stay quiet to avoid a duplicate stream.
//
// A stream error or (with validation on) an out-of-range request ends the
// run like cancellation does: partial window flushed, contiguous prefix
// measured, the error returned.
func (e *Engine) runSequential(ctx context.Context, net sim.Network, gen workload.Generator, warm int, res *Result, emit func(Progress)) (hist.Hist, error) {
	const checkEvery = 2048
	n := net.N()
	var h hist.Hist
	wStart := 0
	var wRouting, wAdjust int64
	flush := func(end int) {
		if e.window <= 0 || end <= wStart {
			return
		}
		res.Series = append(res.Series, WindowSample{Start: wStart, End: end, Routing: wRouting, Adjust: wAdjust})
		emit(Progress{Requests: warm + end})
		wStart = end
		wRouting, wAdjust = 0, 0
	}
	// fail ends the run at request index i without serving it.
	fail := func(i int, err error) (hist.Hist, error) {
		if m := i - warm; m > 0 {
			flush(m)
		}
		return h, err
	}
	i := 0
	for rq, rerr := range gen.Requests() {
		if rerr != nil {
			return fail(i, rerr)
		}
		if i%checkEvery == 0 {
			if ctx.Err() != nil {
				return fail(i, ctx.Err())
			}
			if i > 0 && e.window <= 0 {
				emit(Progress{Requests: i})
			}
		}
		if e.validate {
			if err := validateReq(rq, i, n); err != nil {
				return fail(i, err)
			}
		}
		c := net.Serve(rq.Src, rq.Dst)
		if i++; i <= warm {
			res.WarmupRequests++
			res.WarmupRouting += c.Routing
			res.WarmupAdjust += c.Adjust
			continue
		}
		res.Requests++
		res.Routing += c.Routing
		res.Adjust += c.Adjust
		h.Observe(c.Routing)
		if e.window > 0 {
			wRouting += c.Routing
			wAdjust += c.Adjust
			if m := i - warm; m-wStart == e.window {
				flush(m)
			}
		}
	}
	flush(i - warm)
	if e.window <= 0 && i > 0 {
		emit(Progress{Requests: i})
	}
	return h, nil
}

// validateReq is the inline form of sim.Validate: one request checked as
// it is drawn from the stream.
func validateReq(rq sim.Request, i, n int) error {
	if rq.Src < 1 || rq.Src > n || rq.Dst < 1 || rq.Dst > n {
		return fmt.Errorf("engine: request %d (%d→%d) outside 1..%d", i, rq.Src, rq.Dst, n)
	}
	return nil
}

// runBatch evaluates a batch-capable (static) network against the stream:
// the warmup prefix first, then the measured region in waves — up to
// shardWorkers chunks are drawn from the stream (window-sized when a
// time-series is requested, load-balancing-sized otherwise), served
// concurrently on the worker pool, and merged back in order before the
// next wave is drawn. Peak memory is shardWorkers×chunk requests (the
// buffers are reused across waves), never the trace; and because integer
// cost merging is associative and chunk boundaries coincide with window
// boundaries whenever a window is configured, the result is bit-identical
// to the former whole-slice sharding. Workers emit progress as their
// chunks complete (cumulative served count, made monotone by taking the
// counter update and the emit under one lock).
func (e *Engine) runBatch(ctx context.Context, bs sim.BatchServer, gen workload.Generator, n, warm int, res *Result, emit func(Progress), shardWorkers int) (hist.Hist, error) {
	if shardWorkers < 1 {
		shardWorkers = 1
	}
	next, stop := iter.Pull2(gen.Requests())
	defer stop()

	// read fills buf with up to max validated requests, advancing the
	// global request index; it returns the stream's error, if any, after
	// the requests that precede it.
	idx := 0
	read := func(buf []sim.Request, max int) ([]sim.Request, error) {
		for len(buf) < max {
			rq, rerr, ok := next()
			if !ok {
				return buf, nil
			}
			if rerr != nil {
				return buf, rerr
			}
			if e.validate {
				if err := validateReq(rq, idx, n); err != nil {
					return buf, err
				}
			}
			idx++
			buf = append(buf, rq)
		}
		return buf, nil
	}

	if warm > 0 {
		wbuf, rerr := read(make([]sim.Request, 0, warm), warm)
		if len(wbuf) > 0 {
			bc := bs.ServeBatch(wbuf)
			res.WarmupRequests = int64(len(wbuf))
			res.WarmupRouting = bc.Routing
			res.WarmupAdjust = bc.Adjust
		}
		if rerr != nil {
			return hist.Hist{}, rerr
		}
		warm = len(wbuf)
	}

	chunk := e.window
	if chunk <= 0 {
		if total := gen.Len(); total >= 0 {
			chunk = (total - warm + shardWorkers*4 - 1) / (shardWorkers * 4)
		} else {
			chunk = 8192 // unknown-length stream: fixed wave granularity
		}
		if chunk < 1 {
			chunk = 1
		}
	}

	bufs := make([][]sim.Request, shardWorkers)
	costs := make([]sim.BatchCost, shardWorkers)
	done := make([]bool, shardWorkers)
	var pmu sync.Mutex
	var completed int
	var total sim.BatchCost
	measured := 0 // absolute measured index of the current wave's start
	for {
		if err := ctx.Err(); err != nil {
			res.Routing = total.Routing
			res.Adjust = total.Adjust
			return total.Hist, err
		}
		// Draw the wave: up to shardWorkers chunks from the stream.
		filled, exhausted := 0, false
		var streamErr error
		for filled < shardWorkers && !exhausted && streamErr == nil {
			if bufs[filled] == nil {
				bufs[filled] = make([]sim.Request, 0, chunk)
			}
			bufs[filled], streamErr = read(bufs[filled][:0], chunk)
			if len(bufs[filled]) == 0 {
				break
			}
			exhausted = len(bufs[filled]) < chunk
			filled++
		}
		var perr error
		if filled > 0 {
			for i := range done[:filled] {
				done[i] = false
			}
			perr = ParallelFor(ctx, shardWorkers, filled, func(i int) error {
				costs[i] = bs.ServeBatch(bufs[i])
				done[i] = true
				if e.progress != nil {
					pmu.Lock()
					completed += len(bufs[i])
					emit(Progress{Requests: warm + completed})
					pmu.Unlock()
				}
				return nil
			})
			// Merge the completed prefix in order, so a cancelled run
			// still reports a contiguous, well-ordered partial result.
			for i := 0; i < filled && done[i]; i++ {
				res.Requests += int64(len(bufs[i]))
				if e.window > 0 {
					res.Series = append(res.Series, WindowSample{
						Start: measured + i*chunk, End: measured + i*chunk + len(bufs[i]),
						Routing: costs[i].Routing, Adjust: costs[i].Adjust,
					})
				}
				total.Merge(costs[i])
			}
			measured = int(res.Requests)
		}
		res.Routing = total.Routing
		res.Adjust = total.Adjust
		switch {
		case streamErr != nil:
			return total.Hist, streamErr
		case perr != nil:
			return total.Hist, perr
		case exhausted || filled == 0:
			return total.Hist, ctx.Err()
		}
	}
}
