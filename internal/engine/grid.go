package engine

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/ksan-net/ksan/internal/sim"
	"github.com/ksan-net/ksan/internal/workload"
)

// NetworkSpec declares one network design of a grid. Make constructs a
// fresh instance sized for n nodes; every grid cell gets its own instance,
// so network state never needs synchronization. Name labels rows in
// progress events (the constructed network's own Name labels results).
type NetworkSpec struct {
	Name string
	Make func(n int) sim.Network
}

// TraceSpec declares one trace of a grid: a request stream over nodes
// 1..N (Nodes() sizes the networks built for this trace's cells).
//
// The streaming form sets Gen — one Generator shared by every cell, each
// of which takes its own independent pass (the Generator contract makes
// that sound), so a grid holds one factory per trace instead of one
// materialized request slice per cell. The materialized form sets N and
// Reqs (Gen nil), which Generator() wraps as the trivial workload.Trace
// stream. Name labels results; when it is empty the generator's own Label
// is used.
type TraceSpec struct {
	Name string
	N    int
	Reqs []sim.Request
	Gen  workload.Generator
}

// TraceSpecFor adapts a Generator to a grid TraceSpec.
func TraceSpecFor(g workload.Generator) TraceSpec {
	return TraceSpec{Name: g.Label(), N: g.Nodes(), Gen: g}
}

// Generator returns the trace's request stream.
func (t TraceSpec) Generator() workload.Generator {
	if t.Gen != nil {
		return workload.Relabel(t.Gen, t.Name)
	}
	return workload.Trace{Name: t.Name, N: t.N, Reqs: t.Reqs}
}

// Nodes returns the node count the trace addresses.
func (t TraceSpec) Nodes() int {
	if t.Gen != nil {
		return t.Gen.Nodes()
	}
	return t.N
}

// Label returns the trace's report label.
func (t TraceSpec) Label() string {
	if t.Name == "" && t.Gen != nil {
		return t.Gen.Label()
	}
	return t.Name
}

// FailedNetwork lets a NetworkSpec.Make deliver a construction error
// despite its error-free signature: return FailedNetwork(err) instead of
// nil and the grid reports err as the cell's error (a plain nil return
// still works but yields only a generic message).
func FailedNetwork(err error) sim.Network { return &failedNetwork{err: err} }

// AsFailed returns the construction error a FailedNetwork carries, or
// nil for a real network — the unwrapping hook for consumers that build
// networks through a NetworkSpec.Make outside a grid (the serving layer
// has one network def and wants the cause as a plain error).
func AsFailed(net sim.Network) error {
	if f, ok := net.(*failedNetwork); ok {
		return f.err
	}
	return nil
}

// failedNetwork is inert: the engine unwraps it before serving anything.
type failedNetwork struct{ err error }

func (f *failedNetwork) Name() string { return "failed" }
func (f *failedNetwork) N() int       { return 0 }
func (f *failedNetwork) Serve(u, v int) sim.Cost {
	panic("engine: Serve on a failed network: " + f.err.Error())
}

// RunGrid evaluates the full cross product of networks × traces on the
// engine's bounded worker pool and returns results indexed as
// out[network][trace]. Output is deterministic: cell (i,j) always holds
// the result of serving traces[j] on a fresh networks[i] instance,
// regardless of worker count or scheduling. On cancellation the first
// error is returned along with the grid; cells that never ran hold zero
// Results. It is the barrier form of Stream: cells are collected by their
// (I, J) indices and the first cell error (or ctx.Err()) is surfaced after
// the stream drains.
func (e *Engine) RunGrid(ctx context.Context, networks []NetworkSpec, traces []TraceSpec) ([][]Result, error) {
	out := make([][]Result, len(networks))
	for i := range out {
		out[i] = make([]Result, len(traces))
	}
	if len(networks)*len(traces) == 0 {
		return out, nil
	}
	var firstErr error
	for c, err := range e.Stream(ctx, networks, traces) {
		out[c.I][c.J] = c.Result
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return out, firstErr
	}
	return out, ctx.Err()
}

// ParallelFor runs body(i) for every i in [0,n) on up to workers
// goroutines (GOMAXPROCS when workers < 1), pulling indices from a shared
// counter. It stops dispatching new indices once ctx is cancelled or a
// body returns an error, waits for in-flight bodies, and returns the first
// error (or ctx.Err()). Bodies run at most once per index.
func ParallelFor(ctx context.Context, workers, n int, body func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	next.Store(-1)
	var stopped atomic.Bool
	var errMu sync.Mutex
	var firstErr error
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if stopped.Load() || ctx.Err() != nil {
					return
				}
				i := int(next.Add(1))
				if i >= n {
					return
				}
				if err := body(i); err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					stopped.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}
