// Package statictree implements the offline/static demand-aware network
// designs of Section 3 of the paper plus the demand-oblivious baseline:
//
//   - Solver / Optimal: the O(n³·k) dynamic program for an optimal static
//     routing-based k-ary search tree network (Theorem 2/15), with the
//     dp2 prefix-minimum trick from the proof, flattened triangular
//     tables shared across an arity sweep, an exact admissible-bound root
//     pruning (Knuth-style windows are unsound for this cost — see
//     dp.go), and an atomic work-counter parallel fill,
//   - UniformSolver / OptimalUniform: the O(n²·k) dynamic program for the
//     uniform workload (Theorem 4), which optimizes over tree shapes and
//     imposes the search property afterwards,
//   - Centroid: the O(n) centroid k-ary search tree (Theorem 8/35) built
//     from a (k+1)-degree centroid tree re-rooted at a leaf,
//   - Full: the weakly-complete (full) k-ary tree baseline (Lemma 9),
//   - WeightBalanced: a Mehlhorn-style demand-aware approximation for
//     instances beyond the cubic DP's reach, cross-validated against the
//     DP optimum in tests.
//
// All builders return *core.Tree topologies; Net wraps one as a static
// sim.Network whose serve cost is the routing distance (static topologies
// pay no adjustment cost).
package statictree
