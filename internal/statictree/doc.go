// Package statictree implements the offline/static demand-aware network
// designs of Section 3 of the paper plus the demand-oblivious baseline:
//
//   - Optimal: the O(n³·k) dynamic program for an optimal static
//     routing-based k-ary search tree network (Theorem 2/15), with the
//     dp2 prefix-minimum trick from the proof and a parallel fill,
//   - OptimalUniform: the O(n²·k) dynamic program for the uniform
//     workload (Theorem 4), which optimizes over tree shapes and imposes
//     the search property afterwards,
//   - Centroid: the O(n) centroid k-ary search tree (Theorem 8/35) built
//     from a (k+1)-degree centroid tree re-rooted at a leaf,
//   - Full: the weakly-complete (full) k-ary tree baseline (Lemma 9),
//   - OptimalBSTKnuth: an O(n²) Knuth-style speedup of the k=2 dynamic
//     program, an extension used only for very large instances and
//     cross-validated against the cubic DP in tests.
//
// All builders return *core.Tree topologies; Net wraps one as a static
// sim.Network whose serve cost is the routing distance (static topologies
// pay no adjustment cost).
package statictree
