package statictree

import (
	"testing"

	"github.com/ksan-net/ksan/internal/core"
)

// TestDistIndexRebuildZeroAllocs pins the oracle-reuse contract that lets
// policy.Net keep one DistIndex alive across static stretches: after the
// first build, re-indexing over a same-size topology — whether the same
// tree after rotations or an entirely different tree, the lazy net's
// swap pattern — reuses every backing array and allocates nothing.
func TestDistIndexRebuildZeroAllocs(t *testing.T) {
	t1, err := core.NewBalanced(511, 3)
	if err != nil {
		t.Fatal(err)
	}
	ix := NewDistIndex(t1)

	// Same tree, mutated between rebuilds (a splay-family stretch).
	if avg := testing.AllocsPerRun(100, func() {
		t1.SplayUntilParent(t1.NodeByID(300), nil)
		ix.Rebuild(t1)
	}); avg != 0 {
		t.Errorf("Rebuild over a mutated same tree: %.2f allocs, want 0", avg)
	}

	// A different same-size tree (the lazy net's rebuild swap).
	t2, err := core.NewRandom(511, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(100, func() { ix.Rebuild(t2) }); avg != 0 {
		t.Errorf("Rebuild over a swapped tree: %.2f allocs, want 0", avg)
	}

	// Reuse must not corrupt answers: the re-indexed oracle agrees with
	// the tree's own pointer walks.
	ix.Rebuild(t2)
	for u := 1; u <= 511; u += 37 {
		for v := 1; v <= 511; v += 53 {
			if got, want := ix.Dist(u, v), int64(t2.DistanceID(u, v)); got != want {
				t.Fatalf("Dist(%d,%d) after reuse = %d, tree walk says %d", u, v, got, want)
			}
		}
	}
}
