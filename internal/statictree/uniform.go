package statictree

import (
	"fmt"

	"github.com/ksan-net/ksan/internal/core"
)

// OptimalUniform computes an optimal static k-ary search tree for the
// (finite) uniform workload in O(n²·k) time (Theorem 4): because both the
// demand restricted to a segment and the boundary traffic W depend only on
// the segment's length (Lemmas 18/19), the dynamic program collapses to
// one dimension — it optimizes over tree shapes, and the search property
// is imposed afterwards by an in-order id assignment.
//
// The returned cost is TotalDistance(D_uniform, T) = Σ_{u<v} d_T(u,v).
func OptimalUniform(n, k int) (*core.Tree, int64, error) {
	if k < 2 {
		return nil, 0, fmt.Errorf("statictree: arity %d < 2", k)
	}
	if n < 1 {
		return nil, 0, fmt.Errorf("statictree: need at least one node")
	}
	s := &uniformSolver{n: n, k: k}
	s.run()
	spec := s.treeSpec(1, n)
	tree, err := core.Build(k, spec)
	if err != nil {
		return nil, 0, fmt.Errorf("statictree: uniform DP produced an invalid tree: %w", err)
	}
	return tree, s.tree[n], nil
}

// uniformSolver indexes the DP by segment length only.
//
// tree[s]      = cost of the best single tree on s nodes, including W(s)
//
//	(the traffic crossing the link to its parent).
//
// forest[s][t] = cost of the best forest of exactly t non-empty trees
//
//	covering s nodes in total.
type uniformSolver struct {
	n, k   int
	tree   []int64   // tree[s], s in 0..n
	forest [][]int64 // forest[s][t], t in 1..k
}

// w is the uniform-workload boundary traffic of any segment of length s:
// each inside node exchanges one request with each outside node.
func (s *uniformSolver) w(length int) int64 {
	return int64(length) * int64(s.n-length)
}

func (s *uniformSolver) run() {
	s.tree = make([]int64, s.n+1)
	s.forest = make([][]int64, s.n+1)
	for l := range s.forest {
		s.forest[l] = make([]int64, s.k+1)
		for t := range s.forest[l] {
			s.forest[l][t] = inf
		}
	}
	for length := 1; length <= s.n; length++ {
		// Best single tree: root plus up to k child trees over length-1
		// nodes.
		best := int64(inf)
		if length == 1 {
			best = 0
		}
		maxT := s.k
		if maxT > length-1 {
			maxT = length - 1
		}
		for t := 1; t <= maxT; t++ {
			if v := s.forest[length-1][t]; v < best {
				best = v
			}
		}
		s.tree[length] = best + s.w(length)
		// Forests of this length.
		s.forest[length][1] = s.tree[length]
		for t := 2; t <= s.k && t <= length; t++ {
			best := int64(inf)
			for a := 1; a <= length-t+1; a++ {
				v := s.tree[a] + s.forest[length-a][t-1]
				if v < best {
					best = v
				}
			}
			s.forest[length][t] = best
		}
	}
}

// childSizes re-derives the child-tree sizes of the best tree on s nodes.
func (s *uniformSolver) childSizes(length int) []int {
	if length == 1 {
		return nil
	}
	target := s.tree[length] - s.w(length)
	maxT := s.k
	if maxT > length-1 {
		maxT = length - 1
	}
	for t := 1; t <= maxT; t++ {
		if s.forest[length-1][t] == target {
			return s.forestSizes(length-1, t)
		}
	}
	panic("statictree: uniform child sizes unreachable")
}

func (s *uniformSolver) forestSizes(length, t int) []int {
	if t == 1 {
		return []int{length}
	}
	want := s.forest[length][t]
	for a := 1; a <= length-t+1; a++ {
		if s.tree[a]+s.forest[length-a][t-1] == want {
			return append([]int{a}, s.forestSizes(length-a, t-1)...)
		}
	}
	panic("statictree: uniform forest sizes unreachable")
}

// treeSpec lays the optimal shape onto the id interval [lo,hi]: the root id
// sits right after the first child's interval, making the tree
// routing-based (any in-order placement yields the same uniform cost).
func (s *uniformSolver) treeSpec(lo, hi int) *core.Spec {
	length := hi - lo + 1
	if length == 1 {
		return &core.Spec{ID: lo}
	}
	sizes := s.childSizes(length)
	id := lo + sizes[0]
	spec := &core.Spec{ID: id}
	spec.Thresholds = append(spec.Thresholds, id)
	spec.Children = append(spec.Children, s.treeSpec(lo, id-1))
	slotLo := id + 1
	for i := 1; i < len(sizes); i++ {
		end := slotLo + sizes[i] - 1
		spec.Children = append(spec.Children, s.treeSpec(slotLo, end))
		if i < len(sizes)-1 {
			spec.Thresholds = append(spec.Thresholds, end)
		}
		slotLo = end + 1
	}
	if len(sizes) == 1 {
		spec.Children = append(spec.Children, nil) // slot above the root id
	}
	return spec
}
