package statictree

import (
	"fmt"

	"github.com/ksan-net/ksan/internal/core"
)

// OptimalUniform computes an optimal static k-ary search tree for the
// (finite) uniform workload in O(n²·k) time (Theorem 4). It is a one-shot
// wrapper over UniformSolver; callers sweeping arities at a fixed n (the
// Remark 10 grid) should reuse one UniformSolver.
func OptimalUniform(n, k int) (*core.Tree, int64, error) {
	s, err := NewUniformSolver(n)
	if err != nil {
		return nil, 0, err
	}
	return s.Optimal(k)
}

// UniformSolver answers uniform-workload Optimal(k) queries for a fixed
// node count n: because both the demand restricted to a segment and the
// boundary traffic W depend only on the segment's length (Lemmas 18/19),
// the dynamic program collapses to one dimension — it optimizes over tree
// shapes, and the search property is imposed afterwards by an in-order id
// assignment. The returned cost is TotalDistance(D_uniform, T) =
// Σ_{u<v} d_T(u,v).
//
// Like Solver, a UniformSolver owns its DP scratch and recycles it across
// Optimal calls (the tables are arity-dependent, so only allocations are
// shared, not values); it is not safe for concurrent use.
type UniformSolver struct {
	n int
	// Per-call state, reused across Optimal calls.
	//
	// tree[s]            = cost of the best single tree on s nodes,
	//                      including W(s) (the traffic crossing the link
	//                      to its parent).
	// forest[s*(k+1)+t]  = cost of the best forest of exactly t non-empty
	//                      trees covering s nodes in total, t ∈ 1..k.
	k      int
	tree   []int64
	forest []int64
}

// NewUniformSolver validates n and prepares a solver for the uniform
// workload on nodes 1..n.
func NewUniformSolver(n int) (*UniformSolver, error) {
	if n < 1 {
		return nil, fmt.Errorf("statictree: need at least one node")
	}
	return &UniformSolver{n: n}, nil
}

// Optimal runs the uniform DP at arity k and reconstructs an optimal tree.
func (s *UniformSolver) Optimal(k int) (*core.Tree, int64, error) {
	if k < 2 {
		return nil, 0, fmt.Errorf("statictree: arity %d < 2", k)
	}
	s.run(k)
	spec := s.treeSpec(1, s.n)
	tree, err := core.Build(k, spec)
	if err != nil {
		return nil, 0, fmt.Errorf("statictree: uniform DP produced an invalid tree: %w", err)
	}
	return tree, s.tree[s.n], nil
}

// w is the uniform-workload boundary traffic of any segment of length s:
// each inside node exchanges one request with each outside node.
func (s *UniformSolver) w(length int) int64 {
	return int64(length) * int64(s.n-length)
}

func (s *UniformSolver) run(k int) {
	s.k = k
	if cap(s.tree) < s.n+1 {
		s.tree = make([]int64, s.n+1)
	} else {
		s.tree = s.tree[:s.n+1]
	}
	fsize := (s.n + 1) * (k + 1)
	if cap(s.forest) < fsize {
		s.forest = make([]int64, fsize)
	} else {
		s.forest = s.forest[:fsize]
	}
	for i := range s.forest {
		s.forest[i] = inf
	}
	for length := 1; length <= s.n; length++ {
		// Best single tree: root plus up to k child trees over length-1
		// nodes.
		best := int64(inf)
		if length == 1 {
			best = 0
		}
		maxT := k
		if maxT > length-1 {
			maxT = length - 1
		}
		prev := s.forest[(length-1)*(k+1):]
		for t := 1; t <= maxT; t++ {
			if v := prev[t]; v < best {
				best = v
			}
		}
		s.tree[length] = best + s.w(length)
		// Forests of this length.
		row := s.forest[length*(k+1):]
		row[1] = s.tree[length]
		for t := 2; t <= k && t <= length; t++ {
			best := int64(inf)
			for a := 1; a <= length-t+1; a++ {
				v := s.tree[a] + s.forest[(length-a)*(k+1)+t-1]
				if v < best {
					best = v
				}
			}
			row[t] = best
		}
	}
}

// childSizes re-derives the child-tree sizes of the best tree on s nodes.
func (s *UniformSolver) childSizes(length int) []int {
	if length == 1 {
		return nil
	}
	target := s.tree[length] - s.w(length)
	maxT := s.k
	if maxT > length-1 {
		maxT = length - 1
	}
	for t := 1; t <= maxT; t++ {
		if s.forest[(length-1)*(s.k+1)+t] == target {
			return s.forestSizes(length-1, t)
		}
	}
	panic("statictree: uniform child sizes unreachable")
}

func (s *UniformSolver) forestSizes(length, t int) []int {
	if t == 1 {
		return []int{length}
	}
	want := s.forest[length*(s.k+1)+t]
	for a := 1; a <= length-t+1; a++ {
		if s.tree[a]+s.forest[(length-a)*(s.k+1)+t-1] == want {
			return append([]int{a}, s.forestSizes(length-a, t-1)...)
		}
	}
	panic("statictree: uniform forest sizes unreachable")
}

// treeSpec lays the optimal shape onto the id interval [lo,hi]: the root id
// sits right after the first child's interval, making the tree
// routing-based (any in-order placement yields the same uniform cost).
func (s *UniformSolver) treeSpec(lo, hi int) *core.Spec {
	length := hi - lo + 1
	if length == 1 {
		return &core.Spec{ID: lo}
	}
	sizes := s.childSizes(length)
	id := lo + sizes[0]
	spec := &core.Spec{ID: id}
	spec.Thresholds = append(spec.Thresholds, id)
	spec.Children = append(spec.Children, s.treeSpec(lo, id-1))
	slotLo := id + 1
	for i := 1; i < len(sizes); i++ {
		end := slotLo + sizes[i] - 1
		spec.Children = append(spec.Children, s.treeSpec(slotLo, end))
		if i < len(sizes)-1 {
			spec.Thresholds = append(spec.Thresholds, end)
		}
		slotLo = end + 1
	}
	if len(sizes) == 1 {
		spec.Children = append(spec.Children, nil) // slot above the root id
	}
	return spec
}
