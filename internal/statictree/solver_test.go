package statictree

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/ksan-net/ksan/internal/workload"
)

// --- Differential demand families -----------------------------------------
//
// The pruned Solver must produce costs bit-identical to the exhaustive DP
// on every family the evaluation exercises plus adversarial shapes chosen
// to stress the admissible bound: a single dominant pair (bounds very
// uneven) and banded demands (bounds all tie, worst case for pruning).

type demandCase struct {
	name string
	d    *workload.Demand
}

func diffDemands(tb testing.TB) []demandCase {
	tb.Helper()
	var cases []demandCase
	add := func(name string, d *workload.Demand) {
		cases = append(cases, demandCase{name, d})
	}
	for _, n := range []int{8, 17, 33, 64} {
		add(fmt.Sprintf("uniform/n=%d", n), workload.UniformDemand(n))
		add(fmt.Sprintf("uniform-trace/n=%d", n),
			workload.DemandFromTrace(workload.Uniform(n, 40*n, int64(n))))
		add(fmt.Sprintf("zipf/n=%d", n),
			workload.DemandFromTrace(workload.Zipf(n, 40*n, 1.2, int64(n)+1)))
		add(fmt.Sprintf("temporal/n=%d", n),
			workload.DemandFromTrace(workload.Temporal(n, 40*n, 0.75, int64(n)+2)))
		// Adversarial: one pair dominates a sparse background.
		hot := &workload.Demand{N: n}
		hot.Pairs = append(hot.Pairs, workload.PairCount{Src: 2, Dst: n - 1, Count: 10_000})
		for u := 1; u < n; u++ {
			hot.Pairs = append(hot.Pairs, workload.PairCount{Src: u, Dst: u + 1, Count: 1})
		}
		hot.Total = 10_000 + int64(n-1)
		add(fmt.Sprintf("single-hot-pair/n=%d", n), hot)
		// Adversarial: banded demand — all traffic between ids at distance
		// ≤ 3, so segment boundary costs are near-flat and the root bounds
		// tie almost everywhere (pruning's graceful-degradation path).
		band := &workload.Demand{N: n}
		for u := 1; u <= n; u++ {
			for w := 1; w <= 3 && u+w <= n; w++ {
				band.Pairs = append(band.Pairs, workload.PairCount{Src: u, Dst: u + w, Count: int64(4 - w)})
				band.Total += int64(4 - w)
			}
		}
		add(fmt.Sprintf("banded/n=%d", n), band)
	}
	// Seeded random demands round out the grid.
	for seed := int64(0); seed < 3; seed++ {
		add(fmt.Sprintf("random/seed=%d", seed), randomDemand(24, 0.35, seed))
	}
	return cases
}

// TestSolverPrunedMatchesExhaustive is the differential property test of
// the PR 4 solver: on every demand family and arity, the pruned DP's cost
// must be bit-identical to the exhaustive DP's, and both trees must be
// valid witnesses of their (equal) costs.
func TestSolverPrunedMatchesExhaustive(t *testing.T) {
	for _, tc := range diffDemands(t) {
		t.Run(tc.name, func(t *testing.T) {
			pruned, err := NewSolver(tc.d)
			if err != nil {
				t.Fatal(err)
			}
			exact, err := NewSolver(tc.d, WithoutPruning())
			if err != nil {
				t.Fatal(err)
			}
			for k := 2; k <= 6; k++ {
				ptree, pcost, err := pruned.Optimal(k)
				if err != nil {
					t.Fatalf("k=%d pruned: %v", k, err)
				}
				etree, ecost, err := exact.Optimal(k)
				if err != nil {
					t.Fatalf("k=%d exhaustive: %v", k, err)
				}
				if pcost != ecost {
					t.Fatalf("k=%d: pruned cost %d != exhaustive cost %d", k, pcost, ecost)
				}
				if err := ptree.Validate(); err != nil {
					t.Fatalf("k=%d pruned tree invalid: %v", k, err)
				}
				if got := TotalDistance(ptree, tc.d); got != pcost {
					t.Fatalf("k=%d: pruned tree distance %d != cost %d", k, got, pcost)
				}
				if got := TotalDistance(etree, tc.d); got != ecost {
					t.Fatalf("k=%d: exhaustive tree distance %d != cost %d", k, got, ecost)
				}
			}
		})
	}
}

// TestRootMonotonicityCounterexample pins the reason the Solver does NOT
// use the classic Knuth root window r*(i,j-1) ≤ r*(i,j) ≤ r*(i+1,j): the
// boundary-traffic cost W violates the quadrangle inequality, and on this
// 4-node demand (randomDemand(4, 0.5, 0), inlined for stability) the
// optimal root of [1,4] lies strictly outside the window, so a window-
// pruned DP would report cost 63 instead of the true 57. Any future
// attempt to reintroduce window pruning must get past this test.
func TestRootMonotonicityCounterexample(t *testing.T) {
	d := &workload.Demand{N: 4, Pairs: []workload.PairCount{
		{Src: 1, Dst: 3, Count: 5}, {Src: 1, Dst: 4, Count: 9},
		{Src: 2, Dst: 1, Count: 8}, {Src: 3, Dst: 1, Count: 7},
		{Src: 4, Dst: 1, Count: 7}, {Src: 4, Dst: 2, Count: 3},
		{Src: 4, Dst: 3, Count: 2},
	}}
	s, err := NewSolver(d, WithoutPruning())
	if err != nil {
		t.Fatal(err)
	}
	_, cost, err := s.Optimal(2)
	if err != nil {
		t.Fatal(err)
	}
	if cost != 57 {
		t.Fatalf("optimal cost %d, want 57", cost)
	}
	rootOf := func(i, j int) int { return int(s.root[s.sc.t.at(i, j)]) }
	lo, hi := rootOf(1, 3), rootOf(2, 4)
	r := rootOf(1, 4)
	if r >= lo && r <= hi {
		t.Skipf("demand no longer violates the window (roots %d ≤ %d ≤ %d); find a new counterexample before pruning by windows", lo, r, hi)
	}
	// The window really is violated — and pruning to it would be lossy.
	best := int64(inf)
	for rr := lo; rr <= hi; rr++ {
		if v := s.splitCost(1, rr, 4); v < best {
			best = v
		}
	}
	if best+s.sc.W(1, 4) == cost {
		t.Fatal("window search matched the optimum; counterexample lost its teeth")
	}
}

// TestSolverArityReuse checks the scratch-recycling contract: one Solver
// answering k = 2..10 (in mixed order, with repeats) must give the same
// costs as fresh one-shot solves.
func TestSolverArityReuse(t *testing.T) {
	d := workload.DemandFromTrace(workload.Temporal(48, 3000, 0.5, 9))
	s, err := NewSolver(d)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{2, 10, 3, 8, 2, 5, 10, 4} {
		_, got, err := s.Optimal(k)
		if err != nil {
			t.Fatal(err)
		}
		_, want, err := Optimal(d, k)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("k=%d: reused solver cost %d != fresh solver cost %d", k, got, want)
		}
	}
}

// TestSolverSharedSegmentCosts pins the cross-arity sharing that the
// Tables 1–7 rewiring relies on: the boundary-traffic matrix is built at
// construction and the same instance serves every arity.
func TestSolverSharedSegmentCosts(t *testing.T) {
	d := randomDemand(20, 0.4, 11)
	s, err := NewSolver(d)
	if err != nil {
		t.Fatal(err)
	}
	sc := s.sc
	for _, k := range []int{2, 4, 7} {
		if _, _, err := s.Optimal(k); err != nil {
			t.Fatal(err)
		}
		if s.sc != sc {
			t.Fatalf("k=%d: Optimal rebuilt segmentCosts", k)
		}
	}
}

// TestSolverWorkerScheduler forces the atomic work-counter fan-out on a
// small instance (threshold dropped to zero) and checks determinism across
// worker counts; running under -race additionally proves the scheduler's
// memory accesses are clean.
func TestSolverWorkerScheduler(t *testing.T) {
	old := spawnWorkThreshold
	spawnWorkThreshold = 0
	defer func() { spawnWorkThreshold = old }()
	d := workload.DemandFromTrace(workload.Zipf(40, 3000, 1.1, 5))
	_, want, err := Optimal(d, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8} {
		s, err := NewSolver(d, WithSolverWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 2; trial++ {
			_, got, err := s.Optimal(4)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("workers=%d trial=%d: cost %d, want %d", workers, trial, got, want)
			}
		}
	}
}

// TestSolverPruningActuallyPrunes guards the perf claim: on a skewed
// demand, the admissible bound must exclude a substantial share of the
// interior roots (otherwise the 2× speedup silently regressed to the
// exhaustive scan).
func TestSolverPruningActuallyPrunes(t *testing.T) {
	d := workload.DemandFromTrace(workload.Zipf(64, 4000, 1.2, 3))
	s, err := NewSolver(d)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Optimal(8); err != nil {
		t.Fatal(err)
	}
	eval, skip := s.rootsEvaluated.Load(), s.rootsSkipped.Load()
	if skip == 0 || skip < eval {
		t.Errorf("pruning excluded %d of %d interior roots; expected a majority on a Zipf demand", skip, eval+skip)
	}
}

// --- Flattened triangular layout -------------------------------------------

// TestTriIndexing checks the triangular index is a bijection onto
// [0, n(n+1)/2) with rows contiguous.
func TestTriIndexing(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 40} {
		tr := newTri(n)
		if got, want := tr.size(), n*(n+1)/2; got != want {
			t.Fatalf("n=%d: size %d, want %d", n, got, want)
		}
		seen := make([]bool, tr.size())
		next := 0
		for i := 1; i <= n; i++ {
			for j := i; j <= n; j++ {
				at := tr.at(i, j)
				if at != next {
					t.Fatalf("n=%d: at(%d,%d)=%d, want %d (row-major contiguous)", n, i, j, at, next)
				}
				if seen[at] {
					t.Fatalf("n=%d: index %d hit twice", n, at)
				}
				seen[at] = true
				next++
			}
		}
	}
}

// TestSegmentCostsFlatMatchesNaive extends the naiveW cross-check to the
// flattened storage: both the W accessor and the raw triangular slice must
// agree with the per-pair definition.
func TestSegmentCostsFlatMatchesNaive(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		d := randomDemand(14, 0.4, seed+100)
		sc, err := newSegmentCosts(d)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := len(sc.w), 14*15/2; got != want {
			t.Fatalf("flat matrix has %d entries, want %d", got, want)
		}
		for i := 1; i <= 14; i++ {
			for j := i; j <= 14; j++ {
				want := naiveW(d, i, j)
				if got := sc.W(i, j); got != want {
					t.Fatalf("W(%d,%d)=%d want %d (seed %d)", i, j, got, want, seed)
				}
				if got := sc.w[sc.t.at(i, j)]; got != want {
					t.Fatalf("flat w[at(%d,%d)]=%d want %d (seed %d)", i, j, got, want, seed)
				}
			}
		}
	}
}

// TestSolverRandomizedAgainstBruteForce adds seeded random shapes on top
// of the family grid, cross-checked against the independent tree
// enumerator (not just the exhaustive DP).
func TestSolverRandomizedAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(7)
		k := 2 + rng.Intn(4)
		d := randomDemand(n, 0.3+rng.Float64()*0.5, rng.Int63())
		if len(d.Pairs) == 0 {
			continue
		}
		_, cost, err := Optimal(d, k)
		if err != nil {
			t.Fatal(err)
		}
		if want := bruteForceOptimal(d, k); cost != want {
			t.Fatalf("trial %d (n=%d k=%d): DP cost %d != brute force %d", trial, n, k, cost, want)
		}
	}
}
