package statictree

import (
	"math/bits"

	"github.com/ksan-net/ksan/internal/core"
	"github.com/ksan-net/ksan/internal/sim"
)

// DistIndex is a constant-time distance oracle over a static topology: an
// Euler tour of the tree with a sparse-table RMQ over tour depths, the
// textbook LCA reduction. Building costs O(n log n) once; each distance
// query is then a handful of array lookups instead of the three root-ward
// pointer walks core.Tree.Distance performs. This is what makes batch
// routing-cost evaluation (sim.BatchServer) profitable even on one core,
// and it is only sound because the wrapped tree never changes.
type DistIndex struct {
	depth []int32 // depth[id] for id in 1..n
	first []int32 // first[id]: first occurrence of id in the Euler tour
	euler []int32 // node ids in Euler-tour order (2n-1 entries)
	// table[j][i] is the tour position with minimum depth in the window
	// [i, i+2^j); table[0] is the tour positions themselves.
	table [][]int32
}

// NewDistIndex builds the oracle from a tree rooted at t.Root().
func NewDistIndex(t *core.Tree) *DistIndex {
	ix := &DistIndex{}
	ix.Rebuild(t)
	return ix
}

// Rebuild re-indexes the oracle over the tree's current topology, reusing
// every backing array the previous build left behind. Rebuilding over a
// same-size tree allocates nothing — which is what lets a self-adjusting
// net keep one oracle alive across static stretches instead of paying an
// O(n log n) allocation burst each time a stretch begins (policy.Net does
// exactly that). The zero value of DistIndex is a valid Rebuild target.
func (ix *DistIndex) Rebuild(t *core.Tree) {
	n := t.N()
	ix.depth = growRow(ix.depth, n+1)
	ix.first = growRow(ix.first, n+1)
	if cap(ix.euler) < 2*n-1 {
		ix.euler = make([]int32, 0, 2*n-1)
	}
	ix.euler = ix.euler[:0]
	ix.tour(t.Root(), 0)
	ix.buildRMQ()
}

// tour is a named method rather than a closure so that recursive rebuilds
// stay allocation-free (a recursive closure forces its own heap funcval).
func (ix *DistIndex) tour(nd *core.Node, depth int32) {
	id := int32(nd.ID())
	ix.first[id] = int32(len(ix.euler))
	ix.depth[id] = depth
	ix.euler = append(ix.euler, id)
	for i := 0; i < nd.NumSlots(); i++ {
		if c := nd.Child(i); c != nil {
			ix.tour(c, depth+1)
			ix.euler = append(ix.euler, id)
		}
	}
}

func (ix *DistIndex) buildRMQ() {
	m := len(ix.euler)
	levels := bits.Len(uint(m))
	if cap(ix.table) < levels {
		ix.table = make([][]int32, levels)
	}
	ix.table = ix.table[:cap(ix.table)][:levels]
	base := growRow(ix.table[0], m)
	ix.table[0] = base
	for i := range base {
		base[i] = int32(i)
	}
	for j := 1; j < levels; j++ {
		width := 1 << j
		prev := ix.table[j-1]
		row := growRow(ix.table[j], m-width+1)
		for i := range row {
			a, b := prev[i], prev[i+width/2]
			if ix.tourDepth(a) <= ix.tourDepth(b) {
				row[i] = a
			} else {
				row[i] = b
			}
		}
		ix.table[j] = row
	}
}

// growRow resizes a reusable row to exactly n entries, reallocating only
// when the old capacity is insufficient. Contents are unspecified.
func growRow(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func (ix *DistIndex) tourDepth(pos int32) int32 { return ix.depth[ix.euler[pos]] }

// Dist returns the path length in edges between nodes u and v.
func (ix *DistIndex) Dist(u, v int) int64 {
	if u == v {
		return 0
	}
	l, r := ix.first[u], ix.first[v]
	if l > r {
		l, r = r, l
	}
	j := bits.Len(uint(r-l+1)) - 1
	a, b := ix.table[j][l], ix.table[j][r-int32(1<<j)+1]
	lcaDepth := ix.tourDepth(a)
	if d := ix.tourDepth(b); d < lcaDepth {
		lcaDepth = d
	}
	return int64(ix.depth[u] + ix.depth[v] - 2*lcaDepth)
}

// ServeBatch evaluates a request slice against the oracle, returning the
// aggregate batch cost (routing totals plus the per-request routing-cost
// histogram). It is the shared batch loop of every frozen topology —
// statictree.Net and frozen policy compositions both delegate here — and
// is safe for concurrent calls on disjoint shards, since the oracle is
// immutable.
func (ix *DistIndex) ServeBatch(reqs []sim.Request) sim.BatchCost {
	var bc sim.BatchCost
	for _, rq := range reqs {
		d := ix.Dist(rq.Src, rq.Dst)
		bc.Routing += d
		bc.Hist.Observe(d)
	}
	return bc
}
