package statictree

import (
	"fmt"
	"testing"

	"github.com/ksan-net/ksan/internal/workload"
)

// benchDemand builds a deterministic Zipf demand at size n (the skew makes
// segment costs uneven, so the scheduler's load balancing is exercised).
func benchDemand(n int) *workload.Demand {
	return workload.DemandFromTrace(workload.Zipf(n, 20*n, 1.2, 7))
}

// BenchmarkOptimal is the PR 4 perf-trajectory grid: one cubic-DP solve per
// (n, k). BENCH_PR4.json at the repo root records this machine's baseline;
// future PRs diff against it (scripts/bench_pr4.sh regenerates it).
func BenchmarkOptimal(b *testing.B) {
	for _, n := range []int{128, 256, 512} {
		d := benchDemand(n)
		for _, k := range []int{2, 4, 8} {
			b.Run(fmt.Sprintf("n=%d/k=%d", n, k), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, _, err := Optimal(d, k); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkSolverSweep measures the Tables 1–7 consumption pattern: one
// Solver answering the whole k=2..10 sweep for a single demand, sharing
// the boundary-traffic matrix and DP scratch across arities.
func BenchmarkSolverSweep(b *testing.B) {
	d := benchDemand(256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := NewSolver(d)
		if err != nil {
			b.Fatal(err)
		}
		for k := 2; k <= 10; k++ {
			if _, _, err := s.Optimal(k); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkOptimalExhaustive pins the WithoutPruning reference path, so
// the baseline records how much the admissible-bound pruning buys.
func BenchmarkOptimalExhaustive(b *testing.B) {
	d := benchDemand(256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := NewSolver(d, WithoutPruning())
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := s.Optimal(8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSegmentCosts isolates the O(n²) boundary-traffic matrix build
// that every solve shares.
func BenchmarkSegmentCosts(b *testing.B) {
	d := benchDemand(512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := newSegmentCosts(d); err != nil {
			b.Fatal(err)
		}
	}
}
