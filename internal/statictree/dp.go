package statictree

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"github.com/ksan-net/ksan/internal/core"
	"github.com/ksan-net/ksan/internal/workload"
)

const inf = math.MaxInt64 / 4

// Optimal computes an optimal static routing-based k-ary search tree
// network for the given demand (Theorem 2/15): a tree minimizing
// Σ d_T(u,v)·D[u,v] among all routing-based k-ary search trees. It returns
// the tree and its total distance.
//
// Running time is O(n³·k) with the dp2 prefix-minimum trick of the paper's
// proof; the fill is parallelized across segments of equal length. Memory
// is Θ(n²·k) words, so callers should keep n in the low thousands (the
// paper itself could not compute the optimum for its 10⁴-node Facebook
// trace; see Table 3).
func Optimal(d *workload.Demand, k int) (*core.Tree, int64, error) {
	if k < 2 {
		return nil, 0, fmt.Errorf("statictree: arity %d < 2", k)
	}
	n := d.N
	if n < 1 {
		return nil, 0, fmt.Errorf("statictree: empty demand")
	}
	if n > 4096 {
		return nil, 0, fmt.Errorf("statictree: n=%d too large for the cubic DP (limit 4096); downscale the demand first", n)
	}
	sc, err := newSegmentCosts(d)
	if err != nil {
		return nil, 0, err
	}
	s := &dpSolver{n: n, k: k, sc: sc}
	s.run()
	spec := s.treeSpec(1, n)
	tree, err := core.Build(k, spec)
	if err != nil {
		return nil, 0, fmt.Errorf("statictree: DP produced an invalid tree: %w", err)
	}
	return tree, s.get(1, n, 1), nil
}

// dpSolver holds the DP tables. Segments are 1-based, t ∈ 1..k.
//
// dp[i][j][t]  = minimal cost of partitioning segment [i,j] into exactly t
//
//	routing-based k-ary search trees (the children of some
//	node), where the cost of a tree on [a,b] includes W[a,b],
//	the traffic crossing the link to its parent.
//
// dp2[i][j][t] = min over 1..t of dp[i][j][·].
type dpSolver struct {
	n, k int
	sc   *segmentCosts
	dp   []int64
	dp2  []int64
}

func (s *dpSolver) idx(i, j, t int) int {
	return ((i-1)*s.n+(j-1))*s.k + (t - 1)
}

// get reads dp[i][j][t], treating empty segments as free.
func (s *dpSolver) get(i, j, t int) int64 {
	if i > j {
		return 0
	}
	return s.dp[s.idx(i, j, t)]
}

// get2 reads dp2[i][j][t] (min over up to t parts); empty segments are free.
func (s *dpSolver) get2(i, j, t int) int64 {
	if i > j {
		return 0
	}
	if t < 1 {
		return inf
	}
	return s.dp2[s.idx(i, j, t)]
}

// splitCost is the cheapest way to hang the children of a node with id r
// whose segment is [i,j]: the left children cover [i,r-1], the right
// children cover [r+1,j], and the routing array has room for k children
// when both sides are used, or k-1 children plus the node's own id
// threshold when one side is empty (routing-based trees keep r in the
// routing array).
func (s *dpSolver) splitCost(i, r, j int) int64 {
	leftEmpty := r == i
	rightEmpty := r == j
	switch {
	case leftEmpty && rightEmpty:
		return 0
	case leftEmpty:
		return s.get2(r+1, j, s.k-1)
	case rightEmpty:
		return s.get2(i, r-1, s.k-1)
	default:
		best := int64(inf)
		for dl := 1; dl <= s.k-1; dl++ {
			v := s.get2(i, r-1, dl)
			if v >= inf {
				continue
			}
			v += s.get2(r+1, j, s.k-dl)
			if v < best {
				best = v
			}
		}
		return best
	}
}

func (s *dpSolver) run() {
	size := s.n * s.n * s.k
	s.dp = make([]int64, size)
	s.dp2 = make([]int64, size)
	workers := runtime.GOMAXPROCS(0)
	for length := 1; length <= s.n; length++ {
		lo, hi := 1, s.n-length+1
		if hi < lo {
			break
		}
		var wg sync.WaitGroup
		chunk := (hi - lo + 1 + workers - 1) / workers
		for w := 0; w < workers; w++ {
			from := lo + w*chunk
			to := from + chunk - 1
			if to > hi {
				to = hi
			}
			if from > to {
				continue
			}
			wg.Add(1)
			go func(from, to, length int) {
				defer wg.Done()
				for i := from; i <= to; i++ {
					s.fillSegment(i, i+length-1)
				}
			}(from, to, length)
		}
		wg.Wait()
	}
}

// fillSegment computes dp[i][j][·] and dp2[i][j][·]; all shorter segments
// are already filled.
func (s *dpSolver) fillSegment(i, j int) {
	// t = 1: choose a root r and its child split.
	best := int64(inf)
	for r := i; r <= j; r++ {
		if v := s.splitCost(i, r, j); v < best {
			best = v
		}
	}
	w := s.sc.W(i, j)
	s.dp[s.idx(i, j, 1)] = best + w
	s.dp2[s.idx(i, j, 1)] = best + w
	// t ≥ 2: peel the first tree off the segment.
	nodes := j - i + 1
	for t := 2; t <= s.k; t++ {
		best := int64(inf)
		if t <= nodes {
			for l := i; l <= j-t+1; l++ {
				v := s.get(i, l, 1) + s.get(l+1, j, t-1)
				if v < best {
					best = v
				}
			}
		}
		s.dp[s.idx(i, j, t)] = best
		prev := s.dp2[s.idx(i, j, t-1)]
		if best < prev {
			s.dp2[s.idx(i, j, t)] = best
		} else {
			s.dp2[s.idx(i, j, t)] = prev
		}
	}
}

// bestRootSplit re-derives the argmin of dp[i][j][1]: the root id and the
// left/right child counts. Recomputing choices on demand keeps the tables
// at two int64 arrays.
func (s *dpSolver) bestRootSplit(i, j int) (r, dl, dr int) {
	target := s.get(i, j, 1) - s.sc.W(i, j)
	for r := i; r <= j; r++ {
		leftEmpty := r == i
		rightEmpty := r == j
		switch {
		case leftEmpty && rightEmpty:
			if target == 0 {
				return r, 0, 0
			}
		case leftEmpty:
			if s.get2(r+1, j, s.k-1) == target {
				return r, 0, s.minParts(r+1, j, s.k-1)
			}
		case rightEmpty:
			if s.get2(i, r-1, s.k-1) == target {
				return r, s.minParts(i, r-1, s.k-1), 0
			}
		default:
			for dl := 1; dl <= s.k-1; dl++ {
				lv := s.get2(i, r-1, dl)
				if lv >= inf {
					continue
				}
				if lv+s.get2(r+1, j, s.k-dl) == target {
					return r, s.minParts(i, r-1, dl), s.minParts(r+1, j, s.k-dl)
				}
			}
		}
	}
	panic(fmt.Sprintf("statictree: no root reproduces dp[%d][%d][1]", i, j))
}

// minParts returns a part count t ≤ maxT achieving dp2[i][j][maxT].
func (s *dpSolver) minParts(i, j, maxT int) int {
	want := s.get2(i, j, maxT)
	for t := 1; t <= maxT; t++ {
		if s.get(i, j, t) == want {
			return t
		}
	}
	panic("statictree: dp2 value unreachable")
}

// forestParts splits [i,j] into t consecutive segments reproducing
// dp[i][j][t].
func (s *dpSolver) forestParts(i, j, t int) [][2]int {
	if t == 1 {
		return [][2]int{{i, j}}
	}
	want := s.get(i, j, t)
	for l := i; l <= j-t+1; l++ {
		if s.get(i, l, 1)+s.get(l+1, j, t-1) == want {
			return append([][2]int{{i, l}}, s.forestParts(l+1, j, t-1)...)
		}
	}
	panic("statictree: forest split unreachable")
}

// treeSpec reconstructs the optimal tree on [i,j] as a core.Spec. The root
// id always appears as a routing element (routing-based construction): the
// threshold between the last left child and the first right child is r,
// and when one side is empty r still delimits an empty slot.
func (s *dpSolver) treeSpec(i, j int) *core.Spec {
	r, dl, dr := s.bestRootSplit(i, j)
	spec := &core.Spec{ID: r}
	if dl > 0 {
		for idx, part := range s.forestParts(i, r-1, dl) {
			spec.Children = append(spec.Children, s.treeSpec(part[0], part[1]))
			if idx < dl-1 {
				spec.Thresholds = append(spec.Thresholds, part[1])
			} else {
				spec.Thresholds = append(spec.Thresholds, r)
			}
		}
	} else if dr > 0 {
		// Empty slot holding just the root id keeps the tree routing-based.
		spec.Thresholds = append(spec.Thresholds, r)
		spec.Children = append(spec.Children, nil)
	}
	if dr > 0 {
		parts := s.forestParts(r+1, j, dr)
		for idx, part := range parts {
			spec.Children = append(spec.Children, s.treeSpec(part[0], part[1]))
			if idx < dr-1 {
				spec.Thresholds = append(spec.Thresholds, part[1])
			}
		}
	} else if dl > 0 {
		// The slot above the trailing threshold r stays empty.
		spec.Children = append(spec.Children, nil)
	}
	if len(spec.Children) == 0 {
		spec.Children = nil
	}
	return spec
}
