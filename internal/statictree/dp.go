package statictree

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/ksan-net/ksan/internal/core"
	"github.com/ksan-net/ksan/internal/workload"
)

const inf = math.MaxInt64 / 4

// spawnWorkThreshold is the estimated per-diagonal operation count below
// which the fill runs inline instead of fanning out to workers (a var so
// tests can force the concurrent path on small instances).
var spawnWorkThreshold = 4096

// Optimal computes an optimal static routing-based k-ary search tree
// network for the given demand (Theorem 2/15): a tree minimizing
// Σ d_T(u,v)·D[u,v] among all routing-based k-ary search trees. It returns
// the tree and its total distance.
//
// It is a one-shot convenience wrapper over Solver; callers that need the
// optimum at several arities for the same demand (the Tables 1–7 sweep
// runs k=2..10) should build one Solver and call its Optimal method per
// arity, sharing the O(n²) boundary-traffic matrix and the DP scratch.
func Optimal(d *workload.Demand, k int) (*core.Tree, int64, error) {
	s, err := NewSolver(d)
	if err != nil {
		return nil, 0, err
	}
	return s.Optimal(k)
}

// Solver answers Optimal(k) queries for one fixed demand at any arity.
// Construction precomputes the boundary-traffic matrix W (O(n²), shared by
// every arity); each Optimal call runs the O(n³·k) dynamic program of the
// paper's Theorem 2/15 proof, with an admissible-bound root pruning that
// typically removes the k-factor from the root search (see fillSegment)
// and an atomic work-counter scheduler for the parallel fill (see run).
//
// Scratch ownership mirrors the serve-path contract of DESIGN.md §3: the
// DP tables are owned by the Solver and recycled across Optimal calls, so
// a Solver is NOT safe for concurrent use — serialize Optimal calls (they
// already use all cores internally) or build one Solver per goroutine.
// The demand is only read during construction; the returned trees are
// freshly built and independent of the Solver.
type Solver struct {
	n          int
	sc         *segmentCosts
	exhaustive bool
	workers    int

	// Per-call state, reused across Optimal calls (grown, never cleared:
	// every fill writes each cell of its segment before anything reads it).
	//
	// dp2[(t-1)*T + tri(i,j)] = minimal cost of partitioning segment [i,j]
	// into AT MOST t routing-based k-ary search trees (the children of
	// some node), t ∈ 1..k, where the cost of a tree on [a,b] includes
	// W[a,b], the traffic crossing the link to its parent. The exact-t
	// table of the seed DP is redundant — the recurrence closes over the
	// prefix-minimum form directly (see fillSegment) — so dropping it
	// halves table memory on top of the triangular halving.
	//
	// The layout is plane-major in t: the hot inner loops walk segments at
	// a fixed t, so each plane is a contiguous triangular matrix.
	k, T int // current arity; T = n(n+1)/2 plane size
	dp2  []int64
	root []int32 // root[tri(i,j)] = an argmin root of the 1-tree cost on [i,j]
	lb   []int64 // inline-path scratch for prunedRootSearch

	// Pruning diagnostics: exact O(k) split evaluations vs roots excluded
	// by the admissible bound, accumulated per Optimal call.
	rootsEvaluated atomic.Int64
	rootsSkipped   atomic.Int64
}

// SolverOption configures a Solver at construction.
type SolverOption func(*Solver)

// WithoutPruning disables the admissible-bound root pruning: every segment
// evaluates the full split cost of every root, exactly like the seed DP.
// Pruning is exact by construction (bounds only ever exclude roots that
// provably cannot beat an already-found split), so this exists purely as
// the reference semantics for the differential tests and as a debugging
// aid — costs are bit-identical in both modes.
func WithoutPruning() SolverOption {
	return func(s *Solver) { s.exhaustive = true }
}

// WithSolverWorkers bounds the DP fill's worker count (default GOMAXPROCS).
// Values below 1 are ignored. Callers embedding Optimal calls inside their
// own worker pools can set 1 to avoid oversubscription.
func WithSolverWorkers(n int) SolverOption {
	return func(s *Solver) {
		if n >= 1 {
			s.workers = n
		}
	}
}

// NewSolver builds the shared per-demand state: the flattened triangular
// boundary-traffic matrix. Memory is Θ(n²) words here plus Θ(n²·k)/2 words
// of DP table on the first Optimal(k) call (a quarter of the seed DP's two
// square tables); callers should keep n in the low thousands (the paper
// itself could not compute the optimum for its 10⁴-node Facebook trace;
// see Table 3).
func NewSolver(d *workload.Demand, opts ...SolverOption) (*Solver, error) {
	n := d.N
	if n < 1 {
		return nil, fmt.Errorf("statictree: empty demand")
	}
	if n > 4096 {
		return nil, fmt.Errorf("statictree: n=%d too large for the cubic DP (limit 4096); downscale the demand first", n)
	}
	sc, err := newSegmentCosts(d)
	if err != nil {
		return nil, err
	}
	s := &Solver{n: n, sc: sc, workers: runtime.GOMAXPROCS(0)}
	for _, o := range opts {
		o(s)
	}
	return s, nil
}

// Optimal runs the DP at arity k and reconstructs an optimal tree. The
// cost is deterministic and independent of worker count and pruning mode
// (pruning is exact; the differential tests enforce bit-identity anyway);
// the returned tree is one cost-minimal witness.
func (s *Solver) Optimal(k int) (*core.Tree, int64, error) {
	if k < 2 {
		return nil, 0, fmt.Errorf("statictree: arity %d < 2", k)
	}
	s.prepare(k)
	s.run()
	spec := s.treeSpec(1, s.n)
	tree, err := core.Build(k, spec)
	if err != nil {
		return nil, 0, fmt.Errorf("statictree: DP produced an invalid tree: %w", err)
	}
	return tree, s.get2(1, s.n, 1), nil
}

// prepare sizes the DP tables for arity k, recycling prior allocations.
func (s *Solver) prepare(k int) {
	s.k = k
	s.T = s.sc.t.size()
	size := s.T * k
	if cap(s.dp2) < size {
		s.dp2 = make([]int64, size)
	} else {
		s.dp2 = s.dp2[:size]
	}
	if s.root == nil {
		s.root = make([]int32, s.T)
		s.lb = make([]int64, s.n+1)
	}
	s.rootsEvaluated.Store(0)
	s.rootsSkipped.Store(0)
}

// get2 reads dp2[i][j][t] (min over up to t parts); empty segments are
// free.
func (s *Solver) get2(i, j, t int) int64 {
	if i > j {
		return 0
	}
	if t < 1 {
		return inf
	}
	return s.dp2[(t-1)*s.T+s.sc.t.at(i, j)]
}

// splitCost is the cheapest way to hang the children of a node with id r
// whose segment is [i,j]: the left children cover [i,r-1], the right
// children cover [r+1,j], and the routing array has room for k children
// when both sides are used, or k-1 children plus the node's own id
// threshold when one side is empty (routing-based trees keep r in the
// routing array).
func (s *Solver) splitCost(i, r, j int) int64 {
	k, T := s.k, s.T
	top := (k - 2) * T
	switch {
	case r == i && r == j:
		return 0
	case r == i:
		return s.dp2[top+s.sc.t.at(r+1, j)]
	case r == j:
		return s.dp2[top+s.sc.t.at(i, r-1)]
	default:
		li := s.sc.t.at(i, r-1)
		ri := s.sc.t.at(r+1, j)
		best := int64(inf)
		for dl := 1; dl <= k-1; dl++ {
			if v := s.dp2[(dl-1)*T+li] + s.dp2[(k-dl-1)*T+ri]; v < best {
				best = v
			}
		}
		return best
	}
}

// splitCostBeat is splitCost for an interior root, with an early exit: as
// dl grows, the right side is allowed fewer parts, so its dp2 term only
// ever grows; once even the left side's unconstrained minimum (lmin, its
// k-1-part dp2) plus that right term reaches beat, no later dl can beat
// the incumbent and the scan stops. The returned value is the exact
// minimum whenever it is below beat (values ≥ beat may be partial, which
// is sound: callers only use them for `< beat` comparisons).
func (s *Solver) splitCostBeat(i, r, j int, beat int64) int64 {
	k, T := s.k, s.T
	li := s.sc.t.at(i, r-1)
	ri := s.sc.t.at(r+1, j)
	lmin := s.dp2[(k-2)*T+li]
	best := int64(inf)
	for dl := 1; dl <= k-1; dl++ {
		rv := s.dp2[(k-dl-1)*T+ri]
		if lmin+rv >= beat && best < inf {
			break
		}
		if v := s.dp2[(dl-1)*T+li] + rv; v < best {
			best = v
		}
	}
	return best
}

// run fills the table diagonal by diagonal (all segments of one length
// depend only on shorter ones). Within a diagonal, workers pull the next
// unfilled segment from a shared atomic counter, so a handful of
// expensive segments — pruning makes per-segment cost wildly skewed —
// never idles the rest of the pool the way the previous fixed-chunk
// fan-out did. Tiny diagonals run inline: the fan-out costs more than it
// buys below spawnWorkThreshold estimated operations.
func (s *Solver) run() {
	var scratch [][]int64 // per-worker lb buffers, reused across diagonals
	for length := 1; length <= s.n; length++ {
		lo, hi := 1, s.n-length+1
		segs := hi - lo + 1
		if s.workers <= 1 || segs == 1 || segs*length*s.k < spawnWorkThreshold {
			for i := lo; i <= hi; i++ {
				s.fillSegment(i, i+length-1, s.lb)
			}
			continue
		}
		if scratch == nil {
			scratch = make([][]int64, s.workers)
			for w := range scratch {
				scratch[w] = make([]int64, s.n+1)
			}
		}
		nw := s.workers
		if nw > segs {
			nw = segs
		}
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(nw)
		for w := 0; w < nw; w++ {
			lb := scratch[w]
			go func() {
				defer wg.Done()
				for {
					i := lo + int(next.Add(1)) - 1
					if i > hi {
						return
					}
					s.fillSegment(i, i+length-1, lb)
				}
			}()
		}
		wg.Wait()
	}
}

// fillSegment computes dp2[i][j][·] and root[i][j]; all shorter segments
// are already filled. lb is caller-owned scratch of length ≥ n+1.
//
// t = 1 is the root search. A classic Knuth-style window
// r*(i,j-1) ≤ r ≤ r*(i+1,j) would be UNSOUND here: the boundary-traffic
// cost W violates the quadrangle inequality, and root monotonicity
// genuinely fails (TestRootMonotonicityCounterexample pins a 4-node demand
// where the optimal root of [1,4] lies outside the window). Instead the
// pruning is branch-and-bound with an admissible bound — exact by
// construction, falling back to full evaluation exactly for the roots the
// bound cannot exclude (see prunedRootSearch).
//
// t ≥ 2 peels the first child tree off the segment, directly in
// prefix-minimum form: a forest of ≤ t trees is either one tree (the
// t-1 entry already covers it) or a first tree [i,l] plus a forest of
// ≤ t-1 trees on [l+1,j].
func (s *Solver) fillSegment(i, j int, lb []int64) {
	k, T := s.k, s.T
	offs := s.sc.t.off
	base := int(offs[i]) + j - i
	var best int64
	var bestR int
	switch {
	case i == j:
		best, bestR = 0, i
	case s.exhaustive:
		best, bestR = inf, i
		for r := i; r <= j; r++ {
			if v := s.splitCost(i, r, j); v < best {
				best, bestR = v, r
			}
		}
	default:
		best, bestR = s.prunedRootSearch(i, j, lb)
	}
	s.root[base] = int32(bestR)
	s.dp2[base] = best + s.sc.w[base]
	n := s.n
	lrow := s.dp2[int(offs[i]) : int(offs[i])+j-i+1] // dp2(i, ·, 1): contiguous
	for t := 2; t <= k; t++ {
		prevPlane := s.dp2[(t-2)*T:]
		b := prevPlane[base] // a forest of ≤ t-1 trees is also one of ≤ t
		ri := int(offs[i+1]) + j - i - 1
		// ri tracks tri(l+1, j): row l+2 starts n-l long, so the index
		// advances by n-l-1 when l steps.
		for l := i; l < j; l++ {
			if v := lrow[l-i] + prevPlane[ri]; v < b {
				b = v
			}
			ri += n - l - 1
		}
		s.dp2[(t-1)*T+base] = b
	}
}

// prunedRootSearch finds the minimum split cost over all roots of [i,j]
// (i < j) and one argmin. Edge roots cost a single read. For each interior
// root r, dp2(i,r-1,k-1) + dp2(r+1,j,k-1) is a lower bound on its split
// cost — it relaxes the dl+dr ≤ k routing-array constraint to dl,dr ≤ k-1
// — and dp2's monotonicity in t makes the bound admissible. The search
// bounds every interior root (2 reads each), evaluates the most promising
// one exactly to seed a tight incumbent, then runs the exact O(k) split
// only for roots whose bound beats the incumbent. Worst case (bounds all
// tie, e.g. near-uniform demands) it degrades gracefully to the seed DP's
// full O(len·k) scan; on skewed demands it removes the k factor.
func (s *Solver) prunedRootSearch(i, j int, lb []int64) (int64, int) {
	k, T := s.k, s.T
	offs := s.sc.t.off
	top := s.dp2[(k-2)*T:]
	best := top[int(offs[i+1])+j-i-1] // r = i: right side [i+1,j] gets k-1 slots
	bestR := i
	if v := top[int(offs[i])+j-1-i]; v < best { // r = j: left side [i,j-1]
		best, bestR = v, j
	}
	if j-i == 1 {
		return best, bestR
	}
	minLB, minR := int64(inf), 0
	li := int(offs[i]) - i // + (r-1) = tri(i, r-1)
	for r := i + 1; r < j; r++ {
		v := top[li+r-1] + top[int(offs[r+1])+j-r-1]
		lb[r-i] = v
		if v < minLB {
			minLB, minR = v, r
		}
	}
	evaluated, skipped := int64(0), int64(0)
	if minLB < best {
		evaluated++
		if v := s.splitCostBeat(i, minR, j, best); v < best {
			best, bestR = v, minR
		}
	} else {
		skipped++
	}
	for r := i + 1; r < j; r++ {
		if r == minR {
			continue // counted in the seeding step above
		}
		if lb[r-i] >= best {
			skipped++
			continue
		}
		evaluated++
		if v := s.splitCostBeat(i, r, j, best); v < best {
			best, bestR = v, r
		}
	}
	s.rootsEvaluated.Add(evaluated)
	s.rootsSkipped.Add(skipped)
	return best, bestR
}

// bestRootSplit re-derives the argmin of the 1-tree cost on [i,j] from the
// stored root: the root id and the left/right child counts. Recomputing
// the split on demand keeps the tables at one int64 plane stack plus the
// int32 root row.
func (s *Solver) bestRootSplit(i, j int) (r, dl, dr int) {
	target := s.get2(i, j, 1) - s.sc.W(i, j)
	r = int(s.root[s.sc.t.at(i, j)])
	leftEmpty := r == i
	rightEmpty := r == j
	switch {
	case leftEmpty && rightEmpty:
		if target == 0 {
			return r, 0, 0
		}
	case leftEmpty:
		if s.get2(r+1, j, s.k-1) == target {
			return r, 0, s.minParts(r+1, j, s.k-1)
		}
	case rightEmpty:
		if s.get2(i, r-1, s.k-1) == target {
			return r, s.minParts(i, r-1, s.k-1), 0
		}
	default:
		for dl := 1; dl <= s.k-1; dl++ {
			if s.get2(i, r-1, dl)+s.get2(r+1, j, s.k-dl) == target {
				return r, s.minParts(i, r-1, dl), s.minParts(r+1, j, s.k-dl)
			}
		}
	}
	panic(fmt.Sprintf("statictree: stored root %d does not reproduce the 1-tree cost on [%d,%d]", r, i, j))
}

// minParts returns the smallest part count t ≤ maxT achieving
// dp2[i][j][maxT]; the optimal forest then uses exactly t trees.
func (s *Solver) minParts(i, j, maxT int) int {
	want := s.get2(i, j, maxT)
	for t := 1; t <= maxT; t++ {
		if s.get2(i, j, t) == want {
			return t
		}
	}
	panic("statictree: dp2 value unreachable")
}

// forestParts splits [i,j] into exactly t consecutive segments reproducing
// dp2[i][j][t]; t must be minimal for the value (minParts), which
// guarantees the reconstruction uses all t parts.
func (s *Solver) forestParts(i, j, t int) [][2]int {
	if t == 1 {
		return [][2]int{{i, j}}
	}
	want := s.get2(i, j, t)
	for l := i; l < j; l++ {
		rest := s.get2(l+1, j, t-1)
		if s.get2(i, l, 1)+rest == want {
			tt := s.minParts(l+1, j, t-1)
			return append([][2]int{{i, l}}, s.forestParts(l+1, j, tt)...)
		}
	}
	panic("statictree: forest split unreachable")
}

// treeSpec reconstructs the optimal tree on [i,j] as a core.Spec. The root
// id always appears as a routing element (routing-based construction): the
// threshold between the last left child and the first right child is r,
// and when one side is empty r still delimits an empty slot.
func (s *Solver) treeSpec(i, j int) *core.Spec {
	r, dl, dr := s.bestRootSplit(i, j)
	spec := &core.Spec{ID: r}
	if dl > 0 {
		parts := s.forestParts(i, r-1, dl)
		for idx, part := range parts {
			spec.Children = append(spec.Children, s.treeSpec(part[0], part[1]))
			if idx < len(parts)-1 {
				spec.Thresholds = append(spec.Thresholds, part[1])
			} else {
				spec.Thresholds = append(spec.Thresholds, r)
			}
		}
	} else if dr > 0 {
		// Empty slot holding just the root id keeps the tree routing-based.
		spec.Thresholds = append(spec.Thresholds, r)
		spec.Children = append(spec.Children, nil)
	}
	if dr > 0 {
		parts := s.forestParts(r+1, j, dr)
		for idx, part := range parts {
			spec.Children = append(spec.Children, s.treeSpec(part[0], part[1]))
			if idx < len(parts)-1 {
				spec.Thresholds = append(spec.Thresholds, part[1])
			}
		}
	} else if dl > 0 {
		// The slot above the trailing threshold r stays empty.
		spec.Children = append(spec.Children, nil)
	}
	if len(spec.Children) == 0 {
		spec.Children = nil
	}
	return spec
}
