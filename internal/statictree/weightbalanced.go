package statictree

import (
	"fmt"

	"github.com/ksan-net/ksan/internal/core"
	"github.com/ksan-net/ksan/internal/workload"
)

// WeightBalanced builds a demand-aware k-ary search tree in O(n·k·log n) by
// Mehlhorn-style weighted bisection: each segment picks the root at its
// weighted median (point weight = total traffic at the node) and splits the
// remainder into up to k child segments of near-equal weight.
//
// This is an extension beyond the paper, motivated by Table 3/Table 8: the
// exact DP is out of reach at the Facebook trace's 10⁴ nodes (the paper
// leaves that optimal-tree cell empty). Mehlhorn's rule carries a
// constant-factor guarantee for binary search trees under point-access
// demand; for the network objective it is a heuristic, so the harness
// labels results "approx" wherever it substitutes for Optimal. Tests
// measure its gap against the exact DP on random demands.
//
// We deliberately do NOT ship a Knuth-speedup DP: Knuth's root
// monotonicity requires the quadrangle inequality, which the
// SplayNet-style boundary traffic W violates (observed gaps exceeded 30%
// on random demands), so that "optimization" would silently return wrong
// optima.
func WeightBalanced(d *workload.Demand, k int) (*core.Tree, int64, error) {
	if k < 2 {
		return nil, 0, fmt.Errorf("statictree: arity %d < 2", k)
	}
	n := d.N
	if n < 1 {
		return nil, 0, fmt.Errorf("statictree: empty demand")
	}
	// Point weights: total traffic with node x as either endpoint, +1 so
	// untouched nodes still spread evenly.
	weight := make([]int64, n+2)
	for _, pc := range d.Pairs {
		weight[pc.Src] += pc.Count
		weight[pc.Dst] += pc.Count
	}
	prefix := make([]int64, n+2)
	for x := 1; x <= n; x++ {
		prefix[x] = prefix[x-1] + weight[x] + 1
	}
	wsum := func(i, j int) int64 {
		if i > j {
			return 0
		}
		return prefix[j] - prefix[i-1]
	}
	var build func(i, j int) *core.Spec
	build = func(i, j int) *core.Spec {
		if i > j {
			return nil
		}
		if i == j {
			return &core.Spec{ID: i}
		}
		// Weighted median of [i,j] as the root.
		half := wsum(i, j) / 2
		r := i
		for r < j && wsum(i, r) < half {
			r++
		}
		spec := &core.Spec{ID: r}
		// Split each side into near-equal-weight parts, slots proportional
		// to each side's share (at least one slot per non-empty side).
		leftN, rightN := r-i, j-r
		dl, dr := 0, 0
		switch {
		case leftN == 0 && rightN == 0:
		case leftN == 0:
			dr = minInt(k-1, rightN)
		case rightN == 0:
			dl = minInt(k-1, leftN)
		default:
			lw, rw := wsum(i, r-1), wsum(r+1, j)
			dl = int(int64(k) * lw / (lw + rw))
			dl = clampInt(dl, 1, k-1)
			dl = minInt(dl, leftN)
			dr = minInt(k-dl, rightN)
		}
		if dl > 0 {
			parts := weightParts(i, r-1, dl, wsum)
			for idx, part := range parts {
				spec.Children = append(spec.Children, build(part[0], part[1]))
				if idx < len(parts)-1 {
					spec.Thresholds = append(spec.Thresholds, part[1])
				} else {
					spec.Thresholds = append(spec.Thresholds, r)
				}
			}
		} else if dr > 0 {
			spec.Thresholds = append(spec.Thresholds, r)
			spec.Children = append(spec.Children, nil)
		}
		if dr > 0 {
			parts := weightParts(r+1, j, dr, wsum)
			for idx, part := range parts {
				spec.Children = append(spec.Children, build(part[0], part[1]))
				if idx < len(parts)-1 {
					spec.Thresholds = append(spec.Thresholds, part[1])
				}
			}
		} else if dl > 0 {
			spec.Children = append(spec.Children, nil)
		}
		return spec
	}
	tree, err := core.Build(k, build(1, n))
	if err != nil {
		return nil, 0, fmt.Errorf("statictree: weight-balanced construction invalid: %w", err)
	}
	return tree, TotalDistance(tree, d), nil
}

// weightParts splits [i,j] into t contiguous non-empty parts of near-equal
// weight.
func weightParts(i, j, t int, wsum func(a, b int) int64) [][2]int {
	parts := make([][2]int, 0, t)
	start := i
	for p := 1; p <= t; p++ {
		remainingParts := t - p
		end := start
		if p < t {
			target := wsum(start, j) / int64(remainingParts+1)
			for end < j-remainingParts && wsum(start, end) < target {
				end++
			}
		} else {
			end = j
		}
		parts = append(parts, [2]int{start, end})
		start = end + 1
	}
	return parts
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func clampInt(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
