package statictree

import (
	"math/rand"
	"testing"

	"github.com/ksan-net/ksan/internal/workload"
)

// bruteForceOptimal enumerates every routing-based k-ary search tree on
// [1..n] and returns the minimal total distance — an independent oracle for
// the DP on tiny instances. The enumeration mirrors the DP's recursive
// structure (root + left/right forests) but evaluates real trees.
func bruteForceOptimal(d *workload.Demand, k int) int64 {
	var bestTree func(i, j int) int64
	var bestForest func(i, j, t int) int64
	sc, err := newSegmentCosts(d)
	if err != nil {
		panic(err)
	}
	memoT := map[[2]int]int64{}
	memoF := map[[3]int]int64{}
	bestTree = func(i, j int) int64 {
		if i > j {
			return 0
		}
		if v, ok := memoT[[2]int{i, j}]; ok {
			return v
		}
		best := int64(inf)
		for r := i; r <= j; r++ {
			var v int64
			switch {
			case r == i && r == j:
				v = 0
			case r == i:
				v = bestForestUpTo(bestForest, r+1, j, k-1)
			case r == j:
				v = bestForestUpTo(bestForest, i, r-1, k-1)
			default:
				v = int64(inf)
				for dl := 1; dl <= k-1; dl++ {
					lv := bestForestUpTo(bestForest, i, r-1, dl)
					rv := bestForestUpTo(bestForest, r+1, j, k-dl)
					if lv+rv < v {
						v = lv + rv
					}
				}
			}
			if v < best {
				best = v
			}
		}
		best += sc.W(i, j)
		memoT[[2]int{i, j}] = best
		return best
	}
	bestForest = func(i, j, t int) int64 {
		if i > j {
			if t == 0 {
				return 0
			}
			return inf
		}
		if t == 0 {
			return inf
		}
		if t == 1 {
			return bestTree(i, j)
		}
		if v, ok := memoF[[3]int{i, j, t}]; ok {
			return v
		}
		best := int64(inf)
		for l := i; l <= j-t+1; l++ {
			v := bestTree(i, l) + bestForest(l+1, j, t-1)
			if v < best {
				best = v
			}
		}
		memoF[[3]int{i, j, t}] = best
		return best
	}
	return bestTree(1, d.N)
}

func bestForestUpTo(f func(i, j, t int) int64, i, j, maxT int) int64 {
	best := int64(inf)
	for t := 1; t <= maxT; t++ {
		if v := f(i, j, t); v < best {
			best = v
		}
	}
	if i > j {
		return 0
	}
	return best
}

func randomDemand(n int, density float64, seed int64) *workload.Demand {
	rng := rand.New(rand.NewSource(seed))
	d := &workload.Demand{N: n}
	for u := 1; u <= n; u++ {
		for v := 1; v <= n; v++ {
			if u != v && rng.Float64() < density {
				c := int64(1 + rng.Intn(9))
				d.Pairs = append(d.Pairs, workload.PairCount{Src: u, Dst: v, Count: c})
				d.Total += c
			}
		}
	}
	return d
}

func TestSegmentCostsMatchNaive(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		d := randomDemand(12, 0.4, seed)
		sc, err := newSegmentCosts(d)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i <= 12; i++ {
			for j := i; j <= 12; j++ {
				if got, want := sc.W(i, j), naiveW(d, i, j); got != want {
					t.Fatalf("W[%d,%d]=%d want %d (seed %d)", i, j, got, want, seed)
				}
			}
		}
	}
}

func TestSegmentCostsWholeRangeZero(t *testing.T) {
	d := randomDemand(9, 0.5, 3)
	sc, _ := newSegmentCosts(d)
	if sc.W(1, 9) != 0 {
		t.Errorf("W[1,n]=%d, want 0 (no requests leave the whole id range)", sc.W(1, 9))
	}
}

func TestOptimalMatchesBruteForce(t *testing.T) {
	for _, k := range []int{2, 3, 4} {
		for _, n := range []int{2, 3, 4, 5, 6, 7} {
			for seed := int64(0); seed < 4; seed++ {
				d := randomDemand(n, 0.5, seed)
				if len(d.Pairs) == 0 {
					continue
				}
				tree, cost, err := Optimal(d, k)
				if err != nil {
					t.Fatalf("Optimal(n=%d,k=%d,seed=%d): %v", n, k, seed, err)
				}
				if err := tree.Validate(); err != nil {
					t.Fatalf("n=%d k=%d seed=%d: invalid tree: %v", n, k, seed, err)
				}
				if got := TotalDistance(tree, d); got != cost {
					t.Fatalf("n=%d k=%d seed=%d: reconstructed tree distance %d != DP cost %d",
						n, k, seed, got, cost)
				}
				if want := bruteForceOptimal(d, k); cost != want {
					t.Fatalf("n=%d k=%d seed=%d: DP cost %d != brute force %d", n, k, seed, cost, want)
				}
			}
		}
	}
}

func TestOptimalNeverWorseThanBaselines(t *testing.T) {
	for _, k := range []int{2, 3, 5} {
		for seed := int64(0); seed < 3; seed++ {
			tr := workload.Zipf(40, 3000, 1.2, seed)
			d := workload.DemandFromTrace(tr)
			opt, cost, err := Optimal(d, k)
			if err != nil {
				t.Fatal(err)
			}
			full, err := Full(40, k)
			if err != nil {
				t.Fatal(err)
			}
			if fullCost := TotalDistance(full, d); cost > fullCost {
				t.Errorf("k=%d seed=%d: optimal %d worse than full tree %d", k, seed, cost, fullCost)
			}
			cen, err := Centroid(40, k)
			if err != nil {
				t.Fatal(err)
			}
			if cenCost := TotalDistance(cen, d); cost > cenCost {
				t.Errorf("k=%d seed=%d: optimal %d worse than centroid %d", k, seed, cost, cenCost)
			}
			_ = opt
		}
	}
}

func TestOptimalImprovesWithK(t *testing.T) {
	tr := workload.Uniform(60, 4000, 1)
	d := workload.DemandFromTrace(tr)
	prev := int64(1 << 62)
	for _, k := range []int{2, 3, 5, 8} {
		_, cost, err := Optimal(d, k)
		if err != nil {
			t.Fatal(err)
		}
		if cost > prev {
			t.Errorf("k=%d optimal cost %d worse than smaller arity's %d", k, cost, prev)
		}
		prev = cost
	}
}

func TestOptimalSingleNode(t *testing.T) {
	d := &workload.Demand{N: 1}
	tree, cost, err := Optimal(d, 3)
	if err != nil {
		t.Fatal(err)
	}
	if cost != 0 || tree.N() != 1 {
		t.Errorf("single-node optimum cost=%d n=%d", cost, tree.N())
	}
}

func TestOptimalHotPairAdjacent(t *testing.T) {
	// If one pair dominates the demand, the optimal tree must place it at
	// distance 1.
	d := &workload.Demand{N: 12}
	d.Pairs = append(d.Pairs, workload.PairCount{Src: 3, Dst: 9, Count: 1000})
	for u := 1; u <= 12; u++ {
		v := u%12 + 1
		if u == 3 && v == 9 {
			continue
		}
		if u != v {
			d.Pairs = append(d.Pairs, workload.PairCount{Src: u, Dst: v, Count: 1})
		}
	}
	tree, _, err := Optimal(d, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.DistanceID(3, 9); got != 1 {
		t.Errorf("dominant pair at distance %d, want 1", got)
	}
}

func TestOptimalRejectsHugeN(t *testing.T) {
	if _, _, err := Optimal(&workload.Demand{N: 5000}, 2); err == nil {
		t.Error("Optimal must refuse n beyond the cubic-DP limit")
	}
}

func TestOptimalRejectsBadK(t *testing.T) {
	if _, _, err := Optimal(&workload.Demand{N: 5}, 1); err == nil {
		t.Error("Optimal must refuse k<2")
	}
}

func TestOptimalParallelDeterministic(t *testing.T) {
	// The parallel fill must not introduce nondeterminism in the cost.
	d := randomDemand(30, 0.3, 42)
	_, c1, err := Optimal(d, 4)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 3; trial++ {
		_, c2, err := Optimal(d, 4)
		if err != nil {
			t.Fatal(err)
		}
		if c1 != c2 {
			t.Fatalf("parallel DP nondeterministic: %d vs %d", c1, c2)
		}
	}
}

func TestWeightBalancedNearOptimal(t *testing.T) {
	// The Mehlhorn-style approximation must be valid, never beat the true
	// optimum, and stay within a modest factor of it on random demands.
	worst := 1.0
	for _, k := range []int{2, 3, 4} {
		for seed := int64(0); seed < 10; seed++ {
			n := 8 + int(seed)*3
			d := randomDemand(n, 0.35, seed)
			if len(d.Pairs) == 0 {
				continue
			}
			_, opt, err := Optimal(d, k)
			if err != nil {
				t.Fatal(err)
			}
			tree, approx, err := WeightBalanced(d, k)
			if err != nil {
				t.Fatal(err)
			}
			if err := tree.Validate(); err != nil {
				t.Fatalf("k=%d seed=%d: %v", k, seed, err)
			}
			if got := TotalDistance(tree, d); got != approx {
				t.Fatalf("k=%d seed=%d: tree distance %d != reported %d", k, seed, got, approx)
			}
			if approx < opt {
				t.Fatalf("k=%d seed=%d: approximation %d below the optimum %d", k, seed, approx, opt)
			}
			if r := float64(approx) / float64(opt); r > worst {
				worst = r
			}
		}
	}
	if worst > 2.0 {
		t.Errorf("weight-balanced approximation ratio reached %.2f, want ≤ 2 on random demands", worst)
	}
}

func TestWeightBalancedLargeInstance(t *testing.T) {
	// The approximation must handle sizes the cubic DP refuses.
	tr := workload.FacebookLike(8000, 20000, 1)
	d := workload.DemandFromTrace(tr)
	tree, cost, err := WeightBalanced(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	if cost <= 0 {
		t.Error("approximation reported non-positive cost")
	}
	full, err := Full(8000, 2)
	if err != nil {
		t.Fatal(err)
	}
	if fullCost := TotalDistance(full, d); cost > fullCost {
		t.Errorf("demand-aware approximation %d worse than the oblivious full tree %d", cost, fullCost)
	}
}

func TestWeightBalancedRejectsBadInput(t *testing.T) {
	if _, _, err := WeightBalanced(&workload.Demand{N: 4}, 1); err == nil {
		t.Error("WeightBalanced must refuse k<2")
	}
	if _, _, err := WeightBalanced(&workload.Demand{N: 0}, 2); err == nil {
		t.Error("WeightBalanced must refuse empty demand")
	}
}

func TestOptimalTreeIsRoutingBased(t *testing.T) {
	// Every node's own id must appear in its routing array (in cut space:
	// id·k among the thresholds), the defining property of routing-based
	// trees that the DP optimizes over.
	d := randomDemand(25, 0.4, 7)
	tree, _, err := Optimal(d, 3)
	if err != nil {
		t.Fatal(err)
	}
	for id := 1; id <= 25; id++ {
		nd := tree.NodeByID(id)
		if nd.IsLeaf() {
			continue // leaves' pads make the id threshold unnecessary
		}
		found := false
		for _, th := range nd.RoutingArray() {
			if th == id*tree.Scale() {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("interior node %d does not carry its own id as a routing element", id)
		}
	}
}
