package statictree

import (
	"fmt"

	"github.com/ksan-net/ksan/internal/core"
)

// Centroid builds the centroid k-ary search tree of Section 3.2 in O(n):
// a (k+1)-degree centroid tree — a center node with k+1 weakly-complete
// k-ary subtrees, all levels of the whole tree full except possibly the
// last, whose leaves are packed to the left — re-rooted at a leaf, with
// identifiers assigned in-order so the search property holds (Theorem 8,
// Remark 7). For the uniform workload its total distance is within O(n²)
// of the optimal tree (Theorem 6), and the paper observes it is exactly
// optimal for n < 10³, k ≤ 10 (Remark 10) — property tests check that
// against OptimalUniform.
func Centroid(n, k int) (*core.Tree, error) {
	if k < 2 {
		return nil, fmt.Errorf("statictree: arity %d < 2", k)
	}
	if n < 1 {
		return nil, fmt.Errorf("statictree: need at least one node")
	}
	if n <= 2 {
		return core.NewBalanced(n, k)
	}
	shape := centroidShape(n, k)
	leaf := deepestLeaf(shape, nil)
	rooted := reroot(leaf)
	spec, end := inorderSpec(rooted, 1, k)
	if end != n {
		return nil, fmt.Errorf("statictree: centroid id assignment covered %d of %d ids", end, n)
	}
	t, err := core.Build(k, spec)
	if err != nil {
		return nil, fmt.Errorf("statictree: centroid construction invalid: %w", err)
	}
	return t, nil
}

// CentroidSubtreeSizes returns the sizes of the k+1 subtrees around the
// centroid for an n-node centroid tree (exported for tests and for the
// online (k+1)-SplayNet, which reuses the same proportions).
func CentroidSubtreeSizes(n, k int) []int {
	sizes := make([]int, k+1)
	rem := n - 1
	levelCap := 1 // per-subtree capacity of the current level: k^(ℓ-1)
	for rem > 0 {
		take := rem
		if take > (k+1)*levelCap {
			take = (k + 1) * levelCap
		}
		rem -= take
		// Pack this level's nodes into the leftmost subtrees.
		for i := 0; i <= k && take > 0; i++ {
			p := take
			if p > levelCap {
				p = levelCap
			}
			sizes[i] += p
			take -= p
		}
		levelCap *= k
	}
	return sizes
}

// shapeNode is an unlabeled rooted tree used while assembling the centroid
// structure before ids exist.
type shapeNode struct {
	parent   *shapeNode
	children []*shapeNode
}

// centroidShape builds the center-rooted (k+1)-degree centroid tree shape.
func centroidShape(n, k int) *shapeNode {
	center := &shapeNode{}
	for _, size := range CentroidSubtreeSizes(n, k) {
		if size == 0 {
			continue
		}
		center.children = append(center.children, weaklyCompleteShape(size, k, center))
	}
	return center
}

// weaklyCompleteShape builds a weakly-complete k-ary tree shape on c nodes
// with the last level packed left.
func weaklyCompleteShape(c, k int, parent *shapeNode) *shapeNode {
	nd := &shapeNode{parent: parent}
	if c == 1 {
		return nd
	}
	for _, s := range core.WeaklyCompleteSizes(c-1, k) {
		if s == 0 {
			continue
		}
		nd.children = append(nd.children, weaklyCompleteShape(s, k, nd))
	}
	return nd
}

// deepestLeaf returns a leaf of maximum depth (a last-level leaf when the
// last level is partial — Definition 5 roots the tree "by a leaf").
func deepestLeaf(nd *shapeNode, best *shapeNode) *shapeNode {
	depth := func(x *shapeNode) int {
		d := 0
		for x.parent != nil {
			x = x.parent
			d++
		}
		return d
	}
	if len(nd.children) == 0 {
		if best == nil || depth(nd) > depth(best) {
			best = nd
		}
		return best
	}
	for _, ch := range nd.children {
		best = deepestLeaf(ch, best)
	}
	return best
}

// reroot turns the undirected tree into one rooted at leaf: parents along
// the path from leaf to the old root flip into children.
func reroot(leaf *shapeNode) *shapeNode {
	var prev *shapeNode
	cur := leaf
	for cur != nil {
		next := cur.parent
		if prev != nil {
			// Remove prev from cur's children; prev adopted cur already.
			kids := cur.children[:0]
			for _, ch := range cur.children {
				if ch != prev {
					kids = append(kids, ch)
				}
			}
			cur.children = kids
		}
		if next != nil {
			cur.children = append(cur.children, next)
		}
		cur.parent = prev
		prev = cur
		cur = next
	}
	return leaf
}

// inorderSpec assigns ids lo.. to the rooted shape in-order (the node's own
// id right after its first child's interval) and emits the matching
// routing-based Spec. It returns the spec and the last id used.
func inorderSpec(nd *shapeNode, lo int, k int) (*core.Spec, int) {
	if len(nd.children) == 0 {
		return &core.Spec{ID: lo}, lo
	}
	spec := &core.Spec{}
	first, end := inorderSpec(nd.children[0], lo, k)
	spec.ID = end + 1
	spec.Thresholds = append(spec.Thresholds, spec.ID)
	spec.Children = append(spec.Children, first)
	pos := spec.ID + 1
	for i := 1; i < len(nd.children); i++ {
		ch, chEnd := inorderSpec(nd.children[i], pos, k)
		spec.Children = append(spec.Children, ch)
		if i < len(nd.children)-1 {
			spec.Thresholds = append(spec.Thresholds, chEnd)
		}
		pos = chEnd + 1
		end = chEnd
	}
	if len(nd.children) == 1 {
		spec.Children = append(spec.Children, nil)
		end = spec.ID
	}
	return spec, maxInt(end, spec.ID)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
