package statictree

import (
	"fmt"

	"github.com/ksan-net/ksan/internal/core"
)

// Full builds the weakly-complete (full) k-ary search tree on n nodes, the
// demand-oblivious static baseline of the paper's evaluation (Lemma 9
// shows its uniform total distance is n²·log_k n + O(n²)).
func Full(n, k int) (*core.Tree, error) {
	t, err := core.NewBalanced(n, k)
	if err != nil {
		return nil, fmt.Errorf("statictree: %w", err)
	}
	return t, nil
}
