package statictree

import (
	"github.com/ksan-net/ksan/internal/core"
	"github.com/ksan-net/ksan/internal/workload"
)

// TotalDistance evaluates the paper's objective for a static topology:
// Σ d_T(u,v)·D[u,v], iterating the demand's distinct pairs (O(pairs·depth)).
func TotalDistance(t *core.Tree, d *workload.Demand) int64 {
	var total int64
	for _, pc := range d.Pairs {
		total += int64(t.DistanceID(pc.Src, pc.Dst)) * pc.Count
	}
	return total
}

// TotalDistanceUniform evaluates Σ_{u<v} d_T(u,v) in O(n) via edge
// potentials (each edge splitting the tree into s and n−s nodes carries
// s·(n−s) uniform pairs).
func TotalDistanceUniform(t *core.Tree) int64 {
	return t.TotalPairDistanceUniform()
}
