package statictree

import (
	"sync"

	"github.com/ksan-net/ksan/internal/core"
	"github.com/ksan-net/ksan/internal/sim"
)

// Net wraps a static topology as a sim.Network: requests are routed along
// the (fixed) tree path and no adjustment ever happens, so the adjustment
// cost is always zero. It also implements sim.BatchServer, evaluating
// request slices against a lazily built constant-time distance oracle; the
// wrapped tree must not be mutated after the first Serve/ServeBatch call.
type Net struct {
	name string
	t    *core.Tree

	once sync.Once
	ix   *DistIndex
}

// NewNet wraps tree as a static network labelled name.
func NewNet(name string, t *core.Tree) *Net {
	return &Net{name: name, t: t}
}

// Name implements sim.Network.
func (s *Net) Name() string { return s.name }

// N implements sim.Network.
func (s *Net) N() int { return s.t.N() }

// Tree returns the wrapped topology.
func (s *Net) Tree() *core.Tree { return s.t }

// Serve implements sim.Network: routing cost only.
func (s *Net) Serve(u, v int) sim.Cost {
	return sim.Cost{Routing: int64(s.t.DistanceID(u, v))}
}

// index returns the distance oracle, building it on first use.
func (s *Net) index() *DistIndex {
	s.once.Do(func() { s.ix = NewDistIndex(s.t) })
	return s.ix
}

// StaticOracle is the shard-safe serving hook (internal/serve): a static
// net is always frozen, so it unconditionally exposes its distance oracle
// for lock-free concurrent queries, building it on first use.
func (s *Net) StaticOracle() (*DistIndex, bool) { return s.index(), true }

// ServeBatch implements sim.BatchServer. The topology is immutable, so
// disjoint shards of a trace may be evaluated by concurrent ServeBatch
// calls; each query hits the O(1) Euler-tour/RMQ oracle rather than walking
// parent pointers, which is what makes batch evaluation fast even before
// any sharding.
func (s *Net) ServeBatch(reqs []sim.Request) sim.BatchCost {
	return s.index().ServeBatch(reqs)
}
