package statictree

import (
	"github.com/ksan-net/ksan/internal/core"
	"github.com/ksan-net/ksan/internal/sim"
)

// Net wraps a static topology as a sim.Network: requests are routed along
// the (fixed) tree path and no adjustment ever happens, so the adjustment
// cost is always zero.
type Net struct {
	name string
	t    *core.Tree
}

// NewNet wraps tree as a static network labelled name.
func NewNet(name string, t *core.Tree) *Net {
	return &Net{name: name, t: t}
}

// Name implements sim.Network.
func (s *Net) Name() string { return s.name }

// N implements sim.Network.
func (s *Net) N() int { return s.t.N() }

// Tree returns the wrapped topology.
func (s *Net) Tree() *core.Tree { return s.t }

// Serve implements sim.Network: routing cost only.
func (s *Net) Serve(u, v int) sim.Cost {
	return sim.Cost{Routing: int64(s.t.DistanceID(u, v))}
}
