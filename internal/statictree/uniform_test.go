package statictree

import (
	"math"
	"testing"

	"github.com/ksan-net/ksan/internal/workload"
)

func TestOptimalUniformMatchesGenericDP(t *testing.T) {
	// On the uniform demand, the shape-based O(n²k) DP must never exceed the
	// routing-based O(n³k) DP (it optimizes over a superset of trees), and
	// both reconstructions must report their true total distance.
	for _, k := range []int{2, 3, 4, 6} {
		for _, n := range []int{2, 3, 5, 9, 14, 20} {
			d := workload.UniformDemand(n)
			gTree, gCost, err := Optimal(d, k)
			if err != nil {
				t.Fatal(err)
			}
			uTree, uCost, err := OptimalUniform(n, k)
			if err != nil {
				t.Fatal(err)
			}
			if err := uTree.Validate(); err != nil {
				t.Fatalf("n=%d k=%d: %v", n, k, err)
			}
			if got := TotalDistanceUniform(uTree); got != uCost {
				t.Fatalf("n=%d k=%d: uniform tree distance %d != DP cost %d", n, k, got, uCost)
			}
			if got := TotalDistanceUniform(gTree); got != gCost {
				t.Fatalf("n=%d k=%d: generic tree distance %d != DP cost %d", n, k, got, gCost)
			}
			if uCost > gCost {
				t.Errorf("n=%d k=%d: shape DP %d worse than routing-based DP %d", n, k, uCost, gCost)
			}
		}
	}
}

func TestOptimalUniformSmallClosedForms(t *testing.T) {
	// n=2: single edge, one pair at distance 1.
	_, c, err := OptimalUniform(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c != 1 {
		t.Errorf("n=2 uniform optimum %d, want 1", c)
	}
	// n=3, k=2: the best BST is a root with two children: pairs (1,2),(2,3)
	// at distance 1 and (1,3) at distance 2 → 4.
	_, c, err = OptimalUniform(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c != 4 {
		t.Errorf("n=3 uniform optimum %d, want 4", c)
	}
	// n=4, k=3: a star around the root: 3 pairs at distance 1, 3 at 2 → 9.
	_, c, err = OptimalUniform(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if c != 9 {
		t.Errorf("n=4 k=3 uniform optimum %d, want 9", c)
	}
}

func TestOptimalUniformBeatsFullTree(t *testing.T) {
	for _, k := range []int{2, 3, 5} {
		for _, n := range []int{50, 100, 200} {
			_, opt, err := OptimalUniform(n, k)
			if err != nil {
				t.Fatal(err)
			}
			full, err := Full(n, k)
			if err != nil {
				t.Fatal(err)
			}
			if fc := TotalDistanceUniform(full); opt > fc {
				t.Errorf("n=%d k=%d: uniform optimum %d worse than full tree %d", n, k, opt, fc)
			}
		}
	}
}

func TestCentroidMatchesUniformOptimum(t *testing.T) {
	// Remark 10 / Remark 37: the centroid k-ary search tree is observed to
	// be exactly optimal for the uniform workload for all n < 10³, k ≤ 10.
	// Check a grid of sizes including every n ≤ 64.
	ns := []int{}
	for n := 1; n <= 64; n++ {
		ns = append(ns, n)
	}
	ns = append(ns, 100, 127, 128, 200, 255, 341, 500, 729, 999)
	for _, k := range []int{2, 3, 4, 5, 7, 10} {
		_, err := Centroid(2, k)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range ns {
			cen, err := Centroid(n, k)
			if err != nil {
				t.Fatalf("Centroid(%d,%d): %v", n, k, err)
			}
			if err := cen.Validate(); err != nil {
				t.Fatalf("Centroid(%d,%d) invalid: %v", n, k, err)
			}
			_, opt, err := OptimalUniform(n, k)
			if err != nil {
				t.Fatal(err)
			}
			if got := TotalDistanceUniform(cen); got != opt {
				t.Errorf("n=%d k=%d: centroid total distance %d != uniform optimum %d (Remark 10)",
					n, k, got, opt)
			}
		}
	}
}

func TestCentroidSubtreeSizes(t *testing.T) {
	// Sizes must sum to n-1, be weakly decreasing, and stay within one
	// last-level unit of each other when all levels but the last are full.
	for _, k := range []int{2, 3, 5, 10} {
		for _, n := range []int{3, 10, 50, 100, 1000} {
			sizes := CentroidSubtreeSizes(n, k)
			if len(sizes) != k+1 {
				t.Fatalf("n=%d k=%d: %d subtrees, want %d", n, k, len(sizes), k+1)
			}
			sum := 0
			for i, s := range sizes {
				sum += s
				if i > 0 && s > sizes[i-1] {
					t.Fatalf("n=%d k=%d: sizes %v not left-packed", n, k, sizes)
				}
			}
			if sum != n-1 {
				t.Fatalf("n=%d k=%d: sizes %v sum to %d, want %d", n, k, sizes, sum, n-1)
			}
		}
	}
}

func TestCentroidFullCase(t *testing.T) {
	// n = 1 + (k+1)·(k^h−1)/(k−1) gives a perfectly full centroid tree; all
	// subtrees must then be equal.
	k := 3
	n := 1 + 4*(1+3+9) // h=3 levels per subtree
	sizes := CentroidSubtreeSizes(n, k)
	for _, s := range sizes {
		if s != 13 {
			t.Fatalf("full centroid subtree sizes %v, want all 13", sizes)
		}
	}
}

func TestLemma9TotalDistanceScaling(t *testing.T) {
	// Lemma 9/36: both the full k-ary tree and the centroid tree have total
	// distance n²·log_k n + O(n²). Check the normalized ratio approaches a
	// constant near 1 as n grows.
	for _, k := range []int{2, 3, 5} {
		for _, n := range []int{512, 1024, 2048} {
			full, err := Full(n, k)
			if err != nil {
				t.Fatal(err)
			}
			cen, err := Centroid(n, k)
			if err != nil {
				t.Fatal(err)
			}
			logK := logBase(float64(n), float64(k))
			for name, tree := range map[string]int64{
				"full":     TotalDistanceUniform(full),
				"centroid": TotalDistanceUniform(cen),
			} {
				ratio := float64(tree) / (float64(n) * float64(n) * logK)
				// n² log_k n + O(n²): the O(n²) slack divided by n² log_k n
				// is O(1/log n), so the ratio must sit near 1.
				if ratio < 0.5 || ratio > 1.5 {
					t.Errorf("k=%d n=%d %s: total distance ratio %.3f far from 1", k, n, name, ratio)
				}
			}
		}
	}
}

func logBase(x, b float64) float64 {
	return math.Log(x) / math.Log(b)
}
