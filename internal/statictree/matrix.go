package statictree

import (
	"fmt"

	"github.com/ksan-net/ksan/internal/workload"
)

// tri indexes the upper triangle {(i,j) : 1 ≤ i ≤ j ≤ n} of an n×n matrix
// into a dense row-major slice of n(n+1)/2 entries. The DP tables and the
// boundary-traffic matrix only ever address i ≤ j, so the triangular layout
// halves their footprint versus the square [][]int64 it replaces and keeps
// each row contiguous (the hot loops walk j at fixed i).
type tri struct {
	n   int
	off []int32 // off[i] = flat index of (i,i); off[n+1] = n(n+1)/2
}

func newTri(n int) tri {
	off := make([]int32, n+2)
	for i := 1; i <= n+1; i++ {
		off[i] = off[i-1] + int32(n-i+2)
	}
	// off[0] is unused padding so rows are 1-based like node ids; shift so
	// off[1] = 0.
	base := off[1]
	for i := range off {
		off[i] -= base
	}
	return tri{n: n, off: off}
}

// at maps (i,j), 1 ≤ i ≤ j ≤ n, to its flat index.
func (t tri) at(i, j int) int {
	return int(t.off[i]) + (j - i)
}

// size is the number of stored entries, n(n+1)/2.
func (t tri) size() int {
	return int(t.off[t.n+1])
}

// segmentCosts precomputes, for a demand on n nodes, the boundary-traffic
// matrix W of the paper's dynamic program: W[i][j] is the number of
// requests with exactly one endpoint inside the id segment [i,j]. The
// paper's proof computes W in O(n³) (Claim 16); two-dimensional prefix
// sums bring this to O(n²), which tests cross-check against the naive
// definition. The matrix is immutable once built and shared by every
// arity a Solver answers, so it is computed once per demand.
type segmentCosts struct {
	t tri
	w []int64 // w[t.at(i,j)] for 1 ≤ i ≤ j ≤ n
}

func newSegmentCosts(d *workload.Demand) (*segmentCosts, error) {
	n := d.N
	if n < 1 {
		return nil, fmt.Errorf("statictree: empty demand")
	}
	// p[i*(n+1)+j] = Σ D[u][v] for u ≤ i, v ≤ j (1-based; row/col 0 zero).
	stride := n + 1
	p := make([]int64, stride*stride)
	for _, pc := range d.Pairs {
		p[pc.Src*stride+pc.Dst] += pc.Count
	}
	for i := 1; i <= n; i++ {
		row, prev := p[i*stride:(i+1)*stride], p[(i-1)*stride:i*stride]
		for j := 1; j <= n; j++ {
			row[j] += prev[j] + row[j-1] - prev[j-1]
		}
	}
	rect := func(u1, u2, v1, v2 int) int64 {
		if u1 > u2 || v1 > v2 {
			return 0
		}
		return p[u2*stride+v2] - p[(u1-1)*stride+v2] - p[u2*stride+v1-1] + p[(u1-1)*stride+v1-1]
	}
	sc := &segmentCosts{t: newTri(n)}
	sc.w = make([]int64, sc.t.size())
	for i := 1; i <= n; i++ {
		row := sc.w[sc.t.at(i, i):]
		for j := i; j <= n; j++ {
			row[j-i] = rect(i, j, 1, n) + rect(1, n, i, j) - 2*rect(i, j, i, j)
		}
	}
	return sc, nil
}

// W returns the boundary traffic of segment [i,j]; zero for empty segments.
func (sc *segmentCosts) W(i, j int) int64 {
	if i > j {
		return 0
	}
	return sc.w[sc.t.at(i, j)]
}

// naiveW computes W[i][j] straight from the definition, for tests.
func naiveW(d *workload.Demand, i, j int) int64 {
	var w int64
	for _, pc := range d.Pairs {
		inU := pc.Src >= i && pc.Src <= j
		inV := pc.Dst >= i && pc.Dst <= j
		if inU != inV {
			w += pc.Count
		}
	}
	return w
}
