package statictree

import (
	"fmt"

	"github.com/ksan-net/ksan/internal/workload"
)

// segmentCosts precomputes, for a demand on n nodes, the boundary-traffic
// matrix W of the paper's dynamic program: W[i][j] is the number of
// requests with exactly one endpoint inside the id segment [i,j]. The
// paper's proof computes W in O(n³) (Claim 16); two-dimensional prefix
// sums bring this to O(n²), which tests cross-check against the naive
// definition.
type segmentCosts struct {
	n int
	w [][]int64 // w[i][j] for 1 ≤ i ≤ j ≤ n; i,j 1-based
}

func newSegmentCosts(d *workload.Demand) (*segmentCosts, error) {
	n := d.N
	if n < 1 {
		return nil, fmt.Errorf("statictree: empty demand")
	}
	// p[i][j] = Σ D[u][v] for u ≤ i, v ≤ j (1-based, p[0][*]=p[*][0]=0).
	p := make([][]int64, n+1)
	for i := range p {
		p[i] = make([]int64, n+1)
	}
	for _, pc := range d.Pairs {
		p[pc.Src][pc.Dst] += pc.Count
	}
	for i := 1; i <= n; i++ {
		for j := 1; j <= n; j++ {
			p[i][j] += p[i-1][j] + p[i][j-1] - p[i-1][j-1]
		}
	}
	rect := func(u1, u2, v1, v2 int) int64 {
		if u1 > u2 || v1 > v2 {
			return 0
		}
		return p[u2][v2] - p[u1-1][v2] - p[u2][v1-1] + p[u1-1][v1-1]
	}
	sc := &segmentCosts{n: n, w: make([][]int64, n+1)}
	for i := 1; i <= n; i++ {
		sc.w[i] = make([]int64, n+1)
		for j := i; j <= n; j++ {
			out := rect(i, j, 1, n) + rect(1, n, i, j) - 2*rect(i, j, i, j)
			sc.w[i][j] = out
		}
	}
	return sc, nil
}

// W returns the boundary traffic of segment [i,j]; zero for empty segments.
func (sc *segmentCosts) W(i, j int) int64 {
	if i > j {
		return 0
	}
	return sc.w[i][j]
}

// naiveW computes W[i][j] straight from the definition, for tests.
func naiveW(d *workload.Demand, i, j int) int64 {
	var w int64
	for _, pc := range d.Pairs {
		inU := pc.Src >= i && pc.Src <= j
		inV := pc.Dst >= i && pc.Dst <= j
		if inU != inV {
			w += pc.Count
		}
	}
	return w
}
