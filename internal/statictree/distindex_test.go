package statictree

import (
	"testing"

	"github.com/ksan-net/ksan/internal/core"
	"github.com/ksan-net/ksan/internal/sim"
	"github.com/ksan-net/ksan/internal/workload"
)

// TestDistIndexMatchesTreeDistance checks the Euler-tour/RMQ oracle
// against the pointer-walking reference on every node pair of assorted
// topologies, including the degenerate path.
func TestDistIndexMatchesTreeDistance(t *testing.T) {
	for _, cfg := range []struct {
		n, k int
	}{{1, 2}, {2, 3}, {17, 2}, {40, 3}, {63, 5}, {100, 10}} {
		trees := map[string]*core.Tree{}
		tr, err := core.NewBalanced(cfg.n, cfg.k)
		if err != nil {
			t.Fatal(err)
		}
		trees["balanced"] = tr
		if rnd, err := core.NewRandom(cfg.n, cfg.k, int64(cfg.n)); err == nil {
			trees["random"] = rnd
		}
		if p, err := core.NewPath(cfg.n, cfg.k); err == nil {
			trees["path"] = p
		}
		for name, tr := range trees {
			ix := NewDistIndex(tr)
			for u := 1; u <= tr.N(); u++ {
				for v := 1; v <= tr.N(); v++ {
					if got, want := ix.Dist(u, v), int64(tr.DistanceID(u, v)); got != want {
						t.Fatalf("%s n=%d k=%d: dist(%d,%d)=%d, tree says %d", name, cfg.n, cfg.k, u, v, got, want)
					}
				}
			}
		}
	}
}

// TestServeBatchMatchesServe checks totals and histogram of the batch path
// against per-request serving.
func TestServeBatchMatchesServe(t *testing.T) {
	tr, err := Centroid(77, 3)
	if err != nil {
		t.Fatal(err)
	}
	net := NewNet("centroid", tr)
	reqs := workload.Uniform(77, 10_000, 5).Reqs
	bc := net.ServeBatch(reqs)
	var routing int64
	hist := map[int64]int64{}
	for _, rq := range reqs {
		c := net.Serve(rq.Src, rq.Dst)
		routing += c.Routing
		hist[c.Routing]++
	}
	if bc.Routing != routing || bc.Adjust != 0 {
		t.Fatalf("batch %d/%d, serve %d/0", bc.Routing, bc.Adjust, routing)
	}
	for c, n := range hist {
		if got := bc.Hist.BucketCount(c); got != n {
			t.Errorf("hist[%d]=%d, serve path says %d", c, got, n)
		}
	}
	if bc.Hist.Count() != int64(len(reqs)) {
		t.Errorf("hist count %d, want %d", bc.Hist.Count(), len(reqs))
	}
	var _ sim.BatchServer = net // the static net must satisfy the batch surface
}
