package statictree

import (
	"testing"

	"github.com/ksan-net/ksan/internal/sim"
	"github.com/ksan-net/ksan/internal/workload"
)

func TestNetServesDistances(t *testing.T) {
	tree, err := Full(31, 2)
	if err != nil {
		t.Fatal(err)
	}
	net := NewNet("full-31", tree)
	if net.Name() != "full-31" || net.N() != 31 {
		t.Errorf("metadata wrong: %q %d", net.Name(), net.N())
	}
	c := net.Serve(1, 31)
	if c.Routing != int64(tree.DistanceID(1, 31)) {
		t.Errorf("routing %d != distance %d", c.Routing, tree.DistanceID(1, 31))
	}
	if c.Adjust != 0 {
		t.Error("static net adjusted")
	}
	if net.Tree() != tree {
		t.Error("Tree() must return the wrapped topology")
	}
}

func TestNetTopologyNeverChanges(t *testing.T) {
	tree, err := Centroid(40, 3)
	if err != nil {
		t.Fatal(err)
	}
	before := tree.Parents()
	net := NewNet("centroid", tree)
	tr := workload.Zipf(40, 3000, 1.3, 1)
	sim.Run(net, tr.Reqs)
	after := tree.Parents()
	for id := range before {
		if before[id] != after[id] {
			t.Fatalf("static topology changed at node %d", id)
		}
	}
}

func TestFullTreeDistanceFormula(t *testing.T) {
	// Lemma 9 inner check at exact full sizes: a full k-ary tree of n =
	// (k^h−1)/(k−1) nodes has height h−1.
	cases := []struct{ n, k, h int }{
		{7, 2, 2}, {15, 2, 3}, {13, 3, 2}, {40, 3, 3}, {21, 4, 2}, {31, 5, 2},
	}
	for _, c := range cases {
		tree, err := Full(c.n, c.k)
		if err != nil {
			t.Fatal(err)
		}
		if got := tree.Height(); got != c.h {
			t.Errorf("full(%d,%d) height %d, want %d", c.n, c.k, got, c.h)
		}
	}
}

func TestTotalDistanceSparseMatchesUniform(t *testing.T) {
	// TotalDistance on the uniform demand must equal the O(n) edge-potential
	// evaluation.
	for _, k := range []int{2, 4} {
		tree, err := Centroid(33, k)
		if err != nil {
			t.Fatal(err)
		}
		sparse := TotalDistance(tree, workload.UniformDemand(33))
		fast := TotalDistanceUniform(tree)
		if sparse != fast {
			t.Errorf("k=%d: sparse %d != potential %d", k, sparse, fast)
		}
	}
}

func TestCentroidDegreeBound(t *testing.T) {
	// Every node of the centroid k-ary search tree respects the (k+1)
	// physical degree bound, with the re-rooted centroid hitting exactly
	// k+1 (k children + parent).
	for _, k := range []int{2, 3, 5} {
		tree, err := Centroid(120, k)
		if err != nil {
			t.Fatal(err)
		}
		maxDeg := 0
		for id := 1; id <= 120; id++ {
			if d := tree.NodeByID(id).Degree(); d > maxDeg {
				maxDeg = d
			}
		}
		if maxDeg > k+1 {
			t.Errorf("k=%d: max degree %d exceeds k+1", k, maxDeg)
		}
		if maxDeg != k+1 {
			t.Errorf("k=%d: centroid hub missing (max degree %d, want k+1)", k, maxDeg)
		}
	}
}

func TestWeightBalancedDeterministic(t *testing.T) {
	d := workload.DemandFromTrace(workload.Zipf(50, 4000, 1.2, 9))
	_, c1, err := WeightBalanced(d, 3)
	if err != nil {
		t.Fatal(err)
	}
	_, c2, err := WeightBalanced(d, 3)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Errorf("weight-balanced not deterministic: %d vs %d", c1, c2)
	}
}
