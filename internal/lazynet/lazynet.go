// Package lazynet implements the partially reactive meta-algorithm the
// paper describes in its introduction (after Feder et al.'s lazy
// self-adjusting networks [13]): instead of adjusting after every request,
// the network stays static until the routing cost accumulated since the
// last reconfiguration reaches a threshold α; it then recomputes a
// demand-aware topology from the traffic observed in the meanwhile and
// swaps it in, paying the model's raw reconfiguration cost (the number of
// links added plus removed).
//
// The rebuild subroutine is pluggable: the weight-balanced approximation
// by default (fast enough to rebuild often), or the exact DP for small
// networks. This generalizes the paper's "compute the new topology using
// SplayNet" scheme to arbitrary static builders and provides the
// reactive-vs-lazy comparison in the experiment suite.
package lazynet

import (
	"fmt"

	"github.com/ksan-net/ksan/internal/core"
	"github.com/ksan-net/ksan/internal/sim"
	"github.com/ksan-net/ksan/internal/statictree"
	"github.com/ksan-net/ksan/internal/workload"
)

// Builder computes a static demand-aware topology for a demand window.
type Builder func(d *workload.Demand, k int) (*core.Tree, int64, error)

// Net is a lazily self-adjusting k-ary search tree network.
type Net struct {
	n, k    int
	alpha   int64
	t       *core.Tree
	builder Builder

	sinceRebuild int64
	window       []sim.Request
	rebuilds     int64
	churn        int64
}

// New constructs a lazy network with threshold alpha and the
// weight-balanced rebuild subroutine. The initial topology is the full
// k-ary tree.
func New(n, k int, alpha int64) (*Net, error) {
	if alpha <= 0 {
		return nil, fmt.Errorf("lazynet: threshold must be positive, got %d", alpha)
	}
	t, err := core.NewBalanced(n, k)
	if err != nil {
		return nil, fmt.Errorf("lazynet: %w", err)
	}
	return &Net{n: n, k: k, alpha: alpha, t: t, builder: statictree.WeightBalanced}, nil
}

// MustNew is New for known-good parameters.
func MustNew(n, k int, alpha int64) *Net {
	net, err := New(n, k, alpha)
	if err != nil {
		panic(err)
	}
	return net
}

// SetBuilder replaces the rebuild subroutine (e.g. statictree.Optimal for
// small n).
func (net *Net) SetBuilder(b Builder) { net.builder = b }

// Name implements sim.Network.
func (net *Net) Name() string { return fmt.Sprintf("lazy %d-ary net (α=%d)", net.k, net.alpha) }

// N implements sim.Network.
func (net *Net) N() int { return net.n }

// Rebuilds returns how many reconfigurations have happened.
func (net *Net) Rebuilds() int64 { return net.rebuilds }

// LinkChurn returns the cumulative number of links added plus removed by
// reconfigurations, implementing the engine's ChurnReporter extension. The
// topology object is replaced wholesale on every rebuild, so the engine
// cannot read churn off a stable tree; the network accounts it itself.
func (net *Net) LinkChurn() int64 { return net.churn }

// Tree exposes the current topology.
func (net *Net) Tree() *core.Tree { return net.t }

// Serve implements sim.Network: requests route on the current static
// topology; once the accumulated routing cost crosses α, the window's
// demand is solved into a fresh topology and the link churn of the swap is
// charged as adjustment cost.
func (net *Net) Serve(u, v int) sim.Cost {
	dist := int64(net.t.DistanceID(u, v))
	cost := sim.Cost{Routing: dist}
	net.sinceRebuild += dist
	if u != v {
		net.window = append(net.window, sim.Request{Src: u, Dst: v})
	}
	if net.sinceRebuild >= net.alpha && len(net.window) > 0 {
		cost.Adjust = net.rebuild()
	}
	return cost
}

func (net *Net) rebuild() int64 {
	d := workload.DemandFromTrace(workload.Trace{N: net.n, Reqs: net.window})
	fresh, _, err := net.builder(d, net.k)
	if err != nil {
		// A failing builder leaves the topology unchanged; this cannot
		// happen with the stock builders on valid input.
		net.sinceRebuild = 0
		net.window = net.window[:0]
		return 0
	}
	churn := linkChurn(net.t, fresh)
	net.t = fresh
	net.sinceRebuild = 0
	net.window = net.window[:0]
	net.rebuilds++
	net.churn += churn
	return churn
}

// linkChurn counts links added plus removed between two topologies on the
// same node set (the model's reconfiguration cost).
func linkChurn(old, fresh *core.Tree) int64 {
	op := old.Parents()
	np := fresh.Parents()
	undirected := func(a, b int) [2]int {
		if a > b {
			a, b = b, a
		}
		return [2]int{a, b}
	}
	oldSet := make(map[[2]int]bool, len(op))
	for id := 1; id < len(op); id++ {
		if op[id] != 0 {
			oldSet[undirected(id, op[id])] = true
		}
	}
	var churn int64
	for id := 1; id < len(np); id++ {
		if np[id] == 0 {
			continue
		}
		e := undirected(id, np[id])
		if oldSet[e] {
			delete(oldSet, e)
		} else {
			churn++ // added
		}
	}
	churn += int64(len(oldSet)) // removed
	return churn
}
