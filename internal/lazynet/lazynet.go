// Package lazynet implements the partially reactive meta-algorithm the
// paper describes in its introduction (after Feder et al.'s lazy
// self-adjusting networks [13]): instead of adjusting after every request,
// the network stays static until the routing cost accumulated since the
// last reconfiguration reaches a threshold α; it then recomputes a
// demand-aware topology from the traffic observed in the meanwhile and
// swaps it in, paying the model's raw reconfiguration cost (the number of
// links added plus removed).
//
// Since the policy refactor the lazy network is the canonical composition
//
//	balanced k-ary tree × (policy.Alpha(α), policy.Rebuild(weight-balanced))
//
// and Net is internal/policy's Net: the α-threshold is a Trigger, the
// demand-aware recomputation is an Adjuster, and variations — the exact
// DP builder, hysteresis, periodic instead of cost-triggered rebuilds —
// are other compositions over the same substrate rather than setters on
// this type (the former SetBuilder is gone; compose policy.Rebuild with
// statictree.Optimal instead). Failed rebuilds no longer vanish: the
// policy net counts them (FailedRebuilds) and keeps the last error
// (LastFailure), while the topology stays unchanged.
package lazynet

import (
	"fmt"

	"github.com/ksan-net/ksan/internal/core"
	"github.com/ksan-net/ksan/internal/policy"
	"github.com/ksan-net/ksan/internal/statictree"
)

// Builder computes a static demand-aware topology for a demand window.
type Builder = policy.Builder

// Net is a lazily self-adjusting k-ary search tree network.
type Net = policy.Net

// New constructs a lazy network with threshold alpha and the
// weight-balanced rebuild subroutine. The initial topology is the full
// k-ary tree.
func New(n, k int, alpha int64) (*Net, error) {
	if alpha <= 0 {
		return nil, fmt.Errorf("lazynet: threshold must be positive, got %d", alpha)
	}
	t, err := core.NewBalanced(n, k)
	if err != nil {
		return nil, fmt.Errorf("lazynet: %w", err)
	}
	net, err := policy.New(fmt.Sprintf("lazy %d-ary net (α=%d)", k, alpha), t,
		policy.Alpha(alpha), policy.Rebuild("weight-balanced", statictree.WeightBalanced))
	if err != nil {
		return nil, fmt.Errorf("lazynet: %w", err)
	}
	return net, nil
}

// MustNew is New for known-good parameters.
func MustNew(n, k int, alpha int64) *Net {
	net, err := New(n, k, alpha)
	if err != nil {
		panic(err)
	}
	return net
}
