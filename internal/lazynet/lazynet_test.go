package lazynet

import (
	"testing"

	"github.com/ksan-net/ksan/internal/core"
	"github.com/ksan-net/ksan/internal/policy"
	"github.com/ksan-net/ksan/internal/sim"
	"github.com/ksan-net/ksan/internal/statictree"
	"github.com/ksan-net/ksan/internal/workload"
)

func TestNewRejectsBadParams(t *testing.T) {
	if _, err := New(10, 3, 0); err == nil {
		t.Error("alpha=0 accepted")
	}
	if _, err := New(0, 3, 10); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestNoRebuildBelowThreshold(t *testing.T) {
	net := MustNew(50, 3, 1<<40)
	tr := workload.Uniform(50, 2000, 1)
	res := sim.Run(net, tr.Reqs)
	if net.Rebuilds() != 0 {
		t.Errorf("rebuilt %d times below threshold", net.Rebuilds())
	}
	if res.Adjust != 0 {
		t.Errorf("adjustment cost %d without rebuilds", res.Adjust)
	}
}

func TestRebuildTriggersAtThreshold(t *testing.T) {
	net := MustNew(50, 3, 500)
	tr := workload.Zipf(50, 5000, 1.3, 2)
	res := sim.Run(net, tr.Reqs)
	if net.Rebuilds() == 0 {
		t.Error("never rebuilt despite a low threshold")
	}
	if res.Adjust == 0 {
		t.Error("rebuilds must charge link churn")
	}
	if err := net.Tree().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRebuildAdaptsToSkew(t *testing.T) {
	// After rebuilds driven by a skewed demand, the hot pair must sit close.
	net := MustNew(60, 2, 2000)
	reqs := make([]sim.Request, 4000)
	for i := range reqs {
		if i%4 == 0 {
			reqs[i] = sim.Request{Src: 7, Dst: 55}
		} else {
			reqs[i] = sim.Request{Src: 1 + i%60, Dst: 1 + (i*13)%60}
			if reqs[i].Src == reqs[i].Dst {
				reqs[i].Dst = 1 + reqs[i].Dst%60
			}
		}
	}
	sim.Run(net, reqs)
	if net.Rebuilds() == 0 {
		t.Fatal("expected rebuilds")
	}
	// The weight-balanced rebuild is an approximation, so require the hot
	// pair to sit strictly closer than in the oblivious full tree rather
	// than exactly adjacent.
	full, err := statictree.Full(60, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got, obl := net.Tree().DistanceID(7, 55), full.DistanceID(7, 55); got >= obl {
		t.Errorf("hot pair at distance %d after rebuilds, oblivious tree has %d", got, obl)
	}
}

func TestLazyBeatsStaticUnderDrift(t *testing.T) {
	// A workload whose hot set drifts over time: the lazy net re-optimizes
	// per epoch and must beat the one-shot oblivious tree on routing cost.
	n := 64
	var reqs []sim.Request
	for epoch := 0; epoch < 8; epoch++ {
		base := 1 + epoch*7
		for i := 0; i < 3000; i++ {
			u := 1 + (base+i%4)%n
			v := 1 + (base+3+(i*7)%5)%n
			if u == v {
				v = 1 + v%n
			}
			reqs = append(reqs, sim.Request{Src: u, Dst: v})
		}
	}
	lazy := MustNew(n, 2, 4000)
	lres := sim.Run(lazy, reqs)
	full, err := statictree.Full(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	fres := sim.Run(statictree.NewNet("full", full), reqs)
	if lres.Routing >= fres.Routing {
		t.Errorf("lazy routing %d not below static full tree %d under drift", lres.Routing, fres.Routing)
	}
}

func TestExactBuilderForSmallNetworks(t *testing.T) {
	// The former SetBuilder escape hatch is now a composition: the same
	// α-trigger with the exact-DP rebuild adjuster.
	tree, err := core.NewBalanced(24, 3)
	if err != nil {
		t.Fatal(err)
	}
	net, err := policy.New("lazy exact", tree, policy.Alpha(300),
		policy.Rebuild("optimal", statictree.Optimal))
	if err != nil {
		t.Fatal(err)
	}
	tr := workload.ProjecToRLike(24, 3000, 3)
	sim.Run(net, tr.Reqs)
	if net.Rebuilds() == 0 {
		t.Fatal("expected rebuilds with the exact builder")
	}
	if err := net.Tree().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestName(t *testing.T) {
	if got := MustNew(10, 4, 100).Name(); got != "lazy 4-ary net (α=100)" {
		t.Errorf("Name()=%q", got)
	}
}
