package lazynet

import (
	"testing"

	"github.com/ksan-net/ksan/internal/core"
	"github.com/ksan-net/ksan/internal/sim"
	"github.com/ksan-net/ksan/internal/statictree"
	"github.com/ksan-net/ksan/internal/workload"
)

func TestNewRejectsBadParams(t *testing.T) {
	if _, err := New(10, 3, 0); err == nil {
		t.Error("alpha=0 accepted")
	}
	if _, err := New(0, 3, 10); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestNoRebuildBelowThreshold(t *testing.T) {
	net := MustNew(50, 3, 1<<40)
	tr := workload.Uniform(50, 2000, 1)
	res := sim.Run(net, tr.Reqs)
	if net.Rebuilds() != 0 {
		t.Errorf("rebuilt %d times below threshold", net.Rebuilds())
	}
	if res.Adjust != 0 {
		t.Errorf("adjustment cost %d without rebuilds", res.Adjust)
	}
}

func TestRebuildTriggersAtThreshold(t *testing.T) {
	net := MustNew(50, 3, 500)
	tr := workload.Zipf(50, 5000, 1.3, 2)
	res := sim.Run(net, tr.Reqs)
	if net.Rebuilds() == 0 {
		t.Error("never rebuilt despite a low threshold")
	}
	if res.Adjust == 0 {
		t.Error("rebuilds must charge link churn")
	}
	if err := net.Tree().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRebuildAdaptsToSkew(t *testing.T) {
	// After rebuilds driven by a skewed demand, the hot pair must sit close.
	net := MustNew(60, 2, 2000)
	reqs := make([]sim.Request, 4000)
	for i := range reqs {
		if i%4 == 0 {
			reqs[i] = sim.Request{Src: 7, Dst: 55}
		} else {
			reqs[i] = sim.Request{Src: 1 + i%60, Dst: 1 + (i*13)%60}
			if reqs[i].Src == reqs[i].Dst {
				reqs[i].Dst = 1 + reqs[i].Dst%60
			}
		}
	}
	sim.Run(net, reqs)
	if net.Rebuilds() == 0 {
		t.Fatal("expected rebuilds")
	}
	// The weight-balanced rebuild is an approximation, so require the hot
	// pair to sit strictly closer than in the oblivious full tree rather
	// than exactly adjacent.
	full, err := statictree.Full(60, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got, obl := net.Tree().DistanceID(7, 55), full.DistanceID(7, 55); got >= obl {
		t.Errorf("hot pair at distance %d after rebuilds, oblivious tree has %d", got, obl)
	}
}

func TestLazyBeatsStaticUnderDrift(t *testing.T) {
	// A workload whose hot set drifts over time: the lazy net re-optimizes
	// per epoch and must beat the one-shot oblivious tree on routing cost.
	n := 64
	var reqs []sim.Request
	for epoch := 0; epoch < 8; epoch++ {
		base := 1 + epoch*7
		for i := 0; i < 3000; i++ {
			u := 1 + (base+i%4)%n
			v := 1 + (base+3+(i*7)%5)%n
			if u == v {
				v = 1 + v%n
			}
			reqs = append(reqs, sim.Request{Src: u, Dst: v})
		}
	}
	lazy := MustNew(n, 2, 4000)
	lres := sim.Run(lazy, reqs)
	full, err := statictree.Full(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	fres := sim.Run(statictree.NewNet("full", full), reqs)
	if lres.Routing >= fres.Routing {
		t.Errorf("lazy routing %d not below static full tree %d under drift", lres.Routing, fres.Routing)
	}
}

func TestExactBuilderForSmallNetworks(t *testing.T) {
	net := MustNew(24, 3, 300)
	net.SetBuilder(statictree.Optimal)
	tr := workload.ProjecToRLike(24, 3000, 3)
	sim.Run(net, tr.Reqs)
	if net.Rebuilds() == 0 {
		t.Fatal("expected rebuilds with the exact builder")
	}
	if err := net.Tree().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLinkChurnProperties(t *testing.T) {
	// A known-distinct pair must report nonzero churn (random trees below
	// are almost surely distinct, but only this pair is guaranteed).
	bal, err := core.NewBalanced(40, 3)
	if err != nil {
		t.Fatal(err)
	}
	path, err := core.NewPath(40, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := linkChurn(bal, path); got == 0 {
		t.Error("distinct topologies (balanced vs path) reported zero churn")
	}

	// linkChurn guards the model's reconfiguration cost (the number of links
	// added plus removed when the lazy net swaps topologies). It is the size
	// of the symmetric difference of the two undirected link sets, so over
	// random valid topologies it must be symmetric in its arguments, zero
	// for identical topologies, bounded by 2(n−1) (both trees have exactly
	// n−1 links, so at worst all are removed and all are added), and obey
	// the triangle inequality of symmetric differences.
	for _, n := range []int{2, 3, 17, 40, 101} {
		for _, k := range []int{2, 3, 5} {
			for seed := int64(0); seed < 4; seed++ {
				a, err := core.NewRandom(n, k, seed)
				if err != nil {
					t.Fatal(err)
				}
				b, err := core.NewRandom(n, k, seed+100)
				if err != nil {
					t.Fatal(err)
				}
				c, err := core.NewRandom(n, k, seed+200)
				if err != nil {
					t.Fatal(err)
				}
				ab, ba := linkChurn(a, b), linkChurn(b, a)
				if ab != ba {
					t.Errorf("n=%d k=%d seed=%d: churn not symmetric: %d vs %d", n, k, seed, ab, ba)
				}
				if ab < 0 || ab > int64(2*(n-1)) {
					t.Errorf("n=%d k=%d seed=%d: churn %d outside [0, 2(n-1)=%d]", n, k, seed, ab, 2*(n-1))
				}
				if got := linkChurn(a, a); got != 0 {
					t.Errorf("n=%d k=%d seed=%d: identical topologies churn %d", n, k, seed, got)
				}
				if ac, cb := linkChurn(a, c), linkChurn(c, b); ab > ac+cb {
					t.Errorf("n=%d k=%d seed=%d: triangle inequality violated: %d > %d + %d", n, k, seed, ab, ac, cb)
				}
			}
		}
	}
}

func TestName(t *testing.T) {
	if got := MustNew(10, 4, 100).Name(); got != "lazy 4-ary net (α=100)" {
		t.Errorf("Name()=%q", got)
	}
}
