package core

import (
	"fmt"
	"strings"
)

// Render draws the tree as indented ASCII, one node per line, showing each
// node's identifier and routing array. It reproduces the node layout of the
// paper's structure figures (Fig. 1–8) for small instances and is used by
// the example programs.
func (t *Tree) Render() string {
	var b strings.Builder
	t.renderNode(&b, t.root, "", "")
	return b.String()
}

func (t *Tree) renderNode(b *strings.Builder, ix int32, prefix, childPrefix string) {
	fmt.Fprintf(b, "%s%d", prefix, ix)
	sp := t.span(ix)
	if t.k > 1 {
		b.WriteString(" r=[")
		for i := 0; i < t.k-1; i++ {
			if i > 0 {
				b.WriteByte(' ')
			}
			// Render cuts in id space; non-integer cuts get one decimal.
			th := sp[2*i+1]
			if int(th)%t.scale == 0 {
				fmt.Fprintf(b, "%d", int(th)/t.scale)
			} else {
				fmt.Fprintf(b, "%.1f", float64(th)/float64(t.scale))
			}
		}
		b.WriteString("]")
	}
	b.WriteByte('\n')
	var kids []int32
	for i := 0; i < len(sp); i += 2 {
		if ch := sp[i]; ch != 0 {
			kids = append(kids, ch)
		}
	}
	for i, ch := range kids {
		if i == len(kids)-1 {
			t.renderNode(b, ch, childPrefix+"└─ ", childPrefix+"   ")
		} else {
			t.renderNode(b, ch, childPrefix+"├─ ", childPrefix+"│  ")
		}
	}
}

// Parents returns the parent id of every node (0 for the root), a compact
// serialization of the topology used by tests and trace tooling. In the
// arena representation this is a plain widening copy of the parent array.
func (t *Tree) Parents() []int {
	out := make([]int, t.n+1)
	for id := 1; id <= t.n; id++ {
		out[id] = int(t.parent[id])
	}
	return out
}

// DOT serializes the topology in Graphviz dot format: nodes are labelled
// with their identifier and routing array, edges follow the tree links.
// Useful for visualizing small networks outside the terminal.
func (t *Tree) DOT() string {
	var b strings.Builder
	b.WriteString("digraph ksan {\n  node [shape=record];\n")
	var walk func(ix int32)
	walk = func(ix int32) {
		fmt.Fprintf(&b, "  n%d [label=\"%d", ix, ix)
		sp := t.span(ix)
		if t.k > 1 {
			b.WriteString("|")
			for i := 0; i < t.k-1; i++ {
				if i > 0 {
					b.WriteByte(' ')
				}
				th := sp[2*i+1]
				if int(th)%t.scale == 0 {
					fmt.Fprintf(&b, "%d", int(th)/t.scale)
				} else {
					fmt.Fprintf(&b, "%.1f", float64(th)/float64(t.scale))
				}
			}
		}
		b.WriteString("\"];\n")
		for i := 0; i < len(sp); i += 2 {
			if ch := sp[i]; ch != 0 {
				fmt.Fprintf(&b, "  n%d -> n%d;\n", ix, ch)
				walk(ch)
			}
		}
	}
	walk(t.root)
	b.WriteString("}\n")
	return b.String()
}
