package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// ids returns the sorted list of ids present, for id-permanence checks.
func ids(t *Tree) []int {
	out := make([]int, 0, t.N())
	for id := 1; id <= t.N(); id++ {
		if t.NodeByID(id) != nil {
			out = append(out, id)
		}
	}
	return out
}

func TestSemiSplayMakesChildParent(t *testing.T) {
	for _, k := range []int{2, 3, 5, 8} {
		tr := MustNewBalanced(100, k)
		root := tr.Root()
		var ch *Node
		for i := 0; i < root.NumSlots(); i++ {
			if root.Child(i) != nil {
				ch = root.Child(i)
				break
			}
		}
		if err := tr.SemiSplay(ch); err != nil {
			t.Fatal(err)
		}
		if tr.Root() != ch {
			t.Fatalf("k=%d: semi-splayed child did not become root", k)
		}
		if ch.Parent() != nil {
			t.Fatalf("k=%d: new root still has a parent", k)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("k=%d: tree invalid after semi-splay: %v", k, err)
		}
		if got := tr.Rotations(); got != 1 {
			t.Errorf("k=%d: rotations=%d, want 1", k, got)
		}
	}
}

func TestSemiSplayRejectsRoot(t *testing.T) {
	tr := MustNewBalanced(10, 3)
	if err := tr.SemiSplay(tr.Root()); err == nil {
		t.Error("SemiSplay(root) should fail")
	}
}

func TestSplayStepLiftsByTwo(t *testing.T) {
	for _, k := range []int{2, 3, 4, 7} {
		tr := MustNewBalanced(200, k)
		// Find a node at depth >= 2.
		var z *Node
		for id := 1; id <= 200; id++ {
			if nd := tr.NodeByID(id); tr.Depth(nd) >= 2 {
				z = nd
				break
			}
		}
		d0 := tr.Depth(z)
		if err := tr.SplayStep(z); err != nil {
			t.Fatal(err)
		}
		if got := tr.Depth(z); got != d0-2 {
			t.Fatalf("k=%d: depth after k-splay = %d, want %d", k, got, d0-2)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("k=%d: invalid after k-splay: %v", k, err)
		}
	}
}

func TestSplayStepRejectsShallowNodes(t *testing.T) {
	tr := MustNewBalanced(10, 3)
	if err := tr.SplayStep(tr.Root()); err == nil {
		t.Error("SplayStep(root) should fail")
	}
	var ch *Node
	for i := 0; i < tr.Root().NumSlots(); i++ {
		if c := tr.Root().Child(i); c != nil {
			ch = c
			break
		}
	}
	if err := tr.SplayStep(ch); err == nil {
		t.Error("SplayStep(depth-1 node) should fail")
	}
}

func TestSplayUntilParentToRoot(t *testing.T) {
	for _, k := range []int{2, 3, 5, 10} {
		for seed := int64(0); seed < 5; seed++ {
			tr, err := NewRandom(150, k, seed)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(seed + 100))
			for trial := 0; trial < 30; trial++ {
				x := tr.NodeByID(1 + rng.Intn(150))
				tr.SplayUntilParent(x, nil)
				if tr.Root() != x {
					t.Fatalf("k=%d: node %d not at root after splay", k, x.ID())
				}
				if err := tr.Validate(); err != nil {
					t.Fatalf("k=%d seed=%d trial=%d: %v", k, seed, trial, err)
				}
			}
		}
	}
}

func TestSplayUntilParentStopsAtStop(t *testing.T) {
	tr := MustNewBalanced(255, 2)
	root := tr.Root()
	// Splay a deep node until it is a direct child of the (unchanged) root.
	var deep *Node
	for id := 1; id <= 255; id++ {
		if nd := tr.NodeByID(id); tr.Depth(nd) == tr.Height() {
			deep = nd
			break
		}
	}
	tr.SplayUntilParent(deep, root)
	if deep.Parent() != root {
		t.Fatalf("node %d parent is %v, want root", deep.ID(), deep.Parent().ID())
	}
	if tr.Root() != root {
		t.Fatal("root moved although it was the stop node")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSemiSplayUntilParentReachesTarget(t *testing.T) {
	tr := MustNewBalanced(127, 4)
	x := tr.NodeByID(97)
	tr.SemiSplayUntilParent(x, nil)
	if tr.Root() != x {
		t.Fatal("semi-splay-only did not reach the root")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestIdentifierPermanence(t *testing.T) {
	// The defining property of the network setting (vs. k-ary search trees):
	// node identifiers never change across rotations.
	tr := MustNewBalanced(80, 3)
	want := ids(tr)
	nodesBefore := make(map[int]*Node)
	for id := 1; id <= 80; id++ {
		nodesBefore[id] = tr.NodeByID(id)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		x := tr.NodeByID(1 + rng.Intn(80))
		tr.SplayUntilParent(x, nil)
	}
	got := ids(tr)
	for i := range want {
		if got[i] != want[i] {
			t.Fatal("id set changed under rotations")
		}
	}
	for id := 1; id <= 80; id++ {
		if tr.NodeByID(id) != nodesBefore[id] {
			t.Fatalf("node object for id %d was replaced; identifiers must be permanent", id)
		}
		if tr.NodeByID(id).ID() != id {
			t.Fatalf("node %d changed its identifier", id)
		}
	}
}

func TestRotationCounterAdvances(t *testing.T) {
	tr := MustNewBalanced(63, 2)
	var deep *Node
	for id := 1; id <= 63; id++ {
		if nd := tr.NodeByID(id); tr.Depth(nd) == 5 {
			deep = nd
			break
		}
	}
	tr.SplayUntilParent(deep, nil)
	// Depth 5 → root: two double steps + one single, or similar; at least
	// ceil(5/2) and at most 5 rotations.
	if r := tr.Rotations(); r < 3 || r > 5 {
		t.Errorf("rotations=%d, want within [3,5]", r)
	}
	tr.ResetCounters()
	if tr.Rotations() != 0 {
		t.Error("ResetCounters did not zero rotations")
	}
}

func TestEdgeChangeTracking(t *testing.T) {
	tr := MustNewBalanced(63, 2)
	tr.SetTrackEdges(true)
	var ch *Node
	for i := 0; i < tr.Root().NumSlots(); i++ {
		if c := tr.Root().Child(i); c != nil {
			ch = c
			break
		}
	}
	if err := tr.SemiSplay(ch); err != nil {
		t.Fatal(err)
	}
	if tr.EdgeChanges() == 0 {
		t.Error("a semi-splay at the root must change at least one link")
	}
	// A BST zig changes exactly 2 edges when the subtree moves across
	// (parent link of fragment is the virtual root link): old edges
	// (0,root),(root,ch),(ch,…) vs new. Just sanity-bound it.
	if tr.EdgeChanges() > int64(4*tr.K()) {
		t.Errorf("edge churn %d implausibly high for one rotation", tr.EdgeChanges())
	}
}

func TestBlockPolicyLeftmostStillValid(t *testing.T) {
	for _, k := range []int{3, 6} {
		tr := MustNewBalanced(120, k)
		tr.SetBlockPolicy(BlockLeftmost)
		rng := rand.New(rand.NewSource(11))
		for i := 0; i < 150; i++ {
			tr.SplayUntilParent(tr.NodeByID(1+rng.Intn(120)), nil)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("k=%d leftmost-block policy broke invariants: %v", k, err)
		}
	}
}

func TestRepeatedSplaySameNodeIsCheap(t *testing.T) {
	// Splaying the node that is already root must cost zero rotations.
	tr := MustNewBalanced(100, 3)
	x := tr.NodeByID(42)
	tr.SplayUntilParent(x, nil)
	r := tr.Rotations()
	tr.SplayUntilParent(x, nil)
	if tr.Rotations() != r {
		t.Error("splaying the root again performed rotations")
	}
}

func TestBlockSizeFeasibility(t *testing.T) {
	// For every (avail, remNodes, maxB) the chosen size must keep the rest
	// placeable: avail-b ≤ maxB*(remNodes-1), 0 ≤ b ≤ min(maxB, avail).
	for maxB := 1; maxB <= 9; maxB++ {
		for remNodes := 2; remNodes <= 4; remNodes++ {
			for avail := 0; avail <= maxB*remNodes; avail++ {
				b := blockSize(avail, remNodes, maxB)
				if b < 0 || b > maxB || b > avail {
					t.Fatalf("blockSize(%d,%d,%d)=%d out of range", avail, remNodes, maxB, b)
				}
				if avail-b > maxB*(remNodes-1) {
					t.Fatalf("blockSize(%d,%d,%d)=%d leaves %d elements for %d nodes",
						avail, remNodes, maxB, b, avail-b, remNodes-1)
				}
			}
		}
	}
}

func TestIntervalIndex(t *testing.T) {
	elems := []int{3, 7, 10}
	cases := []struct{ id, want int }{
		{1, 0}, {3, 0}, {4, 1}, {7, 1}, {8, 2}, {10, 2}, {11, 3},
	}
	for _, c := range cases {
		if got := intervalIndex(elems, c.id); got != c.want {
			t.Errorf("intervalIndex(%v,%d)=%d want %d", elems, c.id, got, c.want)
		}
	}
}

func TestQuickRandomSplaySequencesKeepInvariants(t *testing.T) {
	// Property: any sequence of splays on any valid random tree keeps every
	// invariant. testing/quick drives the seeds.
	f := func(seed int64, kRaw uint8, ops []uint16) bool {
		k := 2 + int(kRaw%9) // 2..10
		n := 60
		tr, err := NewRandom(n, k, seed)
		if err != nil {
			return false
		}
		if len(ops) > 80 {
			ops = ops[:80]
		}
		for _, op := range ops {
			x := tr.NodeByID(1 + int(op)%n)
			tr.SplayUntilParent(x, nil)
		}
		return tr.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSplayToAncestorKeepsInvariants(t *testing.T) {
	f := func(seed int64, kRaw uint8, pairs []uint32) bool {
		k := 2 + int(kRaw%5)
		n := 50
		tr, err := NewRandom(n, k, seed)
		if err != nil {
			return false
		}
		if len(pairs) > 60 {
			pairs = pairs[:60]
		}
		for _, pr := range pairs {
			u := 1 + int(pr%uint32(n))
			v := 1 + int((pr/64)%uint32(n))
			a, b := tr.NodeByID(u), tr.NodeByID(v)
			w := tr.LCA(a, b)
			tr.SplayUntilParent(a, w.Parent())
			if b != a {
				tr.SplayUntilParent(b, a)
				if b.Parent() != a {
					return false
				}
			}
			if tr.Validate() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSplayPreservesSubtreeIntervalAtParent(t *testing.T) {
	// After splaying x to the top of the subtree hanging at a fixed slot of
	// stop, that slot must still cover exactly the same id interval.
	tr := MustNewBalanced(121, 3)
	root := tr.Root()
	slot := -1
	var sub *Node
	for i := 0; i < root.NumSlots(); i++ {
		if c := root.Child(i); c != nil {
			slot, sub = i, c
			break
		}
	}
	// Collect ids currently under that slot.
	before := map[int]bool{}
	var collect func(nd *Node)
	collect = func(nd *Node) {
		before[nd.ID()] = true
		for i := 0; i < nd.NumSlots(); i++ {
			if c := nd.Child(i); c != nil {
				collect(c)
			}
		}
	}
	collect(sub)
	// Splay a deep node of that subtree to the subtree root.
	var x *Node
	for id := 1; id <= 121; id++ {
		nd := tr.NodeByID(id)
		if before[id] && tr.Depth(nd) >= 3 {
			x = nd
			break
		}
	}
	tr.SplayUntilParent(x, root)
	after := map[int]bool{}
	collect = func(nd *Node) {
		after[nd.ID()] = true
		for i := 0; i < nd.NumSlots(); i++ {
			if c := nd.Child(i); c != nil {
				collect(c)
			}
		}
	}
	collect(root.Child(slot))
	if len(before) != len(after) {
		t.Fatalf("subtree size changed: %d -> %d", len(before), len(after))
	}
	for id := range before {
		if !after[id] {
			t.Fatalf("id %d left its subtree during a bounded splay", id)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}
