package core

import (
	"math/rand"
	"testing"
)

// TestArenaMatchesPointerReference drives the arena tree and the naive
// pointer-linked reference (reference_test.go) with identical random
// splay/semi-splay sequences — the exact movement repertoire of the online
// networks — and demands bit-identical renderings, parent vectors and
// distance/LCA answers after every operation. Run under -race in CI, this
// is the differential safety net for the index-surgery rebuilds: any
// divergence in block placement, parent rewiring, threshold ordering or
// root handoff surfaces as a first-divergence diff with the full seed.
func TestArenaMatchesPointerReference(t *testing.T) {
	configs := []struct {
		n, k int
	}{
		{7, 2}, {25, 2}, {40, 3}, {90, 3}, {64, 4}, {130, 5}, {60, 7},
	}
	for _, cfg := range configs {
		for _, policy := range []BlockPolicy{BlockCentered, BlockLeftmost} {
			for seed := int64(1); seed <= 4; seed++ {
				tr, err := NewBalanced(cfg.n, cfg.k)
				if err != nil {
					t.Fatal(err)
				}
				tr.SetBlockPolicy(policy)
				ref := newRefTree(tr)
				rng := rand.New(rand.NewSource(seed))

				ops := 300
				if testing.Short() {
					ops = 60
				}
				for op := 0; op < ops; op++ {
					u := 1 + rng.Intn(cfg.n)
					v := 1 + rng.Intn(cfg.n)
					if u == v {
						continue
					}
					// The k-ary SplayNet request pattern: source to the
					// LCA's position, destination under the source —
					// alternating the single- and double-step repertoires.
					a, b := tr.NodeByID(u), tr.NodeByID(v)
					_, w := tr.DistanceLCA(a, b)
					ra, rb, rw := ref.byID[u], ref.byID[v], ref.byID[w.ID()]
					if op%2 == 0 {
						tr.SplayUntilParent(a, w.Parent())
						ref.splayUntilParent(ra, parentRef(rw))
						tr.SplayUntilParent(b, a)
						ref.splayUntilParent(rb, ra)
					} else {
						tr.SemiSplayUntilParent(a, w.Parent())
						ref.semiSplayUntilParent(ra, parentRef(rw))
						tr.SemiSplayUntilParent(b, a)
						ref.semiSplayUntilParent(rb, ra)
					}

					if got, want := tr.Render(), ref.render(); got != want {
						t.Fatalf("n=%d k=%d policy=%v seed=%d op=%d (%d→%d): renderings diverge\narena:\n%s\nreference:\n%s",
							cfg.n, cfg.k, policy, seed, op, u, v, got, want)
					}
					gp, wp := tr.Parents(), ref.parents()
					for id := range gp {
						if gp[id] != wp[id] {
							t.Fatalf("n=%d k=%d policy=%v seed=%d op=%d: parent of %d diverges: arena %d, reference %d",
								cfg.n, cfg.k, policy, seed, op, id, gp[id], wp[id])
						}
					}
					// Distance/LCA spot checks on random pairs.
					for q := 0; q < 8; q++ {
						x := 1 + rng.Intn(cfg.n)
						y := 1 + rng.Intn(cfg.n)
						d, lca := tr.DistanceLCA(tr.NodeByID(x), tr.NodeByID(y))
						rd, rlca := ref.distanceLCA(x, y)
						if d != rd || lca.ID() != rlca {
							t.Fatalf("n=%d k=%d policy=%v seed=%d op=%d: DistanceLCA(%d,%d) diverges: arena (%d,%d), reference (%d,%d)",
								cfg.n, cfg.k, policy, seed, op, x, y, d, lca.ID(), rd, rlca)
						}
					}
				}
				if err := tr.Validate(); err != nil {
					t.Fatalf("n=%d k=%d policy=%v seed=%d: final arena tree invalid: %v",
						cfg.n, cfg.k, policy, seed, err)
				}
			}
		}
	}
}

func parentRef(rn *refNode) *refNode {
	if rn == nil {
		return nil
	}
	return rn.parent
}

// TestReferenceSharesPlacementHelpers pins the full-array specialization
// argument directly: with every routing array at exactly k−1 elements, the
// generic blockSize the reference uses must degenerate to the constant
// k−1 block width the arena rebuilds hard-code.
func TestReferenceSharesPlacementHelpers(t *testing.T) {
	for k := 2; k <= 9; k++ {
		for d := 2; d <= 3; d++ {
			avail := d * (k - 1)
			for i := 0; i < d-1; i++ {
				if got := blockSize(avail-i*(k-1), d-i, k-1); got != k-1 {
					t.Fatalf("blockSize(%d, %d, %d) = %d, want %d", avail-i*(k-1), d-i, k-1, got, k-1)
				}
			}
		}
	}
}
