package core

import (
	"testing"
)

func TestNewBalancedValid(t *testing.T) {
	for _, k := range []int{2, 3, 4, 5, 7, 10} {
		for _, n := range []int{1, 2, 3, 4, 5, 7, 10, 31, 64, 100, 255, 1000} {
			tr, err := NewBalanced(n, k)
			if err != nil {
				t.Fatalf("NewBalanced(%d,%d): %v", n, k, err)
			}
			if err := tr.Validate(); err != nil {
				t.Fatalf("NewBalanced(%d,%d) invalid: %v", n, k, err)
			}
		}
	}
}

func TestNewBalancedHeight(t *testing.T) {
	// A weakly-complete k-ary tree of n nodes has height ⌈log_k(...)⌉; check
	// the exact full-tree cases.
	cases := []struct{ n, k, h int }{
		{1, 2, 0}, {3, 2, 1}, {7, 2, 2}, {15, 2, 3}, {31, 2, 4},
		{1, 3, 0}, {4, 3, 1}, {13, 3, 2}, {40, 3, 3},
		{1, 4, 0}, {5, 4, 1}, {21, 4, 2},
	}
	for _, c := range cases {
		tr := MustNewBalanced(c.n, c.k)
		if got := tr.Height(); got != c.h {
			t.Errorf("height of full %d-ary tree on %d nodes = %d, want %d", c.k, c.n, got, c.h)
		}
	}
}

func TestNewBalancedWeaklyComplete(t *testing.T) {
	// All levels above the last must be completely filled.
	for _, k := range []int{2, 3, 5} {
		for _, n := range []int{6, 17, 50, 123} {
			tr := MustNewBalanced(n, k)
			h := tr.Height()
			perLevel := make([]int, h+1)
			var walk func(nd *Node, d int)
			walk = func(nd *Node, d int) {
				perLevel[d]++
				for i := 0; i < nd.NumSlots(); i++ {
					if ch := nd.Child(i); ch != nil {
						walk(ch, d+1)
					}
				}
			}
			walk(tr.Root(), 0)
			want := 1
			for d := 0; d < h; d++ {
				if perLevel[d] != want {
					t.Fatalf("n=%d k=%d: level %d has %d nodes, want %d", n, k, d, perLevel[d], want)
				}
				want *= k
			}
		}
	}
}

func TestNewPath(t *testing.T) {
	for _, k := range []int{2, 4} {
		tr, err := NewPath(10, k)
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatal(err)
		}
		if got := tr.DistanceID(1, 10); got != 9 {
			t.Errorf("path distance 1..10 = %d, want 9", got)
		}
		if got := tr.Height(); got != 9 {
			t.Errorf("path height = %d, want 9", got)
		}
	}
}

func TestNewRandomValid(t *testing.T) {
	for _, k := range []int{2, 3, 6} {
		for seed := int64(0); seed < 20; seed++ {
			tr, err := NewRandom(40, k, seed)
			if err != nil {
				t.Fatalf("NewRandom(40,%d,%d): %v", k, seed, err)
			}
			if err := tr.Validate(); err != nil {
				t.Fatalf("NewRandom(40,%d,%d) invalid: %v", k, seed, err)
			}
		}
	}
}

func TestDistanceSymmetricAndTriangle(t *testing.T) {
	tr := MustNewBalanced(60, 3)
	for u := 1; u <= 60; u += 7 {
		for v := 1; v <= 60; v += 5 {
			duv, dvu := tr.DistanceID(u, v), tr.DistanceID(v, u)
			if duv != dvu {
				t.Fatalf("distance not symmetric: d(%d,%d)=%d d(%d,%d)=%d", u, v, duv, v, u, dvu)
			}
			for w := 1; w <= 60; w += 11 {
				if duv > tr.DistanceID(u, w)+tr.DistanceID(w, v) {
					t.Fatalf("triangle inequality violated at (%d,%d,%d)", u, v, w)
				}
			}
		}
	}
}

func TestDistanceZeroAndAdjacent(t *testing.T) {
	tr := MustNewBalanced(20, 2)
	if got := tr.DistanceID(5, 5); got != 0 {
		t.Errorf("d(5,5)=%d, want 0", got)
	}
	root := tr.Root()
	for i := 0; i < root.NumSlots(); i++ {
		if ch := root.Child(i); ch != nil {
			if got := tr.Distance(root, ch); got != 1 {
				t.Errorf("root-child distance = %d, want 1", got)
			}
		}
	}
}

func TestLCA(t *testing.T) {
	tr := MustNewBalanced(31, 2) // full binary tree
	// In a full BST on 1..31, LCA(1, 31) is the root.
	if got := tr.LCA(tr.NodeByID(1), tr.NodeByID(31)); got != tr.Root() {
		t.Errorf("LCA(1,31) = %d, want root %d", got.ID(), tr.Root().ID())
	}
	// LCA of a node with itself is itself.
	nd := tr.NodeByID(7)
	if got := tr.LCA(nd, nd); got != nd {
		t.Errorf("LCA(x,x) != x")
	}
	// LCA of an ancestor-descendant pair is the ancestor.
	anc := tr.Root()
	ch := anc.Child(0)
	for ch != nil && !ch.IsLeaf() {
		if got := tr.LCA(anc, ch); got != anc {
			t.Fatalf("LCA(ancestor,descendant) wrong")
		}
		next := ch.Child(0)
		if next == nil {
			break
		}
		ch = next
	}
}

func TestRoutePathMatchesDistance(t *testing.T) {
	tr := MustNewBalanced(64, 4)
	for u := 1; u <= 64; u += 3 {
		for v := 1; v <= 64; v += 7 {
			p := tr.RoutePath(u, v)
			if len(p)-1 != tr.DistanceID(u, v) {
				t.Fatalf("route path length %d != distance %d for (%d,%d)", len(p)-1, tr.DistanceID(u, v), u, v)
			}
			if p[0] != u || p[len(p)-1] != v {
				t.Fatalf("route path endpoints wrong: %v for (%d,%d)", p, u, v)
			}
		}
	}
}

func TestNextHopFollowsRoutePath(t *testing.T) {
	tr := MustNewBalanced(50, 3)
	for u := 1; u <= 50; u += 4 {
		for v := 1; v <= 50; v += 6 {
			if u == v {
				continue
			}
			at := tr.NodeByID(u)
			hops := 0
			for at.ID() != v {
				next, err := tr.NextHop(at, v)
				if err != nil {
					t.Fatalf("NextHop(%d→%d): %v", at.ID(), v, err)
				}
				at = next
				hops++
				if hops > tr.N() {
					t.Fatalf("NextHop loops routing %d→%d", u, v)
				}
			}
			if hops != tr.DistanceID(u, v) {
				t.Fatalf("NextHop took %d hops for (%d,%d), distance is %d", hops, u, v, tr.DistanceID(u, v))
			}
		}
	}
}

func TestTotalPairDistanceUniformMatchesBruteForce(t *testing.T) {
	for _, k := range []int{2, 3, 4} {
		for _, n := range []int{1, 2, 8, 25} {
			tr := MustNewBalanced(n, k)
			var brute int64
			for u := 1; u <= n; u++ {
				for v := u + 1; v <= n; v++ {
					brute += int64(tr.DistanceID(u, v))
				}
			}
			if got := tr.TotalPairDistanceUniform(); got != brute {
				t.Errorf("n=%d k=%d: TotalPairDistanceUniform=%d brute=%d", n, k, got, brute)
			}
		}
	}
}

func TestWeaklyCompleteSizes(t *testing.T) {
	cases := []struct {
		c, k int
		want []int
	}{
		{0, 3, []int{0, 0, 0}},
		{3, 3, []int{1, 1, 1}},
		{4, 3, []int{2, 1, 1}},
		{6, 3, []int{4, 1, 1}},
		{12, 3, []int{4, 4, 4}},
		{13, 3, []int{5, 4, 4}},
		{2, 2, []int{1, 1}},
		{5, 2, []int{3, 2}},
		{6, 2, []int{3, 3}},
	}
	for _, c := range cases {
		got := WeaklyCompleteSizes(c.c, c.k)
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("WeaklyCompleteSizes(%d,%d)=%v want %v", c.c, c.k, got, c.want)
				break
			}
		}
	}
}

func TestBuildRejectsBadSpecs(t *testing.T) {
	cases := []struct {
		name string
		k    int
		spec *Spec
	}{
		{"nil spec", 2, nil},
		{"dup id", 2, &Spec{ID: 1, Thresholds: []int{1}, Children: []*Spec{nil, {ID: 1}}}},
		{"id out of slot", 2, &Spec{ID: 2, Thresholds: []int{1}, Children: []*Spec{{ID: 3}, nil}}},
		{"too many thresholds", 2, &Spec{ID: 2, Thresholds: []int{1, 2}, Children: []*Spec{{ID: 1}, nil, {ID: 3}}}},
		{"slot count mismatch", 3, &Spec{ID: 1, Thresholds: []int{1}, Children: []*Spec{nil}}},
		{"non-increasing thresholds", 3, &Spec{ID: 2, Thresholds: []int{2, 2}, Children: []*Spec{{ID: 1}, nil, {ID: 3}}}},
	}
	for _, c := range cases {
		if _, err := Build(c.k, c.spec); err == nil {
			t.Errorf("%s: Build accepted an invalid spec", c.name)
		}
	}
}

func TestBuildAcceptsLeafWithNilChildren(t *testing.T) {
	tr, err := Build(3, &Spec{ID: 2, Thresholds: []int{2}, Children: []*Spec{{ID: 1}, {ID: 3}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParents(t *testing.T) {
	tr := MustNewBalanced(7, 2)
	par := tr.Parents()
	if par[tr.Root().ID()] != 0 {
		t.Errorf("root parent = %d, want 0", par[tr.Root().ID()])
	}
	roots := 0
	for id := 1; id <= 7; id++ {
		if par[id] == 0 {
			roots++
		} else if tr.NodeByID(id).Parent().ID() != par[id] {
			t.Errorf("Parents()[%d] inconsistent", id)
		}
	}
	if roots != 1 {
		t.Errorf("found %d roots, want 1", roots)
	}
}

func TestAverageDepthBalancedVsPath(t *testing.T) {
	bal := MustNewBalanced(63, 2)
	path, _ := NewPath(63, 2)
	if bal.AverageDepth() >= path.AverageDepth() {
		t.Errorf("balanced tree average depth %.2f should beat path %.2f",
			bal.AverageDepth(), path.AverageDepth())
	}
}

func TestHigherArityShortensTree(t *testing.T) {
	// The motivation of the paper: with increasing k, route lengths drop.
	n := 500
	prev := MustNewBalanced(n, 2).TotalPairDistanceUniform()
	for k := 3; k <= 10; k++ {
		cur := MustNewBalanced(n, k).TotalPairDistanceUniform()
		if cur >= prev {
			t.Errorf("k=%d full tree total distance %d not below k=%d's %d", k, cur, k-1, prev)
		}
		prev = cur
	}
}
