package core

import (
	"math/rand"
	"sort"
)

// NewBalanced constructs a weakly-complete (all levels full except possibly
// the last, which is packed to the left) k-ary search tree network on ids
// 1..n. This is the usual demand-oblivious initial topology.
func NewBalanced(n, k int) (*Tree, error) {
	if err := checkIDRange(n, k); err != nil {
		return nil, err
	}
	return Build(k, BalancedSpec(1, n, k))
}

// MustNewBalanced is NewBalanced for known-good parameters.
func MustNewBalanced(n, k int) *Tree {
	t, err := NewBalanced(n, k)
	if err != nil {
		panic(err)
	}
	return t
}

// BalancedSpec returns the Spec of a weakly-complete k-ary search tree on
// the id interval [lo,hi]. It returns nil for an empty interval. The root's
// id doubles as its first routing element (routing-based placement), sitting
// between the first child interval and the rest.
func BalancedSpec(lo, hi, k int) *Spec {
	m := hi - lo + 1
	if m <= 0 {
		return nil
	}
	sizes := WeaklyCompleteSizes(m-1, k)
	id := lo + sizes[0]
	spec := &Spec{ID: id}
	// Slot 0 covers (lo-1, id]: the first child's ids plus the root id.
	spec.Thresholds = append(spec.Thresholds, id)
	spec.Children = append(spec.Children, BalancedSpec(lo, id-1, k))
	slotLo := id + 1
	for i := 1; i < len(sizes); i++ {
		if sizes[i] == 0 {
			continue
		}
		end := slotLo + sizes[i] - 1
		spec.Thresholds = append(spec.Thresholds, end)
		spec.Children = append(spec.Children, BalancedSpec(slotLo, end, k))
		slotLo = end + 1
	}
	// Drop the final threshold: the last child lives in the open-ended last
	// slot, keeping the routing array within k-1 entries.
	spec.Thresholds = spec.Thresholds[:len(spec.Thresholds)-1]
	return spec
}

// WeaklyCompleteSizes splits c nodes into k subtree sizes of a
// weakly-complete k-ary tree: all subtrees share the same full interior of
// height h−1 and the c − k·F(h−1) nodes of the last level are packed into
// the leftmost subtrees. F(h) = 1 + k + ... + k^(h−1).
func WeaklyCompleteSizes(c, k int) []int {
	sizes := make([]int, k)
	if c <= 0 {
		return sizes
	}
	full := 0    // F(h-1): nodes in one full subtree of height h-1
	lastCap := 1 // k^(h-1): capacity of one subtree's last level at height h
	for k*(full+lastCap) < c {
		full += lastCap
		lastCap *= k
	}
	last := c - k*full // nodes on the (partial) last level
	for i := range sizes {
		take := last
		if take > lastCap {
			take = lastCap
		}
		if take < 0 {
			take = 0
		}
		sizes[i] = full + take
		last -= take
	}
	return sizes
}

// NewPath constructs the degenerate path topology 1→2→…→n (each node has a
// single child). It is the worst-case initial network used by the initial-
// topology ablation.
func NewPath(n, k int) (*Tree, error) {
	if err := checkIDRange(n, k); err != nil {
		return nil, err
	}
	var spec *Spec
	for id := n; id >= 1; id-- {
		if spec == nil {
			spec = &Spec{ID: id}
		} else {
			spec = &Spec{ID: id, Thresholds: []int{id}, Children: []*Spec{nil, spec}}
		}
	}
	return Build(k, spec)
}

// NewRandom constructs a random valid k-ary search tree network: each
// subtree draws a random root id from its interval and splits the remaining
// ids into a random number of contiguous child intervals. Used by property
// tests and the initial-topology ablation.
func NewRandom(n, k int, seed int64) (*Tree, error) {
	if err := checkIDRange(n, k); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	return Build(k, randomSpec(1, n, k, rng))
}

func randomSpec(lo, hi, k int, rng *rand.Rand) *Spec {
	m := hi - lo + 1
	if m <= 0 {
		return nil
	}
	id := lo + rng.Intn(m)
	left, right := id-lo, hi-id

	// Number of child intervals on each side of the root id. The slot layout
	// is [p left parts (the last one also spanning the root id), q right
	// parts], so the threshold count is p+q−1 (or q when p=0, with an empty
	// slot for the bare root id; or p−1 when q=0, with the last left slot
	// open-ended through hi).
	p, q := 0, 0
	if left > 0 {
		maxP := k
		if right > 0 {
			maxP = k - 1 // reserve a slot for the right side
		}
		p = 1 + rng.Intn(min(maxP, left))
	}
	if right > 0 {
		maxQ := k - p
		if p == 0 {
			maxQ = k - 1 // the bare root-id slot consumes one position
		}
		q = 1 + rng.Intn(min(maxQ, right))
	}

	spec := &Spec{ID: id}
	if p > 0 {
		ends := randomCuts(lo, id-1, p, rng)
		slotLo := lo
		for i, e := range ends {
			spec.Children = append(spec.Children, randomSpec(slotLo, e, k, rng))
			switch {
			case i < p-1:
				spec.Thresholds = append(spec.Thresholds, e)
			case right > 0:
				spec.Thresholds = append(spec.Thresholds, id)
			}
			slotLo = e + 1
		}
	} else if right > 0 {
		// Slot 0 holds only the root id; it stays empty.
		spec.Thresholds = append(spec.Thresholds, id)
		spec.Children = append(spec.Children, nil)
	}
	if q > 0 {
		ends := randomCuts(id+1, hi, q, rng)
		slotLo := id + 1
		for i, e := range ends {
			spec.Children = append(spec.Children, randomSpec(slotLo, e, k, rng))
			if i < q-1 {
				spec.Thresholds = append(spec.Thresholds, e)
			}
			slotLo = e + 1
		}
	}
	if len(spec.Children) == 0 {
		spec.Children = nil // leaf
	}
	return spec
}

// randomCuts divides [lo,hi] into parts non-empty contiguous pieces and
// returns the (sorted) end id of each piece; the last entry is always hi.
func randomCuts(lo, hi, parts int, rng *rand.Rand) []int {
	m := hi - lo + 1
	ends := make([]int, 0, parts)
	if parts <= 1 {
		return append(ends, hi)
	}
	perm := rng.Perm(m - 1)[:parts-1]
	for _, g := range perm {
		ends = append(ends, lo+g)
	}
	ends = append(ends, hi)
	sort.Ints(ends)
	return ends
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
