package core

import (
	"fmt"
	"math"
)

// Snapshot is the flat wire form of a Tree: the arena's backing arrays,
// copied verbatim. Because the arena already stores the whole topology in
// three fields (root, parent links, interleaved child/threshold spans),
// checkpointing a tree is a handful of bulk copies with no per-node
// encoding step — this is the serialization format a sharded front-end
// persists and restores (ROADMAP item 1).
//
// The layout matches the arena exactly: node id i owns Parent[i] (0 = root)
// and the span RC[(i−1)·(2K−1) : i·(2K−1)] = kid0 thr0 kid1 thr1 … kid(K−1),
// child indices at even in-span offsets (0 = empty slot) and cut-space
// thresholds at odd offsets; Parent[0] is unused.
type Snapshot struct {
	K      int
	N      int
	Root   int32
	Parent []int32
	RC     []int32
}

// Snapshot copies the tree's flat arena state. The copy is deep: mutating
// the tree afterwards does not disturb the snapshot, and vice versa.
// Counters and scratch buffers are transient serving state and are
// deliberately not part of the wire form.
func (t *Tree) Snapshot() Snapshot {
	var s Snapshot
	t.SnapshotInto(&s)
	return s
}

// SnapshotInto overwrites s with the tree's flat arena state, reusing s's
// backing arrays when they have the capacity. This is the periodic-
// checkpoint entry point (internal/serve): a shard that snapshots the
// same tree every K requests pays two bulk copies per checkpoint and no
// steady-state allocations.
func (t *Tree) SnapshotInto(s *Snapshot) {
	s.K = t.k
	s.N = t.n
	s.Root = t.root
	s.Parent = append(s.Parent[:0], t.parent...)
	// parent[0] is a rebuild scratch cell (the branchless parent-update
	// loops park empty slots there); normalize it out of the wire form.
	s.Parent[0] = 0
	s.RC = append(s.RC[:0], t.rc...)
}

// FromSnapshot reconstructs a Tree from a snapshot, re-validating every
// structural invariant (a corrupted or hand-crafted snapshot is rejected,
// never served). The round trip Snapshot → FromSnapshot yields a tree whose
// Render, Parents and distance answers are bit-identical to the original's.
func FromSnapshot(s Snapshot) (*Tree, error) {
	if err := checkIDRange(s.N, s.K); err != nil {
		return nil, err
	}
	if s.N > math.MaxInt32/s.K {
		return nil, fmt.Errorf("core: n·k = %d·%d overflows the int32 cut space", s.N, s.K)
	}
	if len(s.Parent) != s.N+1 {
		return nil, fmt.Errorf("core: snapshot has %d parent entries, want %d", len(s.Parent), s.N+1)
	}
	if len(s.RC) != s.N*(2*s.K-1) {
		return nil, fmt.Errorf("core: snapshot has %d span entries, want %d", len(s.RC), s.N*(2*s.K-1))
	}
	if s.Root < 1 || int(s.Root) > s.N {
		return nil, fmt.Errorf("core: snapshot root %d out of range 1..%d", s.Root, s.N)
	}
	t := newArena(s.N, s.K)
	t.root = s.Root
	copy(t.parent, s.Parent)
	t.parent[0] = 0
	copy(t.rc, s.RC)
	for id := 1; id <= s.N; id++ {
		if p := t.parent[id]; p < 0 || int(p) > s.N {
			return nil, fmt.Errorf("core: snapshot parent of %d out of range: %d", id, p)
		}
		sp := t.span(int32(id))
		for i := 0; i < len(sp); i += 2 {
			ch := sp[i]
			if ch < 0 || int(ch) > s.N {
				return nil, fmt.Errorf("core: snapshot child slot %d of node %d out of range: %d", i/2, id, ch)
			}
			// slot is derived state, not part of the wire form; rebuild it.
			t.slot[ch] = int32(i / 2)
		}
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
