package core

import "fmt"

// Tree is a k-ary search tree network on nodes with identifiers 1..n.
//
// Node state is stored index-based in flat structure-of-arrays slices (the
// arena): node id i occupies arena index i, index 0 is the nil sentinel.
// parent[i] is the parent index (0 for the root), and every node owns a
// fixed-stride span of the shared packed rc array holding its child slots
// and routing elements interleaved in in-order:
//
//	rc[(i−1)·(2k−1) : i·(2k−1)] = kid0 thr0 kid1 thr1 … thr(k−2) kid(k−1)
//
// with child indices at even in-span offsets (0 = empty slot) and cut-space
// thresholds at odd offsets. The fixed stride is sound because construction
// pads every routing array to exactly k−1 elements and rotations preserve
// fullness (Validate enforces it); the interleaving is chosen because a
// node's span then IS its in-order expansion, so the d-node rebuild merges
// and re-emits whole fragments with a handful of contiguous block copies.
// The serve hot path — DistanceLCA and the splay rebuilds — walks these
// dense int32 arrays instead of chasing per-node heap objects, and the same
// slices double as the tree's serialization format (see Snapshot).
//
// The zero value is not usable; construct trees with NewBalanced, NewPath,
// NewRandom, Build (from a Spec) or FromSnapshot.
type Tree struct {
	k     int
	n     int
	scale int // cut-space scale: id i sits at value i·scale

	root   int32
	parent []int32 // parent[id]; 0 = none; index 0 is rebuild scratch
	rc     []int32 // interleaved child-slot/routing-element spans, 2k−1 per node
	slot   []int32 // slot[id]: the child slot id occupies in its parent; index 0 and the root's entry are scratch

	// nodes backs the *Node handles handed out by NodeByID, Root, Parent
	// and Child: nodes[id] is allocated once at construction and never
	// moves, so handle pointers are stable across rotations (identifier
	// permanence).
	nodes []Node

	// Routing kernels, selected once at construction by threshold count
	// (kernel.go): kSpan searches a node's own span (k−1 thresholds),
	// kMerge2/kMerge3 search the d=2/d=3 rebuild merges (2(k−1) and
	// 3(k−1) thresholds). Every greedy routing decision and every block
	// placement goes through these; the scalar early-exit scan survives
	// only as the reference oracle (slotScalar).
	kSpan   slotKernel
	kMerge2 slotKernel
	kMerge3 slotKernel

	rotations   int64
	edgeChanges int64
	trackEdges  bool
	blockPolicy BlockPolicy

	// Per-tree rotation scratch space, owned by the rebuilds, preallocated
	// at the d=3 maximum. Serving is strictly sequential under the engine's
	// determinism contract, so a single set of buffers per tree suffices;
	// sharing them across concurrent mutators of the same tree is not
	// supported (see DESIGN.md on serve-path reentrancy).
	pathBuf [3]int32 // fragment path for edge-churn snapshots (d ≤ 3)
	scratch []int32  // interleaved in-order expansion of the fragment

	// routeBuf backs RoutePath results (grown to the longest path seen,
	// never shrunk); same single-owner, non-reentrant rules as scratch.
	routeBuf []int
}

// span returns node ix's interleaved child/threshold span of the packed
// backing array: 2k−1 entries, child slots at even offsets (0 = empty),
// strictly increasing cut-space thresholds at odd offsets.
func (t *Tree) span(ix int32) []int32 {
	w := 2*t.k - 1
	base := int(ix-1) * w
	return t.rc[base : base+w : base+w]
}

// nodeOrNil maps an arena index to its stable handle, with 0 → nil.
func (t *Tree) nodeOrNil(ix int32) *Node {
	if ix == 0 {
		return nil
	}
	return &t.nodes[ix]
}

// newArena allocates the flat node storage and the stable handle array for
// a tree of n nodes with arity k (all spans zeroed = empty).
func newArena(n, k int) *Tree {
	t := &Tree{
		k:      k,
		n:      n,
		scale:  k,
		parent: make([]int32, n+1),
		rc:     make([]int32, n*(2*k-1)),
		slot:   make([]int32, n+1),
		nodes:  make([]Node, n+1),

		scratch: make([]int32, 3*(2*k-1)-2),

		kSpan:   kernelForCount(k - 1),
		kMerge2: kernelForCount(2 * (k - 1)),
		kMerge3: kernelForCount(3 * (k - 1)),
	}
	for id := 1; id <= n; id++ {
		t.nodes[id] = Node{t: t, ix: int32(id)}
	}
	return t
}

// K returns the arity bound: every node has at most k children and at most
// k−1 routing elements.
func (t *Tree) K() int { return t.k }

// N returns the number of network nodes.
func (t *Tree) N() int { return t.n }

// Root returns the current tree root.
func (t *Tree) Root() *Node { return t.nodeOrNil(t.root) }

// NodeByID returns the node with the given identifier. It panics if id is
// outside 1..n, mirroring slice indexing semantics.
func (t *Tree) NodeByID(id int) *Node {
	if id == 0 {
		return nil
	}
	return &t.nodes[id]
}

// idValue maps an identifier into the scaled cut space in which routing
// elements live: id i sits at value i·k, leaving k−1 usable cut positions
// strictly between consecutive ids.
func (t *Tree) idValue(id int) int { return id * t.scale }

// Scale returns the cut-space scale factor (the arity k); exported for
// tooling that needs to interpret RoutingArray values in id space.
func (t *Tree) Scale() int { return t.scale }

// Rotations returns the number of rotation operations (k-semi-splay or
// k-splay steps) performed since construction or the last ResetCounters.
// Each step costs one unit in the paper's experimental cost model.
func (t *Tree) Rotations() int64 { return t.rotations }

// EdgeChanges returns the cumulative number of physical links added or
// removed by rotations. It is only maintained when edge tracking is enabled
// with SetTrackEdges (the raw adjustment cost of the paper's model, used by
// the cost-accounting ablation).
func (t *Tree) EdgeChanges() int64 { return t.edgeChanges }

// SetTrackEdges enables or disables per-rotation edge-churn accounting.
// Tracking is off by default because it allocates on every rotation.
func (t *Tree) SetTrackEdges(on bool) { t.trackEdges = on }

// ResetCounters zeroes the rotation and edge-change counters.
func (t *Tree) ResetCounters() {
	t.rotations = 0
	t.edgeChanges = 0
}

// depthIx returns the number of edges between arena index ix and the root.
func (t *Tree) depthIx(ix int32) int {
	d := 0
	for p := t.parent[ix]; p != 0; p = t.parent[p] {
		d++
	}
	return d
}

// Depth returns the number of edges between nd and the root.
func (t *Tree) Depth(nd *Node) int { return t.depthIx(nd.ix) }

// LCA returns the lowest common ancestor of a and b.
func (t *Tree) LCA(a, b *Node) *Node {
	_, w := t.DistanceLCA(a, b)
	return w
}

// Distance returns the length (in edges) of the unique routing path between
// a and b: up from the source to their lowest common ancestor and down to
// the destination.
func (t *Tree) Distance(a, b *Node) int {
	d, _ := t.DistanceLCA(a, b)
	return d
}

// DistanceLCA returns the routing-path length between a and b together with
// their lowest common ancestor, in a single fused traversal: two depth
// walks plus one synchronized climb. The self-adjusting networks need both
// values for every request (the distance is the routing cost, the LCA is
// the splay target). All three walks run over the dense parent[] index
// array — for the tree sizes the experiments serve it stays resident in L1,
// which is what this layout buys on the hot path.
func (t *Tree) DistanceLCA(a, b *Node) (int, *Node) {
	ia, ib := a.ix, b.ix
	if ia == ib {
		return 0, a
	}
	par := t.parent
	da, db := t.depthIx(ia), t.depthIx(ib)
	dist := 0
	for da > db {
		ia = par[ia]
		da--
		dist++
	}
	for db > da {
		ib = par[ib]
		db--
		dist++
	}
	for ia != ib {
		ia = par[ia]
		ib = par[ib]
		dist += 2
	}
	return dist, &t.nodes[ia]
}

// DistanceID is Distance on node identifiers.
func (t *Tree) DistanceID(u, v int) int {
	return t.Distance(t.NodeByID(u), t.NodeByID(v))
}

// Height returns the maximum node depth in the tree.
func (t *Tree) Height() int {
	h := 0
	var walk func(ix int32, d int)
	walk = func(ix int32, d int) {
		if d > h {
			h = d
		}
		sp := t.span(ix)
		for i := 0; i < len(sp); i += 2 {
			if ch := sp[i]; ch != 0 {
				walk(ch, d+1)
			}
		}
	}
	walk(t.root, 0)
	return h
}

// TotalPairDistanceUniform returns the sum of d(u,v) over all unordered node
// pairs, computed in O(n) via edge potentials: an edge splitting the tree
// into parts of size s and n−s is crossed by s·(n−s) pairs. This is the
// paper's TotalDistance for the (finite) uniform workload.
func (t *Tree) TotalPairDistanceUniform() int64 {
	var total int64
	n := int64(t.n)
	var size func(ix int32) int64
	size = func(ix int32) int64 {
		s := int64(1)
		sp := t.span(ix)
		for i := 0; i < len(sp); i += 2 {
			if ch := sp[i]; ch != 0 {
				s += size(ch)
			}
		}
		if t.parent[ix] != 0 {
			total += s * (n - s)
		}
		return s
	}
	size(t.root)
	return total
}

// AverageDepth returns the mean node depth (useful for shape diagnostics).
func (t *Tree) AverageDepth() float64 {
	var sum, cnt int64
	var walk func(ix int32, d int)
	walk = func(ix int32, d int) {
		sum += int64(d)
		cnt++
		sp := t.span(ix)
		for i := 0; i < len(sp); i += 2 {
			if ch := sp[i]; ch != 0 {
				walk(ch, d+1)
			}
		}
	}
	walk(t.root, 0)
	return float64(sum) / float64(cnt)
}

// checkIDRange verifies the basic construction parameters shared by all
// tree constructors.
func checkIDRange(n, k int) error {
	if n < 1 {
		return fmt.Errorf("core: need at least one node, got n=%d", n)
	}
	if k < 2 {
		return fmt.Errorf("core: arity must be at least 2, got k=%d", k)
	}
	return nil
}
