package core

import "fmt"

// Tree is a k-ary search tree network on nodes with identifiers 1..n.
//
// The zero value is not usable; construct trees with NewBalanced, NewPath,
// NewRandom or Build (from a Spec).
type Tree struct {
	k     int
	n     int
	scale int // cut-space scale: id i sits at value i·scale
	root  *Node
	byID  []*Node // byID[id] for id in 1..n; byID[0] unused

	rotations   int64
	edgeChanges int64
	trackEdges  bool
	blockPolicy BlockPolicy

	// Per-tree rotation scratch space, owned by rebuild and the splay
	// loops. Serving is strictly sequential under the engine's determinism
	// contract, so a single set of buffers per tree suffices; sharing them
	// across concurrent mutators of the same tree is not supported (see
	// DESIGN.md on serve-path reentrancy).
	pathBuf      [3]*Node // fragment paths for splay steps (d ≤ 3)
	scratchElems []int    // in-order routing elements of the fragment
	scratchSubs  []*Node  // hanging subtrees interleaved with the elements
	markGen      uint64   // generation counter for path-membership marks
}

// K returns the arity bound: every node has at most k children and at most
// k−1 routing elements.
func (t *Tree) K() int { return t.k }

// N returns the number of network nodes.
func (t *Tree) N() int { return t.n }

// Root returns the current tree root.
func (t *Tree) Root() *Node { return t.root }

// NodeByID returns the node with the given identifier. It panics if id is
// outside 1..n, mirroring slice indexing semantics.
func (t *Tree) NodeByID(id int) *Node { return t.byID[id] }

// idValue maps an identifier into the scaled cut space in which routing
// elements live: id i sits at value i·k, leaving k−1 usable cut positions
// strictly between consecutive ids.
func (t *Tree) idValue(id int) int { return id * t.scale }

// Scale returns the cut-space scale factor (the arity k); exported for
// tooling that needs to interpret RoutingArray values in id space.
func (t *Tree) Scale() int { return t.scale }

// Rotations returns the number of rotation operations (k-semi-splay or
// k-splay steps) performed since construction or the last ResetCounters.
// Each step costs one unit in the paper's experimental cost model.
func (t *Tree) Rotations() int64 { return t.rotations }

// EdgeChanges returns the cumulative number of physical links added or
// removed by rotations. It is only maintained when edge tracking is enabled
// with SetTrackEdges (the raw adjustment cost of the paper's model, used by
// the cost-accounting ablation).
func (t *Tree) EdgeChanges() int64 { return t.edgeChanges }

// SetTrackEdges enables or disables per-rotation edge-churn accounting.
// Tracking is off by default because it allocates on every rotation.
func (t *Tree) SetTrackEdges(on bool) { t.trackEdges = on }

// ResetCounters zeroes the rotation and edge-change counters.
func (t *Tree) ResetCounters() {
	t.rotations = 0
	t.edgeChanges = 0
}

// Depth returns the number of edges between nd and the root.
func (t *Tree) Depth(nd *Node) int {
	d := 0
	for nd.parent != nil {
		nd = nd.parent
		d++
	}
	return d
}

// LCA returns the lowest common ancestor of a and b.
func (t *Tree) LCA(a, b *Node) *Node {
	_, w := t.DistanceLCA(a, b)
	return w
}

// Distance returns the length (in edges) of the unique routing path between
// a and b: up from the source to their lowest common ancestor and down to
// the destination.
func (t *Tree) Distance(a, b *Node) int {
	d, _ := t.DistanceLCA(a, b)
	return d
}

// DistanceLCA returns the routing-path length between a and b together with
// their lowest common ancestor, in a single fused traversal: two depth
// walks plus one synchronized climb, instead of the two full Distance/LCA
// passes the serve paths used to make. The self-adjusting networks need
// both values for every request (the distance is the routing cost, the LCA
// is the splay target), so the fusion halves the pointer-chasing before
// each adjustment.
func (t *Tree) DistanceLCA(a, b *Node) (int, *Node) {
	if a == b {
		return 0, a
	}
	da, db := t.Depth(a), t.Depth(b)
	dist := 0
	for da > db {
		a = a.parent
		da--
		dist++
	}
	for db > da {
		b = b.parent
		db--
		dist++
	}
	for a != b {
		a = a.parent
		b = b.parent
		dist += 2
	}
	return dist, a
}

// DistanceID is Distance on node identifiers.
func (t *Tree) DistanceID(u, v int) int {
	return t.Distance(t.byID[u], t.byID[v])
}

// Height returns the maximum node depth in the tree.
func (t *Tree) Height() int {
	h := 0
	var walk func(nd *Node, d int)
	walk = func(nd *Node, d int) {
		if d > h {
			h = d
		}
		for _, ch := range nd.children {
			if ch != nil {
				walk(ch, d+1)
			}
		}
	}
	walk(t.root, 0)
	return h
}

// TotalPairDistanceUniform returns the sum of d(u,v) over all unordered node
// pairs, computed in O(n) via edge potentials: an edge splitting the tree
// into parts of size s and n−s is crossed by s·(n−s) pairs. This is the
// paper's TotalDistance for the (finite) uniform workload.
func (t *Tree) TotalPairDistanceUniform() int64 {
	var total int64
	n := int64(t.n)
	var size func(nd *Node) int64
	size = func(nd *Node) int64 {
		s := int64(1)
		for _, ch := range nd.children {
			if ch != nil {
				s += size(ch)
			}
		}
		if nd.parent != nil {
			total += s * (n - s)
		}
		return s
	}
	size(t.root)
	return total
}

// AverageDepth returns the mean node depth (useful for shape diagnostics).
func (t *Tree) AverageDepth() float64 {
	var sum, cnt int64
	var walk func(nd *Node, d int)
	walk = func(nd *Node, d int) {
		sum += int64(d)
		cnt++
		for _, ch := range nd.children {
			if ch != nil {
				walk(ch, d+1)
			}
		}
	}
	walk(t.root, 0)
	return float64(sum) / float64(cnt)
}

// checkIDRange verifies the basic construction parameters shared by all
// tree constructors.
func checkIDRange(n, k int) error {
	if n < 1 {
		return fmt.Errorf("core: need at least one node, got n=%d", n)
	}
	if k < 2 {
		return fmt.Errorf("core: arity must be at least 2, got k=%d", k)
	}
	return nil
}
