// Package core implements the k-ary search tree network that underlies all
// self-adjusting network designs in this repository.
//
// A k-ary search tree network (Feder et al., "Toward Self-Adjusting k-ary
// Search Tree Networks", Definition 1) is a rooted tree over n network nodes
// with identifiers 1..n. Each node stores
//
//   - its identifier (permanent: the id↔node assignment is a bijection and
//     never changes, because each tree node represents a physical network
//     node such as a top-of-rack switch), and
//   - a routing array of at most k−1 routing elements, which partitions the
//     node's key interval into at most k child intervals.
//
// Routing elements use threshold semantics: a node with strictly increasing
// thresholds t1 < t2 < ... < tm has m+1 child slots, and slot i covers the
// ids in (t(i-1), t(i)], with t0 and t(m+1) given by the node's position in
// its parent. A node's own identifier may lie strictly inside one of its
// child intervals; the subtree in that slot then simply excludes the id
// (this models the paper's remark that "the key does not necessarily belong
// in the routing array"). Greedy search from the root — compare the target
// id against the thresholds and descend — always locates every node, which
// is what makes local greedy routing possible in spite of reconfigurations.
//
// The package provides the identifier-preserving rotations of Section 4 of
// the paper (k-semi-splay and k-splay) via the generalized d-node rebuild
// described at the end of Section 4.1, plus construction, validation,
// distance/LCA queries, greedy search, and ASCII rendering.
//
// # Storage layout
//
// Node state is stored in an index-based arena of flat structure-of-arrays
// slices owned by the Tree — node id i is arena index i, with parents in
// one dense int32 array and routing/child spans packed at fixed stride
// (sound because every routing array holds exactly k−1 elements). The
// exported Node type is a stable handle into that arena, so the pointer
// API — NodeByID, Parent, Child — and identifier permanence are unchanged
// from the pointer-linked representation, while the serve hot path walks
// dense arrays and the same slices serialize directly (see Tree.Snapshot
// and DESIGN.md §9).
package core
