package core

import (
	"strings"
	"testing"
)

// parentOf returns the parent id of id, or 0.
func parentOf(t *Tree, id int) int {
	if p := t.NodeByID(id).Parent(); p != nil {
		return p.ID()
	}
	return 0
}

// buildChain3 builds the 3-node k=2 tree g→p→x (x deepest) in the given
// id order, with four leaf-free slots, for rotation shape tests.
func buildChain3(t *testing.T, gID, pID, xID int, pSlotOfG, xSlotOfP int) *Tree {
	t.Helper()
	// Construct via Spec: chain shapes on ids {1,2,3}.
	x := &Spec{ID: xID}
	var p *Spec
	if xSlotOfP == 0 {
		p = &Spec{ID: pID, Thresholds: []int{pID}, Children: []*Spec{x, nil}}
	} else {
		p = &Spec{ID: pID, Thresholds: []int{pID}, Children: []*Spec{nil, x}}
	}
	var g *Spec
	if pSlotOfG == 0 {
		g = &Spec{ID: gID, Thresholds: []int{gID}, Children: []*Spec{p, nil}}
	} else {
		g = &Spec{ID: gID, Thresholds: []int{gID}, Children: []*Spec{nil, p}}
	}
	tree, err := Build(2, g)
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestKSplayZigZigShape(t *testing.T) {
	// g=3, p=2 (left child), x=1 (left child of p): classic zig-zig makes
	// the chain 1→2→3.
	tr := buildChain3(t, 3, 2, 1, 0, 0)
	if err := tr.SplayStep(tr.NodeByID(1)); err != nil {
		t.Fatal(err)
	}
	if tr.Root().ID() != 1 {
		t.Fatalf("root is %d, want 1", tr.Root().ID())
	}
	if parentOf(tr, 2) != 1 || parentOf(tr, 3) != 2 {
		t.Errorf("zig-zig shape wrong: parent(2)=%d parent(3)=%d, want 1,2",
			parentOf(tr, 2), parentOf(tr, 3))
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestKSplayZigZagShape(t *testing.T) {
	// g=3, p=1 (left child), x=2 (right child of p): classic zig-zag makes
	// x the root with p and g as its two children.
	tr := buildChain3(t, 3, 1, 2, 0, 1)
	if err := tr.SplayStep(tr.NodeByID(2)); err != nil {
		t.Fatal(err)
	}
	if tr.Root().ID() != 2 {
		t.Fatalf("root is %d, want 2", tr.Root().ID())
	}
	if parentOf(tr, 1) != 2 || parentOf(tr, 3) != 2 {
		t.Errorf("zig-zag shape wrong: parent(1)=%d parent(3)=%d, want 2,2",
			parentOf(tr, 1), parentOf(tr, 3))
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSemiSplayZigShape(t *testing.T) {
	// p=2 root, x=1 left child: zig swaps them.
	x := &Spec{ID: 1}
	p := &Spec{ID: 2, Thresholds: []int{2}, Children: []*Spec{x, nil}}
	tr, err := Build(2, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.SemiSplay(tr.NodeByID(1)); err != nil {
		t.Fatal(err)
	}
	if tr.Root().ID() != 1 || parentOf(tr, 2) != 1 {
		t.Errorf("zig shape wrong: root=%d parent(2)=%d", tr.Root().ID(), parentOf(tr, 2))
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSplayUntilParentPanicsOnNonAncestor(t *testing.T) {
	tr := MustNewBalanced(7, 2)
	// Two leaves: neither is an ancestor of the other.
	var leaves []*Node
	for id := 1; id <= 7; id++ {
		if tr.NodeByID(id).IsLeaf() {
			leaves = append(leaves, tr.NodeByID(id))
		}
	}
	if len(leaves) < 2 {
		t.Skip("need two leaves")
	}
	defer func() {
		if recover() == nil {
			t.Error("expected a panic when stop is not an ancestor")
		}
	}()
	tr.SplayUntilParent(leaves[0], leaves[1])
}

func TestHigherAritySplayKeepsArraysFull(t *testing.T) {
	// The full-routing-array invariant is what prevents degeneration into
	// unary chains; verify it survives a long adversarial splay sequence.
	tr := MustNewBalanced(200, 6)
	for i := 0; i < 300; i++ {
		tr.SplayUntilParent(tr.NodeByID(1+(i*61)%200), nil)
	}
	for id := 1; id <= 200; id++ {
		if got := len(tr.NodeByID(id).RoutingArray()); got != 5 {
			t.Fatalf("node %d carries %d routing elements, want k-1=5", id, got)
		}
	}
	// And the tree must remain shallow-ish: no unary-chain degeneration.
	if h := tr.Height(); h > 40 {
		t.Errorf("height %d suggests chain degeneration", h)
	}
}

func TestRenderAndDOTAgreeOnEdges(t *testing.T) {
	tr := MustNewBalanced(9, 3)
	dot := tr.DOT()
	// Every parent-child pair in Parents() must appear as an edge in DOT.
	par := tr.Parents()
	for id := 1; id <= 9; id++ {
		if par[id] == 0 {
			continue
		}
		if !strings.Contains(dot, edgeStr(par[id], id)) {
			t.Errorf("edge %d->%d missing from DOT", par[id], id)
		}
	}
}

func edgeStr(a, b int) string {
	return "n" + itoa(a) + " -> n" + itoa(b) + ";"
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var digits []byte
	for v > 0 {
		digits = append([]byte{byte('0' + v%10)}, digits...)
		v /= 10
	}
	return string(digits)
}
