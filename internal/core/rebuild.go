package core

import "fmt"

// BlockPolicy selects where a rebuilt node's block of consecutive routing
// elements is placed relative to its identifier. The default, BlockCentered,
// centers the block on the id; BlockLeftmost always takes the leftmost
// feasible block (the block-placement ablation compares the two).
type BlockPolicy int

const (
	// BlockCentered centers each node's routing-element block on its id.
	BlockCentered BlockPolicy = iota
	// BlockLeftmost takes the leftmost feasible block for each node.
	BlockLeftmost
)

// SetBlockPolicy selects the block-placement strategy used by rotations.
func (t *Tree) SetBlockPolicy(p BlockPolicy) { t.blockPolicy = p }

// The rebuilds below implement the paper's generalized rotation
// (Section 4.1) for the two fragment sizes the splay loops use: merge the d
// routing arrays in in-order, then re-emit the first d-1 nodes bottom-up,
// each taking a block of consecutive routing elements whose induced gap
// covers its identifier; the final (deepest) node takes the remaining
// elements and the fragment's slot at the old parent. With d=2 this is
// k-semi-splay (the zig generalization); with d=3 it is k-splay (the
// zig-zig/zig-zag generalization).
//
// Node identifiers never change; only routing arrays and adjacency do — in
// the arena representation a rotation is pure index surgery over the
// interleaved spans. A node's span is its own in-order expansion
// (kid0 thr0 kid1 … kid(k−1)), so merging the fragment is splicing child
// spans into their slot positions — 3 (d=2) or 5 (d=3) contiguous block
// copies — and a node's re-emitted block of k−1 routing elements plus its
// k induced child slots is ONE contiguous window m[2s : 2s+2k−1] of the
// merge. Because construction pads every routing array to exactly k−1
// elements and rotations preserve fullness, every block is exactly
// full-width (blockSize(d·(k−1), d, k−1) = k−1 identically) and the fixed
// spans never need resizing.
//
// The rebuilds are allocation-free: the merge goes through a per-tree
// scratch slice preallocated at the d=3 maximum. The scratch makes a
// rebuild — and therefore Serve on every tree-backed network —
// non-reentrant per tree.
//
// Empty child slots are index 0, and the parent-update loops deliberately
// write parent[0] and slot[0] instead of branching on emptiness; index 0 of
// both arrays is a scratch cell that no reader consults (Snapshot
// normalizes parent[0]; slot is derived state and not serialized at all).
// Likewise slot[root] is written unconditionally and only consulted when
// the node actually has a parent.

// rebuild2 performs one two-node rebuild (a k-semi-splay step): x, a child
// of p, takes p's place and p is re-hung in the induced gap of x's new
// routing array.
func (t *Tree) rebuild2(p, x int32) {
	k := t.k
	w := 2*k - 1 // interleaved span width
	oldParent := t.parent[p]
	oldSlot := t.slot[p] // meaningful only when oldParent != 0
	var before map[edge]struct{}
	if t.trackEdges {
		t.pathBuf[0], t.pathBuf[1] = p, x
		before = t.fragmentEdges(t.pathBuf[:2])
	}

	spP, spX := t.span(p), t.span(x)
	c := int(t.slot[x])
	par, slot := t.parent, t.slot

	// In-order merge of the fragment: p's span with x's span spliced into
	// slot c (in-span offset 2c); mov picks scalar or memmove by span
	// length (the profile at k = 32 puts these moves at ~40% of serve
	// time, so the large-k spans must ride memmove).
	m := t.scratch[:2*w-1]
	mov(m[:2*c], spP[:2*c])
	mov(m[2*c:2*c+w], spX)
	mov(m[2*c+w:], spP[2*c+1:])

	// p takes the full-width block whose induced gap covers its id. The
	// placement search over the 2(k−1)-threshold merge runs through the
	// per-arity routing kernel — this is the threshold scan on the serve
	// hot path (every always-splay request rebuilds its whole access
	// path).
	j := t.kMerge2(m, int32(t.idValue(int(p))))
	s := blockStartAt(t.blockPolicy, j, k-1, 2*(k-1))
	mov(spP, m[2*s:2*s+w])
	for i := 0; i < w; i += 2 {
		ch := spP[i]
		par[ch] = p
		slot[ch] = int32(i / 2)
	}

	// x keeps the remainder, with p re-hung in the induced gap.
	mov(spX[:2*s], m[:2*s])
	spX[2*s] = p
	mov(spX[2*s+1:], m[2*s+w:])
	for i := 0; i < w; i += 2 {
		ch := spX[i]
		par[ch] = x
		slot[ch] = int32(i / 2)
	}

	par[x] = oldParent
	slot[x] = oldSlot
	if oldParent == 0 {
		t.root = x
	} else {
		t.span(oldParent)[2*oldSlot] = x
	}

	// Elementary-rotation accounting: one parent-child flip, exactly like
	// zig in binary splay trees.
	t.rotations++
	if t.trackEdges {
		after := t.fragmentEdges(t.pathBuf[:2])
		t.edgeChanges += int64(symmetricDiff(before, after))
	}
}

// rebuild3 performs one three-node rebuild (a k-splay step): x, a grandchild
// of g through p, moves to the top of the three-node fragment. When the two
// lower blocks end up disjoint the result matches the paper's "first case"
// (both become children of the new top); when the second block's gap
// swallows the first node's gap it matches the "second case" (a chain).
func (t *Tree) rebuild3(g, p, x int32) {
	k := t.k
	w := 2*k - 1 // interleaved span width
	oldParent := t.parent[g]
	oldSlot := t.slot[g] // meaningful only when oldParent != 0
	var before map[edge]struct{}
	if t.trackEdges {
		t.pathBuf[0], t.pathBuf[1], t.pathBuf[2] = g, p, x
		before = t.fragmentEdges(t.pathBuf[:3])
	}

	spG, spP, spX := t.span(g), t.span(p), t.span(x)
	cg := int(t.slot[p])
	cp := int(t.slot[x])
	par, slot := t.parent, t.slot

	// In-order merge: g's span with p's span spliced into slot cg, which in
	// turn holds x's span spliced into slot cp.
	m := t.scratch[:3*w-2]
	mov(m[:2*cg], spG[:2*cg])
	o := 2 * cg
	mov(m[o:o+2*cp], spP[:2*cp])
	o += 2 * cp
	mov(m[o:o+w], spX)
	o += w
	mov(m[o:o+w-2*cp-1], spP[2*cp+1:])
	o += w - 2*cp - 1
	mov(m[o:], spG[2*cg+1:])

	// g takes the first full-width block, then the merge is compacted with
	// g re-hung in its induced gap. Placement searches run through the
	// per-arity routing kernels: the 3(k−1)-threshold merge first, the
	// 2(k−1)-threshold compacted remainder below.
	j := t.kMerge3(m, int32(t.idValue(int(g))))
	s := blockStartAt(t.blockPolicy, j, k-1, 3*(k-1))
	mov(spG, m[2*s:2*s+w])
	for i := 0; i < w; i += 2 {
		ch := spG[i]
		par[ch] = g
		slot[ch] = int32(i / 2)
	}
	m[2*s] = g
	mov(m[2*s+1:], m[2*s+w:])
	m = m[:2*w-1]

	// p takes the next block from the remainder.
	j = t.kMerge2(m, int32(t.idValue(int(p))))
	s = blockStartAt(t.blockPolicy, j, k-1, 2*(k-1))
	mov(spP, m[2*s:2*s+w])
	for i := 0; i < w; i += 2 {
		ch := spP[i]
		par[ch] = p
		slot[ch] = int32(i / 2)
	}

	// x keeps the rest, with p re-hung in the induced gap.
	mov(spX[:2*s], m[:2*s])
	spX[2*s] = p
	mov(spX[2*s+1:], m[2*s+w:])
	for i := 0; i < w; i += 2 {
		ch := spX[i]
		par[ch] = x
		slot[ch] = int32(i / 2)
	}

	par[x] = oldParent
	slot[x] = oldSlot
	if oldParent == 0 {
		t.root = x
	} else {
		t.span(oldParent)[2*oldSlot] = x
	}

	// A three-node rebuild lifts the deepest node two levels: the work of
	// two parent-child flips, exactly like zig-zig/zig-zag in binary splay
	// trees.
	t.rotations += 2
	if t.trackEdges {
		after := t.fragmentEdges(t.pathBuf[:3])
		t.edgeChanges += int64(symmetricDiff(before, after))
	}
}

// SemiSplay performs one k-semi-splay rotation: y, a non-root node, becomes
// the parent of its current parent. It returns an error if y is the root.
func (t *Tree) SemiSplay(y *Node) error {
	p := t.parent[y.ix]
	if p == 0 {
		return fmt.Errorf("core: cannot semi-splay the root (node %d)", y.ix)
	}
	t.rebuild2(p, y.ix)
	return nil
}

// SplayStep performs one k-splay rotation: z, a node with a grandparent,
// moves to the top of the three-node fragment (grandparent, parent, z).
func (t *Tree) SplayStep(z *Node) error {
	p := t.parent[z.ix]
	if p == 0 || t.parent[p] == 0 {
		return fmt.Errorf("core: k-splay needs a grandparent (node %d)", z.ix)
	}
	t.rebuild3(t.parent[p], p, z.ix)
	return nil
}

// blockSize picks the number of routing elements the next rebuilt node
// takes: balanced across the remaining nodes, but always leaving at most
// maxB elements for the nodes still to be placed (feasibility) and never
// exceeding maxB itself. With full routing arrays (avail = rem·maxB) it is
// identically maxB — the specialized rebuilds above rely on exactly that;
// the pointer-reference differential test exercises the general form.
func blockSize(avail, remNodes, maxB int) int {
	b := (avail + remNodes - 1) / remNodes // ceil: balanced share
	if lo := avail - maxB*(remNodes-1); b < lo {
		b = lo
	}
	if b > maxB {
		b = maxB
	}
	if b > avail {
		b = avail
	}
	if b < 0 {
		b = 0
	}
	return b
}

// intervalIndex returns the index of the interval of the sorted element
// array that contains the cut-space value under threshold semantics: the
// number of elements strictly less than the value. (The pointer-reference
// differential test shares it.)
func intervalIndex(elems []int, value int) int {
	j := 0
	for _, e := range elems {
		if e < value {
			j++
		}
	}
	return j
}

// movCopyMin is the element count from which mov routes through copy()
// (runtime.memmove) instead of the scalar loop. gc does not vectorize the
// scalar loop, so it moves 4 bytes per iteration while memmove moves whole
// vector registers; only for the very shortest spans does the memmove call
// overhead lose to a handful of scalar stores. BenchmarkMov measures the
// crossover on the exact lengths the rebuilds move: scalar wins at n=3
// (1.7 vs 2.2 ns), copy wins from n=9 up (2.7 vs 7.6 ns) and by n=63 — the
// k=32 span, where these moves are ~40% of serve time — is ~8× faster
// (4.7 vs 36.1 ns). 4 keeps the k=2 span and sub-span slivers scalar and
// routes everything else through memmove.
const movCopyMin = 4

// mov copies src into dst[:len(src)]: a forward scalar loop for short
// spans, copy() beyond movCopyMin. Both forms handle the one overlapping
// use (the d=3 compaction shifts left — forward scalar order is safe, and
// copy is memmove).
func mov(dst, src []int32) {
	if len(src) >= movCopyMin {
		copy(dst, src)
		return
	}
	_ = dst[:len(src)]
	for i := 0; i < len(src); i++ {
		dst[i] = src[i]
	}
}

// blockStartAt chooses the starting index of a b-element block such that the
// induced gap (the merged interval left after removing the block) contains
// the id sitting in interval j. Feasible starts are [max(0,j-b), min(j,L-b)].
// It is a pure function of the policy so the arena rebuild and the
// pointer-reference differential test share one implementation.
func blockStartAt(policy BlockPolicy, j, b, L int) int {
	lo := j - b
	if lo < 0 {
		lo = 0
	}
	hi := j
	if hi > L-b {
		hi = L - b
	}
	if policy == BlockLeftmost {
		return lo
	}
	s := j - b/2
	if s < lo {
		s = lo
	}
	if s > hi {
		s = hi
	}
	return s
}

type edge struct{ parent, child int }

// fragmentEdges snapshots the parent-child links incident to the fragment:
// the links from each path node to its children and to its parent (0 when
// the node is the tree root).
func (t *Tree) fragmentEdges(path []int32) map[edge]struct{} {
	set := make(map[edge]struct{}, len(path)*t.k)
	for _, ix := range path {
		sp := t.span(ix)
		for i := 0; i < len(sp); i += 2 {
			if ch := sp[i]; ch != 0 {
				set[edge{int(ix), int(ch)}] = struct{}{}
			}
		}
		set[edge{int(t.parent[ix]), int(ix)}] = struct{}{}
	}
	return set
}

func symmetricDiff(a, b map[edge]struct{}) int {
	d := 0
	for e := range a {
		if _, ok := b[e]; !ok {
			d++
		}
	}
	for e := range b {
		if _, ok := a[e]; !ok {
			d++
		}
	}
	return d
}
