package core

import "fmt"

// BlockPolicy selects where a rebuilt node's block of consecutive routing
// elements is placed relative to its identifier. The default, BlockCentered,
// centers the block on the id; BlockLeftmost always takes the leftmost
// feasible block (the block-placement ablation compares the two).
type BlockPolicy int

const (
	// BlockCentered centers each node's routing-element block on its id.
	BlockCentered BlockPolicy = iota
	// BlockLeftmost takes the leftmost feasible block for each node.
	BlockLeftmost
)

// SetBlockPolicy selects the block-placement strategy used by rotations.
func (t *Tree) SetBlockPolicy(p BlockPolicy) { t.blockPolicy = p }

// rebuild restructures the fragment consisting of the parent-child path
// path[0] (topmost) … path[d-1] (deepest) so that the deepest node becomes
// the fragment root, implementing the paper's generalized rotation
// (Section 4.1): merge the d routing arrays in in-order, then re-emit the
// first d-1 nodes bottom-up, each taking a block of consecutive routing
// elements whose induced gap covers its identifier; the final node takes
// the remaining elements and the fragment's slot at the old parent.
//
// With d=2 this is k-semi-splay (the zig generalization); with d=3 it is
// k-splay (the zig-zig/zig-zag generalization): when the two lower blocks
// end up disjoint the result matches the paper's "first case" (both become
// children of the new top), and when the second block's gap swallows the
// first node's gap it matches the "second case" (a chain).
//
// Node identifiers never change; only routing arrays and adjacency do.
//
// rebuild is allocation-free in steady state: the in-order expansion goes
// into per-tree scratch buffers, path membership is answered by generation
// marks instead of a per-call set, and each node's thresholds/children
// backing arrays are recycled (construction pads every routing array to
// exactly k−1 elements and rotations preserve that, so the recycled
// capacity never has to grow). The scratch buffers make rebuild — and
// therefore Serve on every tree-backed network — non-reentrant per tree.
func (t *Tree) rebuild(path []*Node) {
	d := len(path)
	if d < 2 {
		return
	}
	top := path[0]
	oldParent := top.parent
	oldSlot := -1
	if oldParent != nil {
		oldSlot = oldParent.childIndex(top)
	}

	// In-order expansion of the fragment: routing elements interleaved with
	// hanging subtrees. Path nodes are expanded inline; everything else is
	// an atomic hanging subtree (possibly nil for an empty slot).
	t.markGen++
	for _, nd := range path {
		nd.mark = t.markGen
	}
	t.scratchElems = t.scratchElems[:0]
	t.scratchSubs = t.scratchSubs[:0]
	t.expandFragment(top)
	elems := t.scratchElems
	subs := t.scratchSubs

	var before map[edge]struct{}
	if t.trackEdges {
		before = t.fragmentEdges(path)
	}

	// Bottom-up reconstruction: path[0..d-2] become interior/leaf nodes of
	// the fragment; path[d-1] becomes the fragment root. The nodes' slice
	// capacities are reused; the copies out of the scratch buffers are safe
	// because expandFragment already detached the values from the nodes.
	for i := 0; i < d-1; i++ {
		x := path[i]
		remNodes := d - i
		b := blockSize(len(elems), remNodes, t.k-1)
		j := intervalIndex(elems, t.idValue(x.id))
		s := t.blockStart(j, b, len(elems))

		x.thresholds = append(x.thresholds[:0], elems[s:s+b]...)
		x.children = append(x.children[:0], subs[s:s+b+1]...)
		for _, ch := range x.children {
			if ch != nil {
				ch.parent = x
			}
		}
		elems = append(elems[:s], elems[s+b:]...)
		subs[s] = x
		subs = append(subs[:s+1], subs[s+b+1:]...)
	}
	newTop := path[d-1]
	newTop.thresholds = append(newTop.thresholds[:0], elems...)
	newTop.children = append(newTop.children[:0], subs...)
	for _, ch := range newTop.children {
		if ch != nil {
			ch.parent = newTop
		}
	}
	newTop.parent = oldParent
	if oldParent == nil {
		t.root = newTop
	} else {
		oldParent.children[oldSlot] = newTop
	}

	// Elementary-rotation accounting: a d-node rebuild lifts the deepest
	// node d-1 levels, the work of d-1 parent-child flips (a k-semi-splay
	// counts 1, a k-splay counts 2, exactly like zig vs zig-zig/zig-zag in
	// binary splay trees).
	t.rotations += int64(d - 1)
	if t.trackEdges {
		after := t.fragmentEdges(path)
		t.edgeChanges += int64(symmetricDiff(before, after))
	}
}

// expandFragment emits the in-order expansion of the fragment rooted at nd
// into the tree's scratch buffers. Nodes marked with the current rebuild
// generation are on the fragment path and expand inline; everything else is
// an atomic hanging subtree (possibly nil for an empty slot).
func (t *Tree) expandFragment(nd *Node) {
	for i, ch := range nd.children {
		if i > 0 {
			t.scratchElems = append(t.scratchElems, nd.thresholds[i-1])
		}
		if ch != nil && ch.mark == t.markGen {
			t.expandFragment(ch)
		} else {
			t.scratchSubs = append(t.scratchSubs, ch)
		}
	}
}

// rebuild2 performs one two-node rebuild (a k-semi-splay step) through the
// tree's fragment-path scratch buffer, avoiding a slice literal per step.
func (t *Tree) rebuild2(p, x *Node) {
	t.pathBuf[0], t.pathBuf[1] = p, x
	t.rebuild(t.pathBuf[:2])
}

// rebuild3 performs one three-node rebuild (a k-splay step) through the
// tree's fragment-path scratch buffer.
func (t *Tree) rebuild3(g, p, x *Node) {
	t.pathBuf[0], t.pathBuf[1], t.pathBuf[2] = g, p, x
	t.rebuild(t.pathBuf[:3])
}

// SemiSplay performs one k-semi-splay rotation: y, a non-root node, becomes
// the parent of its current parent. It returns an error if y is the root.
func (t *Tree) SemiSplay(y *Node) error {
	if y.parent == nil {
		return fmt.Errorf("core: cannot semi-splay the root (node %d)", y.id)
	}
	t.rebuild2(y.parent, y)
	return nil
}

// SplayStep performs one k-splay rotation: z, a node with a grandparent,
// moves to the top of the three-node fragment (grandparent, parent, z).
func (t *Tree) SplayStep(z *Node) error {
	if z.parent == nil || z.parent.parent == nil {
		return fmt.Errorf("core: k-splay needs a grandparent (node %d)", z.id)
	}
	t.rebuild3(z.parent.parent, z.parent, z)
	return nil
}

// blockSize picks the number of routing elements the next rebuilt node
// takes: balanced across the remaining nodes, but always leaving at most
// maxB elements for the nodes still to be placed (feasibility) and never
// exceeding maxB itself.
func blockSize(avail, remNodes, maxB int) int {
	b := (avail + remNodes - 1) / remNodes // ceil: balanced share
	if lo := avail - maxB*(remNodes-1); b < lo {
		b = lo
	}
	if b > maxB {
		b = maxB
	}
	if b > avail {
		b = avail
	}
	if b < 0 {
		b = 0
	}
	return b
}

// intervalIndex returns the index of the interval of the sorted element
// array that contains the cut-space value under threshold semantics: the
// number of elements strictly less than the value.
func intervalIndex(elems []int, value int) int {
	j := 0
	for _, e := range elems {
		if e < value {
			j++
		}
	}
	return j
}

// blockStart chooses the starting index of a b-element block such that the
// induced gap (the merged interval left after removing the block) contains
// the id sitting in interval j. Feasible starts are [max(0,j-b), min(j,L-b)].
func (t *Tree) blockStart(j, b, L int) int {
	lo := j - b
	if lo < 0 {
		lo = 0
	}
	hi := j
	if hi > L-b {
		hi = L - b
	}
	if t.blockPolicy == BlockLeftmost {
		return lo
	}
	s := j - b/2
	if s < lo {
		s = lo
	}
	if s > hi {
		s = hi
	}
	return s
}

type edge struct{ parent, child int }

// fragmentEdges snapshots the parent-child links incident to the fragment:
// the links from each path node to its children and to its parent (0 when
// the node is the tree root).
func (t *Tree) fragmentEdges(path []*Node) map[edge]struct{} {
	set := make(map[edge]struct{}, len(path)*t.k)
	for _, nd := range path {
		for _, ch := range nd.children {
			if ch != nil {
				set[edge{nd.id, ch.id}] = struct{}{}
			}
		}
		pid := 0
		if nd.parent != nil {
			pid = nd.parent.id
		}
		set[edge{pid, nd.id}] = struct{}{}
	}
	return set
}

func symmetricDiff(a, b map[edge]struct{}) int {
	d := 0
	for e := range a {
		if _, ok := b[e]; !ok {
			d++
		}
	}
	for e := range b {
		if _, ok := a[e]; !ok {
			d++
		}
	}
	return d
}
