package core

import (
	"strings"
	"testing"
)

func TestRenderShowsAllNodes(t *testing.T) {
	tr := MustNewBalanced(13, 3)
	out := tr.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 13 {
		t.Fatalf("render has %d lines, want 13:\n%s", len(lines), out)
	}
	// The balanced root follows its first child's subtree: sizes [4,4,4]
	// put the root at id 5.
	if !strings.HasPrefix(lines[0], "5") {
		t.Errorf("first line %q should be the root", lines[0])
	}
}

func TestRenderFractionalCuts(t *testing.T) {
	// Leaf padding cuts are fractional in id space and must render with a
	// decimal point.
	tr := MustNewBalanced(7, 2)
	out := tr.Render()
	if !strings.Contains(out, ".5") {
		t.Errorf("expected fractional padding cuts in render:\n%s", out)
	}
}

func TestDOTWellFormed(t *testing.T) {
	tr := MustNewBalanced(10, 2)
	dot := tr.DOT()
	if !strings.HasPrefix(dot, "digraph ksan {") || !strings.HasSuffix(dot, "}\n") {
		t.Fatalf("malformed dot output:\n%s", dot)
	}
	// n nodes and n-1 edges.
	if got := strings.Count(dot, "label="); got != 10 {
		t.Errorf("%d node labels, want 10", got)
	}
	if got := strings.Count(dot, "->"); got != 9 {
		t.Errorf("%d edges, want 9", got)
	}
}

func TestSearchFromRootRejectsOutOfRange(t *testing.T) {
	tr := MustNewBalanced(5, 2)
	if _, err := tr.SearchFromRoot(0); err == nil {
		t.Error("id 0 accepted")
	}
	if _, err := tr.SearchFromRoot(6); err == nil {
		t.Error("id beyond n accepted")
	}
}

func TestSearchFromRootSelf(t *testing.T) {
	tr := MustNewBalanced(9, 3)
	root := tr.Root().ID()
	path, err := tr.SearchFromRoot(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 1 || path[0] != root {
		t.Errorf("search for the root returned %v", path)
	}
}

func TestRoutePathAfterAdjustments(t *testing.T) {
	// RoutePath must stay consistent with Distance while the tree churns.
	tr := MustNewBalanced(40, 3)
	for i := 0; i < 50; i++ {
		u := 1 + (i*11)%40
		v := 1 + (i*17+5)%40
		if u == v {
			continue
		}
		a, b := tr.NodeByID(u), tr.NodeByID(v)
		w := tr.LCA(a, b)
		tr.SplayUntilParent(a, w.Parent())
		if b != a {
			tr.SplayUntilParent(b, a)
		}
		p := tr.RoutePath(u, v)
		if len(p)-1 != tr.DistanceID(u, v) {
			t.Fatalf("route path %v inconsistent with distance %d", p, tr.DistanceID(u, v))
		}
	}
}

func TestNodeAccessors(t *testing.T) {
	tr := MustNewBalanced(13, 3)
	root := tr.Root()
	if root.Parent() != nil {
		t.Error("root has a parent")
	}
	if got := len(root.RoutingArray()); got != 2 {
		t.Errorf("root routing array has %d entries, want k-1=2", got)
	}
	if root.IsLeaf() {
		t.Error("root of a 13-node tree is a leaf")
	}
	if root.Degree() != root.ChildCount() {
		t.Error("root degree must equal its child count")
	}
	// RoutingArray must be a copy: mutating it must not corrupt the tree.
	ra := root.RoutingArray()
	ra[0] = -999
	if err := tr.Validate(); err != nil {
		t.Fatalf("mutating the RoutingArray copy corrupted the tree: %v", err)
	}
	// A leaf's degree counts only the parent link.
	var leaf *Node
	for id := 1; id <= 13; id++ {
		if tr.NodeByID(id).IsLeaf() {
			leaf = tr.NodeByID(id)
			break
		}
	}
	if leaf.Degree() != 1 {
		t.Errorf("leaf degree %d, want 1", leaf.Degree())
	}
}

func TestDegreeBoundedByKPlusOne(t *testing.T) {
	// The physical degree bound that motivates bounded-degree SANs: at most
	// k children plus one parent.
	tr := MustNewBalanced(100, 4)
	for i := 0; i < 60; i++ {
		x := tr.NodeByID(1 + (i*37)%100)
		tr.SplayUntilParent(x, nil)
	}
	for id := 1; id <= 100; id++ {
		if d := tr.NodeByID(id).Degree(); d > 5 {
			t.Fatalf("node %d degree %d exceeds k+1", id, d)
		}
	}
}

func TestScaleAccessor(t *testing.T) {
	tr := MustNewBalanced(10, 7)
	if tr.Scale() != 7 {
		t.Errorf("Scale()=%d, want k", tr.Scale())
	}
}
