package core

import (
	"fmt"
	"math"
)

// Spec is a declarative description of a k-ary search tree used by the
// static builders (full tree, DP optimum, centroid tree) and by tests.
// Thresholds are given in id space (a threshold t means "ids ≤ t go left of
// this boundary"); Children has len(Thresholds)+1 entries (nil entries
// denote empty slots). As a convenience a leaf may leave Children nil.
//
// Build converts thresholds into the tree's internal scaled cut space and
// pads every routing array to exactly k−1 elements (see Build).
type Spec struct {
	ID         int
	Thresholds []int
	Children   []*Spec
}

// Build materializes a Spec into a Tree with arity bound k, verifying the
// search property and that the identifiers are exactly 1..n.
//
// Internally, routing elements are cuts in a value space scaled by k: id i
// sits at value i·k, and a spec threshold t becomes the cut t·k. Every node
// is then padded to exactly k−1 routing elements with cuts placed in the
// empty sliver just below the node's own id value (which never separates
// two ids, because ids are k apart in cut space). Full routing arrays match
// the paper's node model (Fig. 1) and are preserved by rotations, which
// redistribute but never consume routing elements — and they are what makes
// the arena's fixed-stride threshold/child spans sound.
//
// Build allocates the whole arena up front (a handful of flat slices
// instead of one heap object per node), so spec materialization — including
// the DP solver's result construction and every lazy-rebuild tree swap —
// costs O(1) allocations in the node count.
func Build(k int, spec *Spec) (*Tree, error) {
	if spec == nil {
		return nil, fmt.Errorf("core: nil spec")
	}
	n := countSpec(spec)
	if err := checkIDRange(n, k); err != nil {
		return nil, err
	}
	if n > math.MaxInt32/k {
		return nil, fmt.Errorf("core: n·k = %d·%d overflows the int32 cut space", n, k)
	}
	t := newArena(n, k)
	seen := make([]bool, n+1)
	root, err := t.buildSpec(spec, 0, 0, n*k, seen)
	if err != nil {
		return nil, err
	}
	t.root = root
	for id := 1; id <= n; id++ {
		if !seen[id] {
			return nil, fmt.Errorf("core: spec is missing id %d", id)
		}
	}
	return t, nil
}

// MustBuild is Build for specs known to be valid; it panics on error.
func MustBuild(k int, spec *Spec) *Tree {
	t, err := Build(k, spec)
	if err != nil {
		panic(err)
	}
	return t
}

func countSpec(s *Spec) int {
	if s == nil {
		return 0
	}
	n := 1
	for _, ch := range s.Children {
		n += countSpec(ch)
	}
	return n
}

// specIDRange returns the minimum and maximum id in the spec subtree.
func specIDRange(s *Spec) (lo, hi int) {
	lo, hi = s.ID, s.ID
	for _, ch := range s.Children {
		if ch == nil {
			continue
		}
		clo, chi := specIDRange(ch)
		if clo < lo {
			lo = clo
		}
		if chi > hi {
			hi = chi
		}
	}
	return lo, hi
}

// buildSpec fills in the arena state for s, whose slot covers the cut-space
// interval (lo, hi], and returns the node's arena index.
func (t *Tree) buildSpec(s *Spec, parent int32, lo, hi int, seen []bool) (int32, error) {
	iv := s.ID * t.scale
	if s.ID < 1 || s.ID > t.n {
		return 0, fmt.Errorf("core: id %d out of range 1..%d", s.ID, t.n)
	}
	if iv <= lo || iv > hi {
		return 0, fmt.Errorf("core: id %d outside its slot interval", s.ID)
	}
	if seen[s.ID] {
		return 0, fmt.Errorf("core: duplicate id %d", s.ID)
	}
	if len(s.Thresholds) > t.k-1 {
		return 0, fmt.Errorf("core: node %d has %d routing elements, max is %d", s.ID, len(s.Thresholds), t.k-1)
	}
	children := s.Children
	if children == nil {
		children = make([]*Spec, len(s.Thresholds)+1)
	}
	if len(children) != len(s.Thresholds)+1 {
		return 0, fmt.Errorf("core: node %d has %d thresholds but %d child slots", s.ID, len(s.Thresholds), len(children))
	}

	// Scale the spec thresholds and validate monotonicity within (lo, hi].
	ths := make([]int, len(s.Thresholds))
	prev := lo
	for i, th := range s.Thresholds {
		v := th * t.scale
		if v <= prev {
			return 0, fmt.Errorf("core: node %d thresholds not strictly increasing within its interval", s.ID)
		}
		if v > hi {
			return 0, fmt.Errorf("core: node %d threshold %d exceeds its interval", s.ID, th)
		}
		ths[i] = v
		prev = v
	}

	// Pad the routing array to exactly k−1 cuts using the empty sliver just
	// below the node's own id value: cuts iv−p .. iv−1 contain no id points
	// (ids are t.scale apart), so they only carve empty slots.
	pad := t.k - 1 - len(ths)
	if pad > 0 {
		// The pad-point search is the same strictly-less threshold count
		// the routing kernels compute; construction is cold, so it uses
		// the shared scalar reference (intervalIndex) the kernels are
		// differentially pinned against.
		j := intervalIndex(ths, iv)
		// The slot j currently covers (ths[j-1], ths[j]] and contains iv.
		// Decide on which side of the pads its child belongs.
		var side int // -1: ids below the node id; +1: above; 0: empty slot
		if ch := children[j]; ch != nil {
			clo, chi := specIDRange(ch)
			switch {
			case chi < s.ID:
				side = -1
			case clo > s.ID:
				side = +1
			default:
				return 0, fmt.Errorf("core: node %d cannot pad its routing array: child slot %d spans ids %d..%d across the node id", s.ID, j, clo, chi)
			}
		}
		newThs := make([]int, 0, t.k-1)
		newChs := make([]*Spec, 0, t.k)
		newThs = append(newThs, ths[:j]...)
		newChs = append(newChs, children[:j]...)
		if side <= 0 {
			newChs = append(newChs, children[j]) // original child left of pads
		} else {
			newChs = append(newChs, nil)
		}
		for p := pad; p >= 1; p-- {
			newThs = append(newThs, iv-p)
			if p > 1 {
				newChs = append(newChs, nil)
			}
		}
		if side > 0 {
			newChs = append(newChs, children[j]) // original child right of pads
		} else {
			newChs = append(newChs, nil)
		}
		newThs = append(newThs, ths[j:]...)
		newChs = append(newChs, children[j+1:]...)
		ths, children = newThs, newChs
	}

	ix := int32(s.ID)
	seen[s.ID] = true
	t.parent[ix] = parent
	sp := t.span(ix)
	for i, v := range ths {
		sp[2*i+1] = int32(v)
	}
	slotLo := lo
	for i, chSpec := range children {
		slotHi := hi
		if i < len(ths) {
			slotHi = ths[i]
		}
		if chSpec != nil {
			if slotLo >= slotHi {
				return 0, fmt.Errorf("core: node %d has a child in an empty slot", s.ID)
			}
			ch, err := t.buildSpec(chSpec, ix, slotLo, slotHi, seen)
			if err != nil {
				return 0, err
			}
			sp[2*i] = ch
			t.slot[ch] = int32(i)
		}
		slotLo = slotHi
	}
	return ix, nil
}
