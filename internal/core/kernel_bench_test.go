package core

import (
	"fmt"
	"math/rand"
	"testing"
)

// benchFragment builds one interleaved fragment with c ascending
// thresholds (the arena layout: children at even offsets, thresholds at
// odd offsets) plus the matching deinterleaved plane, and a probe-value
// stream whose answers are uniform over the slots — the worst case for
// the early-exit scan's branch predictor and the average case for
// routing.
func benchFragment(c int, rng *rand.Rand) (m []int32, plane []int32, values []int32) {
	m = make([]int32, 2*c+1)
	plane = make([]int32, c)
	v := int32(0)
	for i := 0; i < c; i++ {
		v += 1 + rng.Int31n(64)
		m[2*i+1] = v
		plane[i] = v
	}
	// A long probe stream (1M values, power-of-two length so the cycling
	// index is a mask) keeps the measurement honest: with a short cycle a
	// modern branch predictor memorizes the early-exit scan's exit points
	// and the scalar baseline benchmarks far below its real serve-path
	// cost, where probe values do not repeat.
	values = make([]int32, 1<<20)
	for i := range values {
		values[i] = rng.Int31n(v + 64)
	}
	return m, plane, values
}

// BenchmarkSlotFor is the microbenchmark grid behind the kernel selection
// and the §13 layout decision record: every kernel family × the threshold
// counts that actually occur at served arities (c = k−1 node spans for
// k ∈ {2,5,8,16,32}, and 2(k−1)/3(k−1) rebuild merges). The sink defeats
// dead-code elimination; the value stream cycles so each probe's slot is
// unpredictable.
func BenchmarkSlotFor(b *testing.B) {
	var sink int
	for _, c := range []int{1, 4, 7, 8, 14, 15, 21, 31, 62, 93} {
		rng := rand.New(rand.NewSource(int64(c)))
		m, plane, values := benchFragment(c, rng)
		run := func(name string, fn func(i int) int) {
			b.Run(fmt.Sprintf("c=%d/%s", c, name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					sink += fn(i)
				}
			})
		}
		kern := kernelForCount(c)
		run("scalar", func(i int) int { return slotScalar(m, values[i%len(values)]) })
		run("kernel", func(i int) int { return kern(m, values[i%len(values)]) })
		run("swar", func(i int) int { return slotSWAR(m, values[i%len(values)]) })
		run("swarpop", func(i int) int { return slotSWARPopcount(m, values[i%len(values)]) })
		run("bisect", func(i int) int { return slotBisect(m, values[i%len(values)]) })
		run("plane-scalar", func(i int) int { return slotScalarPlane(plane, values[i%len(values)]) })
		run("plane-branchless", func(i int) int { return slotBranchlessPlane(plane, values[i%len(values)]) })
		run("plane-swar", func(i int) int { return slotSWARPlane(plane, values[i%len(values)]) })
		run("plane-bisect", func(i int) int { return slotBisectPlane(plane, values[i%len(values)]) })
	}
	if sink == 1<<62 {
		b.Log(sink) // keep the accumulator live
	}
}

// BenchmarkMov races the rebuilds' two span-move strategies — the scalar
// int32 loop and copy()/memmove — on the exact lengths the rebuilds move:
// node spans 2k−1 and the d=2/d=3 merge fragments for the served arities.
// The crossover it measures sets movCopyMin (rebuild.go).
func BenchmarkMov(b *testing.B) {
	for _, n := range []int{3, 9, 15, 17, 29, 31, 45, 63, 93, 125, 187} {
		src := make([]int32, n)
		dst := make([]int32, n)
		for i := range src {
			src[i] = int32(i)
		}
		b.Run(fmt.Sprintf("n=%d/scalar", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = dst[:len(src)]
				for j := 0; j < len(src); j++ {
					dst[j] = src[j]
				}
			}
		})
		b.Run(fmt.Sprintf("n=%d/copy", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				copy(dst, src)
			}
		})
		b.Run(fmt.Sprintf("n=%d/mov", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mov(dst, src)
			}
		})
	}
}
