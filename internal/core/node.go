package core

// Node is a handle to a single network node participating in a k-ary search
// tree topology. The identifier is permanent; the routing array (thresholds)
// and adjacency (parent/children) change under rotations.
//
// Since PR 6 the node state itself lives in flat structure-of-arrays slices
// owned by the Tree (see tree.go); a Node is an (owner, index) handle into
// that arena. Handles are allocated once per tree in a stable backing array,
// so the *Node returned by NodeByID is pointer-identical across rotations —
// exactly the identifier-permanence contract the pointer-linked
// representation provided.
//
// Invariant: every node of a built tree carries exactly k−1 routing elements
// and k child slots (construction pads routing arrays; rotations preserve
// fullness). Child slots may hold nil when the corresponding key interval
// contains no ids.
type Node struct {
	t  *Tree
	ix int32 // node index in the arena == the permanent identifier
}

// ID returns the node's permanent identifier.
func (nd *Node) ID() int { return int(nd.ix) }

// Parent returns the node's current parent, or nil for the tree root.
func (nd *Node) Parent() *Node { return nd.t.nodeOrNil(nd.t.parent[nd.ix]) }

// RoutingArray returns a copy of the node's current routing elements in
// increasing order. The slice has exactly k−1 entries.
func (nd *Node) RoutingArray() []int {
	sp := nd.t.span(nd.ix)
	out := make([]int, nd.t.k-1)
	for i := range out {
		out[i] = int(sp[2*i+1])
	}
	return out
}

// NumSlots returns the number of child slots (len(routing array)+1).
func (nd *Node) NumSlots() int { return nd.t.k }

// Child returns the child in slot i, which may be nil.
func (nd *Node) Child(i int) *Node { return nd.t.nodeOrNil(nd.t.span(nd.ix)[2*i]) }

// ChildCount returns the number of non-nil children.
func (nd *Node) ChildCount() int {
	c := 0
	sp := nd.t.span(nd.ix)
	for i := 0; i < len(sp); i += 2 {
		if sp[i] != 0 {
			c++
		}
	}
	return c
}

// IsLeaf reports whether the node currently has no children.
func (nd *Node) IsLeaf() bool { return nd.ChildCount() == 0 }

// Degree returns the node's degree in the underlying (undirected) network
// topology: its child count plus one for the parent link, if any.
func (nd *Node) Degree() int {
	d := nd.ChildCount()
	if nd.t.parent[nd.ix] != 0 {
		d++
	}
	return d
}

// slotFor returns the child slot index that the search property assigns to
// the target cut-space value at node ix: the number of thresholds strictly
// less than the value, so that it falls in the interval (t(slot-1), t(slot)].
// The search runs through the tree's per-arity routing kernel (kernel.go):
// branchless comparison counting instead of an early-exit scan.
func (t *Tree) slotFor(ix int32, value int32) int {
	return t.kSpan(t.span(ix), value)
}
