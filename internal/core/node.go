package core

// Node is a single network node participating in a k-ary search tree
// topology. The identifier is permanent; the routing array (thresholds) and
// adjacency (parent/children) change under rotations.
//
// Invariant: len(children) == len(thresholds)+1. Child slots may hold nil
// when the corresponding key interval contains no ids.
type Node struct {
	id         int
	parent     *Node
	thresholds []int
	children   []*Node
	// mark is the rebuild generation that last placed this node on a
	// rotation fragment path; comparing it against the tree's generation
	// counter answers path membership in O(1) without per-rebuild
	// bookkeeping allocations.
	mark uint64
}

// ID returns the node's permanent identifier.
func (nd *Node) ID() int { return nd.id }

// Parent returns the node's current parent, or nil for the tree root.
func (nd *Node) Parent() *Node { return nd.parent }

// RoutingArray returns a copy of the node's current routing elements in
// increasing order. The slice has at most k−1 entries.
func (nd *Node) RoutingArray() []int {
	out := make([]int, len(nd.thresholds))
	copy(out, nd.thresholds)
	return out
}

// NumSlots returns the number of child slots (len(routing array)+1).
func (nd *Node) NumSlots() int { return len(nd.children) }

// Child returns the child in slot i, which may be nil.
func (nd *Node) Child(i int) *Node { return nd.children[i] }

// ChildCount returns the number of non-nil children.
func (nd *Node) ChildCount() int {
	c := 0
	for _, ch := range nd.children {
		if ch != nil {
			c++
		}
	}
	return c
}

// IsLeaf reports whether the node currently has no children.
func (nd *Node) IsLeaf() bool { return nd.ChildCount() == 0 }

// Degree returns the node's degree in the underlying (undirected) network
// topology: its child count plus one for the parent link, if any.
func (nd *Node) Degree() int {
	d := nd.ChildCount()
	if nd.parent != nil {
		d++
	}
	return d
}

// slotFor returns the child slot index that the search property assigns to
// the target cut-space value: the number of thresholds strictly less than
// the value, so that it falls in the interval (t(slot-1), t(slot)].
func (nd *Node) slotFor(value int) int {
	s := 0
	for _, t := range nd.thresholds {
		if t < value {
			s++
		}
	}
	return s
}

// childIndex returns the slot currently occupied by child c, or -1.
func (nd *Node) childIndex(c *Node) int {
	for i, ch := range nd.children {
		if ch == c {
			return i
		}
	}
	return -1
}
