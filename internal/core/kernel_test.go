package core

import (
	"math/rand"
	"sort"
	"testing"
)

// kernelVariants enumerates every interleaved-span kernel family member
// that must agree with slotScalar, including the selected-per-count
// dispatch result. minC is the smallest threshold count a variant is
// defined for (the unrolled kernels read fixed offsets).
type kernelVariant struct {
	name string
	fn   slotKernel
	minC int
}

func interleavedVariants(c int) []kernelVariant {
	vs := []kernelVariant{
		{"kernelForCount", kernelForCount(c), 1},
		{"slotSWAR", slotSWAR, 1},
		{"slotSWARPopcount", slotSWARPopcount, 1},
		{"slotBisect", slotBisect, 1},
	}
	unrolled := []slotKernel{slot1, slot2, slot3, slot4, slot5, slot6, slot7}
	if c >= 1 && c <= len(unrolled) {
		vs = append(vs, kernelVariant{"unrolled", unrolled[c-1], c})
	}
	return vs
}

// fragmentFor packs ascending thresholds into an interleaved fragment
// (children at even offsets, thresholds at odd offsets).
func fragmentFor(thr []int32) []int32 {
	m := make([]int32, 2*len(thr)+1)
	for i, v := range thr {
		m[2*i+1] = v
	}
	return m
}

// probesFor returns the values every kernel must be probed at for a given
// ascending threshold slice: each threshold itself (the ≥ boundary where
// branchless arithmetic could plausibly diverge from the early-exit scan),
// one cut on either side, zero, and values beyond both ends.
func probesFor(thr []int32) []int32 {
	ps := []int32{0, 1}
	for _, t := range thr {
		ps = append(ps, t-1, t, t+1)
	}
	last := thr[len(thr)-1]
	ps = append(ps, last+64, 1<<30)
	return ps
}

// ascendingThresholds draws c strictly increasing non-negative int31
// thresholds (the arena's domain: Build rejects cut values beyond int32).
func ascendingThresholds(rng *rand.Rand, c int) []int32 {
	thr := make([]int32, c)
	v := int32(0)
	for i := range thr {
		v += 1 + rng.Int31n(1<<20)
		thr[i] = v
	}
	return thr
}

// TestKernelMatchesScalarReference pins every kernel family — interleaved
// and deinterleaved-plane — to the slotScalar reference on random spans at
// every threshold count the trees can select (k−1, 2(k−1), 3(k−1) for
// k = 2..32 covers c = 1..93) and on boundary-heavy probe sets.
func TestKernelMatchesScalarReference(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for c := 1; c <= 96; c++ {
		for trial := 0; trial < 8; trial++ {
			thr := ascendingThresholds(rng, c)
			m := fragmentFor(thr)
			probes := probesFor(thr)
			for i := 0; i < 16; i++ {
				probes = append(probes, rng.Int31())
			}
			for _, v := range probes {
				want := slotScalar(m, v)
				for _, kv := range interleavedVariants(c) {
					if got := kv.fn(m, v); got != want {
						t.Fatalf("c=%d %s(%v, %d) = %d, scalar reference says %d", c, kv.name, thr, v, got, want)
					}
				}
				for _, pv := range []struct {
					name string
					fn   func([]int32, int32) int
				}{
					{"slotScalarPlane", slotScalarPlane},
					{"slotBranchlessPlane", slotBranchlessPlane},
					{"slotSWARPlane", slotSWARPlane},
					{"slotBisectPlane", slotBisectPlane},
				} {
					if got := pv.fn(thr, v); got != want {
						t.Fatalf("c=%d %s(%v, %d) = %d, scalar reference says %d", c, pv.name, thr, v, got, want)
					}
				}
			}
		}
	}
}

// TestKernelSortedInsertionPoints cross-checks the kernels against
// sort.Search's lower-bound semantics: the slot is exactly the insertion
// point of value into the ascending threshold list.
func TestKernelSortedInsertionPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, c := range []int{1, 2, 4, 7, 14, 21, 31, 62, 93} {
		thr := ascendingThresholds(rng, c)
		m := fragmentFor(thr)
		for _, v := range probesFor(thr) {
			want := sort.Search(len(thr), func(i int) bool { return thr[i] >= v })
			if got := slotScalar(m, v); got != want {
				t.Fatalf("c=%d slotScalar(%v, %d) = %d, sort.Search says %d", c, thr, v, got, want)
			}
			if got := kernelForCount(c)(m, v); got != want {
				t.Fatalf("c=%d kernelForCount(%v, %d) = %d, sort.Search says %d", c, thr, v, got, want)
			}
		}
	}
}

// FuzzKernelDifferential feeds arbitrary byte strings as (threshold deltas,
// probe value) pairs, so the fuzzer explores threshold counts, spacings
// (including adjacent thresholds, delta 1) and probe positions, checking
// every kernel family against the scalar reference. Seeds cover the counts
// kernelForCount dispatches on both sides of each selection boundary.
func FuzzKernelDifferential(f *testing.F) {
	f.Add(uint16(1), uint32(0), int64(1))
	f.Add(uint16(7), uint32(1<<20), int64(2))
	f.Add(uint16(8), uint32(1<<30), int64(3))
	f.Add(uint16(14), uint32(77), int64(4))
	f.Add(uint16(31), uint32(1), int64(5))
	f.Add(uint16(93), uint32(1<<28), int64(6))
	f.Fuzz(func(t *testing.T, cRaw uint16, probe uint32, seed int64) {
		c := int(cRaw)%96 + 1
		rng := rand.New(rand.NewSource(seed))
		thr := ascendingThresholds(rng, c)
		m := fragmentFor(thr)
		v := int32(probe & 0x7fffffff)
		probes := append(probesFor(thr), v)
		for _, pv := range probes {
			want := slotScalar(m, pv)
			for _, kv := range interleavedVariants(c) {
				if got := kv.fn(m, pv); got != want {
					t.Fatalf("c=%d %s(value=%d) = %d, scalar reference says %d (thresholds %v)", c, kv.name, pv, got, want, thr)
				}
			}
			if got := slotBisectPlane(thr, pv); got != want {
				t.Fatalf("c=%d slotBisectPlane(value=%d) = %d, scalar reference says %d", c, pv, got, want)
			}
			if got := slotSWARPlane(thr, pv); got != want {
				t.Fatalf("c=%d slotSWARPlane(value=%d) = %d, scalar reference says %d", c, pv, got, want)
			}
		}
	})
}
