package core

import "fmt"

// Validate checks every structural invariant of the k-ary search tree
// network and returns the first violation found:
//
//   - the id↔node map covers exactly 1..n and parent/child links agree,
//   - every node carries exactly k−1 routing elements (the paper's node
//     model, Fig. 1; Build pads arrays and rotations preserve fullness)
//     and exactly one more child slot than routing elements,
//   - routing elements are strictly increasing and lie inside the node's
//     slot interval in cut space, and the node's own id value does too,
//   - non-nil children occupy non-empty intervals,
//   - greedy search from the root reaches every id along its tree path
//     (local greedy routing works).
//
// Validate is O(n·depth); it is used pervasively by tests and is cheap
// enough to call after every operation on small trees.
func (t *Tree) Validate() error {
	if t.root == nil {
		return fmt.Errorf("core: nil root")
	}
	if t.root.parent != nil {
		return fmt.Errorf("core: root %d has a parent", t.root.id)
	}
	if len(t.byID) != t.n+1 {
		return fmt.Errorf("core: byID has %d entries, want %d", len(t.byID), t.n+1)
	}
	seen := make([]bool, t.n+1)
	count := 0
	var walk func(nd *Node, lo, hi int) error
	walk = func(nd *Node, lo, hi int) error {
		if nd.id < 1 || nd.id > t.n {
			return fmt.Errorf("core: node id %d out of range 1..%d", nd.id, t.n)
		}
		if seen[nd.id] {
			return fmt.Errorf("core: id %d appears twice", nd.id)
		}
		seen[nd.id] = true
		count++
		if t.byID[nd.id] != nd {
			return fmt.Errorf("core: byID[%d] does not point at the node in the tree", nd.id)
		}
		iv := t.idValue(nd.id)
		if iv <= lo || iv > hi {
			return fmt.Errorf("core: node %d outside its slot interval", nd.id)
		}
		if len(nd.thresholds) != t.k-1 {
			return fmt.Errorf("core: node %d has %d routing elements, want exactly %d", nd.id, len(nd.thresholds), t.k-1)
		}
		if len(nd.children) != len(nd.thresholds)+1 {
			return fmt.Errorf("core: node %d has %d thresholds but %d child slots", nd.id, len(nd.thresholds), len(nd.children))
		}
		prev := lo
		for _, th := range nd.thresholds {
			if th <= prev {
				return fmt.Errorf("core: node %d routing elements not strictly increasing inside its interval", nd.id)
			}
			if th > hi {
				return fmt.Errorf("core: node %d routing element exceeds its interval", nd.id)
			}
			prev = th
		}
		slotLo := lo
		for i, ch := range nd.children {
			slotHi := hi
			if i < len(nd.thresholds) {
				slotHi = nd.thresholds[i]
			}
			if ch != nil {
				if ch.parent != nd {
					return fmt.Errorf("core: node %d is child of %d but points at a different parent", ch.id, nd.id)
				}
				if slotLo >= slotHi {
					return fmt.Errorf("core: node %d has child %d in an empty slot", nd.id, ch.id)
				}
				if err := walk(ch, slotLo, slotHi); err != nil {
					return err
				}
			}
			slotLo = slotHi
		}
		return nil
	}
	if err := walk(t.root, 0, t.n*t.scale); err != nil {
		return err
	}
	if count != t.n {
		return fmt.Errorf("core: tree holds %d nodes, want %d", count, t.n)
	}
	// Greedy search must find every id along its tree path.
	for id := 1; id <= t.n; id++ {
		path, err := t.SearchFromRoot(id)
		if err != nil {
			return err
		}
		if got, want := len(path)-1, t.Depth(t.byID[id]); got != want {
			return fmt.Errorf("core: search for %d took %d hops, node depth is %d", id, got, want)
		}
	}
	return nil
}
