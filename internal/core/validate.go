package core

import "fmt"

// Validate checks every structural invariant of the k-ary search tree
// network and returns the first violation found:
//
//   - the arena covers exactly ids 1..n, parent/child links agree, and the
//     stable handle array points back at this tree,
//   - every node carries exactly k−1 routing elements (the paper's node
//     model, Fig. 1; Build pads arrays and rotations preserve fullness —
//     this is also what licenses the arena's fixed-stride spans)
//     and exactly one more child slot than routing elements,
//   - routing elements are strictly increasing and lie inside the node's
//     slot interval in cut space, and the node's own id value does too,
//   - non-nil children occupy non-empty intervals,
//   - greedy search from the root reaches every id along its tree path
//     (local greedy routing works).
//
// Validate is O(n·depth); it is used pervasively by tests and is cheap
// enough to call after every operation on small trees.
func (t *Tree) Validate() error {
	if t.root == 0 {
		return fmt.Errorf("core: nil root")
	}
	if t.parent[t.root] != 0 {
		return fmt.Errorf("core: root %d has a parent", t.root)
	}
	if len(t.parent) != t.n+1 || len(t.nodes) != t.n+1 {
		return fmt.Errorf("core: arena has %d parent entries, want %d", len(t.parent), t.n+1)
	}
	if len(t.rc) != t.n*(2*t.k-1) {
		return fmt.Errorf("core: arena holds %d span entries, want %d", len(t.rc), t.n*(2*t.k-1))
	}
	for id := 1; id <= t.n; id++ {
		if h := &t.nodes[id]; h.t != t || h.ix != int32(id) {
			return fmt.Errorf("core: handle %d does not point back at its arena slot", id)
		}
	}
	seen := make([]bool, t.n+1)
	count := 0
	var walk func(ix int32, lo, hi int) error
	walk = func(ix int32, lo, hi int) error {
		id := int(ix)
		if id < 1 || id > t.n {
			return fmt.Errorf("core: node id %d out of range 1..%d", id, t.n)
		}
		if seen[id] {
			return fmt.Errorf("core: id %d appears twice", id)
		}
		seen[id] = true
		count++
		iv := t.idValue(id)
		if iv <= lo || iv > hi {
			return fmt.Errorf("core: node %d outside its slot interval", id)
		}
		sp := t.span(ix)
		prev := lo
		for i := 1; i < len(sp); i += 2 {
			th := int(sp[i])
			if th <= prev {
				return fmt.Errorf("core: node %d routing elements not strictly increasing inside its interval", id)
			}
			if th > hi {
				return fmt.Errorf("core: node %d routing element exceeds its interval", id)
			}
			prev = th
		}
		slotLo := lo
		for i := 0; i < len(sp); i += 2 {
			slotHi := hi
			if i+1 < len(sp) {
				slotHi = int(sp[i+1])
			}
			if ch := sp[i]; ch != 0 {
				if t.parent[ch] != ix {
					return fmt.Errorf("core: node %d is child of %d but points at a different parent", ch, id)
				}
				if t.slot[ch] != int32(i/2) {
					return fmt.Errorf("core: node %d sits in slot %d of %d but its slot cache says %d", ch, i/2, id, t.slot[ch])
				}
				if slotLo >= slotHi {
					return fmt.Errorf("core: node %d has child %d in an empty slot", id, ch)
				}
				if err := walk(ch, slotLo, slotHi); err != nil {
					return err
				}
			}
			slotLo = slotHi
		}
		return nil
	}
	if err := walk(t.root, 0, t.n*t.scale); err != nil {
		return err
	}
	if count != t.n {
		return fmt.Errorf("core: tree holds %d nodes, want %d", count, t.n)
	}
	// Greedy search must find every id along its tree path. Search runs
	// through the selected routing kernel, so this also exercises the
	// kernel on every span the tree currently holds.
	for id := 1; id <= t.n; id++ {
		path, err := t.SearchFromRoot(id)
		if err != nil {
			return err
		}
		if got, want := len(path)-1, t.depthIx(int32(id)); got != want {
			return fmt.Errorf("core: search for %d took %d hops, node depth is %d", id, got, want)
		}
	}
	// The selected span kernel must agree with the scalar reference on
	// every live span, probed exactly where branchless arithmetic could
	// plausibly diverge from the early-exit scan: at each threshold value
	// itself (the ≥ boundary), one cut on either side of it, and the
	// node's own id value.
	for id := 1; id <= t.n; id++ {
		sp := t.span(int32(id))
		probe := func(v int32) error {
			if got, want := t.kSpan(sp, v), slotScalar(sp, v); got != want {
				return fmt.Errorf("core: node %d kernel slot %d for value %d, scalar reference says %d", id, got, v, want)
			}
			return nil
		}
		if err := probe(int32(t.idValue(id))); err != nil {
			return err
		}
		for i := 1; i < len(sp); i += 2 {
			for _, v := range [3]int32{sp[i] - 1, sp[i], sp[i] + 1} {
				if err := probe(v); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
