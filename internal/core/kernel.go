package core

import "math/bits"

// Per-arity routing kernels for the threshold search (ROADMAP item 1,
// DESIGN.md §13).
//
// Every routing decision in the tree is the same primitive: given a node's
// sorted routing elements and a destination's cut-space value, find the
// child slot — the number of thresholds strictly less than the value. The
// PR 6 arena stores thresholds as dense int32 spans at a fixed stride
// precisely so this search needs no pointer chasing; this file removes its
// last per-element data-dependent branch.
//
// A slotKernel operates on an interleaved span or merge fragment (child
// indices at even offsets, ascending thresholds at odd offsets — the
// arena's native layout, see tree.go) and returns the slot index. Three
// kernel families exist:
//
//   - slotScalar: the original early-exit scan, kept verbatim as the
//     reference all other kernels are differentially tested against
//     (kernel_test.go) and the oracle Validate cross-checks.
//   - slot1..slot7: fully unrolled branchless comparison-counting kernels
//     for small threshold counts (arities 2..8): a sum of (thr < v) bits,
//     no data-dependent branches, no loop.
//   - slotSWAR: the chunked kernel for large counts — two int32 thresholds
//     are packed into one uint64 and compared against both lanes of a
//     broadcast value with a single subtraction, accumulating per-lane
//     ≥-bits that a final fold via math/bits reduces; 2 thresholds per
//     loop iteration, branch-free except the loop itself (whose trip count
//     is a pure function of k, so it always predicts).
//
// The kernels are exact, not approximate: on every input they return
// bit-identical answers to slotScalar (the goldens and the pointer-
// reference differential keep holding). Their domain is the arena's: cut
// values and thresholds are non-negative int31 quantities (Build rejects
// n·k beyond MaxInt32), so thr−v never overflows int32 and the packed-lane
// subtraction below never borrows across lanes.
//
// A Tree selects its kernels once at construction — one per threshold
// count it will ever search (k−1 for node spans, 2(k−1) and 3(k−1) for the
// d=2/d=3 rebuild merges) — and stores them as fields (tree.go), so the
// hot paths pay one well-predicted indirect call instead of a per-element
// branch chain.
//
// Layout decision (DESIGN.md §13 records the numbers): the kernels gather
// thresholds at stride 2 from the interleaved span rather than from a
// deinterleaved contiguous thresholds plane. The deinterleaved variants
// below exist to keep that decision honest — BenchmarkSlotFor races both
// layouts — but the plane lost: its contiguous loads save little at served
// arities while maintaining it would add k−1 stores per rebuilt node to
// every rotation and a second parallel array to build, snapshot and
// restore. The interleaved span is also the line the serve path touches
// anyway (the chosen child pointer lives between the thresholds).

// slotKernel returns the child slot the search property assigns to a
// cut-space value at a node: the number of thresholds (odd offsets of the
// interleaved fragment m) strictly less than the value.
type slotKernel func(m []int32, value int32) int

// slotScalar is the reference kernel: the pre-kernel early-exit scan.
// Thresholds ascend, so the count of elements < value is the index of the
// first ≥ value. It is correct for any threshold count and is what every
// other kernel is pinned against.
func slotScalar(m []int32, value int32) int {
	s := 0
	for i := 1; i < len(m); i += 2 {
		if m[i] >= value {
			break
		}
		s++
	}
	return s
}

// lt returns 1 when thr < v, else 0, as the sign bit of the int32
// difference — exact because both operands are non-negative int31 values.
func lt(thr, v int32) int { return int(uint32(thr-v) >> 31) }

func slot1(m []int32, v int32) int {
	return lt(m[1], v)
}

func slot2(m []int32, v int32) int {
	_ = m[3]
	return lt(m[1], v) + lt(m[3], v)
}

func slot3(m []int32, v int32) int {
	_ = m[5]
	return lt(m[1], v) + lt(m[3], v) + lt(m[5], v)
}

func slot4(m []int32, v int32) int {
	_ = m[7]
	return lt(m[1], v) + lt(m[3], v) + lt(m[5], v) + lt(m[7], v)
}

func slot5(m []int32, v int32) int {
	_ = m[9]
	return lt(m[1], v) + lt(m[3], v) + lt(m[5], v) + lt(m[7], v) + lt(m[9], v)
}

func slot6(m []int32, v int32) int {
	_ = m[11]
	return lt(m[1], v) + lt(m[3], v) + lt(m[5], v) + lt(m[7], v) + lt(m[9], v) + lt(m[11], v)
}

func slot7(m []int32, v int32) int {
	_ = m[13]
	return lt(m[1], v) + lt(m[3], v) + lt(m[5], v) + lt(m[7], v) + lt(m[9], v) + lt(m[11], v) + lt(m[13], v)
}

// swarSigns masks the sign bit of each packed 32-bit lane.
const swarSigns = 0x8000_0000_8000_0000

// slotSWAR counts thresholds < value two lanes at a time. Packing a
// threshold pair with the lane sign bits pre-set makes each 32-bit lane of
// the single uint64 subtraction self-contained (the minuend lane is at
// least 2³¹, the subtrahend below it, so no borrow ever crosses lanes) and
// leaves lane sign bit = (thr ≥ v). The shifted sign bits accumulate as
// two 32-bit lane counters — the loop has no data-dependent branches and
// its trip count depends only on len(m), i.e. on k.
//
// The main loop processes two packed words (four thresholds) per iteration
// into independent accumulators: a single-accumulator form serializes on
// the acc addition, and the two-chain form measures ~1.6× faster at the
// large merge counts (c = 62, 93) where this kernel is selected.
func slotSWAR(m []int32, value int32) int {
	vv := uint64(uint32(value))
	vv |= vv << 32
	var acc0, acc1 uint64
	i := 1
	for ; i+6 < len(m); i += 8 {
		w0 := uint64(uint32(m[i])) | uint64(uint32(m[i+2]))<<32 | swarSigns
		w1 := uint64(uint32(m[i+4])) | uint64(uint32(m[i+6]))<<32 | swarSigns
		acc0 += ((w0 - vv) & swarSigns) >> 31
		acc1 += ((w1 - vv) & swarSigns) >> 31
	}
	for ; i+2 < len(m); i += 4 {
		w := uint64(uint32(m[i])) | uint64(uint32(m[i+2]))<<32 | swarSigns
		acc0 += ((w - vv) & swarSigns) >> 31
	}
	acc0 += acc1
	ge := int(uint32(acc0)) + int(acc0>>32)
	if i < len(m) { // odd threshold count: one scalar tail lane
		ge += 1 - lt(m[i], value)
	}
	return (len(m)-1)/2 - ge
}

// slotBisect is the branchless binary search over the interleaved span:
// ⌈log₂ c⌉ probes instead of a linear pass. The loop's trip count is a
// pure function of c (the interval width sequence never depends on data),
// so the loop branch always predicts; the only data-dependent decision is
// the interval-narrowing conditional move. The early-exit scan touches c/2
// thresholds on average plus one guaranteed misprediction, and the SWAR
// pass touches all c — past c ≈ 30 both lose to log₂ c dependent loads
// (BenchmarkSlotFor, §13).
//
// Invariant: the answer (the count of thresholds < value) lies in
// [lo, lo+n]. Threshold j lives at interleaved offset 2j+1, so the probe
// of threshold lo+half−1 reads m[2(lo+half)−1].
func slotBisect(m []int32, value int32) int {
	lo, n := 0, (len(m)-1)/2
	for n > 1 {
		half := n >> 1
		// gc compiles a conditional `lo += half` to a branch, which
		// mispredicts on ~half the levels; the sign-bit mask form keeps
		// the narrowing step branch-free.
		lo += half & -lt(m[2*(lo+half)-1], value)
		n -= half
	}
	return lo + lt(m[2*lo+1], value)
}

// kernelForCount selects the kernel for a fragment holding c thresholds,
// per the three regimes BenchmarkSlotFor measures (§13 records the
// numbers): fully unrolled comparison counting up to c=7 (arities 2..8),
// the chunked SWAR pass in the narrow mid band where touching all c
// thresholds two-per-word still beats log₂ c serial dependent loads, and
// the branchless bisection beyond (by c=31 bisect is ~1.6× faster than
// SWAR and ~2.5× faster than the early-exit scan; at c=93 ~2.5× and
// ~2.6×). c is a construction-time constant per tree (k−1, 2(k−1) or
// 3(k−1)), so selection happens exactly once (newArena) and the serve
// path only ever sees the result.
func kernelForCount(c int) slotKernel {
	switch c {
	case 1:
		return slot1
	case 2:
		return slot2
	case 3:
		return slot3
	case 4:
		return slot4
	case 5:
		return slot5
	case 6:
		return slot6
	case 7:
		return slot7
	}
	if c < 14 {
		return slotSWAR
	}
	return slotBisect
}

// --- Deinterleaved-plane variants -----------------------------------------
//
// The same three kernel shapes over a contiguous thresholds slice (stride
// k−1 per node, no interleaved children). They are NOT used by the Tree:
// they exist so BenchmarkSlotFor can race the two layouts and so the
// property tests pin both families to one reference — the evidence behind
// the §13 decision to keep the interleaved span as the only layout.

// slotScalarPlane is slotScalar over a contiguous thresholds slice.
func slotScalarPlane(thr []int32, value int32) int {
	s := 0
	for _, t := range thr {
		if t >= value {
			break
		}
		s++
	}
	return s
}

// slotBranchlessPlane is the comparison-counting loop over a contiguous
// thresholds slice (the unrolled kernels' shape, without the unrolling).
func slotBranchlessPlane(thr []int32, value int32) int {
	s := 0
	for _, t := range thr {
		s += lt(t, value)
	}
	return s
}

// slotSWARPlane is slotSWAR over a contiguous thresholds slice.
func slotSWARPlane(thr []int32, value int32) int {
	vv := uint64(uint32(value))
	vv |= vv << 32
	var acc uint64
	i := 0
	for ; i+1 < len(thr); i += 2 {
		w := uint64(uint32(thr[i])) | uint64(uint32(thr[i+1]))<<32 | swarSigns
		acc += ((w - vv) & swarSigns) >> 31
	}
	ge := int(uint32(acc)) + int(acc>>32)
	if i < len(thr) {
		ge += 1 - lt(thr[i], value)
	}
	return len(thr) - ge
}

// slotBisectPlane is slotBisect over a contiguous thresholds slice.
func slotBisectPlane(thr []int32, value int32) int {
	lo, n := 0, len(thr)
	for n > 1 {
		half := n >> 1
		lo += half & -lt(thr[lo+half-1], value)
		n -= half
	}
	return lo + lt(thr[lo], value)
}

// slotSWARPopcount is the popcount formulation of the chunked kernel:
// fold each pair's sign-bit mask with math/bits.OnesCount64 immediately
// instead of accumulating shifted lane counters. Raced against slotSWAR
// in BenchmarkSlotFor; kernelForCount selects whichever form the §13
// decision record shows winning (currently the lane-counter form — one
// add per pair beats one popcount per pair on the served sizes).
func slotSWARPopcount(m []int32, value int32) int {
	vv := uint64(uint32(value))
	vv |= vv << 32
	ge := 0
	i := 1
	for ; i+2 < len(m); i += 4 {
		w := uint64(uint32(m[i])) | uint64(uint32(m[i+2]))<<32 | swarSigns
		ge += bits.OnesCount64((w - vv) & swarSigns)
	}
	if i < len(m) { // odd threshold count: one scalar tail lane
		ge += 1 - lt(m[i], value)
	}
	return (len(m)-1)/2 - ge
}
