package core

import (
	"fmt"
	"strings"
)

// This file carries a deliberately naive pointer-linked implementation of
// the k-ary search tree: nodes are heap objects holding their own routing
// slice and child-pointer slice, and a rotation is the paper's generalized
// rebuild in its most literal form — expand the fragment in-order into
// fresh slices, then re-emit blocks bottom-up. It is the representation the
// arena (tree.go) replaced, kept as a test-only oracle: the differential
// property test in reference_diff_test.go drives both implementations with
// identical operation sequences and demands identical renderings, parent
// vectors and distances after every step.
//
// The reference goes through the generic blockSize path (no full-array
// shortcut), so agreement also re-verifies the specialization argument the
// arena rebuilds rely on: with every routing array at exactly k−1
// elements, blockSize(d·(k−1), d, k−1) ≡ k−1. The three pure placement
// helpers — blockSize, intervalIndex, blockStartAt — are shared with the
// production rebuilds rather than duplicated, so the test pins the
// representations against each other, not two copies of the same bug.

type refNode struct {
	id     int
	elems  []int // cut-space routing elements, ascending
	kids   []*refNode
	parent *refNode
}

type refTree struct {
	k, n, scale int
	root        *refNode
	byID        []*refNode
	policy      BlockPolicy
}

// newRefTree mirrors the current topology of an arena tree into the
// pointer representation.
func newRefTree(t *Tree) *refTree {
	r := &refTree{k: t.K(), n: t.N(), scale: t.Scale(), policy: t.blockPolicy}
	r.byID = make([]*refNode, r.n+1)
	var mirror func(nd *Node, parent *refNode) *refNode
	mirror = func(nd *Node, parent *refNode) *refNode {
		rn := &refNode{id: nd.ID(), elems: nd.RoutingArray(), parent: parent}
		r.byID[rn.id] = rn
		rn.kids = make([]*refNode, nd.NumSlots())
		for i := 0; i < nd.NumSlots(); i++ {
			if c := nd.Child(i); c != nil {
				rn.kids[i] = mirror(c, rn)
			}
		}
		return rn
	}
	r.root = mirror(t.Root(), nil)
	return r
}

func (r *refTree) idValue(id int) int { return id * r.scale }

func (rn *refNode) childIndex(c *refNode) int {
	for i, ch := range rn.kids {
		if ch == c {
			return i
		}
	}
	return -1
}

// rebuild is the generic d-node generalized rotation over the pointer
// representation: expand the fragment in-order, then re-emit path[0..d-2]
// bottom-up, each taking a block whose induced gap covers its id; the
// deepest node keeps the remainder and the fragment's slot at the old
// parent.
func (r *refTree) rebuild(path []*refNode) {
	d := len(path)
	if d < 2 {
		return
	}
	top := path[0]
	oldParent := top.parent
	oldSlot := -1
	if oldParent != nil {
		oldSlot = oldParent.childIndex(top)
	}

	onPath := make(map[*refNode]bool, d)
	for _, nd := range path {
		onPath[nd] = true
	}
	var elems []int
	var subs []*refNode
	var expand func(nd *refNode)
	expand = func(nd *refNode) {
		for i, ch := range nd.kids {
			if i > 0 {
				elems = append(elems, nd.elems[i-1])
			}
			if ch != nil && onPath[ch] {
				expand(ch)
			} else {
				subs = append(subs, ch)
			}
		}
	}
	expand(top)

	for i := 0; i < d-1; i++ {
		x := path[i]
		b := blockSize(len(elems), d-i, r.k-1)
		j := intervalIndex(elems, r.idValue(x.id))
		s := blockStartAt(r.policy, j, b, len(elems))

		x.elems = append([]int(nil), elems[s:s+b]...)
		x.kids = append([]*refNode(nil), subs[s:s+b+1]...)
		for _, ch := range x.kids {
			if ch != nil {
				ch.parent = x
			}
		}
		elems = append(elems[:s], elems[s+b:]...)
		subs[s] = x
		subs = append(subs[:s+1], subs[s+b+1:]...)
	}
	newTop := path[d-1]
	newTop.elems = append([]int(nil), elems...)
	newTop.kids = append([]*refNode(nil), subs...)
	for _, ch := range newTop.kids {
		if ch != nil {
			ch.parent = newTop
		}
	}
	newTop.parent = oldParent
	if oldParent == nil {
		r.root = newTop
	} else {
		oldParent.kids[oldSlot] = newTop
	}
}

// splayUntilParent mirrors Tree.SplayUntilParent: k-splay (double) steps
// where a grandparent short of the stop exists, a final k-semi-splay step
// otherwise.
func (r *refTree) splayUntilParent(x, stop *refNode) {
	for x.parent != stop {
		p := x.parent
		if g := p.parent; g == stop {
			r.rebuild([]*refNode{p, x})
		} else {
			r.rebuild([]*refNode{g, p, x})
		}
	}
}

// semiSplayUntilParent mirrors Tree.SemiSplayUntilParent.
func (r *refTree) semiSplayUntilParent(x, stop *refNode) {
	for x.parent != stop {
		r.rebuild([]*refNode{x.parent, x})
	}
}

func (r *refTree) depth(nd *refNode) int {
	d := 0
	for p := nd.parent; p != nil; p = p.parent {
		d++
	}
	return d
}

// distanceLCA mirrors Tree.DistanceLCA with plain pointer walks.
func (r *refTree) distanceLCA(u, v int) (int, int) {
	a, b := r.byID[u], r.byID[v]
	if a == b {
		return 0, u
	}
	da, db := r.depth(a), r.depth(b)
	dist := 0
	for da > db {
		a = a.parent
		da--
		dist++
	}
	for db > da {
		b = b.parent
		db--
		dist++
	}
	for a != b {
		a, b = a.parent, b.parent
		dist += 2
	}
	return dist, a.id
}

// render reproduces Tree.Render byte for byte.
func (r *refTree) render() string {
	var b strings.Builder
	r.renderNode(&b, r.root, "", "")
	return b.String()
}

func (r *refTree) renderNode(b *strings.Builder, nd *refNode, prefix, childPrefix string) {
	fmt.Fprintf(b, "%s%d", prefix, nd.id)
	if r.k > 1 {
		b.WriteString(" r=[")
		for i, th := range nd.elems {
			if i > 0 {
				b.WriteByte(' ')
			}
			if th%r.scale == 0 {
				fmt.Fprintf(b, "%d", th/r.scale)
			} else {
				fmt.Fprintf(b, "%.1f", float64(th)/float64(r.scale))
			}
		}
		b.WriteString("]")
	}
	b.WriteByte('\n')
	var kids []*refNode
	for _, ch := range nd.kids {
		if ch != nil {
			kids = append(kids, ch)
		}
	}
	for i, ch := range kids {
		if i == len(kids)-1 {
			r.renderNode(b, ch, childPrefix+"└─ ", childPrefix+"   ")
		} else {
			r.renderNode(b, ch, childPrefix+"├─ ", childPrefix+"│  ")
		}
	}
}

// parents mirrors Tree.Parents.
func (r *refTree) parents() []int {
	out := make([]int, r.n+1)
	for id := 1; id <= r.n; id++ {
		if p := r.byID[id].parent; p != nil {
			out[id] = p.id
		}
	}
	return out
}
