package core

import "fmt"

// SearchFromRoot performs the greedy search-property lookup for id starting
// at the root, exactly as a packet with destination id would be forwarded
// downward. It returns the sequence of visited node ids ending at id, or an
// error if the search property is violated (the packet falls into an empty
// slot).
func (t *Tree) SearchFromRoot(id int) ([]int, error) {
	if id < 1 || id > t.n {
		return nil, fmt.Errorf("core: id %d out of range 1..%d", id, t.n)
	}
	path := make([]int, 0, 8)
	value := int32(t.idValue(id))
	ix := t.root
	for {
		path = append(path, int(ix))
		if int(ix) == id {
			return path, nil
		}
		ch := t.span(ix)[2*t.slotFor(ix, value)]
		if ch == 0 {
			return path, fmt.Errorf("core: search for %d dead-ends at node %d (search property violated)", id, ix)
		}
		ix = ch
	}
}

// RoutePath returns the node ids along the routing path from u to v: the
// reverse-search path up to their lowest common ancestor followed by the
// greedy search path down to v. Its length minus one equals Distance.
//
// The returned slice is backed by a per-tree scratch buffer sized by the
// fused DistanceLCA walk, so steady-state calls allocate nothing; it is
// valid until the next RoutePath call on the same tree, and callers that
// retain paths must copy. Like the rebuild scratch, this makes RoutePath
// non-reentrant per tree (DESIGN.md §3 serve-path scratch ownership).
func (t *Tree) RoutePath(u, v int) []int {
	a, b := t.NodeByID(u), t.NodeByID(v)
	dist, w := t.DistanceLCA(a, b)
	if cap(t.routeBuf) < dist+1 {
		t.routeBuf = make([]int, dist+1)
	}
	path := t.routeBuf[:dist+1]
	i := 0
	for ix := a.ix; ix != w.ix; ix = t.parent[ix] {
		path[i] = int(ix)
		i++
	}
	path[i] = int(w.ix)
	for j, ix := dist, b.ix; ix != w.ix; ix = t.parent[ix] {
		path[j] = int(ix)
		j--
	}
	return path
}

// NextHop returns the neighbor to which a node holding a packet for dst
// forwards it: the parent while the packet still travels up toward the
// lowest common ancestor, then the child whose interval covers dst.
//
// In a routing-based tree (every node id appears in its own routing array)
// this decision is computable from the routing array alone. In the general
// variant a node's interval may be punctured by an ancestor's id, so a
// deployment additionally keeps, per node, the ids of ancestors lying
// inside its interval (at most depth-many, maintained with O(k) work per
// rotation); the decision below is exactly the one that bookkeeping yields.
func (t *Tree) NextHop(at *Node, dst int) (*Node, error) {
	if int(at.ix) == dst {
		return nil, fmt.Errorf("core: node %d already holds the packet for itself", dst)
	}
	if dst < 1 || dst > t.n {
		return nil, fmt.Errorf("core: destination %d out of range 1..%d", dst, t.n)
	}
	w := t.LCA(at, t.NodeByID(dst))
	if at != w {
		return at.Parent(), nil
	}
	ch := t.span(at.ix)[2*t.slotFor(at.ix, int32(t.idValue(dst)))]
	if ch == 0 {
		return nil, fmt.Errorf("core: search property violated at node %d for destination %d", at.ix, dst)
	}
	return &t.nodes[ch], nil
}
