package core

import "fmt"

// SearchFromRoot performs the greedy search-property lookup for id starting
// at the root, exactly as a packet with destination id would be forwarded
// downward. It returns the sequence of visited node ids ending at id, or an
// error if the search property is violated (the packet falls into an empty
// slot).
func (t *Tree) SearchFromRoot(id int) ([]int, error) {
	if id < 1 || id > t.n {
		return nil, fmt.Errorf("core: id %d out of range 1..%d", id, t.n)
	}
	path := make([]int, 0, 8)
	nd := t.root
	for {
		path = append(path, nd.id)
		if nd.id == id {
			return path, nil
		}
		ch := nd.children[nd.slotFor(t.idValue(id))]
		if ch == nil {
			return path, fmt.Errorf("core: search for %d dead-ends at node %d (search property violated)", id, nd.id)
		}
		nd = ch
	}
}

// RoutePath returns the node ids along the routing path from u to v: the
// reverse-search path up to their lowest common ancestor followed by the
// greedy search path down to v. Its length minus one equals Distance.
func (t *Tree) RoutePath(u, v int) []int {
	a, b := t.byID[u], t.byID[v]
	w := t.LCA(a, b)
	var up []int
	for nd := a; nd != w; nd = nd.parent {
		up = append(up, nd.id)
	}
	up = append(up, w.id)
	var down []int
	for nd := b; nd != w; nd = nd.parent {
		down = append(down, nd.id)
	}
	for i := len(down) - 1; i >= 0; i-- {
		up = append(up, down[i])
	}
	return up
}

// NextHop returns the neighbor to which a node holding a packet for dst
// forwards it: the parent while the packet still travels up toward the
// lowest common ancestor, then the child whose interval covers dst.
//
// In a routing-based tree (every node id appears in its own routing array)
// this decision is computable from the routing array alone. In the general
// variant a node's interval may be punctured by an ancestor's id, so a
// deployment additionally keeps, per node, the ids of ancestors lying
// inside its interval (at most depth-many, maintained with O(k) work per
// rotation); the decision below is exactly the one that bookkeeping yields.
func (t *Tree) NextHop(at *Node, dst int) (*Node, error) {
	if at.id == dst {
		return nil, fmt.Errorf("core: node %d already holds the packet for itself", dst)
	}
	if dst < 1 || dst > t.n {
		return nil, fmt.Errorf("core: destination %d out of range 1..%d", dst, t.n)
	}
	w := t.LCA(at, t.byID[dst])
	if at != w {
		return at.parent, nil
	}
	ch := at.children[at.slotFor(t.idValue(dst))]
	if ch == nil {
		return nil, fmt.Errorf("core: search property violated at node %d for destination %d", at.id, dst)
	}
	return ch, nil
}

// slotInterval reconstructs the cut-space interval (lo, hi] of the slot nd
// occupies at its parent (the whole cut space for the root). O(depth·k).
func (t *Tree) slotInterval(nd *Node) (lo, hi int) {
	lo, hi = 0, t.n*t.scale
	path := make([]*Node, 0, 16)
	for p := nd; p != nil; p = p.parent {
		path = append(path, p)
	}
	for i := len(path) - 1; i > 0; i-- {
		parent, child := path[i], path[i-1]
		slot := parent.childIndex(child)
		if slot > 0 {
			if l := parent.thresholds[slot-1]; l > lo {
				lo = l
			}
		}
		if slot < len(parent.thresholds) {
			if h := parent.thresholds[slot]; h < hi {
				hi = h
			}
		}
	}
	return lo, hi
}
