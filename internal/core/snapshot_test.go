package core

import (
	"math/rand"
	"strings"
	"testing"
)

func splayedTree(t *testing.T, n, k int, seed int64) *Tree {
	t.Helper()
	tr, err := NewBalanced(n, k)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < 200; i++ {
		u, v := 1+rng.Intn(n), 1+rng.Intn(n)
		if u == v {
			continue
		}
		a, b := tr.NodeByID(u), tr.NodeByID(v)
		_, w := tr.DistanceLCA(a, b)
		tr.SplayUntilParent(a, w.Parent())
		tr.SplayUntilParent(b, a)
	}
	return tr
}

func TestSnapshotRoundTrip(t *testing.T) {
	for _, cfg := range []struct{ n, k int }{{40, 2}, {90, 3}, {130, 5}} {
		tr := splayedTree(t, cfg.n, cfg.k, int64(cfg.n))
		snap := tr.Snapshot()
		back, err := FromSnapshot(snap)
		if err != nil {
			t.Fatalf("n=%d k=%d: %v", cfg.n, cfg.k, err)
		}
		if got, want := back.Render(), tr.Render(); got != want {
			t.Fatalf("n=%d k=%d: restored rendering diverges\n%s\nvs\n%s", cfg.n, cfg.k, got, want)
		}
		gp, wp := back.Parents(), tr.Parents()
		for id := range gp {
			if gp[id] != wp[id] {
				t.Fatalf("n=%d k=%d: restored parent of %d is %d, want %d", cfg.n, cfg.k, id, gp[id], wp[id])
			}
		}
		for q := 0; q < 50; q++ {
			u, v := 1+q%cfg.n, 1+(q*7)%cfg.n
			if got, want := back.DistanceID(u, v), tr.DistanceID(u, v); got != want {
				t.Fatalf("n=%d k=%d: restored DistanceID(%d,%d) = %d, want %d", cfg.n, cfg.k, u, v, got, want)
			}
		}
	}
}

func TestSnapshotIsDeepCopy(t *testing.T) {
	tr := splayedTree(t, 64, 3, 5)
	snap := tr.Snapshot()
	before := tr.Render()
	// Mutating the tree must not disturb the snapshot...
	tr.SplayUntilParent(tr.NodeByID(50), nil)
	back, err := FromSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	if back.Render() != before {
		t.Fatal("snapshot changed when the source tree was mutated")
	}
	// ...and mutating a restored tree must not disturb the snapshot either.
	back.SplayUntilParent(back.NodeByID(12), nil)
	back2, err := FromSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	if back2.Render() != before {
		t.Fatal("snapshot changed when a restored tree was mutated")
	}
}

func TestFromSnapshotRejectsCorruption(t *testing.T) {
	tr := splayedTree(t, 40, 3, 9)
	base := tr.Snapshot()
	corrupt := func(f func(s *Snapshot)) Snapshot {
		s := tr.Snapshot()
		f(&s)
		return s
	}
	cases := []struct {
		label string
		snap  Snapshot
	}{
		{"root out of range", corrupt(func(s *Snapshot) { s.Root = 41 })},
		{"zero root", corrupt(func(s *Snapshot) { s.Root = 0 })},
		{"truncated parents", corrupt(func(s *Snapshot) { s.Parent = s.Parent[:len(s.Parent)-1] })},
		{"truncated spans", corrupt(func(s *Snapshot) { s.RC = s.RC[:len(s.RC)-1] })},
		{"child out of range", corrupt(func(s *Snapshot) { s.RC[0] = 99 })},
		{"parent cycle", corrupt(func(s *Snapshot) { s.Parent[base.Root] = base.Root })},
		{"root as child", corrupt(func(s *Snapshot) { s.RC[0] = s.Root })},
		{"bad arity", corrupt(func(s *Snapshot) { s.K = 1 })},
	}
	for _, tc := range cases {
		if _, err := FromSnapshot(tc.snap); err == nil {
			t.Errorf("%s: corrupted snapshot accepted", tc.label)
		} else if !strings.HasPrefix(err.Error(), "core:") {
			t.Errorf("%s: error %q does not carry the package prefix", tc.label, err)
		}
	}
	if _, err := FromSnapshot(base); err != nil {
		t.Fatalf("pristine snapshot rejected: %v", err)
	}
}
