package core

import "fmt"

// SplayUntilParent rotates x upward with k-splay (double) and k-semi-splay
// (single) steps until x's parent is stop. With stop == nil, x becomes the
// tree root. stop must be a proper ancestor of x (or x's current parent);
// the method panics otherwise, as that is a programming error in a caller.
//
// This is the movement primitive of the online networks: k-ary SplayNet
// splays a request's source to the lowest common ancestor's position and
// the destination to a child of the source; the centroid (k+1)-SplayNet
// splays endpoints to their subtree roots.
func (t *Tree) SplayUntilParent(x *Node, stop *Node) {
	for x.parent != stop {
		p := x.parent
		if p == nil {
			panic(fmt.Sprintf("core: splay target (parent %v) is not an ancestor of node %d", stopID(stop), x.id))
		}
		if p.parent == stop {
			t.rebuild2(p, x)
		} else {
			t.rebuild3(p.parent, p, x)
		}
	}
}

// SemiSplayUntilParent is SplayUntilParent restricted to single
// (k-semi-splay) steps; it exists for the rotation-repertoire ablation,
// which measures the value of the double k-splay step.
func (t *Tree) SemiSplayUntilParent(x *Node, stop *Node) {
	for x.parent != stop {
		p := x.parent
		if p == nil {
			panic(fmt.Sprintf("core: splay target (parent %v) is not an ancestor of node %d", stopID(stop), x.id))
		}
		t.rebuild2(p, x)
	}
}

func stopID(stop *Node) interface{} {
	if stop == nil {
		return "<root>"
	}
	return stop.id
}
