package core

import "fmt"

// SplayUntilParent rotates x upward with k-splay (double) and k-semi-splay
// (single) steps until x's parent is stop. With stop == nil, x becomes the
// tree root. stop must be a proper ancestor of x (or x's current parent);
// the method panics otherwise, as that is a programming error in a caller.
//
// This is the movement primitive of the online networks: k-ary SplayNet
// splays a request's source to the lowest common ancestor's position and
// the destination to a child of the source; the centroid (k+1)-SplayNet
// splays endpoints to their subtree roots.
func (t *Tree) SplayUntilParent(x *Node, stop *Node) {
	xi := x.ix
	var si int32
	if stop != nil {
		si = stop.ix
	}
	par := t.parent // rebuilds mutate entries, never the slice itself
	for par[xi] != si {
		p := par[xi]
		if p == 0 {
			panic(fmt.Sprintf("core: splay target (parent %v) is not an ancestor of node %d", stopLabel(si), xi))
		}
		if g := par[p]; g == si {
			t.rebuild2(p, xi)
		} else {
			t.rebuild3(g, p, xi)
		}
	}
}

// SemiSplayUntilParent is SplayUntilParent restricted to single
// (k-semi-splay) steps; it exists for the rotation-repertoire ablation,
// which measures the value of the double k-splay step.
func (t *Tree) SemiSplayUntilParent(x *Node, stop *Node) {
	xi := x.ix
	var si int32
	if stop != nil {
		si = stop.ix
	}
	par := t.parent
	for par[xi] != si {
		p := par[xi]
		if p == 0 {
			panic(fmt.Sprintf("core: splay target (parent %v) is not an ancestor of node %d", stopLabel(si), xi))
		}
		t.rebuild2(p, xi)
	}
}

func stopLabel(si int32) interface{} {
	if si == 0 {
		return "<root>"
	}
	return si
}
