// Package hist provides the streaming log-bucketed histogram shared by
// the measurement paths: the sequential evaluation engine's per-request
// cost accounting (engine.Result percentiles), the concurrent serving
// layer's per-client latency statistics (serve), and any tool that needs
// mergeable bounded-memory percentiles.
//
// Values below base (64) land in exact unit buckets, so integer routing
// costs — tree-path lengths of at most a few dozen edges — record exactly
// and percentiles over them are bit-identical to a sorted-sample rule.
// Beyond that each doubling of the value range splits into subHalf linear
// sub-buckets, bounding relative quantization error by 1/subHalf ≈ 3% —
// the standard HDR-histogram trade-off, paid only by nanosecond-scale
// latency observations.
package hist

import (
	"fmt"
	"math"
	"math/bits"
)

// Log-bucket geometry.
const (
	subBits = 6
	base    = 1 << subBits       // 64 exact unit buckets
	subHalf = 1 << (subBits - 1) // 32 sub-buckets per octave beyond
)

// ExactLimit is the smallest value that no longer records exactly: every
// observation below it has its own unit bucket, so percentiles restricted
// to such values are exact order statistics (TestHistExactRegion is the
// contract).
const ExactLimit = base

// Hist is a streaming log-bucketed histogram over non-negative int64
// values: O(1) Observe, O(buckets) Merge and Percentile, O(log(max))
// buckets total — never a per-sample buffer. The zero value is an empty,
// usable histogram. Hist is not safe for concurrent use; concurrent
// callers keep per-routine instances and merge them once a run drains
// (Merge is associative and commutative, so any merge grouping yields the
// same histogram).
type Hist struct {
	counts []int64
	count  int64
	sum    int64
	min    int64 // valid only when count > 0
	max    int64
}

// bucketOf maps a value to its bucket index.
func bucketOf(v int64) int {
	if v < base {
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - subBits - 1 // v in [base<<exp, base<<(exp+1))
	return base + exp*subHalf + int(v>>uint(exp+1)) - subHalf
}

// lowerOf returns the smallest value that maps to bucket idx — the
// representative Percentile reports, chosen as the lower bound so that in
// the exact region the histogram's percentile definition coincides with
// the engine's ("the smallest cost c such that at least ceil(q·total)
// observations are ≤ c").
func lowerOf(idx int) int64 {
	if idx < base {
		return int64(idx)
	}
	rel := idx - base
	exp, sub := rel/subHalf, rel%subHalf
	return int64(subHalf+sub) << uint(exp+1)
}

// Observe folds one value into the histogram. Negative values are a
// caller bug (costs and latencies are non-negative) and panic.
func (h *Hist) Observe(v int64) {
	if v < 0 {
		panic(fmt.Sprintf("hist: Observe(%d): negative value", v))
	}
	idx := bucketOf(v)
	if idx >= len(h.counts) {
		grown := make([]int64, idx+1)
		copy(grown, h.counts)
		h.counts = grown
	}
	h.counts[idx]++
	h.count++
	h.sum += v
	if h.count == 1 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// ObserveN folds n identical observations into the histogram in O(1) —
// the batch-cost accounting path, where a whole request batch lands on
// one integer cost.
func (h *Hist) ObserveN(v int64, n int64) {
	if n <= 0 {
		if n == 0 {
			return
		}
		panic(fmt.Sprintf("hist: ObserveN(%d, %d): negative count", v, n))
	}
	if v < 0 {
		panic(fmt.Sprintf("hist: ObserveN(%d, %d): negative value", v, n))
	}
	idx := bucketOf(v)
	if idx >= len(h.counts) {
		grown := make([]int64, idx+1)
		copy(grown, h.counts)
		h.counts = grown
	}
	h.counts[idx] += n
	h.count += n
	h.sum += v * n
	if h.count == n || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Merge folds o into h. Merging is associative and commutative, so
// routine- and shard-local histograms combine into global percentiles in
// any grouping. o is unchanged; a nil or empty o is a no-op.
func (h *Hist) Merge(o *Hist) {
	if o == nil || o.count == 0 {
		return
	}
	if len(o.counts) > len(h.counts) {
		grown := make([]int64, len(o.counts))
		copy(grown, h.counts)
		h.counts = grown
	}
	for i, n := range o.counts {
		h.counts[i] += n
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
}

// Count returns the number of observations.
func (h *Hist) Count() int64 { return h.count }

// Sum returns the exact sum of all observations (tracked outside the
// buckets, so it carries no quantization error).
func (h *Hist) Sum() int64 { return h.sum }

// Min returns the exact smallest observation (0 when empty).
func (h *Hist) Min() int64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the exact largest observation (0 when empty).
func (h *Hist) Max() int64 { return h.max }

// Mean returns the exact arithmetic mean (0 when empty).
func (h *Hist) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// BucketCount returns the number of observations recorded exactly at
// value v, meaningful only in the exact region (v < ExactLimit); for
// larger v it returns the count of v's whole log bucket. Tests and
// cost-distribution reports use it to read the histogram back as the
// cost-indexed count vector it replaced.
func (h *Hist) BucketCount(v int64) int64 {
	idx := bucketOf(v)
	if idx >= len(h.counts) {
		return 0
	}
	return h.counts[idx]
}

// Percentile returns the value at quantile q in [0,1]: the lower bound of
// the first bucket whose cumulative count reaches ceil(q·count) — in the
// exact region (values < ExactLimit) bit-identical to the engine's
// sorted-sample percentile rule, beyond it a lower bound within 1/32 of
// the exact order statistic. Returns 0 on an empty histogram.
func (h *Hist) Percentile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	if rank > h.count {
		rank = h.count
	}
	var cum int64
	for idx, n := range h.counts {
		cum += n
		if cum >= rank {
			return float64(lowerOf(idx))
		}
	}
	return float64(h.max) // unreachable: cum reaches count >= rank
}
