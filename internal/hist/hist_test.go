package hist

import (
	"math/rand"
	"sort"
	"testing"
)

// exactPercentile is the engine's sorted-sample rule (see
// engine.Result): the smallest value v such that at least ceil(q·total)
// observations are <= v.
func exactPercentile(sorted []int64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(q*float64(len(sorted)) + 0.9999999999)
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return float64(sorted[rank-1])
}

func observeAll(h *Hist, vs []int64) {
	for _, v := range vs {
		h.Observe(v)
	}
}

// TestHistExactRegion pins the core accuracy claim: for values below
// ExactLimit (64) the histogram has exact unit buckets, so its
// percentiles are bit-identical to the engine's sorted-sample rule at
// every quantile.
func TestHistExactRegion(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vs := make([]int64, 5000)
	for i := range vs {
		vs[i] = int64(rng.Intn(base)) // all exact
	}
	var h Hist
	observeAll(&h, vs)
	sorted := append([]int64(nil), vs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, q := range []float64{0, 0.01, 0.1, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1} {
		got, want := h.Percentile(q), exactPercentile(sorted, q)
		if got != want {
			t.Errorf("Percentile(%v) = %v, want exact %v", q, got, want)
		}
	}
	if h.Min() != sorted[0] || h.Max() != sorted[len(sorted)-1] {
		t.Errorf("Min/Max = %d/%d, want %d/%d", h.Min(), h.Max(), sorted[0], sorted[len(sorted)-1])
	}
	var sum int64
	for _, v := range vs {
		sum += v
	}
	if h.Sum() != sum || h.Count() != int64(len(vs)) {
		t.Errorf("Sum/Count = %d/%d, want %d/%d", h.Sum(), h.Count(), sum, len(vs))
	}
}

// TestHistBoundedError pins the log-bucket accuracy bound: beyond the
// exact region the reported percentile is a lower bound on the exact
// order statistic with relative error at most 1/subHalf.
func TestHistBoundedError(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	vs := make([]int64, 20000)
	for i := range vs {
		// Log-uniform over ~6 decades, the shape of latency samples.
		vs[i] = int64(1 + rng.Float64()*float64(int64(1)<<uint(10+rng.Intn(30))))
	}
	var h Hist
	observeAll(&h, vs)
	sorted := append([]int64(nil), vs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, q := range []float64{0.01, 0.5, 0.9, 0.99, 0.999, 1} {
		got, want := h.Percentile(q), exactPercentile(sorted, q)
		if got > want {
			t.Errorf("Percentile(%v) = %v exceeds exact %v (must be a lower bound)", q, got, want)
		}
		if want > 0 && (want-got)/want > 1.0/subHalf {
			t.Errorf("Percentile(%v) = %v, exact %v: relative error %.4f > 1/%d",
				q, got, want, (want-got)/want, subHalf)
		}
	}
}

// TestHistBucketRoundTrip checks the bucket geometry invariants for every
// value near every power-of-two boundary: lowerOf(bucketOf(v)) <= v,
// bucket indices are monotone in v, and lower bounds are monotone in the
// index.
func TestHistBucketRoundTrip(t *testing.T) {
	check := func(v int64) {
		idx := bucketOf(v)
		if lo := lowerOf(idx); lo > v {
			t.Fatalf("lowerOf(bucketOf(%d)) = %d > %d", v, lo, v)
		}
		if idx+1 < bucketOf(v) {
			t.Fatalf("bucketOf not monotone at %d", v)
		}
		if lowerOf(idx+1) <= lowerOf(idx) {
			t.Fatalf("lowerOf not monotone at index %d", idx)
		}
	}
	for _, b := range []int64{0, 1, 63, 64, 65, 127, 128, 1 << 20, 1 << 40, 1 << 62} {
		for d := int64(-2); d <= 2; d++ {
			if v := b + d; v >= 0 {
				check(v)
			}
		}
	}
	// The relative width bound: bucket width / lower bound <= 1/subHalf
	// in the log region.
	for exp := uint(7); exp < 63; exp++ {
		v := int64(1) << exp
		idx := bucketOf(v)
		width := lowerOf(idx+1) - lowerOf(idx)
		if float64(width)/float64(lowerOf(idx)) > 1.0/subHalf {
			t.Errorf("bucket %d (v=%d): width %d too wide for lower %d", idx, v, width, lowerOf(idx))
		}
	}
}

// TestHistMerge pins the merge property the concurrent measurement paths
// depend on: merging per-client histograms in any grouping equals
// observing the concatenated stream into one histogram.
func TestHistMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	parts := make([][]int64, 5)
	var all []int64
	for i := range parts {
		vs := make([]int64, 1000+rng.Intn(2000))
		for j := range vs {
			vs[j] = int64(rng.Intn(1 << 20))
		}
		parts[i] = vs
		all = append(all, vs...)
	}

	var direct Hist
	observeAll(&direct, all)

	// Left fold.
	var fold Hist
	for _, vs := range parts {
		var h Hist
		observeAll(&h, vs)
		fold.Merge(&h)
	}
	// Tree fold with a different grouping.
	var left, right, tree Hist
	observeAll(&left, parts[0])
	observeAll(&left, parts[1])
	var mid Hist
	observeAll(&mid, parts[2])
	left.Merge(&mid)
	observeAll(&right, parts[3])
	observeAll(&right, parts[4])
	tree.Merge(&right)
	tree.Merge(&left)

	for _, m := range []*Hist{&fold, &tree} {
		if m.Count() != direct.Count() || m.Sum() != direct.Sum() ||
			m.Min() != direct.Min() || m.Max() != direct.Max() {
			t.Fatalf("merged summary diverges: %+v vs %+v", m, direct)
		}
		for _, q := range []float64{0.1, 0.5, 0.99, 1} {
			if m.Percentile(q) != direct.Percentile(q) {
				t.Errorf("merged Percentile(%v) = %v, direct %v", q, m.Percentile(q), direct.Percentile(q))
			}
		}
	}

	// Merging nil and empty histograms is a no-op.
	before := fold.Count()
	fold.Merge(nil)
	fold.Merge(&Hist{})
	if fold.Count() != before {
		t.Errorf("nil/empty merge changed the histogram")
	}
}

// TestHistObserveN pins the batch-observation path the engine's
// batch-cost accounting uses: ObserveN(v, n) must be indistinguishable
// from n Observe(v) calls, including Min/Max/Sum bookkeeping, and
// BucketCount must read exact-region counts back verbatim.
func TestHistObserveN(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	var batched, single Hist
	counts := map[int64]int64{}
	for i := 0; i < 200; i++ {
		v := int64(rng.Intn(200)) // spans exact and log regions
		n := int64(1 + rng.Intn(7))
		batched.ObserveN(v, n)
		for j := int64(0); j < n; j++ {
			single.Observe(v)
		}
		counts[v] += n
	}
	if batched.Count() != single.Count() || batched.Sum() != single.Sum() ||
		batched.Min() != single.Min() || batched.Max() != single.Max() {
		t.Fatalf("ObserveN summary diverges from repeated Observe: %+v vs %+v", batched, single)
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
		if batched.Percentile(q) != single.Percentile(q) {
			t.Errorf("Percentile(%v) = %v batched, %v single", q, batched.Percentile(q), single.Percentile(q))
		}
	}
	for v, n := range counts {
		if v < ExactLimit {
			if got := batched.BucketCount(v); got != n {
				t.Errorf("BucketCount(%d) = %d, want %d", v, got, n)
			}
		}
	}
	batched.ObserveN(5, 0) // zero count is a no-op
	if batched.Count() != single.Count() {
		t.Errorf("ObserveN(_, 0) changed the histogram")
	}
}

// TestHistEmptyAndNegative pins the zero-value contract (an empty
// histogram reports zeros everywhere, never divides by zero) and the
// domain guard: observations are non-negative counts, so Observe and
// ObserveN must reject negatives loudly rather than corrupt a bucket.
func TestHistEmptyAndNegative(t *testing.T) {
	var h Hist
	if h.Percentile(0.5) != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Errorf("empty histogram must report zeros")
	}
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s must panic", name)
			}
		}()
		f()
	}
	mustPanic("Observe(-1)", func() { h.Observe(-1) })
	mustPanic("ObserveN(-1, 2)", func() { h.ObserveN(-1, 2) })
	mustPanic("ObserveN(1, -2)", func() { h.ObserveN(1, -2) })
}
