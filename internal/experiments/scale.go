// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 5) plus the appendix observations (Remark 10,
// Lemma 9) and the ablations called out in DESIGN.md. Each experiment
// returns a report.Table whose layout mirrors the paper's, so shapes (who
// wins, by what factor, where crossovers fall) can be compared directly;
// EXPERIMENTS.md records paper-vs-measured values.
package experiments

import (
	"fmt"

	"github.com/ksan-net/ksan/internal/workload"
)

// Scale selects the experiment dimensions. The paper's exact sizes are
// preserved where the machine allows; the cubic DP bounds which instance
// sizes get an "Optimal Tree" row (the paper itself left that row empty
// for its 10⁴-node Facebook trace).
type Scale struct {
	Name     string
	Requests int // trace length m (paper: 10⁶)

	UniformNodes  int // paper: 100
	HPCNodes      int // paper: 500
	ProjNodes     int // paper: 100
	FBNodes       int // paper: 10⁴
	TemporalNodes int // paper: 1023

	// Ks are the arities swept in Tables 1–7 (paper: 2..10).
	Ks []int
	// OptMaxN bounds the cubic-DP instances; larger workloads skip the
	// "Optimal Tree" row (Tables 1–7) or fall back to the weight-balanced
	// approximation (Table 8), clearly labelled.
	OptMaxN int
	Seed    int64
}

// Quick is sized for unit tests and benchmarks (seconds).
var Quick = Scale{
	Name:          "quick",
	Requests:      20_000,
	UniformNodes:  64,
	HPCNodes:      128,
	ProjNodes:     64,
	FBNodes:       512,
	TemporalNodes: 127,
	Ks:            []int{2, 3, 5, 10},
	OptMaxN:       128,
	Seed:          1,
}

// Default runs in minutes on a small machine and preserves the paper's
// node counts except for the Facebook trace and the temporal workloads,
// whose DP rows would otherwise dominate the runtime.
var Default = Scale{
	Name:          "default",
	Requests:      200_000,
	UniformNodes:  100,
	HPCNodes:      500,
	ProjNodes:     100,
	FBNodes:       2048,
	TemporalNodes: 255,
	Ks:            []int{2, 3, 4, 5, 6, 7, 8, 9, 10},
	OptMaxN:       512,
	Seed:          1,
}

// Paper uses the paper's dimensions wherever the algorithms allow: the
// optimal-tree row for the 1023-node temporal workloads alone costs hours
// of cubic DP, and the 10⁴-node Facebook optimum remains out of reach
// exactly as in the paper (Table 3 prints "-").
var Paper = Scale{
	Name:          "paper",
	Requests:      1_000_000,
	UniformNodes:  100,
	HPCNodes:      500,
	ProjNodes:     100,
	FBNodes:       10_000,
	TemporalNodes: 1023,
	Ks:            []int{2, 3, 4, 5, 6, 7, 8, 9, 10},
	OptMaxN:       1100,
	Seed:          1,
}

// ScaleByName resolves quick/default/paper.
func ScaleByName(name string) (Scale, error) {
	switch name {
	case "quick":
		return Quick, nil
	case "default", "":
		return Default, nil
	case "paper":
		return Paper, nil
	}
	return Scale{}, fmt.Errorf("experiments: unknown scale %q (want quick, default or paper)", name)
}

// Workloads bundles one generated trace per dataset of the evaluation.
type Workloads struct {
	Uniform   workload.Trace
	HPC       workload.Trace
	Proj      workload.Trace
	FB        workload.Trace
	Temporals map[float64]workload.Trace
}

// TemporalPs are the paper's temporal complexity parameters.
var TemporalPs = []float64{0.25, 0.5, 0.75, 0.9}

// MakeWorkloads generates all traces for a scale (deterministic in the
// scale's seed).
func MakeWorkloads(sc Scale) Workloads {
	w := Workloads{
		Uniform:   workload.Uniform(sc.UniformNodes, sc.Requests, sc.Seed),
		HPC:       workload.HPCLike(sc.HPCNodes, sc.Requests, sc.Seed+1),
		Proj:      workload.ProjecToRLike(sc.ProjNodes, sc.Requests, sc.Seed+2),
		FB:        workload.FacebookLike(sc.FBNodes, sc.Requests, sc.Seed+3),
		Temporals: map[float64]workload.Trace{},
	}
	for i, p := range TemporalPs {
		w.Temporals[p] = workload.Temporal(sc.TemporalNodes, sc.Requests, p, sc.Seed+10+int64(i))
	}
	return w
}
