package experiments

import (
	"context"
	"fmt"

	"github.com/ksan-net/ksan/internal/engine"
	"github.com/ksan-net/ksan/internal/karynet"
	"github.com/ksan-net/ksan/internal/lazynet"
	"github.com/ksan-net/ksan/internal/report"
	"github.com/ksan-net/ksan/internal/statictree"
	"github.com/ksan-net/ksan/internal/workload"
)

// LazyVsReactive compares the fully reactive k-ary SplayNet against the
// partially reactive meta-algorithm (lazynet) across reconfiguration
// thresholds α, using the model's raw link-churn cost for the lazy
// rebuilds. This extends the paper's introduction discussion of lazy SANs
// ([13]) to the k-ary setting.
func LazyVsReactive(tr workload.Trace, k int, alphas []int64) report.Table {
	t, err := LazyVsReactiveCtx(context.Background(), engine.New(), tr, k, alphas)
	if err != nil {
		// The historical signature has no error path; fail as loudly as the
		// seed code did.
		panic(err)
	}
	return t
}

// LazyVsReactiveCtx is LazyVsReactive on an explicit engine and context.
// The lazy networks replay their observed traffic into rebuilds
// internally, so each network instance must see the trace strictly in
// order: the engine serves each row sequentially and the rows themselves
// run one after another.
func LazyVsReactiveCtx(ctx context.Context, eng *engine.Engine, tr workload.Trace, k int, alphas []int64) (report.Table, error) {
	t := report.Table{
		Title:  fmt.Sprintf("Extension: fully reactive vs partially reactive (lazy) networks (%s, k=%d)", tr.Name, k),
		Header: []string{"network", "routing", "adjustment", "total", "rebuilds"},
	}
	reactive, err := eng.Run(ctx, karynet.MustNew(tr.N, k), tr.Reqs)
	if err != nil {
		return t, err
	}
	t.AddRow(fmt.Sprintf("%d-ary SplayNet (reactive)", k),
		report.Count(reactive.Routing), report.Count(reactive.Adjust),
		report.Count(reactive.Total()), "-")
	full, err := statictree.Full(tr.N, k)
	if err != nil {
		return t, err
	}
	static, err := eng.Run(ctx, statictree.NewNet("full", full), tr.Reqs)
	if err != nil {
		return t, err
	}
	t.AddRow("full tree (never adjusts)",
		report.Count(static.Routing), "0", report.Count(static.Total()), "0")
	for _, a := range alphas {
		lazy := lazynet.MustNew(tr.N, k, a)
		res, err := eng.Run(ctx, lazy, tr.Reqs)
		if err != nil {
			return t, err
		}
		t.AddRow(fmt.Sprintf("lazy α=%d", a),
			report.Count(res.Routing), report.Count(res.Adjust),
			report.Count(res.Total()), fmt.Sprintf("%d", lazy.Rebuilds()))
	}
	return t, nil
}
