package experiments

import (
	"fmt"

	"github.com/ksan-net/ksan/internal/karynet"
	"github.com/ksan-net/ksan/internal/lazynet"
	"github.com/ksan-net/ksan/internal/report"
	"github.com/ksan-net/ksan/internal/sim"
	"github.com/ksan-net/ksan/internal/statictree"
	"github.com/ksan-net/ksan/internal/workload"
)

// LazyVsReactive compares the fully reactive k-ary SplayNet against the
// partially reactive meta-algorithm (lazynet) across reconfiguration
// thresholds α, using the model's raw link-churn cost for the lazy
// rebuilds. This extends the paper's introduction discussion of lazy SANs
// ([13]) to the k-ary setting.
func LazyVsReactive(tr workload.Trace, k int, alphas []int64) report.Table {
	t := report.Table{
		Title:  fmt.Sprintf("Extension: fully reactive vs partially reactive (lazy) networks (%s, k=%d)", tr.Name, k),
		Header: []string{"network", "routing", "adjustment", "total", "rebuilds"},
	}
	reactive := sim.Run(karynet.MustNew(tr.N, k), tr.Reqs)
	t.AddRow(fmt.Sprintf("%d-ary SplayNet (reactive)", k),
		report.Count(reactive.Routing), report.Count(reactive.Adjust),
		report.Count(reactive.Total()), "-")
	full, err := statictree.Full(tr.N, k)
	if err != nil {
		panic(err)
	}
	static := sim.Run(statictree.NewNet("full", full), tr.Reqs)
	t.AddRow("full tree (never adjusts)",
		report.Count(static.Routing), "0", report.Count(static.Total()), "0")
	for _, a := range alphas {
		lazy := lazynet.MustNew(tr.N, k, a)
		res := sim.Run(lazy, tr.Reqs)
		t.AddRow(fmt.Sprintf("lazy α=%d", a),
			report.Count(res.Routing), report.Count(res.Adjust),
			report.Count(res.Total()), fmt.Sprintf("%d", lazy.Rebuilds()))
	}
	return t
}
