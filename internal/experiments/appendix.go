package experiments

import (
	"context"
	"fmt"
	"math"

	"github.com/ksan-net/ksan/internal/engine"
	"github.com/ksan-net/ksan/internal/karynet"
	"github.com/ksan-net/ksan/internal/report"
	"github.com/ksan-net/ksan/internal/sim"
	"github.com/ksan-net/ksan/internal/statictree"
	"github.com/ksan-net/ksan/internal/workload"
)

// CentroidOptimality reproduces the observation of Remark 10/37: on the
// uniform workload the centroid k-ary search tree matches the DP-optimal
// tree exactly for all tested n < 10³ and k ≤ 10. For each (n,k) the table
// reports centroid/optimal total-distance ratios (1.00x = optimal) and the
// full tree's ratio for contrast.
func CentroidOptimality(ns []int, ks []int) (report.Table, bool) {
	t, all, err := CentroidOptimalityCtx(context.Background(), 0, ns, ks)
	if err != nil {
		// The historical signature has no error path; fail as loudly as the
		// seed code did.
		panic(err)
	}
	return t, all
}

// CentroidOptimalityCtx is CentroidOptimality with cancellation and an
// explicit worker bound (0 = GOMAXPROCS): the (n,k) cells are independent
// DP solves, so they shard across the pool.
func CentroidOptimalityCtx(ctx context.Context, workers int, ns []int, ks []int) (report.Table, bool, error) {
	t := report.Table{
		Title:  "Remark 10: centroid tree vs uniform-workload optimum (total distance ratios)",
		Header: []string{"n"},
	}
	for _, k := range ks {
		t.Header = append(t.Header, fmt.Sprintf("centroid k=%d", k), fmt.Sprintf("full k=%d", k))
	}
	type cell struct {
		cenRatio, fullRatio string
		optimal             bool
	}
	cells := make([]cell, len(ns)*len(ks))
	// Shard over n, not over (n,k): one UniformSolver per node count
	// answers the whole arity row, recycling its DP scratch across k.
	err := engine.ParallelFor(ctx, workers, len(ns), func(i int) error {
		n := ns[i]
		solver, err := statictree.NewUniformSolver(n)
		if err != nil {
			return err
		}
		for j, k := range ks {
			_, opt, err := solver.Optimal(k)
			if err != nil {
				return err
			}
			cen, err := statictree.Centroid(n, k)
			if err != nil {
				return err
			}
			full, err := statictree.Full(n, k)
			if err != nil {
				return err
			}
			cd := statictree.TotalDistanceUniform(cen)
			fd := statictree.TotalDistanceUniform(full)
			cells[i*len(ks)+j] = cell{
				cenRatio:  report.Ratio(cd, opt),
				fullRatio: report.Ratio(fd, opt),
				optimal:   cd == opt,
			}
		}
		return nil
	})
	if err != nil {
		return t, false, err
	}
	allOptimal := true
	for i, n := range ns {
		row := []string{fmt.Sprintf("%d", n)}
		for j := range ks {
			c := cells[i*len(ks)+j]
			row = append(row, c.cenRatio, c.fullRatio)
			if !c.optimal {
				allOptimal = false
			}
		}
		t.AddRow(row...)
	}
	return t, allOptimal, nil
}

// Lemma9Scaling reproduces the asymptotic claim of Lemma 9/36: the total
// uniform distance of both the full k-ary tree and the centroid tree is
// n²·log_k n + O(n²). The table reports total distance divided by
// n²·log_k n, which must approach 1 from either side as n grows.
func Lemma9Scaling(ns []int, ks []int) report.Table {
	t, err := Lemma9ScalingCtx(context.Background(), 0, ns, ks)
	if err != nil {
		panic(err)
	}
	return t
}

// Lemma9ScalingCtx is Lemma9Scaling with cancellation and an explicit
// worker bound; the per-(n,k) total-distance evaluations shard across the
// pool.
func Lemma9ScalingCtx(ctx context.Context, workers int, ns []int, ks []int) (report.Table, error) {
	t := report.Table{
		Title:  "Lemma 9: total distance / (n² log_k n) for full and centroid trees",
		Header: []string{"n"},
	}
	for _, k := range ks {
		t.Header = append(t.Header, fmt.Sprintf("full k=%d", k), fmt.Sprintf("centroid k=%d", k))
	}
	type cell struct{ full, cen string }
	cells := make([]cell, len(ns)*len(ks))
	err := engine.ParallelFor(ctx, workers, len(cells), func(i int) error {
		n, k := ns[i/len(ks)], ks[i%len(ks)]
		norm := float64(n) * float64(n) * math.Log(float64(n)) / math.Log(float64(k))
		full, err := statictree.Full(n, k)
		if err != nil {
			return err
		}
		cen, err := statictree.Centroid(n, k)
		if err != nil {
			return err
		}
		cells[i] = cell{
			full: fmt.Sprintf("%.3f", float64(statictree.TotalDistanceUniform(full))/norm),
			cen:  fmt.Sprintf("%.3f", float64(statictree.TotalDistanceUniform(cen))/norm),
		}
		return nil
	})
	if err != nil {
		return t, err
	}
	for i, n := range ns {
		row := []string{fmt.Sprintf("%d", n)}
		for j := range ks {
			row = append(row, cells[i*len(ks)+j].full, cells[i*len(ks)+j].cen)
		}
		t.AddRow(row...)
	}
	return t, nil
}

// EntropyBoundCheck relates measured k-ary SplayNet cost to the Theorem 13
// entropy bound on each workload: the measured/bound ratio must stay below
// a modest constant across workloads if the implementation matches the
// analysis (the bound is asymptotic, so the constant is not 1).
func EntropyBoundCheck(w Workloads, k int) report.Table {
	t, err := EntropyBoundCheckCtx(context.Background(), engine.New(), w, k)
	if err != nil {
		panic(err)
	}
	return t
}

// EntropyBoundCheckCtx is EntropyBoundCheck as a declarative grid: one
// k-ary network row crossed with the seven workloads.
func EntropyBoundCheckCtx(ctx context.Context, eng *engine.Engine, w Workloads, k int) (report.Table, error) {
	t := report.Table{
		Title:  fmt.Sprintf("Theorem 13 sanity: %d-ary SplayNet total cost vs entropy bound", k),
		Header: []string{"workload", "measured total", "entropy bound", "ratio"},
	}
	traces := []engine.TraceSpec{
		namedSpec("uniform", w.Uniform),
		namedSpec("hpc", w.HPC),
		namedSpec("projector", w.Proj),
	}
	bounds := []float64{
		workload.EntropyBound(w.Uniform),
		workload.EntropyBound(w.HPC),
		workload.EntropyBound(w.Proj),
	}
	for _, p := range TemporalPs {
		tr := w.Temporals[p]
		traces = append(traces, namedSpec(fmt.Sprintf("temporal-%.2f", p), tr))
		bounds = append(bounds, workload.EntropyBound(tr))
	}
	nets := []engine.NetworkSpec{{
		Name: fmt.Sprintf("%d-ary SplayNet", k),
		Make: func(n int) sim.Network { return karynet.MustNew(n, k) },
	}}
	grid, err := eng.RunGrid(ctx, nets, traces)
	if err != nil {
		return t, err
	}
	for j, tr := range traces {
		total := grid[0][j].Total()
		t.AddRow(tr.Name, report.Count(total), fmt.Sprintf("%.0f", bounds[j]),
			fmt.Sprintf("%.2f", float64(total)/bounds[j]))
	}
	return t, nil
}
