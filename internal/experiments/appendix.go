package experiments

import (
	"fmt"
	"math"

	"github.com/ksan-net/ksan/internal/karynet"
	"github.com/ksan-net/ksan/internal/report"
	"github.com/ksan-net/ksan/internal/sim"
	"github.com/ksan-net/ksan/internal/statictree"
	"github.com/ksan-net/ksan/internal/workload"
)

// CentroidOptimality reproduces the observation of Remark 10/37: on the
// uniform workload the centroid k-ary search tree matches the DP-optimal
// tree exactly for all tested n < 10³ and k ≤ 10. For each (n,k) the table
// reports centroid/optimal total-distance ratios (1.00x = optimal) and the
// full tree's ratio for contrast.
func CentroidOptimality(ns []int, ks []int) (report.Table, bool) {
	t := report.Table{
		Title:  "Remark 10: centroid tree vs uniform-workload optimum (total distance ratios)",
		Header: []string{"n"},
	}
	for _, k := range ks {
		t.Header = append(t.Header, fmt.Sprintf("centroid k=%d", k), fmt.Sprintf("full k=%d", k))
	}
	allOptimal := true
	for _, n := range ns {
		row := []string{fmt.Sprintf("%d", n)}
		for _, k := range ks {
			_, opt, err := statictree.OptimalUniform(n, k)
			if err != nil {
				panic(err)
			}
			cen, err := statictree.Centroid(n, k)
			if err != nil {
				panic(err)
			}
			full, err := statictree.Full(n, k)
			if err != nil {
				panic(err)
			}
			cd := statictree.TotalDistanceUniform(cen)
			fd := statictree.TotalDistanceUniform(full)
			if cd != opt {
				allOptimal = false
			}
			row = append(row, report.Ratio(cd, opt), report.Ratio(fd, opt))
		}
		t.AddRow(row...)
	}
	return t, allOptimal
}

// Lemma9Scaling reproduces the asymptotic claim of Lemma 9/36: the total
// uniform distance of both the full k-ary tree and the centroid tree is
// n²·log_k n + O(n²). The table reports total distance divided by
// n²·log_k n, which must approach 1 from either side as n grows.
func Lemma9Scaling(ns []int, ks []int) report.Table {
	t := report.Table{
		Title:  "Lemma 9: total distance / (n² log_k n) for full and centroid trees",
		Header: []string{"n"},
	}
	for _, k := range ks {
		t.Header = append(t.Header, fmt.Sprintf("full k=%d", k), fmt.Sprintf("centroid k=%d", k))
	}
	for _, n := range ns {
		row := []string{fmt.Sprintf("%d", n)}
		for _, k := range ks {
			norm := float64(n) * float64(n) * math.Log(float64(n)) / math.Log(float64(k))
			full, err := statictree.Full(n, k)
			if err != nil {
				panic(err)
			}
			cen, err := statictree.Centroid(n, k)
			if err != nil {
				panic(err)
			}
			row = append(row,
				fmt.Sprintf("%.3f", float64(statictree.TotalDistanceUniform(full))/norm),
				fmt.Sprintf("%.3f", float64(statictree.TotalDistanceUniform(cen))/norm))
		}
		t.AddRow(row...)
	}
	return t
}

// EntropyBoundCheck relates measured k-ary SplayNet cost to the Theorem 13
// entropy bound on each workload: the measured/bound ratio must stay below
// a modest constant across workloads if the implementation matches the
// analysis (the bound is asymptotic, so the constant is not 1).
func EntropyBoundCheck(w Workloads, k int) report.Table {
	t := report.Table{
		Title:  fmt.Sprintf("Theorem 13 sanity: %d-ary SplayNet total cost vs entropy bound", k),
		Header: []string{"workload", "measured total", "entropy bound", "ratio"},
	}
	add := func(name string, tr workload.Trace) {
		r := sim.Run(karynet.MustNew(tr.N, k), tr.Reqs)
		bound := workload.EntropyBound(tr)
		t.AddRow(name, report.Count(r.Total()), fmt.Sprintf("%.0f", bound),
			fmt.Sprintf("%.2f", float64(r.Total())/bound))
	}
	add("uniform", w.Uniform)
	add("hpc", w.HPC)
	add("projector", w.Proj)
	for _, p := range TemporalPs {
		add(fmt.Sprintf("temporal-%.2f", p), w.Temporals[p])
	}
	return t
}
