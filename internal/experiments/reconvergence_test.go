package experiments

import (
	"context"
	"strings"
	"testing"
)

// TestAblationReconvergence runs A6 at quick scale and checks the policy
// compositions actually separate on the drifting trace: every row renders,
// and the damped lazy net rebuilds less than the bare lazy net (the
// cooldown binds on the boundary spike).
func TestAblationReconvergence(t *testing.T) {
	tbl, err := AblationReconvergenceCtx(context.Background(), 0, Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("A6 has %d rows, want 5", len(tbl.Rows))
	}
	adjust := map[string]string{}
	for _, row := range tbl.Rows {
		if len(row) != 7 {
			t.Fatalf("A6 row %v has %d cells, want 7", row, len(row))
		}
		switch {
		case strings.Contains(row[0], "(lazy net)"):
			adjust["lazy"] = row[3]
		case strings.Contains(row[0], "(damped lazy net)"):
			adjust["damped"] = row[3]
		}
	}
	if adjust["lazy"] == "" || adjust["damped"] == "" {
		t.Fatalf("missing lazy rows in %v", tbl.Rows)
	}
	if adjust["lazy"] == adjust["damped"] {
		t.Errorf("cooldown did not bind: lazy and damped nets both spent %s on adjustment", adjust["lazy"])
	}
	t.Log("\n" + tbl.Render())
}
