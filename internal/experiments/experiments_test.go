package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"github.com/ksan-net/ksan/internal/workload"
)

// The tests in this file assert the qualitative shapes the paper reports —
// who wins, in which locality regime, and how trends move with k — at the
// quick scale, so the full suite stays honest under refactoring.

func TestKAryTableShapes(t *testing.T) {
	sc := Quick
	tr := workload.Temporal(sc.TemporalNodes, sc.Requests, 0.5, 3)
	res := KAryTable("shape", tr, sc)

	// Row 1 trend: routing cost decreases as k grows (Tables 1-7).
	if !(res.Routing[10] < res.Routing[3] && res.Routing[3] < res.Routing[2]) {
		t.Errorf("routing not decreasing in k: %v", res.Routing)
	}
	// The static full tree's distance also decreases with k.
	if !(res.FullDist[10] < res.FullDist[2]) {
		t.Errorf("full tree distance not decreasing in k: %v", res.FullDist)
	}
	// The optimal tree is never worse than the full tree on the same trace.
	for _, k := range sc.Ks {
		if res.OptDist[k] > 0 && res.OptDist[k] > res.FullDist[k] {
			t.Errorf("k=%d: optimal %d worse than full %d", k, res.OptDist[k], res.FullDist[k])
		}
	}
	// Table formatting: one column per k plus the label column.
	if got, want := len(res.Table.Header), len(sc.Ks)+1; got != want {
		t.Errorf("header has %d columns, want %d", got, want)
	}
	if len(res.Table.Rows) != 4 {
		t.Errorf("expected 4 rows, got %d", len(res.Table.Rows))
	}
}

func TestKAryTableSkipsOptimalBeyondLimit(t *testing.T) {
	sc := Quick
	sc.OptMaxN = 10 // force the skip
	tr := workload.Uniform(32, 2000, 1)
	res := KAryTable("skip", tr, sc)
	for _, k := range sc.Ks {
		if res.OptDist[k] != 0 {
			t.Errorf("k=%d: optimal computed despite the limit", k)
		}
	}
	for _, cell := range res.Table.Rows[2][1:] {
		if cell != "-" {
			t.Errorf("optimal row cell %q, want '-' (paper's Facebook column)", cell)
		}
	}
}

func TestTable8LocalityTrend(t *testing.T) {
	sc := Quick
	w := MakeWorkloads(sc)
	rows, tbl := Table8(w, sc)
	if len(rows) != 8 {
		t.Fatalf("Table 8 must have 8 workloads, got %d", len(rows))
	}
	byName := map[string]Table8Row{}
	for _, r := range rows {
		byName[r.Workload] = r
	}
	// The paper's Section 5.2 observations:
	// (1) 3-SplayNet degrades against SplayNet as temporal locality rises.
	r25 := byName["Temporal 0.25"].SplayAvg / byName["Temporal 0.25"].CentroidAvg
	r90 := byName["Temporal 0.90"].SplayAvg / byName["Temporal 0.90"].CentroidAvg
	if r25 <= r90 {
		t.Errorf("SplayNet/3SN ratio must fall with locality: p=0.25 %.3f vs p=0.9 %.3f", r25, r90)
	}
	// (2) static trees lose badly at high locality (full binary ratio > 1.5
	// at p=0.9) and win at low locality (< 1 on uniform).
	if f := byName["Temporal 0.90"].FullAvg / byName["Temporal 0.90"].CentroidAvg; f < 1.5 {
		t.Errorf("full tree should lose at p=0.9, ratio %.2f", f)
	}
	if f := byName["Uniform"].FullAvg / byName["Uniform"].CentroidAvg; f > 1 {
		t.Errorf("full tree should win on uniform, ratio %.2f", f)
	}
	// (3) the static optimal tree is never worse than the full tree.
	for name, r := range byName {
		if r.OptAvg > r.FullAvg*1.0001 {
			t.Errorf("%s: optimal %.3f worse than full %.3f", name, r.OptAvg, r.FullAvg)
		}
	}
	// The Facebook row must fall back to the approximation at quick scale
	// when n exceeds the DP limit.
	if sc.FBNodes > sc.OptMaxN && !byName["Facebook"].OptApproxima {
		t.Error("Facebook row should be flagged approx")
	}
	if !strings.Contains(tbl.Render(), "3-SplayNet") {
		t.Error("table header missing 3-SplayNet")
	}
}

func TestCentroidOptimalityExperiment(t *testing.T) {
	tbl, all := CentroidOptimality([]int{5, 17, 40, 100}, []int{2, 3, 7})
	if !all {
		t.Error("Remark 10 violated: centroid tree not optimal on a tested instance")
	}
	if len(tbl.Rows) != 4 {
		t.Errorf("rows %d", len(tbl.Rows))
	}
	// Every centroid cell must be exactly "1.00x".
	for _, row := range tbl.Rows {
		for i := 1; i < len(row); i += 2 {
			if row[i] != "1.00x" {
				t.Errorf("centroid cell %q, want 1.00x", row[i])
			}
		}
	}
}

func TestLemma9ScalingExperiment(t *testing.T) {
	tbl := Lemma9Scaling([]int{128, 512}, []int{2, 4})
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows %d", len(tbl.Rows))
	}
	// All normalized ratios must sit in (0,1.5) (n² log_k n + O(n²)).
	for _, row := range tbl.Rows {
		for _, cell := range row[1:] {
			var v float64
			if _, err := sscanF(cell, &v); err != nil {
				t.Fatalf("bad cell %q", cell)
			}
			if v <= 0 || v > 1.5 {
				t.Errorf("normalized total distance %.3f outside (0,1.5]", v)
			}
		}
	}
}

func TestEntropyBoundCheckExperiment(t *testing.T) {
	sc := Quick
	w := MakeWorkloads(sc)
	tbl := EntropyBoundCheck(w, 3)
	if len(tbl.Rows) != 3+len(TemporalPs) {
		t.Errorf("rows %d", len(tbl.Rows))
	}
	// Theorem 13 is an upper bound up to constants: measured/bound must
	// stay under a small constant on every workload.
	for _, row := range tbl.Rows {
		var ratio float64
		if _, err := sscanF(row[3], &ratio); err != nil {
			t.Fatalf("bad ratio cell %q", row[3])
		}
		if ratio > 3 {
			t.Errorf("%s: measured/bound ratio %.2f implausibly high", row[0], ratio)
		}
	}
}

func TestAblationsRun(t *testing.T) {
	tr := workload.Temporal(64, 5000, 0.5, 5)
	ks := []int{2, 4}
	for _, tbl := range []struct {
		name string
		rows int
	}{
		{"cost", len(AblationCostAccounting(tr, ks).Rows)},
		{"semi", len(AblationSemiSplayOnly(tr, ks).Rows)},
		{"block", len(AblationBlockPolicy(tr, ks).Rows)},
		{"initial", len(AblationInitialTopology(tr, 3).Rows)},
		{"policy", len(AblationPolicyGrid(tr, 3).Rows)},
	} {
		if tbl.rows < 2 {
			t.Errorf("ablation %s has %d rows", tbl.name, tbl.rows)
		}
	}
}

func TestAblationPolicyGridShapes(t *testing.T) {
	// The A5 grid must cover the whole plane — the three canonical corners
	// plus the compositions the policy layer makes free — and its numbers
	// must show the qualitative story: on a local workload the fully
	// reactive net beats the frozen topology on routing, the frozen rows
	// charge no adjustment, and only rebuild rows report rebuild counts.
	tr := workload.Temporal(64, 6000, 0.75, 8)
	tbl := AblationPolicyGrid(tr, 3)
	if len(tbl.Rows) != 8 {
		t.Fatalf("policy grid has %d rows, want 8", len(tbl.Rows))
	}
	cell := func(row []string, col int) int64 {
		var v int64
		if _, err := fmt.Sscan(row[col], &v); err != nil {
			t.Fatalf("bad cell %q: %v", row[col], err)
		}
		return v
	}
	byTrig := map[string][]string{}
	for _, row := range tbl.Rows {
		byTrig[strings.Fields(row[0])[0]+"/"+row[1]] = row
	}
	reactive, frozen := byTrig["always/splay"], byTrig["never/none"]
	warmed := byTrig["first("+fmt.Sprint(int64(tr.Len())/10)+")/splay"]
	lazySplay := byTrig["alpha("+fmt.Sprint(2*int64(tr.Len()))+")/splay"]
	rebuild := byTrig["alpha("+fmt.Sprint(2*int64(tr.Len()))+")/rebuild-wb"]
	for name, row := range map[string][]string{
		"always×splay": reactive, "never×none": frozen,
		"first×splay": warmed, "alpha×splay": lazySplay, "alpha×rebuild-wb": rebuild,
	} {
		if row == nil {
			t.Fatalf("grid is missing the %s composition (rows: %v)", name, tbl.Rows)
		}
	}
	if cell(reactive, 2) >= cell(frozen, 2) {
		t.Errorf("reactive routing %s not below frozen %s on a local workload", reactive[2], frozen[2])
	}
	if cell(frozen, 3) != 0 {
		t.Errorf("frozen row charged adjustment %s", frozen[3])
	}
	// Frozen-after-warmup adjusts during the prefix only: its adjustment
	// cost is positive yet far below the fully reactive net's.
	if a := cell(warmed, 3); a == 0 || a >= cell(reactive, 3) {
		t.Errorf("frozen-after-warmup adjustment %s, want in (0, reactive %s)", warmed[3], reactive[3])
	}
	if rebuild[5] == "-" || frozen[5] != "-" {
		t.Errorf("rebuild counts misplaced: rebuild row %q, frozen row %q", rebuild[5], frozen[5])
	}
}

func TestAblationLinkChurnExceedsRotations(t *testing.T) {
	// A single rotation rewires several links; the A1 ablation must show
	// links/rotation strictly above 1 (the paper's unit-cost rotation
	// assumption understates physical churn).
	tr := workload.Temporal(64, 5000, 0.5, 6)
	tbl := AblationCostAccounting(tr, []int{2, 6})
	for _, row := range tbl.Rows {
		var perRot float64
		if _, err := sscanF(row[4], &perRot); err != nil {
			t.Fatalf("bad cell %q", row[4])
		}
		if perRot <= 1 {
			t.Errorf("k=%s: links per rotation %.2f, expected > 1", row[0], perRot)
		}
	}
}

func TestScaleByName(t *testing.T) {
	for _, name := range []string{"quick", "default", "paper", ""} {
		if _, err := ScaleByName(name); err != nil {
			t.Errorf("ScaleByName(%q): %v", name, err)
		}
	}
	if _, err := ScaleByName("bogus"); err == nil {
		t.Error("bogus scale accepted")
	}
}

func TestMakeWorkloadsDeterministic(t *testing.T) {
	a := MakeWorkloads(Quick)
	b := MakeWorkloads(Quick)
	if a.HPC.Reqs[42] != b.HPC.Reqs[42] || a.Temporals[0.9].Reqs[7] != b.Temporals[0.9].Reqs[7] {
		t.Error("workload generation not deterministic")
	}
	if a.FB.N != Quick.FBNodes || a.Uniform.Len() != Quick.Requests {
		t.Error("workload dimensions do not follow the scale")
	}
}

func TestRunAllQuickProducesAllSections(t *testing.T) {
	var buf bytes.Buffer
	RunAll(&buf, Quick)
	out := buf.String()
	for _, want := range []string{
		"Table 1", "Table 2", "Table 3", "Table 4", "Table 5", "Table 6", "Table 7", "Table 8",
		"Remark 10", "Lemma 9", "Theorem 13",
		"Ablation A1", "Ablation A2", "Ablation A3", "Ablation A4", "Ablation A5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("suite output missing %q", want)
		}
	}
}

// sscanF parses a leading float from a table cell.
func sscanF(s string, v *float64) (int, error) {
	return fmt.Sscan(strings.TrimSuffix(s, "x"), v)
}
