package experiments

import (
	"context"
	"fmt"

	"github.com/ksan-net/ksan/internal/engine"
	"github.com/ksan-net/ksan/internal/karynet"
	"github.com/ksan-net/ksan/internal/policy"
	"github.com/ksan-net/ksan/internal/report"
	"github.com/ksan-net/ksan/internal/statictree"
	"github.com/ksan-net/ksan/internal/workload"
)

// AblationReconvergence (A6 in DESIGN.md) measures how fast each policy
// composition re-converges after demand drift. The trace is a phased
// hot-set drift: three hotspot phases over the same nodes whose hot sets
// are re-drawn (different seeds) at each boundary, so the tree a policy
// built for phase k is wrong for phase k+1. The per-window cost
// time-series then shows, per policy, the cost spike at each boundary and
// how many windows it takes to fall back to the pre-boundary steady
// state. This is the regime where triggers separate: always-on splaying
// tracks the drift within a window, periodic splaying lags by its period,
// a bare cost-threshold rebuild thrashes on the boundary spike, and the
// same threshold with a cooldown rebuilds once and settles.
func AblationReconvergence(sc Scale) report.Table {
	t, err := AblationReconvergenceCtx(context.Background(), 0, sc)
	if err != nil {
		// The historical table signatures have no error path; fail as
		// loudly as the seed code did.
		panic(err)
	}
	return t
}

// AblationReconvergenceCtx is AblationReconvergence with cancellation and
// a worker bound.
func AblationReconvergenceCtx(ctx context.Context, workers int, sc Scale) (report.Table, error) {
	const (
		k       = 4
		phases  = 3
		winsPer = 10 // windows per phase; boundaries land exactly on window edges
		hotFrac = 0.1
		hotOpn  = 0.9
	)
	n := sc.UniformNodes
	mPhase := sc.Requests / phases
	mPhase -= mPhase % winsPer // keep every phase an exact number of windows
	win := mPhase / winsPer

	ph := make([]workload.Phase, phases)
	for i := range ph {
		g := workload.HotspotGen(n, mPhase, hotFrac, hotOpn, sc.Seed+100+int64(i))
		ph[i] = workload.Phase{Gen: g, M: mPhase}
	}
	gen, err := workload.PhasedGen("hot-set drift", ph)
	if err != nil {
		return report.Table{}, err
	}

	t := report.Table{
		Title: fmt.Sprintf("Ablation A6: re-convergence under drift (%s, n=%d, k=%d, %d×%d requests, window=%d)",
			gen.Label(), n, k, phases, mPhase, win),
		Header: []string{"trigger", "adjuster", "routing", "adjust", "total", "spike", "reconv windows"},
	}

	// The threshold is deliberately tight (a rebuild every few hundred
	// requests at typical path lengths): the bare trigger then thrashes on
	// the post-boundary cost spike, which is exactly what the cooldown
	// exists to damp — the damped row may rebuild at most once per
	// cooldown stretch.
	alpha := int64(mPhase / 2)
	cooldown := int64(mPhase / 2)
	rebuildWB := func() policy.Adjuster { return policy.Rebuild("rebuild-wb", statictree.WeightBalanced) }
	rows := []struct {
		note string
		trig func() policy.Trigger
		adj  func() policy.Adjuster
	}{
		{"(k-ary SplayNet)", policy.Always, policy.Splay},
		{"(periodic splay)", func() policy.Trigger { return policy.EveryM(4) }, policy.Splay},
		{"(lazy net)", func() policy.Trigger { return policy.Alpha(alpha) }, rebuildWB},
		{"(damped lazy net)", func() policy.Trigger { return policy.AlphaHysteresis(alpha, cooldown) }, rebuildWB},
		{"(static balanced)", policy.Never, policy.None},
	}

	eng := engine.New(engine.WithWorkers(workers), engine.WithWindow(win))
	for _, r := range rows {
		trig, adj := r.trig(), r.adj()
		label := fmt.Sprintf("%s×%s", trig.Name(), adj.Name())
		net, err := karynet.Compose(label, n, k, trig, adj)
		if err != nil {
			return t, err
		}
		res, err := eng.RunGen(ctx, net, gen)
		if err != nil {
			return t, err
		}
		spike, reconv := reconvergence(res.Series, winsPer, phases)
		trigCell := trig.Name()
		if r.note != "" {
			trigCell += " " + r.note
		}
		t.AddRow(trigCell, adj.Name(), report.Count(res.Routing), report.Count(res.Adjust),
			report.Count(res.Total()), spike, reconv)
	}
	return t, nil
}

// reconvergence folds a phased run's window series into two cells: the
// worst boundary spike (peak post-boundary window cost over the steady
// window cost before that boundary) and the mean number of windows after
// a boundary until window cost re-enters 1.15× of the pre-boundary steady
// state ("-" when some boundary never re-converges within its phase).
func reconvergence(series []engine.WindowSample, winsPer, phases int) (spike, reconv string) {
	if len(series) != winsPer*phases {
		return "-", "-"
	}
	cost := make([]float64, len(series))
	for i, s := range series {
		cost[i] = float64(s.Routing + s.Adjust)
	}
	worst := 0.0
	sum, ok := 0, true
	for b := winsPer; b < len(cost); b += winsPer {
		steady := (cost[b-3] + cost[b-2] + cost[b-1]) / 3
		if steady == 0 {
			return "-", "-"
		}
		recovered := false
		for r := 0; r < winsPer; r++ {
			if ratio := cost[b+r] / steady; ratio > worst {
				worst = ratio
			}
			if !recovered && cost[b+r] <= 1.15*steady {
				sum += r
				recovered = true
			}
		}
		if !recovered {
			ok = false
		}
	}
	spike = fmt.Sprintf("%.2fx", worst)
	if !ok {
		return spike, "-"
	}
	boundaries := phases - 1
	return spike, fmt.Sprintf("%.1f", float64(sum)/float64(boundaries))
}
