package experiments

import (
	"context"
	"fmt"

	"github.com/ksan-net/ksan/internal/core"
	"github.com/ksan-net/ksan/internal/engine"
	"github.com/ksan-net/ksan/internal/karynet"
	"github.com/ksan-net/ksan/internal/policy"
	"github.com/ksan-net/ksan/internal/report"
	"github.com/ksan-net/ksan/internal/workload"
)

// AblationCostAccounting (A1 in DESIGN.md) quantifies the gap between the
// paper's "one unit per rotation" adjustment accounting and the model's raw
// definition (links added/removed): for each k it reports routing cost,
// rotation count and actual edge churn of k-ary SplayNet on a trace.
func AblationCostAccounting(tr workload.Trace, ks []int) report.Table {
	t, err := AblationCostAccountingCtx(context.Background(), engine.New(), tr, ks)
	if err != nil {
		// The historical signature has no error path; fail as loudly as the
		// seed code did.
		panic(err)
	}
	return t
}

// AblationCostAccountingCtx is AblationCostAccounting with cancellation.
func AblationCostAccountingCtx(ctx context.Context, eng *engine.Engine, tr workload.Trace, ks []int) (report.Table, error) {
	t := report.Table{
		Title:  fmt.Sprintf("Ablation A1: rotation count vs link churn (%s, n=%d, m=%d)", tr.Name, tr.N, tr.Len()),
		Header: []string{"k", "routing", "rotations", "links changed", "links/rotation"},
	}
	for _, k := range ks {
		net := karynet.MustNew(tr.N, k)
		net.Tree().SetTrackEdges(true)
		res, err := eng.Run(ctx, net, tr.Reqs)
		if err != nil {
			return t, err
		}
		churn := net.Tree().EdgeChanges()
		perRot := "-"
		if res.Adjust > 0 {
			perRot = fmt.Sprintf("%.2f", float64(churn)/float64(res.Adjust))
		}
		t.AddRow(fmt.Sprintf("%d", k), report.Count(res.Routing), report.Count(res.Adjust),
			report.Count(churn), perRot)
	}
	return t, nil
}

// AblationSemiSplayOnly (A2) measures the value of the double k-splay step:
// it compares the full rotation repertoire against k-semi-splay-only
// self-adjustment.
func AblationSemiSplayOnly(tr workload.Trace, ks []int) report.Table {
	t, err := AblationSemiSplayOnlyCtx(context.Background(), engine.New(), tr, ks)
	if err != nil {
		panic(err)
	}
	return t
}

// AblationSemiSplayOnlyCtx is AblationSemiSplayOnly with cancellation.
func AblationSemiSplayOnlyCtx(ctx context.Context, eng *engine.Engine, tr workload.Trace, ks []int) (report.Table, error) {
	t := report.Table{
		Title:  fmt.Sprintf("Ablation A2: full k-splay vs k-semi-splay only (%s, total cost)", tr.Name),
		Header: []string{"k", "k-splay total", "semi-only total", "semi/full"},
	}
	for _, k := range ks {
		full, err := eng.Run(ctx, karynet.MustNew(tr.N, k), tr.Reqs)
		if err != nil {
			return t, err
		}
		semi, err := karynet.Compose(fmt.Sprintf("%d-ary semi-splay", k), tr.N, k,
			policy.Always(), policy.SemiSplay())
		if err != nil {
			return t, err
		}
		s, err := eng.Run(ctx, semi, tr.Reqs)
		if err != nil {
			return t, err
		}
		t.AddRow(fmt.Sprintf("%d", k), report.Count(full.Total()), report.Count(s.Total()),
			report.Ratio(s.Total(), full.Total()))
	}
	return t, nil
}

// AblationBlockPolicy (A3) compares the id-centered block placement of the
// rebuild against the leftmost feasible placement.
func AblationBlockPolicy(tr workload.Trace, ks []int) report.Table {
	t, err := AblationBlockPolicyCtx(context.Background(), engine.New(), tr, ks)
	if err != nil {
		panic(err)
	}
	return t
}

// AblationBlockPolicyCtx is AblationBlockPolicy with cancellation.
func AblationBlockPolicyCtx(ctx context.Context, eng *engine.Engine, tr workload.Trace, ks []int) (report.Table, error) {
	t := report.Table{
		Title:  fmt.Sprintf("Ablation A3: centered vs leftmost routing-element blocks (%s, total cost)", tr.Name),
		Header: []string{"k", "centered", "leftmost", "leftmost/centered"},
	}
	for _, k := range ks {
		centered, err := eng.Run(ctx, karynet.MustNew(tr.N, k), tr.Reqs)
		if err != nil {
			return t, err
		}
		left := karynet.MustNew(tr.N, k)
		left.Tree().SetBlockPolicy(core.BlockLeftmost)
		l, err := eng.Run(ctx, left, tr.Reqs)
		if err != nil {
			return t, err
		}
		t.AddRow(fmt.Sprintf("%d", k), report.Count(centered.Total()), report.Count(l.Total()),
			report.Ratio(l.Total(), centered.Total()))
	}
	return t, nil
}

// AblationInitialTopology (A4) measures how much the initial network
// matters to k-ary SplayNet: balanced vs path vs random starts (the model
// allows an arbitrary G0; self-adjustment should largely erase it).
func AblationInitialTopology(tr workload.Trace, k int) report.Table {
	t, err := AblationInitialTopologyCtx(context.Background(), engine.New(), tr, k)
	if err != nil {
		panic(err)
	}
	return t
}

// AblationInitialTopologyCtx is AblationInitialTopology with cancellation.
func AblationInitialTopologyCtx(ctx context.Context, eng *engine.Engine, tr workload.Trace, k int) (report.Table, error) {
	t := report.Table{
		Title:  fmt.Sprintf("Ablation A4: initial topology sensitivity (%s, k=%d, total cost)", tr.Name, k),
		Header: []string{"initial", "total cost", "vs balanced"},
	}
	balanced, err := eng.Run(ctx, karynet.MustNew(tr.N, k), tr.Reqs)
	if err != nil {
		return t, err
	}
	t.AddRow("balanced", report.Count(balanced.Total()), "1.00x")
	path, err := core.NewPath(tr.N, k)
	if err != nil {
		return t, err
	}
	p, err := eng.Run(ctx, karynet.NewFromTree(path), tr.Reqs)
	if err != nil {
		return t, err
	}
	t.AddRow("path", report.Count(p.Total()), report.Ratio(p.Total(), balanced.Total()))
	rnd, err := core.NewRandom(tr.N, k, 99)
	if err != nil {
		return t, err
	}
	r, err := eng.Run(ctx, karynet.NewFromTree(rnd), tr.Reqs)
	if err != nil {
		return t, err
	}
	t.AddRow("random", report.Count(r.Total()), report.Ratio(r.Total(), balanced.Total()))
	return t, nil
}
