package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"github.com/ksan-net/ksan/internal/karynet"
	"github.com/ksan-net/ksan/internal/report"
	"github.com/ksan-net/ksan/internal/sim"
	"github.com/ksan-net/ksan/internal/statictree"
	"github.com/ksan-net/ksan/internal/workload"
)

// KAryTableResult carries one of Tables 1–7: the k-ary SplayNet sweep on a
// single workload against the static full tree and the DP-optimal tree.
type KAryTableResult struct {
	Table report.Table
	// Routing[k] is the total routing cost of k-ary SplayNet on the trace;
	// Total[k] adds rotations. FullDist/OptDist are the static trees'
	// total distances under the trace's demand (OptDist[k]==0 ⇒ skipped).
	Routing  map[int]int64
	Total    map[int]int64
	FullDist map[int]int64
	OptDist  map[int]int64
}

// KAryTable reproduces the layout of Tables 1–7 on one trace:
//
//	row 1 — total routing cost of 2-ary SplayNet (absolute), then the
//	        relative routing cost of k-ary SplayNet for k=3..10,
//	row 2 — k-ary SplayNet routing cost relative to the static full
//	        k-ary tree,
//	row 3 — the same against the optimal static routing-based k-ary tree
//	        ("-" where the cubic DP is out of reach, as in the paper's
//	        Facebook column).
//
// A supplementary row reports total (routing+rotation) cost ratios for
// transparency about adjustment overhead.
func KAryTable(title string, tr workload.Trace, sc Scale) KAryTableResult {
	res := KAryTableResult{
		Routing:  map[int]int64{},
		Total:    map[int]int64{},
		FullDist: map[int]int64{},
		OptDist:  map[int]int64{},
	}
	d := workload.DemandFromTrace(tr)

	var mu sync.Mutex
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for _, k := range sc.Ks {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()

			r := sim.Run(karynet.MustNew(tr.N, k), tr.Reqs)
			full, err := statictree.Full(tr.N, k)
			if err != nil {
				panic(err)
			}
			fullDist := statictree.TotalDistance(full, d)
			var optDist int64
			if tr.N <= sc.OptMaxN {
				_, cost, err := statictree.Optimal(d, k)
				if err != nil {
					panic(err)
				}
				optDist = cost
			}
			mu.Lock()
			res.Routing[k] = r.Routing
			res.Total[k] = r.Total()
			res.FullDist[k] = fullDist
			res.OptDist[k] = optDist
			mu.Unlock()
		}(k)
	}
	wg.Wait()

	t := report.Table{
		Title:  title,
		Header: []string{""},
	}
	for _, k := range sc.Ks {
		t.Header = append(t.Header, fmt.Sprintf("%d", k))
	}
	base := res.Routing[2]
	row1 := []string{"SplayNet"}
	row2 := []string{"Full Tree"}
	row3 := []string{"Optimal Tree"}
	row4 := []string{"Total (incl. adj.)"}
	for i, k := range sc.Ks {
		if i == 0 && k == 2 {
			row1 = append(row1, report.Count(base))
		} else {
			row1 = append(row1, report.Ratio(res.Routing[k], base))
		}
		row2 = append(row2, report.Ratio(res.Routing[k], res.FullDist[k]))
		if res.OptDist[k] > 0 {
			row3 = append(row3, report.Ratio(res.Routing[k], res.OptDist[k]))
		} else {
			row3 = append(row3, "-")
		}
		row4 = append(row4, report.Ratio(res.Total[k], res.Total[2]))
	}
	t.AddRow(row1...)
	t.AddRow(row2...)
	t.AddRow(row3...)
	t.AddRow(row4...)
	res.Table = t
	return res
}

// Tables1Through7 runs the whole k-ary sweep suite: the three trace-like
// workloads and the four temporal workloads.
func Tables1Through7(w Workloads, sc Scale) []KAryTableResult {
	out := []KAryTableResult{
		KAryTable(fmt.Sprintf("Table 1: k-ary SplayNet on HPC workload (n=%d, m=%d)", w.HPC.N, w.HPC.Len()), w.HPC, sc),
		KAryTable(fmt.Sprintf("Table 2: k-ary SplayNet on ProjecToR workload (n=%d, m=%d)", w.Proj.N, w.Proj.Len()), w.Proj, sc),
		KAryTable(fmt.Sprintf("Table 3: k-ary SplayNet on Facebook workload (n=%d, m=%d)", w.FB.N, w.FB.Len()), w.FB, sc),
	}
	for i, p := range TemporalPs {
		tr := w.Temporals[p]
		out = append(out, KAryTable(
			fmt.Sprintf("Table %d: k-ary SplayNet on synthetic workload, temporal parameter %.2f (n=%d, m=%d)", 4+i, p, tr.N, tr.Len()),
			tr, sc))
	}
	return out
}
