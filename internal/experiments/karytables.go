package experiments

import (
	"context"
	"fmt"

	"github.com/ksan-net/ksan/internal/engine"
	"github.com/ksan-net/ksan/internal/report"
	"github.com/ksan-net/ksan/internal/spec"
	"github.com/ksan-net/ksan/internal/statictree"
	"github.com/ksan-net/ksan/internal/workload"
)

// KAryTableResult carries one of Tables 1–7: the k-ary SplayNet sweep on a
// single workload against the static full tree and the DP-optimal tree.
type KAryTableResult struct {
	Table report.Table
	// Routing[k] is the total routing cost of k-ary SplayNet on the trace;
	// Total[k] adds rotations. FullDist/OptDist are the static trees'
	// total distances under the trace's demand (OptDist[k]==0 ⇒ skipped).
	Routing  map[int]int64
	Total    map[int]int64
	FullDist map[int]int64
	OptDist  map[int]int64
}

// traceSpec adapts a workload trace to the engine's declarative grid input.
func traceSpec(tr workload.Trace) engine.TraceSpec {
	return engine.TraceSpec{Name: tr.Name, N: tr.N, Reqs: tr.Reqs}
}

// KAryTable reproduces the layout of Tables 1–7 on one trace:
//
//	row 1 — total routing cost of 2-ary SplayNet (absolute), then the
//	        relative routing cost of k-ary SplayNet for k=3..10,
//	row 2 — k-ary SplayNet routing cost relative to the static full
//	        k-ary tree,
//	row 3 — the same against the optimal static routing-based k-ary tree
//	        ("-" where the cubic DP is out of reach, as in the paper's
//	        Facebook column).
//
// A supplementary row reports total (routing+rotation) cost ratios for
// transparency about adjustment overhead.
func KAryTable(title string, tr workload.Trace, sc Scale) KAryTableResult {
	res, err := KAryTableCtx(context.Background(), engine.New(), title, tr, sc)
	if err != nil {
		// The historical signature has no error path; fail as loudly as the
		// seed code did.
		panic(err)
	}
	return res
}

// KAryTableCtx is KAryTable on an explicit engine: the k sweep is one
// declarative grid (one k-ary network per column, one trace), and the
// static-tree distances are computed on the same bounded pool.
func KAryTableCtx(ctx context.Context, eng *engine.Engine, title string, tr workload.Trace, sc Scale) (KAryTableResult, error) {
	res := KAryTableResult{
		Routing:  map[int]int64{},
		Total:    map[int]int64{},
		FullDist: map[int]int64{},
		OptDist:  map[int]int64{},
	}
	d := workload.DemandFromTrace(tr)

	// The k sweep is one declarative grid, built from serializable network
	// defs (the same resolution path a user experiment file takes).
	nets := make([]engine.NetworkSpec, len(sc.Ks))
	for i, k := range sc.Ks {
		ns, err := spec.NetworkDef{Kind: "kary", K: k}.Spec()
		if err != nil {
			return res, err
		}
		nets[i] = ns
	}
	grid, err := eng.RunGrid(ctx, nets, []engine.TraceSpec{traceSpec(tr)})
	if err != nil {
		return res, err
	}
	for i, k := range sc.Ks {
		res.Routing[k] = grid[i][0].Routing
		res.Total[k] = grid[i][0].Total()
	}

	type static struct{ full, opt int64 }
	statics := make([]static, len(sc.Ks))
	err = engine.ParallelFor(ctx, eng.Workers(), len(sc.Ks), func(i int) error {
		full, err := statictree.Full(tr.N, sc.Ks[i])
		if err != nil {
			return err
		}
		statics[i].full = statictree.TotalDistance(full, d)
		return nil
	})
	if err != nil {
		return res, err
	}
	if tr.N <= sc.OptMaxN {
		// One Solver answers the whole arity sweep: the O(n²) boundary-
		// traffic matrix and the DP scratch are built once per demand
		// instead of once per k. The sweep is sequential by the Solver's
		// ownership contract; the DP fill parallelizes internally, bounded
		// by the engine's worker budget.
		solver, err := statictree.NewSolver(d, statictree.WithSolverWorkers(eng.Workers()))
		if err != nil {
			return res, err
		}
		for i, k := range sc.Ks {
			if err := ctx.Err(); err != nil {
				return res, err
			}
			_, cost, err := solver.Optimal(k)
			if err != nil {
				return res, err
			}
			statics[i].opt = cost
		}
	}
	for i, k := range sc.Ks {
		res.FullDist[k] = statics[i].full
		res.OptDist[k] = statics[i].opt
	}

	t := report.Table{
		Title:  title,
		Header: []string{""},
	}
	for _, k := range sc.Ks {
		t.Header = append(t.Header, fmt.Sprintf("%d", k))
	}
	base := res.Routing[2]
	row1 := []string{"SplayNet"}
	row2 := []string{"Full Tree"}
	row3 := []string{"Optimal Tree"}
	row4 := []string{"Total (incl. adj.)"}
	for i, k := range sc.Ks {
		if i == 0 && k == 2 {
			row1 = append(row1, report.Count(base))
		} else {
			row1 = append(row1, report.Ratio(res.Routing[k], base))
		}
		row2 = append(row2, report.Ratio(res.Routing[k], res.FullDist[k]))
		if res.OptDist[k] > 0 {
			row3 = append(row3, report.Ratio(res.Routing[k], res.OptDist[k]))
		} else {
			row3 = append(row3, "-")
		}
		row4 = append(row4, report.Ratio(res.Total[k], res.Total[2]))
	}
	t.AddRow(row1...)
	t.AddRow(row2...)
	t.AddRow(row3...)
	t.AddRow(row4...)
	res.Table = t
	return res, nil
}

// Tables1Through7 runs the whole k-ary sweep suite: the three trace-like
// workloads and the four temporal workloads.
func Tables1Through7(w Workloads, sc Scale) []KAryTableResult {
	out, err := Tables1Through7Ctx(context.Background(), engine.New(), w, sc)
	if err != nil {
		panic(err)
	}
	return out
}

// Tables1Through7Ctx is Tables1Through7 on an explicit engine and context.
func Tables1Through7Ctx(ctx context.Context, eng *engine.Engine, w Workloads, sc Scale) ([]KAryTableResult, error) {
	type spec struct {
		title string
		tr    workload.Trace
	}
	specs := []spec{
		{fmt.Sprintf("Table 1: k-ary SplayNet on HPC workload (n=%d, m=%d)", w.HPC.N, w.HPC.Len()), w.HPC},
		{fmt.Sprintf("Table 2: k-ary SplayNet on ProjecToR workload (n=%d, m=%d)", w.Proj.N, w.Proj.Len()), w.Proj},
		{fmt.Sprintf("Table 3: k-ary SplayNet on Facebook workload (n=%d, m=%d)", w.FB.N, w.FB.Len()), w.FB},
	}
	for i, p := range TemporalPs {
		tr := w.Temporals[p]
		specs = append(specs, spec{
			fmt.Sprintf("Table %d: k-ary SplayNet on synthetic workload, temporal parameter %.2f (n=%d, m=%d)", 4+i, p, tr.N, tr.Len()),
			tr,
		})
	}
	out := make([]KAryTableResult, 0, len(specs))
	for _, s := range specs {
		res, err := KAryTableCtx(ctx, eng, s.title, s.tr, sc)
		if err != nil {
			return out, err
		}
		out = append(out, res)
	}
	return out, nil
}
