package experiments

import (
	"context"
	"fmt"
	"io"

	"github.com/ksan-net/ksan/internal/engine"
)

// Options configures a suite run.
type Options struct {
	// Workers bounds the engine's worker pool (0 = GOMAXPROCS).
	Workers int
	// Progress, when set, receives one human-readable line per completed
	// suite section (and is safe to point at os.Stderr via a closure).
	Progress func(section string)
}

// NewEngine builds the experiment engine for these options.
func (o Options) NewEngine(extra ...engine.Option) *engine.Engine {
	opts := []engine.Option{engine.WithWorkers(o.Workers)}
	return engine.New(append(opts, extra...)...)
}

func (o Options) Report(format string, args ...any) {
	if o.Progress != nil {
		o.Progress(fmt.Sprintf(format, args...))
	}
}

// RunAll regenerates every experiment at the given scale and streams the
// tables to w in paper order; it is the historical entry point, kept as a
// thin wrapper over RunSuite. It panics on failure, as the seed code did
// (with a background context the only failures are builder errors).
func RunAll(w io.Writer, sc Scale) {
	if err := RunSuite(context.Background(), w, sc, Options{}); err != nil {
		panic(err)
	}
}

// RunSuite regenerates every experiment at the given scale and streams the
// tables to w in paper order, honoring cancellation between and inside
// sections. It is the engine behind cmd/ksanbench.
func RunSuite(ctx context.Context, w io.Writer, sc Scale, opt Options) error {
	eng := opt.NewEngine()
	fmt.Fprintf(w, "== ksan experiment suite, scale %q (m=%d requests per trace) ==\n\n", sc.Name, sc.Requests)
	loads := MakeWorkloads(sc)
	opt.Report("workloads generated (scale %s)", sc.Name)

	tables, err := Tables1Through7Ctx(ctx, eng, loads, sc)
	if err != nil {
		return err
	}
	for _, res := range tables {
		fmt.Fprintln(w, res.Table.Render())
	}
	opt.Report("tables 1-7 done")

	_, t8, err := Table8Ctx(ctx, eng, loads, sc)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, t8.Render())
	opt.Report("table 8 done")

	ns := []int{10, 30, 60, 100, 250, 500, 999}
	ks := []int{2, 3, 5, 10}
	remark, all, err := CentroidOptimalityCtx(ctx, opt.Workers, ns, ks)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, remark.Render())
	fmt.Fprintf(w, "centroid tree optimal on every tested (n,k): %v\n\n", all)
	opt.Report("remark 10 done")

	lemma9, err := Lemma9ScalingCtx(ctx, opt.Workers, []int{256, 512, 1024, 2048, 4096}, ks)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, lemma9.Render())
	opt.Report("lemma 9 done")

	entropy, err := EntropyBoundCheckCtx(ctx, eng, loads, 3)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, entropy.Render())
	opt.Report("entropy bound done")

	abTr := loads.Temporals[0.5]
	abKs := []int{2, 4, 8}
	a1, err := AblationCostAccountingCtx(ctx, eng, abTr, abKs)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, a1.Render())
	a2, err := AblationSemiSplayOnlyCtx(ctx, eng, abTr, abKs)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, a2.Render())
	a3, err := AblationBlockPolicyCtx(ctx, eng, abTr, abKs)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, a3.Render())
	a4, err := AblationInitialTopologyCtx(ctx, eng, abTr, 4)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, a4.Render())
	a5, err := AblationPolicyGridCtx(ctx, eng, abTr, 4)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, a5.Render())
	a6, err := AblationReconvergenceCtx(ctx, opt.Workers, sc)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, a6.Render())
	opt.Report("ablations done")

	m := int64(abTr.Len())
	lazy, err := LazyVsReactiveCtx(ctx, eng, abTr, 4, []int64{m / 2, 2 * m, 8 * m})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, lazy.Render())
	opt.Report("lazy vs reactive done")
	return ctx.Err()
}
