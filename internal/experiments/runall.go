package experiments

import (
	"fmt"
	"io"
)

// RunAll regenerates every experiment at the given scale and streams the
// tables to w in paper order. It is the engine behind cmd/ksanbench.
func RunAll(w io.Writer, sc Scale) {
	fmt.Fprintf(w, "== ksan experiment suite, scale %q (m=%d requests per trace) ==\n\n", sc.Name, sc.Requests)
	loads := MakeWorkloads(sc)

	for _, res := range Tables1Through7(loads, sc) {
		fmt.Fprintln(w, res.Table.Render())
	}
	_, t8 := Table8(loads, sc)
	fmt.Fprintln(w, t8.Render())

	ns := []int{10, 30, 60, 100, 250, 500, 999}
	ks := []int{2, 3, 5, 10}
	remark, all := CentroidOptimality(ns, ks)
	fmt.Fprintln(w, remark.Render())
	fmt.Fprintf(w, "centroid tree optimal on every tested (n,k): %v\n\n", all)

	fmt.Fprintln(w, Lemma9Scaling([]int{256, 512, 1024, 2048, 4096}, ks).Render())
	fmt.Fprintln(w, EntropyBoundCheck(loads, 3).Render())

	abTr := loads.Temporals[0.5]
	abKs := []int{2, 4, 8}
	fmt.Fprintln(w, AblationCostAccounting(abTr, abKs).Render())
	fmt.Fprintln(w, AblationSemiSplayOnly(abTr, abKs).Render())
	fmt.Fprintln(w, AblationBlockPolicy(abTr, abKs).Render())
	fmt.Fprintln(w, AblationInitialTopology(abTr, 4).Render())

	m := int64(abTr.Len())
	fmt.Fprintln(w, LazyVsReactive(abTr, 4, []int64{m / 2, 2 * m, 8 * m}).Render())
}
