package experiments

import (
	"context"
	"fmt"

	"github.com/ksan-net/ksan/internal/engine"
	"github.com/ksan-net/ksan/internal/report"
	"github.com/ksan-net/ksan/internal/spec"
	"github.com/ksan-net/ksan/internal/statictree"
	"github.com/ksan-net/ksan/internal/workload"
)

// Table8Row is one workload's comparison of 3-SplayNet against SplayNet and
// the two static binary trees (Table 8 of the paper). Costs are average
// per-request totals: routing+rotations for the self-adjusting networks,
// routing only for the static ones. Ratios are other/3-SplayNet, matching
// the paper's "x1.059" notation (values above 1 mean 3-SplayNet wins).
type Table8Row struct {
	Workload     string
	CentroidAvg  float64
	SplayAvg     float64
	FullAvg      float64
	OptAvg       float64
	OptApproxima bool // true when the optimal tree fell back to WeightBalanced
}

// Table8 reproduces the paper's Table 8: the centroid heuristic case study
// for k=2 across all eight workloads.
func Table8(w Workloads, sc Scale) ([]Table8Row, report.Table) {
	rows, t, err := Table8Ctx(context.Background(), engine.New(), w, sc)
	if err != nil {
		// The historical signature has no error path; fail as loudly as the
		// seed code did.
		panic(err)
	}
	return rows, t
}

// Table8Ctx is Table8 on an explicit engine: the two self-adjusting
// networks × eight workloads run as one declarative grid on the bounded
// pool, and the static-tree distances are computed alongside.
func Table8Ctx(ctx context.Context, eng *engine.Engine, w Workloads, sc Scale) ([]Table8Row, report.Table, error) {
	traces := []engine.TraceSpec{
		namedSpec("Uniform", w.Uniform),
		namedSpec("HPC", w.HPC),
		namedSpec("ProjecToR", w.Proj),
		namedSpec("Facebook", w.FB),
	}
	for _, p := range TemporalPs {
		traces = append(traces, namedSpec(fmt.Sprintf("Temporal %.2f", p), w.Temporals[p]))
	}
	// The two self-adjusting rows come from serializable network defs (the
	// same resolution path a user experiment file takes).
	nets := make([]engine.NetworkSpec, 2)
	for i, d := range []spec.NetworkDef{{Kind: "centroid", K: 2}, {Kind: "splaynet"}} {
		ns, err := d.Spec()
		if err != nil {
			return nil, report.Table{}, err
		}
		nets[i] = ns
	}

	rows := make([]Table8Row, len(traces))
	t := report.Table{
		Title:  fmt.Sprintf("Table 8: 3-SplayNet vs other networks (avg request cost; ratios are other/3-SplayNet, m=%d)", sc.Requests),
		Header: []string{"", "3-SplayNet", "SplayNet", "Full Binary Net", "Static Optimal Net"},
	}

	grid, err := eng.RunGrid(ctx, nets, traces)
	if err != nil {
		return rows, t, err
	}

	type static struct {
		full, opt int64
		approx    bool
	}
	statics := make([]static, len(traces))
	err = engine.ParallelFor(ctx, eng.Workers(), len(traces), func(j int) error {
		tr := traces[j]
		d := workload.DemandFromTrace(workload.Trace{N: tr.N, Reqs: tr.Reqs})
		full, err := statictree.Full(tr.N, 2)
		if err != nil {
			return err
		}
		statics[j].full = statictree.TotalDistance(full, d)
		if tr.N <= sc.OptMaxN {
			// Table 8 needs a single arity, so the one-shot Solver wrapper
			// suffices (the Tables 1–7 path is the one that reuses a Solver
			// across its whole arity sweep).
			_, statics[j].opt, err = statictree.Optimal(d, 2)
		} else {
			// The cubic DP is out of reach (the paper hit the same wall at
			// Facebook scale); substitute the weight-balanced approximation
			// and flag it.
			_, statics[j].opt, err = statictree.WeightBalanced(d, 2)
			statics[j].approx = true
		}
		return err
	})
	if err != nil {
		return rows, t, err
	}

	for j, tr := range traces {
		m := float64(len(tr.Reqs))
		rows[j] = Table8Row{
			Workload:     tr.Name,
			CentroidAvg:  float64(grid[0][j].Total()) / m,
			SplayAvg:     float64(grid[1][j].Total()) / m,
			FullAvg:      float64(statics[j].full) / m,
			OptAvg:       float64(statics[j].opt) / m,
			OptApproxima: statics[j].approx,
		}
	}

	for _, r := range rows {
		opt := report.RatioF(r.OptAvg, r.CentroidAvg)
		if r.OptApproxima {
			opt += " (approx)"
		}
		t.AddRow(r.Workload,
			fmt.Sprintf("%.3f", r.CentroidAvg),
			report.RatioF(r.SplayAvg, r.CentroidAvg),
			report.RatioF(r.FullAvg, r.CentroidAvg),
			opt,
		)
	}
	return rows, t, nil
}

// namedSpec is traceSpec with a report label overriding the trace's own
// workload name.
func namedSpec(name string, tr workload.Trace) engine.TraceSpec {
	s := traceSpec(tr)
	s.Name = name
	return s
}
