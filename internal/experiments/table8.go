package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"github.com/ksan-net/ksan/internal/centroidnet"
	"github.com/ksan-net/ksan/internal/report"
	"github.com/ksan-net/ksan/internal/sim"
	"github.com/ksan-net/ksan/internal/splaynet"
	"github.com/ksan-net/ksan/internal/statictree"
	"github.com/ksan-net/ksan/internal/workload"
)

// Table8Row is one workload's comparison of 3-SplayNet against SplayNet and
// the two static binary trees (Table 8 of the paper). Costs are average
// per-request totals: routing+rotations for the self-adjusting networks,
// routing only for the static ones. Ratios are other/3-SplayNet, matching
// the paper's "x1.059" notation (values above 1 mean 3-SplayNet wins).
type Table8Row struct {
	Workload     string
	CentroidAvg  float64
	SplayAvg     float64
	FullAvg      float64
	OptAvg       float64
	OptApproxima bool // true when the optimal tree fell back to WeightBalanced
}

// Table8 reproduces the paper's Table 8: the centroid heuristic case study
// for k=2 across all eight workloads.
func Table8(w Workloads, sc Scale) ([]Table8Row, report.Table) {
	type job struct {
		name string
		tr   workload.Trace
	}
	jobs := []job{
		{"Uniform", w.Uniform},
		{"HPC", w.HPC},
		{"ProjecToR", w.Proj},
		{"Facebook", w.FB},
	}
	for _, p := range TemporalPs {
		jobs = append(jobs, job{fmt.Sprintf("Temporal %.2f", p), w.Temporals[p]})
	}

	rows := make([]Table8Row, len(jobs))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, jb := range jobs {
		wg.Add(1)
		go func(i int, jb job) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			rows[i] = table8Row(jb.name, jb.tr, sc)
		}(i, jb)
	}
	wg.Wait()

	t := report.Table{
		Title:  fmt.Sprintf("Table 8: 3-SplayNet vs other networks (avg request cost; ratios are other/3-SplayNet, m=%d)", sc.Requests),
		Header: []string{"", "3-SplayNet", "SplayNet", "Full Binary Net", "Static Optimal Net"},
	}
	for _, r := range rows {
		opt := report.RatioF(r.OptAvg, r.CentroidAvg)
		if r.OptApproxima {
			opt += " (approx)"
		}
		t.AddRow(r.Workload,
			fmt.Sprintf("%.3f", r.CentroidAvg),
			report.RatioF(r.SplayAvg, r.CentroidAvg),
			report.RatioF(r.FullAvg, r.CentroidAvg),
			opt,
		)
	}
	return rows, t
}

func table8Row(name string, tr workload.Trace, sc Scale) Table8Row {
	m := float64(tr.Len())
	d := workload.DemandFromTrace(tr)

	cen := sim.Run(centroidnet.MustNew(tr.N, 2), tr.Reqs)
	spl := sim.Run(splaynet.MustNew(tr.N), tr.Reqs)

	full, err := statictree.Full(tr.N, 2)
	if err != nil {
		panic(err)
	}
	fullDist := statictree.TotalDistance(full, d)

	var optDist int64
	approx := false
	if tr.N <= sc.OptMaxN {
		_, optDist, err = statictree.Optimal(d, 2)
	} else {
		// The cubic DP is out of reach (the paper hit the same wall at
		// Facebook scale); substitute the weight-balanced approximation and
		// flag it.
		_, optDist, err = statictree.WeightBalanced(d, 2)
		approx = true
	}
	if err != nil {
		panic(err)
	}

	return Table8Row{
		Workload:     name,
		CentroidAvg:  float64(cen.Total()) / m,
		SplayAvg:     float64(spl.Total()) / m,
		FullAvg:      float64(fullDist) / m,
		OptAvg:       float64(optDist) / m,
		OptApproxima: approx,
	}
}
