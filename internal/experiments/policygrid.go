package experiments

import (
	"context"
	"fmt"

	"github.com/ksan-net/ksan/internal/engine"
	"github.com/ksan-net/ksan/internal/karynet"
	"github.com/ksan-net/ksan/internal/policy"
	"github.com/ksan-net/ksan/internal/report"
	"github.com/ksan-net/ksan/internal/statictree"
	"github.com/ksan-net/ksan/internal/workload"
)

// AblationPolicyGrid (A5 in DESIGN.md) sweeps the trigger × adjuster
// plane of the policy layer on the k-ary topology: the canonical corners
// (the fully reactive k-ary SplayNet, the lazy rebuild net, the frozen
// balanced tree) next to the compositions the decoupling makes free —
// lazy k-ary splay (adjust only once enough routing cost accumulates,
// but by splaying instead of rebuilding), periodic semi-splay, and
// frozen-after-warmup. One row per composition, same trace, total-cost
// accounting.
func AblationPolicyGrid(tr workload.Trace, k int) report.Table {
	t, err := AblationPolicyGridCtx(context.Background(), engine.New(), tr, k)
	if err != nil {
		// The historical table signatures have no error path; fail as
		// loudly as the seed code did.
		panic(err)
	}
	return t
}

// AblationPolicyGridCtx is AblationPolicyGrid with cancellation.
func AblationPolicyGridCtx(ctx context.Context, eng *engine.Engine, tr workload.Trace, k int) (report.Table, error) {
	t := report.Table{
		Title: fmt.Sprintf("Ablation A5: the trigger × adjuster policy plane (%s, n=%d, m=%d, k=%d)",
			tr.Name, tr.N, tr.Len(), k),
		Header: []string{"trigger", "adjuster", "routing", "adjust", "total", "rebuilds"},
	}
	m := int64(tr.Len())
	alpha := 2 * m // a handful of rebuilds per trace at typical path lengths
	warm := m / 10
	rows := []struct {
		note string
		trig func() policy.Trigger
		adj  func() policy.Adjuster
	}{
		{"(k-ary SplayNet)", policy.Always, policy.Splay},
		{"(semi-splay ablation)", policy.Always, policy.SemiSplay},
		{"", func() policy.Trigger { return policy.EveryM(4) }, policy.Splay},
		{"(periodic semi-splay)", func() policy.Trigger { return policy.EveryM(4) }, policy.SemiSplay},
		{"(lazy k-ary splay)", func() policy.Trigger { return policy.Alpha(alpha) }, policy.Splay},
		{"(lazy net)", func() policy.Trigger { return policy.Alpha(alpha) },
			func() policy.Adjuster { return policy.Rebuild("rebuild-wb", statictree.WeightBalanced) }},
		{"(frozen after warmup)", func() policy.Trigger { return policy.First(warm) }, policy.Splay},
		{"(static balanced)", policy.Never, policy.None},
	}
	for _, r := range rows {
		trig, adj := r.trig(), r.adj()
		label := fmt.Sprintf("%s×%s", trig.Name(), adj.Name())
		net, err := karynet.Compose(label, tr.N, k, trig, adj)
		if err != nil {
			return t, err
		}
		res, err := eng.Run(ctx, net, tr.Reqs)
		if err != nil {
			return t, err
		}
		trigCell := trig.Name()
		if r.note != "" {
			trigCell += " " + r.note
		}
		rebuilds := "-"
		if adj.NeedsWindow() {
			rebuilds = fmt.Sprintf("%d", net.Rebuilds())
		}
		t.AddRow(trigCell, adj.Name(), report.Count(res.Routing), report.Count(res.Adjust),
			report.Count(res.Total()), rebuilds)
	}
	return t, nil
}
