package centroidnet

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/ksan-net/ksan/internal/sim"
	"github.com/ksan-net/ksan/internal/splaynet"
	"github.com/ksan-net/ksan/internal/workload"
)

func TestNewStructure(t *testing.T) {
	for _, k := range []int{2, 3, 5, 10} {
		for _, n := range []int{8, 50, 100, 500} {
			net, err := New(n, k)
			if err != nil {
				t.Fatalf("New(%d,%d): %v", n, k, err)
			}
			if err := net.CheckInvariants(); err != nil {
				t.Fatalf("New(%d,%d): %v", n, k, err)
			}
			c1, c2 := net.Centroids()
			if net.Tree().Root().ID() != c1 {
				t.Fatalf("n=%d k=%d: root is not c1", n, k)
			}
			if got := net.Tree().DistanceID(c1, c2); got != 1 {
				t.Fatalf("n=%d k=%d: d(c1,c2)=%d, want 1", n, k, got)
			}
			// Figure 8: c1 has up to k children (k−1 subtrees + c2), c2 up
			// to k subtrees → 2k−1 regions at most.
			if len(net.regions) > 2*k-1 {
				t.Fatalf("n=%d k=%d: %d regions, max %d", n, k, len(net.regions), 2*k-1)
			}
		}
	}
}

func TestNewRejectsBadParams(t *testing.T) {
	if _, err := New(2, 2); err == nil {
		t.Error("New(2,2) should fail (needs 3 nodes)")
	}
	if _, err := New(10, 1); err == nil {
		t.Error("New(10,1) should fail (arity)")
	}
}

func TestSubtreeSizesFollowPaperProportions(t *testing.T) {
	// c2's k subtrees have ≈ (n−2)/(k+1) nodes each and c1's side holds the
	// remaining ≈ (n−2)/(k+1) in total (Section 4.2).
	n, k := 1002, 4
	net := MustNew(n, k)
	per := (n - 2) / (k + 1) // 200
	var smallTotal int
	for _, r := range net.regions {
		size := r.hi - r.lo + 1
		if r.anchor == net.c2 {
			if size < per-1 || size > per+1 {
				t.Errorf("big subtree size %d, want ≈%d", size, per)
			}
		} else {
			smallTotal += size
		}
	}
	if smallTotal < per-1 || smallTotal > per+1 {
		t.Errorf("small side total %d, want ≈%d", smallTotal, per)
	}
}

func TestCentroidsNeverMove(t *testing.T) {
	net := MustNew(200, 2)
	c1, c2 := net.Centroids()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		u, v := 1+rng.Intn(200), 1+rng.Intn(200)
		net.Serve(u, v)
		if net.Tree().Root().ID() != c1 {
			t.Fatalf("c1 moved away from the root after serving (%d,%d)", u, v)
		}
		if p := net.Tree().NodeByID(c2).Parent(); p == nil || p.ID() != c1 {
			t.Fatalf("c2 detached from c1 after serving (%d,%d)", u, v)
		}
	}
	if err := net.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRegionsStayIntact(t *testing.T) {
	for _, k := range []int{2, 3, 7} {
		net := MustNew(150, k)
		rng := rand.New(rand.NewSource(int64(k)))
		for i := 0; i < 400; i++ {
			net.Serve(1+rng.Intn(150), 1+rng.Intn(150))
		}
		if err := net.CheckInvariants(); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
	}
}

func TestSameRegionRequestBecomesAdjacent(t *testing.T) {
	net := MustNew(300, 2)
	// Pick two ids in the same region.
	r := net.regions[0]
	if r.hi-r.lo < 2 {
		t.Skip("region too small")
	}
	u, v := r.lo, r.hi
	net.Serve(u, v)
	if d := net.Tree().DistanceID(u, v); d != 1 {
		t.Errorf("same-region pair at distance %d after serve, want 1", d)
	}
}

func TestCrossRegionRequestShortPath(t *testing.T) {
	net := MustNew(300, 2)
	// One endpoint under c1's subtree, one under c2's.
	var ua, vb int
	for _, r := range net.regions {
		if r.anchor == net.c1 && ua == 0 {
			ua = r.lo
		}
		if r.anchor == net.c2 && vb == 0 {
			vb = r.lo
		}
	}
	if ua == 0 || vb == 0 {
		t.Fatal("regions missing")
	}
	net.Serve(ua, vb)
	// After splaying to subtree roots: ua—c1—c2—vb.
	if d := net.Tree().DistanceID(ua, vb); d != 3 {
		t.Errorf("cross-side pair at distance %d after serve, want 3", d)
	}
	// Repeat request costs exactly that routing and no rotations.
	c := net.Serve(ua, vb)
	if c.Routing != 3 || c.Adjust != 0 {
		t.Errorf("repeated cross-side request cost %+v, want {3,0}", c)
	}
}

func TestCentroidEndpointRequests(t *testing.T) {
	net := MustNew(100, 3)
	c1, c2 := net.Centroids()
	if c := net.Serve(c1, c2); c.Routing != 1 || c.Adjust != 0 {
		t.Errorf("c1→c2 cost %+v, want {1,0}", c)
	}
	// Centroid to subtree node: only the non-centroid endpoint splays.
	other := net.regions[0].lo
	net.Serve(c1, other)
	if err := net.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if c := net.Serve(c1, other); c.Adjust != 0 {
		t.Errorf("repeated centroid request still adjusts: %+v", c)
	}
}

func TestSelfRequestFree(t *testing.T) {
	net := MustNew(50, 2)
	if c := net.Serve(7, 7); c != (sim.Cost{}) {
		t.Errorf("self request cost %+v", c)
	}
}

func TestName(t *testing.T) {
	if got := MustNew(50, 2).Name(); got != "3-SplayNet" {
		t.Errorf("Name()=%q, want 3-SplayNet", got)
	}
	if got := MustNew(50, 4).Name(); got != "5-SplayNet" {
		t.Errorf("Name()=%q, want 5-SplayNet", got)
	}
}

func TestLowLocalityBeatsSplayNetHighLocalityLoses(t *testing.T) {
	// The paper's Table 8 observation, as a coarse qualitative check: on
	// low temporal locality 3-SplayNet is competitive with SplayNet (it
	// avoids wasteful global restructuring), while on very high locality it
	// is somewhat worse (fixed centroids are in the way). We assert the
	// RELATIVE ordering of the two ratios rather than absolute wins, which
	// depend on trace details.
	n, m := 255, 30000
	ratio := func(p float64) float64 {
		tr := workload.Temporal(n, m, p, 11)
		cen := sim.Run(MustNew(n, 2), tr.Reqs)
		spl := sim.Run(splaynet.MustNew(n), tr.Reqs)
		return float64(cen.Total()) / float64(spl.Total())
	}
	low, high := ratio(0.25), ratio(0.9)
	if low >= high {
		t.Errorf("3-SplayNet/SplayNet ratio at p=0.25 (%.3f) should beat p=0.9 (%.3f)", low, high)
	}
}

func TestQuickServeKeepsInvariants(t *testing.T) {
	f := func(seed int64, kRaw uint8, ops []uint32) bool {
		k := 2 + int(kRaw%4)
		n := 80
		net := MustNew(n, k)
		if len(ops) > 60 {
			ops = ops[:60]
		}
		for _, op := range ops {
			u := 1 + int(op%uint32(n))
			v := 1 + int((op/128)%uint32(n))
			net.Serve(u, v)
		}
		return net.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestEvenParts(t *testing.T) {
	cases := []struct {
		lo, hi, want int
		parts        int
	}{
		{1, 10, 2, 2},
		{1, 10, 3, 3},
		{1, 2, 5, 2},
		{5, 4, 3, 0},
		{1, 9, 3, 3},
	}
	for _, c := range cases {
		got := evenParts(c.lo, c.hi, c.want)
		if len(got) != c.parts {
			t.Errorf("evenParts(%d,%d,%d) = %v", c.lo, c.hi, c.want, got)
			continue
		}
		// Contiguity and coverage.
		next := c.lo
		for _, p := range got {
			if p[0] != next || p[1] < p[0] {
				t.Errorf("evenParts(%d,%d,%d) = %v not contiguous", c.lo, c.hi, c.want, got)
				break
			}
			next = p[1] + 1
		}
		if len(got) > 0 && got[len(got)-1][1] != c.hi {
			t.Errorf("evenParts(%d,%d,%d) = %v does not cover", c.lo, c.hi, c.want, got)
		}
	}
}
