// Package centroidnet implements the (k+1)-SplayNet of Section 4.2 of the
// paper: the online self-adjusting companion of the static centroid tree.
//
// The topology fixes two centroid nodes: c1 is the root and has k−1 small
// k-ary SplayNet subtrees plus c2 as children; c2 has k larger k-ary
// SplayNet subtrees (Figure 8; Figure 7 shows the k=2 case, 3-SplayNet).
// The 2k−1 subtree node sets never change and c1/c2 never move. A request
// within one subtree is served exactly as in k-ary SplayNet; a request
// across subtrees splays both endpoints to their subtree roots and routes
// via c1/c2.
//
// Since the policy refactor the network is the canonical composition
//
//	centroid topology × (policy.Always, centroid splay)
//
// where the centroid splay is this package's region-aware Adjuster (the
// repertoire is a property of the topology, so it lives here, not in
// internal/policy). Compose builds the same topology under any trigger
// (periodic or lazy centroid adjustment, frozen centroid topology).
package centroidnet

import (
	"fmt"

	"github.com/ksan-net/ksan/internal/core"
	"github.com/ksan-net/ksan/internal/policy"
)

// Net is a (k+1)-SplayNet on nodes 1..n: a policy composition over the
// fixed-region centroid topology.
type Net struct {
	*policy.Net
	k       int
	c1, c2  int
	regions []region
}

// region is one of the 2k−1 fixed subtrees: ids [lo,hi] hang below the
// anchor centroid (c1 or c2).
type region struct {
	lo, hi int
	anchor int // centroid id the subtree root attaches to
}

// New constructs a (k+1)-SplayNet. The id layout is: the k−1 small
// subtrees cover [1..s], c1 = s+1, the k large subtrees cover [s+2..n−1],
// and c2 = n, where s ≈ (n−2)/(k+1) following the paper's proportions.
// n must be at least 3 (two centroids plus at least one subtree node).
func New(n, k int) (*Net, error) {
	return Compose(fmt.Sprintf("%d-SplayNet", k+1), n, k, policy.Always())
}

// Compose builds the centroid topology under an arbitrary trigger; the
// adjuster is always this package's region-aware centroid splay (with
// policy.Never it simply never runs, freezing the topology).
func Compose(label string, n, k int, trig policy.Trigger) (*Net, error) {
	if k < 2 {
		return nil, fmt.Errorf("centroidnet: arity %d < 2", k)
	}
	if n < 3 {
		return nil, fmt.Errorf("centroidnet: need at least 3 nodes, got %d", n)
	}
	smallTotal := (n - 2) / (k + 1)
	c1 := smallTotal + 1
	c2 := n

	net := &Net{k: k, c1: c1, c2: c2}
	aParts := evenParts(1, smallTotal, k-1)
	bParts := evenParts(smallTotal+2, n-1, k)

	// c2's spec: k subtrees, own id n in the last slot's interval.
	c2spec := &core.Spec{ID: c2}
	for i, p := range bParts {
		c2spec.Children = append(c2spec.Children, core.BalancedSpec(p[0], p[1], k))
		if i < len(bParts)-1 {
			c2spec.Thresholds = append(c2spec.Thresholds, p[1])
		}
		net.regions = append(net.regions, region{lo: p[0], hi: p[1], anchor: c2})
	}
	if len(bParts) == 0 {
		c2spec.Children = nil
	}

	// c1's spec: k−1 small subtrees, then c2's subtree.
	c1spec := &core.Spec{ID: c1}
	for i, p := range aParts {
		c1spec.Children = append(c1spec.Children, core.BalancedSpec(p[0], p[1], k))
		if i < len(aParts)-1 {
			c1spec.Thresholds = append(c1spec.Thresholds, p[1])
		}
		net.regions = append(net.regions, region{lo: p[0], hi: p[1], anchor: c1})
	}
	c1spec.Thresholds = append(c1spec.Thresholds, c1)
	if len(aParts) == 0 {
		c1spec.Children = append(c1spec.Children, nil)
	}
	c1spec.Children = append(c1spec.Children, c2spec)

	t, err := core.Build(k, c1spec)
	if err != nil {
		return nil, fmt.Errorf("centroidnet: %w", err)
	}
	p, err := policy.New(label, t, trig, adjuster{net})
	if err != nil {
		return nil, fmt.Errorf("centroidnet: %w", err)
	}
	net.Net = p
	return net, nil
}

// MustNew is New for known-good parameters.
func MustNew(n, k int) *Net {
	net, err := New(n, k)
	if err != nil {
		panic(err)
	}
	return net
}

// evenParts splits [lo,hi] into up to want non-empty contiguous pieces of
// near-equal size (fewer when the interval is too small; none when empty).
func evenParts(lo, hi, want int) [][2]int {
	m := hi - lo + 1
	if m <= 0 || want < 1 {
		return nil
	}
	if want > m {
		want = m
	}
	parts := make([][2]int, 0, want)
	start := lo
	for p := 0; p < want; p++ {
		size := (m - (start - lo) + (want - p - 1)) / (want - p)
		end := start + size - 1
		parts = append(parts, [2]int{start, end})
		start = end + 1
	}
	return parts
}

// Centroids returns the ids of the two fixed centroid nodes (c1, c2).
func (net *Net) Centroids() (int, int) { return net.c1, net.c2 }

// regionOf returns the region index of id, or -1 for the centroids.
func (net *Net) regionOf(id int) int {
	if id == net.c1 || id == net.c2 {
		return -1
	}
	for i, r := range net.regions {
		if id >= r.lo && id <= r.hi {
			return i
		}
	}
	return -1
}

// adjuster is the centroid topology's repertoire as a policy.Adjuster:
// requests within one subtree splay to their LCA as in k-ary SplayNet;
// requests across subtrees (or touching a centroid) splay each
// non-centroid endpoint to its subtree root and route via the fixed
// centroids. c1 and c2 never move.
type adjuster struct{ net *Net }

func (adjuster) Name() string      { return "centroid-splay" }
func (adjuster) NeedsWindow() bool { return false }
func (adjuster) NeedsTree() bool   { return true }

func (a adjuster) Adjust(ctx *policy.Ctx) int64 {
	net := a.net
	t := ctx.Tree
	before := t.Rotations()
	ru, rv := net.regionOf(ctx.U), net.regionOf(ctx.V)
	switch {
	case ru == -1 && rv == -1:
		// centroid to centroid: static.
	case ru == rv:
		t.SplayUntilParent(ctx.A, ctx.W.Parent())
		t.SplayUntilParent(ctx.B, ctx.A)
	default:
		if ru != -1 {
			net.splayToRegionRoot(ctx.A, ru)
		}
		if rv != -1 {
			net.splayToRegionRoot(ctx.B, rv)
		}
	}
	return t.Rotations() - before
}

func (net *Net) splayToRegionRoot(x *core.Node, r int) {
	t := net.Tree()
	anchor := t.NodeByID(net.regions[r].anchor)
	if x.Parent() == anchor {
		return
	}
	t.SplayUntilParent(x, anchor)
}

// CheckInvariants verifies the structural guarantees the heuristic relies
// on: the tree is a valid k-ary search tree, c1 is the root, c2 is a child
// of c1, and every region's id set still hangs (entire and alone) below its
// anchor centroid. Tests call this after serving traces.
func (net *Net) CheckInvariants() error {
	t := net.Tree()
	if err := t.Validate(); err != nil {
		return err
	}
	if t.Root().ID() != net.c1 {
		return fmt.Errorf("centroidnet: root is %d, want c1=%d", t.Root().ID(), net.c1)
	}
	if t.NodeByID(net.c2).Parent() == nil || t.NodeByID(net.c2).Parent().ID() != net.c1 {
		return fmt.Errorf("centroidnet: c2=%d is not a child of c1", net.c2)
	}
	for i, r := range net.regions {
		anchor := t.NodeByID(r.anchor)
		for id := r.lo; id <= r.hi; id++ {
			nd := t.NodeByID(id)
			// Ascend to the child-of-anchor ancestor.
			for nd.Parent() != nil && nd.Parent() != anchor {
				nd = nd.Parent()
			}
			if nd.Parent() != anchor {
				return fmt.Errorf("centroidnet: node %d escaped region %d", id, i)
			}
			// The subtree root must cover this region only: its own id must
			// be inside [lo,hi].
			if nd.ID() < r.lo || nd.ID() > r.hi {
				return fmt.Errorf("centroidnet: region %d root %d outside [%d,%d]", i, nd.ID(), r.lo, r.hi)
			}
		}
	}
	return nil
}
