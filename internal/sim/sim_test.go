package sim

import (
	"sync/atomic"
	"testing"
)

// fakeNet is a deterministic Network for engine tests.
type fakeNet struct {
	n      int
	name   string
	served int64
}

func (f *fakeNet) Name() string { return f.name }
func (f *fakeNet) N() int       { return f.n }
func (f *fakeNet) Serve(u, v int) Cost {
	atomic.AddInt64(&f.served, 1)
	return Cost{Routing: int64(u + v), Adjust: int64(v)}
}

func TestRunAggregates(t *testing.T) {
	net := &fakeNet{n: 10, name: "fake"}
	reqs := []Request{{1, 2}, {3, 4}, {5, 6}}
	res := Run(net, reqs)
	if res.Name != "fake" || res.Requests != 3 {
		t.Fatalf("bad result meta %+v", res)
	}
	if res.Routing != 3+7+11 {
		t.Errorf("routing %d", res.Routing)
	}
	if res.Adjust != 2+4+6 {
		t.Errorf("adjust %d", res.Adjust)
	}
	if res.Total() != res.Routing+res.Adjust {
		t.Errorf("total %d", res.Total())
	}
}

func TestResultAverages(t *testing.T) {
	r := Result{Requests: 4, Routing: 12, Adjust: 8}
	if r.AvgRouting() != 3 {
		t.Errorf("avg routing %f", r.AvgRouting())
	}
	if r.AvgTotal() != 5 {
		t.Errorf("avg total %f", r.AvgTotal())
	}
	zero := Result{}
	if zero.AvgRouting() != 0 || zero.AvgTotal() != 0 {
		t.Error("zero-request averages must be 0")
	}
}

func TestRunAllOrderAndIsolation(t *testing.T) {
	mk := func(name string) func() Network {
		return func() Network { return &fakeNet{n: 5, name: name} }
	}
	reqs := []Request{{1, 2}, {2, 3}}
	results := RunAll([]func() Network{mk("a"), mk("b"), mk("c")}, reqs)
	for i, want := range []string{"a", "b", "c"} {
		if results[i].Name != want {
			t.Errorf("result %d is %q, want %q (order must be preserved)", i, results[i].Name, want)
		}
		if results[i].Requests != 2 {
			t.Errorf("result %d served %d", i, results[i].Requests)
		}
	}
}

func TestRunPanicsOnInvalidTrace(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Run accepted an out-of-range endpoint")
		}
	}()
	Run(&fakeNet{n: 3, name: "bad"}, []Request{{Src: 1, Dst: 7}})
}

func TestBatchCostObserveAndMerge(t *testing.T) {
	var a, b BatchCost
	a.Observe(Cost{Routing: 2, Adjust: 1})
	a.Observe(Cost{Routing: 2})
	b.Observe(Cost{Routing: 5, Adjust: 3})
	a.Merge(b)
	if a.Routing != 9 || a.Adjust != 4 {
		t.Fatalf("merged totals %d/%d", a.Routing, a.Adjust)
	}
	if a.Hist.BucketCount(2) != 2 || a.Hist.BucketCount(5) != 1 {
		t.Fatalf("merged hist counts %d/%d", a.Hist.BucketCount(2), a.Hist.BucketCount(5))
	}
	if a.Hist.Count() != 3 || a.Hist.Sum() != 9 {
		t.Fatalf("merged hist summary %d/%d", a.Hist.Count(), a.Hist.Sum())
	}
}

func TestValidate(t *testing.T) {
	if err := Validate([]Request{{1, 2}, {2, 1}}, 2); err != nil {
		t.Errorf("valid requests rejected: %v", err)
	}
	if err := Validate([]Request{{0, 1}}, 2); err == nil {
		t.Error("src 0 accepted")
	}
	if err := Validate([]Request{{1, 3}}, 2); err == nil {
		t.Error("dst out of range accepted")
	}
}
