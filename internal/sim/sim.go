// Package sim defines the cost model of the paper (Section 2) and a small
// simulation engine that serves communication traces on network topologies.
//
// Serving request σ_t=(u,v) on topology G_{t-1} costs the u–v path length
// (routing cost) plus the reconfiguration performed afterwards (adjustment
// cost). Following the paper's experiments, the adjustment cost charges one
// unit per rotation; the raw link-churn metric of the model is available
// separately for the cost-accounting ablation.
package sim

import (
	"fmt"
	"runtime"
	"sync"

	"github.com/ksan-net/ksan/internal/hist"
)

// Cost is the price of serving a single communication request.
type Cost struct {
	// Routing is the path length, in edges, between source and destination
	// in the topology at the time the request is served.
	Routing int64
	// Adjust is the self-adjustment cost charged after serving the request
	// (number of rotations; zero for static topologies).
	Adjust int64
}

// Network is a (possibly self-adjusting) network topology that serves
// communication requests between nodes 1..N().
type Network interface {
	// Name identifies the network design in reports.
	Name() string
	// N returns the number of network nodes.
	N() int
	// Serve routes one request and performs any self-adjustment,
	// returning the cost incurred.
	Serve(src, dst int) Cost
}

// Request is a single communication request from Src to Dst (ids 1..n).
type Request struct {
	Src, Dst int
}

// Result aggregates the cost of serving a trace on one network.
type Result struct {
	Name     string
	Requests int64
	Routing  int64
	Adjust   int64
}

// Total returns routing plus adjustment cost.
func (r Result) Total() int64 { return r.Routing + r.Adjust }

// AvgRouting returns the mean routing cost per request.
func (r Result) AvgRouting() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.Routing) / float64(r.Requests)
}

// AvgTotal returns the mean total (routing+adjustment) cost per request.
func (r Result) AvgTotal() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.Total()) / float64(r.Requests)
}

// BatchCost aggregates the cost of serving a slice of requests, together
// with the per-request routing-cost histogram the engine needs for
// percentile reporting. The histogram is the shared streaming log-bucketed
// hist.Hist (bounded memory, mergeable): routing costs are tree-path
// lengths, so in practice they sit in its exact region and percentiles
// over them are exact order statistics.
type BatchCost struct {
	Routing int64
	Adjust  int64
	Hist    hist.Hist
}

// Observe folds one request's cost into the batch aggregate.
func (b *BatchCost) Observe(c Cost) {
	b.Routing += c.Routing
	b.Adjust += c.Adjust
	b.Hist.Observe(c.Routing)
}

// Merge folds another batch aggregate into b (associative, so shards
// evaluated concurrently merge to the same totals in any grouping).
func (b *BatchCost) Merge(o BatchCost) {
	b.Routing += o.Routing
	b.Adjust += o.Adjust
	b.Hist.Merge(&o.Hist)
}

// BatchServer is an optional Network extension for topologies whose Serve
// has no side effects (static trees): the engine may evaluate disjoint
// request shards with concurrent ServeBatch calls and merge the aggregates,
// so implementations must be safe for concurrent use and must not
// self-adjust.
type BatchServer interface {
	Network
	ServeBatch(reqs []Request) BatchCost
}

// BatchGate optionally refines BatchServer for networks whose batch
// capability is a runtime property rather than a structural one: a
// policy-composed network, for example, carries ServeBatch on its type
// but is only safely shardable when its trigger can never fire. The
// engine takes the batch path only when Batchable reports true; a
// BatchServer without this interface is an unconditional commitment.
type BatchGate interface {
	Batchable() bool
}

// Run serves every request of the trace on the network and returns the
// aggregated cost. It is the compatibility wrapper around the historical
// seed loop; the richer streaming engine lives in internal/engine.
//
// Run panics with the Validate error if any endpoint falls outside
// 1..net.N(). Returning an error would break the historical signature every
// experiment builds on, and silently skipping bad requests would corrupt
// results, so rejecting at the boundary with a descriptive panic replaces
// the old behavior of panicking (or corrupting routing state) deep inside a
// network. engine.Run returns the error instead.
func Run(net Network, reqs []Request) Result {
	if err := Validate(reqs, net.N()); err != nil {
		panic(err)
	}
	res := Result{Name: net.Name(), Requests: int64(len(reqs))}
	for _, rq := range reqs {
		c := net.Serve(rq.Src, rq.Dst)
		res.Routing += c.Routing
		res.Adjust += c.Adjust
	}
	return res
}

// RunAll serves the same trace on several independently-constructed
// networks concurrently (one goroutine per network, bounded by GOMAXPROCS)
// and returns the results in input order. Constructors make each run own
// its topology, so no synchronization of network state is needed.
func RunAll(makers []func() Network, reqs []Request) []Result {
	results := make([]Result, len(makers))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, mk := range makers {
		wg.Add(1)
		go func(i int, mk func() Network) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i] = Run(mk(), reqs)
		}(i, mk)
	}
	wg.Wait()
	return results
}

// Validate checks that a request sequence is well-formed for an n-node
// network: endpoints in 1..n.
func Validate(reqs []Request, n int) error {
	for i, rq := range reqs {
		if rq.Src < 1 || rq.Src > n || rq.Dst < 1 || rq.Dst > n {
			return fmt.Errorf("sim: request %d (%d→%d) outside 1..%d", i, rq.Src, rq.Dst, n)
		}
	}
	return nil
}
