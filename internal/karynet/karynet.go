// Package karynet implements the k-ary SplayNet of Section 4.1 of the
// paper: a self-adjusting k-ary search tree network that serves a request
// (u,v) by routing along the tree path and then moving u to the position of
// the lowest common ancestor and v to a child of u, using the
// identifier-preserving k-splay and k-semi-splay rotations of
// internal/core. After the adjustment a repeated request costs one hop.
package karynet

import (
	"fmt"

	"github.com/ksan-net/ksan/internal/core"
	"github.com/ksan-net/ksan/internal/sim"
)

// Net is a k-ary SplayNet on nodes 1..n.
type Net struct {
	t *core.Tree
	// semiOnly restricts the repertoire to k-semi-splay steps (the
	// rotation-repertoire ablation).
	semiOnly bool
}

// New constructs a k-ary SplayNet with a weakly-complete balanced initial
// topology, the default starting network of the experiments.
func New(n, k int) (*Net, error) {
	t, err := core.NewBalanced(n, k)
	if err != nil {
		return nil, fmt.Errorf("karynet: %w", err)
	}
	return &Net{t: t}, nil
}

// MustNew is New for known-good parameters.
func MustNew(n, k int) *Net {
	net, err := New(n, k)
	if err != nil {
		panic(err)
	}
	return net
}

// NewFromTree wraps an arbitrary initial topology (the model allows any
// valid starting network G0).
func NewFromTree(t *core.Tree) *Net { return &Net{t: t} }

// SetSemiSplayOnly restricts self-adjustment to single k-semi-splay steps;
// used by the rotation-repertoire ablation.
func (net *Net) SetSemiSplayOnly(on bool) { net.semiOnly = on }

// Name implements sim.Network.
func (net *Net) Name() string { return fmt.Sprintf("%d-ary SplayNet", net.t.K()) }

// N implements sim.Network.
func (net *Net) N() int { return net.t.N() }

// K returns the arity bound of the underlying search tree.
func (net *Net) K() int { return net.t.K() }

// Tree exposes the underlying topology for inspection and validation.
func (net *Net) Tree() *core.Tree { return net.t }

// Serve implements sim.Network: the request is routed on the current
// topology (routing cost = path length), then u is splayed to the position
// of the lowest common ancestor of u and v, and v is splayed to become a
// child of u. Each k-splay or k-semi-splay step is charged one unit.
//
// Serve is allocation-free and, like every tree-backed serve path, not
// safe for concurrent calls on the same network: the underlying tree owns
// the rotation scratch buffers (see DESIGN.md).
func (net *Net) Serve(u, v int) sim.Cost {
	t := net.t
	a, b := t.NodeByID(u), t.NodeByID(v)
	if a == b {
		return sim.Cost{}
	}
	d, w := t.DistanceLCA(a, b)
	dist := int64(d)
	before := t.Rotations()
	if net.semiOnly {
		t.SemiSplayUntilParent(a, w.Parent())
		t.SemiSplayUntilParent(b, a)
	} else {
		t.SplayUntilParent(a, w.Parent())
		t.SplayUntilParent(b, a)
	}
	return sim.Cost{Routing: dist, Adjust: t.Rotations() - before}
}
