// Package karynet implements the k-ary SplayNet of Section 4.1 of the
// paper: a self-adjusting k-ary search tree network that serves a request
// (u,v) by routing along the tree path and then moving u to the position of
// the lowest common ancestor and v to a child of u, using the
// identifier-preserving k-splay and k-semi-splay rotations of
// internal/core. After the adjustment a repeated request costs one hop.
//
// Since the policy refactor the package is a thin constructor namespace:
// the k-ary SplayNet is the canonical composition
//
//	balanced k-ary tree × (policy.Always, policy.Splay)
//
// and Net is internal/policy's Net. Compose builds any other point of the
// trigger × adjuster plane on the same topology (the semi-splay ablation
// is Compose with policy.SemiSplay; the former SetSemiSplayOnly setter is
// gone).
package karynet

import (
	"fmt"

	"github.com/ksan-net/ksan/internal/core"
	"github.com/ksan-net/ksan/internal/policy"
)

// Net is a k-ary SplayNet on nodes 1..n — a policy composition over the
// k-ary search tree substrate.
type Net = policy.Net

// New constructs a k-ary SplayNet with a weakly-complete balanced initial
// topology, the default starting network of the experiments.
func New(n, k int) (*Net, error) {
	return Compose(fmt.Sprintf("%d-ary SplayNet", k), n, k, policy.Always(), policy.Splay())
}

// MustNew is New for known-good parameters.
func MustNew(n, k int) *Net {
	net, err := New(n, k)
	if err != nil {
		panic(err)
	}
	return net
}

// NewFromTree wraps an arbitrary initial topology (the model allows any
// valid starting network G0) as a canonical k-ary SplayNet.
func NewFromTree(t *core.Tree) *Net {
	net, err := policy.New(fmt.Sprintf("%d-ary SplayNet", t.K()), t, policy.Always(), policy.Splay())
	if err != nil {
		panic(err) // unreachable: the composition is valid by construction
	}
	return net
}

// Compose builds an arbitrary trigger × adjuster composition on the
// balanced k-ary topology — the policy plane the trigger×adjuster
// ablation grid sweeps (lazy k-ary splay, periodic semi-splay,
// frozen-after-warmup, ...).
func Compose(label string, n, k int, trig policy.Trigger, adj policy.Adjuster) (*Net, error) {
	t, err := core.NewBalanced(n, k)
	if err != nil {
		return nil, fmt.Errorf("karynet: %w", err)
	}
	net, err := policy.New(label, t, trig, adj)
	if err != nil {
		return nil, fmt.Errorf("karynet: %w", err)
	}
	return net, nil
}
