package karynet

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/ksan-net/ksan/internal/core"
	"github.com/ksan-net/ksan/internal/policy"
	"github.com/ksan-net/ksan/internal/sim"
	"github.com/ksan-net/ksan/internal/splaynet"
	"github.com/ksan-net/ksan/internal/workload"
)

func TestServeMakesPairAdjacent(t *testing.T) {
	for _, k := range []int{2, 3, 4, 5, 8, 10} {
		net := MustNew(200, k)
		rng := rand.New(rand.NewSource(int64(k)))
		for i := 0; i < 250; i++ {
			u, v := 1+rng.Intn(200), 1+rng.Intn(200)
			if u == v {
				continue
			}
			net.Serve(u, v)
			if d := net.Tree().DistanceID(u, v); d != 1 {
				t.Fatalf("k=%d: after Serve(%d,%d) distance %d, want 1", k, u, v, d)
			}
		}
		if err := net.Tree().Validate(); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
	}
}

func TestServeSelfRequestFree(t *testing.T) {
	net := MustNew(30, 3)
	if c := net.Serve(7, 7); c.Routing != 0 || c.Adjust != 0 {
		t.Errorf("self request cost %+v", c)
	}
}

func TestServeRoutingCostIsOldDistance(t *testing.T) {
	net := MustNew(100, 4)
	u, v := 1, 100
	want := int64(net.Tree().DistanceID(u, v))
	if c := net.Serve(u, v); c.Routing != want {
		t.Errorf("routing cost %d, want pre-adjustment distance %d", c.Routing, want)
	}
}

func TestRepeatedRequestCheap(t *testing.T) {
	for _, k := range []int{2, 5, 9} {
		net := MustNew(300, k)
		net.Serve(17, 250)
		c := net.Serve(17, 250)
		if c.Routing != 1 || c.Adjust != 0 {
			t.Errorf("k=%d repeated request cost %+v, want {1,0}", k, c)
		}
	}
}

func TestIdentifierPermanenceUnderServes(t *testing.T) {
	net := MustNew(150, 4)
	objs := make(map[int]*core.Node)
	for id := 1; id <= 150; id++ {
		objs[id] = net.Tree().NodeByID(id)
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		net.Serve(1+rng.Intn(150), 1+rng.Intn(150))
	}
	for id := 1; id <= 150; id++ {
		if net.Tree().NodeByID(id) != objs[id] || objs[id].ID() != id {
			t.Fatalf("identifier of node %d not permanent", id)
		}
	}
}

func TestHigherKLowersRoutingCost(t *testing.T) {
	// The paper's first experimental claim (Tables 1-7, row 1): the total
	// routing cost decreases as k grows. Check monotone trend end-to-end on
	// a uniform workload (allow small local non-monotonicity, require the
	// k=10 cost well below k=2).
	n, m := 255, 8000
	rng := rand.New(rand.NewSource(9))
	reqs := make([]sim.Request, m)
	for i := range reqs {
		u, v := 1+rng.Intn(n), 1+rng.Intn(n)
		for u == v {
			v = 1 + rng.Intn(n)
		}
		reqs[i] = sim.Request{Src: u, Dst: v}
	}
	cost := map[int]int64{}
	for _, k := range []int{2, 4, 10} {
		res := sim.Run(MustNew(n, k), reqs)
		cost[k] = res.Routing
	}
	if !(cost[10] < cost[4] && cost[4] < cost[2]) {
		t.Errorf("routing cost not decreasing in k: k2=%d k4=%d k10=%d", cost[2], cost[4], cost[10])
	}
	if float64(cost[10]) > 0.9*float64(cost[2]) {
		t.Errorf("k=10 saves too little over k=2: %d vs %d", cost[10], cost[2])
	}
}

func TestBinaryKAryTracksSplayNet(t *testing.T) {
	// 2-ary SplayNet and the independent binary SplayNet implementation are
	// the same algorithm up to rotation tie-breaking; their total costs on
	// the same trace must agree within a small factor.
	n, m := 127, 5000
	rng := rand.New(rand.NewSource(13))
	reqs := make([]sim.Request, m)
	for i := range reqs {
		u, v := 1+rng.Intn(n), 1+rng.Intn(n)
		for u == v {
			v = 1 + rng.Intn(n)
		}
		reqs[i] = sim.Request{Src: u, Dst: v}
	}
	kary := sim.Run(MustNew(n, 2), reqs)
	bin := sim.Run(splaynet.MustNew(n), reqs)
	ratio := float64(kary.Total()) / float64(bin.Total())
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("2-ary SplayNet total %d vs SplayNet %d (ratio %.3f) diverge too much",
			kary.Total(), bin.Total(), ratio)
	}
}

func TestQuickBinaryKAryMatchesSplayNetRoutingCosts(t *testing.T) {
	// The documented cross-validation claim (splaynet's package comment):
	// k-ary SplayNet with k=2 behaves like the independent binary SplayNet
	// up to rotation tie-breaking. The tie-breaks make the two topologies
	// drift, so per-request costs are not equal, but the cumulative
	// routing costs must track each other closely on any workload —
	// property-checked here across random traces of varied size, locality
	// and skew, at every prefix past a short burn-in (so a transient
	// divergence cannot hide inside an agreeing total).
	f := func(seed int64, nRaw uint8, shape uint8) bool {
		n := 16 + int(nRaw)%120
		const m, burnIn = 4000, 500
		var tr workload.Trace
		switch shape % 3 {
		case 0:
			tr = workload.Uniform(n, m, seed)
		case 1:
			tr = workload.Temporal(n, m, 0.6, seed)
		default:
			tr = workload.Zipf(n, m, 1.2, seed)
		}
		kary := MustNew(n, 2)
		bin := splaynet.MustNew(n)
		var kr, br int64
		for i, rq := range tr.Reqs {
			kr += kary.Serve(rq.Src, rq.Dst).Routing
			br += bin.Serve(rq.Src, rq.Dst).Routing
			if i >= burnIn {
				if ratio := float64(kr) / float64(br); ratio < 0.7 || ratio > 1.4 {
					t.Logf("n=%d seed=%d shape=%d: prefix %d cumulative routing ratio %.3f (kary %d, splaynet %d)",
						n, seed, shape%3, i, ratio, kr, br)
					return false
				}
			}
		}
		// The full-trace totals must agree even more tightly.
		ratio := float64(kr) / float64(br)
		if ratio < 0.8 || ratio > 1.25 {
			t.Logf("n=%d seed=%d shape=%d: total routing ratio %.3f", n, seed, shape%3, ratio)
			return false
		}
		return kary.Tree().Validate() == nil && bin.Validate() == nil
	}
	// Fixed generator seed: the ratio bounds are empirical envelopes, not
	// provable invariants, so the checked input set must be reproducible.
	if err := quick.Check(f, &quick.Config{MaxCount: 15, Rand: rand.New(rand.NewSource(31))}); err != nil {
		t.Fatal(err)
	}
}

func TestSemiSplayOnlyStillCorrect(t *testing.T) {
	net, err := Compose("3-ary semi-splay", 100, 3, policy.Always(), policy.SemiSplay())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 200; i++ {
		u, v := 1+rng.Intn(100), 1+rng.Intn(100)
		if u == v {
			continue
		}
		net.Serve(u, v)
		if d := net.Tree().DistanceID(u, v); d != 1 {
			t.Fatalf("semi-only: after Serve(%d,%d) distance %d", u, v, d)
		}
	}
	if err := net.Tree().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestServeFromArbitraryInitialTopology(t *testing.T) {
	tr, err := core.NewPath(60, 3)
	if err != nil {
		t.Fatal(err)
	}
	net := NewFromTree(tr)
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 300; i++ {
		u, v := 1+rng.Intn(60), 1+rng.Intn(60)
		if u == v {
			continue
		}
		net.Serve(u, v)
	}
	if err := net.Tree().Validate(); err != nil {
		t.Fatal(err)
	}
	// Self-adjustment should have pulled the topology far away from the
	// degenerate path.
	if h := net.Tree().Height(); h >= 59 {
		t.Errorf("height still %d after 300 serves from a path", h)
	}
}

func TestName(t *testing.T) {
	if got := MustNew(10, 7).Name(); got != "7-ary SplayNet" {
		t.Errorf("Name()=%q", got)
	}
}

func TestQuickServeKeepsSearchProperty(t *testing.T) {
	f := func(seed int64, kRaw uint8, ops []uint32) bool {
		k := 2 + int(kRaw%9)
		n := 48
		net := MustNew(n, k)
		if len(ops) > 60 {
			ops = ops[:60]
		}
		for _, op := range ops {
			u := 1 + int(op%uint32(n))
			v := 1 + int((op/256)%uint32(n))
			net.Serve(u, v)
			if u != v && net.Tree().DistanceID(u, v) != 1 {
				return false
			}
		}
		return net.Tree().Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
