package spec

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"github.com/ksan-net/ksan/internal/engine"
	"github.com/ksan-net/ksan/internal/sim"
	"github.com/ksan-net/ksan/internal/workload"
)

// The policy field's validation is strict both ways, like every other
// def parameter: unknown names, out-of-range parameters, set-but-unread
// parameters, unsupported adjusters for a kind, and the none/never
// pairing are all rejected before any grid runs.
func TestPolicyDefValidateRejects(t *testing.T) {
	base := func() *Experiment {
		return &Experiment{
			Networks: []NetworkDef{{Kind: "kary", K: 3, Policy: &PolicyDef{Trigger: "always", Adjuster: "splay"}}},
			Traces:   []TraceDef{{Kind: "uniform", N: 8, M: 10}},
		}
	}
	cases := map[string]*PolicyDef{
		"unknown trigger":     {Trigger: "sometimes", Adjuster: "splay"},
		"unknown adjuster":    {Trigger: "always", Adjuster: "teleport"},
		"always with m":       {Trigger: "always", M: 3, Adjuster: "splay"},
		"never with alpha":    {Trigger: "never", Alpha: 5, Adjuster: "none"},
		"every without m":     {Trigger: "every", Adjuster: "splay"},
		"every with alpha":    {Trigger: "every", M: 3, Alpha: 5, Adjuster: "splay"},
		"first without m":     {Trigger: "first", Adjuster: "splay"},
		"alpha without alpha": {Trigger: "alpha", Adjuster: "splay"},
		"alpha with m":        {Trigger: "alpha", Alpha: 10, M: 2, Adjuster: "splay"},
		"alpha negative cd":   {Trigger: "alpha", Alpha: 10, Cooldown: -1, Adjuster: "splay"},
		"none without never":  {Trigger: "always", Adjuster: "none"},
		"never without none":  {Trigger: "never", Adjuster: "splay"},
	}
	for name, pd := range cases {
		x := base()
		x.Networks[0].Policy = pd
		if err := x.Validate(); err == nil {
			t.Errorf("%s: Validate accepted policy %+v", name, pd)
		}
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("base policy document rejected: %v", err)
	}

	// Kind-specific repertoires: centroid and splaynet only compose on the
	// trigger axis, lazy is itself a canonical composition.
	for name, def := range map[string]NetworkDef{
		"centroid semi-splay": {Kind: "centroid", K: 2, Policy: &PolicyDef{Trigger: "always", Adjuster: "semi-splay"}},
		"centroid rebuild":    {Kind: "centroid", K: 2, Policy: &PolicyDef{Trigger: "alpha", Alpha: 10, Adjuster: "rebuild-wb"}},
		"splaynet semi-splay": {Kind: "splaynet", Policy: &PolicyDef{Trigger: "always", Adjuster: "semi-splay"}},
		"lazy with policy":    {Kind: "lazy", K: 3, Alpha: 10, Policy: &PolicyDef{Trigger: "always", Adjuster: "splay"}},
	} {
		if _, err := def.Spec(); err == nil {
			t.Errorf("%s: Spec accepted %+v", name, def)
		}
	}

	// The supported cross-kind compositions resolve.
	for name, def := range map[string]NetworkDef{
		"kary lazy-splay":      {Kind: "kary", K: 4, Policy: &PolicyDef{Trigger: "alpha", Alpha: 500, Adjuster: "splay"}},
		"kary hysteresis":      {Kind: "kary", K: 4, Policy: &PolicyDef{Trigger: "alpha", Alpha: 500, Cooldown: 64, Adjuster: "splay"}},
		"kary periodic semi":   {Kind: "kary", K: 3, Policy: &PolicyDef{Trigger: "every", M: 4, Adjuster: "semi-splay"}},
		"kary frozen warmup":   {Kind: "kary", K: 3, Policy: &PolicyDef{Trigger: "first", M: 1000, Adjuster: "splay"}},
		"kary rebuild opt":     {Kind: "kary", K: 3, Policy: &PolicyDef{Trigger: "alpha", Alpha: 100, Adjuster: "rebuild-opt"}},
		"centroid periodic":    {Kind: "centroid", K: 2, Policy: &PolicyDef{Trigger: "every", M: 2, Adjuster: "splay"}},
		"centroid frozen":      {Kind: "centroid", K: 2, Policy: &PolicyDef{Trigger: "never", Adjuster: "none"}},
		"splaynet periodic":    {Kind: "splaynet", Policy: &PolicyDef{Trigger: "every", M: 2, Adjuster: "splay"}},
		"splaynet frozen":      {Kind: "splaynet", Policy: &PolicyDef{Trigger: "never", Adjuster: "none"}},
		"full self-adjusting":  {Kind: "full", K: 3, Policy: &PolicyDef{Trigger: "always", Adjuster: "splay"}},
		"centroid-tree warmup": {Kind: "centroid-tree", K: 3, Policy: &PolicyDef{Trigger: "first", M: 50, Adjuster: "splay"}},
	} {
		if _, err := def.Spec(); err != nil {
			t.Errorf("%s: Spec rejected %+v: %v", name, def, err)
		}
	}
}

func TestPolicyDefComposedLabels(t *testing.T) {
	for _, tc := range []struct {
		def  NetworkDef
		want string
	}{
		{NetworkDef{Kind: "kary", K: 4, Policy: &PolicyDef{Trigger: "alpha", Alpha: 2000, Adjuster: "splay"}},
			"4-ary SplayNet [alpha(2000)×splay]"},
		{NetworkDef{Kind: "kary", K: 3, Policy: &PolicyDef{Trigger: "every", M: 4, Adjuster: "semi-splay"}},
			"3-ary SplayNet [every(4)×semi-splay]"},
		{NetworkDef{Kind: "splaynet", Policy: &PolicyDef{Trigger: "first", M: 9, Adjuster: "splay"}},
			"SplayNet [first(9)×splay]"},
		{NetworkDef{Kind: "full", K: 2, Policy: &PolicyDef{Trigger: "never", Adjuster: "none"}},
			"full 2-ary tree [never×none]"},
		{NetworkDef{Kind: "kary", K: 4, Name: "override", Policy: &PolicyDef{Trigger: "always", Adjuster: "splay"}},
			"override"},
	} {
		ns, err := tc.def.Spec()
		if err != nil {
			t.Fatalf("%+v: %v", tc.def, err)
		}
		if ns.Name != tc.want {
			t.Errorf("label %q, want %q", ns.Name, tc.want)
		}
		if net := ns.Make(32); net.Name() != tc.want {
			t.Errorf("network name %q, want %q", net.Name(), tc.want)
		}
	}
}

func TestPolicyCanonicalCompositionsBitIdentical(t *testing.T) {
	// An explicit canonical policy must reproduce the bare kind exactly:
	// kary+always×splay ≡ kary, and kary+alpha×rebuild-wb ≡ lazy.
	tr := workload.Temporal(48, 6000, 0.7, 4)
	run := func(def NetworkDef) sim.Result {
		ns, err := def.Spec()
		if err != nil {
			t.Fatal(err)
		}
		return sim.Run(ns.Make(48), tr.Reqs)
	}
	plain := run(NetworkDef{Kind: "kary", K: 3})
	composed := run(NetworkDef{Kind: "kary", K: 3, Policy: &PolicyDef{Trigger: "always", Adjuster: "splay"}})
	if plain.Routing != composed.Routing || plain.Adjust != composed.Adjust {
		t.Errorf("kary %+v != explicit always×splay %+v", plain, composed)
	}
	lazy := run(NetworkDef{Kind: "lazy", K: 3, Alpha: 700})
	lazyComposed := run(NetworkDef{Kind: "kary", K: 3, Policy: &PolicyDef{Trigger: "alpha", Alpha: 700, Adjuster: "rebuild-wb"}})
	if lazy.Routing != lazyComposed.Routing || lazy.Adjust != lazyComposed.Adjust {
		t.Errorf("lazy kind %+v != kary alpha×rebuild-wb %+v", lazy, lazyComposed)
	}
}

func TestPolicyTriggerStateFreshPerCell(t *testing.T) {
	// Triggers are stateful; a def shared by several grid cells must get a
	// fresh trigger per constructed network, or cells would contaminate
	// each other. Two cells of the same def must equal two independent
	// single-cell runs.
	def := NetworkDef{Kind: "kary", K: 3, Policy: &PolicyDef{Trigger: "every", M: 7, Adjuster: "splay"}}
	x := &Experiment{
		Networks: []NetworkDef{def},
		Traces: []TraceDef{
			{Kind: "temporal", N: 32, M: 3000, P: 0.6, Seed: 1},
			{Kind: "temporal", N: 32, M: 3000, P: 0.6, Seed: 1},
		},
	}
	nets, traces, opts, err := x.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	grid, err := engine.New(opts...).RunGrid(context.Background(), nets, traces)
	if err != nil {
		t.Fatal(err)
	}
	if grid[0][0].Result != grid[0][1].Result {
		t.Errorf("identical cells diverged: %+v vs %+v (trigger state leaked across cells)",
			grid[0][0].Result, grid[0][1].Result)
	}
	ns, err := def.Spec()
	if err != nil {
		t.Fatal(err)
	}
	tr := workload.Temporal(32, 3000, 0.6, 1)
	want := sim.Run(ns.Make(32), tr.Reqs)
	if grid[0][0].Result != want {
		t.Errorf("grid cell %+v != independent run %+v", grid[0][0].Result, want)
	}
}

func TestPolicyDefJSONRoundTrip(t *testing.T) {
	x := &Experiment{
		Name: "policy-grid",
		Networks: []NetworkDef{
			{Kind: "kary", K: 4},
			{Kind: "kary", K: 4, Policy: &PolicyDef{Trigger: "alpha", Alpha: 2000, Cooldown: 10, Adjuster: "splay"}},
			{Kind: "centroid-tree", K: 3, Policy: &PolicyDef{Trigger: "first", M: 100, Adjuster: "semi-splay"}},
		},
		Traces: []TraceDef{{Kind: "uniform", N: 16, M: 100}},
	}
	var buf bytes.Buffer
	if err := x.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var again bytes.Buffer
	if err := back.Encode(&again); err != nil {
		t.Fatal(err)
	}
	if again.String() != buf.String() {
		t.Errorf("policy document does not round-trip:\n%s\nvs\n%s", buf.String(), again.String())
	}
	if back.Networks[1].Policy == nil || back.Networks[1].Policy.Cooldown != 10 {
		t.Errorf("policy fields lost in round trip: %+v", back.Networks[1].Policy)
	}
	// Unknown policy fields are rejected like any other unknown field.
	bad := strings.Replace(buf.String(), `"trigger"`, `"trigqer"`, 1)
	if _, err := Decode(strings.NewReader(bad)); err == nil {
		t.Error("unknown policy field decoded")
	}
}
