package spec

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/ksan-net/ksan/internal/workload"
)

// TestNewTraceKindsResolve resolves every generator kind PR 7 added and
// checks each against its direct construction.
func TestNewTraceKindsResolve(t *testing.T) {
	weightsPath := filepath.Join(t.TempDir(), "weights.txt")
	if err := os.WriteFile(weightsPath, []byte("3\n2\n1\n1\n1\n1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		def  TraceDef
		want workload.Generator
	}{
		{TraceDef{Kind: "hotspot", N: 20, M: 500, Hot: 0.2, HotOpn: 0.8, Seed: 4},
			workload.HotspotGen(20, 500, 0.2, 0.8, 4)},
		{TraceDef{Kind: "exponential", N: 20, M: 500, S: 3, Seed: 4},
			workload.ExponentialGen(20, 500, 3, 4)},
		{TraceDef{Kind: "latest", N: 20, M: 500, S: 1.2, Seed: 4},
			workload.LatestGen(20, 500, 1.2, 4)},
		{TraceDef{Kind: "sequential", N: 7, M: 100},
			workload.SequentialGen(7, 100)},
	}
	hist, err := workload.HistogramGen(6, 200, []float64{3, 2, 1, 1, 1, 1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	cases = append(cases, struct {
		def  TraceDef
		want workload.Generator
	}{TraceDef{Kind: "histogram", M: 200, Path: weightsPath, Seed: 4}, hist})

	for _, tc := range cases {
		g, err := tc.def.Resolve()
		if err != nil {
			t.Fatalf("%s: %v", tc.def.Kind, err)
		}
		got, err := workload.Collect(g)
		if err != nil {
			t.Fatalf("%s: %v", tc.def.Kind, err)
		}
		want := workload.MustCollect(tc.want)
		if got.N != want.N || got.Len() != want.Len() {
			t.Fatalf("%s: resolved shape %d/%d, want %d/%d", tc.def.Kind, got.N, got.Len(), want.N, want.Len())
		}
		for i := range want.Reqs {
			if got.Reqs[i] != want.Reqs[i] {
				t.Fatalf("%s: resolved stream diverges from direct construction at %d", tc.def.Kind, i)
			}
		}
	}
}

// TestPhasedKindResolves builds a three-phase drifting def — the A6
// scenario as JSON would express it — and checks phase boundaries.
func TestPhasedKindResolves(t *testing.T) {
	def := TraceDef{Kind: "phased", Name: "drift", Phases: []TraceDef{
		{Kind: "hotspot", N: 16, M: 200, Hot: 0.25, HotOpn: 0.9, Seed: 1},
		{Kind: "sequential", N: 16, M: 100},
		{Kind: "hotspot", N: 16, M: 200, Hot: 0.25, HotOpn: 0.9, Seed: 2},
	}}
	g, err := def.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if g.Label() != "drift" || g.Nodes() != 16 || g.Len() != 500 {
		t.Fatalf("phased resolved to %q/%d/%d", g.Label(), g.Nodes(), g.Len())
	}
	tr, err := workload.Collect(g)
	if err != nil {
		t.Fatal(err)
	}
	// The middle phase is the deterministic sweep: request 200 must be the
	// sweep's first pair (1,2).
	if tr.Reqs[200].Src != 1 || tr.Reqs[200].Dst != 2 {
		t.Errorf("request 200 = %v, want the sequential phase to start at (1,2)", tr.Reqs[200])
	}
	// Drift: the two hotspot phases use different seeds, so their prefixes
	// must differ somewhere.
	same := true
	for i := 0; i < 200; i++ {
		if tr.Reqs[i] != tr.Reqs[300+i] {
			same = false
			break
		}
	}
	if same {
		t.Error("phases 0 and 2 are identical; hot set did not drift")
	}
}

// TestStrictValidationRejectsMisuse checks both directions of the spec
// contract for the new kinds: required params in range, and params a kind
// does not read rejected loudly.
func TestStrictValidationRejectsMisuse(t *testing.T) {
	cases := map[string]TraceDef{
		"hotspot without hot":     {Kind: "hotspot", N: 20, M: 100, HotOpn: 0.8},
		"hotspot without hotopn":  {Kind: "hotspot", N: 20, M: 100, Hot: 0.2},
		"hotspot hot=1":           {Kind: "hotspot", N: 20, M: 100, Hot: 1, HotOpn: 0.8},
		"hotspot empty hot set":   {Kind: "hotspot", N: 20, M: 100, Hot: 0.01, HotOpn: 0.8},
		"hotspot stray phases":    {Kind: "hotspot", N: 20, M: 100, Hot: 0.2, HotOpn: 0.8, Phases: []TraceDef{{Kind: "uniform", N: 20, M: 1}}},
		"uniform stray hot":       {Kind: "uniform", N: 20, M: 100, Hot: 0.5},
		"uniform stray hotopn":    {Kind: "uniform", N: 20, M: 100, HotOpn: 0.5},
		"uniform stray phases":    {Kind: "uniform", N: 20, M: 100, Phases: []TraceDef{{Kind: "uniform", N: 20, M: 1}}},
		"exponential without s":   {Kind: "exponential", N: 20, M: 100},
		"sequential stray seed":   {Kind: "sequential", N: 20, M: 100, Seed: 1},
		"histogram without path":  {Kind: "histogram", N: 20, M: 100},
		"histogram stray n":       {Kind: "histogram", N: 20, M: 100, Path: "w.txt", S: 1},
		"phased without phases":   {Kind: "phased"},
		"phased with stray m":     {Kind: "phased", M: 5, Phases: []TraceDef{{Kind: "uniform", N: 20, M: 100}}},
		"phased nested phased":    {Kind: "phased", Phases: []TraceDef{{Kind: "phased", Phases: []TraceDef{{Kind: "uniform", N: 20, M: 1}}}}},
		"phased csv phase":        {Kind: "phased", Phases: []TraceDef{{Kind: "csv", Path: "x.csv", M: 5}}},
		"phased node mismatch":    {Kind: "phased", Phases: []TraceDef{{Kind: "uniform", N: 20, M: 10}, {Kind: "uniform", N: 30, M: 10}}},
		"phased phase without m":  {Kind: "phased", Phases: []TraceDef{{Kind: "uniform", N: 20}}},
		"phased bad nested phase": {Kind: "phased", Phases: []TraceDef{{Kind: "hotspot", N: 20, M: 10}}},
	}
	for name, def := range cases {
		x := &Experiment{
			Networks: []NetworkDef{{Kind: "kary", K: 2}},
			Traces:   []TraceDef{def},
		}
		if err := x.Validate(); err == nil {
			t.Errorf("%s: validated", name)
		}
	}
}

// TestResolveConstructsEachGeneratorOnce pins the satellite contract: a
// custom builder is invoked exactly once per Resolve however many cells
// its trace feeds.
func TestResolveConstructsEachGeneratorOnce(t *testing.T) {
	calls := 0
	RegisterTrace("count-calls", func(d TraceDef) (workload.Generator, error) {
		calls++
		return workload.UniformGen(8, 10, 1), nil
	})
	// Registration is global and permanent (like sql.Register); the kind
	// name is unique to this test.
	x := &Experiment{
		Networks: []NetworkDef{{Kind: "kary", K: 2}, {Kind: "kary", K: 3}, {Kind: "kary", K: 4}},
		Traces:   []TraceDef{{Kind: "count-calls", Name: "c"}},
	}
	nets, traces, _, err := x.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if len(nets) != 3 || len(traces) != 1 {
		t.Fatalf("resolved %d×%d", len(nets), len(traces))
	}
	if calls != 1 {
		t.Errorf("builder called %d times, want exactly once", calls)
	}
	if traces[0].Gen == nil {
		t.Error("resolved TraceSpec does not carry the generator factory")
	}
}
