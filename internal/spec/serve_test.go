package spec

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/ksan-net/ksan/internal/serve"
)

func validLoad() *LoadSpec {
	return &LoadSpec{
		Name:    "t",
		Network: NetworkDef{Kind: "kary", K: 4},
		Trace:   TraceDef{Kind: "temporal", N: 64, M: 1000, P: 0.5, Seed: 7},
		Serve:   ServeDef{Shards: 2, Clients: 3, TargetOps: 100, Warmup: 10, MaxRequests: 500, DurationSeconds: 1.5, LatencySample: 4},
	}
}

func TestLoadSpecRoundTrip(t *testing.T) {
	l := validLoad()
	var buf bytes.Buffer
	if err := l.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeLoad(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, l) {
		t.Errorf("round trip diverged:\n got %+v\nwant %+v", got, l)
	}
}

func TestLoadSpecDecodeStrict(t *testing.T) {
	if _, err := DecodeLoad(strings.NewReader(`{"network":{"kind":"kary","k":4},"trace":{"kind":"uniform","n":8,"m":10},"bogus":1}`)); err == nil {
		t.Errorf("unknown field must be rejected")
	}
	if _, err := DecodeLoad(strings.NewReader(`{"network":{"kind":"kary","k":4},"trace":{"kind":"uniform","n":8,"m":10}} {}`)); err == nil {
		t.Errorf("trailing data must be rejected")
	}
	if _, err := DecodeLoad(strings.NewReader(`{"network":{"kind":"nope"},"trace":{"kind":"uniform","n":8,"m":10}}`)); err == nil {
		t.Errorf("unknown network kind must be rejected")
	}
}

func TestServeDefValidation(t *testing.T) {
	for _, d := range []ServeDef{
		{Shards: -1}, {Clients: -1}, {TargetOps: -1}, {Warmup: -1},
		{MaxRequests: -1}, {DurationSeconds: -1}, {LatencySample: -2},
	} {
		l := validLoad()
		l.Serve = d
		if err := l.Validate(); err == nil {
			t.Errorf("serve def %+v must be rejected", d)
		}
	}
	l := validLoad()
	l.Serve = ServeDef{} // all defaults are valid
	if err := l.Validate(); err != nil {
		t.Errorf("zero serve def must validate, got %v", err)
	}
}

// TestServeDefConfig pins the def → runtime mapping, in particular the
// latency_sample encoding (0 = default = every request, -1 = off).
func TestServeDefConfig(t *testing.T) {
	d := ServeDef{Shards: 2, Clients: 3, TargetOps: 50, Warmup: 5, MaxRequests: 99, DurationSeconds: 0.25, LatencySample: 10}
	cfg := d.Config()
	want := serve.Config{Shards: 2, Clients: 3, TargetOps: 50, Warmup: 5, MaxRequests: 99,
		Duration: 250 * time.Millisecond, LatencySample: 10}
	if cfg.Shards != want.Shards || cfg.Clients != want.Clients || cfg.TargetOps != want.TargetOps ||
		cfg.Warmup != want.Warmup || cfg.MaxRequests != want.MaxRequests ||
		cfg.Duration != want.Duration || cfg.LatencySample != want.LatencySample {
		t.Errorf("Config() = %+v, want %+v", cfg, want)
	}
	if got := (ServeDef{}).Config().LatencySample; got != 1 {
		t.Errorf("default latency sample = %d, want 1 (every request)", got)
	}
	if got := (ServeDef{LatencySample: -1}).Config().LatencySample; got != 0 {
		t.Errorf("latency_sample -1 must disable sampling, got %d", got)
	}
}

// TestLoadSpecResolve runs a resolved document end to end through the
// serving layer: the constructor sizes networks per shard and the
// generator drives real requests.
func TestLoadSpecResolve(t *testing.T) {
	l := validLoad()
	l.Serve = ServeDef{Shards: 2, Clients: 2, LatencySample: -1}
	mk, gen, cfg, err := l.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	stats, err := serve.Run(context.Background(), cfg, mk, gen)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Requests != 1000 || stats.Shards != 2 {
		t.Errorf("requests/shards = %d/%d, want 1000/2", stats.Requests, stats.Shards)
	}

	// A constructor failure must surface as a plain error.
	bad := validLoad()
	bad.Network = NetworkDef{Kind: "kary", K: 1} // K < 2 fails at Make time
	if _, _, _, err := bad.Resolve(); err == nil {
		t.Errorf("invalid network def must fail Resolve")
	}
}
