package spec

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/ksan-net/ksan/internal/serve"
)

func validLoad() *LoadSpec {
	return &LoadSpec{
		Name:    "t",
		Network: NetworkDef{Kind: "kary", K: 4},
		Trace:   TraceDef{Kind: "temporal", N: 64, M: 1000, P: 0.5, Seed: 7},
		Serve:   ServeDef{Shards: 2, Clients: 3, TargetOps: 100, Warmup: 10, MaxRequests: 500, DurationSeconds: 1.5, LatencySample: 4},
	}
}

func TestLoadSpecRoundTrip(t *testing.T) {
	l := validLoad()
	var buf bytes.Buffer
	if err := l.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeLoad(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, l) {
		t.Errorf("round trip diverged:\n got %+v\nwant %+v", got, l)
	}
}

func TestLoadSpecDecodeStrict(t *testing.T) {
	if _, err := DecodeLoad(strings.NewReader(`{"network":{"kind":"kary","k":4},"trace":{"kind":"uniform","n":8,"m":10},"bogus":1}`)); err == nil {
		t.Errorf("unknown field must be rejected")
	}
	if _, err := DecodeLoad(strings.NewReader(`{"network":{"kind":"kary","k":4},"trace":{"kind":"uniform","n":8,"m":10}} {}`)); err == nil {
		t.Errorf("trailing data must be rejected")
	}
	if _, err := DecodeLoad(strings.NewReader(`{"network":{"kind":"nope"},"trace":{"kind":"uniform","n":8,"m":10}}`)); err == nil {
		t.Errorf("unknown network kind must be rejected")
	}
}

func TestServeDefValidation(t *testing.T) {
	for _, d := range []ServeDef{
		{Shards: -1}, {Clients: -1}, {TargetOps: -1}, {Warmup: -1},
		{MaxRequests: -1}, {DurationSeconds: -1}, {LatencySample: -2},
	} {
		l := validLoad()
		l.Serve = d
		if err := l.Validate(); err == nil {
			t.Errorf("serve def %+v must be rejected", d)
		}
	}
	l := validLoad()
	l.Serve = ServeDef{} // all defaults are valid
	if err := l.Validate(); err != nil {
		t.Errorf("zero serve def must validate, got %v", err)
	}
}

// TestServeDefConfig pins the def → runtime mapping, in particular the
// latency_sample encoding (0 = default = every request, -1 = off).
func TestServeDefConfig(t *testing.T) {
	d := ServeDef{Shards: 2, Clients: 3, TargetOps: 50, Warmup: 5, MaxRequests: 99, DurationSeconds: 0.25, LatencySample: 10}
	cfg := d.Config()
	want := serve.Config{Shards: 2, Clients: 3, TargetOps: 50, Warmup: 5, MaxRequests: 99,
		Duration: 250 * time.Millisecond, LatencySample: 10}
	if cfg.Shards != want.Shards || cfg.Clients != want.Clients || cfg.TargetOps != want.TargetOps ||
		cfg.Warmup != want.Warmup || cfg.MaxRequests != want.MaxRequests ||
		cfg.Duration != want.Duration || cfg.LatencySample != want.LatencySample {
		t.Errorf("Config() = %+v, want %+v", cfg, want)
	}
	if got := (ServeDef{}).Config().LatencySample; got != 1 {
		t.Errorf("default latency sample = %d, want 1 (every request)", got)
	}
	if got := (ServeDef{LatencySample: -1}).Config().LatencySample; got != 0 {
		t.Errorf("latency_sample -1 must disable sampling, got %d", got)
	}
}

func TestFaultSpecRoundTrip(t *testing.T) {
	l := validLoad()
	l.Faults = &FaultSpec{
		CheckpointEvery: 100, Degraded: "stale", TimeoutMs: 2.5, Retries: 3,
		BackoffMs: 0.5, BackoffCapMs: 8, Seed: 99,
		Events: []FaultEventSpec{
			{Shard: 0, At: 50, Kind: "crash", RecoverAfter: 2},
			{Shard: 1, At: 10, Kind: "stall", StallMs: 1.5},
		},
	}
	var buf bytes.Buffer
	if err := l.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeLoad(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, l) {
		t.Errorf("round trip diverged:\n got %+v\nwant %+v", got, l)
	}
}

func TestFaultSpecValidation(t *testing.T) {
	crash := func(ev FaultEventSpec) *FaultSpec { return &FaultSpec{Events: []FaultEventSpec{ev}} }
	for name, f := range map[string]*FaultSpec{
		"negative checkpoint_every": {CheckpointEvery: -1},
		"unknown degraded":          {Degraded: "panic"},
		"negative timeout":          {TimeoutMs: -1},
		"negative retries":          {Retries: -1},
		"negative backoff":          {BackoffMs: -1},
		"negative backoff cap":      {BackoffCapMs: -1},
		"negative shard":            crash(FaultEventSpec{Shard: -1, At: 1, Kind: "crash"}),
		"at zero":                   crash(FaultEventSpec{At: 0, Kind: "crash"}),
		"unknown kind":              crash(FaultEventSpec{At: 1, Kind: "explode"}),
		"recover_after below -1":    crash(FaultEventSpec{At: 1, Kind: "crash", RecoverAfter: -2}),
		"crash with stall_ms":       crash(FaultEventSpec{At: 1, Kind: "crash", StallMs: 1}),
		"stall without stall_ms":    crash(FaultEventSpec{At: 1, Kind: "stall"}),
		"stall with recover_after":  crash(FaultEventSpec{At: 1, Kind: "stall", StallMs: 1, RecoverAfter: 1}),
	} {
		l := validLoad()
		l.Faults = f
		if err := l.Validate(); err == nil {
			t.Errorf("%s: fault spec %+v must be rejected", name, f)
		}
	}
	l := validLoad()
	l.Faults = &FaultSpec{} // zero faults block is valid (defaults, no events)
	if err := l.Validate(); err != nil {
		t.Errorf("zero fault spec must validate, got %v", err)
	}
}

// TestFaultSpecPlan pins the spec → runtime mapping: millisecond fields
// become durations, kind/degraded strings become enums.
func TestFaultSpecPlan(t *testing.T) {
	f := &FaultSpec{
		CheckpointEvery: 64, Degraded: "stale", TimeoutMs: 2.5, Retries: 2,
		BackoffMs: 0.5, BackoffCapMs: 4, Seed: 7,
		Events: []FaultEventSpec{
			{Shard: 1, At: 9, Kind: "crash", RecoverAfter: -1},
			{Shard: 0, At: 3, Kind: "stall", StallMs: 1.5},
		},
	}
	p := f.Plan()
	want := &serve.FaultPlan{
		CheckpointEvery: 64, Degraded: serve.DegradedStale,
		Timeout: 2500 * time.Microsecond, Retries: 2,
		Backoff: 500 * time.Microsecond, BackoffCap: 4 * time.Millisecond, Seed: 7,
		Events: []serve.FaultEvent{
			{Shard: 1, At: 9, Kind: serve.FaultCrash, RecoverAfter: -1},
			{Shard: 0, At: 3, Kind: serve.FaultStall, Stall: 1500 * time.Microsecond},
		},
	}
	if !reflect.DeepEqual(p, want) {
		t.Errorf("Plan() = %+v, want %+v", p, want)
	}
	if got := (&FaultSpec{}).Plan(); got.Degraded != serve.DegradedFail || got.CheckpointEvery != 0 {
		t.Errorf("zero spec must plan to fail-fast defaults, got %+v", got)
	}
}

// TestLoadSpecResolveFaulted resolves a faulted document end to end: the
// fault plan reaches the serving config, and a lossless crash schedule
// reproduces the fault-free totals exactly.
func TestLoadSpecResolveFaulted(t *testing.T) {
	base := validLoad()
	base.Serve = ServeDef{Shards: 1, Clients: 1, LatencySample: -1}
	mk, gen, cfg, err := base.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	clean, err := serve.Run(context.Background(), cfg, mk, gen)
	if err != nil {
		t.Fatal(err)
	}

	faulted := validLoad()
	faulted.Serve = ServeDef{Shards: 1, Clients: 1, LatencySample: -1}
	faulted.Faults = &FaultSpec{
		CheckpointEvery: 100,
		Events:          []FaultEventSpec{{Shard: 0, At: 250, Kind: "crash"}},
	}
	mk, gen, cfg, err = faulted.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Faults == nil {
		t.Fatal("Resolve dropped the fault plan")
	}
	stats, err := serve.Run(context.Background(), cfg, mk, gen)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Routing != clean.Routing || stats.Adjust != clean.Adjust || stats.Requests != clean.Requests {
		t.Errorf("lossless faulted run diverged: got %d/%d/%d, want %d/%d/%d",
			stats.Requests, stats.Routing, stats.Adjust, clean.Requests, clean.Routing, clean.Adjust)
	}
	if f := stats.Faults; f == nil || f.Crashes != 1 || f.Recoveries != 1 || f.ReplayedRequests != 50 {
		t.Errorf("fault ledger = %+v, want 1 crash, 1 recovery, 50 replayed", stats.Faults)
	}
}

// TestLoadSpecResolve runs a resolved document end to end through the
// serving layer: the constructor sizes networks per shard and the
// generator drives real requests.
func TestLoadSpecResolve(t *testing.T) {
	l := validLoad()
	l.Serve = ServeDef{Shards: 2, Clients: 2, LatencySample: -1}
	mk, gen, cfg, err := l.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	stats, err := serve.Run(context.Background(), cfg, mk, gen)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Requests != 1000 || stats.Shards != 2 {
		t.Errorf("requests/shards = %d/%d, want 1000/2", stats.Requests, stats.Shards)
	}

	// A constructor failure must surface as a plain error.
	bad := validLoad()
	bad.Network = NetworkDef{Kind: "kary", K: 1} // K < 2 fails at Make time
	if _, _, _, err := bad.Resolve(); err == nil {
		t.Errorf("invalid network def must fail Resolve")
	}
}
