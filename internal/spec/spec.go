// Package spec is the declarative, serializable experiment layer: it turns
// the engine's closure-based grid inputs (engine.NetworkSpec, whose Make is
// a Go function, and engine.TraceSpec, whose Reqs the caller must
// pre-materialize) into data. A NetworkDef or TraceDef is a small JSON
// document naming a registered kind plus its parameters; an Experiment
// composes the two sides with serializable engine options into a complete
// grid description that can be written to a file, diffed, shipped, and
// re-run bit-identically (every builtin resolves through the same
// deterministic constructors and generators the hand-written paper suite
// uses).
//
// The taxonomy mirrors the input/algorithm/metric framing of the
// self-adjusting-networks program (Avin & Schmid, "Toward Demand-Aware
// Networking"): network defs are the algorithms, trace defs the inputs,
// and the engine options select the metrics surface. Both sides are open:
// RegisterNetwork and RegisterTrace add new kinds at init time, so
// downstream code can make its own designs and workloads file-addressable.
package spec

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"

	"github.com/ksan-net/ksan/internal/centroidnet"
	"github.com/ksan-net/ksan/internal/core"
	"github.com/ksan-net/ksan/internal/engine"
	"github.com/ksan-net/ksan/internal/karynet"
	"github.com/ksan-net/ksan/internal/lazynet"
	"github.com/ksan-net/ksan/internal/policy"
	"github.com/ksan-net/ksan/internal/sim"
	"github.com/ksan-net/ksan/internal/splaynet"
	"github.com/ksan-net/ksan/internal/statictree"
	"github.com/ksan-net/ksan/internal/workload"
)

// NetworkDef declares one network design by registered kind. The builtin
// kinds and the parameters they read:
//
//	kary      — the k-ary SplayNet (K ≥ 2)
//	centroid  — the centroid-based (K+1)-SplayNet (K ≥ 2)
//	splaynet  — the binary SplayNet baseline (no parameters)
//	lazy      — the partially reactive network (K ≥ 2, Alpha > 0)
//	full      — the static weakly-complete k-ary tree (K ≥ 2)
//	centroid-tree — the static centroid k-ary tree (K ≥ 2)
//	uniform-opt   — the static uniform-optimal k-ary tree (K ≥ 2)
//
// Every builtin kind except lazy additionally accepts a Policy: the kind
// then only names the topology family, and the policy picks the point of
// the trigger × adjuster plane served on it (see PolicyDef). Without a
// policy each kind is its canonical composition — kary/centroid/splaynet
// are fully reactive (always × their splay), the static kinds are frozen
// (never × none). The lazy kind is itself the canonical
// kary × (alpha, rebuild-wb) composition, so it rejects a policy; spell
// variations as kary defs with an explicit policy.
//
// Name optionally overrides the grid label (progress events) and the
// network's report name.
type NetworkDef struct {
	Kind   string     `json:"kind"`
	Name   string     `json:"name,omitempty"`
	K      int        `json:"k,omitempty"`
	Alpha  int64      `json:"alpha,omitempty"`
	Policy *PolicyDef `json:"policy,omitempty"`
}

// PolicyDef selects a trigger × adjuster composition for a network def's
// topology. Triggers and the parameters they read:
//
//	always — adjust after every request (no parameters)
//	never  — frozen topology (no parameters)
//	every  — adjust on every M-th request (M ≥ 1)
//	first  — adjust on each of the first M requests, then freeze (M ≥ 1)
//	alpha  — adjust once the routing cost since the last adjustment
//	         reaches Alpha (Alpha ≥ 1; Cooldown ≥ 0 adds a re-arm delay
//	         of that many requests, the hysteresis damping)
//
// Adjusters (availability depends on the kind — the repertoire is a
// property of the topology):
//
//	splay       — full k-splay (kary and the static-tree kinds), the
//	              centroid repertoire (centroid), or the binary double
//	              splay (splaynet)
//	semi-splay  — single k-semi-splay steps (kary and static-tree kinds)
//	rebuild-wb  — weight-balanced whole-topology rebuild from the
//	              observed demand window (kary and static-tree kinds)
//	rebuild-opt — exact-DP rebuild, small networks (same kinds)
//	none        — no adjustment; exactly paired with trigger "never"
//	              (a firing trigger with no adjuster, or a frozen
//	              trigger with one, describes a different experiment
//	              than the one that would run, so both are rejected)
type PolicyDef struct {
	Trigger  string `json:"trigger"`
	M        int64  `json:"m,omitempty"`
	Alpha    int64  `json:"alpha,omitempty"`
	Cooldown int64  `json:"cooldown,omitempty"`
	Adjuster string `json:"adjuster"`
}

// TraceDef declares one workload request stream by registered kind. The
// builtin kinds and the parameters they read (all except csv and phased
// require N ≥ 2 and M ≥ 1):
//
//	uniform     — UniformGen(N, M, Seed)
//	temporal    — TemporalGen(N, M, P, Seed), P in [0,1)
//	hpc         — HPCGen(N, M, Seed)
//	projector   — ProjectorGen(N, M, Seed)
//	facebook    — FacebookGen(N, M, Seed)
//	zipf        — ZipfGen(N, M, S, Seed), S > 0
//	hotspot     — HotspotGen(N, M, Hot, HotOpn, Seed): a Hot fraction of
//	              the nodes receives a HotOpn fraction of the endpoint
//	              draws (both in (0,1), and Hot·N must leave both sets
//	              non-empty)
//	exponential — ExponentialGen(N, M, S, Seed), S > 0 the decay rate
//	sequential  — SequentialGen(N, M): the deterministic all-pairs sweep;
//	              reads no seed
//	histogram   — HistogramGen over explicit node weights read from Path
//	              (one weight per line; N comes from the file), plus M
//	              and Seed
//	latest      — LatestGen(N, M, S, Seed), S > 0 the recency skew
//	csv         — a trace file written by workload.WriteCSV, streamed from
//	              Path (N comes from the file; length is unknown up front)
//	phased      — the concatenation of Phases: each phase is a complete
//	              trace def of any non-phased, known-length kind whose M
//	              is the phase's duration; all phases must share one node
//	              count. Flash crowds, diurnal skew rotation and hot-set
//	              drift are phase lists (see EXPERIMENTS.md §A6).
//
// Name optionally overrides the trace's report label.
type TraceDef struct {
	Kind   string     `json:"kind"`
	Name   string     `json:"name,omitempty"`
	N      int        `json:"n,omitempty"`
	M      int        `json:"m,omitempty"`
	P      float64    `json:"p,omitempty"`
	S      float64    `json:"s,omitempty"`
	Hot    float64    `json:"hot,omitempty"`
	HotOpn float64    `json:"hotopn,omitempty"`
	Seed   int64      `json:"seed,omitempty"`
	Path   string     `json:"path,omitempty"`
	Phases []TraceDef `json:"phases,omitempty"`
}

// EngineDef is the serializable subset of the engine's options. Zero
// values mean "engine default" (GOMAXPROCS workers, no warmup, no window,
// churn tracking off).
type EngineDef struct {
	Workers   int  `json:"workers,omitempty"`
	Warmup    int  `json:"warmup,omitempty"`
	Window    int  `json:"window,omitempty"`
	LinkChurn bool `json:"link_churn,omitempty"`
}

// Experiment is a complete grid description: every network × every trace,
// evaluated under the engine options. It is the unit of serialization —
// Encode/Decode round-trip it through JSON.
type Experiment struct {
	Name     string       `json:"name,omitempty"`
	Networks []NetworkDef `json:"networks"`
	Traces   []TraceDef   `json:"traces"`
	Engine   EngineDef    `json:"engine,omitempty"`
}

// NetworkBuilder resolves a def of its registered kind to a grid spec. It
// must validate the def's parameters eagerly and return a spec whose Make
// is cheap to call once per grid cell.
type NetworkBuilder func(NetworkDef) (engine.NetworkSpec, error)

// TraceBuilder resolves a def of its registered kind to a streaming
// request generator. It is called exactly once per Experiment resolution,
// however many grid cells share the trace: the returned Generator is the
// shared factory, and each cell takes its own independent pass over it
// (sound by the Generator contract — every Requests call owns its
// iteration state). Builders therefore must return deterministic
// generators; a generator with hidden mutable cursor state would make
// grid results depend on cell scheduling.
type TraceBuilder func(TraceDef) (workload.Generator, error)

var (
	regMu    sync.RWMutex
	networks = map[string]NetworkBuilder{}
	traces   = map[string]TraceBuilder{}
	trChecks = map[string]func(TraceDef) error{}
)

// RegisterNetwork adds a network kind. It panics on an empty kind, a nil
// builder, or a duplicate registration (like http.Handle and sql.Register,
// registration errors are programmer errors caught at init time).
func RegisterNetwork(kind string, build NetworkBuilder) {
	if kind == "" || build == nil {
		panic("spec: RegisterNetwork with empty kind or nil builder")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := networks[kind]; dup {
		panic(fmt.Sprintf("spec: network kind %q already registered", kind))
	}
	networks[kind] = build
}

// RegisterTrace adds a trace kind. It panics on an empty kind, a nil
// builder, or a duplicate registration.
func RegisterTrace(kind string, build TraceBuilder) {
	if kind == "" || build == nil {
		panic("spec: RegisterTrace with empty kind or nil builder")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := traces[kind]; dup {
		panic(fmt.Sprintf("spec: trace kind %q already registered", kind))
	}
	traces[kind] = build
}

// NetworkKinds returns the registered network kinds, sorted.
func NetworkKinds() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return sortedKeys(networks)
}

// TraceKinds returns the registered trace kinds, sorted.
func TraceKinds() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return sortedKeys(traces)
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Spec resolves the def through the registry to the engine's grid input.
func (d NetworkDef) Spec() (engine.NetworkSpec, error) {
	regMu.RLock()
	build, ok := networks[d.Kind]
	regMu.RUnlock()
	if !ok {
		return engine.NetworkSpec{}, fmt.Errorf("spec: unknown network kind %q (registered: %v)", d.Kind, NetworkKinds())
	}
	ns, err := build(d)
	if err != nil {
		return engine.NetworkSpec{}, err
	}
	if d.Name != "" {
		ns.Name = d.Name
	}
	return ns, nil
}

// Resolve resolves the def through the registry to its streaming request
// generator; no requests are drawn (or materialized) until a consumer
// iterates the returned Generator.
func (d TraceDef) Resolve() (workload.Generator, error) {
	regMu.RLock()
	build, ok := traces[d.Kind]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("spec: unknown trace kind %q (registered: %v)", d.Kind, TraceKinds())
	}
	g, err := build(d)
	if err != nil {
		return nil, err
	}
	if d.Name != "" {
		g = workload.Relabel(g, d.Name)
	}
	return g, nil
}

// Materialize is Resolve followed by collecting the whole stream into a
// Trace: the in-memory convenience for consumers that need random access.
func (d TraceDef) Materialize() (workload.Trace, error) {
	g, err := d.Resolve()
	if err != nil {
		return workload.Trace{}, err
	}
	return workload.Collect(g)
}

// check validates a trace def without materializing it, where the kind
// registered a checker (all builtins do). Custom kinds without a checker
// validate at Materialize time.
func (d TraceDef) check() error {
	regMu.RLock()
	_, known := traces[d.Kind]
	chk := trChecks[d.Kind]
	regMu.RUnlock()
	if !known {
		return fmt.Errorf("spec: unknown trace kind %q (registered: %v)", d.Kind, TraceKinds())
	}
	if chk != nil {
		return chk(d)
	}
	return nil
}

// Validate checks the document is well-formed without materializing any
// trace: both sides non-empty, engine fields non-negative, every kind
// registered, and every builtin def's parameters in range.
func (x *Experiment) Validate() error {
	if len(x.Networks) == 0 {
		return fmt.Errorf("spec: experiment %q has no networks", x.Name)
	}
	if len(x.Traces) == 0 {
		return fmt.Errorf("spec: experiment %q has no traces", x.Name)
	}
	if x.Engine.Workers < 0 || x.Engine.Warmup < 0 || x.Engine.Window < 0 {
		return fmt.Errorf("spec: experiment %q has negative engine options %+v", x.Name, x.Engine)
	}
	for i, d := range x.Networks {
		if _, err := d.Spec(); err != nil {
			return fmt.Errorf("networks[%d]: %w", i, err)
		}
	}
	for j, d := range x.Traces {
		if err := d.check(); err != nil {
			return fmt.Errorf("traces[%d]: %w", j, err)
		}
	}
	return nil
}

// Options converts the serializable engine options into engine.Options.
func (d EngineDef) Options() []engine.Option {
	var opts []engine.Option
	if d.Workers > 0 {
		opts = append(opts, engine.WithWorkers(d.Workers))
	}
	if d.Warmup > 0 {
		opts = append(opts, engine.WithWarmup(d.Warmup))
	}
	if d.Window > 0 {
		opts = append(opts, engine.WithWindow(d.Window))
	}
	if d.LinkChurn {
		opts = append(opts, engine.WithLinkChurn(true))
	}
	return opts
}

// Resolve validates the document and turns it into the engine's grid
// inputs. Each trace def is resolved to its generator factory exactly
// once, however many grid cells (one per network) will serve it — the
// cells stream their own passes, so a grid holds one factory per trace
// instead of one materialized request slice per cell.
func (x *Experiment) Resolve() ([]engine.NetworkSpec, []engine.TraceSpec, []engine.Option, error) {
	if err := x.Validate(); err != nil {
		return nil, nil, nil, err
	}
	nets := make([]engine.NetworkSpec, len(x.Networks))
	for i, d := range x.Networks {
		ns, err := d.Spec()
		if err != nil {
			return nil, nil, nil, fmt.Errorf("networks[%d]: %w", i, err)
		}
		nets[i] = ns
	}
	trs := make([]engine.TraceSpec, len(x.Traces))
	for j, d := range x.Traces {
		g, err := d.Resolve()
		if err != nil {
			return nil, nil, nil, fmt.Errorf("traces[%d]: %w", j, err)
		}
		trs[j] = engine.TraceSpecFor(g)
	}
	return nets, trs, x.Engine.Options(), nil
}

// Encode writes the document as indented JSON (the canonical on-disk
// form: Decode(Encode(x)) round-trips bit-identically).
func (x *Experiment) Encode(w io.Writer) error {
	b, err := json.MarshalIndent(x, "", "  ")
	if err != nil {
		return fmt.Errorf("spec: encoding experiment %q: %w", x.Name, err)
	}
	b = append(b, '\n')
	if _, err := w.Write(b); err != nil {
		return fmt.Errorf("spec: writing experiment %q: %w", x.Name, err)
	}
	return nil
}

// Decode parses and validates an experiment document. Unknown fields and
// trailing content after the document are rejected, so typos and botched
// merges fail loudly instead of silently running a different grid.
func Decode(r io.Reader) (*Experiment, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var x Experiment
	if err := dec.Decode(&x); err != nil {
		return nil, fmt.Errorf("spec: decoding experiment: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("spec: trailing data after the experiment document")
	}
	if err := x.Validate(); err != nil {
		return nil, err
	}
	return &x, nil
}

// --- policy defs ---

// policyTriggers and policyAdjusters list the registered names for error
// messages.
var policyTriggers = []string{"always", "never", "every", "first", "alpha"}

// check validates the trigger and its parameters (strict both ways, like
// the kind checks: set-but-unread parameters are rejected) and that the
// adjuster is one the kind's topology supports.
func (pd *PolicyDef) check(kind string, adjusters ...string) error {
	switch pd.Trigger {
	case "always", "never":
		if pd.M != 0 || pd.Alpha != 0 || pd.Cooldown != 0 {
			return fmt.Errorf("spec: policy trigger %q takes no parameters, got m=%d alpha=%d cooldown=%d",
				pd.Trigger, pd.M, pd.Alpha, pd.Cooldown)
		}
	case "every", "first":
		if pd.M < 1 {
			return fmt.Errorf("spec: policy trigger %q needs m >= 1, got %d", pd.Trigger, pd.M)
		}
		if pd.Alpha != 0 || pd.Cooldown != 0 {
			return fmt.Errorf("spec: policy trigger %q does not read alpha/cooldown (got %d/%d)",
				pd.Trigger, pd.Alpha, pd.Cooldown)
		}
	case "alpha":
		if pd.Alpha < 1 {
			return fmt.Errorf("spec: policy trigger \"alpha\" needs alpha >= 1, got %d", pd.Alpha)
		}
		if pd.M != 0 {
			return fmt.Errorf("spec: policy trigger \"alpha\" does not read m (got %d)", pd.M)
		}
		if pd.Cooldown < 0 {
			return fmt.Errorf("spec: policy trigger \"alpha\" needs cooldown >= 0, got %d", pd.Cooldown)
		}
	default:
		return fmt.Errorf("spec: unknown policy trigger %q (registered: %v)", pd.Trigger, policyTriggers)
	}
	found := false
	for _, a := range adjusters {
		if a == pd.Adjuster {
			found = true
		}
	}
	if !found {
		return fmt.Errorf("spec: network kind %q supports policy adjusters %v, got %q", kind, adjusters, pd.Adjuster)
	}
	if frozen := pd.Trigger == "never"; frozen != (pd.Adjuster == "none") {
		return fmt.Errorf("spec: policy adjuster \"none\" pairs exactly with trigger \"never\" (got %s × %s)",
			pd.Trigger, pd.Adjuster)
	}
	return nil
}

// trigger materializes a fresh trigger instance. Triggers are stateful,
// so this must be called once per constructed network, never shared
// across grid cells. It assumes check passed.
func (pd *PolicyDef) trigger() policy.Trigger {
	switch pd.Trigger {
	case "always":
		return policy.Always()
	case "never":
		return policy.Never()
	case "every":
		return policy.EveryM(pd.M)
	case "first":
		return policy.First(pd.M)
	case "alpha":
		return policy.AlphaHysteresis(pd.Alpha, pd.Cooldown)
	}
	panic(fmt.Sprintf("spec: unchecked policy trigger %q", pd.Trigger))
}

// treeAdjuster materializes the adjuster for a core.Tree-backed kind. It
// assumes check passed with the tree adjuster set.
func (pd *PolicyDef) treeAdjuster() policy.Adjuster {
	switch pd.Adjuster {
	case "splay":
		return policy.Splay()
	case "semi-splay":
		return policy.SemiSplay()
	case "rebuild-wb":
		return policy.Rebuild("weight-balanced", statictree.WeightBalanced)
	case "rebuild-opt":
		return policy.Rebuild("optimal", statictree.Optimal)
	case "none":
		return policy.None()
	}
	panic(fmt.Sprintf("spec: unchecked policy adjuster %q", pd.Adjuster))
}

// label renders the composition suffix appended to a kind's base label,
// e.g. "4-ary SplayNet [alpha(2000)×splay]".
func (pd *PolicyDef) label(base string) string {
	return fmt.Sprintf("%s [%s×%s]", base, pd.trigger().Name(), pd.Adjuster)
}

// treeAdjusterNames is the adjuster repertoire of the generic
// core.Tree-backed kinds (kary and the static-tree kinds).
var treeAdjusterNames = []string{"splay", "semi-splay", "rebuild-wb", "rebuild-opt", "none"}

// --- builtin kinds ---

// registerBuiltinNetwork wraps the builder with an eager parameter check,
// so Experiment.Validate (which calls Spec and discards the result) can
// reject bad builtin defs before any grid runs.
func registerBuiltinNetwork(kind string, check func(NetworkDef) error, build NetworkBuilder) {
	RegisterNetwork(kind, func(d NetworkDef) (engine.NetworkSpec, error) {
		if err := check(d); err != nil {
			return engine.NetworkSpec{}, err
		}
		return build(d)
	})
}

func registerBuiltinTrace(kind string, check func(TraceDef) error, build TraceBuilder) {
	RegisterTrace(kind, func(d TraceDef) (workload.Generator, error) {
		if err := check(d); err != nil {
			return nil, err
		}
		return build(d)
	})
	regMu.Lock()
	trChecks[kind] = check
	regMu.Unlock()
}

// Builtin checks are strict both ways: required parameters must be in
// range AND parameters the kind does not read must stay zero — a set-but-
// ignored field means the document describes a different experiment than
// the one that would run, the same failure mode DisallowUnknownFields
// guards against at the JSON layer.

func needK(kind string) func(NetworkDef) error {
	return func(d NetworkDef) error {
		if d.K < 2 {
			return fmt.Errorf("spec: network kind %q needs k >= 2, got %d", kind, d.K)
		}
		if d.Alpha != 0 {
			return fmt.Errorf("spec: network kind %q does not read alpha (got %d)", kind, d.Alpha)
		}
		return nil
	}
}

func noParams(kind string) func(NetworkDef) error {
	return func(d NetworkDef) error {
		if d.K != 0 || d.Alpha != 0 {
			return fmt.Errorf("spec: network kind %q takes no parameters, got k=%d alpha=%d", kind, d.K, d.Alpha)
		}
		return nil
	}
}

// genCheck validates the shared generator parameters (every builtin trace
// generator needs at least two nodes to form a self-loop-free pair) and
// rejects set-but-unread ones: wantP/wantS mark the kinds that read the
// temporal parameter p and the skew parameter s. Only hotspot reads
// hot/hotopn and only phased reads phases; both have their own checks, so
// genCheck rejects those fields outright.
func genCheck(kind string, wantP, wantS bool) func(TraceDef) error {
	return func(d TraceDef) error {
		if d.N < 2 {
			return fmt.Errorf("spec: trace kind %q needs n >= 2, got %d", kind, d.N)
		}
		if d.M < 1 {
			return fmt.Errorf("spec: trace kind %q needs m >= 1, got %d", kind, d.M)
		}
		if d.Path != "" {
			return fmt.Errorf("spec: trace kind %q does not read path (got %q)", kind, d.Path)
		}
		if d.Hot != 0 || d.HotOpn != 0 {
			return fmt.Errorf("spec: trace kind %q does not read hot/hotopn (got %v/%v)", kind, d.Hot, d.HotOpn)
		}
		if len(d.Phases) != 0 {
			return fmt.Errorf("spec: trace kind %q does not read phases (got %d)", kind, len(d.Phases))
		}
		switch {
		case wantP && (d.P < 0 || d.P >= 1):
			return fmt.Errorf("spec: trace kind %q needs p in [0,1), got %v", kind, d.P)
		case !wantP && d.P != 0:
			return fmt.Errorf("spec: trace kind %q does not read p (got %v)", kind, d.P)
		}
		switch {
		case wantS && d.S <= 0:
			return fmt.Errorf("spec: trace kind %q needs s > 0, got %v", kind, d.S)
		case !wantS && d.S != 0:
			return fmt.Errorf("spec: trace kind %q does not read s (got %v)", kind, d.S)
		}
		return nil
	}
}

// hotspotCheck is genCheck for the one kind that reads hot/hotopn, with
// the set-size constraint HotspotGen would otherwise panic on.
func hotspotCheck(d TraceDef) error {
	if d.N < 2 {
		return fmt.Errorf("spec: trace kind \"hotspot\" needs n >= 2, got %d", d.N)
	}
	if d.M < 1 {
		return fmt.Errorf("spec: trace kind \"hotspot\" needs m >= 1, got %d", d.M)
	}
	if d.P != 0 || d.S != 0 || d.Path != "" || len(d.Phases) != 0 {
		return fmt.Errorf("spec: trace kind \"hotspot\" reads only n/m/hot/hotopn/seed (got p=%v s=%v path=%q phases=%d)", d.P, d.S, d.Path, len(d.Phases))
	}
	if d.HotOpn <= 0 || d.HotOpn >= 1 {
		return fmt.Errorf("spec: trace kind \"hotspot\" needs hotopn in (0,1), got %v", d.HotOpn)
	}
	if hot := int(d.Hot * float64(d.N)); d.Hot <= 0 || d.Hot >= 1 || hot < 1 || hot >= d.N {
		return fmt.Errorf("spec: trace kind \"hotspot\" needs hot in (0,1) with hot·n in 1..n-1, got hot=%v n=%d", d.Hot, d.N)
	}
	return nil
}

// sequentialCheck: the all-pairs sweep is fully deterministic, so a set
// seed (or any distribution parameter) describes an experiment the kind
// cannot run.
func sequentialCheck(d TraceDef) error {
	if d.N < 2 {
		return fmt.Errorf("spec: trace kind \"sequential\" needs n >= 2, got %d", d.N)
	}
	if d.M < 1 {
		return fmt.Errorf("spec: trace kind \"sequential\" needs m >= 1, got %d", d.M)
	}
	if d.P != 0 || d.S != 0 || d.Seed != 0 || d.Path != "" || d.Hot != 0 || d.HotOpn != 0 || len(d.Phases) != 0 {
		return fmt.Errorf("spec: trace kind \"sequential\" reads only n and m (got p=%v s=%v seed=%d path=%q hot=%v hotopn=%v phases=%d)",
			d.P, d.S, d.Seed, d.Path, d.Hot, d.HotOpn, len(d.Phases))
	}
	return nil
}

// histogramCheck: node count and weights come from the file, so n must
// stay zero like csv's.
func histogramCheck(d TraceDef) error {
	if d.Path == "" {
		return fmt.Errorf("spec: trace kind \"histogram\" needs a path")
	}
	if d.M < 1 {
		return fmt.Errorf("spec: trace kind \"histogram\" needs m >= 1, got %d", d.M)
	}
	if d.N != 0 || d.P != 0 || d.S != 0 || d.Hot != 0 || d.HotOpn != 0 || len(d.Phases) != 0 {
		return fmt.Errorf("spec: trace kind \"histogram\" reads only path/m/seed/name; n comes from the file (got n=%d p=%v s=%v hot=%v hotopn=%v phases=%d)",
			d.N, d.P, d.S, d.Hot, d.HotOpn, len(d.Phases))
	}
	return nil
}

// phasedCheck validates the phase list recursively: every phase is a
// complete def of a known-length, non-nested kind, all phases agree on
// the node count, and the outer def carries nothing but name and phases
// (its label and length are derived).
func phasedCheck(d TraceDef) error {
	if len(d.Phases) == 0 {
		return fmt.Errorf("spec: trace kind \"phased\" needs at least one phase")
	}
	if d.N != 0 || d.M != 0 || d.P != 0 || d.S != 0 || d.Seed != 0 || d.Path != "" || d.Hot != 0 || d.HotOpn != 0 {
		return fmt.Errorf("spec: trace kind \"phased\" reads only name and phases; n/m and all parameters live on the phase defs (got n=%d m=%d p=%v s=%v seed=%d path=%q hot=%v hotopn=%v)",
			d.N, d.M, d.P, d.S, d.Seed, d.Path, d.Hot, d.HotOpn)
	}
	n := 0
	for i, pd := range d.Phases {
		switch pd.Kind {
		case "phased":
			return fmt.Errorf("spec: phases[%d]: phased traces do not nest", i)
		case "csv":
			return fmt.Errorf("spec: phases[%d]: kind \"csv\" cannot be a phase (its length is not declared, so the phase duration is unknowable)", i)
		}
		if err := pd.check(); err != nil {
			return fmt.Errorf("spec: phases[%d]: %w", i, err)
		}
		if i == 0 {
			n = pd.N
		} else if pd.N != n {
			return fmt.Errorf("spec: phases[%d]: node count %d differs from phase 0's %d (one network serves the whole stream)", i, pd.N, n)
		}
	}
	return nil
}

// makeNet adapts an error-returning constructor to NetworkSpec.Make:
// construction failures (e.g. a def whose arity is incompatible with a
// trace's node count, knowable only per cell) surface as cell errors
// carrying the constructor's message via engine.FailedNetwork.
func makeNet(build func(n int) (sim.Network, error)) func(n int) sim.Network {
	return func(n int) sim.Network {
		net, err := build(n)
		if err != nil {
			return engine.FailedNetwork(err)
		}
		return net
	}
}

// treeSpec resolves a kind whose topology is a bare core.Tree (the
// static-tree kinds): without a policy the canonical composition is the
// frozen corner (never × none) — a batch-capable static network exactly
// like before the policy layer existed — and with one, the same topology
// self-adjusts under the chosen trigger × adjuster. d.Name overrides the
// label; a composed default label carries the composition suffix.
func treeSpec(d NetworkDef, defaultLabel string, build func(n int) (*core.Tree, error)) (engine.NetworkSpec, error) {
	label := d.Name
	if label == "" {
		label = defaultLabel
	}
	mk := func() (policy.Trigger, policy.Adjuster) { return policy.Never(), policy.None() }
	if d.Policy != nil {
		if err := d.Policy.check(d.Kind, treeAdjusterNames...); err != nil {
			return engine.NetworkSpec{}, err
		}
		pd := d.Policy
		if d.Name == "" {
			label = pd.label(defaultLabel)
		}
		mk = func() (policy.Trigger, policy.Adjuster) { return pd.trigger(), pd.treeAdjuster() }
	}
	lbl := label
	return engine.NetworkSpec{Name: lbl, Make: makeNet(func(n int) (sim.Network, error) {
		t, err := build(n)
		if err != nil {
			return nil, err
		}
		trig, adj := mk()
		return policy.New(lbl, t, trig, adj)
	})}, nil
}

// policyKindSpec resolves a kind with a canonical (no-policy) spec and
// per-cell policy compositions: adjusters lists the kind's repertoire,
// canonical builds the bare spec, compose builds one network of the
// checked composition (labels follow base + the composition suffix,
// overridden by d.Name).
func policyKindSpec(d NetworkDef, base string, adjusters []string,
	canonical func() engine.NetworkSpec,
	compose func(label string, pd *PolicyDef, n int) (sim.Network, error)) (engine.NetworkSpec, error) {
	pd := d.Policy
	if pd == nil {
		if d.Name == "" {
			return canonical(), nil
		}
		// A named canonical def builds through the compose path so the
		// override labels results too, not just the grid: the canonical
		// composition (always × the kind's own splay) is bit-identical
		// to the bare constructor, only the label differs.
		pd = &PolicyDef{Trigger: "always", Adjuster: "splay"}
	} else if err := pd.check(d.Kind, adjusters...); err != nil {
		return engine.NetworkSpec{}, err
	}
	label := pd.label(base)
	if d.Name != "" {
		label = d.Name
	}
	return engine.NetworkSpec{
		Name: label,
		Make: makeNet(func(n int) (sim.Network, error) { return compose(label, pd, n) }),
	}, nil
}

// triggerOnlyAdjusters is the repertoire of kinds whose adjustment rule
// lives in the topology (centroid, splaynet): only the trigger axis
// composes.
var triggerOnlyAdjusters = []string{"splay", "none"}

func init() {
	registerBuiltinNetwork("kary", needK("kary"), func(d NetworkDef) (engine.NetworkSpec, error) {
		k := d.K
		base := fmt.Sprintf("%d-ary SplayNet", k)
		return policyKindSpec(d, base, treeAdjusterNames,
			func() engine.NetworkSpec {
				return engine.NetworkSpec{Name: base, Make: makeNet(func(n int) (sim.Network, error) {
					return karynet.New(n, k)
				})}
			},
			func(label string, pd *PolicyDef, n int) (sim.Network, error) {
				return karynet.Compose(label, n, k, pd.trigger(), pd.treeAdjuster())
			})
	})
	registerBuiltinNetwork("centroid", needK("centroid"), func(d NetworkDef) (engine.NetworkSpec, error) {
		k := d.K
		base := fmt.Sprintf("%d-SplayNet", k+1)
		return policyKindSpec(d, base, triggerOnlyAdjusters,
			func() engine.NetworkSpec {
				return engine.NetworkSpec{Name: base, Make: makeNet(func(n int) (sim.Network, error) {
					return centroidnet.New(n, k)
				})}
			},
			func(label string, pd *PolicyDef, n int) (sim.Network, error) {
				return centroidnet.Compose(label, n, k, pd.trigger())
			})
	})
	registerBuiltinNetwork("splaynet", noParams("splaynet"), func(d NetworkDef) (engine.NetworkSpec, error) {
		return policyKindSpec(d, "SplayNet", triggerOnlyAdjusters,
			func() engine.NetworkSpec {
				return engine.NetworkSpec{Name: "SplayNet", Make: makeNet(func(n int) (sim.Network, error) {
					return splaynet.New(n)
				})}
			},
			func(label string, pd *PolicyDef, n int) (sim.Network, error) {
				return splaynet.Compose(label, n, pd.trigger())
			})
	})
	registerBuiltinNetwork("lazy", func(d NetworkDef) error {
		if d.K < 2 {
			return fmt.Errorf("spec: network kind \"lazy\" needs k >= 2, got %d", d.K)
		}
		if d.Alpha < 1 {
			return fmt.Errorf("spec: network kind \"lazy\" needs alpha >= 1, got %d", d.Alpha)
		}
		if d.Policy != nil {
			return fmt.Errorf("spec: network kind \"lazy\" is the canonical kary × (alpha, rebuild-wb) composition and takes no policy; use kind \"kary\" with an explicit policy instead")
		}
		return nil
	}, func(d NetworkDef) (engine.NetworkSpec, error) {
		k, alpha := d.K, d.Alpha
		return engine.NetworkSpec{
			Name: fmt.Sprintf("lazy %d-ary α=%d", k, alpha),
			Make: makeNet(func(n int) (sim.Network, error) { return lazynet.New(n, k, alpha) }),
		}, nil
	})
	registerBuiltinNetwork("full", needK("full"), func(d NetworkDef) (engine.NetworkSpec, error) {
		k := d.K
		return treeSpec(d, fmt.Sprintf("full %d-ary tree", k), func(n int) (*core.Tree, error) {
			return statictree.Full(n, k)
		})
	})
	registerBuiltinNetwork("centroid-tree", needK("centroid-tree"), func(d NetworkDef) (engine.NetworkSpec, error) {
		k := d.K
		return treeSpec(d, fmt.Sprintf("centroid %d-ary tree", k), func(n int) (*core.Tree, error) {
			return statictree.Centroid(n, k)
		})
	})
	registerBuiltinNetwork("uniform-opt", needK("uniform-opt"), func(d NetworkDef) (engine.NetworkSpec, error) {
		k := d.K
		return treeSpec(d, fmt.Sprintf("uniform-optimal %d-ary tree", k), func(n int) (*core.Tree, error) {
			t, _, err := statictree.OptimalUniform(n, k)
			return t, err
		})
	})

	registerBuiltinTrace("uniform", genCheck("uniform", false, false), func(d TraceDef) (workload.Generator, error) {
		return workload.UniformGen(d.N, d.M, d.Seed), nil
	})
	registerBuiltinTrace("temporal", genCheck("temporal", true, false), func(d TraceDef) (workload.Generator, error) {
		return workload.TemporalGen(d.N, d.M, d.P, d.Seed), nil
	})
	registerBuiltinTrace("hpc", genCheck("hpc", false, false), func(d TraceDef) (workload.Generator, error) {
		return workload.HPCGen(d.N, d.M, d.Seed), nil
	})
	registerBuiltinTrace("projector", genCheck("projector", false, false), func(d TraceDef) (workload.Generator, error) {
		return workload.ProjectorGen(d.N, d.M, d.Seed), nil
	})
	registerBuiltinTrace("facebook", genCheck("facebook", false, false), func(d TraceDef) (workload.Generator, error) {
		return workload.FacebookGen(d.N, d.M, d.Seed), nil
	})
	registerBuiltinTrace("zipf", genCheck("zipf", false, true), func(d TraceDef) (workload.Generator, error) {
		return workload.ZipfGen(d.N, d.M, d.S, d.Seed), nil
	})
	registerBuiltinTrace("hotspot", hotspotCheck, func(d TraceDef) (workload.Generator, error) {
		return workload.HotspotGen(d.N, d.M, d.Hot, d.HotOpn, d.Seed), nil
	})
	registerBuiltinTrace("exponential", genCheck("exponential", false, true), func(d TraceDef) (workload.Generator, error) {
		return workload.ExponentialGen(d.N, d.M, d.S, d.Seed), nil
	})
	registerBuiltinTrace("latest", genCheck("latest", false, true), func(d TraceDef) (workload.Generator, error) {
		return workload.LatestGen(d.N, d.M, d.S, d.Seed), nil
	})
	registerBuiltinTrace("sequential", sequentialCheck, func(d TraceDef) (workload.Generator, error) {
		return workload.SequentialGen(d.N, d.M), nil
	})
	registerBuiltinTrace("histogram", histogramCheck, func(d TraceDef) (workload.Generator, error) {
		f, err := os.Open(d.Path)
		if err != nil {
			return nil, fmt.Errorf("spec: opening histogram file: %w", err)
		}
		defer f.Close()
		weights, err := workload.ReadWeights(f)
		if err != nil {
			return nil, fmt.Errorf("spec: %s: %w", d.Path, err)
		}
		g, err := workload.HistogramGen(len(weights), d.M, weights, d.Seed)
		if err != nil {
			return nil, fmt.Errorf("spec: %s: %w", d.Path, err)
		}
		return g, nil
	})
	registerBuiltinTrace("csv", func(d TraceDef) error {
		if d.Path == "" {
			return fmt.Errorf("spec: trace kind \"csv\" needs a path")
		}
		if d.N != 0 || d.M != 0 || d.P != 0 || d.S != 0 || d.Seed != 0 || d.Hot != 0 || d.HotOpn != 0 || len(d.Phases) != 0 {
			return fmt.Errorf("spec: trace kind \"csv\" reads only path and name; everything else comes from the file (got n=%d m=%d p=%v s=%v seed=%d hot=%v hotopn=%v phases=%d)",
				d.N, d.M, d.P, d.S, d.Seed, d.Hot, d.HotOpn, len(d.Phases))
		}
		return nil
	}, func(d TraceDef) (workload.Generator, error) {
		g, err := workload.OpenCSV(d.Path)
		if err != nil {
			return nil, fmt.Errorf("spec: %s: %w", d.Path, err)
		}
		return g, nil
	})
	registerBuiltinTrace("phased", phasedCheck, func(d TraceDef) (workload.Generator, error) {
		phases := make([]workload.Phase, len(d.Phases))
		for i, pd := range d.Phases {
			g, err := pd.Resolve()
			if err != nil {
				return nil, fmt.Errorf("spec: phases[%d]: %w", i, err)
			}
			phases[i] = workload.Phase{Gen: g, M: pd.M}
		}
		label := d.Name
		if label == "" {
			label = "phased"
		}
		return workload.PhasedGen(label, phases)
	})
}
