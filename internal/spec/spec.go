// Package spec is the declarative, serializable experiment layer: it turns
// the engine's closure-based grid inputs (engine.NetworkSpec, whose Make is
// a Go function, and engine.TraceSpec, whose Reqs the caller must
// pre-materialize) into data. A NetworkDef or TraceDef is a small JSON
// document naming a registered kind plus its parameters; an Experiment
// composes the two sides with serializable engine options into a complete
// grid description that can be written to a file, diffed, shipped, and
// re-run bit-identically (every builtin resolves through the same
// deterministic constructors and generators the hand-written paper suite
// uses).
//
// The taxonomy mirrors the input/algorithm/metric framing of the
// self-adjusting-networks program (Avin & Schmid, "Toward Demand-Aware
// Networking"): network defs are the algorithms, trace defs the inputs,
// and the engine options select the metrics surface. Both sides are open:
// RegisterNetwork and RegisterTrace add new kinds at init time, so
// downstream code can make its own designs and workloads file-addressable.
package spec

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"

	"github.com/ksan-net/ksan/internal/centroidnet"
	"github.com/ksan-net/ksan/internal/engine"
	"github.com/ksan-net/ksan/internal/karynet"
	"github.com/ksan-net/ksan/internal/lazynet"
	"github.com/ksan-net/ksan/internal/sim"
	"github.com/ksan-net/ksan/internal/splaynet"
	"github.com/ksan-net/ksan/internal/statictree"
	"github.com/ksan-net/ksan/internal/workload"
)

// NetworkDef declares one network design by registered kind. The builtin
// kinds and the parameters they read:
//
//	kary      — the k-ary SplayNet (K ≥ 2)
//	centroid  — the centroid-based (K+1)-SplayNet (K ≥ 2)
//	splaynet  — the binary SplayNet baseline (no parameters)
//	lazy      — the partially reactive network (K ≥ 2, Alpha > 0)
//	full      — the static weakly-complete k-ary tree (K ≥ 2)
//	centroid-tree — the static centroid k-ary tree (K ≥ 2)
//	uniform-opt   — the static uniform-optimal k-ary tree (K ≥ 2)
//
// Name optionally overrides the grid label (progress events); the network's
// own Name() still labels results, except for the static kinds, whose
// wrapped tree takes the label as its name.
type NetworkDef struct {
	Kind  string `json:"kind"`
	Name  string `json:"name,omitempty"`
	K     int    `json:"k,omitempty"`
	Alpha int64  `json:"alpha,omitempty"`
}

// TraceDef declares one workload trace by registered kind. The builtin
// kinds and the parameters they read (all require N ≥ 2 and M ≥ 1):
//
//	uniform   — Uniform(N, M, Seed)
//	temporal  — Temporal(N, M, P, Seed), P in [0,1)
//	hpc       — HPCLike(N, M, Seed)
//	projector — ProjecToRLike(N, M, Seed)
//	facebook  — FacebookLike(N, M, Seed)
//	zipf      — Zipf(N, M, S, Seed), S > 0
//	csv       — a trace file written by workload.WriteCSV, read from Path
//	            (N and M come from the file)
//
// Name optionally overrides the trace's report label.
type TraceDef struct {
	Kind string  `json:"kind"`
	Name string  `json:"name,omitempty"`
	N    int     `json:"n,omitempty"`
	M    int     `json:"m,omitempty"`
	P    float64 `json:"p,omitempty"`
	S    float64 `json:"s,omitempty"`
	Seed int64   `json:"seed,omitempty"`
	Path string  `json:"path,omitempty"`
}

// EngineDef is the serializable subset of the engine's options. Zero
// values mean "engine default" (GOMAXPROCS workers, no warmup, no window,
// churn tracking off).
type EngineDef struct {
	Workers   int  `json:"workers,omitempty"`
	Warmup    int  `json:"warmup,omitempty"`
	Window    int  `json:"window,omitempty"`
	LinkChurn bool `json:"link_churn,omitempty"`
}

// Experiment is a complete grid description: every network × every trace,
// evaluated under the engine options. It is the unit of serialization —
// Encode/Decode round-trip it through JSON.
type Experiment struct {
	Name     string       `json:"name,omitempty"`
	Networks []NetworkDef `json:"networks"`
	Traces   []TraceDef   `json:"traces"`
	Engine   EngineDef    `json:"engine,omitempty"`
}

// NetworkBuilder resolves a def of its registered kind to a grid spec. It
// must validate the def's parameters eagerly and return a spec whose Make
// is cheap to call once per grid cell.
type NetworkBuilder func(NetworkDef) (engine.NetworkSpec, error)

// TraceBuilder materializes a def of its registered kind into a trace. It
// is called exactly once per Experiment resolution, however many grid
// cells share the trace.
type TraceBuilder func(TraceDef) (workload.Trace, error)

var (
	regMu    sync.RWMutex
	networks = map[string]NetworkBuilder{}
	traces   = map[string]TraceBuilder{}
	trChecks = map[string]func(TraceDef) error{}
)

// RegisterNetwork adds a network kind. It panics on an empty kind, a nil
// builder, or a duplicate registration (like http.Handle and sql.Register,
// registration errors are programmer errors caught at init time).
func RegisterNetwork(kind string, build NetworkBuilder) {
	if kind == "" || build == nil {
		panic("spec: RegisterNetwork with empty kind or nil builder")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := networks[kind]; dup {
		panic(fmt.Sprintf("spec: network kind %q already registered", kind))
	}
	networks[kind] = build
}

// RegisterTrace adds a trace kind. It panics on an empty kind, a nil
// builder, or a duplicate registration.
func RegisterTrace(kind string, build TraceBuilder) {
	if kind == "" || build == nil {
		panic("spec: RegisterTrace with empty kind or nil builder")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := traces[kind]; dup {
		panic(fmt.Sprintf("spec: trace kind %q already registered", kind))
	}
	traces[kind] = build
}

// NetworkKinds returns the registered network kinds, sorted.
func NetworkKinds() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return sortedKeys(networks)
}

// TraceKinds returns the registered trace kinds, sorted.
func TraceKinds() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return sortedKeys(traces)
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Spec resolves the def through the registry to the engine's grid input.
func (d NetworkDef) Spec() (engine.NetworkSpec, error) {
	regMu.RLock()
	build, ok := networks[d.Kind]
	regMu.RUnlock()
	if !ok {
		return engine.NetworkSpec{}, fmt.Errorf("spec: unknown network kind %q (registered: %v)", d.Kind, NetworkKinds())
	}
	ns, err := build(d)
	if err != nil {
		return engine.NetworkSpec{}, err
	}
	if d.Name != "" {
		ns.Name = d.Name
	}
	return ns, nil
}

// Materialize resolves the def through the registry and generates (or
// loads) the trace.
func (d TraceDef) Materialize() (workload.Trace, error) {
	regMu.RLock()
	build, ok := traces[d.Kind]
	regMu.RUnlock()
	if !ok {
		return workload.Trace{}, fmt.Errorf("spec: unknown trace kind %q (registered: %v)", d.Kind, TraceKinds())
	}
	tr, err := build(d)
	if err != nil {
		return workload.Trace{}, err
	}
	if d.Name != "" {
		tr.Name = d.Name
	}
	return tr, nil
}

// check validates a trace def without materializing it, where the kind
// registered a checker (all builtins do). Custom kinds without a checker
// validate at Materialize time.
func (d TraceDef) check() error {
	regMu.RLock()
	_, known := traces[d.Kind]
	chk := trChecks[d.Kind]
	regMu.RUnlock()
	if !known {
		return fmt.Errorf("spec: unknown trace kind %q (registered: %v)", d.Kind, TraceKinds())
	}
	if chk != nil {
		return chk(d)
	}
	return nil
}

// Validate checks the document is well-formed without materializing any
// trace: both sides non-empty, engine fields non-negative, every kind
// registered, and every builtin def's parameters in range.
func (x *Experiment) Validate() error {
	if len(x.Networks) == 0 {
		return fmt.Errorf("spec: experiment %q has no networks", x.Name)
	}
	if len(x.Traces) == 0 {
		return fmt.Errorf("spec: experiment %q has no traces", x.Name)
	}
	if x.Engine.Workers < 0 || x.Engine.Warmup < 0 || x.Engine.Window < 0 {
		return fmt.Errorf("spec: experiment %q has negative engine options %+v", x.Name, x.Engine)
	}
	for i, d := range x.Networks {
		if _, err := d.Spec(); err != nil {
			return fmt.Errorf("networks[%d]: %w", i, err)
		}
	}
	for j, d := range x.Traces {
		if err := d.check(); err != nil {
			return fmt.Errorf("traces[%d]: %w", j, err)
		}
	}
	return nil
}

// Options converts the serializable engine options into engine.Options.
func (d EngineDef) Options() []engine.Option {
	var opts []engine.Option
	if d.Workers > 0 {
		opts = append(opts, engine.WithWorkers(d.Workers))
	}
	if d.Warmup > 0 {
		opts = append(opts, engine.WithWarmup(d.Warmup))
	}
	if d.Window > 0 {
		opts = append(opts, engine.WithWindow(d.Window))
	}
	if d.LinkChurn {
		opts = append(opts, engine.WithLinkChurn(true))
	}
	return opts
}

// Resolve validates the document and turns it into the engine's grid
// inputs. Each trace def is materialized exactly once, however many grid
// cells (one per network) will serve it.
func (x *Experiment) Resolve() ([]engine.NetworkSpec, []engine.TraceSpec, []engine.Option, error) {
	if err := x.Validate(); err != nil {
		return nil, nil, nil, err
	}
	nets := make([]engine.NetworkSpec, len(x.Networks))
	for i, d := range x.Networks {
		ns, err := d.Spec()
		if err != nil {
			return nil, nil, nil, fmt.Errorf("networks[%d]: %w", i, err)
		}
		nets[i] = ns
	}
	trs := make([]engine.TraceSpec, len(x.Traces))
	for j, d := range x.Traces {
		tr, err := d.Materialize()
		if err != nil {
			return nil, nil, nil, fmt.Errorf("traces[%d]: %w", j, err)
		}
		trs[j] = engine.TraceSpec{Name: tr.Name, N: tr.N, Reqs: tr.Reqs}
	}
	return nets, trs, x.Engine.Options(), nil
}

// Encode writes the document as indented JSON (the canonical on-disk
// form: Decode(Encode(x)) round-trips bit-identically).
func (x *Experiment) Encode(w io.Writer) error {
	b, err := json.MarshalIndent(x, "", "  ")
	if err != nil {
		return fmt.Errorf("spec: encoding experiment %q: %w", x.Name, err)
	}
	b = append(b, '\n')
	if _, err := w.Write(b); err != nil {
		return fmt.Errorf("spec: writing experiment %q: %w", x.Name, err)
	}
	return nil
}

// Decode parses and validates an experiment document. Unknown fields and
// trailing content after the document are rejected, so typos and botched
// merges fail loudly instead of silently running a different grid.
func Decode(r io.Reader) (*Experiment, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var x Experiment
	if err := dec.Decode(&x); err != nil {
		return nil, fmt.Errorf("spec: decoding experiment: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("spec: trailing data after the experiment document")
	}
	if err := x.Validate(); err != nil {
		return nil, err
	}
	return &x, nil
}

// --- builtin kinds ---

// registerBuiltinNetwork wraps the builder with an eager parameter check,
// so Experiment.Validate (which calls Spec and discards the result) can
// reject bad builtin defs before any grid runs.
func registerBuiltinNetwork(kind string, check func(NetworkDef) error, build NetworkBuilder) {
	RegisterNetwork(kind, func(d NetworkDef) (engine.NetworkSpec, error) {
		if err := check(d); err != nil {
			return engine.NetworkSpec{}, err
		}
		return build(d)
	})
}

func registerBuiltinTrace(kind string, check func(TraceDef) error, build TraceBuilder) {
	RegisterTrace(kind, func(d TraceDef) (workload.Trace, error) {
		if err := check(d); err != nil {
			return workload.Trace{}, err
		}
		return build(d)
	})
	regMu.Lock()
	trChecks[kind] = check
	regMu.Unlock()
}

// Builtin checks are strict both ways: required parameters must be in
// range AND parameters the kind does not read must stay zero — a set-but-
// ignored field means the document describes a different experiment than
// the one that would run, the same failure mode DisallowUnknownFields
// guards against at the JSON layer.

func needK(kind string) func(NetworkDef) error {
	return func(d NetworkDef) error {
		if d.K < 2 {
			return fmt.Errorf("spec: network kind %q needs k >= 2, got %d", kind, d.K)
		}
		if d.Alpha != 0 {
			return fmt.Errorf("spec: network kind %q does not read alpha (got %d)", kind, d.Alpha)
		}
		return nil
	}
}

func noParams(kind string) func(NetworkDef) error {
	return func(d NetworkDef) error {
		if d.K != 0 || d.Alpha != 0 {
			return fmt.Errorf("spec: network kind %q takes no parameters, got k=%d alpha=%d", kind, d.K, d.Alpha)
		}
		return nil
	}
}

// genCheck validates the shared generator parameters (every builtin trace
// generator needs at least two nodes to form a self-loop-free pair) and
// rejects set-but-unread ones: wantP/wantS mark the kinds that read the
// temporal parameter p and the skew parameter s.
func genCheck(kind string, wantP, wantS bool) func(TraceDef) error {
	return func(d TraceDef) error {
		if d.N < 2 {
			return fmt.Errorf("spec: trace kind %q needs n >= 2, got %d", kind, d.N)
		}
		if d.M < 1 {
			return fmt.Errorf("spec: trace kind %q needs m >= 1, got %d", kind, d.M)
		}
		if d.Path != "" {
			return fmt.Errorf("spec: trace kind %q does not read path (got %q)", kind, d.Path)
		}
		switch {
		case wantP && (d.P < 0 || d.P >= 1):
			return fmt.Errorf("spec: trace kind %q needs p in [0,1), got %v", kind, d.P)
		case !wantP && d.P != 0:
			return fmt.Errorf("spec: trace kind %q does not read p (got %v)", kind, d.P)
		}
		switch {
		case wantS && d.S <= 0:
			return fmt.Errorf("spec: trace kind %q needs s > 0, got %v", kind, d.S)
		case !wantS && d.S != 0:
			return fmt.Errorf("spec: trace kind %q does not read s (got %v)", kind, d.S)
		}
		return nil
	}
}

// makeNet adapts an error-returning constructor to NetworkSpec.Make:
// construction failures (e.g. a def whose arity is incompatible with a
// trace's node count, knowable only per cell) surface as cell errors
// carrying the constructor's message via engine.FailedNetwork.
func makeNet(build func(n int) (sim.Network, error)) func(n int) sim.Network {
	return func(n int) sim.Network {
		net, err := build(n)
		if err != nil {
			return engine.FailedNetwork(err)
		}
		return net
	}
}

// staticSpec wraps a tree builder as a batch-capable static network spec.
func staticSpec(label string, build func(n int) (*statictree.Net, error)) engine.NetworkSpec {
	return engine.NetworkSpec{Name: label, Make: makeNet(func(n int) (sim.Network, error) {
		return build(n)
	})}
}

func init() {
	registerBuiltinNetwork("kary", needK("kary"), func(d NetworkDef) (engine.NetworkSpec, error) {
		k := d.K
		return engine.NetworkSpec{
			Name: fmt.Sprintf("%d-ary SplayNet", k),
			Make: makeNet(func(n int) (sim.Network, error) { return karynet.New(n, k) }),
		}, nil
	})
	registerBuiltinNetwork("centroid", needK("centroid"), func(d NetworkDef) (engine.NetworkSpec, error) {
		k := d.K
		return engine.NetworkSpec{
			Name: fmt.Sprintf("%d-SplayNet", k+1),
			Make: makeNet(func(n int) (sim.Network, error) { return centroidnet.New(n, k) }),
		}, nil
	})
	registerBuiltinNetwork("splaynet", noParams("splaynet"), func(d NetworkDef) (engine.NetworkSpec, error) {
		return engine.NetworkSpec{
			Name: "SplayNet",
			Make: makeNet(func(n int) (sim.Network, error) { return splaynet.New(n) }),
		}, nil
	})
	registerBuiltinNetwork("lazy", func(d NetworkDef) error {
		if d.K < 2 {
			return fmt.Errorf("spec: network kind \"lazy\" needs k >= 2, got %d", d.K)
		}
		if d.Alpha < 1 {
			return fmt.Errorf("spec: network kind \"lazy\" needs alpha >= 1, got %d", d.Alpha)
		}
		return nil
	}, func(d NetworkDef) (engine.NetworkSpec, error) {
		k, alpha := d.K, d.Alpha
		return engine.NetworkSpec{
			Name: fmt.Sprintf("lazy %d-ary α=%d", k, alpha),
			Make: makeNet(func(n int) (sim.Network, error) { return lazynet.New(n, k, alpha) }),
		}, nil
	})
	registerBuiltinNetwork("full", needK("full"), func(d NetworkDef) (engine.NetworkSpec, error) {
		k := d.K
		label := d.Name
		if label == "" {
			label = fmt.Sprintf("full %d-ary tree", k)
		}
		return staticSpec(label, func(n int) (*statictree.Net, error) {
			t, err := statictree.Full(n, k)
			if err != nil {
				return nil, err
			}
			return statictree.NewNet(label, t), nil
		}), nil
	})
	registerBuiltinNetwork("centroid-tree", needK("centroid-tree"), func(d NetworkDef) (engine.NetworkSpec, error) {
		k := d.K
		label := d.Name
		if label == "" {
			label = fmt.Sprintf("centroid %d-ary tree", k)
		}
		return staticSpec(label, func(n int) (*statictree.Net, error) {
			t, err := statictree.Centroid(n, k)
			if err != nil {
				return nil, err
			}
			return statictree.NewNet(label, t), nil
		}), nil
	})
	registerBuiltinNetwork("uniform-opt", needK("uniform-opt"), func(d NetworkDef) (engine.NetworkSpec, error) {
		k := d.K
		label := d.Name
		if label == "" {
			label = fmt.Sprintf("uniform-optimal %d-ary tree", k)
		}
		return staticSpec(label, func(n int) (*statictree.Net, error) {
			t, _, err := statictree.OptimalUniform(n, k)
			if err != nil {
				return nil, err
			}
			return statictree.NewNet(label, t), nil
		}), nil
	})

	registerBuiltinTrace("uniform", genCheck("uniform", false, false), func(d TraceDef) (workload.Trace, error) {
		return workload.Uniform(d.N, d.M, d.Seed), nil
	})
	registerBuiltinTrace("temporal", genCheck("temporal", true, false), func(d TraceDef) (workload.Trace, error) {
		return workload.Temporal(d.N, d.M, d.P, d.Seed), nil
	})
	registerBuiltinTrace("hpc", genCheck("hpc", false, false), func(d TraceDef) (workload.Trace, error) {
		return workload.HPCLike(d.N, d.M, d.Seed), nil
	})
	registerBuiltinTrace("projector", genCheck("projector", false, false), func(d TraceDef) (workload.Trace, error) {
		return workload.ProjecToRLike(d.N, d.M, d.Seed), nil
	})
	registerBuiltinTrace("facebook", genCheck("facebook", false, false), func(d TraceDef) (workload.Trace, error) {
		return workload.FacebookLike(d.N, d.M, d.Seed), nil
	})
	registerBuiltinTrace("zipf", genCheck("zipf", false, true), func(d TraceDef) (workload.Trace, error) {
		return workload.Zipf(d.N, d.M, d.S, d.Seed), nil
	})
	registerBuiltinTrace("csv", func(d TraceDef) error {
		if d.Path == "" {
			return fmt.Errorf("spec: trace kind \"csv\" needs a path")
		}
		if d.N != 0 || d.M != 0 || d.P != 0 || d.S != 0 || d.Seed != 0 {
			return fmt.Errorf("spec: trace kind \"csv\" reads only path and name; n/m/p/s/seed come from the file (got n=%d m=%d p=%v s=%v seed=%d)", d.N, d.M, d.P, d.S, d.Seed)
		}
		return nil
	}, func(d TraceDef) (workload.Trace, error) {
		f, err := os.Open(d.Path)
		if err != nil {
			return workload.Trace{}, fmt.Errorf("spec: opening trace file: %w", err)
		}
		defer f.Close()
		tr, err := workload.ReadCSV(f)
		if err != nil {
			return workload.Trace{}, fmt.Errorf("spec: %s: %w", d.Path, err)
		}
		return tr, nil
	})
}
