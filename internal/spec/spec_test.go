package spec

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"github.com/ksan-net/ksan/internal/engine"
	"github.com/ksan-net/ksan/internal/sim"
	"github.com/ksan-net/ksan/internal/workload"
)

func sampleExperiment() *Experiment {
	return &Experiment{
		Name: "sample",
		Networks: []NetworkDef{
			{Kind: "kary", K: 3},
			{Kind: "centroid", K: 2},
			{Kind: "splaynet"},
			{Kind: "lazy", K: 3, Alpha: 10_000},
			{Kind: "full", K: 3},
			{Kind: "centroid-tree", K: 3},
			{Kind: "uniform-opt", K: 3},
		},
		Traces: []TraceDef{
			{Kind: "temporal", N: 32, M: 500, P: 0.5, Seed: 1},
			{Kind: "uniform", N: 32, M: 500, Seed: 2},
			{Kind: "zipf", N: 32, M: 500, S: 1.1, Seed: 3},
			{Kind: "hpc", N: 32, M: 500, Seed: 4},
			{Kind: "projector", N: 32, M: 500, Seed: 5},
			{Kind: "facebook", N: 32, M: 500, Seed: 6},
		},
		Engine: EngineDef{Workers: 2, Warmup: 100, Window: 200},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	x := sampleExperiment()
	var buf bytes.Buffer
	if err := x.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	first := buf.String()
	back, err := Decode(strings.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(x, back) {
		t.Fatalf("round trip changed the document:\n%+v\nvs\n%+v", x, back)
	}
	// Encoding is canonical: Encode(Decode(Encode(x))) is bit-identical.
	var again bytes.Buffer
	if err := back.Encode(&again); err != nil {
		t.Fatal(err)
	}
	if again.String() != first {
		t.Fatalf("encoding not canonical:\n%q\nvs\n%q", again.String(), first)
	}
}

func TestDecodeRejectsUnknownFields(t *testing.T) {
	in := `{"networks":[{"kind":"kary","k":3}],"traces":[{"kind":"uniform","n":8,"m":10}],"typo_field":1}`
	if _, err := Decode(strings.NewReader(in)); err == nil {
		t.Fatal("unknown top-level field accepted")
	}
	in = `{"networks":[{"kind":"kary","karity":3}],"traces":[{"kind":"uniform","n":8,"m":10}]}`
	if _, err := Decode(strings.NewReader(in)); err == nil {
		t.Fatal("unknown def field accepted")
	}
}

func TestDecodeRejectsTrailingData(t *testing.T) {
	doc := `{"networks":[{"kind":"kary","k":3}],"traces":[{"kind":"uniform","n":8,"m":10}]}`
	if _, err := Decode(strings.NewReader(doc + "\n" + doc)); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("concatenated documents accepted: %v", err)
	}
	// Trailing whitespace (what Encode emits) stays fine.
	if _, err := Decode(strings.NewReader(doc + "\n  \n")); err != nil {
		t.Fatalf("trailing whitespace rejected: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	base := func() *Experiment {
		return &Experiment{
			Networks: []NetworkDef{{Kind: "kary", K: 3}},
			Traces:   []TraceDef{{Kind: "uniform", N: 8, M: 10}},
		}
	}
	cases := map[string]func(*Experiment){
		"no networks":        func(x *Experiment) { x.Networks = nil },
		"no traces":          func(x *Experiment) { x.Traces = nil },
		"negative workers":   func(x *Experiment) { x.Engine.Workers = -1 },
		"unknown net kind":   func(x *Experiment) { x.Networks[0].Kind = "nope" },
		"unknown trace kind": func(x *Experiment) { x.Traces[0].Kind = "nope" },
		"kary k too small":   func(x *Experiment) { x.Networks[0].K = 1 },
		"splaynet with k":    func(x *Experiment) { x.Networks[0] = NetworkDef{Kind: "splaynet", K: 2} },
		"lazy without alpha": func(x *Experiment) { x.Networks[0] = NetworkDef{Kind: "lazy", K: 3} },
		"trace n too small":  func(x *Experiment) { x.Traces[0].N = 1 },
		"trace m too small":  func(x *Experiment) { x.Traces[0].M = 0 },
		"temporal bad p":     func(x *Experiment) { x.Traces[0] = TraceDef{Kind: "temporal", N: 8, M: 10, P: 1.0} },
		"zipf bad s":         func(x *Experiment) { x.Traces[0] = TraceDef{Kind: "zipf", N: 8, M: 10, S: 0} },
		"csv without path":   func(x *Experiment) { x.Traces[0] = TraceDef{Kind: "csv"} },
		// Set-but-unread parameters are rejected too: a field the kind
		// ignores means the document lies about the experiment.
		"uniform with p":   func(x *Experiment) { x.Traces[0].P = 0.75 },
		"uniform with s":   func(x *Experiment) { x.Traces[0].S = 1.2 },
		"temporal with s":  func(x *Experiment) { x.Traces[0] = TraceDef{Kind: "temporal", N: 8, M: 10, P: 0.5, S: 1.2} },
		"zipf with p":      func(x *Experiment) { x.Traces[0] = TraceDef{Kind: "zipf", N: 8, M: 10, S: 1.2, P: 0.5} },
		"generator + path": func(x *Experiment) { x.Traces[0].Path = "t.csv" },
		"csv with n/m":     func(x *Experiment) { x.Traces[0] = TraceDef{Kind: "csv", Path: "t.csv", N: 8, M: 10} },
		"kary with alpha":  func(x *Experiment) { x.Networks[0].Alpha = 50 },
	}
	for name, mutate := range cases {
		x := base()
		mutate(x)
		if err := x.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, x)
		}
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("base document rejected: %v", err)
	}
}

func TestUnknownKindErrorNamesRegisteredKinds(t *testing.T) {
	_, err := NetworkDef{Kind: "nope"}.Spec()
	if err == nil || !strings.Contains(err.Error(), "kary") {
		t.Errorf("unknown-kind error should list registered kinds, got %v", err)
	}
	_, err = TraceDef{Kind: "nope"}.Materialize()
	if err == nil || !strings.Contains(err.Error(), "uniform") {
		t.Errorf("unknown-kind error should list registered kinds, got %v", err)
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if r := recover(); r == nil {
				t.Errorf("%s did not panic", name)
			} else if msg, ok := r.(string); !ok || !strings.Contains(msg, "already registered") {
				t.Errorf("%s panic %v lacks a clear message", name, r)
			}
		}()
		fn()
	}
	mustPanic("duplicate network kind", func() {
		RegisterNetwork("kary", func(NetworkDef) (engine.NetworkSpec, error) {
			return engine.NetworkSpec{}, nil
		})
	})
	mustPanic("duplicate trace kind", func() {
		RegisterTrace("uniform", func(TraceDef) (workload.Generator, error) {
			return workload.Trace{}, nil
		})
	})
}

func TestRegisterRejectsNilAndEmpty(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty network kind": func() {
			RegisterNetwork("", func(NetworkDef) (engine.NetworkSpec, error) { return engine.NetworkSpec{}, nil })
		},
		"nil network builder": func() { RegisterNetwork("x-nil", nil) },
		"empty trace kind": func() {
			RegisterTrace("", func(TraceDef) (workload.Generator, error) { return workload.Trace{}, nil })
		},
		"nil trace builder": func() { RegisterTrace("x-nil", nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestCustomKindsResolve(t *testing.T) {
	RegisterNetwork("test-fixed", func(d NetworkDef) (engine.NetworkSpec, error) {
		return engine.NetworkSpec{Name: "fixed", Make: func(n int) sim.Network {
			return fixedNet{n: n}
		}}, nil
	})
	RegisterTrace("test-pair", func(d TraceDef) (workload.Generator, error) {
		return workload.Trace{Name: "pair", N: d.N, Reqs: []sim.Request{{Src: 1, Dst: 2}}}, nil
	})
	x := &Experiment{
		Networks: []NetworkDef{{Kind: "test-fixed"}},
		Traces:   []TraceDef{{Kind: "test-pair", N: 4}},
	}
	nets, traces, _, err := x.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	grid, err := engine.New().RunGrid(context.Background(), nets, traces)
	if err != nil {
		t.Fatal(err)
	}
	if grid[0][0].Requests != 1 || grid[0][0].Routing != 1 {
		t.Errorf("custom grid cell %+v", grid[0][0])
	}
}

// fixedNet serves every request at unit routing cost.
type fixedNet struct{ n int }

func (f fixedNet) Name() string            { return "fixed" }
func (f fixedNet) N() int                  { return f.n }
func (f fixedNet) Serve(u, v int) sim.Cost { return sim.Cost{Routing: 1} }

func TestResolveMatchesDirectConstruction(t *testing.T) {
	// A def-built grid must be bit-identical to the closure-built one.
	x := &Experiment{
		Networks: []NetworkDef{{Kind: "kary", K: 4}},
		Traces:   []TraceDef{{Kind: "temporal", N: 64, M: 4000, P: 0.75, Seed: 9}},
	}
	nets, traces, opts, err := x.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if len(opts) != 0 {
		t.Fatalf("zero EngineDef produced options: %d", len(opts))
	}
	grid, err := engine.New().RunGrid(context.Background(), nets, traces)
	if err != nil {
		t.Fatal(err)
	}
	tr := workload.Temporal(64, 4000, 0.75, 9)
	want := sim.Run(mustKary(t, 64, 4), tr.Reqs)
	if grid[0][0].Result != want {
		t.Errorf("def-built cell %+v != direct %+v", grid[0][0].Result, want)
	}
	if traces[0].Name != "temporal-0.75" || traces[0].N != 64 {
		t.Errorf("materialized trace spec %q/%d", traces[0].Name, traces[0].N)
	}
}

func mustKary(t *testing.T, n, k int) sim.Network {
	t.Helper()
	ns, err := NetworkDef{Kind: "kary", K: k}.Spec()
	if err != nil {
		t.Fatal(err)
	}
	net := ns.Make(n)
	if net == nil {
		t.Fatalf("kary Make(%d) returned nil", n)
	}
	return net
}

func TestNameOverrides(t *testing.T) {
	ns, err := NetworkDef{Kind: "kary", K: 3, Name: "custom"}.Spec()
	if err != nil {
		t.Fatal(err)
	}
	if ns.Name != "custom" {
		t.Errorf("network label %q, want the override", ns.Name)
	}
	// Since the policy layer the override labels results uniformly, not
	// just the grid: the constructed network reports it too.
	if got := ns.Make(15).Name(); got != "custom" {
		t.Errorf("kary network name %q, want the override", got)
	}
	tr, err := TraceDef{Kind: "uniform", N: 8, M: 10, Seed: 1, Name: "mine"}.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name != "mine" {
		t.Errorf("trace label %q, want the override", tr.Name)
	}
	// Static kinds take the label as the wrapped network's name (it shows
	// up in results, not just progress).
	ns, err = NetworkDef{Kind: "full", K: 3, Name: "baseline"}.Spec()
	if err != nil {
		t.Fatal(err)
	}
	if got := ns.Make(15).Name(); got != "baseline" {
		t.Errorf("static network name %q, want the override", got)
	}
}

func TestBuilderErrorsCarryConstructorCause(t *testing.T) {
	// A builtin def whose parameters are valid in isolation but
	// incompatible with a trace's node count must surface the
	// constructor's message as the cell error, not a generic nil-network
	// line (centroid networks need n >= 3).
	x := &Experiment{
		Networks: []NetworkDef{{Kind: "centroid", K: 2}},
		Traces:   []TraceDef{{Kind: "uniform", N: 2, M: 10, Seed: 1}},
	}
	nets, traces, _, err := x.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	_, err = engine.New().RunGrid(context.Background(), nets, traces)
	if err == nil {
		t.Fatal("incompatible grid accepted")
	}
	if !strings.Contains(err.Error(), "centroidnet") || !strings.Contains(err.Error(), "3 nodes") {
		t.Errorf("cell error %q lost the constructor's cause", err)
	}
}

func TestCSVTraceKind(t *testing.T) {
	tr := workload.Uniform(16, 50, 3)
	path := filepath.Join(t.TempDir(), "trace.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := workload.WriteCSV(f, tr); err != nil {
		t.Fatal(err)
	}
	f.Close()
	back, err := TraceDef{Kind: "csv", Path: path}.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if back.N != tr.N || back.Len() != tr.Len() {
		t.Fatalf("csv trace %d/%d, want %d/%d", back.N, back.Len(), tr.N, tr.Len())
	}
	if _, err := (TraceDef{Kind: "csv", Path: filepath.Join(t.TempDir(), "absent.csv")}).Materialize(); err == nil {
		t.Error("missing trace file accepted")
	}
}

func TestEngineDefOptions(t *testing.T) {
	opts := (EngineDef{Workers: 3, Warmup: 10, Window: 20, LinkChurn: true}).Options()
	if len(opts) != 4 {
		t.Fatalf("got %d options, want 4", len(opts))
	}
	if got := len((EngineDef{}).Options()); got != 0 {
		t.Fatalf("zero def produced %d options", got)
	}
}

func TestSampleExperimentRuns(t *testing.T) {
	// The full builtin taxonomy, resolved and executed end to end.
	nets, traces, opts, err := sampleExperiment().Resolve()
	if err != nil {
		t.Fatal(err)
	}
	grid, err := engine.New(opts...).RunGrid(context.Background(), nets, traces)
	if err != nil {
		t.Fatal(err)
	}
	for i := range grid {
		for j := range grid[i] {
			if grid[i][j].Requests != 400 { // 500 minus 100 warmup
				t.Errorf("cell (%d,%d) measured %d requests, want 400", i, j, grid[i][j].Requests)
			}
			if len(grid[i][j].Series) == 0 {
				t.Errorf("cell (%d,%d) has no window series", i, j)
			}
		}
	}
}
