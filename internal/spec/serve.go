package spec

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"github.com/ksan-net/ksan/internal/engine"
	"github.com/ksan-net/ksan/internal/serve"
	"github.com/ksan-net/ksan/internal/sim"
	"github.com/ksan-net/ksan/internal/workload"
)

// ServeDef is the serializable configuration of the serving layer
// (internal/serve): the shard/client topology and the closed-loop load
// shape. Zero-valued fields mean the serve defaults (one shard, clients =
// shards, unthrottled, no warmup, full stream, no duration cap, latency
// sampled on every request).
type ServeDef struct {
	Shards          int     `json:"shards,omitempty"`
	Clients         int     `json:"clients,omitempty"`
	TargetOps       float64 `json:"target_ops,omitempty"`
	Warmup          int     `json:"warmup,omitempty"`
	MaxRequests     int64   `json:"max_requests,omitempty"`
	DurationSeconds float64 `json:"duration_seconds,omitempty"`
	// LatencySample measures closed-loop latency on every k-th request
	// per client; 0 means the default (every request), -1 disables
	// latency measurement entirely.
	LatencySample int `json:"latency_sample,omitempty"`
}

// check validates the block's ranges (strict like every other def: a
// field outside its domain describes a run the layer cannot execute).
func (d ServeDef) check() error {
	if d.Shards < 0 || d.Clients < 0 || d.TargetOps < 0 || d.Warmup < 0 ||
		d.MaxRequests < 0 || d.DurationSeconds < 0 || d.LatencySample < -1 {
		return fmt.Errorf("spec: serve block fields must be non-negative (latency_sample >= -1), got %+v", d)
	}
	return nil
}

// Config resolves the def to the serving layer's runtime configuration.
func (d ServeDef) Config() serve.Config {
	sample := d.LatencySample
	switch sample {
	case 0:
		sample = 1
	case -1:
		sample = 0
	}
	return serve.Config{
		Shards:        d.Shards,
		Clients:       d.Clients,
		TargetOps:     d.TargetOps,
		Warmup:        d.Warmup,
		MaxRequests:   d.MaxRequests,
		Duration:      time.Duration(d.DurationSeconds * float64(time.Second)),
		LatencySample: sample,
	}
}

// LoadSpec is the complete description of one serving run — the document
// cmd/ksanload executes: one network def served on one trace def under a
// serve block. Like Experiment it is the unit of serialization
// (Encode/DecodeLoad round-trip through JSON) and validates strictly.
type LoadSpec struct {
	Name    string     `json:"name,omitempty"`
	Network NetworkDef `json:"network"`
	Trace   TraceDef   `json:"trace"`
	Serve   ServeDef   `json:"serve,omitempty"`
}

// Validate checks the document without materializing the trace.
func (l *LoadSpec) Validate() error {
	if _, err := l.Network.Spec(); err != nil {
		return fmt.Errorf("spec: load %q network: %w", l.Name, err)
	}
	if err := l.Trace.check(); err != nil {
		return fmt.Errorf("spec: load %q trace: %w", l.Name, err)
	}
	if err := l.Serve.check(); err != nil {
		return fmt.Errorf("spec: load %q: %w", l.Name, err)
	}
	return nil
}

// Resolve validates the document and returns the per-shard network
// constructor, the workload stream factory, and the serving
// configuration. The constructor is the network def's Make sized to each
// shard's node count; construction failures surface as errors rather
// than failed-network sentinels, since a serving run has exactly one
// network def.
func (l *LoadSpec) Resolve() (func(n int) (sim.Network, error), workload.Generator, serve.Config, error) {
	if err := l.Validate(); err != nil {
		return nil, nil, serve.Config{}, err
	}
	ns, err := l.Network.Spec()
	if err != nil {
		return nil, nil, serve.Config{}, err
	}
	gen, err := l.Trace.Resolve()
	if err != nil {
		return nil, nil, serve.Config{}, err
	}
	mk := func(n int) (sim.Network, error) {
		net := ns.Make(n)
		if err := engine.AsFailed(net); err != nil {
			return nil, err
		}
		return net, nil
	}
	return mk, gen, l.Serve.Config(), nil
}

// Encode writes the document as indented JSON.
func (l *LoadSpec) Encode(w io.Writer) error {
	b, err := json.MarshalIndent(l, "", "  ")
	if err != nil {
		return fmt.Errorf("spec: encoding load %q: %w", l.Name, err)
	}
	b = append(b, '\n')
	if _, err := w.Write(b); err != nil {
		return fmt.Errorf("spec: writing load %q: %w", l.Name, err)
	}
	return nil
}

// DecodeLoad parses and validates a load document, with the same
// strictness as Decode: unknown fields and trailing content are rejected.
func DecodeLoad(r io.Reader) (*LoadSpec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var l LoadSpec
	if err := dec.Decode(&l); err != nil {
		return nil, fmt.Errorf("spec: decoding load: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("spec: trailing data after the load document")
	}
	if err := l.Validate(); err != nil {
		return nil, err
	}
	return &l, nil
}
