package spec

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"github.com/ksan-net/ksan/internal/engine"
	"github.com/ksan-net/ksan/internal/serve"
	"github.com/ksan-net/ksan/internal/sim"
	"github.com/ksan-net/ksan/internal/workload"
)

// ServeDef is the serializable configuration of the serving layer
// (internal/serve): the shard/client topology and the closed-loop load
// shape. Zero-valued fields mean the serve defaults (one shard, clients =
// shards, unthrottled, no warmup, full stream, no duration cap, latency
// sampled on every request).
type ServeDef struct {
	Shards          int     `json:"shards,omitempty"`
	Clients         int     `json:"clients,omitempty"`
	TargetOps       float64 `json:"target_ops,omitempty"`
	Warmup          int     `json:"warmup,omitempty"`
	MaxRequests     int64   `json:"max_requests,omitempty"`
	DurationSeconds float64 `json:"duration_seconds,omitempty"`
	// LatencySample measures closed-loop latency on every k-th request
	// per client; 0 means the default (every request), -1 disables
	// latency measurement entirely.
	LatencySample int `json:"latency_sample,omitempty"`
}

// check validates the block's ranges (strict like every other def: a
// field outside its domain describes a run the layer cannot execute).
func (d ServeDef) check() error {
	if d.Shards < 0 || d.Clients < 0 || d.TargetOps < 0 || d.Warmup < 0 ||
		d.MaxRequests < 0 || d.DurationSeconds < 0 || d.LatencySample < -1 {
		return fmt.Errorf("spec: serve block fields must be non-negative (latency_sample >= -1), got %+v", d)
	}
	return nil
}

// Config resolves the def to the serving layer's runtime configuration.
func (d ServeDef) Config() serve.Config {
	sample := d.LatencySample
	switch sample {
	case 0:
		sample = 1
	case -1:
		sample = 0
	}
	return serve.Config{
		Shards:        d.Shards,
		Clients:       d.Clients,
		TargetOps:     d.TargetOps,
		Warmup:        d.Warmup,
		MaxRequests:   d.MaxRequests,
		Duration:      time.Duration(d.DurationSeconds * float64(time.Second)),
		LatencySample: sample,
	}
}

// FaultEventSpec is one scripted fault in a load document. Trigger
// points are logical (the target shard's local serve count), so a
// document replays the same schedule on every run.
type FaultEventSpec struct {
	Shard int    `json:"shard"`
	At    int64  `json:"at"`
	Kind  string `json:"kind"` // "crash" or "stall"
	// RecoverAfter (crashes only): arrivals rejected before the next
	// arrival triggers snapshot+replay recovery; 0 = recover on the
	// first post-crash arrival, -1 = never recover.
	RecoverAfter int64 `json:"recover_after,omitempty"`
	// StallMs (stalls only): how long the owner loop sleeps.
	StallMs float64 `json:"stall_ms,omitempty"`
}

// FaultSpec is the serializable fault schedule of a serving run — the
// document form of serve.FaultPlan. A nil *FaultSpec in a LoadSpec
// means faults are disarmed and the run uses the plain serving path.
type FaultSpec struct {
	CheckpointEvery int64            `json:"checkpoint_every,omitempty"`
	Degraded        string           `json:"degraded,omitempty"` // "fail" (default) or "stale"
	TimeoutMs       float64          `json:"timeout_ms,omitempty"`
	Retries         int              `json:"retries,omitempty"`
	BackoffMs       float64          `json:"backoff_ms,omitempty"`
	BackoffCapMs    float64          `json:"backoff_cap_ms,omitempty"`
	Seed            uint64           `json:"seed,omitempty"`
	Events          []FaultEventSpec `json:"events,omitempty"`
}

// check validates the document-level domains. Shard ranges and per-shard
// schedule ordering depend on the resolved shard count, so they stay
// with serve.FaultPlan's own validation at Run start.
func (f *FaultSpec) check() error {
	if f.CheckpointEvery < 0 {
		return fmt.Errorf("spec: faults: checkpoint_every %d < 0", f.CheckpointEvery)
	}
	switch f.Degraded {
	case "", "fail", "stale":
	default:
		return fmt.Errorf("spec: faults: unknown degraded mode %q (want \"fail\" or \"stale\")", f.Degraded)
	}
	if f.TimeoutMs < 0 || f.Retries < 0 || f.BackoffMs < 0 || f.BackoffCapMs < 0 {
		return fmt.Errorf("spec: faults: timeout_ms/retries/backoff_ms/backoff_cap_ms must be non-negative")
	}
	for i, ev := range f.Events {
		if ev.Shard < 0 {
			return fmt.Errorf("spec: faults: event %d: shard %d < 0", i, ev.Shard)
		}
		if ev.At < 1 {
			return fmt.Errorf("spec: faults: event %d: at %d; trigger points start at 1", i, ev.At)
		}
		switch ev.Kind {
		case "crash":
			if ev.RecoverAfter < -1 {
				return fmt.Errorf("spec: faults: event %d: recover_after %d < -1", i, ev.RecoverAfter)
			}
			if ev.StallMs != 0 {
				return fmt.Errorf("spec: faults: event %d: crash with stall_ms", i)
			}
		case "stall":
			if ev.StallMs <= 0 {
				return fmt.Errorf("spec: faults: event %d: stall without a positive stall_ms", i)
			}
			if ev.RecoverAfter != 0 {
				return fmt.Errorf("spec: faults: event %d: stall with recover_after", i)
			}
		default:
			return fmt.Errorf("spec: faults: event %d: unknown kind %q (want \"crash\" or \"stall\")", i, ev.Kind)
		}
	}
	return nil
}

// Plan resolves the spec to the serving layer's runtime fault plan.
func (f *FaultSpec) Plan() *serve.FaultPlan {
	p := &serve.FaultPlan{
		CheckpointEvery: f.CheckpointEvery,
		Timeout:         time.Duration(f.TimeoutMs * float64(time.Millisecond)),
		Retries:         f.Retries,
		Backoff:         time.Duration(f.BackoffMs * float64(time.Millisecond)),
		BackoffCap:      time.Duration(f.BackoffCapMs * float64(time.Millisecond)),
		Seed:            f.Seed,
	}
	if f.Degraded == "stale" {
		p.Degraded = serve.DegradedStale
	}
	for _, ev := range f.Events {
		e := serve.FaultEvent{Shard: ev.Shard, At: ev.At, RecoverAfter: ev.RecoverAfter}
		if ev.Kind == "stall" {
			e.Kind = serve.FaultStall
			e.Stall = time.Duration(ev.StallMs * float64(time.Millisecond))
		}
		p.Events = append(p.Events, e)
	}
	return p
}

// LoadSpec is the complete description of one serving run — the document
// cmd/ksanload executes: one network def served on one trace def under a
// serve block, optionally with a scripted fault schedule. Like Experiment
// it is the unit of serialization (Encode/DecodeLoad round-trip through
// JSON) and validates strictly.
type LoadSpec struct {
	Name    string     `json:"name,omitempty"`
	Network NetworkDef `json:"network"`
	Trace   TraceDef   `json:"trace"`
	Serve   ServeDef   `json:"serve,omitempty"`
	Faults  *FaultSpec `json:"faults,omitempty"`
}

// Validate checks the document without materializing the trace.
func (l *LoadSpec) Validate() error {
	if _, err := l.Network.Spec(); err != nil {
		return fmt.Errorf("spec: load %q network: %w", l.Name, err)
	}
	if err := l.Trace.check(); err != nil {
		return fmt.Errorf("spec: load %q trace: %w", l.Name, err)
	}
	if err := l.Serve.check(); err != nil {
		return fmt.Errorf("spec: load %q: %w", l.Name, err)
	}
	if l.Faults != nil {
		if err := l.Faults.check(); err != nil {
			return fmt.Errorf("spec: load %q: %w", l.Name, err)
		}
	}
	return nil
}

// Resolve validates the document and returns the per-shard network
// constructor, the workload stream factory, and the serving
// configuration. The constructor is the network def's Make sized to each
// shard's node count; construction failures surface as errors rather
// than failed-network sentinels, since a serving run has exactly one
// network def.
func (l *LoadSpec) Resolve() (func(n int) (sim.Network, error), workload.Generator, serve.Config, error) {
	if err := l.Validate(); err != nil {
		return nil, nil, serve.Config{}, err
	}
	ns, err := l.Network.Spec()
	if err != nil {
		return nil, nil, serve.Config{}, err
	}
	gen, err := l.Trace.Resolve()
	if err != nil {
		return nil, nil, serve.Config{}, err
	}
	mk := func(n int) (sim.Network, error) {
		net := ns.Make(n)
		if err := engine.AsFailed(net); err != nil {
			return nil, err
		}
		return net, nil
	}
	cfg := l.Serve.Config()
	if l.Faults != nil {
		cfg.Faults = l.Faults.Plan()
	}
	return mk, gen, cfg, nil
}

// Encode writes the document as indented JSON.
func (l *LoadSpec) Encode(w io.Writer) error {
	b, err := json.MarshalIndent(l, "", "  ")
	if err != nil {
		return fmt.Errorf("spec: encoding load %q: %w", l.Name, err)
	}
	b = append(b, '\n')
	if _, err := w.Write(b); err != nil {
		return fmt.Errorf("spec: writing load %q: %w", l.Name, err)
	}
	return nil
}

// DecodeLoad parses and validates a load document, with the same
// strictness as Decode: unknown fields and trailing content are rejected.
func DecodeLoad(r io.Reader) (*LoadSpec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var l LoadSpec
	if err := dec.Decode(&l); err != nil {
		return nil, fmt.Errorf("spec: decoding load: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("spec: trailing data after the load document")
	}
	if err := l.Validate(); err != nil {
		return nil, err
	}
	return &l, nil
}
