package policy

import "testing"

func fireSequence(tr Trigger, dists []int64, resetOnFire bool) []bool {
	out := make([]bool, len(dists))
	for i, d := range dists {
		out[i] = tr.Observe(d)
		if out[i] && resetOnFire {
			tr.Reset()
		}
	}
	return out
}

func eq(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestAlwaysAndNever(t *testing.T) {
	ds := []int64{1, 5, 0, 3}
	if got := fireSequence(Always(), ds, true); !eq(got, []bool{true, true, true, true}) {
		t.Errorf("always fired %v", got)
	}
	if got := fireSequence(Never(), ds, true); !eq(got, []bool{false, false, false, false}) {
		t.Errorf("never fired %v", got)
	}
	if Always().Name() != "always" || Never().Name() != "never" {
		t.Error("bad trigger names")
	}
}

func TestEveryM(t *testing.T) {
	got := fireSequence(EveryM(3), []int64{1, 1, 1, 1, 1, 1, 1}, true)
	want := []bool{false, false, true, false, false, true, false}
	if !eq(got, want) {
		t.Errorf("every(3) fired %v, want %v", got, want)
	}
	if got := fireSequence(EveryM(1), []int64{9, 9}, true); !eq(got, []bool{true, true}) {
		t.Errorf("every(1) is not always: %v", got)
	}
	if EveryM(4).Name() != "every(4)" {
		t.Errorf("name %q", EveryM(4).Name())
	}
}

func TestAlphaAccumulatesCost(t *testing.T) {
	// Fires exactly when the accumulated routing cost reaches the
	// threshold; zero-cost observations never push it over.
	got := fireSequence(Alpha(10), []int64{4, 0, 5, 1, 7, 2, 9}, true)
	want := []bool{false, false, false, true, false, false, true}
	if !eq(got, want) {
		t.Errorf("alpha(10) fired %v, want %v", got, want)
	}
	if Alpha(500).Name() != "alpha(500)" {
		t.Errorf("name %q", Alpha(500).Name())
	}
}

func TestAlphaHysteresisCooldown(t *testing.T) {
	// The trigger starts armed (the cooldown is a re-arm delay between
	// adjustments, not a startup mute), so the first crossing fires
	// immediately; afterwards a crossing must wait out the cooldown, and
	// the accumulated cost is not forgotten in the meanwhile.
	tr := AlphaHysteresis(5, 3)
	got := fireSequence(tr, []int64{9, 9, 9, 9, 9, 9, 9}, true)
	// Fires on request 0 (armed), then every 3 requests (acc re-crosses
	// instantly, the cooldown gates).
	want := []bool{true, false, false, true, false, false, true}
	if !eq(got, want) {
		t.Errorf("alpha(5,cd=3) fired %v, want %v", got, want)
	}
	if AlphaHysteresis(5, 3).Name() != "alpha(5,cd=3)" {
		t.Errorf("name %q", AlphaHysteresis(5, 3).Name())
	}
}

func TestFirstFreezesAfterPrefix(t *testing.T) {
	got := fireSequence(First(3), []int64{1, 1, 1, 1, 1, 1}, true)
	want := []bool{true, true, true, false, false, false}
	if !eq(got, want) {
		t.Errorf("first(3) fired %v, want %v (Reset must not re-open the prefix)", got, want)
	}
	if First(7).Name() != "first(7)" {
		t.Errorf("name %q", First(7).Name())
	}
}

func TestTriggerConstructorsPanicOnBadParams(t *testing.T) {
	for name, fn := range map[string]func(){
		"EveryM(0)":              func() { EveryM(0) },
		"First(0)":               func() { First(0) },
		"Alpha(0)":               func() { Alpha(0) },
		"AlphaHysteresis(5, -1)": func() { AlphaHysteresis(5, -1) },
		"Rebuild(nil)":           func() { Rebuild("x", nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}
