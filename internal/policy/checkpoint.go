package policy

import (
	"fmt"
	"sync"

	"github.com/ksan-net/ksan/internal/core"
	"github.com/ksan-net/ksan/internal/sim"
	"github.com/ksan-net/ksan/internal/workload"
)

// Checkpoint is the full cost-relevant state of a tree-backed Net at a
// request boundary: the tree arena, the trigger's accumulated state, and
// the demand window (raw tail plus compacted aggregate). Restoring a
// checkpoint and replaying the requests served after it reproduces the
// net's routing and adjustment costs bit-for-bit — the recovery-
// equivalence guarantee the serving layer's crash recovery is built on
// (DESIGN.md §12).
//
// Deliberately excluded: diagnostics (rebuild/failure counters, link
// churn, retired edges) and derived fast-path state (static-stretch
// streak, distance oracle). Neither influences any served cost; a
// restored net re-derives the fast path and restarts diagnostics from
// the values it had at compose time.
//
// A Checkpoint is reused across CheckpointInto calls: its backing arrays
// are recycled, so periodic checkpointing allocates nothing in steady
// state.
type Checkpoint struct {
	Tree    core.Snapshot
	Trig    []int64
	Window  []sim.Request
	Pending *workload.Demand

	// Taken reports whether the checkpoint has been populated; the zero
	// Checkpoint is not restorable.
	Taken bool
}

// Checkpointable reports whether the net supports CheckpointInto/Restore:
// a tree substrate (custom topologies have no wire form) and a trigger
// whose state is either empty or capturable.
func (p *Net) Checkpointable() bool {
	if p.t == nil {
		return false
	}
	switch p.trig.(type) {
	case alwaysTrigger, neverTrigger, StatefulTrigger:
		return true
	}
	return false
}

// CheckpointInto overwrites cp with the net's current cost-relevant
// state, reusing cp's backing arrays. It must be called at a request
// boundary (never from inside Serve) and fails on compositions that
// cannot be checkpointed — custom substrates, or a trigger that neither
// is stateless nor implements StatefulTrigger.
func (p *Net) CheckpointInto(cp *Checkpoint) error {
	if p.t == nil {
		return fmt.Errorf("policy: net %q has a custom substrate; only tree-backed nets checkpoint", p.name)
	}
	switch tr := p.trig.(type) {
	case alwaysTrigger, neverTrigger:
		cp.Trig = cp.Trig[:0]
	case StatefulTrigger:
		cp.Trig = tr.AppendState(cp.Trig[:0])
	default:
		return fmt.Errorf("policy: trigger %q carries state but does not implement StatefulTrigger", p.trig.Name())
	}
	p.t.SnapshotInto(&cp.Tree)
	cp.Window = append(cp.Window[:0], p.window...)
	cp.Pending = p.pending.Clone()
	cp.Taken = true
	return nil
}

// Restore rebuilds the net's cost-relevant state from a checkpoint taken
// on an identically composed net (same n, k, trigger and adjuster
// parameters): the tree is reconstructed through core.FromSnapshot with
// full structural re-validation, the trigger state is overwritten, and
// the demand window is deep-copied back. Derived fast-path state resets
// (the static stretch restarts; the oracle rebuilds on demand) and
// diagnostics counters are left untouched. On any error the net is
// unchanged.
func (p *Net) Restore(cp *Checkpoint) error {
	if p.t == nil {
		return fmt.Errorf("policy: net %q has a custom substrate; only tree-backed nets restore", p.name)
	}
	if !cp.Taken {
		return fmt.Errorf("policy: restore from an empty checkpoint")
	}
	t, err := core.FromSnapshot(cp.Tree)
	if err != nil {
		return fmt.Errorf("policy: restore %q: %w", p.name, err)
	}
	if t.N() != p.t.N() || t.K() != p.t.K() {
		return fmt.Errorf("policy: restore %q: checkpoint is n=%d k=%d, net is n=%d k=%d",
			p.name, t.N(), t.K(), p.t.N(), p.t.K())
	}
	switch tr := p.trig.(type) {
	case alwaysTrigger, neverTrigger:
		if len(cp.Trig) != 0 {
			return fmt.Errorf("policy: restore %q: %d trigger-state words for stateless trigger %q",
				p.name, len(cp.Trig), p.trig.Name())
		}
	case StatefulTrigger:
		if err := tr.RestoreState(cp.Trig); err != nil {
			return fmt.Errorf("policy: restore %q: %w", p.name, err)
		}
	default:
		return fmt.Errorf("policy: trigger %q carries state but does not implement StatefulTrigger", p.trig.Name())
	}
	t.SetTrackEdges(p.trackEdges)
	p.retiredEdges += p.t.EdgeChanges()
	p.t = t
	p.window = append(p.window[:0], cp.Window...)
	p.pending = cp.Pending.Clone()
	p.streak = 0
	p.oracleLive = false
	p.batchOnce = sync.Once{}
	return nil
}
