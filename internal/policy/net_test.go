package policy

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"github.com/ksan-net/ksan/internal/core"
	"github.com/ksan-net/ksan/internal/sim"
	"github.com/ksan-net/ksan/internal/statictree"
	"github.com/ksan-net/ksan/internal/workload"
)

func mustTree(t *testing.T, n, k int) *core.Tree {
	t.Helper()
	tree, err := core.NewBalanced(n, k)
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestNewRejectsInvalidCompositions(t *testing.T) {
	tree := mustTree(t, 10, 3)
	if _, err := New("x", nil, Always(), Splay()); err == nil {
		t.Error("nil tree accepted")
	}
	if _, err := New("x", tree, nil, Splay()); err == nil {
		t.Error("nil trigger accepted")
	}
	if _, err := New("x", tree, Always(), nil); err == nil {
		t.Error("nil adjuster accepted")
	}
	if _, err := NewCustom("x", nil, Always(), None()); err == nil {
		t.Error("nil topology accepted")
	}
	if _, err := NewCustom("x", fakeTopology{}, Always(), Splay()); err == nil {
		t.Error("tree-needing adjuster on a custom substrate accepted")
	}
}

type fakeTopology struct{}

func (fakeTopology) N() int                       { return 4 }
func (fakeTopology) Route(u, v int, _ *Ctx) int64 { return 1 }

func TestCanonicalSplayComposition(t *testing.T) {
	// always × splay over a balanced tree is the k-ary SplayNet: after a
	// serve the pair is adjacent and the routing cost is the
	// pre-adjustment distance.
	for _, k := range []int{2, 3, 5} {
		net, err := New("kary", mustTree(t, 120, k), Always(), Splay())
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(k)))
		for i := 0; i < 300; i++ {
			u, v := 1+rng.Intn(120), 1+rng.Intn(120)
			if u == v {
				continue
			}
			want := int64(net.Tree().DistanceID(u, v))
			c := net.Serve(u, v)
			if c.Routing != want {
				t.Fatalf("k=%d: routing %d, want pre-adjustment distance %d", k, c.Routing, want)
			}
			if d := net.Tree().DistanceID(u, v); d != 1 {
				t.Fatalf("k=%d: pair at distance %d after serve", k, d)
			}
		}
		if err := net.Tree().Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

// refLazy replays the pre-policy lazynet serve loop verbatim (DistanceID
// routing, map-based link churn, window and threshold bookkeeping): the
// alpha × rebuild composition must be bit-identical to it, request by
// request.
type refLazy struct {
	n, k         int
	alpha        int64
	t            *core.Tree
	sinceRebuild int64
	window       []sim.Request
	rebuilds     int64
	churn        int64
}

func (r *refLazy) serve(u, v int) sim.Cost {
	dist := int64(r.t.DistanceID(u, v))
	cost := sim.Cost{Routing: dist}
	r.sinceRebuild += dist
	if u != v {
		r.window = append(r.window, sim.Request{Src: u, Dst: v})
	}
	if r.sinceRebuild >= r.alpha && len(r.window) > 0 {
		d := workload.DemandFromTrace(workload.Trace{N: r.n, Reqs: r.window})
		fresh, _, err := statictree.WeightBalanced(d, r.k)
		if err == nil {
			ch := mapLinkChurn(r.t, fresh)
			r.t = fresh
			r.rebuilds++
			r.churn += ch
			cost.Adjust = ch
		}
		r.sinceRebuild = 0
		r.window = r.window[:0]
	}
	return cost
}

func TestLazyCompositionBitIdenticalToReferenceLoop(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		n, k, alpha := 60, 3, int64(900)
		ref := &refLazy{n: n, k: k, alpha: alpha, t: mustTree(t, n, k)}
		net, err := New("lazy", mustTree(t, n, k), Alpha(alpha),
			Rebuild("weight-balanced", statictree.WeightBalanced))
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 12000; i++ {
			u, v := 1+rng.Intn(n), 1+rng.Intn(n)
			if i%37 == 0 {
				v = u // self-loops must be free and invisible to the policy
			}
			got, want := net.Serve(u, v), ref.serve(u, v)
			if got != want {
				t.Fatalf("seed=%d request %d (%d→%d): policy %+v, reference %+v", seed, i, u, v, got, want)
			}
		}
		if net.Rebuilds() == 0 {
			t.Fatal("trace produced no rebuilds; the equivalence test is vacuous")
		}
		if net.Rebuilds() != ref.rebuilds || net.LinkChurn() != ref.churn {
			t.Errorf("seed=%d: rebuilds/churn %d/%d, reference %d/%d",
				seed, net.Rebuilds(), net.LinkChurn(), ref.rebuilds, ref.churn)
		}
	}
}

func TestOracleRoutesBitIdentically(t *testing.T) {
	// The static-stretch oracle is a pure routing accelerator: with the
	// build threshold forced to 1 and to never, a deferred composition
	// must produce identical cost streams and identical final topologies.
	mk := func() *Net {
		net, err := New("periodic", mustTree(t, 90, 3), EveryM(256), Splay())
		if err != nil {
			t.Fatal(err)
		}
		return net
	}
	eager, lazy := mk(), mk()
	eager.oracleAfter = 1
	lazy.oracleAfter = 1 << 60
	rng := rand.New(rand.NewSource(11))
	sawOracle := false
	for i := 0; i < 6000; i++ {
		u, v := 1+rng.Intn(90), 1+rng.Intn(90)
		ce, cl := eager.Serve(u, v), lazy.Serve(u, v)
		if ce != cl {
			t.Fatalf("request %d (%d→%d): oracle path %+v, walk path %+v", i, u, v, ce, cl)
		}
		if eager.oracleLive {
			sawOracle = true
		}
	}
	if !sawOracle {
		t.Fatal("the eager net never built its oracle; the test exercised nothing")
	}
	if err := eager.Tree().Validate(); err != nil {
		t.Fatal(err)
	}
	ep, lp := eager.Tree().Parents(), lazy.Tree().Parents()
	for id := range ep {
		if ep[id] != lp[id] {
			t.Fatalf("final topologies diverge at node %d", id)
		}
	}
}

func TestFrozenAfterWarmupFreezes(t *testing.T) {
	net, err := New("warmup", mustTree(t, 64, 3), First(500), Splay())
	if err != nil {
		t.Fatal(err)
	}
	tr := workload.Temporal(64, 4000, 0.6, 7)
	var adjustAfterPrefix int64
	seen := 0
	for _, rq := range tr.Reqs {
		c := net.Serve(rq.Src, rq.Dst)
		if rq.Src != rq.Dst {
			seen++
		}
		if seen > 500 {
			adjustAfterPrefix += c.Adjust
		}
	}
	if adjustAfterPrefix != 0 {
		t.Errorf("adjusted (cost %d) after the warmup prefix", adjustAfterPrefix)
	}
	if net.Tree().Rotations() == 0 {
		t.Error("never adjusted during the warmup prefix")
	}
	// The frozen stretch is long, so the oracle must have kicked in.
	if !net.oracleLive {
		t.Error("frozen stretch did not engage the distance oracle")
	}
	if err := net.Tree().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFrozenBatchMatchesSequentialAndGates(t *testing.T) {
	reqs := workload.Uniform(77, 8000, 5).Reqs
	frozen, err := New("frozen", mustTree(t, 77, 3), Never(), None())
	if err != nil {
		t.Fatal(err)
	}
	if !frozen.Batchable() {
		t.Fatal("frozen tree composition must be batchable")
	}
	bc := frozen.ServeBatch(reqs)
	seq, err := New("frozen-seq", mustTree(t, 77, 3), Never(), None())
	if err != nil {
		t.Fatal(err)
	}
	var routing int64
	for _, rq := range reqs {
		c := seq.Serve(rq.Src, rq.Dst)
		routing += c.Routing
		if c.Adjust != 0 {
			t.Fatal("frozen composition adjusted")
		}
	}
	if bc.Routing != routing || bc.Adjust != 0 {
		t.Errorf("batch %d/%d, sequential %d/0", bc.Routing, bc.Adjust, routing)
	}

	adjusting, err := New("kary", mustTree(t, 77, 3), Always(), Splay())
	if err != nil {
		t.Fatal(err)
	}
	if adjusting.Batchable() {
		t.Error("always × splay must not be batchable")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("ServeBatch on an adjusting composition did not panic")
			}
		}()
		adjusting.ServeBatch(reqs[:1])
	}()

	// A frozen custom substrate has no oracle and must stay sequential.
	custom, err := NewCustom("custom", fakeTopology{}, Never(), None())
	if err != nil {
		t.Fatal(err)
	}
	if custom.Batchable() {
		t.Error("custom-substrate composition must not be batchable")
	}
}

func TestFailedRebuildSurfacedAndHarmless(t *testing.T) {
	boom := errors.New("builder exploded")
	failing := func(*workload.Demand, int) (*core.Tree, int64, error) { return nil, 0, boom }
	net, err := New("fragile", mustTree(t, 30, 3), EveryM(10), Rebuild("failing", failing))
	if err != nil {
		t.Fatal(err)
	}
	before := net.Tree()
	rng := rand.New(rand.NewSource(3))
	var adjust int64
	for i := 0; i < 100; i++ {
		u, v := 1+rng.Intn(30), 1+rng.Intn(30)
		if u == v {
			continue
		}
		adjust += net.Serve(u, v).Adjust
	}
	if adjust != 0 {
		t.Errorf("failed rebuilds charged %d adjustment", adjust)
	}
	if net.Rebuilds() != 0 {
		t.Errorf("failed rebuilds counted as rebuilds: %d", net.Rebuilds())
	}
	if net.FailedRebuilds() < 2 {
		t.Errorf("only %d failures recorded; the every(10) trigger must have fired repeatedly", net.FailedRebuilds())
	}
	if !errors.Is(net.LastFailure(), boom) {
		t.Errorf("LastFailure %v does not wrap the builder error", net.LastFailure())
	}
	if net.Tree() != before {
		t.Error("failed rebuild replaced the topology")
	}
}

func TestWindowRecycledAndCapped(t *testing.T) {
	// Small windows: the backing array is reused between rebuilds.
	small, err := New("small", mustTree(t, 20, 2), EveryM(100),
		Rebuild("weight-balanced", statictree.WeightBalanced))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	serveDistinct := func(p *Net, m int) {
		n := p.N()
		for i := 0; i < m; i++ {
			u := 1 + rng.Intn(n)
			v := 1 + rng.Intn(n)
			if u == v {
				v = 1 + v%n
			}
			p.Serve(u, v)
		}
	}
	serveDistinct(small, 100)
	if small.Rebuilds() != 1 {
		t.Fatalf("expected exactly one rebuild, got %d", small.Rebuilds())
	}
	if len(small.window) != 0 {
		t.Errorf("window not reset after rebuild: %d entries", len(small.window))
	}
	capBefore := cap(small.window)
	if capBefore == 0 {
		t.Fatal("recyclable window capacity was dropped")
	}
	serveDistinct(small, 100)
	if got := cap(small.window); got != capBefore {
		t.Errorf("window capacity not recycled: %d then %d", capBefore, got)
	}

	// Long stretches compact into the running demand instead of growing
	// the raw window without bound: the window length stays under the
	// compaction threshold however rare adjustments are, and the
	// aggregate is released once the rebuild consumes it.
	big, err := New("big", mustTree(t, 20, 2), EveryM(1000),
		Rebuild("weight-balanced", statictree.WeightBalanced))
	if err != nil {
		t.Fatal(err)
	}
	big.compactAfter = 64
	serveDistinct(big, 999)
	if len(big.window) >= 64 {
		t.Errorf("window grew to %d entries despite compactAfter=64", len(big.window))
	}
	if big.pending == nil {
		t.Fatal("no compacted aggregate despite overflowing the window")
	}
	if got := big.pending.Total + int64(len(big.window)); got != 999 {
		t.Errorf("aggregate + window covers %d requests, want 999", got)
	}
	serveDistinct(big, 1)
	if big.Rebuilds() != 1 {
		t.Fatalf("expected exactly one rebuild, got %d", big.Rebuilds())
	}
	if big.pending != nil {
		t.Error("compacted aggregate retained after the rebuild consumed it")
	}
}

func TestCompactedWindowBitIdenticalToUnbounded(t *testing.T) {
	// Chunk-wise demand compaction must not change a single rebuild: a
	// net forced to compact every 64 requests serves bit-identically to
	// the unbounded-window reference loop.
	n, k, alpha := 48, 3, int64(2500)
	ref := &refLazy{n: n, k: k, alpha: alpha, t: mustTree(t, n, k)}
	net, err := New("compacting", mustTree(t, n, k), Alpha(alpha),
		Rebuild("weight-balanced", statictree.WeightBalanced))
	if err != nil {
		t.Fatal(err)
	}
	net.compactAfter = 64
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 10000; i++ {
		u, v := 1+rng.Intn(n), 1+rng.Intn(n)
		got, want := net.Serve(u, v), ref.serve(u, v)
		if got != want {
			t.Fatalf("request %d (%d→%d): compacting net %+v, reference %+v", i, u, v, got, want)
		}
	}
	if net.Rebuilds() == 0 {
		t.Fatal("no rebuilds; compaction was never consumed")
	}
}

func TestUnifiedChurnAccounting(t *testing.T) {
	// Splay-family composition: LinkChurn must equal the tree's edge-churn
	// counter once tracking is on.
	splaying, err := New("kary", mustTree(t, 40, 3), Always(), Splay())
	if err != nil {
		t.Fatal(err)
	}
	splaying.SetTrackEdges(true)
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 500; i++ {
		splaying.Serve(1+rng.Intn(40), 1+rng.Intn(40))
	}
	if splaying.LinkChurn() == 0 {
		t.Fatal("rotations produced no tracked edge churn")
	}
	if got, want := splaying.LinkChurn(), splaying.Tree().EdgeChanges(); got != want {
		t.Errorf("LinkChurn %d != tree edge changes %d", got, want)
	}

	// Rebuild composition: tracking survives topology swaps and LinkChurn
	// totals swap churn plus (zero) rotation churn.
	lazy, err := New("lazy", mustTree(t, 40, 3), Alpha(300),
		Rebuild("weight-balanced", statictree.WeightBalanced))
	if err != nil {
		t.Fatal(err)
	}
	lazy.SetTrackEdges(true)
	var adjust int64
	for i := 0; i < 3000; i++ {
		u, v := 1+rng.Intn(40), 1+rng.Intn(40)
		adjust += lazy.Serve(u, v).Adjust
	}
	if lazy.Rebuilds() == 0 {
		t.Fatal("no rebuilds")
	}
	if got := lazy.LinkChurn(); got != adjust {
		t.Errorf("LinkChurn %d != summed rebuild churn %d", got, adjust)
	}
}

func TestCompositionAccessorsAndNames(t *testing.T) {
	net, err := New("my net", mustTree(t, 12, 4), EveryM(2), SemiSplay())
	if err != nil {
		t.Fatal(err)
	}
	if net.Name() != "my net" || net.N() != 12 || net.K() != 4 {
		t.Errorf("accessors: %q n=%d k=%d", net.Name(), net.N(), net.K())
	}
	if net.Trigger().Name() != "every(2)" || net.Adjuster().Name() != "semi-splay" {
		t.Errorf("composition names %q × %q", net.Trigger().Name(), net.Adjuster().Name())
	}
	var _ sim.Network = net
	var _ sim.BatchServer = net
	var _ sim.BatchGate = net
}

func TestSelfLoopsInvisibleToPolicy(t *testing.T) {
	net, err := New("every", mustTree(t, 10, 2), EveryM(3), Splay())
	if err != nil {
		t.Fatal(err)
	}
	// Two distinct requests, then a burst of self-loops: the third
	// distinct request must be the one that fires.
	net.Serve(1, 5)
	net.Serve(2, 7)
	for i := 0; i < 10; i++ {
		if c := net.Serve(4, 4); c != (sim.Cost{}) {
			t.Fatalf("self-loop cost %+v", c)
		}
	}
	if got := net.Tree().Rotations(); got != 0 {
		t.Fatalf("self-loops advanced the trigger: %d rotations before the third distinct request", got)
	}
	if c := net.Serve(3, 9); c.Adjust == 0 {
		t.Error("third distinct request did not fire the every(3) trigger")
	}
}

func TestComposedNameFormatting(t *testing.T) {
	// The Name strings feed grid labels; pin the format the spec layer
	// builds on.
	for _, tc := range []struct {
		trig Trigger
		want string
	}{
		{EveryM(12), "every(12)"},
		{Alpha(2000), "alpha(2000)"},
		{AlphaHysteresis(2000, 64), "alpha(2000,cd=64)"},
		{First(99), "first(99)"},
	} {
		if got := tc.trig.Name(); got != tc.want {
			t.Errorf("trigger name %q, want %q", got, tc.want)
		}
	}
	if got := Rebuild("weight-balanced", statictree.WeightBalanced).Name(); got != "weight-balanced" {
		t.Errorf("rebuild name %q", got)
	}
	if got := fmt.Sprintf("%s×%s", Always().Name(), Splay().Name()); got != "always×splay" {
		t.Errorf("composition label %q", got)
	}
}
