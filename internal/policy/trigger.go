package policy

import "fmt"

// Trigger decides when a policy net adjusts. Observe is called exactly
// once per served request (self-loops excluded) with the request's
// routing cost and reports whether the composed Adjuster runs now;
// Reset is called after every completed adjustment (successful or
// failed), so accumulating triggers start a fresh measurement stretch.
//
// Triggers are stateful and belong to exactly one Net; compose a fresh
// instance per network.
type Trigger interface {
	// Name identifies the trigger, parameters included, in composition
	// labels (e.g. "alpha(2000)").
	Name() string
	// Observe folds one served request into the trigger state and
	// reports whether to adjust now.
	Observe(dist int64) bool
	// Reset is called after every adjustment.
	Reset()
}

// StatefulTrigger is the checkpoint surface of triggers that accumulate
// state between adjustments. AppendState appends the trigger's mutable
// state (never its parameters) to dst and returns the extended slice;
// RestoreState overwrites the mutable state from a slice produced by
// AppendState on a trigger with identical parameters. The two are exact
// inverses: restore followed by the same request stream fires at
// bit-identical points. Stateless triggers (Always, Never) simply don't
// implement the interface; Net.CheckpointInto treats them as empty.
type StatefulTrigger interface {
	Trigger
	// AppendState appends the mutable trigger state to dst.
	AppendState(dst []int64) []int64
	// RestoreState replaces the mutable trigger state with a state
	// captured by AppendState. It rejects a slice of the wrong length
	// (a checkpoint from a differently-shaped trigger).
	RestoreState(src []int64) error
}

// Always fires on every request: the fully reactive regime of the
// paper's online networks.
func Always() Trigger { return alwaysTrigger{} }

type alwaysTrigger struct{}

func (alwaysTrigger) Name() string       { return "always" }
func (alwaysTrigger) Observe(int64) bool { return true }
func (alwaysTrigger) Reset()             {}

// Never never fires: the topology is frozen and the composition behaves
// as a static network (and, when tree-backed, satisfies the engine's
// batch surface).
func Never() Trigger { return neverTrigger{} }

type neverTrigger struct{}

func (neverTrigger) Name() string       { return "never" }
func (neverTrigger) Observe(int64) bool { return false }
func (neverTrigger) Reset()             {}

// EveryM fires on every m-th served request since the last adjustment
// (EveryM(1) is Always). It panics if m < 1; parameter validation
// belongs to the spec layer, so a bad m here is a programming error.
func EveryM(m int64) Trigger {
	if m < 1 {
		panic(fmt.Sprintf("policy: EveryM period must be >= 1, got %d", m))
	}
	return &everyTrigger{m: m}
}

type everyTrigger struct{ m, seen int64 }

func (t *everyTrigger) Name() string { return fmt.Sprintf("every(%d)", t.m) }
func (t *everyTrigger) Observe(int64) bool {
	t.seen++
	return t.seen >= t.m
}
func (t *everyTrigger) Reset() { t.seen = 0 }

func (t *everyTrigger) AppendState(dst []int64) []int64 { return append(dst, t.seen) }
func (t *everyTrigger) RestoreState(src []int64) error {
	if len(src) != 1 {
		return fmt.Errorf("policy: every-trigger state has %d words, want 1", len(src))
	}
	t.seen = src[0]
	return nil
}

// Alpha fires once the routing cost accumulated since the last
// adjustment reaches alpha — the partially reactive regime of the lazy
// self-adjusting networks ([13] in the paper). It panics if alpha < 1.
func Alpha(alpha int64) Trigger { return AlphaHysteresis(alpha, 0) }

// AlphaHysteresis is Alpha with a re-arm delay: after an adjustment the
// trigger stays quiet until at least cooldown further requests have been
// served, even if the cost threshold is crossed earlier. This damps
// rebuild thrashing on hot bursts whose cost spikes past alpha within a
// handful of requests. The trigger starts armed: the cooldown only
// applies between adjustments, never to the first one. It panics if
// alpha < 1 or cooldown < 0.
func AlphaHysteresis(alpha, cooldown int64) Trigger {
	if alpha < 1 {
		panic(fmt.Sprintf("policy: Alpha threshold must be >= 1, got %d", alpha))
	}
	if cooldown < 0 {
		panic(fmt.Sprintf("policy: Alpha cooldown must be >= 0, got %d", cooldown))
	}
	// since starts at cooldown so the initial stretch counts as armed.
	return &alphaTrigger{alpha: alpha, cooldown: cooldown, since: cooldown}
}

type alphaTrigger struct {
	alpha, cooldown int64
	acc, since      int64 // cost and requests since the last adjustment
}

func (t *alphaTrigger) Name() string {
	if t.cooldown > 0 {
		return fmt.Sprintf("alpha(%d,cd=%d)", t.alpha, t.cooldown)
	}
	return fmt.Sprintf("alpha(%d)", t.alpha)
}
func (t *alphaTrigger) Observe(dist int64) bool {
	t.acc += dist
	t.since++
	return t.acc >= t.alpha && t.since >= t.cooldown
}
func (t *alphaTrigger) Reset() { t.acc, t.since = 0, 0 }

func (t *alphaTrigger) AppendState(dst []int64) []int64 { return append(dst, t.acc, t.since) }
func (t *alphaTrigger) RestoreState(src []int64) error {
	if len(src) != 2 {
		return fmt.Errorf("policy: alpha-trigger state has %d words, want 2", len(src))
	}
	t.acc, t.since = src[0], src[1]
	return nil
}

// First fires on each of the first m served requests and never again:
// the network self-adjusts through a warmup prefix and then freezes
// (frozen-after-warmup). It panics if m < 1.
func First(m int64) Trigger {
	if m < 1 {
		panic(fmt.Sprintf("policy: First prefix must be >= 1, got %d", m))
	}
	return &firstTrigger{m: m}
}

type firstTrigger struct{ m, seen int64 }

func (t *firstTrigger) Name() string { return fmt.Sprintf("first(%d)", t.m) }
func (t *firstTrigger) Observe(int64) bool {
	t.seen++
	return t.seen <= t.m
}

// Reset deliberately keeps the lifetime request count: the warmup prefix
// is measured over the whole trace, not per adjustment.
func (t *firstTrigger) Reset() {}

func (t *firstTrigger) AppendState(dst []int64) []int64 { return append(dst, t.seen) }
func (t *firstTrigger) RestoreState(src []int64) error {
	if len(src) != 1 {
		return fmt.Errorf("policy: first-trigger state has %d words, want 1", len(src))
	}
	t.seen = src[0]
	return nil
}
