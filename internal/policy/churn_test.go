package policy

import (
	"testing"

	"github.com/ksan-net/ksan/internal/core"
)

// mapLinkChurn is the retired map-based reference implementation of the
// reconfiguration cost (one heap-allocated bucket entry per edge per
// call); the sort-based path must match it on every input.
func mapLinkChurn(old, fresh *core.Tree) int64 {
	op := old.Parents()
	np := fresh.Parents()
	undirected := func(a, b int) [2]int {
		if a > b {
			a, b = b, a
		}
		return [2]int{a, b}
	}
	oldSet := make(map[[2]int]bool, len(op))
	for id := 1; id < len(op); id++ {
		if op[id] != 0 {
			oldSet[undirected(id, op[id])] = true
		}
	}
	var churn int64
	for id := 1; id < len(np); id++ {
		if np[id] == 0 {
			continue
		}
		e := undirected(id, np[id])
		if oldSet[e] {
			delete(oldSet, e)
		} else {
			churn++ // added
		}
	}
	churn += int64(len(oldSet)) // removed
	return churn
}

func TestLinkChurnMatchesMapReference(t *testing.T) {
	p := &Net{}
	for _, n := range []int{1, 2, 3, 17, 40, 101, 257} {
		for _, k := range []int{2, 3, 5} {
			for seed := int64(0); seed < 6; seed++ {
				a, err := core.NewRandom(n, k, seed)
				if err != nil {
					t.Fatal(err)
				}
				b, err := core.NewRandom(n, k, seed+1000)
				if err != nil {
					t.Fatal(err)
				}
				if got, want := p.linkChurn(a, b), mapLinkChurn(a, b); got != want {
					t.Fatalf("n=%d k=%d seed=%d: sort-based churn %d, map reference %d", n, k, seed, got, want)
				}
			}
		}
	}
	// Structured pairs the random sweep may miss.
	bal, err := core.NewBalanced(64, 3)
	if err != nil {
		t.Fatal(err)
	}
	path, err := core.NewPath(64, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := p.linkChurn(bal, path), mapLinkChurn(bal, path); got != want {
		t.Fatalf("balanced vs path: %d != reference %d", got, want)
	}
}

func TestLinkChurnProperties(t *testing.T) {
	// A known-distinct pair must report nonzero churn (random trees below
	// are almost surely distinct, but only this pair is guaranteed).
	p := &Net{}
	bal, err := core.NewBalanced(40, 3)
	if err != nil {
		t.Fatal(err)
	}
	path, err := core.NewPath(40, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.linkChurn(bal, path); got == 0 {
		t.Error("distinct topologies (balanced vs path) reported zero churn")
	}

	// linkChurn is the model's reconfiguration cost (links added plus
	// removed when a rebuild swaps topologies): the size of the symmetric
	// difference of the two undirected link sets. Over random valid
	// topologies it must be symmetric in its arguments, zero for identical
	// topologies, bounded by 2(n−1) (both trees have exactly n−1 links, so
	// at worst all are removed and all are added), and obey the triangle
	// inequality of symmetric differences.
	for _, n := range []int{2, 3, 17, 40, 101} {
		for _, k := range []int{2, 3, 5} {
			for seed := int64(0); seed < 4; seed++ {
				a, err := core.NewRandom(n, k, seed)
				if err != nil {
					t.Fatal(err)
				}
				b, err := core.NewRandom(n, k, seed+100)
				if err != nil {
					t.Fatal(err)
				}
				c, err := core.NewRandom(n, k, seed+200)
				if err != nil {
					t.Fatal(err)
				}
				ab, ba := p.linkChurn(a, b), p.linkChurn(b, a)
				if ab != ba {
					t.Errorf("n=%d k=%d seed=%d: churn not symmetric: %d vs %d", n, k, seed, ab, ba)
				}
				if ab < 0 || ab > int64(2*(n-1)) {
					t.Errorf("n=%d k=%d seed=%d: churn %d outside [0, 2(n-1)=%d]", n, k, seed, ab, 2*(n-1))
				}
				if got := p.linkChurn(a, a); got != 0 {
					t.Errorf("n=%d k=%d seed=%d: identical topologies churn %d", n, k, seed, got)
				}
				if ac, cb := p.linkChurn(a, c), p.linkChurn(c, b); ab > ac+cb {
					t.Errorf("n=%d k=%d seed=%d: triangle inequality violated: %d > %d + %d", n, k, seed, ab, ac, cb)
				}
			}
		}
	}
}

func BenchmarkLinkChurnSorted(b *testing.B) {
	p := &Net{}
	a, _ := core.NewRandom(1023, 4, 1)
	c, _ := core.NewRandom(1023, 4, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.linkChurn(a, c)
	}
}

func BenchmarkLinkChurnMapReference(b *testing.B) {
	a, _ := core.NewRandom(1023, 4, 1)
	c, _ := core.NewRandom(1023, 4, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mapLinkChurn(a, c)
	}
}

func TestLinkChurnZeroSteadyStateAllocs(t *testing.T) {
	p := &Net{}
	a, err := core.NewRandom(200, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.NewRandom(200, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	p.linkChurn(a, b) // grow the scratch to steady-state capacity
	if avg := testing.AllocsPerRun(200, func() { p.linkChurn(a, b) }); avg != 0 {
		t.Errorf("%.2f allocs per steady-state linkChurn, want 0 (the scratch must be recycled)", avg)
	}
}
