package policy

import (
	"fmt"

	"github.com/ksan-net/ksan/internal/core"
	"github.com/ksan-net/ksan/internal/sim"
	"github.com/ksan-net/ksan/internal/workload"
)

// Adjuster decides how a policy net restructures once its trigger
// fires. Adjust runs after the request in ctx was routed and returns
// the adjustment cost charged under the paper's model (one unit per
// rotation for the splay family, links added plus removed for
// rebuilds). The two capability methods let New validate a composition
// eagerly: NeedsTree marks adjusters that operate on ctx.Tree/A/B/W
// (rejected on custom substrates), NeedsWindow marks adjusters that
// consume the accumulated request window (the net only pays for window
// bookkeeping when one is composed).
type Adjuster interface {
	// Name identifies the adjuster in composition labels.
	Name() string
	// Adjust restructures the substrate and returns the cost charged.
	Adjust(ctx *Ctx) int64
	// NeedsWindow reports whether the net must accumulate the requests
	// served between adjustments for this adjuster.
	NeedsWindow() bool
	// NeedsTree reports whether the adjuster requires a core.Tree-backed
	// substrate.
	NeedsTree() bool
}

// Ctx is the adjustment context of one served request. The Net owns a
// single Ctx and reuses it across serves (the zero-allocation serve
// contract); adjusters must not retain it.
type Ctx struct {
	// U and V are the request endpoints. U != V: self-loop requests
	// never reach the policy.
	U, V int
	// Dist is the routing cost charged for the request, measured on the
	// pre-adjustment topology.
	Dist int64
	// Tree is the current tree of a tree-backed net (nil on custom
	// substrates), and A, B, W are the endpoints' nodes and their lowest
	// common ancestor in it, valid at route time.
	Tree    *core.Tree
	A, B, W *core.Node
	// Window holds the most recent raw non-self-loop requests served
	// since the last adjustment, the current one included. Long stretches
	// are compacted incrementally (see Demand, which folds the compacted
	// aggregate back in). It is populated only for adjusters whose
	// NeedsWindow is true and only valid during Adjust.
	Window []sim.Request

	net *Net
}

// Demand aggregates all traffic observed since the last adjustment: the
// incrementally compacted overflow chunks plus the live Window. This is
// the input of demand-driven adjusters; it equals aggregating the raw
// request stretch directly (demand aggregation is associative). Only
// valid during Adjust. The net's compacted aggregate is read, never
// mutated, so repeated calls within one Adjust return equal demands.
func (c *Ctx) Demand() *workload.Demand {
	d := workload.DemandFromTrace(workload.Trace{N: c.net.N(), Reqs: c.Window})
	d.Merge(c.net.pending)
	return d
}

// ReplaceTree swaps the net's topology for fresh and returns the link
// churn of the swap (links added plus removed, the model's raw
// reconfiguration cost) — the adjustment-cost currency of rebuild-style
// adjusters. It increments the net's rebuild counter, carries the edge-
// tracking setting over to the fresh tree, and invalidates the static-
// stretch distance oracle. It panics on a custom-substrate net.
func (c *Ctx) ReplaceTree(fresh *core.Tree) int64 {
	p := c.net
	if p.t == nil {
		panic("policy: ReplaceTree on a net without a core.Tree substrate")
	}
	churn := p.linkChurn(p.t, fresh)
	p.retiredEdges += p.t.EdgeChanges()
	fresh.SetTrackEdges(p.trackEdges)
	p.t = fresh
	c.Tree = fresh
	p.oracleLive = false
	p.rebuilds++
	p.churn += churn
	return churn
}

// Fail records a failed adjustment (e.g. a rebuild whose builder
// errored) on the net: FailedRebuilds is incremented and LastFailure
// keeps err. The topology is left unchanged; the caller should charge
// zero cost.
func (c *Ctx) Fail(err error) {
	c.net.failedRebuilds++
	c.net.lastFailure = err
}

// Splay is the full k-splay adjustment of the paper's online networks:
// the source is splayed to the position of the request pair's lowest
// common ancestor and the destination to a child of the source, with
// double (k-splay) steps where possible.
func Splay() Adjuster { return splayAdjuster{} }

type splayAdjuster struct{}

func (splayAdjuster) Name() string      { return "splay" }
func (splayAdjuster) NeedsWindow() bool { return false }
func (splayAdjuster) NeedsTree() bool   { return true }
func (splayAdjuster) Adjust(ctx *Ctx) int64 {
	t := ctx.Tree
	before := t.Rotations()
	t.SplayUntilParent(ctx.A, ctx.W.Parent())
	t.SplayUntilParent(ctx.B, ctx.A)
	return t.Rotations() - before
}

// SemiSplay restricts the repertoire to single k-semi-splay steps (the
// rotation-repertoire ablation of the evaluation).
func SemiSplay() Adjuster { return semiSplayAdjuster{} }

type semiSplayAdjuster struct{}

func (semiSplayAdjuster) Name() string      { return "semi-splay" }
func (semiSplayAdjuster) NeedsWindow() bool { return false }
func (semiSplayAdjuster) NeedsTree() bool   { return true }
func (semiSplayAdjuster) Adjust(ctx *Ctx) int64 {
	t := ctx.Tree
	before := t.Rotations()
	t.SemiSplayUntilParent(ctx.A, ctx.W.Parent())
	t.SemiSplayUntilParent(ctx.B, ctx.A)
	return t.Rotations() - before
}

// None never restructures; composed with Never it is the frozen/static
// corner of the policy plane. (Composing it with a firing trigger is
// legal but pointless; the spec layer rejects that combination as a
// document-describes-a-different-experiment error.)
func None() Adjuster { return noneAdjuster{} }

type noneAdjuster struct{}

func (noneAdjuster) Name() string      { return "none" }
func (noneAdjuster) NeedsWindow() bool { return false }
func (noneAdjuster) NeedsTree() bool   { return false }
func (noneAdjuster) Adjust(*Ctx) int64 { return 0 }

// Builder computes a static demand-aware topology of the given arity
// for a demand window (statictree.WeightBalanced and statictree.Optimal
// are the stock implementations).
type Builder func(d *workload.Demand, k int) (*core.Tree, int64, error)

// Rebuild recomputes the whole topology from the demand observed since
// the last adjustment (the window) and swaps it in, charging the link
// churn of the swap — the lazy self-adjusting scheme's "how". A builder
// failure leaves the topology unchanged, charges nothing, and is
// surfaced through the net's FailedRebuilds counter and LastFailure
// (the window still resets, as a fresh measurement stretch begins
// either way). It panics on a nil builder.
func Rebuild(name string, b Builder) Adjuster {
	if b == nil {
		panic("policy: Rebuild with a nil builder")
	}
	return &rebuildAdjuster{name: name, b: b}
}

type rebuildAdjuster struct {
	name string
	b    Builder
}

func (r *rebuildAdjuster) Name() string      { return r.name }
func (r *rebuildAdjuster) NeedsWindow() bool { return true }
func (r *rebuildAdjuster) NeedsTree() bool   { return true }
func (r *rebuildAdjuster) Adjust(ctx *Ctx) int64 {
	t := ctx.Tree
	fresh, _, err := r.b(ctx.Demand(), t.K())
	if err != nil {
		ctx.Fail(fmt.Errorf("policy: %s rebuild failed, topology unchanged: %w", r.name, err))
		return 0
	}
	return ctx.ReplaceTree(fresh)
}
