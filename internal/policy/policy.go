// Package policy factors every self-adjusting network in this repository
// along the axis the self-adjusting-networks literature makes explicit
// (Avin & Schmid, "Toward Demand-Aware Networking"; Feder et al.'s lazy
// SANs): route each request on the current topology, then decide *when*
// to restructure (the Trigger) and *how* (the Adjuster). A policy Net is
// the composition of the two over a routed substrate:
//
//	Net = topology × (Trigger, Adjuster)
//
// The repository's concrete designs are canonical points in that plane:
//
//	k-ary SplayNet        = balanced k-ary tree × (Always, Splay)
//	semi-splay ablation   = balanced k-ary tree × (Always, SemiSplay)
//	lazy net              = balanced k-ary tree × (Alpha, Rebuild)
//	(k+1)-SplayNet        = centroid topology   × (Always, centroid splay)
//	binary SplayNet       = binary substrate    × (Always, double splay)
//	static trees          = any tree            × (Never, None)
//
// and every other cell of the plane — lazy k-ary splay, periodic
// semi-splay, frozen-after-warmup — is a new network design that costs
// one composition instead of one package.
//
// # Contract
//
// Triggers observe every served non-self-loop request (self-loops cost
// nothing, adjust nothing, and are invisible to the policy) and decide
// whether the adjuster runs; they are reset after every adjustment.
// Adjusters restructure the substrate and return the adjustment cost
// charged under the paper's model (one unit per rotation for the splay
// family, links added plus removed for rebuilds). Between firings the
// topology is immutable, which is what makes the static-stretch fast
// path sound: after a long enough run of declined requests a tree-backed
// Net routes through the Euler-tour/RMQ distance oracle instead of
// walking parent pointers, and a frozen composition (Never) additionally
// satisfies the engine's batch surface.
//
// Like every serve path in this repository, a Net is not safe for
// concurrent Serve calls: the underlying tree owns the rotation scratch
// buffers and the Net owns the request window and churn scratch (see
// DESIGN.md §8). Splay-family compositions preserve the zero-allocation
// steady-state serve contract.
package policy

// Topology is the substrate contract for compositions that are not
// backed by a core.Tree (the binary splaynet is the in-repo example).
// Route computes the routing cost of the request (u, v), u != v, on the
// current structure and stashes whatever context its paired adjusters
// need for a potential Adjust call on the same request. Tree-backed nets
// do not use this interface; New wires the core.Tree route path
// directly.
type Topology interface {
	// N returns the number of nodes (ids 1..N).
	N() int
	// Route returns the routing cost of u→v on the current structure.
	Route(u, v int, ctx *Ctx) int64
}
