package policy

import (
	"fmt"
	"sync"

	"github.com/ksan-net/ksan/internal/core"
	"github.com/ksan-net/ksan/internal/sim"
	"github.com/ksan-net/ksan/internal/statictree"
	"github.com/ksan-net/ksan/internal/workload"
)

// windowCompactLen bounds the raw request window a net retains between
// adjustments: once the window reaches this length it is aggregated into
// the running demand (demand aggregation is associative, so chunk-wise
// compaction is bit-identical to retaining every request) and recycled
// in place. This caps window memory at O(windowCompactLen + distinct
// pairs) however rare rebuilds are — the former lazynet kept every raw
// request since the last rebuild, growing without bound under a large α.
const windowCompactLen = 1 << 15

// Net is a trigger × adjuster composition over a routed topology. It
// implements sim.Network, the engine's ChurnReporter, and — for frozen
// tree-backed compositions — the gated batch surface
// (sim.BatchServer + sim.BatchGate).
//
// Serve is not safe for concurrent use (see the package comment); a
// frozen net's ServeBatch is, matching statictree.Net.
type Net struct {
	name string
	trig Trigger
	adj  Adjuster

	t   *core.Tree // tree substrate (nil when top is set)
	top Topology   // custom substrate

	needsWindow  bool
	window       []sim.Request
	compactAfter int              // window length that forces compaction
	pending      *workload.Demand // compacted aggregate of overflowed window chunks

	rebuilds       int64
	failedRebuilds int64
	lastFailure    error
	churn          int64 // cumulative link churn of tree swaps
	retiredEdges   int64 // EdgeChanges carried over from swapped-out trees
	trackEdges     bool

	// Static-stretch fast path: after oracleAfter consecutive declined
	// requests the tree is provably unchanged for a while, so distance
	// queries go through the O(1) Euler-tour/RMQ oracle instead of
	// pointer walks. Any adjustment invalidates it (oracleLive drops to
	// false), but the oracle object itself is retained: the next stretch
	// re-indexes it in place (DistIndex.Rebuild), so entering a static
	// stretch allocates nothing after the first one.
	streak      int
	oracleAfter int
	oracle      *statictree.DistIndex
	oracleLive  bool
	batchOnce   sync.Once

	ctx Ctx

	// Churn scratch (see churn.go), recycled across rebuilds.
	edgesOld, edgesNew []uint64
}

// New composes a policy net over a core.Tree substrate. The tree is
// owned by the net from here on: it must only be mutated through Serve
// (adjusters), or the static-stretch oracle would go stale.
func New(name string, t *core.Tree, trig Trigger, adj Adjuster) (*Net, error) {
	if t == nil {
		return nil, fmt.Errorf("policy: nil tree")
	}
	return compose(name, t, nil, trig, adj)
}

// NewCustom composes a policy net over a custom substrate (e.g. the
// binary splaynet). Adjusters that need a core.Tree are rejected.
func NewCustom(name string, top Topology, trig Trigger, adj Adjuster) (*Net, error) {
	if top == nil {
		return nil, fmt.Errorf("policy: nil topology")
	}
	if adj != nil && adj.NeedsTree() {
		return nil, fmt.Errorf("policy: adjuster %q requires a core.Tree-backed substrate", adj.Name())
	}
	return compose(name, nil, top, trig, adj)
}

func compose(name string, t *core.Tree, top Topology, trig Trigger, adj Adjuster) (*Net, error) {
	if trig == nil || adj == nil {
		return nil, fmt.Errorf("policy: composition needs both a trigger and an adjuster")
	}
	p := &Net{
		name:         name,
		trig:         trig,
		adj:          adj,
		t:            t,
		top:          top,
		needsWindow:  adj.NeedsWindow(),
		compactAfter: windowCompactLen,
	}
	if t != nil {
		// The oracle build is O(n log n); 2n declined requests comfortably
		// amortize it on every tree size we serve (see DESIGN.md §8).
		p.oracleAfter = 2*t.N() + 64
	}
	p.ctx.net = p
	return p, nil
}

// Name implements sim.Network.
func (p *Net) Name() string { return p.name }

// N implements sim.Network.
func (p *Net) N() int {
	if p.t != nil {
		return p.t.N()
	}
	return p.top.N()
}

// K returns the arity bound of the tree substrate, or 0 for custom
// substrates.
func (p *Net) K() int {
	if p.t != nil {
		return p.t.K()
	}
	return 0
}

// Tree exposes the current tree substrate for inspection and
// validation (nil for custom substrates). Mutating it directly voids
// the static-stretch oracle's soundness.
func (p *Net) Tree() *core.Tree { return p.t }

// Trigger returns the composed trigger.
func (p *Net) Trigger() Trigger { return p.trig }

// Adjuster returns the composed adjuster.
func (p *Net) Adjuster() Adjuster { return p.adj }

// Rebuilds returns how many topology swaps (successful rebuilds) have
// happened.
func (p *Net) Rebuilds() int64 { return p.rebuilds }

// FailedRebuilds returns how many adjustments failed (builder errors);
// each left the topology unchanged and charged nothing.
func (p *Net) FailedRebuilds() int64 { return p.failedRebuilds }

// LastFailure returns the most recent adjustment failure, or nil.
func (p *Net) LastFailure() error { return p.lastFailure }

// LinkChurn implements the engine's ChurnReporter with the unified
// accounting of the policy layer: the link churn of topology swaps plus
// the per-rotation edge changes of every tree the net has owned (the
// latter only accumulate while edge tracking is on).
func (p *Net) LinkChurn() int64 {
	total := p.churn + p.retiredEdges
	if p.t != nil {
		total += p.t.EdgeChanges()
	}
	return total
}

// SetTrackEdges toggles per-rotation edge-churn accounting on the tree
// substrate, surviving rebuild swaps (each fresh tree inherits the
// setting). No-op on custom substrates.
func (p *Net) SetTrackEdges(on bool) {
	p.trackEdges = on
	if p.t != nil {
		p.t.SetTrackEdges(on)
	}
}

// Serve implements sim.Network: route the request on the current
// topology, feed the trigger, and adjust when it fires. Self-loop
// requests are free and invisible to the policy.
func (p *Net) Serve(u, v int) sim.Cost {
	if u == v {
		return sim.Cost{}
	}
	ctx := &p.ctx
	ctx.U, ctx.V = u, v
	ctx.Tree, ctx.A, ctx.B, ctx.W = p.t, nil, nil, nil
	var dist int64
	switch {
	case p.t == nil:
		dist = p.top.Route(u, v, ctx)
	case p.oracleLive:
		dist = p.oracle.Dist(u, v)
	default:
		a, b := p.t.NodeByID(u), p.t.NodeByID(v)
		d, w := p.t.DistanceLCA(a, b)
		dist = int64(d)
		ctx.A, ctx.B, ctx.W = a, b, w
	}
	ctx.Dist = dist
	if p.needsWindow {
		p.window = append(p.window, sim.Request{Src: u, Dst: v})
	}
	cost := sim.Cost{Routing: dist}
	if !p.trig.Observe(dist) {
		if p.needsWindow && len(p.window) >= p.compactAfter {
			p.compactWindow()
		}
		p.streak++
		if p.t != nil && !p.oracleLive && p.streak >= p.oracleAfter {
			if p.oracle == nil {
				p.oracle = new(statictree.DistIndex)
			}
			p.oracle.Rebuild(p.t)
			p.oracleLive = true
		}
		return cost
	}
	if p.t != nil && ctx.A == nil {
		// The oracle route skipped the splay context; materialize it for
		// the adjuster (once per static stretch, so the double walk is
		// noise).
		a, b := p.t.NodeByID(u), p.t.NodeByID(v)
		_, w := p.t.DistanceLCA(a, b)
		ctx.A, ctx.B, ctx.W = a, b, w
	}
	ctx.Window = p.window
	cost.Adjust = p.adj.Adjust(ctx)
	ctx.Window = nil
	p.afterAdjust()
	return cost
}

// compactWindow folds the raw window into the running demand aggregate
// and recycles the window in place, bounding window memory between
// adjustments (see windowCompactLen).
func (p *Net) compactWindow() {
	chunk := workload.DemandFromTrace(workload.Trace{N: p.N(), Reqs: p.window})
	if p.pending == nil {
		p.pending = chunk
	} else {
		p.pending.Merge(chunk)
	}
	p.window = p.window[:0]
}

// afterAdjust starts a fresh measurement stretch: trigger state, request
// window and its compacted aggregate, and the static-stretch oracle all
// reset. The oracle object is kept for in-place reuse, only its liveness
// drops.
func (p *Net) afterAdjust() {
	p.trig.Reset()
	p.streak = 0
	p.oracleLive = false
	if p.needsWindow {
		p.window = p.window[:0]
		p.pending = nil
	}
}

// Batchable implements sim.BatchGate: only a frozen composition (Never
// trigger) on a tree substrate is side-effect-free, so only those may be
// sharded through the engine's batch path.
func (p *Net) Batchable() bool {
	_, frozen := p.trig.(neverTrigger)
	return frozen && p.t != nil
}

// ServeBatch implements sim.BatchServer for frozen compositions: the
// topology can never change, so disjoint request shards are served
// concurrently against the O(1) distance oracle, exactly like
// statictree.Net. It panics on a composition that can adjust.
func (p *Net) ServeBatch(reqs []sim.Request) sim.BatchCost {
	ix, ok := p.StaticOracle()
	if !ok {
		panic("policy: ServeBatch on a composition that can adjust")
	}
	return ix.ServeBatch(reqs)
}

// StaticOracle is the shard-safe serving hook (internal/serve): for a
// frozen composition it returns the distance oracle over the — provably
// permanent — current topology, building it on first use. The oracle is
// immutable from then on, so any number of goroutines may query it
// concurrently without touching the net itself; callers must not mix
// that with Serve calls from other goroutines (Serve mutates streak and
// oracle state even when the trigger never fires). A composition whose
// trigger can still fire reports false: its topology is only static
// between firings, and only its owner may serve it.
func (p *Net) StaticOracle() (*statictree.DistIndex, bool) {
	if !p.Batchable() {
		return nil, false
	}
	p.batchOnce.Do(func() {
		if !p.oracleLive {
			if p.oracle == nil {
				p.oracle = new(statictree.DistIndex)
			}
			p.oracle.Rebuild(p.t)
			p.oracleLive = true
		}
	})
	return p.oracle, true
}
