package policy

import (
	"slices"

	"github.com/ksan-net/ksan/internal/core"
)

// linkChurn counts links added plus removed between two topologies on
// the same node set — the model's raw reconfiguration cost, charged by
// rebuild adjusters. It is the size of the symmetric difference of the
// two undirected link sets.
//
// The computation is sort-based on recycled scratch rather than
// map-based: each undirected edge packs its endpoint pair (a < b) into
// one uint64 key, both edge lists are sorted in place, and a linear
// merge counts the keys present on exactly one side. The former
// map[[2]int]bool version paid one heap-allocated bucket entry per edge
// on every rebuild; this path performs zero steady-state allocations
// (the key slices are owned by the net and reused across rebuilds).
func (p *Net) linkChurn(old, fresh *core.Tree) int64 {
	p.edgesOld = packEdges(old, p.edgesOld[:0])
	p.edgesNew = packEdges(fresh, p.edgesNew[:0])
	slices.Sort(p.edgesOld)
	slices.Sort(p.edgesNew)
	return symmetricDiffSize(p.edgesOld, p.edgesNew)
}

// packEdges appends one key per undirected edge of t to keys. Node ids
// are 1..n with n bounded by addressable memory, so both endpoints fit
// 32 bits and (min<<32 | max) orders pairs lexicographically.
func packEdges(t *core.Tree, keys []uint64) []uint64 {
	for id := 1; id <= t.N(); id++ {
		par := t.NodeByID(id).Parent()
		if par == nil {
			continue
		}
		a, b := id, par.ID()
		if a > b {
			a, b = b, a
		}
		keys = append(keys, uint64(a)<<32|uint64(b))
	}
	return keys
}

// symmetricDiffSize counts the elements present in exactly one of the
// two sorted, duplicate-free key slices.
func symmetricDiffSize(a, b []uint64) int64 {
	var n int64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			i++
			j++
		case a[i] < b[j]:
			n++
			i++
		default:
			n++
			j++
		}
	}
	return n + int64(len(a)-i) + int64(len(b)-j)
}
