package policy

import (
	"math/rand"
	"testing"

	"github.com/ksan-net/ksan/internal/sim"
	"github.com/ksan-net/ksan/internal/statictree"
)

// checkpointCases are the compositions the recovery ladder must cover:
// every stock trigger shape (stateless, counting, cost-accumulating with
// hysteresis, lifetime-prefix) crossed with both adjuster families
// (splay-style tree surgery and windowed rebuilds).
var checkpointCases = []struct {
	name string
	mk   func(t *testing.T) *Net
}{
	{"always-splay", func(t *testing.T) *Net {
		net, err := New("kary", mustTree(t, 60, 3), Always(), Splay())
		if err != nil {
			t.Fatal(err)
		}
		return net
	}},
	{"every-semisplay", func(t *testing.T) *Net {
		net, err := New("periodic", mustTree(t, 60, 3), EveryM(7), SemiSplay())
		if err != nil {
			t.Fatal(err)
		}
		return net
	}},
	{"alpha-rebuild", func(t *testing.T) *Net {
		net, err := New("lazy", mustTree(t, 60, 3), AlphaHysteresis(1200, 32),
			Rebuild("weight-balanced", statictree.WeightBalanced))
		if err != nil {
			t.Fatal(err)
		}
		// Force incremental window compaction so Pending is exercised.
		net.compactAfter = 48
		return net
	}},
	{"first-splay", func(t *testing.T) *Net {
		net, err := New("warmup", mustTree(t, 60, 3), First(400), Splay())
		if err != nil {
			t.Fatal(err)
		}
		return net
	}},
	{"never-none", func(t *testing.T) *Net {
		net, err := New("frozen", mustTree(t, 60, 3), Never(), None())
		if err != nil {
			t.Fatal(err)
		}
		return net
	}},
}

func checkpointTrace(n, m int, seed int64) []sim.Request {
	rng := rand.New(rand.NewSource(seed))
	reqs := make([]sim.Request, m)
	for i := range reqs {
		u, v := 1+rng.Intn(n), 1+rng.Intn(n)
		reqs[i] = sim.Request{Src: u, Dst: v}
	}
	return reqs
}

// TestCheckpointRestoreEquivalence is the policy-layer rung of the
// recovery ladder: serve a prefix, checkpoint, serve the suffix on the
// live net — then restore a fresh identically-composed net from the
// checkpoint and replay the suffix. Both the per-request cost stream and
// the final topology must be bit-identical, at every checkpoint offset
// tried.
func TestCheckpointRestoreEquivalence(t *testing.T) {
	for _, tc := range checkpointCases {
		t.Run(tc.name, func(t *testing.T) {
			reqs := checkpointTrace(60, 3000, 5)
			for _, cut := range []int{0, 1, 17, 500, 1333, 2999} {
				live := tc.mk(t)
				var cp Checkpoint
				for i := 0; i < cut; i++ {
					live.Serve(reqs[i].Src, reqs[i].Dst)
				}
				if err := live.CheckpointInto(&cp); err != nil {
					t.Fatal(err)
				}
				liveCosts := make([]sim.Cost, 0, len(reqs)-cut)
				for _, rq := range reqs[cut:] {
					liveCosts = append(liveCosts, live.Serve(rq.Src, rq.Dst))
				}

				restored := tc.mk(t)
				if err := restored.Restore(&cp); err != nil {
					t.Fatal(err)
				}
				for i, rq := range reqs[cut:] {
					if got := restored.Serve(rq.Src, rq.Dst); got != liveCosts[i] {
						t.Fatalf("cut=%d suffix request %d (%d→%d): restored %+v, live %+v",
							cut, i, rq.Src, rq.Dst, got, liveCosts[i])
					}
				}
				if got, want := restored.Tree().Render(), live.Tree().Render(); got != want {
					t.Fatalf("cut=%d: final topologies diverge\nrestored:\n%s\nlive:\n%s", cut, got, want)
				}
				if err := restored.Tree().Validate(); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestCheckpointIsDeepCopy pins the isolation contract: serving past the
// checkpoint (mutating tree, window, trigger, and the in-place compacted
// aggregate) must not disturb a taken checkpoint, and restoring twice
// from the same checkpoint yields identical replays.
func TestCheckpointIsDeepCopy(t *testing.T) {
	mk := checkpointCases[2].mk // alpha-rebuild with forced compaction
	reqs := checkpointTrace(60, 2500, 9)
	cut := 700

	live := mk(t)
	for i := 0; i < cut; i++ {
		live.Serve(reqs[i].Src, reqs[i].Dst)
	}
	var cp Checkpoint
	if err := live.CheckpointInto(&cp); err != nil {
		t.Fatal(err)
	}
	if cp.Pending == nil {
		t.Fatal("checkpoint captured no compacted aggregate; the deep-copy test is vacuous")
	}
	// Mutate the live net well past the checkpoint (more compaction Merges
	// mutate pending in place; rebuilds swap the tree).
	for _, rq := range reqs[cut:] {
		live.Serve(rq.Src, rq.Dst)
	}

	replay := func() []sim.Cost {
		net := mk(t)
		if err := net.Restore(&cp); err != nil {
			t.Fatal(err)
		}
		costs := make([]sim.Cost, 0, len(reqs)-cut)
		for _, rq := range reqs[cut:] {
			costs = append(costs, net.Serve(rq.Src, rq.Dst))
		}
		return costs
	}
	first, second := replay(), replay()
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("replays from one checkpoint diverge at request %d: %+v vs %+v", i, first[i], second[i])
		}
	}
}

// TestCheckpointReuseAllocFree pins the steady-state cost of periodic
// checkpointing: once a Checkpoint's backing arrays have grown to size,
// re-checkpointing a windowless net into it allocates nothing.
func TestCheckpointReuseAllocFree(t *testing.T) {
	net, err := New("kary", mustTree(t, 127, 4), Always(), Splay())
	if err != nil {
		t.Fatal(err)
	}
	reqs := checkpointTrace(127, 400, 3)
	var cp Checkpoint
	i := 0
	if err := net.CheckpointInto(&cp); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		rq := reqs[i%len(reqs)]
		i++
		net.Serve(rq.Src, rq.Dst)
		if err := net.CheckpointInto(&cp); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state serve+checkpoint allocates %.1f objects/op, want 0", allocs)
	}
}

func TestCheckpointErrors(t *testing.T) {
	custom, err := NewCustom("custom", fakeTopology{}, Always(), None())
	if err != nil {
		t.Fatal(err)
	}
	var cp Checkpoint
	if err := custom.CheckpointInto(&cp); err == nil {
		t.Error("custom substrate checkpointed")
	}
	if err := custom.Restore(&cp); err == nil {
		t.Error("custom substrate restored")
	}
	if custom.Checkpointable() {
		t.Error("custom substrate reported checkpointable")
	}

	tree62, err2 := New("x", mustTree(t, 62, 3), Always(), Splay())
	if err2 != nil {
		t.Fatal(err2)
	}
	if !tree62.Checkpointable() {
		t.Error("tree-backed stock composition reported not checkpointable")
	}
	if err := tree62.Restore(&cp); err == nil {
		t.Error("restore from an empty checkpoint accepted")
	}

	// Shape mismatch: checkpoint of a 60-node net into a 62-node net.
	donor, err3 := New("y", mustTree(t, 60, 3), Always(), Splay())
	if err3 != nil {
		t.Fatal(err3)
	}
	if err := donor.CheckpointInto(&cp); err != nil {
		t.Fatal(err)
	}
	if err := tree62.Restore(&cp); err == nil {
		t.Error("restore from a differently-sized checkpoint accepted")
	}

	// Corrupted snapshot: out-of-range root must be rejected, net unchanged.
	before := donor.Tree().Render()
	cp.Tree.Root = 99
	if err := donor.Restore(&cp); err == nil {
		t.Error("restore from a corrupted snapshot accepted")
	}
	if donor.Tree().Render() != before {
		t.Error("failed restore mutated the net")
	}

	// Trigger-state shape mismatch.
	if err := donor.CheckpointInto(&cp); err != nil {
		t.Fatal(err)
	}
	cp.Trig = append(cp.Trig, 7)
	if err := donor.Restore(&cp); err == nil {
		t.Error("restore with stateless trigger but non-empty trigger state accepted")
	}
	alphaNet, err4 := New("z", mustTree(t, 60, 3), Alpha(100), Splay())
	if err4 != nil {
		t.Fatal(err4)
	}
	var acp Checkpoint
	if err := alphaNet.CheckpointInto(&acp); err != nil {
		t.Fatal(err)
	}
	acp.Trig = acp.Trig[:1]
	if err := alphaNet.Restore(&acp); err == nil {
		t.Error("restore with truncated alpha-trigger state accepted")
	}
}

// TestCheckpointEdgeTrackingCarriedOver mirrors ReplaceTree's contract:
// the restored tree inherits the net's edge-tracking setting and the
// swapped-out tree's tracked churn is retired, keeping LinkChurn
// monotone across a restore.
func TestCheckpointEdgeTrackingCarriedOver(t *testing.T) {
	net, err := New("kary", mustTree(t, 40, 3), Always(), Splay())
	if err != nil {
		t.Fatal(err)
	}
	net.SetTrackEdges(true)
	reqs := checkpointTrace(40, 300, 13)
	for _, rq := range reqs[:150] {
		net.Serve(rq.Src, rq.Dst)
	}
	var cp Checkpoint
	if err := net.CheckpointInto(&cp); err != nil {
		t.Fatal(err)
	}
	churnAt := net.LinkChurn()
	if churnAt == 0 {
		t.Fatal("no tracked churn before the restore; the carry-over test is vacuous")
	}
	for _, rq := range reqs[150:] {
		net.Serve(rq.Src, rq.Dst)
	}
	if err := net.Restore(&cp); err != nil {
		t.Fatal(err)
	}
	if got := net.LinkChurn(); got < churnAt {
		t.Errorf("LinkChurn regressed across restore: %d then %d", churnAt, got)
	}
	base := net.LinkChurn()
	for _, rq := range reqs[150:] {
		net.Serve(rq.Src, rq.Dst)
	}
	if net.LinkChurn() == base {
		t.Error("restored tree does not track edges")
	}
}
