package workload

import (
	"reflect"
	"slices"
	"sort"
	"testing"

	"github.com/ksan-net/ksan/internal/sim"
)

// demandFromTraceMap is the pre-PR-4 map-based aggregation, kept as the
// reference implementation for the sort-based rewrite.
func demandFromTraceMap(tr Trace) *Demand {
	type key struct{ u, v int }
	acc := make(map[key]int64)
	for _, rq := range tr.Reqs {
		acc[key{rq.Src, rq.Dst}]++
	}
	d := &Demand{N: tr.N, Pairs: make([]PairCount, 0, len(acc))}
	for k, c := range acc {
		d.Pairs = append(d.Pairs, PairCount{Src: k.u, Dst: k.v, Count: c})
		d.Total += c
	}
	sort.Slice(d.Pairs, func(i, j int) bool {
		if d.Pairs[i].Src != d.Pairs[j].Src {
			return d.Pairs[i].Src < d.Pairs[j].Src
		}
		return d.Pairs[i].Dst < d.Pairs[j].Dst
	})
	return d
}

func TestDemandFromTraceMatchesMapVersion(t *testing.T) {
	traces := map[string]Trace{
		"uniform":     Uniform(40, 5000, 1),
		"temporal":    Temporal(63, 5000, 0.75, 2),
		"zipf":        Zipf(100, 5000, 1.2, 3),
		"hpc":         HPCLike(64, 5000, 4),
		"projector":   ProjecToRLike(50, 5000, 5),
		"facebook":    FacebookLike(128, 5000, 6),
		"empty":       {N: 10},
		"single":      {N: 10, Reqs: Uniform(10, 1, 7).Reqs},
		"one-pair":    {N: 4, Reqs: Uniform(4, 200, 8).Reqs[:1]},
		"tiny-n":      Uniform(2, 300, 9),
		"max-repeats": Temporal(16, 4000, 0.9, 10),
	}
	for name, tr := range traces {
		got := DemandFromTrace(tr)
		want := demandFromTraceMap(tr)
		if got.N != want.N || got.Total != want.Total {
			t.Fatalf("%s: N/Total (%d,%d), want (%d,%d)", name, got.N, got.Total, want.N, want.Total)
		}
		if !reflect.DeepEqual(got.Pairs, want.Pairs) {
			t.Fatalf("%s: sort-based pairs diverge from map-based reference\n got %v\nwant %v",
				name, got.Pairs, want.Pairs)
		}
	}
}

func TestDemandFromTraceCmpFallback(t *testing.T) {
	// Ids outside the packed-key range must take the comparator path and
	// still aggregate identically to the reference.
	// Negative ids are out of the packed-key range on every platform (an
	// id ≥ 2³¹ would too, but that constant doesn't compile on 32-bit).
	tr := Trace{N: 5, Reqs: Uniform(5, 50, 3).Reqs}
	tr.Reqs = append(tr.Reqs,
		sim.Request{Src: -7, Dst: 2},
		sim.Request{Src: -7, Dst: 2},
		sim.Request{Src: -3, Dst: 4})
	got := DemandFromTrace(tr)
	want := demandFromTraceMap(tr)
	if !reflect.DeepEqual(got.Pairs, want.Pairs) || got.Total != want.Total {
		t.Fatalf("fallback path diverges:\n got %+v total %d\nwant %+v total %d",
			got.Pairs, got.Total, want.Pairs, want.Total)
	}
}

func TestDemandMergeEqualsWholeTraceAggregation(t *testing.T) {
	// Merge is the associativity contract the policy layer's window
	// compaction relies on: aggregating a trace chunk-wise and merging
	// must equal aggregating the whole trace, for any chunking.
	tr := Temporal(63, 8000, 0.7, 11)
	want := DemandFromTrace(tr)
	for _, chunk := range []int{1, 7, 64, 1000, 8000, 9999} {
		var acc *Demand
		for lo := 0; lo < len(tr.Reqs); lo += chunk {
			hi := min(lo+chunk, len(tr.Reqs))
			d := DemandFromTrace(Trace{N: tr.N, Reqs: tr.Reqs[lo:hi]})
			if acc == nil {
				acc = d
			} else {
				acc.Merge(d)
			}
		}
		if acc.Total != want.Total || !reflect.DeepEqual(acc.Pairs, want.Pairs) {
			t.Fatalf("chunk=%d: merged aggregate diverges from whole-trace aggregation", chunk)
		}
		if !slices.IsSortedFunc(acc.Pairs, func(a, b PairCount) int {
			if a.Src != b.Src {
				return a.Src - b.Src
			}
			return a.Dst - b.Dst
		}) {
			t.Fatalf("chunk=%d: merged pairs not sorted", chunk)
		}
	}
	// Merging an empty/nil demand only folds totals.
	d := DemandFromTrace(Trace{N: 8, Reqs: tr.Reqs[:10]})
	before := len(d.Pairs)
	d.Merge(&Demand{N: 8})
	d.Merge(nil)
	if len(d.Pairs) != before {
		t.Error("empty merge changed the pair list")
	}
}

func BenchmarkDemandFromTrace(b *testing.B) {
	tr := Temporal(1023, 200_000, 0.5, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DemandFromTrace(tr)
	}
}

func BenchmarkDemandFromTraceMap(b *testing.B) {
	tr := Temporal(1023, 200_000, 0.5, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		demandFromTraceMap(tr)
	}
}
