package workload

import (
	"testing"
)

// BenchmarkGenerate measures one full streaming pass per op for every
// generator kind: 100k requests over a mid-sized node space. The
// machine-independent contract (enforced by benchdiff in CI) is the
// allocation profile — a pass allocates its rng, permutations and
// samplers once, never per request — so a generator that starts
// allocating in its inner loop fails the gate regardless of host speed.
func BenchmarkGenerate(b *testing.B) {
	const n, m = 256, 100_000
	hist := func() Generator {
		w := make([]float64, n)
		for i := range w {
			w[i] = float64(n - i)
		}
		g, err := HistogramGen(n, m, w, 1)
		if err != nil {
			b.Fatal(err)
		}
		return g
	}()
	phased := func() Generator {
		g, err := PhasedGen("drift", []Phase{
			{Gen: HotspotGen(n, m/2, 0.1, 0.9, 1), M: m / 2},
			{Gen: HotspotGen(n, m/2, 0.1, 0.9, 2), M: m / 2},
		})
		if err != nil {
			b.Fatal(err)
		}
		return g
	}()
	gens := []struct {
		name string
		gen  Generator
	}{
		{"uniform", UniformGen(n, m, 1)},
		{"temporal", TemporalGen(n, m, 0.75, 1)},
		{"hpc", HPCGen(n, m, 1)},
		{"projector", ProjectorGen(n, m, 1)},
		{"facebook", FacebookGen(n, m, 1)},
		{"zipf", ZipfGen(n, m, 1.1, 1)},
		{"hotspot", HotspotGen(n, m, 0.1, 0.9, 1)},
		{"exponential", ExponentialGen(n, m, 4, 1)},
		{"latest", LatestGen(n, m, 1.1, 1)},
		{"sequential", SequentialGen(n, m)},
		{"histogram", hist},
		{"phased", phased},
	}
	for _, tc := range gens {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				count := 0
				for _, err := range tc.gen.Requests() {
					if err != nil {
						b.Fatal(err)
					}
					count++
				}
				if count != m {
					b.Fatalf("pass yielded %d requests, want %d", count, m)
				}
			}
			b.SetBytes(int64(m))
		})
	}
}

// BenchmarkCollect is the materializing counterpart: the same pass plus
// the slice the streaming path exists to avoid. The gap between this and
// BenchmarkGenerate/uniform is the refactor's memory story in one number.
func BenchmarkCollect(b *testing.B) {
	const n, m = 256, 100_000
	g := UniformGen(n, m, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr, err := Collect(g)
		if err != nil {
			b.Fatal(err)
		}
		if tr.Len() != m {
			b.Fatal("short collect")
		}
	}
}
