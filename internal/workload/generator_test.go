package workload

import (
	"math"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"github.com/ksan-net/ksan/internal/sim"
)

// allGenerators is one instance of every streaming kind, used by the
// contract tests below. CSV is added separately (it needs a file).
func allGenerators(t *testing.T) map[string]Generator {
	t.Helper()
	hist, err := HistogramGen(8, 400, []float64{5, 4, 3, 2, 1, 1, 1, 1}, 5)
	if err != nil {
		t.Fatal(err)
	}
	phased, err := PhasedGen("drift", []Phase{
		{Gen: HotspotGen(16, 300, 0.25, 0.9, 1), M: 300},
		{Gen: HotspotGen(16, 300, 0.25, 0.9, 2), M: 300},
	})
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Generator{
		"uniform":     UniformGen(20, 400, 3),
		"temporal":    TemporalGen(20, 400, 0.6, 3),
		"hpc":         HPCGen(32, 400, 3),
		"projector":   ProjectorGen(20, 400, 3),
		"facebook":    FacebookGen(64, 400, 3),
		"zipf":        ZipfGen(20, 400, 1.2, 3),
		"hotspot":     HotspotGen(20, 400, 0.2, 0.85, 3),
		"exponential": ExponentialGen(20, 400, 4, 3),
		"latest":      LatestGen(20, 400, 1.1, 3),
		"sequential":  SequentialGen(9, 400),
		"histogram":   hist,
		"phased":      phased,
	}
}

// TestGeneratorPassesAreIdentical pins the reset contract: every call to
// Requests() is an independent pass over the same stream, so two passes
// (sequential or abandoned halfway) must yield identical requests.
func TestGeneratorPassesAreIdentical(t *testing.T) {
	for name, g := range allGenerators(t) {
		first, err := Collect(g)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if g.Len() >= 0 && first.Len() != g.Len() {
			t.Fatalf("%s: Len()=%d but the stream yielded %d", name, g.Len(), first.Len())
		}
		// Abandon a pass halfway; the next full pass must be unaffected.
		taken := 0
		for range g.Requests() {
			if taken++; taken == first.Len()/2 {
				break
			}
		}
		second, err := Collect(g)
		if err != nil {
			t.Fatalf("%s: second pass: %v", name, err)
		}
		if len(second.Reqs) != len(first.Reqs) {
			t.Fatalf("%s: passes differ in length: %d vs %d", name, len(first.Reqs), len(second.Reqs))
		}
		for i := range first.Reqs {
			if first.Reqs[i] != second.Reqs[i] {
				t.Fatalf("%s: passes diverge at request %d: %v vs %v",
					name, i, first.Reqs[i], second.Reqs[i])
			}
		}
		if err := first.Validate(); err != nil {
			t.Errorf("%s: invalid stream: %v", name, err)
		}
	}
}

// TestLegacyConstructorsMatchStreams pins the tentpole's bit-identity
// claim from the other side: the materialized constructors are the
// collected streams, request for request.
func TestLegacyConstructorsMatchStreams(t *testing.T) {
	pairs := map[string]struct {
		tr  Trace
		gen Generator
	}{
		"uniform":   {Uniform(50, 800, 7), UniformGen(50, 800, 7)},
		"temporal":  {Temporal(50, 800, 0.75, 7), TemporalGen(50, 800, 0.75, 7)},
		"hpc":       {HPCLike(64, 800, 7), HPCGen(64, 800, 7)},
		"projector": {ProjecToRLike(50, 800, 7), ProjectorGen(50, 800, 7)},
		"facebook":  {FacebookLike(128, 800, 7), FacebookGen(128, 800, 7)},
		"zipf":      {Zipf(50, 800, 1.1, 7), ZipfGen(50, 800, 1.1, 7)},
	}
	for name, p := range pairs {
		got := MustCollect(p.gen)
		if got.Name != p.tr.Name || got.N != p.tr.N || got.Len() != p.tr.Len() {
			t.Fatalf("%s: stream shape %q/%d/%d vs trace %q/%d/%d",
				name, got.Name, got.N, got.Len(), p.tr.Name, p.tr.N, p.tr.Len())
		}
		for i := range got.Reqs {
			if got.Reqs[i] != p.tr.Reqs[i] {
				t.Fatalf("%s: stream diverges from materialized trace at request %d", name, i)
			}
		}
	}
}

func TestHotspotConcentratesTraffic(t *testing.T) {
	const n, m = 50, 40000
	const hotFrac, hotOpn = 0.1, 0.9
	g := HotspotGen(n, m, hotFrac, hotOpn, 9)
	counts := make(map[int]int, n)
	total := 0
	for rq, err := range g.Requests() {
		if err != nil {
			t.Fatal(err)
		}
		counts[rq.Src]++
		counts[rq.Dst]++
		total += 2
	}
	// The 5 hottest nodes should hold ≈ hotOpn of the endpoint mass (the
	// self-loop redraw shifts it slightly; allow a loose band).
	hot := int(hotFrac * n)
	top := make([]int, 0, n)
	for _, c := range counts {
		top = append(top, c)
	}
	for i := 0; i < hot; i++ {
		for j := i + 1; j < len(top); j++ {
			if top[j] > top[i] {
				top[i], top[j] = top[j], top[i]
			}
		}
	}
	share := 0.0
	for i := 0; i < hot; i++ {
		share += float64(top[i])
	}
	share /= float64(total)
	if math.Abs(share-hotOpn) > 0.05 {
		t.Errorf("hot set holds %.3f of endpoint draws, want ≈ %.2f", share, hotOpn)
	}
}

func TestHotspotRejectsDegenerateParameters(t *testing.T) {
	for name, f := range map[string]func(){
		"empty hot set":  func() { HotspotGen(10, 10, 0.01, 0.5, 1) },
		"empty cold set": func() { HotspotGen(10, 10, 1.0, 0.5, 1) },
		"hotopn=0":       func() { HotspotGen(10, 10, 0.5, 0, 1) },
		"hotopn=1":       func() { HotspotGen(10, 10, 0.5, 1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("HotspotGen with %s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestExponentialRanksDecay(t *testing.T) {
	const n, m, s = 20, 60000, 4.0
	g := ExponentialGen(n, m, s, 13)
	counts := make(map[int]float64)
	for rq, err := range g.Requests() {
		if err != nil {
			t.Fatal(err)
		}
		counts[rq.Src]++
	}
	// Source draws before the self-loop resample are pure sampler output:
	// sorted counts must decay ≈ exp(-s/n) per rank.
	sorted := make([]float64, 0, n)
	for _, c := range counts {
		sorted = append(sorted, c)
	}
	for i := range sorted {
		for j := i + 1; j < len(sorted); j++ {
			if sorted[j] > sorted[i] {
				sorted[i], sorted[j] = sorted[j], sorted[i]
			}
		}
	}
	wantRatio := math.Exp(-s / n)
	for i := 0; i+1 < 5; i++ { // the top ranks have enough mass to compare
		got := sorted[i+1] / sorted[i]
		if math.Abs(got-wantRatio) > 0.1 {
			t.Errorf("rank %d→%d popularity ratio %.3f, want ≈ %.3f", i, i+1, got, wantRatio)
		}
	}
}

func TestLatestFavorsRecentEndpoints(t *testing.T) {
	const n, m = 64, 30000
	g := LatestGen(n, m, 1.2, 17)
	// Recency locality: endpoints of request i reappear in request i+1 far
	// more often than the 4/n ≈ 0.06 a uniform draw would give.
	var prev sim.Request
	overlap, total := 0, 0
	for rq, err := range g.Requests() {
		if err != nil {
			t.Fatal(err)
		}
		if total > 0 {
			if rq.Src == prev.Src || rq.Src == prev.Dst || rq.Dst == prev.Src || rq.Dst == prev.Dst {
				overlap++
			}
		}
		prev = rq
		total++
	}
	frac := float64(overlap) / float64(total-1)
	if frac < 0.3 {
		t.Errorf("only %.3f of requests share an endpoint with their predecessor; latest should be recency-heavy", frac)
	}
	// And the hot set drifts: the endpoint histogram must still touch most
	// of the node space over the long run.
	st, err := MeasureStream(g)
	if err != nil {
		t.Fatal(err)
	}
	if st.SrcEntropy < 2 {
		t.Errorf("latest source entropy %.2f: hot set never drifts?", st.SrcEntropy)
	}
}

func TestSequentialSweepsAllPairsExactly(t *testing.T) {
	const n = 7
	cycle := n * (n - 1)
	g := SequentialGen(n, 2*cycle+3)
	seen := make(map[sim.Request]int)
	var reqs []sim.Request
	for rq, err := range g.Requests() {
		if err != nil {
			t.Fatal(err)
		}
		seen[rq]++
		reqs = append(reqs, rq)
	}
	if len(seen) != cycle {
		t.Fatalf("sweep visited %d distinct pairs, want %d", len(seen), cycle)
	}
	for rq, c := range seen {
		want := 2
		// The 3 extra requests revisit the first 3 pairs a third time.
		if rq == reqs[0] || rq == reqs[1] || rq == reqs[2] {
			want = 3
		}
		if c != want {
			t.Fatalf("pair %v served %d times, want %d", rq, c, want)
		}
	}
}

func TestHistogramZeroWeightNodesNeverAppear(t *testing.T) {
	g, err := HistogramGen(6, 5000, []float64{1, 0, 2, 0, 3, 4}, 21)
	if err != nil {
		t.Fatal(err)
	}
	for rq, err := range g.Requests() {
		if err != nil {
			t.Fatal(err)
		}
		for _, x := range []int{rq.Src, rq.Dst} {
			if x == 2 || x == 4 {
				t.Fatalf("zero-weight node %d appeared in %v", x, rq)
			}
		}
	}
}

func TestHistogramRejectsBadWeights(t *testing.T) {
	for name, weights := range map[string][]float64{
		"wrong length": {1, 2},
		"negative":     {1, -1, 1, 1, 1, 1},
		"nan":          {1, math.NaN(), 1, 1, 1, 1},
		"one positive": {0, 0, 1, 0, 0, 0},
		"all zero":     {0, 0, 0, 0, 0, 0},
	} {
		if _, err := HistogramGen(6, 10, weights, 1); err == nil {
			t.Errorf("HistogramGen accepted %s weights", name)
		}
	}
}

func TestReadWeights(t *testing.T) {
	ws, err := ReadWeights(strings.NewReader("# popularity\n1.5\n\n2\n0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 3 || ws[0] != 1.5 || ws[1] != 2 || ws[2] != 0 {
		t.Fatalf("parsed %v", ws)
	}
	if _, err := ReadWeights(strings.NewReader("1\noops\n")); err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("bad weight error %v lacks its line number", err)
	}
}

// TestPhasedBoundariesAreExact pins the phase-chaining contract: the
// stream is exactly phase 0's first M₀ requests, then phase 1's first M₁,
// regardless of how much more each phase generator could yield.
func TestPhasedBoundariesAreExact(t *testing.T) {
	a := SequentialGen(5, 100) // could yield 100; the phase takes 7
	b := UniformGen(5, 50, 4)  // could yield 50; the phase takes 9
	g, err := PhasedGen("two", []Phase{{Gen: a, M: 7}, {Gen: b, M: 9}})
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 16 || g.Nodes() != 5 || g.Label() != "two" {
		t.Fatalf("phased shape %d/%d/%q", g.Len(), g.Nodes(), g.Label())
	}
	got := MustCollect(g)
	wantA, wantB := MustCollect(a), MustCollect(b)
	if got.Len() != 16 {
		t.Fatalf("phased yielded %d requests, want 16", got.Len())
	}
	for i := 0; i < 7; i++ {
		if got.Reqs[i] != wantA.Reqs[i] {
			t.Fatalf("request %d: %v, want phase-0 prefix %v", i, got.Reqs[i], wantA.Reqs[i])
		}
	}
	for i := 0; i < 9; i++ {
		if got.Reqs[7+i] != wantB.Reqs[i] {
			t.Fatalf("request %d: %v, want phase-1 prefix %v", 7+i, got.Reqs[7+i], wantB.Reqs[i])
		}
	}
}

func TestPhasedRejectsBadPhases(t *testing.T) {
	u := UniformGen(5, 10, 1)
	if _, err := PhasedGen("", nil); err == nil {
		t.Error("empty phase list accepted")
	}
	if _, err := PhasedGen("", []Phase{{Gen: u, M: 0}}); err == nil {
		t.Error("zero duration accepted")
	}
	if _, err := PhasedGen("", []Phase{{Gen: u, M: 11}}); err == nil {
		t.Error("duration exceeding a known-length phase accepted")
	}
	if _, err := PhasedGen("", []Phase{{Gen: u, M: 5}, {Gen: UniformGen(6, 10, 1), M: 5}}); err == nil {
		t.Error("mismatched node counts accepted")
	}
}

func TestPhasedUnderrunYieldsError(t *testing.T) {
	// A phase of unknown length (CSV) that under-runs its duration must end
	// the stream with an error, not silently truncate.
	dir := t.TempDir()
	path := filepath.Join(dir, "short.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteCSV(f, Trace{Name: "short", N: 5, Reqs: []sim.Request{{Src: 1, Dst: 2}, {Src: 2, Dst: 3}}}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	cg, err := OpenCSV(path)
	if err != nil {
		t.Fatal(err)
	}
	g, err := PhasedGen("underrun", []Phase{{Gen: cg, M: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Collect(g); err == nil || !strings.Contains(err.Error(), "yielded 2 of 4") {
		t.Fatalf("under-running phase error = %v", err)
	}
}

// TestPhasedStreamIsBoundedMemory is the tentpole's memory claim: a
// 10M-request drifting trace streams through a full statistics pass in
// memory proportional to the demand, far below the ≈160 MB its
// materialized []sim.Request would occupy.
func TestPhasedStreamIsBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("10M-request stream")
	}
	const mPhase = 2_500_000
	phases := make([]Phase, 4)
	for i := range phases {
		phases[i] = Phase{Gen: HotspotGen(256, mPhase, 0.1, 0.9, int64(30+i)), M: mPhase}
	}
	g, err := PhasedGen("10m-drift", phases)
	if err != nil {
		t.Fatal(err)
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	count := 0
	for rq, err := range g.Requests() {
		if err != nil {
			t.Fatal(err)
		}
		if rq.Src < 1 || rq.Src > 256 || rq.Dst < 1 || rq.Dst > 256 || rq.Src == rq.Dst {
			t.Fatalf("bad request %v at %d", rq, count)
		}
		count++
	}
	runtime.ReadMemStats(&after)
	if count != 4*mPhase {
		t.Fatalf("streamed %d requests, want %d", count, 4*mPhase)
	}
	// HeapAlloc can shrink across the run; guard only against growth on the
	// order of the materialized trace (16 bytes × 10M = 160 MB).
	if grown := int64(after.HeapAlloc) - int64(before.HeapAlloc); grown > 32<<20 {
		t.Errorf("streaming 10M requests grew the heap by %d MiB; stream is materializing", grown>>20)
	}
}
