package workload

import (
	"fmt"
	"math/rand"

	"github.com/ksan-net/ksan/internal/sim"
)

// checkPairable rejects node counts that cannot form a single self-loop-free
// request. Generators panic on invalid parameters (matching Temporal's
// contract): before this guard, ProjecToRLike and FacebookLike crashed on an
// out-of-range pairs[0] read when every partner draw collided, and Zipf's
// self-loop remap could not terminate meaningfully for n=1.
func checkPairable(gen string, n int) {
	if n < 2 {
		panic(fmt.Sprintf("workload: %s needs at least 2 nodes to form a request pair, got n=%d", gen, n))
	}
}

// HPCLike substitutes for the DOE mini-app traces used by the paper
// (500 nodes in their setup). HPC applications exchange messages along a
// process grid with strong spatial locality (stencil neighbours), strong
// temporal locality (iterative solvers repeat the same exchanges), and
// occasional butterfly-pattern collectives (rank XOR 2^j partners). The
// generator models exactly those three ingredients:
//
//   - with probability 0.15 the previous request repeats (bursts),
//   - otherwise the source persists with probability 0.75 and the
//     destination is a 3-D torus neighbour of the source, dominated by the
//     x-axis (the stencil sweep direction, so rank-adjacent processes
//     exchange most: the spatial concentration that lets the paper's
//     optimal static tree beat the self-adjusting networks on HPC,
//     Table 1 row 3),
//   - with probability 0.06 the destination is instead a butterfly partner.
//
// The locality here is primarily *spatial* (a near-static sparse stencil),
// which is exactly why Table 8 shows SplayNet slightly ahead of 3-SplayNet
// on HPC: the fixed centroids cut across the stencil's id-adjacent pairs.
func HPCGen(n, m int, seed int64) Generator {
	checkPairable("HPCLike", n)
	return &seqGen{label: "hpc", n: n, m: m, seed: seed,
		start: func(rng *rand.Rand) func() sim.Request {
			dims := cubeDims(n)
			src := 1 + rng.Intn(n)
			last := sim.Request{}
			i := -1
			return func() sim.Request {
				i++
				if i > 0 && rng.Float64() < 0.15 {
					return last
				}
				if rng.Float64() >= 0.75 {
					src = 1 + rng.Intn(n)
				}
				var dst int
				if rng.Float64() < 0.06 {
					dst = butterflyPartner(src, n, rng)
				} else {
					dst = torusNeighbor(src, n, dims, rng)
				}
				if dst == src {
					dst = 1 + src%n
				}
				last = sim.Request{Src: src, Dst: dst}
				return last
			}
		}}
}

// HPCLike is the materialized form of HPCGen.
func HPCLike(n, m int, seed int64) Trace { return MustCollect(HPCGen(n, m, seed)) }

// cubeDims factors n into three near-equal dimensions dx*dy*dz >= n.
func cubeDims(n int) [3]int {
	d := 1
	for d*d*d < n {
		d++
	}
	dims := [3]int{d, d, d}
	// Shrink dimensions while the volume still covers n.
	for i := 0; i < 3; i++ {
		for dims[i] > 1 {
			dims[i]--
			if dims[0]*dims[1]*dims[2] < n {
				dims[i]++
				break
			}
		}
	}
	return dims
}

// torusNeighbor returns a ±1 neighbour of rank src-1 in a dims torus,
// skipping coordinates that fall outside 1..n (ragged last plane). The
// x-axis (consecutive ranks) dominates with weight 0.7, matching the sweep
// direction of stencil codes.
func torusNeighbor(src, n int, dims [3]int, rng *rand.Rand) int {
	r := src - 1
	x := r % dims[0]
	y := (r / dims[0]) % dims[1]
	z := r / (dims[0] * dims[1])
	for try := 0; try < 8; try++ {
		axis := 0
		if p := rng.Float64(); p >= 0.7 {
			if p < 0.9 {
				axis = 1
			} else {
				axis = 2
			}
		}
		dir := 1 - 2*rng.Intn(2)
		nx, ny, nz := x, y, z
		switch axis {
		case 0:
			nx = (x + dir + dims[0]) % dims[0]
		case 1:
			ny = (y + dir + dims[1]) % dims[1]
		default:
			nz = (z + dir + dims[2]) % dims[2]
		}
		nb := nz*dims[0]*dims[1] + ny*dims[0] + nx + 1
		if nb >= 1 && nb <= n && nb != src {
			return nb
		}
	}
	return 1 + rng.Intn(n)
}

// butterflyPartner returns src XOR 2^j clamped into range, the exchange
// partner of power-of-two collectives (allreduce, FFT transposes).
func butterflyPartner(src, n int, rng *rand.Rand) int {
	bits := 0
	for 1<<(bits+1) <= n {
		bits++
	}
	if bits == 0 {
		return 1 + rng.Intn(n)
	}
	p := ((src - 1) ^ (1 << rng.Intn(bits))) + 1
	if p < 1 || p > n {
		return 1 + rng.Intn(n)
	}
	return p
}

// ProjecToRLike substitutes for the ProjecToR/Microsoft datacenter trace
// (100 nodes in the paper's setup). ProjecToR reports sparse, heavily
// skewed rack-to-rack demand: a few stable rack pairs (elephants) carry
// most of the traffic. The generator fixes a static sparse demand graph
// (two to six partners per source) with Zipf-distributed pair popularity
// (s=1.1) and moderate burstiness (repeat probability 0.25) — the
// medium-to-low temporal locality regime where the paper's centroid
// networks win (Table 8). The skew is deliberately moderate: with extreme
// pair skew SplayNet pins the few elephants at distance one and wins,
// while the many-warm-pairs regime rewards the centroid net's bounded,
// subtree-local adjustments.
func ProjectorGen(n, m int, seed int64) Generator {
	checkPairable("ProjecToRLike", n)
	return &seqGen{label: "projector", n: n, m: m, seed: seed,
		start: pairPopulationStart(n, 2, 5, 4, 0.25)}
}

// ProjecToRLike is the materialized form of ProjectorGen.
func ProjecToRLike(n, m int, seed int64) Trace { return MustCollect(ProjectorGen(n, m, seed)) }

// pairPopulationStart builds the shared per-pass state of the static-pair-
// population traces (ProjecToR, Facebook): each source draws minPartners +
// Intn(spread) uniform partners, the pair list is shuffled, pair popularity
// is Zipf(1.1) over the shuffled order, and the previous request repeats
// with probability repeat. The per-pass cost is O(pairs) memory — the static
// demand graph, not the trace.
func pairPopulationStart(n, minPartners, spread, capPerNode int, repeat float64) func(rng *rand.Rand) func() sim.Request {
	return func(rng *rand.Rand) func() sim.Request {
		pairs := make([]sim.Request, 0, capPerNode*n)
		for u := 1; u <= n; u++ {
			partners := minPartners + rng.Intn(spread)
			for p := 0; p < partners; p++ {
				v := samplePartner(u, n, rng)
				pairs = append(pairs, sim.Request{Src: u, Dst: v})
			}
		}
		rng.Shuffle(len(pairs), func(i, j int) { pairs[i], pairs[j] = pairs[j], pairs[i] })
		zipf := newZipfSampler(len(pairs), 1.1)
		last := pairs[0]
		i := -1
		return func() sim.Request {
			i++
			if i > 0 && rng.Float64() < repeat {
				return last
			}
			last = pairs[zipf.sample(rng)-1]
			return last
		}
	}
}

// FacebookLike substitutes for the Facebook datacenter trace (10^4 nodes in
// the paper's setup). Roy et al. report wide but structured communication:
// service dependencies (web→cache, cache→db) form a large yet stable set
// of rack pairs with heavy-tailed popularity, and temporal locality is low
// (the paper groups Facebook with its low-locality traces; its Table 8
// average request cost of 8.2 on 10⁴ nodes — well below the oblivious
// ~2·log₂ n — implies hot pairs dominate). The generator fixes a static
// pair population of about 6 pairs per node with Zipf popularity (s=1.1)
// and a small repeat probability (0.05).
func FacebookGen(n, m int, seed int64) Generator {
	checkPairable("FacebookLike", n)
	return &seqGen{label: "facebook", n: n, m: m, seed: seed,
		start: pairPopulationStart(n, 3, 7, 6, 0.05)}
}

// FacebookLike is the materialized form of FacebookGen.
func FacebookLike(n, m int, seed int64) Trace { return MustCollect(FacebookGen(n, m, seed)) }

// Zipf draws m requests with both endpoints Zipf(s)-distributed over
// independently permuted ranks; a generic skewed workload used in tests and
// examples. Self-loop collisions resample the destination (the former
// "successor node" remap leaked the source's popularity mass onto a fixed
// neighbour, distorting the destination marginal).
func ZipfGen(n, m int, s float64, seed int64) Generator {
	checkPairable("Zipf", n)
	return &seqGen{label: "zipf", n: n, m: m, seed: seed,
		start: func(rng *rand.Rand) func() sim.Request {
			perm := rng.Perm(n)
			zipf := newZipfSampler(n, s)
			return func() sim.Request {
				u := perm[zipf.sample(rng)-1] + 1
				v := perm[zipf.sample(rng)-1] + 1
				for v == u {
					v = perm[zipf.sample(rng)-1] + 1
				}
				return sim.Request{Src: u, Dst: v}
			}
		}}
}

// Zipf is the materialized form of ZipfGen.
func Zipf(n, m int, s float64, seed int64) Trace { return MustCollect(ZipfGen(n, m, s, seed)) }

// samplePartner draws a uniform partner for u, resampling self-loops. The
// former "skip the slot on collision" scheme silently dropped partners — a
// bias at any n, and a crash (an empty static pair set) for tiny n.
func samplePartner(u, n int, rng *rand.Rand) int {
	v := 1 + rng.Intn(n)
	for v == u {
		v = 1 + rng.Intn(n)
	}
	return v
}
