package workload

import (
	"bufio"
	"fmt"
	"io"
	"iter"
	"math/rand"
	"strconv"
	"strings"

	"github.com/ksan-net/ksan/internal/sim"
)

// This file ports the YCSB generator taxonomy (the yabf / scylla-bench
// lineage: hotspot, exponential, histogram-from-file, latest,
// sequential-visit-all) onto the streaming Generator interface, and adds
// the piece no YCSB clone has: Phased, which chains (generator, duration)
// phases into one drifting trace. Together with the trace-complexity kinds
// (Temporal, Zipf, ...) they let experiment files express moving demand —
// flash crowds, diurnal skew rotation, hot-set drift — which is exactly
// the regime where the paper's trigger×adjuster compositions separate.

// HotspotGen streams requests whose endpoints split the node space into a
// small hot set and a cold rest (YCSB's hotspot distribution): a fraction
// hotFrac of the nodes (scattered over the id space by a seeded
// permutation, so hot nodes are not id-adjacent and the tree actually has
// to move them) receives a fraction hotOpn of the endpoint draws; both
// sets are uniform inside. Each endpoint flips the hot coin independently;
// self-loops redraw the destination, coin included.
//
// hotFrac must leave both sets non-empty (at least one hot and one cold
// node); hotOpn lies in (0,1).
func HotspotGen(n, m int, hotFrac, hotOpn float64, seed int64) Generator {
	checkPairable("Hotspot", n)
	hot := int(hotFrac * float64(n))
	if hotFrac <= 0 || hotFrac >= 1 || hot < 1 || hot >= n {
		panic(fmt.Sprintf("workload: hotspot fraction %v leaves an empty hot or cold set at n=%d", hotFrac, n))
	}
	if hotOpn <= 0 || hotOpn >= 1 {
		panic(fmt.Sprintf("workload: hotspot operation fraction %v outside (0,1)", hotOpn))
	}
	return &seqGen{label: fmt.Sprintf("hotspot-%.2f-%.2f", hotFrac, hotOpn), n: n, m: m, seed: seed,
		start: func(rng *rand.Rand) func() sim.Request {
			perm := rng.Perm(n) // perm[:hot] is the hot set, scattered over 1..n
			endpoint := func() int {
				if rng.Float64() < hotOpn {
					return perm[rng.Intn(hot)] + 1
				}
				return perm[hot+rng.Intn(n-hot)] + 1
			}
			return func() sim.Request {
				u := endpoint()
				v := endpoint()
				for v == u {
					v = endpoint()
				}
				return sim.Request{Src: u, Dst: v}
			}
		}}
}

// ExponentialGen streams requests whose endpoints decay exponentially over
// permuted ranks (YCSB's exponential distribution): rank r has weight
// exp(-s·(r-1)/n), so s sets how many e-foldings of popularity span the
// node space regardless of n. Like Zipf, both endpoints share one rank
// permutation; self-loops resample the destination.
func ExponentialGen(n, m int, s float64, seed int64) Generator {
	checkPairable("Exponential", n)
	if s <= 0 {
		panic(fmt.Sprintf("workload: exponential decay %v must be positive", s))
	}
	return &seqGen{label: fmt.Sprintf("exponential-%.2f", s), n: n, m: m, seed: seed,
		start: func(rng *rand.Rand) func() sim.Request {
			perm := rng.Perm(n)
			exp := newExpSampler(n, s)
			return func() sim.Request {
				u := perm[exp.sample(rng)-1] + 1
				v := perm[exp.sample(rng)-1] + 1
				for v == u {
					v = perm[exp.sample(rng)-1] + 1
				}
				return sim.Request{Src: u, Dst: v}
			}
		}}
}

// HistogramGen streams requests whose endpoints follow an explicit node
// popularity histogram (YCSB's histogram-from-file distribution):
// weights[i] is the relative popularity of node i+1, so measured
// per-node demand drops in directly. Weights must be finite, non-negative,
// and not all zero; self-loops resample the destination. The weights slice
// is captured, not copied — callers must not mutate it afterwards.
func HistogramGen(n, m int, weights []float64, seed int64) (Generator, error) {
	checkPairable("Histogram", n)
	if len(weights) != n {
		return nil, fmt.Errorf("workload: histogram has %d weights for %d nodes", len(weights), n)
	}
	sampler, err := newWeightSampler(weights)
	if err != nil {
		return nil, err
	}
	positive := 0
	for _, w := range weights {
		if w > 0 {
			positive++
		}
	}
	if positive < 2 {
		return nil, fmt.Errorf("workload: histogram needs at least two positive weights to form request pairs")
	}
	return &seqGen{label: "histogram", n: n, m: m, seed: seed,
		start: func(rng *rand.Rand) func() sim.Request {
			return func() sim.Request {
				u := sampler.sample(rng)
				v := sampler.sample(rng)
				for v == u {
					v = sampler.sample(rng)
				}
				return sim.Request{Src: u, Dst: v}
			}
		}}, nil
}

// ReadWeights parses the node-popularity file of the histogram trace
// kind: one weight per line (line i holds node i's weight), with blank
// lines and #-comment lines skipped. Errors carry the line number.
func ReadWeights(r io.Reader) ([]float64, error) {
	var weights []float64
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text())
		if s == "" || strings.HasPrefix(s, "#") {
			continue
		}
		w, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: bad weight %q", line, s)
		}
		weights = append(weights, w)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: reading weights: %w", err)
	}
	return weights, nil
}

// LatestGen streams requests with recency-driven endpoint popularity
// (YCSB's "latest" distribution, adapted from keys to communication
// endpoints): endpoints are drawn by Zipf(s) *stack distance* over a
// most-recently-used list and moved to its front, so whichever nodes
// communicated recently are the likely endpoints of the next request and
// the hot set itself drifts as rare draws promote cold nodes. This is
// temporal locality over *nodes* where Temporal has it over *pairs*.
func LatestGen(n, m int, s float64, seed int64) Generator {
	checkPairable("Latest", n)
	if s <= 0 {
		panic(fmt.Sprintf("workload: latest skew %v must be positive", s))
	}
	return &seqGen{label: fmt.Sprintf("latest-%.2f", s), n: n, m: m, seed: seed,
		start: func(rng *rand.Rand) func() sim.Request {
			mru := rng.Perm(n) // mru[d] is the node (0-based) at stack distance d
			zipf := newZipfSampler(n, s)
			draw := func() (node, depth int) {
				d := zipf.sample(rng) - 1
				return mru[d], d
			}
			promote := func(node, depth int) {
				copy(mru[1:depth+1], mru[:depth])
				mru[0] = node
			}
			return func() sim.Request {
				u, du := draw()
				promote(u, du)
				v, dv := draw()
				for v == u {
					v, dv = draw()
				}
				promote(v, dv)
				return sim.Request{Src: u + 1, Dst: v + 1}
			}
		}}
}

// SequentialGen streams a deterministic lexicographic sweep over all
// ordered self-loop-free pairs (scylla-bench's sequential visit-everything
// mode): request i is pair i mod n·(n-1) of the sequence (1,2), (1,3), ...,
// (n,n-1), wrapping as often as m requires. It takes no seed — every pass
// is the same arithmetic — and is the worst case for demand-awareness:
// perfectly uniform demand with zero temporal locality, the regime where
// Lemma 9 says no self-adjusting network can beat the static tree.
func SequentialGen(n, m int) Generator {
	checkPairable("Sequential", n)
	return &seqGen{label: "sequential", n: n, m: m,
		start: func(*rand.Rand) func() sim.Request {
			i := -1
			return func() sim.Request {
				i++
				j := i % (n * (n - 1))
				u := j/(n-1) + 1
				v := j%(n-1) + 1
				if v >= u {
					v++
				}
				return sim.Request{Src: u, Dst: v}
			}
		}}
}

// Phase is one segment of a phased trace: M requests drawn from the front
// of Gen's stream.
type Phase struct {
	Gen Generator
	M   int
}

// PhasedGen chains phases into a single drifting stream: phase k
// contributes exactly its M requests, then the next phase starts — flash
// crowds, diurnal skew rotation, and hot-set drift are just phase lists.
// All phases must address the same node count, and no phase may promise
// fewer requests than its duration (generators of unknown length are
// checked at iteration time: a phase under-running its duration ends the
// stream with an error).
func PhasedGen(label string, phases []Phase) (Generator, error) {
	if len(phases) == 0 {
		return nil, fmt.Errorf("workload: phased trace needs at least one phase")
	}
	n := phases[0].Gen.Nodes()
	total := 0
	for i, ph := range phases {
		if ph.Gen.Nodes() != n {
			return nil, fmt.Errorf("workload: phase %d addresses %d nodes; phase 0 addresses %d", i, ph.Gen.Nodes(), n)
		}
		if ph.M <= 0 {
			return nil, fmt.Errorf("workload: phase %d duration %d must be positive", i, ph.M)
		}
		if l := ph.Gen.Len(); l != UnknownLen && l < ph.M {
			return nil, fmt.Errorf("workload: phase %d generator %q yields %d requests; duration needs %d", i, ph.Gen.Label(), l, ph.M)
		}
		total += ph.M
	}
	if label == "" {
		label = "phased"
	}
	return &phasedGen{label: label, n: n, m: total, phases: phases}, nil
}

type phasedGen struct {
	label  string
	n, m   int
	phases []Phase
}

func (g *phasedGen) Label() string { return g.label }
func (g *phasedGen) Nodes() int    { return g.n }
func (g *phasedGen) Len() int      { return g.m }

func (g *phasedGen) Requests() iter.Seq2[sim.Request, error] {
	return func(yield func(sim.Request, error) bool) {
		for i, ph := range g.phases {
			taken := 0
			for rq, err := range ph.Gen.Requests() {
				if err != nil {
					yield(sim.Request{}, fmt.Errorf("workload: phase %d (%s): %w", i, ph.Gen.Label(), err))
					return
				}
				if !yield(rq, nil) {
					return
				}
				if taken++; taken == ph.M {
					break
				}
			}
			if taken < ph.M {
				yield(sim.Request{}, fmt.Errorf("workload: phase %d (%s) yielded %d of %d requests", i, ph.Gen.Label(), taken, ph.M))
				return
			}
		}
	}
}
