// Package workload provides the communication workloads of the paper's
// evaluation (Section 5): the uniform workload, the synthetic
// temporal-locality workloads, and trace-like generators that substitute
// for the three real datasets (DOE HPC mini-apps, ProjecToR, and Facebook
// datacenter traces), which are not available offline. The substitutions
// preserve the properties the paper's analysis relies on — temporal
// locality, spatial locality, sparsity and skew (the trace-complexity axes
// of Avin et al. that the paper cites) — and are documented in DESIGN.md.
//
// Every workload is a streaming Generator: a deterministic, resettable
// request stream (see the Generator contract) that consumers iterate
// without ever materializing the full trace, plus a YCSB-grade taxonomy
// (hotspot, exponential, histogram, latest, sequential) and declaratively
// phased drifting scenarios (Phased) on top. The historical materializing
// functions (Uniform, Temporal, ...) remain as thin Collect wrappers and
// produce bit-identical request slices.
//
// All generators are deterministic in their seed.
package workload

import (
	"fmt"
	"math/rand"

	"github.com/ksan-net/ksan/internal/sim"
)

// Trace is a finite communication sequence σ over nodes 1..N, the fully
// materialized form of a Generator (and itself the trivial Generator).
type Trace struct {
	// Name labels the workload in reports (e.g. "temporal-0.75").
	Name string
	// N is the number of network nodes.
	N int
	// Reqs is the request sequence.
	Reqs []sim.Request
}

// Len returns the number of requests.
func (tr Trace) Len() int { return len(tr.Reqs) }

// Validate checks all endpoints lie in 1..N and no request is a self-loop.
func (tr Trace) Validate() error {
	for i, rq := range tr.Reqs {
		if rq.Src < 1 || rq.Src > tr.N || rq.Dst < 1 || rq.Dst > tr.N {
			return fmt.Errorf("workload: request %d (%d→%d) outside 1..%d", i, rq.Src, rq.Dst, tr.N)
		}
		if rq.Src == rq.Dst {
			return fmt.Errorf("workload: request %d is a self-loop at %d", i, rq.Src)
		}
	}
	return nil
}

// UniformGen streams m requests with both endpoints uniform over 1..n (no
// self-loops): the all-to-all pattern of Section 3's uniform workload.
func UniformGen(n, m int, seed int64) Generator {
	checkPairable("Uniform", n)
	return &seqGen{label: "uniform", n: n, m: m, seed: seed,
		start: func(rng *rand.Rand) func() sim.Request {
			return func() sim.Request { return randomPair(n, rng) }
		}}
}

// Uniform is the materialized form of UniformGen.
func Uniform(n, m int, seed int64) Trace { return MustCollect(UniformGen(n, m, seed)) }

// TemporalGen streams the paper's synthetic workload with temporal
// complexity parameter p: with probability p the previous request is
// repeated (the definition the paper takes from Avin et al.), otherwise a
// fresh pair is drawn with mildly Zipf-skewed endpoints (s=0.9 over
// independently permuted ranks).
//
// The skew of the fresh draws is a documented calibration (DESIGN.md): the
// paper's Tables 4–7 show the demand-aware optimal tree beating the full
// tree by ≈1.8× on these workloads, which is impossible under uniform
// fresh draws — Lemma 9 pins the uniform-demand optimum within O(n²) of
// the full tree — so the source generator of Avin et al. must skew the
// non-repeat traffic. The repeat semantics match the paper exactly.
func TemporalGen(n, m int, p float64, seed int64) Generator {
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("workload: temporal parameter %v outside [0,1)", p))
	}
	checkPairable("Temporal", n)
	return &seqGen{label: fmt.Sprintf("temporal-%.2f", p), n: n, m: m, seed: seed,
		start: func(rng *rand.Rand) func() sim.Request {
			permSrc := rng.Perm(n)
			permDst := rng.Perm(n)
			zipf := newZipfSampler(n, 0.9)
			fresh := func() sim.Request {
				u := permSrc[zipf.sample(rng)-1] + 1
				v := permDst[zipf.sample(rng)-1] + 1
				for v == u {
					v = permDst[zipf.sample(rng)-1] + 1
				}
				return sim.Request{Src: u, Dst: v}
			}
			// The pre-stream draw mirrors the historical generator: its
			// value is superseded by the first request's own fresh draw,
			// but its rng consumption is part of the pinned stream.
			last := fresh()
			i := -1
			return func() sim.Request {
				i++
				if i > 0 && rng.Float64() < p {
					return last
				}
				last = fresh()
				return last
			}
		}}
}

// Temporal is the materialized form of TemporalGen.
func Temporal(n, m int, p float64, seed int64) Trace {
	return MustCollect(TemporalGen(n, m, p, seed))
}

// randomPair draws a uniform ordered pair with distinct endpoints.
func randomPair(n int, rng *rand.Rand) sim.Request {
	u := 1 + rng.Intn(n)
	v := 1 + rng.Intn(n-1)
	if v >= u {
		v++
	}
	return sim.Request{Src: u, Dst: v}
}
