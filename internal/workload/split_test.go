package workload

import (
	"errors"
	"iter"
	"reflect"
	"testing"

	"github.com/ksan-net/ksan/internal/sim"
)

func drain(t *testing.T, g Generator) []sim.Request {
	t.Helper()
	var out []sim.Request
	for rq, err := range g.Requests() {
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, rq)
	}
	return out
}

// TestSplitGenPartition pins the round-robin partition law: interleaving
// the c splits by position reconstructs the underlying stream element for
// element, and each split's Len matches what it yields.
func TestSplitGenPartition(t *testing.T) {
	for _, c := range []int{1, 2, 3, 7} {
		g := TemporalGen(64, 1000, 0.5, 9)
		want := drain(t, g)
		parts := make([][]sim.Request, c)
		for i := 0; i < c; i++ {
			sg := SplitGen(g, i, c)
			parts[i] = drain(t, sg)
			if got := sg.Len(); got != len(parts[i]) {
				t.Errorf("c=%d split %d: Len() = %d, yielded %d", c, i, got, len(parts[i]))
			}
			if sg.Nodes() != g.Nodes() {
				t.Errorf("c=%d split %d: Nodes() = %d, want %d", c, i, sg.Nodes(), g.Nodes())
			}
		}
		var rebuilt []sim.Request
		for pos := 0; pos < len(want); pos++ {
			rebuilt = append(rebuilt, parts[pos%c][pos/c])
		}
		if !reflect.DeepEqual(rebuilt, want) {
			t.Errorf("c=%d: interleaved splits diverge from the underlying stream", c)
		}
	}
}

func TestSplitGenIdentity(t *testing.T) {
	g := UniformGen(16, 100, 1)
	if SplitGen(g, 0, 1) != g {
		t.Errorf("SplitGen(g, 0, 1) must be g itself")
	}
}

func TestSplitGenLabelAndLen(t *testing.T) {
	g := UniformGen(16, 10, 1)
	s := SplitGen(g, 2, 4)
	if got, want := s.Label(), g.Label()+"[2/4]"; got != want {
		t.Errorf("Label() = %q, want %q", got, want)
	}
	// 10 = 4*2 + 2: splits 0 and 1 get 3, splits 2 and 3 get 2.
	for i, want := range []int{3, 3, 2, 2} {
		if got := SplitGen(g, i, 4).Len(); got != want {
			t.Errorf("split %d Len() = %d, want %d", i, got, want)
		}
	}
}

func TestSplitGenPanics(t *testing.T) {
	g := UniformGen(16, 10, 1)
	for _, tc := range []struct{ i, c int }{{0, 0}, {-1, 2}, {2, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SplitGen(g, %d, %d) must panic", tc.i, tc.c)
				}
			}()
			SplitGen(g, tc.i, tc.c)
		}()
	}
}

// errAfterGen fails after a fixed number of requests.
type errAfterGen struct {
	m    int
	boom error
}

func (e errAfterGen) Label() string { return "err-after" }
func (e errAfterGen) Nodes() int    { return 8 }
func (e errAfterGen) Len() int      { return UnknownLen }
func (e errAfterGen) Requests() iter.Seq2[sim.Request, error] {
	return func(yield func(sim.Request, error) bool) {
		for i := 0; i < e.m; i++ {
			if !yield(sim.Request{Src: 1 + i%8, Dst: 1 + (i+3)%8}, nil) {
				return
			}
		}
		yield(sim.Request{}, e.boom)
	}
}

// TestSplitGenError pins error surfacing: every split of a failing stream
// reports the terminal error, even splits whose positions never include
// the failure point — a failed stream must never look like a short one.
func TestSplitGenError(t *testing.T) {
	boom := errors.New("stream torn")
	g := errAfterGen{m: 10, boom: boom}
	for i := 0; i < 3; i++ {
		var got error
		n := 0
		for _, err := range SplitGen(g, i, 3).Requests() {
			if err != nil {
				got = err
				break
			}
			n++
		}
		if !errors.Is(got, boom) {
			t.Errorf("split %d: error = %v, want the terminal stream error", i, got)
		}
	}
	if SplitGen(g, 0, 3).Len() != UnknownLen {
		t.Errorf("unknown underlying length must stay unknown")
	}
}
