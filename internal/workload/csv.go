package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"github.com/ksan-net/ksan/internal/sim"
)

// WriteCSV serializes a trace as CSV with a header row ("src,dst") preceded
// by a comment-free metadata row "#name,n". The format is what
// cmd/ksantrace produces and consumes.
func WriteCSV(w io.Writer, tr Trace) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"#" + tr.Name, strconv.Itoa(tr.N)}); err != nil {
		return fmt.Errorf("workload: writing trace header: %w", err)
	}
	if err := cw.Write([]string{"src", "dst"}); err != nil {
		return fmt.Errorf("workload: writing column header: %w", err)
	}
	for _, rq := range tr.Reqs {
		if err := cw.Write([]string{strconv.Itoa(rq.Src), strconv.Itoa(rq.Dst)}); err != nil {
			return fmt.Errorf("workload: writing request: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a trace produced by WriteCSV.
func ReadCSV(r io.Reader) (Trace, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 2
	head, err := cr.Read()
	if err != nil {
		return Trace{}, fmt.Errorf("workload: reading trace header: %w", err)
	}
	if len(head[0]) == 0 || head[0][0] != '#' {
		return Trace{}, fmt.Errorf("workload: missing #name metadata row")
	}
	n, err := strconv.Atoi(head[1])
	if err != nil || n < 1 {
		return Trace{}, fmt.Errorf("workload: bad node count %q", head[1])
	}
	tr := Trace{Name: head[0][1:], N: n}
	if _, err := cr.Read(); err != nil { // column header
		return Trace{}, fmt.Errorf("workload: reading column header: %w", err)
	}
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return Trace{}, fmt.Errorf("workload: reading request: %w", err)
		}
		u, err1 := strconv.Atoi(rec[0])
		v, err2 := strconv.Atoi(rec[1])
		if err1 != nil || err2 != nil {
			return Trace{}, fmt.Errorf("workload: bad request record %v", rec)
		}
		tr.Reqs = append(tr.Reqs, sim.Request{Src: u, Dst: v})
	}
	if err := tr.Validate(); err != nil {
		return Trace{}, err
	}
	return tr, nil
}
