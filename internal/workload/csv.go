package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"github.com/ksan-net/ksan/internal/sim"
)

// WriteCSV serializes a trace as CSV with a header row ("src,dst") preceded
// by a comment-free metadata row "#name,n". The format is what
// cmd/ksantrace produces and consumes.
func WriteCSV(w io.Writer, tr Trace) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"#" + tr.Name, strconv.Itoa(tr.N)}); err != nil {
		return fmt.Errorf("workload: writing trace header: %w", err)
	}
	if err := cw.Write([]string{"src", "dst"}); err != nil {
		return fmt.Errorf("workload: writing column header: %w", err)
	}
	for _, rq := range tr.Reqs {
		if err := cw.Write([]string{strconv.Itoa(rq.Src), strconv.Itoa(rq.Dst)}); err != nil {
			return fmt.Errorf("workload: writing request: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a trace produced by WriteCSV. Errors name the offending
// line (as counted by the CSV reader) and field, so a bad row in a
// million-request trace file is findable: "line 7042: bad dst "1o24"".
func ReadCSV(r io.Reader) (Trace, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 2
	head, err := cr.Read()
	if err != nil {
		return Trace{}, fmt.Errorf("workload: reading trace header: %w", err)
	}
	if len(head[0]) == 0 || head[0][0] != '#' {
		return Trace{}, fmt.Errorf("workload: line 1: missing #name metadata row (got %q)", head[0])
	}
	n, err := strconv.Atoi(head[1])
	if err != nil || n < 1 {
		return Trace{}, fmt.Errorf("workload: line 1: bad node count %q", head[1])
	}
	tr := Trace{Name: head[0][1:], N: n}
	if _, err := cr.Read(); err != nil { // column header
		return Trace{}, fmt.Errorf("workload: reading column header: %w", err)
	}
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			// csv.ParseError already carries the line number.
			return Trace{}, fmt.Errorf("workload: reading request: %w", err)
		}
		line, _ := cr.FieldPos(0)
		u, uerr := strconv.Atoi(rec[0])
		if uerr != nil {
			return Trace{}, fmt.Errorf("workload: line %d: bad src %q", line, rec[0])
		}
		v, verr := strconv.Atoi(rec[1])
		if verr != nil {
			return Trace{}, fmt.Errorf("workload: line %d: bad dst %q", line, rec[1])
		}
		if u < 1 || u > n || v < 1 || v > n {
			return Trace{}, fmt.Errorf("workload: line %d: request %d→%d outside 1..%d", line, u, v, n)
		}
		if u == v {
			return Trace{}, fmt.Errorf("workload: line %d: self-loop at %d", line, u)
		}
		tr.Reqs = append(tr.Reqs, sim.Request{Src: u, Dst: v})
	}
	return tr, nil
}
