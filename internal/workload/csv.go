package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"iter"
	"os"
	"strconv"

	"github.com/ksan-net/ksan/internal/sim"
)

// WriteCSV serializes a trace as CSV with a header row ("src,dst") preceded
// by a comment-free metadata row "#name,n". The format is what
// cmd/ksantrace produces and consumes.
func WriteCSV(w io.Writer, tr Trace) error { return WriteCSVFrom(w, tr) }

// WriteCSVFrom serializes a generator's stream as CSV without materializing
// it: requests pass from the generator to the writer one at a time, so
// trace files of any length stream through constant memory.
func WriteCSVFrom(w io.Writer, g Generator) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"#" + g.Label(), strconv.Itoa(g.Nodes())}); err != nil {
		return fmt.Errorf("workload: writing trace header: %w", err)
	}
	if err := cw.Write([]string{"src", "dst"}); err != nil {
		return fmt.Errorf("workload: writing column header: %w", err)
	}
	for rq, err := range g.Requests() {
		if err != nil {
			return fmt.Errorf("workload: streaming %q: %w", g.Label(), err)
		}
		if err := cw.Write([]string{strconv.Itoa(rq.Src), strconv.Itoa(rq.Dst)}); err != nil {
			return fmt.Errorf("workload: writing request: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// readCSVHeader consumes the "#name,n" metadata row and the "src,dst"
// column header from a just-opened CSV reader.
func readCSVHeader(cr *csv.Reader) (name string, n int, err error) {
	head, err := cr.Read()
	if err != nil {
		return "", 0, fmt.Errorf("workload: reading trace header: %w", err)
	}
	if len(head[0]) == 0 || head[0][0] != '#' {
		return "", 0, fmt.Errorf("workload: line 1: missing #name metadata row (got %q)", head[0])
	}
	n, err = strconv.Atoi(head[1])
	if err != nil || n < 1 {
		return "", 0, fmt.Errorf("workload: line 1: bad node count %q", head[1])
	}
	if _, err := cr.Read(); err != nil { // column header
		return "", 0, fmt.Errorf("workload: reading column header: %w", err)
	}
	return head[0][1:], n, nil
}

// csvRequests yields the request rows of a CSV reader whose header has
// already been consumed. Errors name the offending line (as counted by the
// CSV reader) and field, so a bad row in a million-request trace file is
// findable: "line 7042: bad dst "1o24"". An error ends the stream.
func csvRequests(cr *csv.Reader, n int) iter.Seq2[sim.Request, error] {
	return func(yield func(sim.Request, error) bool) {
		for {
			rec, err := cr.Read()
			if err == io.EOF {
				return
			}
			if err != nil {
				// csv.ParseError already carries the line number.
				yield(sim.Request{}, fmt.Errorf("workload: reading request: %w", err))
				return
			}
			line, _ := cr.FieldPos(0)
			u, uerr := strconv.Atoi(rec[0])
			if uerr != nil {
				yield(sim.Request{}, fmt.Errorf("workload: line %d: bad src %q", line, rec[0]))
				return
			}
			v, verr := strconv.Atoi(rec[1])
			if verr != nil {
				yield(sim.Request{}, fmt.Errorf("workload: line %d: bad dst %q", line, rec[1]))
				return
			}
			if u < 1 || u > n || v < 1 || v > n {
				yield(sim.Request{}, fmt.Errorf("workload: line %d: request %d→%d outside 1..%d", line, u, v, n))
				return
			}
			if u == v {
				yield(sim.Request{}, fmt.Errorf("workload: line %d: self-loop at %d", line, u))
				return
			}
			if !yield(sim.Request{Src: u, Dst: v}, nil) {
				return
			}
		}
	}
}

func newCSVReader(r io.Reader) *csv.Reader {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 2
	return cr
}

// ReadCSV parses a trace produced by WriteCSV, materializing it. It is the
// in-memory convenience over the same row parser that backs CSVGenerator.
func ReadCSV(r io.Reader) (Trace, error) {
	cr := newCSVReader(r)
	name, n, err := readCSVHeader(cr)
	if err != nil {
		return Trace{}, err
	}
	tr := Trace{Name: name, N: n}
	for rq, err := range csvRequests(cr, n) {
		if err != nil {
			return Trace{}, err
		}
		tr.Reqs = append(tr.Reqs, rq)
	}
	return tr, nil
}

// CSVGenerator streams a trace file row by row: the csv trace kind no
// longer loads whole files. Its Len is UnknownLen (counting would mean a
// full scan); each Requests pass re-opens the file, so passes are
// independent and the generator holds no descriptor between them.
type CSVGenerator struct {
	path string
	name string
	n    int
}

// OpenCSV validates the header of the trace file at path (its name and
// node count become the generator's Label and Nodes) and returns a
// streaming generator over its rows. The file itself is opened per pass,
// not held.
func OpenCSV(path string) (*CSVGenerator, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("workload: opening trace: %w", err)
	}
	defer f.Close()
	name, n, err := readCSVHeader(newCSVReader(f))
	if err != nil {
		return nil, err
	}
	return &CSVGenerator{path: path, name: name, n: n}, nil
}

func (g *CSVGenerator) Label() string { return g.name }
func (g *CSVGenerator) Nodes() int    { return g.n }
func (g *CSVGenerator) Len() int      { return UnknownLen }

func (g *CSVGenerator) Requests() iter.Seq2[sim.Request, error] {
	return func(yield func(sim.Request, error) bool) {
		f, err := os.Open(g.path)
		if err != nil {
			yield(sim.Request{}, fmt.Errorf("workload: opening trace: %w", err))
			return
		}
		defer f.Close()
		cr := newCSVReader(f)
		name, n, err := readCSVHeader(cr)
		if err != nil {
			yield(sim.Request{}, err)
			return
		}
		// The file may have been rewritten between passes; the stream must
		// still match the generator's advertised shape.
		if name != g.name || n != g.n {
			yield(sim.Request{}, fmt.Errorf("workload: %s changed underfoot: header %q/%d, opened as %q/%d", g.path, name, n, g.name, g.n))
			return
		}
		for rq, err := range csvRequests(cr, n) {
			if !yield(rq, err) || err != nil {
				return
			}
		}
	}
}
