package workload

import (
	"fmt"
	"iter"
	"math/rand"

	"github.com/ksan-net/ksan/internal/sim"
)

// Generator is a deterministic, resettable request stream: the streaming
// form of a workload that every consumer (the engine, the spec layer, the
// CLIs) iterates instead of materializing a []sim.Request, so trace length
// is never memory-bound.
//
// The contract (DESIGN.md §10):
//
//   - Deterministic: a Generator is an immutable recipe. Every call to
//     Requests yields the same sequence, element for element — that call
//     IS the reset operation; there is no mutable cursor to rewind.
//   - Resettable and concurrently iterable: each Requests call owns its
//     iteration state (its own rand.Rand, recency lists, phase cursors),
//     so independent passes may run on different goroutines at once. Grid
//     cells sharing one trace each take their own pass.
//   - Known width, optional length: Nodes is always known (it sizes the
//     networks built for the stream); Len returns the total request count
//     or UnknownLen for sources that cannot know it without a full scan
//     (e.g. CSV files read line by line).
//   - Errors end the stream: a yielded non-nil error (a malformed CSV
//     line, an I/O failure) is terminal; no further requests follow it.
//     Purely synthetic generators never yield one.
//
// workload.Trace is the trivial implementation: a fully materialized
// stream whose passes range over the slice.
type Generator interface {
	// Label names the workload in reports (e.g. "temporal-0.75").
	Label() string
	// Nodes returns the number of network nodes the stream addresses;
	// every yielded request has both endpoints in 1..Nodes().
	Nodes() int
	// Len returns the total number of requests the stream yields, or
	// UnknownLen when the length is unknowable without consuming it.
	Len() int
	// Requests returns a fresh, deterministic pass over the stream.
	Requests() iter.Seq2[sim.Request, error]
}

// UnknownLen is the Len of a Generator whose stream length is unknowable
// up front (file-backed sources).
const UnknownLen = -1

// Label returns tr.Name: a Trace is the trivial, fully materialized
// Generator.
func (tr Trace) Label() string { return tr.Name }

// Nodes returns tr.N.
func (tr Trace) Nodes() int { return tr.N }

// Requests yields the materialized request slice; every pass is identical
// and passes never error.
func (tr Trace) Requests() iter.Seq2[sim.Request, error] {
	return func(yield func(sim.Request, error) bool) {
		for _, rq := range tr.Reqs {
			if !yield(rq, nil) {
				return
			}
		}
	}
}

// Collect materializes a generator into a Trace, the historical in-memory
// form. It is the bridge for consumers that genuinely need random access
// (demand aggregation, statistics requiring two passes); everything else
// should iterate Requests directly. Generators of unknown length collect
// into however many requests the stream yields.
func Collect(g Generator) (Trace, error) {
	tr := Trace{Name: g.Label(), N: g.Nodes()}
	if m := g.Len(); m > 0 {
		tr.Reqs = make([]sim.Request, 0, m)
	}
	for rq, err := range g.Requests() {
		if err != nil {
			return tr, err
		}
		tr.Reqs = append(tr.Reqs, rq)
	}
	return tr, nil
}

// MustCollect is Collect for generators that cannot error (every synthetic
// kind); it panics on a stream error, which on those kinds is a bug.
func MustCollect(g Generator) Trace {
	tr, err := Collect(g)
	if err != nil {
		panic(fmt.Sprintf("workload: collecting %q: %v", g.Label(), err))
	}
	return tr
}

// Relabel returns a view of g whose Label is name (report labels are
// data, not identity: the stream is untouched).
func Relabel(g Generator, name string) Generator {
	if name == "" || name == g.Label() {
		return g
	}
	return relabeled{Generator: g, label: name}
}

type relabeled struct {
	Generator
	label string
}

func (r relabeled) Label() string { return r.label }

// seqGen is the shared chassis of the synthetic generators: a label, the
// dimensions, a seed, and a start function that builds the per-pass
// iteration state from a fresh rng and returns the next-request function.
// Requests seeds a new rand.Rand per pass, so passes are independent and
// identical — the determinism and reset semantics of the Generator
// contract fall out of construction.
type seqGen struct {
	label string
	n, m  int
	seed  int64
	start func(rng *rand.Rand) func() sim.Request
}

func (g *seqGen) Label() string { return g.label }
func (g *seqGen) Nodes() int    { return g.n }
func (g *seqGen) Len() int      { return g.m }

func (g *seqGen) Requests() iter.Seq2[sim.Request, error] {
	return func(yield func(sim.Request, error) bool) {
		next := g.start(rand.New(rand.NewSource(g.seed)))
		for i := 0; i < g.m; i++ {
			if !yield(next(), nil) {
				return
			}
		}
	}
}
