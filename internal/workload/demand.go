package workload

import (
	"fmt"
	"sort"

	"github.com/ksan-net/ksan/internal/sim"
)

// PairCount is one aggregated demand-matrix entry: Count requests from Src
// to Dst.
type PairCount struct {
	Src, Dst int
	Count    int64
}

// Demand is a sparse demand matrix D over nodes 1..N: D[u,v] counts the
// requests from u to v in a trace (the offline-static problem input).
type Demand struct {
	N     int
	Pairs []PairCount
	Total int64
}

// DemandFromTrace aggregates a trace into its demand matrix.
func DemandFromTrace(tr Trace) *Demand {
	type key struct{ u, v int }
	acc := make(map[key]int64)
	for _, rq := range tr.Reqs {
		acc[key{rq.Src, rq.Dst}]++
	}
	d := &Demand{N: tr.N, Pairs: make([]PairCount, 0, len(acc))}
	for k, c := range acc {
		d.Pairs = append(d.Pairs, PairCount{Src: k.u, Dst: k.v, Count: c})
		d.Total += c
	}
	sort.Slice(d.Pairs, func(i, j int) bool {
		if d.Pairs[i].Src != d.Pairs[j].Src {
			return d.Pairs[i].Src < d.Pairs[j].Src
		}
		return d.Pairs[i].Dst < d.Pairs[j].Dst
	})
	return d
}

// UniformDemand is the paper's finite uniform workload: every ordered pair
// u<v requested exactly once (an upper-triangular matrix of ones).
func UniformDemand(n int) *Demand {
	d := &Demand{N: n}
	for u := 1; u <= n; u++ {
		for v := u + 1; v <= n; v++ {
			d.Pairs = append(d.Pairs, PairCount{Src: u, Dst: v, Count: 1})
		}
	}
	d.Total = int64(n) * int64(n-1) / 2
	return d
}

// Dense expands the demand into an n×n matrix (0-indexed by id-1). It
// refuses implausible sizes to protect callers from accidental huge
// allocations; the cubic DP guards its own input size separately.
func (d *Demand) Dense(maxN int) ([][]int64, error) {
	if d.N > maxN {
		return nil, fmt.Errorf("workload: dense matrix for n=%d exceeds limit %d", d.N, maxN)
	}
	m := make([][]int64, d.N)
	for i := range m {
		m[i] = make([]int64, d.N)
	}
	for _, pc := range d.Pairs {
		m[pc.Src-1][pc.Dst-1] += pc.Count
	}
	return m, nil
}

// Downscale maps a demand on 1..N onto a smaller node count nNew by folding
// ids modulo nNew (dropping pairs that collide onto self-loops). It is used
// to run the cubic DP on reduced instances of very large traces, mirroring
// the paper's own inability to compute the optimum at Facebook scale.
func (d *Demand) Downscale(nNew int) *Demand {
	if nNew >= d.N {
		return d
	}
	type key struct{ u, v int }
	acc := make(map[key]int64)
	for _, pc := range d.Pairs {
		u := 1 + (pc.Src-1)%nNew
		v := 1 + (pc.Dst-1)%nNew
		if u == v {
			continue
		}
		acc[key{u, v}] += pc.Count
	}
	out := &Demand{N: nNew}
	for k, c := range acc {
		out.Pairs = append(out.Pairs, PairCount{Src: k.u, Dst: k.v, Count: c})
		out.Total += c
	}
	sort.Slice(out.Pairs, func(i, j int) bool {
		if out.Pairs[i].Src != out.Pairs[j].Src {
			return out.Pairs[i].Src < out.Pairs[j].Src
		}
		return out.Pairs[i].Dst < out.Pairs[j].Dst
	})
	return out
}

// Requests converts a demand matrix back into an arbitrary-order request
// sequence (used by tests to round-trip traces).
func (d *Demand) Requests() []sim.Request {
	reqs := make([]sim.Request, 0, d.Total)
	for _, pc := range d.Pairs {
		for c := int64(0); c < pc.Count; c++ {
			reqs = append(reqs, sim.Request{Src: pc.Src, Dst: pc.Dst})
		}
	}
	return reqs
}
