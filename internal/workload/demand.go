package workload

import (
	"cmp"
	"fmt"
	"slices"
	"sort"

	"github.com/ksan-net/ksan/internal/sim"
)

// PairCount is one aggregated demand-matrix entry: Count requests from Src
// to Dst.
type PairCount struct {
	Src, Dst int
	Count    int64
}

// Demand is a sparse demand matrix D over nodes 1..N: D[u,v] counts the
// requests from u to v in a trace (the offline-static problem input).
type Demand struct {
	N     int
	Pairs []PairCount
	Total int64
}

// DemandFromTrace aggregates a trace into its demand matrix: Pairs sorted
// by (Src, Dst) with one entry per distinct pair.
//
// The aggregation is sort-based rather than map-based: requests are packed
// into a preallocated key slice, sorted, and run-length encoded. On
// multi-million-request traces the map version paid one heap-allocated
// bucket entry per distinct pair plus hash work per request; the sort
// path does three allocations total (keys, exact-size Pairs, Demand) and
// is memory-bandwidth bound instead.
func DemandFromTrace(tr Trace) *Demand {
	d := &Demand{N: tr.N, Total: int64(len(tr.Reqs)), Pairs: []PairCount{}}
	if len(tr.Reqs) == 0 {
		return d
	}
	// Node ids are 1..N by the package contract, so a (Src,Dst) pair packs
	// into one uint64 whose natural order is the (Src, Dst) lexicographic
	// order. Guard the contract anyway: ids outside [0, 2³¹) fall back to
	// a comparator sort with identical semantics.
	keys := make([]uint64, len(tr.Reqs))
	for i, rq := range tr.Reqs {
		if uint(rq.Src) >= 1<<31 || uint(rq.Dst) >= 1<<31 {
			return demandFromTraceCmp(tr)
		}
		keys[i] = uint64(rq.Src)<<32 | uint64(rq.Dst)
	}
	slices.Sort(keys)
	distinct := 1
	for i := 1; i < len(keys); i++ {
		if keys[i] != keys[i-1] {
			distinct++
		}
	}
	d.Pairs = make([]PairCount, 0, distinct)
	run := int64(1)
	for i := 1; i <= len(keys); i++ {
		if i < len(keys) && keys[i] == keys[i-1] {
			run++
			continue
		}
		k := keys[i-1]
		d.Pairs = append(d.Pairs, PairCount{Src: int(k >> 32), Dst: int(uint32(k)), Count: run})
		run = 1
	}
	return d
}

// demandFromTraceCmp is the comparator-sorted slow path of DemandFromTrace
// for ids that don't fit the packed-key fast path.
func demandFromTraceCmp(tr Trace) *Demand {
	pairs := make([]PairCount, len(tr.Reqs))
	for i, rq := range tr.Reqs {
		pairs[i] = PairCount{Src: rq.Src, Dst: rq.Dst, Count: 1}
	}
	slices.SortFunc(pairs, func(a, b PairCount) int {
		if a.Src != b.Src {
			return cmp.Compare(a.Src, b.Src)
		}
		return cmp.Compare(a.Dst, b.Dst)
	})
	d := &Demand{N: tr.N, Total: int64(len(pairs)), Pairs: pairs[:0]}
	for _, p := range pairs {
		if n := len(d.Pairs); n > 0 && d.Pairs[n-1].Src == p.Src && d.Pairs[n-1].Dst == p.Dst {
			d.Pairs[n-1].Count++
			continue
		}
		d.Pairs = append(d.Pairs, p)
	}
	return d
}

// Clone returns a deep copy of the demand (nil clones to nil). The policy
// layer's compacted window aggregate is mutated in place by later Merge
// calls, so checkpointing a net must copy it, not alias it.
func (d *Demand) Clone() *Demand {
	if d == nil {
		return nil
	}
	c := &Demand{N: d.N, Total: d.Total}
	if d.Pairs != nil {
		c.Pairs = make([]PairCount, len(d.Pairs))
		copy(c.Pairs, d.Pairs)
	}
	return c
}

// Merge folds other into d: counts of shared pairs sum, Total
// accumulates, and the pair list stays sorted by (Src, Dst). Demand
// aggregation is associative, so merging chunk-wise aggregates of a
// trace equals aggregating the whole trace — the policy layer leans on
// this to compact long observation windows incrementally instead of
// retaining every raw request. Both inputs must cover the same node set.
func (d *Demand) Merge(other *Demand) {
	if other == nil || len(other.Pairs) == 0 {
		if other != nil {
			d.Total += other.Total
		}
		return
	}
	merged := make([]PairCount, 0, len(d.Pairs)+len(other.Pairs))
	i, j := 0, 0
	less := func(a, b PairCount) bool {
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		return a.Dst < b.Dst
	}
	for i < len(d.Pairs) && j < len(other.Pairs) {
		a, b := d.Pairs[i], other.Pairs[j]
		switch {
		case a.Src == b.Src && a.Dst == b.Dst:
			a.Count += b.Count
			merged = append(merged, a)
			i++
			j++
		case less(a, b):
			merged = append(merged, a)
			i++
		default:
			merged = append(merged, b)
			j++
		}
	}
	merged = append(merged, d.Pairs[i:]...)
	merged = append(merged, other.Pairs[j:]...)
	d.Pairs = merged
	d.Total += other.Total
}

// UniformDemand is the paper's finite uniform workload: every ordered pair
// u<v requested exactly once (an upper-triangular matrix of ones).
func UniformDemand(n int) *Demand {
	d := &Demand{N: n}
	for u := 1; u <= n; u++ {
		for v := u + 1; v <= n; v++ {
			d.Pairs = append(d.Pairs, PairCount{Src: u, Dst: v, Count: 1})
		}
	}
	d.Total = int64(n) * int64(n-1) / 2
	return d
}

// Dense expands the demand into an n×n matrix (0-indexed by id-1). It
// refuses implausible sizes to protect callers from accidental huge
// allocations; the cubic DP guards its own input size separately.
func (d *Demand) Dense(maxN int) ([][]int64, error) {
	if d.N > maxN {
		return nil, fmt.Errorf("workload: dense matrix for n=%d exceeds limit %d", d.N, maxN)
	}
	m := make([][]int64, d.N)
	for i := range m {
		m[i] = make([]int64, d.N)
	}
	for _, pc := range d.Pairs {
		m[pc.Src-1][pc.Dst-1] += pc.Count
	}
	return m, nil
}

// Downscale maps a demand on 1..N onto a smaller node count nNew by folding
// ids modulo nNew (dropping pairs that collide onto self-loops). It is used
// to run the cubic DP on reduced instances of very large traces, mirroring
// the paper's own inability to compute the optimum at Facebook scale.
func (d *Demand) Downscale(nNew int) *Demand {
	if nNew >= d.N {
		return d
	}
	type key struct{ u, v int }
	acc := make(map[key]int64)
	for _, pc := range d.Pairs {
		u := 1 + (pc.Src-1)%nNew
		v := 1 + (pc.Dst-1)%nNew
		if u == v {
			continue
		}
		acc[key{u, v}] += pc.Count
	}
	out := &Demand{N: nNew}
	for k, c := range acc {
		out.Pairs = append(out.Pairs, PairCount{Src: k.u, Dst: k.v, Count: c})
		out.Total += c
	}
	sort.Slice(out.Pairs, func(i, j int) bool {
		if out.Pairs[i].Src != out.Pairs[j].Src {
			return out.Pairs[i].Src < out.Pairs[j].Src
		}
		return out.Pairs[i].Dst < out.Pairs[j].Dst
	})
	return out
}

// Requests converts a demand matrix back into an arbitrary-order request
// sequence (used by tests to round-trip traces).
func (d *Demand) Requests() []sim.Request {
	reqs := make([]sim.Request, 0, d.Total)
	for _, pc := range d.Pairs {
		for c := int64(0); c < pc.Count; c++ {
			reqs = append(reqs, sim.Request{Src: pc.Src, Dst: pc.Dst})
		}
	}
	return reqs
}
