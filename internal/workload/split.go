package workload

import (
	"fmt"
	"iter"

	"github.com/ksan-net/ksan/internal/sim"
)

// SplitGen returns the i-th of c round-robin substreams of g: the pass
// that yields exactly the requests at stream positions ≡ i (mod c), in
// order. The c splits partition g's stream — interleaving them by
// position reconstructs it element for element — so a pool of c client
// routines each iterating its own split serves exactly the declared
// workload, just spread across routines, with fully private per-routine
// iteration state (the YCSB InitRoutine pattern: no locks, no shared
// cursor).
//
// Each split's pass runs the full underlying pass and keeps every c-th
// element, so extracting all c substreams costs c underlying passes of
// generation work; synthetic generators draw requests in nanoseconds, so
// this buys lock-freedom for a constant factor of generator arithmetic.
//
// SplitGen(g, 0, 1) is g itself.
func SplitGen(g Generator, i, c int) Generator {
	if c < 1 || i < 0 || i >= c {
		panic(fmt.Sprintf("workload: SplitGen(%d, %d): need 0 <= i < c", i, c))
	}
	if c == 1 {
		return g
	}
	return &splitGen{g: g, i: i, c: c}
}

type splitGen struct {
	g    Generator
	i, c int
}

func (s *splitGen) Label() string { return fmt.Sprintf("%s[%d/%d]", s.g.Label(), s.i, s.c) }
func (s *splitGen) Nodes() int    { return s.g.Nodes() }

// Len returns this split's share of the underlying length: positions
// i, i+c, i+2c, … of an m-request stream number m/c, plus one when
// i < m mod c. Unknown underlying length stays unknown.
func (s *splitGen) Len() int {
	m := s.g.Len()
	if m < 0 {
		return UnknownLen
	}
	n := m / s.c
	if s.i < m%s.c {
		n++
	}
	return n
}

func (s *splitGen) Requests() iter.Seq2[sim.Request, error] {
	return func(yield func(sim.Request, error) bool) {
		pos := 0
		for rq, err := range s.g.Requests() {
			if err != nil {
				// Terminal by the Generator contract; every split
				// surfaces it so no consumer mistakes a failed stream
				// for a short one.
				yield(rq, err)
				return
			}
			if pos%s.c == s.i {
				if !yield(rq, nil) {
					return
				}
			}
			pos++
		}
	}
}
