package workload

import (
	"bytes"
	"strings"
	"testing"
)

func TestReadCSVErrorsNameLineAndField(t *testing.T) {
	// Requests start at line 3 (metadata row, column header, then data).
	cases := []struct {
		name string
		in   string
		want []string
	}{
		{"bad src", "#t,5\nsrc,dst\n1,2\nx7,3\n", []string{"line 4", `bad src "x7"`}},
		{"bad dst", "#t,5\nsrc,dst\n1,2\n2,1o24\n", []string{"line 4", `bad dst "1o24"`}},
		{"out of range", "#t,5\nsrc,dst\n1,2\n3,9\n", []string{"line 4", "9", "outside 1..5"}},
		{"self loop", "#t,5\nsrc,dst\n1,2\n2,2\n", []string{"line 4", "self-loop at 2"}},
		{"bad node count", "#t,zero\nsrc,dst\n", []string{"line 1", `bad node count "zero"`}},
		{"missing metadata", "src,dst\n1,2\n", []string{"line 1", "missing #name"}},
	}
	for _, tc := range cases {
		_, err := ReadCSV(strings.NewReader(tc.in))
		if err == nil {
			t.Errorf("%s: accepted %q", tc.name, tc.in)
			continue
		}
		for _, want := range tc.want {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("%s: error %q does not name %q", tc.name, err, want)
			}
		}
	}
}

func TestReadCSVRejectsRaggedRecord(t *testing.T) {
	// The csv parse error path keeps the reader's own line information.
	_, err := ReadCSV(strings.NewReader("#t,5\nsrc,dst\n1,2,3\n"))
	if err == nil {
		t.Fatal("3-field record accepted")
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Errorf("parse error %q does not carry the line number", err)
	}
}

// FuzzCSVRoundTrip is the WriteCSV/ReadCSV property test: any valid
// generated trace must survive the encode/decode cycle exactly — name,
// node count, and every request.
func FuzzCSVRoundTrip(f *testing.F) {
	f.Add(10, 50, int64(1), "uniform")
	f.Add(2, 1, int64(7), "x")
	f.Add(300, 0, int64(-3), "commas,and\"quotes\nnewlines")
	f.Fuzz(func(t *testing.T, n, m int, seed int64, name string) {
		if n < 2 || n > 500 || m < 0 || m > 2000 {
			t.Skip()
		}
		tr := Uniform(n, m, seed)
		tr.Name = name
		var buf bytes.Buffer
		if err := WriteCSV(&buf, tr); err != nil {
			t.Fatalf("WriteCSV(%d,%d,%d): %v", n, m, seed, err)
		}
		back, err := ReadCSV(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("ReadCSV of own output: %v\n%s", err, buf.String())
		}
		if back.N != tr.N || back.Len() != tr.Len() {
			t.Fatalf("shape changed: %d/%d -> %d/%d", tr.N, tr.Len(), back.N, back.Len())
		}
		// encoding/csv normalizes \r\n to \n inside quoted fields on read
		// (documented); names round-trip up to that line-ending rewrite.
		if want := strings.ReplaceAll(tr.Name, "\r\n", "\n"); back.Name != want {
			t.Fatalf("name changed: %q -> %q", tr.Name, back.Name)
		}
		for i := range tr.Reqs {
			if tr.Reqs[i] != back.Reqs[i] {
				t.Fatalf("request %d changed: %v -> %v", i, tr.Reqs[i], back.Reqs[i])
			}
		}
	})
}

// FuzzReadCSVNoPanic feeds arbitrary bytes to ReadCSV: it must reject or
// accept without panicking, and anything accepted must re-encode and
// re-parse to the same trace.
func FuzzReadCSVNoPanic(f *testing.F) {
	f.Add([]byte("#t,5\nsrc,dst\n1,2\n"))
	f.Add([]byte("#t,notanumber\nsrc,dst\n"))
	f.Add([]byte("garbage"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadCSV(bytes.NewReader(data))
		if err != nil {
			return
		}
		if verr := tr.Validate(); verr != nil {
			t.Fatalf("ReadCSV accepted an invalid trace: %v", verr)
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, tr); err != nil {
			t.Fatalf("re-encoding accepted trace: %v", err)
		}
		back, err := ReadCSV(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-parsing own encoding: %v", err)
		}
		if back.N != tr.N || back.Len() != tr.Len() {
			t.Fatalf("unstable round trip: %d/%d -> %d/%d", tr.N, tr.Len(), back.N, back.Len())
		}
	})
}
