package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// zipfSampler draws ranks 1..n with probability proportional to explicit
// per-rank weights via inverse-CDF binary search. It is a small
// deterministic alternative to math/rand's rejection-based Zipf that makes
// the generated traces easy to reason about in tests (the CDF is explicit),
// and the same CDF machinery backs the exponential and histogram kinds.
type zipfSampler struct {
	cdf []float64
}

func newZipfSampler(n int, s float64) *zipfSampler {
	cdf := make([]float64, n)
	acc := 0.0
	for r := 1; r <= n; r++ {
		acc += 1 / math.Pow(float64(r), s)
		cdf[r-1] = acc
	}
	for i := range cdf {
		cdf[i] /= acc
	}
	return &zipfSampler{cdf: cdf}
}

// newExpSampler weights rank r by exp(-s·(r-1)/n): the YCSB "exponential"
// popularity shape, with s fixing how many e-foldings of decay span the
// whole rank range (s=8 puts ~99.97% of the mass in the first n/8 ranks...
// scaled by n so one s means one shape at every network size).
func newExpSampler(n int, s float64) *zipfSampler {
	cdf := make([]float64, n)
	acc := 0.0
	for r := 1; r <= n; r++ {
		acc += math.Exp(-s * float64(r-1) / float64(n))
		cdf[r-1] = acc
	}
	for i := range cdf {
		cdf[i] /= acc
	}
	return &zipfSampler{cdf: cdf}
}

// newWeightSampler builds the CDF of explicit non-negative per-rank weights
// (the histogram kind). At least one weight must be positive.
func newWeightSampler(weights []float64) (*zipfSampler, error) {
	cdf := make([]float64, len(weights))
	acc := 0.0
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("workload: histogram weight %d is %v; want finite and non-negative", i, w)
		}
		acc += w
		cdf[i] = acc
	}
	if len(weights) == 0 || acc <= 0 {
		return nil, fmt.Errorf("workload: histogram needs at least one positive weight")
	}
	for i := range cdf {
		cdf[i] /= acc
	}
	return &zipfSampler{cdf: cdf}, nil
}

// sample returns a rank in 1..n.
func (z *zipfSampler) sample(rng *rand.Rand) int {
	x := rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo + 1
}
