package workload

import (
	"math"
	"math/rand"
)

// zipfSampler draws ranks 1..n with probability proportional to 1/rank^s
// via inverse-CDF binary search. It is a small deterministic alternative to
// math/rand's rejection-based Zipf that makes the generated traces easy to
// reason about in tests (the CDF is explicit).
type zipfSampler struct {
	cdf []float64
}

func newZipfSampler(n int, s float64) *zipfSampler {
	cdf := make([]float64, n)
	acc := 0.0
	for r := 1; r <= n; r++ {
		acc += 1 / math.Pow(float64(r), s)
		cdf[r-1] = acc
	}
	for i := range cdf {
		cdf[i] /= acc
	}
	return &zipfSampler{cdf: cdf}
}

// sample returns a rank in 1..n.
func (z *zipfSampler) sample(rng *rand.Rand) int {
	x := rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo + 1
}
