package workload

import (
	"math"

	"github.com/ksan-net/ksan/internal/sim"
)

// Stats summarizes the complexity of a trace along the axes the paper's
// analysis uses: temporal locality (repeat fraction), skew (entropies) and
// sparsity (distinct pairs).
type Stats struct {
	Requests      int
	DistinctPairs int
	// RepeatFraction is the fraction of requests identical to their
	// immediate predecessor, out of the m−1 requests that have one (the
	// empirical temporal-complexity parameter: on a Temporal(p) trace it
	// measures ≈ p). Zero for traces with fewer than two requests.
	RepeatFraction float64
	// SrcEntropy and DstEntropy are the empirical Shannon entropies (bits)
	// of the source and destination marginals; they appear in the paper's
	// Theorem 13 cost bound for k-ary SplayNet.
	SrcEntropy float64
	DstEntropy float64
	// PairEntropy is the entropy of the joint (src,dst) distribution.
	PairEntropy float64
	// Top8PairShare is the traffic fraction of the 8 most popular pairs, a
	// simple skew/sparsity indicator.
	Top8PairShare float64
}

// Measure computes Stats for a materialized trace.
func Measure(tr Trace) Stats {
	st, err := MeasureStream(tr)
	if err != nil { // a Trace's stream cannot error
		panic(err)
	}
	return st
}

// MeasureStream computes Stats from a generator's stream in one pass. Its
// working set is the distinct-pair and endpoint histograms — the demand,
// not the trace — so arbitrarily long streams measure in memory
// proportional to their sparsity.
func MeasureStream(g Generator) (Stats, error) {
	var st Stats
	type key struct{ u, v int }
	pairs := make(map[key]int64)
	srcs := make(map[int]int64)
	dsts := make(map[int]int64)
	repeats := 0
	var prev sim.Request
	for rq, err := range g.Requests() {
		if err != nil {
			return Stats{}, err
		}
		pairs[key{rq.Src, rq.Dst}]++
		srcs[rq.Src]++
		dsts[rq.Dst]++
		if st.Requests > 0 && rq == prev {
			repeats++
		}
		prev = rq
		st.Requests++
	}
	if st.Requests == 0 {
		return st, nil
	}
	st.DistinctPairs = len(pairs)
	// Only m−1 requests can repeat their predecessor (the first has none),
	// so dividing by m would bias the empirical temporal parameter low.
	if st.Requests > 1 {
		st.RepeatFraction = float64(repeats) / float64(st.Requests-1)
	}
	m := float64(st.Requests)
	entropy := func(counts map[int]int64) float64 {
		h := 0.0
		for _, c := range counts {
			p := float64(c) / m
			h -= p * math.Log2(p)
		}
		return h
	}
	st.SrcEntropy = entropy(srcs)
	st.DstEntropy = entropy(dsts)
	h := 0.0
	var counts []int64
	for _, c := range pairs {
		p := float64(c) / m
		h -= p * math.Log2(p)
		counts = append(counts, c)
	}
	st.PairEntropy = h
	// Partial selection of the 8 largest counts.
	var top int64
	for i := 0; i < 8 && i < len(counts); i++ {
		maxIdx := i
		for j := i + 1; j < len(counts); j++ {
			if counts[j] > counts[maxIdx] {
				maxIdx = j
			}
		}
		counts[i], counts[maxIdx] = counts[maxIdx], counts[i]
		top += counts[i]
	}
	st.Top8PairShare = float64(top) / m
	return st, nil
}

// EntropyBound evaluates the right-hand side of the paper's Theorem 13
// bound for k-ary SplayNet on a trace: Σ_x a_x·log(m/a_x) + b_x·log(m/b_x),
// where a_x and b_x count x's appearances as source and destination. The
// harness reports it next to measured costs as a sanity check (the bound
// holds up to a constant factor).
func EntropyBound(tr Trace) float64 {
	b, err := EntropyBoundStream(tr)
	if err != nil { // a Trace's stream cannot error
		panic(err)
	}
	return b
}

// EntropyBoundStream evaluates the Theorem 13 bound from a generator's
// stream in one pass; like MeasureStream its working set is the endpoint
// histograms, not the trace.
func EntropyBoundStream(g Generator) (float64, error) {
	srcs := make(map[int]int64)
	dsts := make(map[int]int64)
	requests := 0
	for rq, err := range g.Requests() {
		if err != nil {
			return 0, err
		}
		srcs[rq.Src]++
		dsts[rq.Dst]++
		requests++
	}
	m := float64(requests)
	sum := 0.0
	for _, a := range srcs {
		sum += float64(a) * math.Log2(m/float64(a))
	}
	for _, b := range dsts {
		sum += float64(b) * math.Log2(m/float64(b))
	}
	return sum, nil
}
