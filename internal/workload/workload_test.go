package workload

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"github.com/ksan-net/ksan/internal/sim"
)

func TestUniformBasics(t *testing.T) {
	tr := Uniform(100, 5000, 1)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 5000 || tr.N != 100 {
		t.Fatalf("unexpected shape %d/%d", tr.Len(), tr.N)
	}
	st := Measure(tr)
	// Uniform over 100 nodes: marginals near log2(100) ≈ 6.64 bits.
	if st.SrcEntropy < 6.3 || st.SrcEntropy > 6.7 {
		t.Errorf("uniform source entropy %.2f implausible", st.SrcEntropy)
	}
	if st.RepeatFraction > 0.01 {
		t.Errorf("uniform repeat fraction %.3f too high", st.RepeatFraction)
	}
}

func TestUniformCoversAllNodes(t *testing.T) {
	tr := Uniform(30, 20000, 2)
	seen := make([]bool, 31)
	for _, rq := range tr.Reqs {
		seen[rq.Src] = true
		seen[rq.Dst] = true
	}
	for id := 1; id <= 30; id++ {
		if !seen[id] {
			t.Errorf("node %d never communicates in a 20k-request uniform trace", id)
		}
	}
}

func TestTemporalRepeatFractionMatchesParameter(t *testing.T) {
	for _, p := range []float64{0.25, 0.5, 0.75, 0.9} {
		tr := Temporal(1023, 40000, p, 3)
		if err := tr.Validate(); err != nil {
			t.Fatal(err)
		}
		st := Measure(tr)
		if math.Abs(st.RepeatFraction-p) > 0.02 {
			t.Errorf("temporal(%.2f): measured repeat fraction %.3f", p, st.RepeatFraction)
		}
	}
}

func TestRepeatFractionUnbiasedOnShortTraces(t *testing.T) {
	rq := func(u, v int) sim.Request { return sim.Request{Src: u, Dst: v} }
	for _, tc := range []struct {
		name string
		reqs []sim.Request
		want float64
	}{
		{"empty", nil, 0},
		{"single", []sim.Request{rq(1, 2)}, 0}, // no predecessor: nothing can repeat
		{"all-repeats", []sim.Request{rq(1, 2), rq(1, 2), rq(1, 2)}, 1},
		{"half", []sim.Request{rq(1, 2), rq(1, 2), rq(2, 3)}, 0.5},
	} {
		st := Measure(Trace{N: 3, Reqs: tc.reqs})
		if st.RepeatFraction != tc.want {
			t.Errorf("%s: repeat fraction %.3f, want %.3f (must divide by m-1, not m)",
				tc.name, st.RepeatFraction, tc.want)
		}
	}
}

func TestTemporalRejectsBadParameter(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Temporal(p=1) should panic")
		}
	}()
	Temporal(10, 10, 1.0, 0)
}

func TestGeneratorsSmallN(t *testing.T) {
	// n=1 cannot form a self-loop-free pair: the static-pair generators used
	// to crash on pairs[0] when every partner draw collided, and Zipf's
	// successor remap produced self-loops. All must now reject n=1 with a
	// clear panic and produce valid, full-length traces for n=2 and n=3.
	gens := map[string]func(n int) Trace{
		"projector": func(n int) Trace { return ProjecToRLike(n, 500, 1) },
		"facebook":  func(n int) Trace { return FacebookLike(n, 500, 1) },
		"zipf":      func(n int) Trace { return Zipf(n, 500, 1.1, 1) },
	}
	for name, gen := range gens {
		for n := 1; n <= 3; n++ {
			func() {
				defer func() {
					r := recover()
					if n == 1 {
						if r == nil {
							t.Errorf("%s(n=1) did not panic", name)
						} else if msg, ok := r.(string); !ok || !strings.Contains(msg, "at least 2 nodes") {
							t.Errorf("%s(n=1) panic %v lacks a clear message", name, r)
						}
						return
					}
					if r != nil {
						t.Errorf("%s(n=%d) panicked: %v", name, n, r)
					}
				}()
				tr := gen(n)
				if err := tr.Validate(); err != nil {
					t.Errorf("%s(n=%d): %v", name, n, err)
				}
				if tr.Len() != 500 {
					t.Errorf("%s(n=%d): %d requests, want 500", name, n, tr.Len())
				}
			}()
		}
	}
}

func TestZipfResamplesSelfLoopsWithoutSuccessorBias(t *testing.T) {
	// The old self-loop remap v = 1+v%n redirected every u→u collision onto
	// u's successor, so P(dst=succ(u) | src=u) absorbed all of u's own
	// popularity mass on top of succ(u)'s. With resampling, dst given
	// src=u must follow the sampler's weights restricted to ≠u:
	// P(dst=v | src=u) = W_v / (1−W_u). The source marginal is a pure
	// sampler draw in both the old and the new code, so the empirical
	// source shares estimate W and anchor the check.
	const n, m = 3, 60000
	tr := Zipf(n, m, 1.3, 11)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	srcCnt := make([]float64, n+1)
	pair := make([][]float64, n+1)
	for u := range pair {
		pair[u] = make([]float64, n+1)
	}
	for _, rq := range tr.Reqs {
		srcCnt[rq.Src]++
		pair[rq.Src][rq.Dst]++
	}
	w := make([]float64, n+1)
	for u := 1; u <= n; u++ {
		w[u] = srcCnt[u] / m
	}
	for u := 1; u <= n; u++ {
		for v := 1; v <= n; v++ {
			if v == u || srcCnt[u] == 0 {
				continue
			}
			got := pair[u][v] / srcCnt[u]
			want := w[v] / (1 - w[u])
			if math.Abs(got-want) > 0.03 {
				t.Errorf("P(dst=%d|src=%d) = %.3f, want ≈ %.3f (W restricted to ≠src); successor-remap bias?",
					v, u, got, want)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	gens := map[string]func(seed int64) Trace{
		"uniform":   func(s int64) Trace { return Uniform(50, 1000, s) },
		"temporal":  func(s int64) Trace { return Temporal(50, 1000, 0.5, s) },
		"hpc":       func(s int64) Trace { return HPCLike(64, 1000, s) },
		"projector": func(s int64) Trace { return ProjecToRLike(50, 1000, s) },
		"facebook":  func(s int64) Trace { return FacebookLike(200, 1000, s) },
		"zipf":      func(s int64) Trace { return Zipf(50, 1000, 1.1, s) },
	}
	for name, gen := range gens {
		a, b := gen(7), gen(7)
		if len(a.Reqs) != len(b.Reqs) {
			t.Fatalf("%s: lengths differ", name)
		}
		for i := range a.Reqs {
			if a.Reqs[i] != b.Reqs[i] {
				t.Fatalf("%s: not deterministic at request %d", name, i)
			}
		}
		c := gen(8)
		same := true
		for i := range a.Reqs {
			if a.Reqs[i] != c.Reqs[i] {
				same = false
				break
			}
		}
		if same {
			t.Errorf("%s: different seeds produced identical traces", name)
		}
	}
}

func TestTraceLocalityOrdering(t *testing.T) {
	// Qualitative trace-complexity ordering: the Facebook-like trace has
	// the lowest temporal locality of the three (the paper groups it with
	// its low-locality traces), and the HPC-like trace is the most
	// spatially concentrated (its stencil uses the fewest distinct pairs
	// per node).
	hpc := Measure(HPCLike(500, 30000, 1))
	proj := Measure(ProjecToRLike(100, 30000, 1))
	fb := Measure(FacebookLike(2000, 30000, 1))
	if fb.RepeatFraction >= proj.RepeatFraction || fb.RepeatFraction >= hpc.RepeatFraction {
		t.Errorf("facebook repeat fraction %.3f not the lowest (hpc %.3f, proj %.3f)",
			fb.RepeatFraction, hpc.RepeatFraction, proj.RepeatFraction)
	}
	// Spatial concentration at matched n and m: the stencil trace exchanges
	// with rank-adjacent processes, so its mean |src−dst| id distance must
	// be far below the service-dependency trace's (whose partners are
	// random in id space).
	meanIDDist := func(tr Trace) float64 {
		var sum float64
		for _, rq := range tr.Reqs {
			d := rq.Src - rq.Dst
			if d < 0 {
				d = -d
			}
			sum += float64(d)
		}
		return sum / float64(tr.Len())
	}
	hpcTr := HPCLike(500, 30000, 2)
	fbTr := FacebookLike(500, 30000, 2)
	if h, f := meanIDDist(hpcTr), meanIDDist(fbTr); h*3 >= f {
		t.Errorf("hpc mean id distance %.1f not ≪ facebook's %.1f", h, f)
	}
}

func TestHPCSpatialLocality(t *testing.T) {
	// Stencil exchanges: most non-repeat requests connect torus neighbours,
	// so the number of distinct pairs must be tiny relative to n².
	tr := HPCLike(512, 50000, 4)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	st := Measure(tr)
	if st.DistinctPairs > 512*8*2 {
		t.Errorf("hpc trace uses %d distinct pairs, expected a sparse neighbour set", st.DistinctPairs)
	}
}

func TestProjecToRSparseAndSkewed(t *testing.T) {
	tr := ProjecToRLike(100, 50000, 5)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	st := Measure(tr)
	if st.DistinctPairs > 100*7 {
		t.Errorf("projector demand not sparse: %d distinct pairs", st.DistinctPairs)
	}
	if st.Top8PairShare < 0.15 {
		t.Errorf("projector demand not skewed: top-8 share %.3f", st.Top8PairShare)
	}
}

func TestFacebookWide(t *testing.T) {
	tr := FacebookLike(5000, 50000, 6)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	st := Measure(tr)
	if st.DistinctPairs < 5000 {
		t.Errorf("facebook trace too narrow: %d distinct pairs", st.DistinctPairs)
	}
	if st.RepeatFraction > 0.1 {
		t.Errorf("facebook repeat fraction %.3f too high", st.RepeatFraction)
	}
}

func TestZipfSampler(t *testing.T) {
	z := newZipfSampler(100, 1.2)
	rngCounts := make([]int, 101)
	tr := Zipf(100, 30000, 1.2, 7)
	for _, rq := range tr.Reqs {
		rngCounts[rq.Src]++
	}
	_ = z
	// Skew check: some node must carry far more than the mean.
	max := 0
	for _, c := range rngCounts {
		if c > max {
			max = c
		}
	}
	if max < 3*30000/100 {
		t.Errorf("zipf trace not skewed: max per-src count %d", max)
	}
}

func TestDemandFromTraceRoundTrip(t *testing.T) {
	tr := Temporal(40, 5000, 0.5, 9)
	d := DemandFromTrace(tr)
	if d.Total != int64(tr.Len()) {
		t.Fatalf("demand total %d != trace length %d", d.Total, tr.Len())
	}
	back := d.Requests()
	if len(back) != tr.Len() {
		t.Fatalf("requests round-trip length %d != %d", len(back), tr.Len())
	}
	d2 := DemandFromTrace(Trace{N: 40, Reqs: back})
	if len(d2.Pairs) != len(d.Pairs) {
		t.Fatalf("pair counts changed in round trip")
	}
	for i := range d.Pairs {
		if d.Pairs[i] != d2.Pairs[i] {
			t.Fatalf("pair %d changed in round trip", i)
		}
	}
}

func TestUniformDemand(t *testing.T) {
	d := UniformDemand(10)
	if d.Total != 45 {
		t.Errorf("uniform demand total %d, want 45", d.Total)
	}
	for _, pc := range d.Pairs {
		if pc.Src >= pc.Dst || pc.Count != 1 {
			t.Errorf("bad uniform pair %+v", pc)
		}
	}
}

func TestDense(t *testing.T) {
	tr := Uniform(20, 500, 11)
	d := DemandFromTrace(tr)
	m, err := d.Dense(64)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for i := range m {
		if m[i][i] != 0 {
			t.Errorf("self-demand at %d", i)
		}
		for j := range m[i] {
			total += m[i][j]
		}
	}
	if total != 500 {
		t.Errorf("dense total %d, want 500", total)
	}
	if _, err := d.Dense(10); err == nil {
		t.Error("Dense must refuse n beyond the limit")
	}
}

func TestDownscale(t *testing.T) {
	tr := FacebookLike(1000, 5000, 12)
	d := DemandFromTrace(tr)
	small := d.Downscale(100)
	if small.N != 100 {
		t.Fatalf("downscaled N=%d", small.N)
	}
	if small.Total > d.Total {
		t.Errorf("downscale grew total from %d to %d", d.Total, small.Total)
	}
	for _, pc := range small.Pairs {
		if pc.Src < 1 || pc.Src > 100 || pc.Dst < 1 || pc.Dst > 100 || pc.Src == pc.Dst {
			t.Errorf("bad downscaled pair %+v", pc)
		}
	}
	if same := d.Downscale(2000); same != d {
		t.Error("downscale to larger n must be the identity")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr := ProjecToRLike(30, 200, 13)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != tr.Name || back.N != tr.N || back.Len() != tr.Len() {
		t.Fatalf("metadata mismatch: %q/%d/%d vs %q/%d/%d",
			back.Name, back.N, back.Len(), tr.Name, tr.N, tr.Len())
	}
	for i := range tr.Reqs {
		if tr.Reqs[i] != back.Reqs[i] {
			t.Fatalf("request %d changed in CSV round trip", i)
		}
	}
}

func TestCSVRejectsGarbage(t *testing.T) {
	for _, in := range []string{
		"",
		"src,dst\n1,2\n",
		"#t,notanumber\nsrc,dst\n",
		"#t,5\nsrc,dst\n9,1\n", // out of range
		"#t,5\nsrc,dst\n2,2\n", // self loop
	} {
		if _, err := ReadCSV(bytes.NewBufferString(in)); err == nil {
			t.Errorf("ReadCSV accepted %q", in)
		}
	}
}

func TestEntropyBoundScalesWithSkew(t *testing.T) {
	// The Theorem-13 bound must be lower for skewed traffic than uniform.
	uni := EntropyBound(Uniform(256, 20000, 1))
	skew := EntropyBound(Zipf(256, 20000, 1.4, 1))
	if skew >= uni {
		t.Errorf("entropy bound: zipf %.0f not below uniform %.0f", skew, uni)
	}
}

func TestMeasureEmptyTrace(t *testing.T) {
	st := Measure(Trace{N: 5})
	if st.Requests != 0 || st.DistinctPairs != 0 {
		t.Errorf("empty trace stats %+v", st)
	}
}

func TestCubeDims(t *testing.T) {
	for _, n := range []int{1, 8, 27, 64, 100, 500, 512, 1000} {
		d := cubeDims(n)
		if d[0]*d[1]*d[2] < n {
			t.Errorf("cubeDims(%d)=%v volume too small", n, d)
		}
		if d[0]*d[1]*d[2] > 4*n+4 {
			t.Errorf("cubeDims(%d)=%v volume too loose", n, d)
		}
	}
}
