package report

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"github.com/ksan-net/ksan/internal/engine"
	"github.com/ksan-net/ksan/internal/sim"
)

func sampleCell() engine.Cell {
	return engine.Cell{
		I: 1, J: 2,
		Result: engine.Result{
			Result:         sim.Result{Name: "4-ary SplayNet", Requests: 100, Routing: 250, Adjust: 80},
			Trace:          "temporal-0.75",
			WarmupRequests: 10, WarmupRouting: 30, WarmupAdjust: 12,
			P50Routing: 2, P99Routing: 9,
			LinkChurn: 640,
			Series: []engine.WindowSample{
				{Start: 0, End: 50, Routing: 130, Adjust: 45},
				{Start: 50, End: 100, Routing: 120, Adjust: 35},
			},
			Elapsed:    250 * time.Millisecond,
			Throughput: 440,
		},
	}
}

func TestJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	if err := s.Cell(sampleCell()); err != nil {
		t.Fatal(err)
	}
	if err := s.Cell(engine.Cell{I: 0, J: 0, Result: engine.Result{Result: sim.Result{Name: "full"}}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("want one JSON line per cell, got %d:\n%s", len(lines), buf.String())
	}
	var rec Record
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("line 1 is not valid JSON: %v", err)
	}
	if rec.I != 1 || rec.J != 2 || rec.Network != "4-ary SplayNet" || rec.Trace != "temporal-0.75" {
		t.Errorf("cell identity lost: %+v", rec)
	}
	if rec.Total != 330 || rec.AvgRouting != 2.5 {
		t.Errorf("derived fields wrong: total %d avg %v", rec.Total, rec.AvgRouting)
	}
	if len(rec.Series) != 2 || rec.Series[1] != (WindowRecord{Start: 50, End: 100, Routing: 120, Adjust: 35}) {
		t.Errorf("window series lost: %+v", rec.Series)
	}
	if rec.ElapsedSeconds != 0.25 {
		t.Errorf("elapsed %v, want seconds", rec.ElapsedSeconds)
	}
	// The schema fields the CI sanity check relies on must be present by
	// name in the raw line.
	for _, key := range []string{`"network"`, `"trace"`, `"requests"`, `"routing"`, `"adjust"`, `"series"`} {
		if !strings.Contains(lines[0], key) {
			t.Errorf("JSONL line missing %s: %s", key, lines[0])
		}
	}
}

func TestCSVSink(t *testing.T) {
	var buf bytes.Buffer
	s := NewCSVSink(&buf)
	if err := s.Cell(sampleCell()); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("sink output is not rectangular CSV: %v", err)
	}
	// Header + one cell row + two window rows.
	if len(rows) != 4 {
		t.Fatalf("got %d rows:\n%v", len(rows), rows)
	}
	col := map[string]int{}
	for i, name := range rows[0] {
		col[name] = i
	}
	cell := rows[1]
	if cell[col["kind"]] != "cell" || cell[col["network"]] != "4-ary SplayNet" ||
		cell[col["routing"]] != "250" || cell[col["total"]] != "330" ||
		cell[col["link_churn"]] != "640" || cell[col["window_start"]] != "" {
		t.Errorf("cell row wrong: %v", cell)
	}
	w2 := rows[3]
	if w2[col["kind"]] != "window" || w2[col["window_start"]] != "50" ||
		w2[col["window_end"]] != "100" || w2[col["routing"]] != "120" ||
		w2[col["i"]] != "1" || w2[col["j"]] != "2" {
		t.Errorf("window row wrong: %v", w2)
	}
}

func TestCSVSinkWritesHeaderOnce(t *testing.T) {
	var buf bytes.Buffer
	s := NewCSVSink(&buf)
	for i := 0; i < 3; i++ {
		c := sampleCell()
		c.Result.Series = nil
		if err := s.Cell(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "kind,i,j"); got != 1 {
		t.Errorf("header written %d times", got)
	}
}
