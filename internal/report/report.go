// Package report renders experiment results as aligned ASCII tables in the
// layout of the paper's Tables 1–8, plus Markdown for EXPERIMENTS.md.
package report

import (
	"fmt"
	"strings"
)

// Table is a titled grid of cells; the first row of Cells is rendered
// under the header line.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render draws the table with aligned columns. Columns are sized to the
// widest row, header included: rows with more cells than the header get
// their extra columns aligned too (they used to be dropped from width
// computation, misaligning — or for long rows crashing — the output).
func (t Table) Render() string {
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	ncols := len(t.Header)
	for _, row := range t.Rows {
		if len(row) > ncols {
			ncols = len(row)
		}
	}
	widths := make([]int, ncols)
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavored Markdown table.
func (t Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Header)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return b.String()
}

// Ratio formats other/base in the paper's "0.87x" style; "-" when either
// value is unavailable.
func Ratio(other, base int64) string {
	if base == 0 || other < 0 || base < 0 {
		return "-"
	}
	return fmt.Sprintf("%.2fx", float64(other)/float64(base))
}

// RatioF is Ratio for float values.
func RatioF(other, base float64) string {
	if base == 0 {
		return "-"
	}
	return fmt.Sprintf("%.3fx", other/base)
}

// Count formats an absolute cost.
func Count(v int64) string { return fmt.Sprintf("%d", v) }

// Avg formats a per-request average cost.
func Avg(total int64, requests int) string {
	if requests == 0 {
		return "-"
	}
	return fmt.Sprintf("%.3f", float64(total)/float64(requests))
}
