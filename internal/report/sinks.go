package report

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"github.com/ksan-net/ksan/internal/engine"
)

// Sink consumes finished grid cells as they stream out of the engine and
// writes them in a machine-readable format. Implementations buffer; call
// Flush once after the last cell.
type Sink interface {
	Cell(c engine.Cell) error
	Flush() error
}

// WindowRecord is one time-series point of a cell record.
type WindowRecord struct {
	Start   int   `json:"start"`
	End     int   `json:"end"`
	Routing int64 `json:"routing"`
	Adjust  int64 `json:"adjust"`
}

// Record is the machine-readable form of one grid cell: the stable
// external schema of the JSONL sink (and the column set of the CSV sink),
// deliberately decoupled from the engine's internal Result struct so that
// adding engine fields is not silently a format change.
type Record struct {
	I              int            `json:"i"`
	J              int            `json:"j"`
	Network        string         `json:"network"`
	Trace          string         `json:"trace,omitempty"`
	Requests       int64          `json:"requests"`
	Routing        int64          `json:"routing"`
	Adjust         int64          `json:"adjust"`
	Total          int64          `json:"total"`
	AvgRouting     float64        `json:"avg_routing"`
	WarmupRequests int64          `json:"warmup_requests,omitempty"`
	WarmupRouting  int64          `json:"warmup_routing,omitempty"`
	WarmupAdjust   int64          `json:"warmup_adjust,omitempty"`
	P50Routing     float64        `json:"p50_routing"`
	P99Routing     float64        `json:"p99_routing"`
	LinkChurn      int64          `json:"link_churn,omitempty"`
	ElapsedSeconds float64        `json:"elapsed_seconds"`
	Throughput     float64        `json:"throughput"`
	Series         []WindowRecord `json:"series,omitempty"`

	// Serving-layer fields (cmd/ksanload): shard/client topology, cross-
	// shard request count, and closed-loop latency percentiles in
	// microseconds from the mergeable streaming histograms. Zero (and
	// omitted from JSON) for engine grid cells.
	Shards       int     `json:"shards,omitempty"`
	Clients      int     `json:"clients,omitempty"`
	CrossShard   int64   `json:"cross_shard,omitempty"`
	P50LatencyUs float64 `json:"p50_latency_us,omitempty"`
	P99LatencyUs float64 `json:"p99_latency_us,omitempty"`
	MaxLatencyUs float64 `json:"max_latency_us,omitempty"`

	// Fault-ledger fields (cmd/ksanload runs with a fault schedule armed):
	// what the robustness machinery did, kept apart from the healthy
	// serving totals above. Zero (and omitted from JSON) for engine grid
	// cells and fault-free serving runs.
	Crashes          int64 `json:"crashes,omitempty"`
	Recoveries       int64 `json:"recoveries,omitempty"`
	Checkpoints      int64 `json:"checkpoints,omitempty"`
	ReplayedRequests int64 `json:"replayed_requests,omitempty"`
	Stalls           int64 `json:"stalls,omitempty"`
	Timeouts         int64 `json:"timeouts,omitempty"`
	Retries          int64 `json:"retries,omitempty"`
	FailedRequests   int64 `json:"failed_requests,omitempty"`
	DegradedRequests int64 `json:"degraded_requests,omitempty"`
	DegradedRouting  int64 `json:"degraded_routing,omitempty"`
}

// RecordOf flattens a finished cell into the external schema.
func RecordOf(c engine.Cell) Record {
	r := c.Result
	rec := Record{
		I:              c.I,
		J:              c.J,
		Network:        r.Name,
		Trace:          r.Trace,
		Requests:       r.Requests,
		Routing:        r.Routing,
		Adjust:         r.Adjust,
		Total:          r.Total(),
		AvgRouting:     r.AvgRouting(),
		WarmupRequests: r.WarmupRequests,
		WarmupRouting:  r.WarmupRouting,
		WarmupAdjust:   r.WarmupAdjust,
		P50Routing:     r.P50Routing,
		P99Routing:     r.P99Routing,
		LinkChurn:      r.LinkChurn,
		ElapsedSeconds: r.Elapsed.Seconds(),
		Throughput:     r.Throughput,
	}
	for _, s := range r.Series {
		rec.Series = append(rec.Series, WindowRecord{Start: s.Start, End: s.End, Routing: s.Routing, Adjust: s.Adjust})
	}
	return rec
}

// JSONLSink writes one JSON object per cell, one per line (JSON Lines),
// window time-series included. Construct with NewJSONLSink.
type JSONLSink struct {
	enc *json.Encoder
}

// NewJSONLSink constructs a JSONL cell sink on w.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{enc: json.NewEncoder(w)}
}

// Cell writes one cell as a JSON line.
func (s *JSONLSink) Cell(c engine.Cell) error {
	return s.Record(RecordOf(c))
}

// Record writes one pre-built record as a JSON line — the entry point for
// producers whose results do not come from the engine (the serving layer
// flattens its Stats into Records directly).
func (s *JSONLSink) Record(rec Record) error {
	if err := s.enc.Encode(rec); err != nil {
		return fmt.Errorf("report: encoding record (%d,%d): %w", rec.I, rec.J, err)
	}
	return nil
}

// Flush is a no-op (the encoder writes through).
func (s *JSONLSink) Flush() error { return nil }

// csvHeader is the CSV sink's column set. Rows come in two kinds: one
// "cell" row per finished cell (aggregate columns filled, window_* empty)
// and, when a time-series window was configured, one "window" row per
// WindowSample (cell identity plus routing/adjust/window_start/window_end
// filled) — the tidy long format, so the series survives the flat file.
var csvHeader = []string{
	"kind", "i", "j", "network", "trace",
	"requests", "routing", "adjust", "total", "avg_routing",
	"warmup_requests", "warmup_routing", "warmup_adjust",
	"p50_routing", "p99_routing", "link_churn",
	"elapsed_seconds", "throughput",
	"window_start", "window_end",
	"shards", "clients", "cross_shard",
	"p50_latency_us", "p99_latency_us", "max_latency_us",
	"crashes", "recoveries", "checkpoints", "replayed_requests",
	"stalls", "timeouts", "retries",
	"failed_requests", "degraded_requests", "degraded_routing",
}

// CSVSink writes cells (and their window time-series) as tidy CSV rows.
// Construct with NewCSVSink.
type CSVSink struct {
	cw     *csv.Writer
	header bool
}

// NewCSVSink constructs a CSV cell sink on w; the header row is written
// with the first cell.
func NewCSVSink(w io.Writer) *CSVSink {
	return &CSVSink{cw: csv.NewWriter(w)}
}

// Cell writes the cell's aggregate row followed by one row per window
// sample.
func (s *CSVSink) Cell(c engine.Cell) error {
	return s.Record(RecordOf(c))
}

// Record writes one pre-built record as CSV rows — the non-engine entry
// point matching JSONLSink.Record.
func (s *CSVSink) Record(rec Record) error {
	if !s.header {
		if err := s.cw.Write(csvHeader); err != nil {
			return fmt.Errorf("report: writing csv header: %w", err)
		}
		s.header = true
	}
	itoa := strconv.Itoa
	i64 := func(v int64) string { return strconv.FormatInt(v, 10) }
	f64 := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	row := []string{
		"cell", itoa(rec.I), itoa(rec.J), rec.Network, rec.Trace,
		i64(rec.Requests), i64(rec.Routing), i64(rec.Adjust), i64(rec.Total), f64(rec.AvgRouting),
		i64(rec.WarmupRequests), i64(rec.WarmupRouting), i64(rec.WarmupAdjust),
		f64(rec.P50Routing), f64(rec.P99Routing), i64(rec.LinkChurn),
		f64(rec.ElapsedSeconds), f64(rec.Throughput),
		"", "",
		itoa(rec.Shards), itoa(rec.Clients), i64(rec.CrossShard),
		f64(rec.P50LatencyUs), f64(rec.P99LatencyUs), f64(rec.MaxLatencyUs),
		i64(rec.Crashes), i64(rec.Recoveries), i64(rec.Checkpoints), i64(rec.ReplayedRequests),
		i64(rec.Stalls), i64(rec.Timeouts), i64(rec.Retries),
		i64(rec.FailedRequests), i64(rec.DegradedRequests), i64(rec.DegradedRouting),
	}
	if err := s.cw.Write(row); err != nil {
		return fmt.Errorf("report: writing cell (%d,%d): %w", rec.I, rec.J, err)
	}
	for _, w := range rec.Series {
		wrow := []string{
			"window", itoa(rec.I), itoa(rec.J), rec.Network, rec.Trace,
			i64(int64(w.End - w.Start)), i64(w.Routing), i64(w.Adjust), i64(w.Routing + w.Adjust), "",
			"", "", "",
			"", "", "",
			"", "",
			itoa(w.Start), itoa(w.End),
			"", "", "",
			"", "", "",
			"", "", "", "",
			"", "", "",
			"", "", "",
		}
		if err := s.cw.Write(wrow); err != nil {
			return fmt.Errorf("report: writing window row of cell (%d,%d): %w", rec.I, rec.J, err)
		}
	}
	return nil
}

// Flush drains the CSV writer's buffer.
func (s *CSVSink) Flush() error {
	s.cw.Flush()
	if err := s.cw.Error(); err != nil {
		return fmt.Errorf("report: flushing csv: %w", err)
	}
	return nil
}
