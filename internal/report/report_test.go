package report

import (
	"strings"
	"testing"
)

func TestRenderAlignment(t *testing.T) {
	tb := Table{Title: "T", Header: []string{"name", "v"}}
	tb.AddRow("a", "1.00x")
	tb.AddRow("longername", "2")
	out := tb.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, two data rows
		t.Fatalf("expected 5 lines, got %d:\n%s", len(lines), out)
	}
	if lines[0] != "T" {
		t.Errorf("title line %q", lines[0])
	}
	// All data rows should align the second column at the same offset.
	off1 := strings.Index(lines[3], "1.00x")
	off2 := strings.Index(lines[4], "2")
	if off1 != off2 {
		t.Errorf("columns misaligned: %d vs %d\n%s", off1, off2, out)
	}
}

func TestRenderRaggedRows(t *testing.T) {
	// Regression: rows wider than the header were excluded from width
	// computation (and rows longer than the header crashed Render). Columns
	// must be sized to the widest row, wherever the widest cell lives.
	tb := Table{Title: "R", Header: []string{"name", "v"}}
	tb.AddRow("a", "1")
	tb.AddRow("b", "muchwiderthanheader", "extra", "cells")
	tb.AddRow("c", "2")
	out := tb.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 { // title, header, separator, three data rows
		t.Fatalf("expected 6 lines, got %d:\n%s", len(lines), out)
	}
	// The second column of every row aligns at the same offset, sized by
	// the ragged row's wide cell.
	offWide := strings.Index(lines[4], "muchwiderthanheader")
	if off := strings.Index(lines[3], "1"); off != offWide {
		t.Errorf("row before the ragged one misaligned: %d vs %d\n%s", off, offWide, out)
	}
	if off := strings.Index(lines[5], "2"); off != offWide {
		t.Errorf("row after the ragged one misaligned: %d vs %d\n%s", off, offWide, out)
	}
	// The ragged row's extra cells align into their own columns, and the
	// separator spans them.
	if !strings.Contains(lines[4], "extra  cells") {
		t.Errorf("extra cells not rendered: %q", lines[4])
	}
	if len(lines[2]) < strings.Index(lines[4], "cells") {
		t.Errorf("separator does not span the ragged row:\n%s", out)
	}
}

func TestMarkdown(t *testing.T) {
	tb := Table{Title: "M", Header: []string{"a", "b"}}
	tb.AddRow("x", "y")
	md := tb.Markdown()
	for _, want := range []string{"**M**", "| a | b |", "|---|---|", "| x | y |"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestRatio(t *testing.T) {
	if got := Ratio(87, 100); got != "0.87x" {
		t.Errorf("Ratio=%q", got)
	}
	if got := Ratio(100, 0); got != "-" {
		t.Errorf("Ratio by zero=%q", got)
	}
	if got := RatioF(1.059, 1.0); got != "1.059x" {
		t.Errorf("RatioF=%q", got)
	}
	if got := RatioF(1, 0); got != "-" {
		t.Errorf("RatioF by zero=%q", got)
	}
}

func TestAvgAndCount(t *testing.T) {
	if got := Avg(300, 100); got != "3.000" {
		t.Errorf("Avg=%q", got)
	}
	if got := Avg(300, 0); got != "-" {
		t.Errorf("Avg zero=%q", got)
	}
	if got := Count(42); got != "42" {
		t.Errorf("Count=%q", got)
	}
}
