// Package splaynet implements the binary SplayNet of Schmid et al.
// ("SplayNet: Towards Locally Self-Adjusting Networks", IEEE/ACM ToN 2016),
// the baseline the paper compares against.
//
// SplayNet is a self-adjusting binary search tree network: each node's
// identifier is its single routing key. Serving a request (u,v) routes along
// the tree path (up to the lowest common ancestor, then down) and then
// double-splays: u is splayed to the position of the lowest common ancestor
// of u and v, and v is splayed to become a child of u, so that a repetition
// of the request costs one hop.
//
// The implementation is deliberately independent of the k-ary machinery in
// internal/core so the two can cross-validate each other (k-ary SplayNet
// with k=2 must behave like this package up to rotation tie-breaking).
package splaynet

import (
	"fmt"

	"github.com/ksan-net/ksan/internal/sim"
)

type node struct {
	id      int
	l, r, p *node
}

// Net is a binary SplayNet on nodes 1..n.
type Net struct {
	n         int
	root      *node
	byID      []*node
	rotations int64
}

// New constructs a SplayNet with a balanced initial topology.
func New(n int) (*Net, error) {
	if n < 1 {
		return nil, fmt.Errorf("splaynet: need at least one node, got %d", n)
	}
	net := &Net{n: n, byID: make([]*node, n+1)}
	net.root = net.buildBalanced(1, n, nil)
	return net, nil
}

// MustNew is New for known-good parameters.
func MustNew(n int) *Net {
	net, err := New(n)
	if err != nil {
		panic(err)
	}
	return net
}

func (net *Net) buildBalanced(lo, hi int, p *node) *node {
	if lo > hi {
		return nil
	}
	mid := lo + (hi-lo)/2
	nd := &node{id: mid, p: p}
	net.byID[mid] = nd
	nd.l = net.buildBalanced(lo, mid-1, nd)
	nd.r = net.buildBalanced(mid+1, hi, nd)
	return nd
}

// Name implements sim.Network.
func (net *Net) Name() string { return "SplayNet" }

// N implements sim.Network.
func (net *Net) N() int { return net.n }

// Rotations returns the cumulative number of splay steps performed (each
// zig, zig-zig or zig-zag counts one, matching the k-ary accounting).
func (net *Net) Rotations() int64 { return net.rotations }

func (net *Net) depth(x *node) int {
	d := 0
	for x.p != nil {
		x = x.p
		d++
	}
	return d
}

// distLCA returns the tree-path length between a and b together with their
// lowest common ancestor, in one fused traversal (mirroring
// core.Tree.DistanceLCA): Serve needs both, and the fusion replaces the
// former lca-then-three-depths walk with two depth walks and one climb.
func (net *Net) distLCA(a, b *node) (int, *node) {
	if a == b {
		return 0, a
	}
	da, db := net.depth(a), net.depth(b)
	dist := 0
	for da > db {
		a, da, dist = a.p, da-1, dist+1
	}
	for db > da {
		b, db, dist = b.p, db-1, dist+1
	}
	for a != b {
		a, b, dist = a.p, b.p, dist+2
	}
	return dist, a
}

// Distance returns the tree-path length between ids u and v.
func (net *Net) Distance(u, v int) int {
	d, _ := net.distLCA(net.byID[u], net.byID[v])
	return d
}

// rotateUp performs a single BST rotation lifting x above its parent.
func (net *Net) rotateUp(x *node) {
	p := x.p
	g := p.p
	if p.l == x {
		p.l = x.r
		if x.r != nil {
			x.r.p = p
		}
		x.r = p
	} else {
		p.r = x.l
		if x.l != nil {
			x.l.p = p
		}
		x.l = p
	}
	p.p = x
	x.p = g
	if g == nil {
		net.root = x
	} else if g.l == p {
		g.l = x
	} else {
		g.r = x
	}
}

// splayUntilParent splays x upward until its parent is stop (nil for the
// root position), using zig-zig / zig-zag double steps and a final zig.
// Each elementary rotation (parent-child flip) is charged one unit,
// matching the k-ary accounting in internal/core.
func (net *Net) splayUntilParent(x, stop *node) {
	for x.p != stop {
		p := x.p
		g := p.p
		if g == stop {
			net.rotateUp(x) // zig
			net.rotations++
		} else if (g.l == p) == (p.l == x) {
			net.rotateUp(p) // zig-zig
			net.rotateUp(x)
			net.rotations += 2
		} else {
			net.rotateUp(x) // zig-zag
			net.rotateUp(x)
			net.rotations += 2
		}
	}
}

// Serve implements sim.Network: route (u,v) on the current tree, then
// double-splay so the pair becomes adjacent.
func (net *Net) Serve(u, v int) sim.Cost {
	a, b := net.byID[u], net.byID[v]
	if a == b {
		return sim.Cost{}
	}
	d, w := net.distLCA(a, b)
	dist := int64(d)
	before := net.rotations
	net.splayUntilParent(a, w.p)
	net.splayUntilParent(b, a)
	return sim.Cost{Routing: dist, Adjust: net.rotations - before}
}

// Validate checks the BST property, parent links and id coverage.
func (net *Net) Validate() error {
	count := 0
	var walk func(nd *node, lo, hi int) error
	walk = func(nd *node, lo, hi int) error {
		if nd == nil {
			return nil
		}
		if nd.id < lo || nd.id > hi {
			return fmt.Errorf("splaynet: node %d outside (%d..%d)", nd.id, lo, hi)
		}
		if net.byID[nd.id] != nd {
			return fmt.Errorf("splaynet: byID[%d] stale", nd.id)
		}
		count++
		if nd.l != nil && nd.l.p != nd {
			return fmt.Errorf("splaynet: bad parent link at %d.l", nd.id)
		}
		if nd.r != nil && nd.r.p != nd {
			return fmt.Errorf("splaynet: bad parent link at %d.r", nd.id)
		}
		if err := walk(nd.l, lo, nd.id-1); err != nil {
			return err
		}
		return walk(nd.r, nd.id+1, hi)
	}
	if net.root == nil || net.root.p != nil {
		return fmt.Errorf("splaynet: bad root")
	}
	if err := walk(net.root, 1, net.n); err != nil {
		return err
	}
	if count != net.n {
		return fmt.Errorf("splaynet: %d nodes reachable, want %d", count, net.n)
	}
	return nil
}

// Depth returns the current depth of id (root is 0); exported for tests.
func (net *Net) Depth(id int) int { return net.depth(net.byID[id]) }

// RootID returns the identifier currently at the root.
func (net *Net) RootID() int { return net.root.id }
