// Package splaynet implements the binary SplayNet of Schmid et al.
// ("SplayNet: Towards Locally Self-Adjusting Networks", IEEE/ACM ToN 2016),
// the baseline the paper compares against.
//
// SplayNet is a self-adjusting binary search tree network: each node's
// identifier is its single routing key. Serving a request (u,v) routes along
// the tree path (up to the lowest common ancestor, then down) and then
// double-splays: u is splayed to the position of the lowest common ancestor
// of u and v, and v is splayed to become a child of u, so that a repetition
// of the request costs one hop.
//
// The binary substrate is deliberately independent of the k-ary machinery
// in internal/core so the two can cross-validate each other (k-ary
// SplayNet with k=2 must behave like this package up to rotation
// tie-breaking). It plugs into the policy layer as a custom
// policy.Topology with the double splay as its Adjuster, making the
// canonical network the composition
//
//	binary substrate × (policy.Always, double splay)
//
// and opening the rest of the trigger axis (periodic or frozen binary
// SplayNets) through Compose.
package splaynet

import (
	"fmt"

	"github.com/ksan-net/ksan/internal/policy"
)

type node struct {
	id      int
	l, r, p *node
}

// Net is a binary SplayNet on nodes 1..n: a policy composition over the
// binary substrate.
type Net struct {
	*policy.Net
	t *tree
}

// tree is the binary substrate: it implements policy.Topology, stashing
// the routed endpoints and their LCA for the adjuster (serving is
// strictly sequential, so a single stash per substrate suffices).
type tree struct {
	n         int
	root      *node
	byID      []*node
	rotations int64

	a, b, w *node // last routed request's endpoints and LCA
}

// New constructs a SplayNet with a balanced initial topology.
func New(n int) (*Net, error) { return Compose("SplayNet", n, policy.Always()) }

// MustNew is New for known-good parameters.
func MustNew(n int) *Net {
	net, err := New(n)
	if err != nil {
		panic(err)
	}
	return net
}

// Compose builds the binary substrate under an arbitrary trigger; the
// adjuster is always the double splay (with policy.Never it simply never
// runs, freezing the topology).
func Compose(label string, n int, trig policy.Trigger) (*Net, error) {
	if n < 1 {
		return nil, fmt.Errorf("splaynet: need at least one node, got %d", n)
	}
	t := &tree{n: n, byID: make([]*node, n+1)}
	t.root = t.buildBalanced(1, n, nil)
	p, err := policy.NewCustom(label, t, trig, doubleSplay{t})
	if err != nil {
		return nil, fmt.Errorf("splaynet: %w", err)
	}
	return &Net{Net: p, t: t}, nil
}

func (t *tree) buildBalanced(lo, hi int, p *node) *node {
	if lo > hi {
		return nil
	}
	mid := lo + (hi-lo)/2
	nd := &node{id: mid, p: p}
	t.byID[mid] = nd
	nd.l = t.buildBalanced(lo, mid-1, nd)
	nd.r = t.buildBalanced(mid+1, hi, nd)
	return nd
}

// N implements policy.Topology.
func (t *tree) N() int { return t.n }

// Route implements policy.Topology: the routing cost is the tree-path
// length; the endpoints and LCA are stashed for the adjuster.
func (t *tree) Route(u, v int, _ *policy.Ctx) int64 {
	a, b := t.byID[u], t.byID[v]
	d, w := t.distLCA(a, b)
	t.a, t.b, t.w = a, b, w
	return int64(d)
}

// doubleSplay is the canonical SplayNet adjustment: splay u to the LCA's
// position, then v to a child of u.
type doubleSplay struct{ t *tree }

func (doubleSplay) Name() string      { return "splay" }
func (doubleSplay) NeedsWindow() bool { return false }
func (doubleSplay) NeedsTree() bool   { return false }

func (s doubleSplay) Adjust(_ *policy.Ctx) int64 {
	t := s.t
	before := t.rotations
	t.splayUntilParent(t.a, t.w.p)
	t.splayUntilParent(t.b, t.a)
	return t.rotations - before
}

// Rotations returns the cumulative number of splay steps performed (each
// zig, zig-zig or zig-zag counts one, matching the k-ary accounting).
func (net *Net) Rotations() int64 { return net.t.rotations }

func (t *tree) depth(x *node) int {
	d := 0
	for x.p != nil {
		x = x.p
		d++
	}
	return d
}

// distLCA returns the tree-path length between a and b together with their
// lowest common ancestor, in one fused traversal (mirroring
// core.Tree.DistanceLCA): Serve needs both, and the fusion replaces the
// former lca-then-three-depths walk with two depth walks and one climb.
func (t *tree) distLCA(a, b *node) (int, *node) {
	if a == b {
		return 0, a
	}
	da, db := t.depth(a), t.depth(b)
	dist := 0
	for da > db {
		a, da, dist = a.p, da-1, dist+1
	}
	for db > da {
		b, db, dist = b.p, db-1, dist+1
	}
	for a != b {
		a, b, dist = a.p, b.p, dist+2
	}
	return dist, a
}

// Distance returns the tree-path length between ids u and v.
func (net *Net) Distance(u, v int) int {
	d, _ := net.t.distLCA(net.t.byID[u], net.t.byID[v])
	return d
}

// rotateUp performs a single BST rotation lifting x above its parent.
func (t *tree) rotateUp(x *node) {
	p := x.p
	g := p.p
	if p.l == x {
		p.l = x.r
		if x.r != nil {
			x.r.p = p
		}
		x.r = p
	} else {
		p.r = x.l
		if x.l != nil {
			x.l.p = p
		}
		x.l = p
	}
	p.p = x
	x.p = g
	if g == nil {
		t.root = x
	} else if g.l == p {
		g.l = x
	} else {
		g.r = x
	}
}

// splayUntilParent splays x upward until its parent is stop (nil for the
// root position), using zig-zig / zig-zag double steps and a final zig.
// Each elementary rotation (parent-child flip) is charged one unit,
// matching the k-ary accounting in internal/core.
func (t *tree) splayUntilParent(x, stop *node) {
	for x.p != stop {
		p := x.p
		g := p.p
		if g == stop {
			t.rotateUp(x) // zig
			t.rotations++
		} else if (g.l == p) == (p.l == x) {
			t.rotateUp(p) // zig-zig
			t.rotateUp(x)
			t.rotations += 2
		} else {
			t.rotateUp(x) // zig-zag
			t.rotateUp(x)
			t.rotations += 2
		}
	}
}

// Validate checks the BST property, parent links and id coverage.
func (net *Net) Validate() error {
	t := net.t
	count := 0
	var walk func(nd *node, lo, hi int) error
	walk = func(nd *node, lo, hi int) error {
		if nd == nil {
			return nil
		}
		if nd.id < lo || nd.id > hi {
			return fmt.Errorf("splaynet: node %d outside (%d..%d)", nd.id, lo, hi)
		}
		if t.byID[nd.id] != nd {
			return fmt.Errorf("splaynet: byID[%d] stale", nd.id)
		}
		count++
		if nd.l != nil && nd.l.p != nd {
			return fmt.Errorf("splaynet: bad parent link at %d.l", nd.id)
		}
		if nd.r != nil && nd.r.p != nd {
			return fmt.Errorf("splaynet: bad parent link at %d.r", nd.id)
		}
		if err := walk(nd.l, lo, nd.id-1); err != nil {
			return err
		}
		return walk(nd.r, nd.id+1, hi)
	}
	if t.root == nil || t.root.p != nil {
		return fmt.Errorf("splaynet: bad root")
	}
	if err := walk(t.root, 1, t.n); err != nil {
		return err
	}
	if count != t.n {
		return fmt.Errorf("splaynet: %d nodes reachable, want %d", count, t.n)
	}
	return nil
}

// Depth returns the current depth of id (root is 0); exported for tests.
func (net *Net) Depth(id int) int { return net.t.depth(net.t.byID[id]) }

// RootID returns the identifier currently at the root.
func (net *Net) RootID() int { return net.t.root.id }
