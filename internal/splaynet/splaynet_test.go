package splaynet

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewBalanced(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 100, 1023} {
		net, err := New(n)
		if err != nil {
			t.Fatal(err)
		}
		if err := net.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
	if _, err := New(0); err == nil {
		t.Error("New(0) should fail")
	}
}

func TestBalancedDepthLogarithmic(t *testing.T) {
	net := MustNew(1023)
	for id := 1; id <= 1023; id++ {
		if d := net.Depth(id); d > 9 {
			t.Fatalf("depth(%d)=%d exceeds log2(1024)", id, d)
		}
	}
}

func TestServeMakesPairAdjacent(t *testing.T) {
	net := MustNew(127)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 300; i++ {
		u, v := 1+rng.Intn(127), 1+rng.Intn(127)
		if u == v {
			continue
		}
		net.Serve(u, v)
		if d := net.Distance(u, v); d != 1 {
			t.Fatalf("after Serve(%d,%d) distance is %d, want 1", u, v, d)
		}
		if err := net.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestServeSelfRequestFree(t *testing.T) {
	net := MustNew(10)
	c := net.Serve(4, 4)
	if c.Routing != 0 || c.Adjust != 0 {
		t.Errorf("self request cost %+v, want zero", c)
	}
}

func TestServeRoutingCostIsOldDistance(t *testing.T) {
	net := MustNew(63)
	u, v := 1, 63
	want := int64(net.Distance(u, v))
	c := net.Serve(u, v)
	if c.Routing != want {
		t.Errorf("routing cost %d, want pre-adjustment distance %d", c.Routing, want)
	}
}

func TestRepeatedRequestCheap(t *testing.T) {
	net := MustNew(255)
	net.Serve(3, 200)
	c := net.Serve(3, 200)
	if c.Routing != 1 {
		t.Errorf("repeated request routed %d hops, want 1", c.Routing)
	}
	if c.Adjust != 0 {
		t.Errorf("repeated request caused %d rotations, want 0", c.Adjust)
	}
}

func TestStaticOptimalitySkew(t *testing.T) {
	// Repeatedly accessing a tiny working set must be far cheaper than
	// uniform access (the qualitative content of splay-tree static
	// optimality / Theorem 12-13 of the paper).
	n, m := 511, 20000
	rng := rand.New(rand.NewSource(2))
	hot := MustNew(n)
	var hotCost int64
	for i := 0; i < m; i++ {
		c := hot.Serve(1+rng.Intn(4), 1+rng.Intn(4)) // 4 hot nodes
		hotCost += c.Routing + c.Adjust
	}
	uni := MustNew(n)
	var uniCost int64
	for i := 0; i < m; i++ {
		c := uni.Serve(1+rng.Intn(n), 1+rng.Intn(n))
		uniCost += c.Routing + c.Adjust
	}
	if hotCost*3 > uniCost {
		t.Errorf("hot working set cost %d not ≪ uniform cost %d", hotCost, uniCost)
	}
}

func TestLCAViaDistance(t *testing.T) {
	net := MustNew(31)
	// In the initial balanced BST on 1..31, root is 16.
	if got := net.RootID(); got != 16 {
		t.Fatalf("initial root %d, want 16", got)
	}
	// d(1,31) goes through the root: depth(1)+depth(31).
	want := net.Depth(1) + net.Depth(31)
	if got := net.Distance(1, 31); got != want {
		t.Errorf("d(1,31)=%d want %d", got, want)
	}
}

func TestQuickServeSequencesKeepBSTInvariant(t *testing.T) {
	f := func(seed int64, ops []uint16) bool {
		n := 64
		net := MustNew(n)
		if len(ops) > 100 {
			ops = ops[:100]
		}
		for _, op := range ops {
			u := 1 + int(op)%n
			v := 1 + int(op/64)%n
			net.Serve(u, v)
			if net.Validate() != nil {
				return false
			}
			if u != v && net.Distance(u, v) != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDistanceSymmetry(t *testing.T) {
	net := MustNew(100)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		net.Serve(1+rng.Intn(100), 1+rng.Intn(100))
	}
	for u := 1; u <= 100; u += 9 {
		for v := 1; v <= 100; v += 7 {
			if net.Distance(u, v) != net.Distance(v, u) {
				t.Fatalf("asymmetric distance (%d,%d)", u, v)
			}
		}
	}
}
