package main

import (
	"bufio"
	"strings"
	"testing"
)

func TestParseLine(t *testing.T) {
	cases := []struct {
		line string
		name string
		e    Entry
		ok   bool
	}{
		{
			"BenchmarkOptimal/n=512/k=8-8   	       3	 638912698 ns/op	12344544 B/op	    5045 allocs/op",
			"BenchmarkOptimal/n=512/k=8", Entry{NsPerOp: 638912698, BytesPerOp: 12344544, AllocsPerOp: 5045}, true,
		},
		{
			"BenchmarkServeKAryTemporal-4 	 4316890	       274.2 ns/op	       0 B/op	       0 allocs/op",
			"BenchmarkServeKAryTemporal", Entry{NsPerOp: 274.2}, true,
		},
		{ // no -benchmem columns
			"BenchmarkFoo 	     100	    105 ns/op",
			"BenchmarkFoo", Entry{NsPerOp: 105}, true,
		},
		{ // only the trailing proc suffix is stripped, inner dashes survive
			"BenchmarkA/p=-1-8 	 1	 5 ns/op",
			"BenchmarkA/p=-1", Entry{NsPerOp: 5}, true,
		},
		{ // a non-numeric dash suffix is part of the name
			"BenchmarkA/mode=fast-path 	 1	 5 ns/op",
			"BenchmarkA/mode=fast-path", Entry{NsPerOp: 5}, true,
		},
		{"goos: linux", "", Entry{}, false},
		{"PASS", "", Entry{}, false},
		{"ok  	github.com/ksan-net/ksan	0.035s", "", Entry{}, false},
	}
	for _, tc := range cases {
		name, e, ok := parseLine(tc.line)
		if ok != tc.ok || name != tc.name || e != tc.e {
			t.Errorf("parseLine(%q) = (%q, %+v, %v), want (%q, %+v, %v)",
				tc.line, name, e, ok, tc.name, tc.e, tc.ok)
		}
	}
}

func TestParseKeepsMinimum(t *testing.T) {
	in := `BenchmarkX-8 	 10	 200 ns/op	 8 B/op	 1 allocs/op
BenchmarkX-8 	 10	 150 ns/op	 8 B/op	 1 allocs/op
BenchmarkX-8 	 10	 180 ns/op	 8 B/op	 1 allocs/op`
	b, err := parse(bufio.NewScanner(strings.NewReader(in)))
	if err != nil {
		t.Fatal(err)
	}
	e, ok := b.Benchmarks["BenchmarkX"]
	if !ok || e.NsPerOp != 150 {
		t.Fatalf("got %+v (present=%v), want min ns/op 150", e, ok)
	}
	if b.Schema != "ksan-bench/v1" {
		t.Errorf("schema %q", b.Schema)
	}
}
