// Command benchjson converts `go test -bench -benchmem` output on stdin
// into the machine-readable benchmark-baseline schema used by
// BENCH_PR4.json at the repo root:
//
//	{
//	  "schema": "ksan-bench/v1",
//	  "go": "go1.24.0", "goos": "linux", "goarch": "amd64",
//	  "benchmarks": {
//	    "BenchmarkOptimal/n=512/k=8": {"ns_per_op": 6.4e8, "allocs_per_op": 5045, "bytes_per_op": 12344544}
//	  }
//	}
//
// The GOMAXPROCS suffix (-N) is stripped from benchmark names so baselines
// diff cleanly across machines; a benchmark that appears several times
// (e.g. -count > 1) keeps its minimum ns/op, the conventional
// noise-resistant summary. scripts/bench_pr4.sh is the canonical producer;
// CI regenerates the file at -benchtime=1x and validates both it and the
// checked-in baseline against this schema.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Entry is one benchmark's summary.
type Entry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Baseline is the document schema.
type Baseline struct {
	Schema     string           `json:"schema"`
	Go         string           `json:"go"`
	GOOS       string           `json:"goos"`
	GOARCH     string           `json:"goarch"`
	Benchmarks map[string]Entry `json:"benchmarks"`
}

func main() {
	b, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(b.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(b); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func parse(sc *bufio.Scanner) (*Baseline, error) {
	b := &Baseline{
		Schema:     "ksan-bench/v1",
		Go:         runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Benchmarks: map[string]Entry{},
	}
	for sc.Scan() {
		name, e, ok := parseLine(sc.Text())
		if !ok {
			continue
		}
		if prev, seen := b.Benchmarks[name]; seen && prev.NsPerOp <= e.NsPerOp {
			continue
		}
		b.Benchmarks[name] = e
	}
	return b, sc.Err()
}

// parseLine decodes one `Benchmark.../sub-8  10  123 ns/op  45 B/op  6
// allocs/op` line; non-benchmark lines return ok=false.
func parseLine(line string) (string, Entry, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return "", Entry{}, false
	}
	name := trimProcSuffix(f[0])
	var e Entry
	got := false
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return "", Entry{}, false
		}
		switch f[i+1] {
		case "ns/op":
			e.NsPerOp = v
			got = true
		case "B/op":
			e.BytesPerOp = int64(v)
		case "allocs/op":
			e.AllocsPerOp = int64(v)
		}
	}
	return name, e, got
}

// trimProcSuffix drops the trailing -GOMAXPROCS from a benchmark name
// (only when it is a pure number, so sub-benchmark names keep their
// dashes).
func trimProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 || i == len(name)-1 {
		return name
	}
	for _, c := range name[i+1:] { // unsigned digits only: "-1" is a name
		if c < '0' || c > '9' {
			return name
		}
	}
	return name[:i]
}
