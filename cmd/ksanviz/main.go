// Command ksanviz builds a topology and emits it as ASCII or Graphviz dot,
// for inspecting the structures of the paper's figures at any size.
//
// Usage:
//
//	ksanviz -topo balanced|path|random|centroid|uniform-opt|centroid-net -n 25 -k 3 [-format ascii|dot]
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/ksan-net/ksan/internal/centroidnet"
	"github.com/ksan-net/ksan/internal/core"
	"github.com/ksan-net/ksan/internal/statictree"
)

func main() {
	topo := flag.String("topo", "balanced", "balanced, path, random, centroid, uniform-opt or centroid-net")
	n := flag.Int("n", 25, "number of network nodes")
	k := flag.Int("k", 3, "arity bound")
	seed := flag.Int64("seed", 1, "seed (random topology only)")
	format := flag.String("format", "ascii", "ascii or dot")
	flag.Parse()

	var (
		t   *core.Tree
		err error
	)
	switch *topo {
	case "balanced":
		t, err = core.NewBalanced(*n, *k)
	case "path":
		t, err = core.NewPath(*n, *k)
	case "random":
		t, err = core.NewRandom(*n, *k, *seed)
	case "centroid":
		t, err = statictree.Centroid(*n, *k)
	case "uniform-opt":
		t, _, err = statictree.OptimalUniform(*n, *k)
	case "centroid-net":
		var net *centroidnet.Net
		net, err = centroidnet.New(*n, *k)
		if err == nil {
			t = net.Tree()
		}
	default:
		fmt.Fprintf(os.Stderr, "ksanviz: unknown topology %q\n", *topo)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	switch *format {
	case "ascii":
		fmt.Print(t.Render())
	case "dot":
		fmt.Print(t.DOT())
	default:
		fmt.Fprintf(os.Stderr, "ksanviz: unknown format %q\n", *format)
		os.Exit(2)
	}
}
