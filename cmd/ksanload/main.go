// Command ksanload drives the concurrent sharded serving layer
// (internal/serve) against one network × trace pair described by a JSON
// load document, and reports aggregate throughput, routing/adjustment
// cost, and closed-loop latency percentiles from mergeable streaming
// histograms.
//
// Usage:
//
//	ksanload -load file.json [-format table|json|csv]
//	         [-shards S] [-clients C] [-target OPS] [-warmup N]
//	         [-max-requests M] [-duration 30s] [-latency-sample K]
//	         [-rate] [-strip-timing] [-cpuprofile file] [-memprofile file]
//
// The load document (see DESIGN.md §11 and testdata/golden_load.json for
// a sample) holds a network def, a trace def, a serve block, and
// optionally a faults block scripting deterministic crash/stall schedules
// with checkpoint+replay recovery (DESIGN.md §12, testdata/
// faulted_load.json); every serve flag above overrides the corresponding
// document field when set.
// -rate streams live aggregate requests/sec samples to stderr once per
// second while the run is in flight.
//
// -format picks the result encoding: "table" renders a human summary
// (aggregate totals, latency and routing percentiles, per-shard rows),
// "json" emits the run as one report.Record JSON line, "csv" as a CSV
// row — the same stable external schema the experiment sinks write, so
// serving results land in the same analysis pipelines as engine grids.
//
// -strip-timing zeroes every wall-clock-derived field (elapsed,
// throughput, latency percentiles) in json/csv output, leaving only the
// deterministic cost fields; with one shard and one client the remaining
// record is bit-reproducible across runs and machines, which is what the
// checked-in golden pins in CI.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"github.com/ksan-net/ksan/internal/report"
	"github.com/ksan-net/ksan/internal/serve"
	"github.com/ksan-net/ksan/internal/spec"
)

func main() {
	load := flag.String("load", "", "JSON load document to run (required)")
	format := flag.String("format", "table", "result format: table, json or csv")
	shards := flag.Int("shards", -1, "override: number of shards")
	clients := flag.Int("clients", -1, "override: number of closed-loop client routines")
	target := flag.Float64("target", -1, "override: aggregate target throughput, requests/sec (0 = unthrottled)")
	warmup := flag.Int("warmup", -1, "override: per-client warmup requests excluded from measurement")
	maxRequests := flag.Int64("max-requests", -1, "override: total request budget (0 = the whole stream)")
	duration := flag.Duration("duration", -1, "override: wall-clock run cap (0 = none)")
	latencySample := flag.Int("latency-sample", 0, "override: measure latency on every k-th request (-1 = off, 0 = keep document setting)")
	rate := flag.Bool("rate", false, "stream live aggregate requests/sec to stderr")
	stripTiming := flag.Bool("strip-timing", false, "zero wall-clock-derived fields in json/csv output (deterministic golden mode)")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile taken at run end to this file")
	flag.Parse()

	code, err := run(*load, *format, *shards, *clients, *target, *warmup,
		*maxRequests, *duration, *latencySample, *rate, *stripTiming, *cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ksanload:", err)
	}
	os.Exit(code)
}

func run(load, format string, shards, clients int, target float64, warmup int,
	maxRequests int64, duration time.Duration, latencySample int,
	rate, stripTiming bool, cpuprofile, memprofile string) (int, error) {
	if load == "" {
		return 2, fmt.Errorf("-load is required (a JSON load document; see DESIGN.md §11)")
	}
	switch format {
	case "table", "json", "csv":
	default:
		return 2, fmt.Errorf("unknown -format %q (want table, json or csv)", format)
	}

	f, err := os.Open(load)
	if err != nil {
		return 2, err
	}
	doc, err := spec.DecodeLoad(f)
	f.Close()
	if err != nil {
		return 2, err
	}
	mk, gen, cfg, err := doc.Resolve()
	if err != nil {
		return 2, err
	}

	// Flag overrides beat the document's serve block.
	if shards >= 0 {
		cfg.Shards = shards
	}
	if clients >= 0 {
		cfg.Clients = clients
	}
	if target >= 0 {
		cfg.TargetOps = target
	}
	if warmup >= 0 {
		cfg.Warmup = warmup
	}
	if maxRequests >= 0 {
		cfg.MaxRequests = maxRequests
	}
	if duration >= 0 {
		cfg.Duration = duration
	}
	switch {
	case latencySample > 0:
		cfg.LatencySample = latencySample
	case latencySample == -1:
		cfg.LatencySample = 0
	}
	if rate {
		cfg.OnRate = func(s serve.RateSample) {
			fmt.Fprintf(os.Stderr, "[%8s] %d requests, %.0f req/s\n",
				s.Elapsed.Round(time.Millisecond), s.Requests, s.Rate)
		}
	}

	if cpuprofile != "" {
		pf, err := os.Create(cpuprofile)
		if err != nil {
			return 2, err
		}
		if err := pprof.StartCPUProfile(pf); err != nil {
			pf.Close()
			return 2, err
		}
		defer func() {
			pprof.StopCPUProfile()
			pf.Close()
		}()
	}
	// Like the CPU profile, the heap profile flushes in a defer so it is
	// written even when the run itself fails — profiling a failing run is
	// exactly when the data matters.
	if memprofile != "" {
		mf, err := os.Create(memprofile)
		if err != nil {
			return 2, err
		}
		defer func() {
			runtime.GC() // settle accounting so the profile reflects live objects
			if err := pprof.Lookup("heap").WriteTo(mf, 0); err != nil {
				fmt.Fprintln(os.Stderr, "ksanload: writing heap profile:", err)
			}
			mf.Close()
		}()
	}

	stats, err := serve.Run(context.Background(), cfg, mk, gen)
	if err != nil {
		return 1, err
	}

	switch format {
	case "table":
		printTable(os.Stdout, stats)
	case "json":
		sink := report.NewJSONLSink(os.Stdout)
		if err := sink.Record(recordOf(stats, stripTiming)); err != nil {
			return 1, err
		}
		if err := sink.Flush(); err != nil {
			return 1, err
		}
	case "csv":
		sink := report.NewCSVSink(os.Stdout)
		if err := sink.Record(recordOf(stats, stripTiming)); err != nil {
			return 1, err
		}
		if err := sink.Flush(); err != nil {
			return 1, err
		}
	}
	return 0, nil
}

// recordOf flattens a serving run into the sinks' stable external schema.
// Latency percentiles convert from the histogram's nanoseconds to the
// schema's microseconds.
func recordOf(s *serve.Stats, stripTiming bool) report.Record {
	rec := report.Record{
		Network:        s.Network,
		Trace:          s.Trace,
		Requests:       s.Requests,
		Routing:        s.Routing,
		Adjust:         s.Adjust,
		Total:          s.Total(),
		WarmupRequests: s.WarmupRequests,
		WarmupRouting:  s.WarmupRouting,
		WarmupAdjust:   s.WarmupAdjust,
		P50Routing:     s.RoutingHist.Percentile(0.50),
		P99Routing:     s.RoutingHist.Percentile(0.99),
		Shards:         s.Shards,
		Clients:        s.Clients,
		CrossShard:     s.CrossShard,
	}
	if s.Requests > 0 {
		rec.AvgRouting = float64(s.Routing) / float64(s.Requests)
	}
	if f := s.Faults; f != nil {
		rec.Crashes = f.Crashes
		rec.Recoveries = f.Recoveries
		rec.Checkpoints = f.Checkpoints
		rec.ReplayedRequests = f.ReplayedRequests
		rec.Stalls = f.Stalls
		rec.Timeouts = f.Timeouts
		rec.Retries = f.Retries
		rec.FailedRequests = f.FailedRequests
		rec.DegradedRequests = f.DegradedRequests
		rec.DegradedRouting = f.DegradedRouting
	}
	if !stripTiming {
		rec.ElapsedSeconds = s.Elapsed.Seconds()
		rec.Throughput = s.Throughput
		rec.P50LatencyUs = s.LatencyHist.Percentile(0.50) / 1e3
		rec.P99LatencyUs = s.LatencyHist.Percentile(0.99) / 1e3
		rec.MaxLatencyUs = float64(s.LatencyHist.Max()) / 1e3
	}
	return rec
}

// printTable renders the human summary: aggregate totals, percentiles,
// and one row per shard.
func printTable(w *os.File, s *serve.Stats) {
	fmt.Fprintf(w, "network   %s\ntrace     %s\n", s.Network, s.Trace)
	fmt.Fprintf(w, "shards    %d    clients %d\n", s.Shards, s.Clients)
	fmt.Fprintf(w, "requests  %d (warmup %d)    cross-shard %d (warmup %d)\n",
		s.Requests, s.WarmupRequests, s.CrossShard, s.WarmupCross)
	fmt.Fprintf(w, "routing   %d    adjust %d    total %d\n", s.Routing, s.Adjust, s.Total())
	fmt.Fprintf(w, "elapsed   %s    throughput %.0f req/s\n", s.Elapsed.Round(time.Millisecond), s.Throughput)
	if s.RoutingHist.Count() > 0 {
		fmt.Fprintf(w, "routing cost   p50 %.0f  p99 %.0f  max %d\n",
			s.RoutingHist.Percentile(0.50), s.RoutingHist.Percentile(0.99), s.RoutingHist.Max())
	}
	if s.LatencyHist.Count() > 0 {
		fmt.Fprintf(w, "latency (µs)   p50 %.1f  p99 %.1f  max %.1f   (%d sampled)\n",
			s.LatencyHist.Percentile(0.50)/1e3, s.LatencyHist.Percentile(0.99)/1e3,
			float64(s.LatencyHist.Max())/1e3, s.LatencyHist.Count())
	}
	if f := s.Faults; f != nil {
		fmt.Fprintf(w, "faults    crashes %d  recoveries %d  stalls %d  checkpoints %d  replayed %d (routing %d adjust %d)\n",
			f.Crashes, f.Recoveries, f.Stalls, f.Checkpoints, f.ReplayedRequests, f.ReplayRouting, f.ReplayAdjust)
		fmt.Fprintf(w, "clients   rejected %d  timeouts %d  retries %d  late %d\n",
			f.Rejected, f.Timeouts, f.Retries, f.LateReplies)
		fmt.Fprintf(w, "outcomes  failed %d  degraded %d (routing %d)\n",
			f.FailedRequests, f.DegradedRequests, f.DegradedRouting)
	}
	if s.Faults != nil {
		fmt.Fprintf(w, "\n%6s %8s %12s %14s %14s %8s %8s %10s\n",
			"shard", "nodes", "requests", "routing", "adjust", "crashes", "rejected", "replayed")
		for _, ps := range s.PerShard {
			fmt.Fprintf(w, "%6d %8d %12d %14d %14d %8d %8d %10d\n",
				ps.Shard, ps.Nodes, ps.Requests, ps.Routing, ps.Adjust, ps.Crashes, ps.Rejected, ps.Replayed)
		}
		return
	}
	fmt.Fprintf(w, "\n%6s %8s %12s %14s %14s\n", "shard", "nodes", "requests", "routing", "adjust")
	for _, ps := range s.PerShard {
		fmt.Fprintf(w, "%6d %8d %12d %14d %14d\n", ps.Shard, ps.Nodes, ps.Requests, ps.Routing, ps.Adjust)
	}
}
