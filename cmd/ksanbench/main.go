// Command ksanbench regenerates the tables and figures of the paper's
// evaluation (Section 5) and the appendix observations, and runs arbitrary
// user-defined experiment grids from JSON files.
//
// Usage:
//
//	ksanbench [-scale quick|default|paper] [-only 1,2,...,8|remark10|lemma9|entropy|ablations]
//	          [-workers N] [-timeout 30m] [-progress] [-cpuprofile file]
//	ksanbench -experiment file.json [-format table|json|csv]
//	          [-workers N] [-timeout 30m] [-progress] [-cpuprofile file]
//
// With no -only flag the whole suite runs in paper order. Scales differ in
// trace length and node counts; see DESIGN.md §4 for the exact dimensions
// and EXPERIMENTS.md for paper-vs-measured values. -workers bounds the
// experiment engine's worker pool (default: GOMAXPROCS), -timeout aborts a
// run that exceeds the deadline (partial tables are flushed), and
// -progress streams per-section completion lines to stderr.
//
// With -experiment, the paper suite is skipped and the grid described by
// the JSON experiment document runs instead: every network def × every
// trace def under the file's engine options (see DESIGN.md §6 for the
// schema, testdata/experiment.json for a sample, and EXPERIMENTS.md for a
// walkthrough). -workers overrides the file's worker bound. -format picks
// the result encoding: "table" renders an aligned summary table once the
// grid drains, "json" emits one JSON object per cell (JSON Lines, window
// time-series included) as cells finish, "csv" emits tidy CSV rows (one
// "cell" row per cell plus one "window" row per time-series sample).
//
// -cpuprofile file writes a pprof CPU profile covering the whole run
// (whichever mode), for chasing regressions in the BENCH_PR4.json
// trajectory: `go tool pprof $(which ksanbench) file`. The profile is
// flushed even when the run fails.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"strings"
	"time"

	"github.com/ksan-net/ksan/internal/experiments"
)

func main() {
	scale := flag.String("scale", "default", "experiment scale: quick, default or paper")
	only := flag.String("only", "", "comma-separated subset: 1..8, remark10, lemma9, entropy, ablations")
	workers := flag.Int("workers", 0, "worker pool size for the experiment engine (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 0, "abort the run after this duration (0 = no limit)")
	progress := flag.Bool("progress", false, "stream per-section progress lines to stderr")
	experiment := flag.String("experiment", "", "run the grid from this JSON experiment file instead of the paper suite")
	format := flag.String("format", "table", "result format for -experiment runs: table, json or csv")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	flag.Parse()

	// All exits funnel through here so the CPU profile (and any future
	// teardown) survives error paths; os.Exit skips deferred calls.
	code, err := run(*scale, *only, *workers, *timeout, *progress, *experiment, *format, *cpuprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ksanbench:", err)
	}
	os.Exit(code)
}

func run(scale, only string, workers int, timeout time.Duration, progress bool, experiment, format, cpuprofile string) (int, error) {
	if cpuprofile != "" {
		f, err := os.Create(cpuprofile)
		if err != nil {
			return 2, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return 2, err
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	if experiment != "" {
		if err := runExperiment(ctx, experiment, format, workers, progress); err != nil {
			return 1, err
		}
		return 0, nil
	}
	if format != "table" {
		return 2, fmt.Errorf("-format requires -experiment (the paper suite always renders tables)")
	}

	sc, err := experiments.ScaleByName(scale)
	if err != nil {
		return 2, err
	}
	opt := experiments.Options{Workers: workers}
	if progress {
		start := time.Now()
		opt.Progress = func(section string) {
			fmt.Fprintf(os.Stderr, "[%8s] %s\n", time.Since(start).Round(time.Millisecond), section)
		}
	}

	if only == "" {
		if err := experiments.RunSuite(ctx, os.Stdout, sc, opt); err != nil {
			return 1, err
		}
		return 0, nil
	}

	if err := runOnly(ctx, sc, opt, only); err != nil {
		return 1, err
	}
	return 0, nil
}

// runOnly regenerates the requested subset of the suite.
func runOnly(ctx context.Context, sc experiments.Scale, opt experiments.Options, only string) error {
	eng := opt.NewEngine()
	loads := experiments.MakeWorkloads(sc)
	wants := map[string]bool{}
	for _, s := range strings.Split(only, ",") {
		wants[strings.TrimSpace(s)] = true
	}
	anyTable := false
	for i := 1; i <= 7; i++ {
		if wants[fmt.Sprint(i)] {
			anyTable = true
		}
	}
	if anyTable {
		tables, err := experiments.Tables1Through7Ctx(ctx, eng, loads, sc)
		if err != nil {
			return err
		}
		for i, res := range tables {
			if wants[fmt.Sprint(i+1)] {
				fmt.Println(res.Table.Render())
			}
		}
		opt.Report("tables 1-7 done")
	}
	if wants["8"] {
		_, t8, err := experiments.Table8Ctx(ctx, eng, loads, sc)
		if err != nil {
			return err
		}
		fmt.Println(t8.Render())
		opt.Report("table 8 done")
	}
	if wants["remark10"] {
		tbl, all, err := experiments.CentroidOptimalityCtx(ctx, opt.Workers, []int{10, 30, 60, 100, 250, 500, 999}, []int{2, 3, 5, 10})
		if err != nil {
			return err
		}
		fmt.Println(tbl.Render())
		fmt.Printf("centroid tree optimal on every tested (n,k): %v\n\n", all)
		opt.Report("remark 10 done")
	}
	if wants["lemma9"] {
		tbl, err := experiments.Lemma9ScalingCtx(ctx, opt.Workers, []int{256, 512, 1024, 2048, 4096}, []int{2, 3, 5, 10})
		if err != nil {
			return err
		}
		fmt.Println(tbl.Render())
		opt.Report("lemma 9 done")
	}
	if wants["entropy"] {
		tbl, err := experiments.EntropyBoundCheckCtx(ctx, eng, loads, 3)
		if err != nil {
			return err
		}
		fmt.Println(tbl.Render())
		opt.Report("entropy bound done")
	}
	if wants["ablations"] {
		tr := loads.Temporals[0.5]
		ks := []int{2, 4, 8}
		a1, err := experiments.AblationCostAccountingCtx(ctx, eng, tr, ks)
		if err != nil {
			return err
		}
		fmt.Println(a1.Render())
		a2, err := experiments.AblationSemiSplayOnlyCtx(ctx, eng, tr, ks)
		if err != nil {
			return err
		}
		fmt.Println(a2.Render())
		a3, err := experiments.AblationBlockPolicyCtx(ctx, eng, tr, ks)
		if err != nil {
			return err
		}
		fmt.Println(a3.Render())
		a4, err := experiments.AblationInitialTopologyCtx(ctx, eng, tr, 4)
		if err != nil {
			return err
		}
		fmt.Println(a4.Render())
		a5, err := experiments.AblationPolicyGridCtx(ctx, eng, tr, 4)
		if err != nil {
			return err
		}
		fmt.Println(a5.Render())
		a6, err := experiments.AblationReconvergenceCtx(ctx, opt.Workers, sc)
		if err != nil {
			return err
		}
		fmt.Println(a6.Render())
		opt.Report("ablations done")
	}
	return ctx.Err()
}
