// Command ksanbench regenerates the tables and figures of the paper's
// evaluation (Section 5) and the appendix observations.
//
// Usage:
//
//	ksanbench [-scale quick|default|paper] [-only 1,2,...,8|remark10|lemma9|entropy|ablations]
//
// With no -only flag the whole suite runs in paper order. Scales differ in
// trace length and node counts; see DESIGN.md §4 for the exact dimensions
// and EXPERIMENTS.md for paper-vs-measured values.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/ksan-net/ksan/internal/experiments"
)

func main() {
	scale := flag.String("scale", "default", "experiment scale: quick, default or paper")
	only := flag.String("only", "", "comma-separated subset: 1..8, remark10, lemma9, entropy, ablations")
	flag.Parse()

	sc, err := experiments.ScaleByName(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *only == "" {
		experiments.RunAll(os.Stdout, sc)
		return
	}

	loads := experiments.MakeWorkloads(sc)
	wants := map[string]bool{}
	for _, s := range strings.Split(*only, ",") {
		wants[strings.TrimSpace(s)] = true
	}
	anyTable := false
	for i := 1; i <= 7; i++ {
		if wants[fmt.Sprint(i)] {
			anyTable = true
		}
	}
	if anyTable {
		for i, res := range experiments.Tables1Through7(loads, sc) {
			if wants[fmt.Sprint(i+1)] {
				fmt.Println(res.Table.Render())
			}
		}
	}
	if wants["8"] {
		_, t8 := experiments.Table8(loads, sc)
		fmt.Println(t8.Render())
	}
	if wants["remark10"] {
		tbl, all := experiments.CentroidOptimality([]int{10, 30, 60, 100, 250, 500, 999}, []int{2, 3, 5, 10})
		fmt.Println(tbl.Render())
		fmt.Printf("centroid tree optimal on every tested (n,k): %v\n\n", all)
	}
	if wants["lemma9"] {
		fmt.Println(experiments.Lemma9Scaling([]int{256, 512, 1024, 2048, 4096}, []int{2, 3, 5, 10}).Render())
	}
	if wants["entropy"] {
		fmt.Println(experiments.EntropyBoundCheck(loads, 3).Render())
	}
	if wants["ablations"] {
		tr := loads.Temporals[0.5]
		ks := []int{2, 4, 8}
		fmt.Println(experiments.AblationCostAccounting(tr, ks).Render())
		fmt.Println(experiments.AblationSemiSplayOnly(tr, ks).Render())
		fmt.Println(experiments.AblationBlockPolicy(tr, ks).Render())
		fmt.Println(experiments.AblationInitialTopology(tr, 4).Render())
	}
}
