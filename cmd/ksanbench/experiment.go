package main

import (
	"context"
	"fmt"
	"os"
	"sort"
	"time"

	"github.com/ksan-net/ksan/internal/engine"
	"github.com/ksan-net/ksan/internal/report"
	"github.com/ksan-net/ksan/internal/spec"
)

// runExperiment loads a JSON experiment document, resolves it through the
// spec registries, streams the grid, and writes results to stdout in the
// requested format. Cells flow to the json/csv sinks as they finish; the
// table format collects and renders once the stream drains.
func runExperiment(ctx context.Context, path, format string, workers int, progress bool) error {
	switch format {
	case "table", "json", "csv":
		// validated before any trace materializes: a format typo must not
		// cost minutes of generation first
	default:
		return fmt.Errorf("unknown -format %q (want table, json or csv)", format)
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	x, err := spec.Decode(f)
	f.Close()
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}

	nets, traces, opts, err := x.Resolve()
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if workers > 0 {
		// The CLI flag overrides the file's worker bound (options apply in
		// order, last write wins).
		opts = append(opts, engine.WithWorkers(workers))
	}
	start := time.Now()
	if progress {
		// Mid-cell updates from the engine (window boundaries, or every
		// 2048 requests without a window); completion lines come from the
		// stream consumer below, so events at Requests == Total stay quiet
		// here to avoid duplicates. Streams of unknown length (csv traces)
		// report Total < 0 and stay live until the completion line.
		opts = append(opts, engine.WithProgress(func(p engine.Progress) {
			if p.Total < 0 {
				fmt.Fprintf(os.Stderr, "[%8s] %s on %s: %d requests\n",
					time.Since(start).Round(time.Millisecond), p.Network, p.Trace, p.Requests)
			} else if p.Requests < p.Total {
				fmt.Fprintf(os.Stderr, "[%8s] %s on %s: %d/%d requests\n",
					time.Since(start).Round(time.Millisecond), p.Network, p.Trace, p.Requests, p.Total)
			}
		}))
	}
	eng := engine.New(opts...)

	var sink report.Sink
	var cells []engine.Cell
	switch format {
	case "json":
		sink = report.NewJSONLSink(os.Stdout)
	case "csv":
		sink = report.NewCSVSink(os.Stdout)
	case "table":
		// collected below
	}

	total := len(nets) * len(traces)
	done := 0
	var firstErr error
	for c, err := range eng.Stream(ctx, nets, traces) {
		done++
		if progress {
			fmt.Fprintf(os.Stderr, "[%8s] %s on %s done (%d/%d cells)\n",
				time.Since(start).Round(time.Millisecond), c.Result.Name, c.Result.Trace, done, total)
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
		if err != nil {
			continue // partial/failed cells stay out of the output
		}
		if sink != nil {
			if err := sink.Cell(c); err != nil {
				return err
			}
			continue
		}
		cells = append(cells, c)
	}
	if sink != nil {
		if err := sink.Flush(); err != nil {
			return err
		}
	} else {
		fmt.Print(experimentTable(x, cells).Render())
	}
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// experimentTable renders collected cells as an aligned summary table in
// grid order.
func experimentTable(x *spec.Experiment, cells []engine.Cell) report.Table {
	sort.Slice(cells, func(a, b int) bool {
		if cells[a].I != cells[b].I {
			return cells[a].I < cells[b].I
		}
		return cells[a].J < cells[b].J
	})
	title := "Experiment"
	if x.Name != "" {
		title = fmt.Sprintf("Experiment %q", x.Name)
	}
	t := report.Table{
		Title:  title,
		Header: []string{"network", "trace", "requests", "routing", "adjust", "total", "avg routing", "p50", "p99"},
	}
	for _, c := range cells {
		r := c.Result
		t.AddRow(r.Name, r.Trace,
			report.Count(r.Requests), report.Count(r.Routing), report.Count(r.Adjust),
			report.Count(r.Total()), fmt.Sprintf("%.3f", r.AvgRouting()),
			fmt.Sprintf("%.0f", r.P50Routing), fmt.Sprintf("%.0f", r.P99Routing))
	}
	return t
}
