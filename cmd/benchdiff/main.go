// Command benchdiff compares two ksan-bench/v1 benchmark baselines (see
// cmd/benchjson) and exits non-zero when the candidate regresses against
// the baseline, making checked-in BENCH_PR*.json files enforceable
// instead of advisory.
//
//	benchdiff [flags] baseline.json candidate.json
//
// Each metric has its own noise model, because each fails differently:
//
//   - ns_per_op is only meaningful when both files come from the same
//     machine at a real -benchtime; it is compared with a relative
//     tolerance (-ns-tol, default 30%) and can be excluded entirely with
//     -skip-ns — which CI does, since its candidate runs at a fixed small
//     iteration count on shared runners where timings are garbage.
//   - bytes_per_op is stable across machines but jitters with GC timing
//     and amortized rebuild costs; it gets a relative tolerance
//     (-bytes-tol, default 20%) plus an absolute slack floor
//     (-bytes-slack, default 64 B) so 0→small-noise does not fire while
//     0→hundreds does.
//   - allocs_per_op is the strictest contract in the repo (the serve
//     paths pin exact zero); it defaults to zero tolerance and zero
//     slack.
//
// A benchmark present in the baseline but missing from the candidate is
// a failure by default (-allow-missing relaxes it): losing coverage must
// be as loud as losing performance. Improvements never fail and are
// reported on stdout.
//
// Exit codes: 0 clean, 1 regression (or lost coverage), 2 usage or
// malformed input.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

// Entry mirrors cmd/benchjson's per-benchmark summary.
type Entry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Baseline mirrors cmd/benchjson's document schema.
type Baseline struct {
	Schema     string           `json:"schema"`
	Benchmarks map[string]Entry `json:"benchmarks"`
}

// Tolerances is the per-metric noise model of one comparison.
type Tolerances struct {
	SkipNs      bool
	NsTol       float64 // relative
	BytesTol    float64 // relative
	BytesSlack  int64   // absolute floor
	AllocsTol   float64 // relative
	AllocsSlack int64   // absolute floor
}

// Finding is one benchmark's verdict.
type Finding struct {
	Name   string
	Metric string
	Base   float64
	Cand   float64
	Limit  float64
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s %g -> %g (limit %g)", f.Name, f.Metric, f.Base, f.Cand, f.Limit)
}

// limit is the largest candidate value the noise model accepts.
func limit(base float64, tol float64, slack int64) float64 {
	return base*(1+tol) + float64(slack)
}

// Compare diffs the candidate against the baseline under the given noise
// model, returning regressions, benchmarks missing from the candidate,
// and improvements (any metric strictly better, no metric regressed).
func Compare(base, cand *Baseline, tol Tolerances) (regressions []Finding, missing []string, improved []string) {
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b := base.Benchmarks[name]
		c, ok := cand.Benchmarks[name]
		if !ok {
			missing = append(missing, name)
			continue
		}
		var regs []Finding
		if !tol.SkipNs {
			if lim := limit(b.NsPerOp, tol.NsTol, 0); c.NsPerOp > lim {
				regs = append(regs, Finding{name, "ns/op", b.NsPerOp, c.NsPerOp, lim})
			}
		}
		if lim := limit(float64(b.BytesPerOp), tol.BytesTol, tol.BytesSlack); float64(c.BytesPerOp) > lim {
			regs = append(regs, Finding{name, "bytes/op", float64(b.BytesPerOp), float64(c.BytesPerOp), lim})
		}
		if lim := limit(float64(b.AllocsPerOp), tol.AllocsTol, tol.AllocsSlack); float64(c.AllocsPerOp) > lim {
			regs = append(regs, Finding{name, "allocs/op", float64(b.AllocsPerOp), float64(c.AllocsPerOp), lim})
		}
		if len(regs) > 0 {
			regressions = append(regressions, regs...)
			continue
		}
		better := (!tol.SkipNs && c.NsPerOp < b.NsPerOp) || c.BytesPerOp < b.BytesPerOp || c.AllocsPerOp < b.AllocsPerOp
		if better {
			improved = append(improved, name)
		}
	}
	return regressions, missing, improved
}

func load(path string) (*Baseline, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(raw, &b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if b.Schema != "ksan-bench/v1" {
		return nil, fmt.Errorf("%s: schema %q, want ksan-bench/v1", path, b.Schema)
	}
	if len(b.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks", path)
	}
	return &b, nil
}

func main() {
	var tol Tolerances
	flag.BoolVar(&tol.SkipNs, "skip-ns", false, "ignore ns_per_op (cross-machine or fixed-iteration comparisons)")
	flag.Float64Var(&tol.NsTol, "ns-tol", 0.30, "relative ns_per_op tolerance")
	flag.Float64Var(&tol.BytesTol, "bytes-tol", 0.20, "relative bytes_per_op tolerance")
	flag.Int64Var(&tol.BytesSlack, "bytes-slack", 64, "absolute bytes_per_op slack")
	flag.Float64Var(&tol.AllocsTol, "allocs-tol", 0, "relative allocs_per_op tolerance")
	flag.Int64Var(&tol.AllocsSlack, "allocs-slack", 0, "absolute allocs_per_op slack")
	allowMissing := flag.Bool("allow-missing", false, "do not fail when the candidate lacks a baseline benchmark")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [flags] baseline.json candidate.json")
		os.Exit(2)
	}
	base, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	cand, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	regressions, missing, improved := Compare(base, cand, tol)
	for _, name := range improved {
		fmt.Printf("improved: %s\n", name)
	}
	for _, f := range regressions {
		fmt.Printf("REGRESSION %s\n", f)
	}
	fail := len(regressions) > 0
	for _, name := range missing {
		if *allowMissing {
			fmt.Printf("missing (ignored): %s\n", name)
		} else {
			fmt.Printf("MISSING %s: in baseline but not in candidate\n", name)
			fail = true
		}
	}
	fmt.Printf("benchdiff: %d compared, %d regressed, %d missing, %d improved\n",
		len(base.Benchmarks)-len(missing), len(regressions), len(missing), len(improved))
	if fail {
		os.Exit(1)
	}
}
