package main

import "testing"

func doc(entries map[string]Entry) *Baseline {
	return &Baseline{Schema: "ksan-bench/v1", Benchmarks: entries}
}

var defaults = Tolerances{NsTol: 0.30, BytesTol: 0.20, BytesSlack: 64}

func TestCompareCleanWithinNoise(t *testing.T) {
	base := doc(map[string]Entry{
		"BenchmarkServe": {NsPerOp: 100, BytesPerOp: 0, AllocsPerOp: 0},
		"BenchmarkBuild": {NsPerOp: 5000, BytesPerOp: 4096, AllocsPerOp: 12},
	})
	cand := doc(map[string]Entry{
		"BenchmarkServe": {NsPerOp: 120, BytesPerOp: 30, AllocsPerOp: 0}, // +20% ns, +30 B inside slack
		"BenchmarkBuild": {NsPerOp: 6400, BytesPerOp: 4500, AllocsPerOp: 12},
	})
	regs, missing, _ := Compare(base, cand, defaults)
	if len(regs) != 0 || len(missing) != 0 {
		t.Fatalf("clean diff reported regs=%v missing=%v", regs, missing)
	}
}

func TestComparePerMetricThresholds(t *testing.T) {
	base := doc(map[string]Entry{
		"BenchmarkServe": {NsPerOp: 100, BytesPerOp: 0, AllocsPerOp: 0},
	})
	cases := []struct {
		label  string
		cand   Entry
		metric string
	}{
		{"ns beyond tolerance", Entry{NsPerOp: 131, BytesPerOp: 0, AllocsPerOp: 0}, "ns/op"},
		{"bytes beyond slack", Entry{NsPerOp: 100, BytesPerOp: 65, AllocsPerOp: 0}, "bytes/op"},
		{"alloc contract broken", Entry{NsPerOp: 100, BytesPerOp: 0, AllocsPerOp: 1}, "allocs/op"},
	}
	for _, tc := range cases {
		regs, _, _ := Compare(base, doc(map[string]Entry{"BenchmarkServe": tc.cand}), defaults)
		if len(regs) != 1 || regs[0].Metric != tc.metric {
			t.Errorf("%s: got %v, want one %s regression", tc.label, regs, tc.metric)
		}
	}
}

func TestCompareSkipNs(t *testing.T) {
	base := doc(map[string]Entry{"BenchmarkServe": {NsPerOp: 100}})
	cand := doc(map[string]Entry{"BenchmarkServe": {NsPerOp: 100000}})
	tol := defaults
	tol.SkipNs = true
	if regs, _, _ := Compare(base, cand, tol); len(regs) != 0 {
		t.Fatalf("-skip-ns still flagged ns: %v", regs)
	}
	if regs, _, _ := Compare(base, cand, defaults); len(regs) != 1 {
		t.Fatalf("without -skip-ns the same diff must flag ns: %v", regs)
	}
}

func TestCompareMissingAndImproved(t *testing.T) {
	base := doc(map[string]Entry{
		"BenchmarkGone":   {NsPerOp: 100},
		"BenchmarkFaster": {NsPerOp: 100, BytesPerOp: 100, AllocsPerOp: 3},
	})
	cand := doc(map[string]Entry{
		"BenchmarkFaster": {NsPerOp: 50, BytesPerOp: 0, AllocsPerOp: 0},
		"BenchmarkNew":    {NsPerOp: 9},
	})
	regs, missing, improved := Compare(base, cand, defaults)
	if len(regs) != 0 {
		t.Fatalf("unexpected regressions: %v", regs)
	}
	if len(missing) != 1 || missing[0] != "BenchmarkGone" {
		t.Fatalf("missing = %v, want [BenchmarkGone]", missing)
	}
	if len(improved) != 1 || improved[0] != "BenchmarkFaster" {
		t.Fatalf("improved = %v, want [BenchmarkFaster]", improved)
	}
}

func TestCompareRelativeBytesOnLargeBaselines(t *testing.T) {
	// On allocation-heavy benchmarks the absolute slack is dwarfed by the
	// relative term: 1 MB -> 1.15 MB sits inside 20%, 1 MB -> 1.3 MB does
	// not.
	base := doc(map[string]Entry{"BenchmarkSolver": {NsPerOp: 1, BytesPerOp: 1 << 20, AllocsPerOp: 10}})
	ok := doc(map[string]Entry{"BenchmarkSolver": {NsPerOp: 1, BytesPerOp: 1<<20 + 150<<10, AllocsPerOp: 10}})
	bad := doc(map[string]Entry{"BenchmarkSolver": {NsPerOp: 1, BytesPerOp: 1<<20 + 300<<10, AllocsPerOp: 10}})
	if regs, _, _ := Compare(base, ok, defaults); len(regs) != 0 {
		t.Fatalf("within-tolerance bytes flagged: %v", regs)
	}
	if regs, _, _ := Compare(base, bad, defaults); len(regs) != 1 || regs[0].Metric != "bytes/op" {
		t.Fatalf("out-of-tolerance bytes not flagged: %v", regs)
	}
}
