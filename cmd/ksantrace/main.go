// Command ksantrace generates and inspects communication traces in the
// CSV format shared by the library and the benchmark harness.
//
// Usage:
//
//	ksantrace gen -kind uniform|temporal|hpc|projector|facebook|zipf \
//	              -n 100 -m 100000 [-p 0.75] [-s 1.1] [-seed 1] [-out trace.csv]
//	ksantrace stats -in trace.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/ksan-net/ksan/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "gen":
		gen(os.Args[2:])
	case "stats":
		stats(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: ksantrace gen|stats [flags]")
	os.Exit(2)
}

func gen(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	kind := fs.String("kind", "uniform", "workload kind: uniform, temporal, hpc, projector, facebook, zipf")
	n := fs.Int("n", 100, "number of network nodes")
	m := fs.Int("m", 100000, "number of requests")
	p := fs.Float64("p", 0.5, "temporal complexity parameter (temporal only)")
	s := fs.Float64("s", 1.1, "Zipf exponent (zipf only)")
	seed := fs.Int64("seed", 1, "generator seed")
	out := fs.String("out", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}

	var tr workload.Trace
	switch *kind {
	case "uniform":
		tr = workload.Uniform(*n, *m, *seed)
	case "temporal":
		tr = workload.Temporal(*n, *m, *p, *seed)
	case "hpc":
		tr = workload.HPCLike(*n, *m, *seed)
	case "projector":
		tr = workload.ProjecToRLike(*n, *m, *seed)
	case "facebook":
		tr = workload.FacebookLike(*n, *m, *seed)
	case "zipf":
		tr = workload.Zipf(*n, *m, *s, *seed)
	default:
		fmt.Fprintf(os.Stderr, "ksantrace: unknown kind %q\n", *kind)
		os.Exit(2)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := workload.WriteCSV(w, tr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func stats(args []string) {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	in := fs.String("in", "", "input trace file (default stdin)")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		r = f
	}
	tr, err := workload.ReadCSV(r)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	st := workload.Measure(tr)
	fmt.Printf("trace          %s\n", tr.Name)
	fmt.Printf("nodes          %d\n", tr.N)
	fmt.Printf("requests       %d\n", st.Requests)
	fmt.Printf("distinct pairs %d\n", st.DistinctPairs)
	fmt.Printf("repeat frac    %.4f\n", st.RepeatFraction)
	fmt.Printf("src entropy    %.3f bits\n", st.SrcEntropy)
	fmt.Printf("dst entropy    %.3f bits\n", st.DstEntropy)
	fmt.Printf("pair entropy   %.3f bits\n", st.PairEntropy)
	fmt.Printf("top-8 share    %.4f\n", st.Top8PairShare)
	fmt.Printf("Thm13 bound    %.0f\n", workload.EntropyBound(tr))
}
