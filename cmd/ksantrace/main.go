// Command ksantrace generates and inspects communication traces in the
// CSV format shared by the library and the benchmark harness. Generation
// and measurement both stream: requests flow generator→CSV and CSV→stats
// one at a time, so trace length is bounded by disk, not memory.
//
// Usage:
//
//	ksantrace gen -kind uniform|temporal|hpc|projector|facebook|zipf|
//	              hotspot|exponential|latest|sequential|histogram \
//	              -n 100 -m 100000 [-p 0.75] [-s 1.1] [-hot 0.1] [-hotopn 0.9] \
//	              [-weights file] [-seed 1] [-out trace.csv]
//	ksantrace stats -in trace.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/ksan-net/ksan/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "gen":
		gen(os.Args[2:])
	case "stats":
		stats(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: ksantrace gen|stats [flags]")
	os.Exit(2)
}

func gen(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	kind := fs.String("kind", "uniform", "workload kind: uniform, temporal, hpc, projector, facebook, zipf, hotspot, exponential, latest, sequential, histogram")
	n := fs.Int("n", 100, "number of network nodes")
	m := fs.Int("m", 100000, "number of requests")
	p := fs.Float64("p", 0.5, "temporal complexity parameter (temporal only)")
	s := fs.Float64("s", 1.1, "skew parameter (zipf/latest exponent, exponential decay)")
	hot := fs.Float64("hot", 0.1, "hot-set node fraction (hotspot only)")
	hotOpn := fs.Float64("hotopn", 0.9, "hot-set traffic fraction (hotspot only)")
	weights := fs.String("weights", "", "node popularity file, one weight per line (histogram only; node count comes from the file)")
	seed := fs.Int64("seed", 1, "generator seed")
	out := fs.String("out", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}

	var g workload.Generator
	switch *kind {
	case "uniform":
		g = workload.UniformGen(*n, *m, *seed)
	case "temporal":
		g = workload.TemporalGen(*n, *m, *p, *seed)
	case "hpc":
		g = workload.HPCGen(*n, *m, *seed)
	case "projector":
		g = workload.ProjectorGen(*n, *m, *seed)
	case "facebook":
		g = workload.FacebookGen(*n, *m, *seed)
	case "zipf":
		g = workload.ZipfGen(*n, *m, *s, *seed)
	case "hotspot":
		g = workload.HotspotGen(*n, *m, *hot, *hotOpn, *seed)
	case "exponential":
		g = workload.ExponentialGen(*n, *m, *s, *seed)
	case "latest":
		g = workload.LatestGen(*n, *m, *s, *seed)
	case "sequential":
		g = workload.SequentialGen(*n, *m)
	case "histogram":
		if *weights == "" {
			fmt.Fprintln(os.Stderr, "ksantrace: -kind histogram requires -weights")
			os.Exit(2)
		}
		f, err := os.Open(*weights)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		ws, err := workload.ReadWeights(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		// n comes from the weights file (one node per line), same as the
		// experiment-JSON histogram kind; -n is ignored here.
		g, err = workload.HistogramGen(len(ws), *m, ws, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	default:
		fmt.Fprintf(os.Stderr, "ksantrace: unknown kind %q\n", *kind)
		os.Exit(2)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := workload.WriteCSVFrom(w, g); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func stats(args []string) {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	in := fs.String("in", "", "input trace file (default stdin)")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	// A file input streams (two passes over the file, no materialized
	// trace); stdin cannot be re-read, so it falls back to materializing.
	var g workload.Generator
	if *in != "" {
		cg, err := workload.OpenCSV(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		g = cg
	} else {
		tr, err := workload.ReadCSV(os.Stdin)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		g = tr
	}
	st, err := workload.MeasureStream(g)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	bound, err := workload.EntropyBoundStream(g)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("trace          %s\n", g.Label())
	fmt.Printf("nodes          %d\n", g.Nodes())
	fmt.Printf("requests       %d\n", st.Requests)
	fmt.Printf("distinct pairs %d\n", st.DistinctPairs)
	fmt.Printf("repeat frac    %.4f\n", st.RepeatFraction)
	fmt.Printf("src entropy    %.3f bits\n", st.SrcEntropy)
	fmt.Printf("dst entropy    %.3f bits\n", st.DstEntropy)
	fmt.Printf("pair entropy   %.3f bits\n", st.PairEntropy)
	fmt.Printf("top-8 share    %.4f\n", st.Top8PairShare)
	fmt.Printf("Thm13 bound    %.0f\n", bound)
}
