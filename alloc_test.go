package ksan

// Allocation regression tests for the sequential serve path. The engine's
// determinism contract serves every self-adjusting network strictly
// sequentially, so per-request constant factors — and in particular
// per-request allocations — bound the throughput of the whole evaluation.
// These tests pin the invariant that Serve performs zero steady-state
// allocations on every self-adjusting design: the generalized rotation
// recycles each node's routing-array and child-slot capacity (construction
// pads both to exactly k−1 and k entries, and rotations preserve that), the
// fragment expansion reuses per-tree scratch buffers, and the splay loops
// build no per-step slices.

import (
	"math/rand"
	"testing"
)

// assertServeZeroAllocs drives the network through the whole trace once
// (letting the per-tree scratch buffers reach their steady-state capacity)
// and then asserts that continuing to serve the trace allocates nothing.
func assertServeZeroAllocs(t *testing.T, net Network, tr Trace) {
	t.Helper()
	i := 0
	serve := func() {
		rq := tr.Reqs[i%len(tr.Reqs)]
		i++
		net.Serve(rq.Src, rq.Dst)
	}
	for range tr.Reqs {
		serve()
	}
	if avg := testing.AllocsPerRun(2000, serve); avg != 0 {
		t.Errorf("%s: %.2f allocs per steady-state Serve, want 0", net.Name(), avg)
	}
}

func TestServeZeroAllocsKAry(t *testing.T) {
	tr := TemporalWorkload(255, 10000, 0.75, 1)
	for _, k := range []int{2, 3, 7} {
		net, err := NewKArySplayNet(255, k)
		if err != nil {
			t.Fatal(err)
		}
		assertServeZeroAllocs(t, net, tr)
	}
}

// TestServeZeroAllocsKAryLarge pins the zero-allocation contract at the
// arities where the routing kernels and memmove-backed span moves carry
// the serve path (k−1 = 7 unrolled, 15 and 31 bisect; merges up to 93
// thresholds): the kernel dispatch is selected once at construction and
// the rebuild scratch is preallocated, so widening k must not introduce
// per-request allocations.
func TestServeZeroAllocsKAryLarge(t *testing.T) {
	tr := TemporalWorkload(255, 10000, 0.75, 4)
	for _, k := range []int{8, 16, 32} {
		net, err := NewKArySplayNet(255, k)
		if err != nil {
			t.Fatal(err)
		}
		assertServeZeroAllocs(t, net, tr)
	}
}

func TestServeZeroAllocsKArySemiSplayOnly(t *testing.T) {
	tr := TemporalWorkload(255, 10000, 0.5, 2)
	tree, err := NewBalancedTree(255, 3)
	if err != nil {
		t.Fatal(err)
	}
	net, err := NewPolicyNet("3-ary semi-splay", tree, TriggerAlways(), AdjusterSemiSplay())
	if err != nil {
		t.Fatal(err)
	}
	assertServeZeroAllocs(t, net, tr)
}

// TestServeZeroAllocsPolicyCompositions pins the zero-allocation serve
// contract across the policy plane's splay-family compositions: deferred
// triggers (periodic, cost-threshold, frozen-after-warmup) must not cost
// allocations either — the trigger state is plain counters, the
// adjustment context is recycled, and the static-stretch oracle is built
// at most once per stretch (inside the warmup pass below, so the steady
// state is clean).
func TestServeZeroAllocsPolicyCompositions(t *testing.T) {
	tr := TemporalWorkload(255, 10000, 0.75, 3)
	for _, tc := range []struct {
		label string
		trig  func() PolicyTrigger
		adj   func() PolicyAdjuster
	}{
		{"every(4)×splay", func() PolicyTrigger { return TriggerEveryM(4) }, AdjusterSplay},
		{"every(4)×semi-splay", func() PolicyTrigger { return TriggerEveryM(4) }, AdjusterSemiSplay},
		{"alpha(5000)×splay", func() PolicyTrigger { return TriggerAlpha(5000) }, AdjusterSplay},
		{"first(500)×splay", func() PolicyTrigger { return TriggerFirst(500) }, AdjusterSplay},
		{"never×none", TriggerNever, AdjusterNone},
	} {
		tree, err := NewBalancedTree(255, 4)
		if err != nil {
			t.Fatal(err)
		}
		net, err := NewPolicyNet(tc.label, tree, tc.trig(), tc.adj())
		if err != nil {
			t.Fatal(err)
		}
		assertServeZeroAllocs(t, net, tr)
	}
}

func TestServeZeroAllocsCentroid(t *testing.T) {
	tr := TemporalWorkload(255, 10000, 0.75, 1)
	net, err := NewCentroidSplayNet(255, 2)
	if err != nil {
		t.Fatal(err)
	}
	assertServeZeroAllocs(t, net, tr)
}

func TestServeZeroAllocsSplayNet(t *testing.T) {
	tr := TemporalWorkload(255, 10000, 0.75, 1)
	net, err := NewSplayNet(255)
	if err != nil {
		t.Fatal(err)
	}
	assertServeZeroAllocs(t, net, tr)
}

// TestRoutePathZeroAllocs pins RoutePath's scratch-buffer contract: after
// one warm pass (during which the per-tree route buffer grows to the
// longest path seen), repeatedly materializing routing paths allocates
// nothing. Splays run between calls so the paths exercised keep changing
// shape under the same buffer.
func TestRoutePathZeroAllocs(t *testing.T) {
	for _, k := range []int{2, 8, 32} {
		tree, err := NewBalancedTree(255, k)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(k)))
		step := func() {
			u, v := 1+rng.Intn(255), 1+rng.Intn(255)
			if u == v {
				return
			}
			p := tree.RoutePath(u, v)
			if p[0] != u || p[len(p)-1] != v {
				t.Fatalf("k=%d: RoutePath(%d,%d) = %v", k, u, v, p)
			}
			a, b := tree.NodeByID(u), tree.NodeByID(v)
			_, w := tree.DistanceLCA(a, b)
			tree.SplayUntilParent(a, w.Parent())
		}
		for i := 0; i < 2000; i++ {
			step()
		}
		if avg := testing.AllocsPerRun(2000, step); avg != 0 {
			t.Errorf("k=%d: %.2f allocs per steady-state RoutePath, want 0", k, avg)
		}
	}
}

// TestRebuildPathZeroAllocs pins the contract one layer below Serve: the
// arena rebuilds themselves (the index-surgery k-splay/k-semi-splay steps
// plus the LCA walks that steer them) allocate nothing. The merge scratch
// is preallocated at the d=3 maximum when the arena is built, so unlike
// the network-level tests above this holds from the very first rotation.
func TestRebuildPathZeroAllocs(t *testing.T) {
	for _, k := range []int{2, 3, 5} {
		tree, err := NewBalancedTree(255, k)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(k)))
		splay := func() {
			u, v := 1+rng.Intn(255), 1+rng.Intn(255)
			if u == v {
				return
			}
			a, b := tree.NodeByID(u), tree.NodeByID(v)
			_, w := tree.DistanceLCA(a, b)
			tree.SplayUntilParent(a, w.Parent())
			tree.SplayUntilParent(b, a)
		}
		if avg := testing.AllocsPerRun(2000, splay); avg != 0 {
			t.Errorf("k=%d: %.2f allocs per rebuild-path operation, want 0", k, avg)
		}
	}
}
