package ksan

// One benchmark per table and figure of the paper's evaluation, exercising
// the workload and network configuration that regenerates it (the full
// tables themselves come from cmd/ksanbench; these measure the underlying
// serve/build operations at a fixed small scale so regressions are visible
// in ns/op).

import (
	"fmt"
	"testing"

	"github.com/ksan-net/ksan/internal/experiments"
)

// benchServe measures serving a prepared trace on a freshly built network,
// cycling through the trace.
func benchServe(b *testing.B, mk func() Network, tr Trace) {
	b.Helper()
	net := mk()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rq := tr.Reqs[i%len(tr.Reqs)]
		net.Serve(rq.Src, rq.Dst)
	}
}

// --- The sequential serve path (the throughput ceiling of the whole
// evaluation: the determinism contract forbids sharding self-adjusting
// networks, so ns/Serve is what bounds requests/sec). These four pin the
// allocation-free fused fast path; EXPERIMENTS.md records their history. ---

func BenchmarkServeKAryTemporal(b *testing.B) {
	tr := TemporalWorkload(255, 20000, 0.75, 1)
	benchServe(b, func() Network { n, _ := NewKArySplayNet(255, 3); return n }, tr)
}

func BenchmarkServeKAryUniform(b *testing.B) {
	tr := UniformWorkload(1023, 20000, 2)
	benchServe(b, func() Network { n, _ := NewKArySplayNet(1023, 5); return n }, tr)
}

// BenchmarkServeKAryGrid sweeps the serve path across the arity axis the
// paper generalizes over, on both trace families: exactly the grid where
// the per-hop routing constant (the threshold search at every visited
// node) turns from noise into the dominant term as k grows and trees
// flatten. The k=5 uniform point duplicates BenchmarkServeKAryUniform so
// the grid and the long-lived flagship key stay comparable.
func BenchmarkServeKAryGrid(b *testing.B) {
	for _, tc := range []struct {
		name string
		tr   Trace
	}{
		{"uniform", UniformWorkload(1023, 20000, 2)},
		{"temporal", TemporalWorkload(1023, 20000, 0.75, 1)},
	} {
		for _, k := range []int{2, 5, 8, 16, 32} {
			b.Run(fmt.Sprintf("%s/k=%d", tc.name, k), func(b *testing.B) {
				benchServe(b, func() Network { n, _ := NewKArySplayNet(1023, k); return n }, tc.tr)
			})
		}
	}
}

func BenchmarkServeCentroidTemporal(b *testing.B) {
	tr := TemporalWorkload(255, 20000, 0.75, 1)
	benchServe(b, func() Network { n, _ := NewCentroidSplayNet(255, 2); return n }, tr)
}

func BenchmarkServeSplayNetTemporal(b *testing.B) {
	tr := TemporalWorkload(255, 20000, 0.75, 1)
	benchServe(b, func() Network { n, _ := NewSplayNet(255); return n }, tr)
}

// --- The policy plane: one benchmark per composition family, pinning
// the serve cost of each trigger × adjuster point on the same workload
// and topology. The deferred-trigger rows (alpha-splay, frozen-*, lazy)
// are where the static-stretch Euler-tour/RMQ oracle engages; their
// ns/op against the walk-based history is tracked in EXPERIMENTS.md and
// BENCH_PR5.json. ---

func BenchmarkPolicyServe(b *testing.B) {
	tr := TemporalWorkload(1023, 20000, 0.75, 1)
	compose := func(trig func() PolicyTrigger, adj func() PolicyAdjuster) func() Network {
		return func() Network {
			tree, err := NewBalancedTree(1023, 4)
			if err != nil {
				b.Fatal(err)
			}
			net, err := NewPolicyNet("bench", tree, trig(), adj())
			if err != nil {
				b.Fatal(err)
			}
			return net
		}
	}
	for _, tc := range []struct {
		name string
		mk   func() Network
	}{
		{"kary-always-splay", compose(TriggerAlways, AdjusterSplay)},
		{"kary-every4-semisplay", compose(func() PolicyTrigger { return TriggerEveryM(4) }, AdjusterSemiSplay)},
		{"kary-alpha-splay", compose(func() PolicyTrigger { return TriggerAlpha(200_000) }, AdjusterSplay)},
		{"frozen-after-warmup", compose(func() PolicyTrigger { return TriggerFirst(2000) }, AdjusterSplay)},
		{"frozen-never", compose(TriggerNever, AdjusterNone)},
		{"lazy-alpha-rebuild", func() Network {
			n, err := NewLazyNet(1023, 4, 200_000)
			if err != nil {
				b.Fatal(err)
			}
			return n
		}},
	} {
		b.Run(tc.name, func(b *testing.B) { benchServe(b, tc.mk, tr) })
	}
}

// --- Tables 1–7: k-ary SplayNet on each workload (k=3 representative) ---

func BenchmarkTable1HPCKAry(b *testing.B) {
	tr := HPCWorkload(128, 20000, 1)
	benchServe(b, func() Network { n, _ := NewKArySplayNet(128, 3); return n }, tr)
}

func BenchmarkTable2ProjecToRKAry(b *testing.B) {
	tr := ProjecToRWorkload(100, 20000, 1)
	benchServe(b, func() Network { n, _ := NewKArySplayNet(100, 3); return n }, tr)
}

func BenchmarkTable3FacebookKAry(b *testing.B) {
	tr := FacebookWorkload(2048, 20000, 1)
	benchServe(b, func() Network { n, _ := NewKArySplayNet(2048, 3); return n }, tr)
}

func BenchmarkTable4Temporal025(b *testing.B) {
	tr := TemporalWorkload(255, 20000, 0.25, 1)
	benchServe(b, func() Network { n, _ := NewKArySplayNet(255, 3); return n }, tr)
}

func BenchmarkTable5Temporal050(b *testing.B) {
	tr := TemporalWorkload(255, 20000, 0.5, 1)
	benchServe(b, func() Network { n, _ := NewKArySplayNet(255, 3); return n }, tr)
}

func BenchmarkTable6Temporal075(b *testing.B) {
	tr := TemporalWorkload(255, 20000, 0.75, 1)
	benchServe(b, func() Network { n, _ := NewKArySplayNet(255, 3); return n }, tr)
}

func BenchmarkTable7Temporal090(b *testing.B) {
	tr := TemporalWorkload(255, 20000, 0.9, 1)
	benchServe(b, func() Network { n, _ := NewKArySplayNet(255, 3); return n }, tr)
}

// --- Table 8: the centroid heuristic case study (k=2) ---

func BenchmarkTable8CentroidServe(b *testing.B) {
	tr := TemporalWorkload(255, 20000, 0.5, 1)
	benchServe(b, func() Network { n, _ := NewCentroidSplayNet(255, 2); return n }, tr)
}

func BenchmarkTable8SplayNetBaseline(b *testing.B) {
	tr := TemporalWorkload(255, 20000, 0.5, 1)
	benchServe(b, func() Network { n, _ := NewSplayNet(255); return n }, tr)
}

func BenchmarkTable8OptimalBSTBuild(b *testing.B) {
	d := DemandFromTrace(ProjecToRWorkload(64, 20000, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := OptimalStaticTree(d, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figures 1, 3–6: node layout and the rotation operations ---

func BenchmarkFigRotationsKSplay(b *testing.B) {
	net, _ := NewKArySplayNet(1023, 5)
	tr := UniformWorkload(1023, 4096, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rq := tr.Reqs[i%len(tr.Reqs)]
		net.Serve(rq.Src, rq.Dst) // each serve is a sequence of k-splay steps
	}
}

// --- Figures 2/9 and 7/8: centroid structures ---

func BenchmarkFigCentroidTreeBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := CentroidTree(1000, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigCentroidNetBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := NewCentroidSplayNet(1000, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Remark 10: uniform-workload optimality of the centroid tree ---

func BenchmarkRemark10UniformDP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := OptimalUniformTree(512, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Lemma 9: total-distance scaling of full and centroid trees ---

func BenchmarkLemma9TotalDistance(b *testing.B) {
	tr, _ := FullTree(4096, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TotalDistanceUniform(tr)
	}
}

// --- Theorem 13: entropy bound evaluation ---

func BenchmarkEntropyBound(b *testing.B) {
	tr := TemporalWorkload(1023, 50000, 0.5, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EntropyBound(tr)
	}
}

// --- Core DP (Theorem 2) at a fixed size, for regression tracking ---

func BenchmarkOptimalDPCubic(b *testing.B) {
	d := DemandFromTrace(ZipfWorkload(96, 20000, 1.2, 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := OptimalStaticTree(d, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// --- whole-table regeneration at quick scale (the real harness path) ---

func BenchmarkTableRegeneration(b *testing.B) {
	sc := experiments.Quick
	tr := ProjecToRWorkload(sc.ProjNodes, sc.Requests, sc.Seed)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.KAryTable("bench", tr, sc)
	}
}
