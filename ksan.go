// Package ksan is a library of self-adjusting k-ary search tree networks,
// implementing Feder, Paramonov, Mavrin, Salem, Aksenov and Schmid,
// "Toward Self-Adjusting k-ary Search Tree Networks" (IPDPS 2024,
// arXiv:2302.13113), together with every substrate its evaluation needs.
//
// A k-ary search tree network is a reconfigurable datacenter topology: tree
// nodes are network nodes (e.g. top-of-rack switches) with permanent
// identifiers, and each node carries a routing array of k−1 routing
// elements that makes greedy local routing possible even while the
// topology self-adjusts. The package provides:
//
//   - online self-adjusting networks: the k-ary SplayNet (NewKArySplayNet),
//     the centroid-based (k+1)-SplayNet (NewCentroidSplayNet), and the
//     binary SplayNet baseline (NewSplayNet) — each a canonical
//     composition of the policy layer below;
//   - a composable policy layer decoupling routing from adjustment: a
//     PolicyNet pairs a Trigger (when to adjust — TriggerAlways,
//     TriggerNever, TriggerEveryM, TriggerAlpha with optional
//     hysteresis, TriggerFirst) with an Adjuster (how — AdjusterSplay,
//     AdjusterSemiSplay, AdjusterRebuild, AdjusterNone) over any tree
//     topology (NewPolicyNet), turning lazy k-ary splay, periodic
//     semi-splay or frozen-after-warmup networks into one-line
//     compositions (also file-addressable via PolicyDef);
//   - offline/static designs: the DP-optimal routing-based tree
//     (OptimalStaticTree, with NewOptimalSolver sharing one demand's
//     precomputation across an arity sweep), the uniform-workload optimum
//     (OptimalUniformTree), the O(n) centroid tree (CentroidTree), the
//     full tree baseline (FullTree) and a weight-balanced approximation
//     for very large instances (WeightBalancedTree);
//   - workload generators mirroring the paper's evaluation traces, demand
//     matrices, trace statistics and CSV I/O;
//   - a streaming simulation engine with the paper's cost model: the
//     classic aggregate entry points (Run, RunAll) plus an Engine with
//     cancellation, warmup windows, cost time-series, routing percentiles
//     and deterministic parallel grid execution (NewEngine, RunGrid) that
//     can also deliver cells as they finish (Stream);
//   - a declarative, serializable experiment layer: NetworkDef and
//     TraceDef name registered kinds plus parameters, compose into an
//     Experiment document with JSON encode/decode, and resolve to the
//     engine's grid inputs — experiments are data, written to files,
//     diffed and re-run (RegisterNetwork and RegisterTrace open the
//     taxonomy to new designs and workloads).
//
// The cmd/ksanbench binary regenerates every table and figure of the
// paper's evaluation, and runs arbitrary user grids from experiment files
// (-experiment, -format); see DESIGN.md and EXPERIMENTS.md.
package ksan

import (
	"context"
	"io"
	"iter"

	"github.com/ksan-net/ksan/internal/centroidnet"
	"github.com/ksan-net/ksan/internal/core"
	"github.com/ksan-net/ksan/internal/engine"
	"github.com/ksan-net/ksan/internal/karynet"
	"github.com/ksan-net/ksan/internal/lazynet"
	"github.com/ksan-net/ksan/internal/policy"
	"github.com/ksan-net/ksan/internal/sim"
	"github.com/ksan-net/ksan/internal/spec"
	"github.com/ksan-net/ksan/internal/splaynet"
	"github.com/ksan-net/ksan/internal/statictree"
	"github.com/ksan-net/ksan/internal/workload"
)

// Request is a single communication request between two node ids (1..n).
type Request = sim.Request

// Cost is the price of serving one request: routing (path length in the
// topology before adjustment) plus adjustment (one unit per elementary
// rotation).
type Cost = sim.Cost

// Result aggregates the cost of a trace on one network.
type Result = sim.Result

// Network is a (possibly self-adjusting) topology serving requests.
type Network = sim.Network

// Trace is a finite communication sequence over nodes 1..N (the fully
// materialized form of a Generator, and itself the trivial Generator).
type Trace = workload.Trace

// Generator is a deterministic, resettable request stream: the streaming
// form of a workload that the engine, grids, and experiment files iterate
// without materializing a request slice, so trace length is never
// memory-bound. Every Requests() call is an independent, identical pass.
type Generator = workload.Generator

// Phase is one segment of a phased (drifting) workload: M requests drawn
// from the front of Gen's stream.
type Phase = workload.Phase

// Demand is a sparse demand matrix (the offline problem input).
type Demand = workload.Demand

// Stats summarizes a trace's locality, skew and sparsity.
type Stats = workload.Stats

// Tree is a k-ary search tree network topology.
type Tree = core.Tree

// Node is a single network node of a Tree.
type Node = core.Node

// KArySplayNet is the paper's online k-ary SplayNet (Section 4.1).
type KArySplayNet = karynet.Net

// CentroidSplayNet is the paper's online (k+1)-SplayNet (Section 4.2).
type CentroidSplayNet = centroidnet.Net

// SplayNet is the binary SplayNet baseline of Schmid et al.
type SplayNet = splaynet.Net

// LazyNet is the partially reactive meta-algorithm: the topology stays
// static until the routing cost since the last reconfiguration crosses a
// threshold, then a demand-aware topology is recomputed from the observed
// traffic (the lazy SAN regime the paper's introduction describes).
type LazyNet = lazynet.Net

// StaticNet wraps a static topology as a Network (routing cost only).
type StaticNet = statictree.Net

// PolicyNet is a trigger × adjuster composition over a tree topology —
// the decomposition every self-adjusting network in this library
// factors through: route the request on the current tree, let the
// Trigger decide *when* to restructure and the Adjuster decide *how*.
// KArySplayNet and LazyNet are canonical compositions of this type;
// NewPolicyNet builds any other point of the plane (lazy k-ary splay,
// periodic semi-splay, frozen-after-warmup, ...). Frozen compositions
// (TriggerNever) additionally serve through the engine's sharded batch
// path, like static networks.
type PolicyNet = policy.Net

// PolicyTrigger decides when a PolicyNet adjusts; see TriggerAlways,
// TriggerNever, TriggerEveryM, TriggerAlpha, TriggerAlphaHysteresis and
// TriggerFirst. Triggers are stateful: compose a fresh instance per
// network.
type PolicyTrigger = policy.Trigger

// PolicyAdjuster decides how a PolicyNet restructures; see
// AdjusterSplay, AdjusterSemiSplay, AdjusterRebuild and AdjusterNone.
type PolicyAdjuster = policy.Adjuster

// RebuildBuilder computes a static demand-aware topology for a demand
// window; WeightBalancedTree and OptimalStaticTree (via their
// statictree implementations) are the stock builders for
// AdjusterRebuild.
type RebuildBuilder = policy.Builder

// NewPolicyNet composes a policy network over an arbitrary valid tree
// topology. The tree is owned by the network from then on and must only
// be mutated through Serve.
func NewPolicyNet(name string, t *Tree, trig PolicyTrigger, adj PolicyAdjuster) (*PolicyNet, error) {
	return policy.New(name, t, trig, adj)
}

// TriggerAlways fires on every request (the fully reactive regime).
func TriggerAlways() PolicyTrigger { return policy.Always() }

// TriggerNever never fires: the composition is frozen/static.
func TriggerNever() PolicyTrigger { return policy.Never() }

// TriggerEveryM fires on every m-th served request since the last
// adjustment (m >= 1; self-loop requests are free and not counted).
func TriggerEveryM(m int64) PolicyTrigger { return policy.EveryM(m) }

// TriggerAlpha fires once the routing cost accumulated since the last
// adjustment reaches alpha (the lazy/partially-reactive regime).
func TriggerAlpha(alpha int64) PolicyTrigger { return policy.Alpha(alpha) }

// TriggerAlphaHysteresis is TriggerAlpha with a re-arm delay: after an
// adjustment the trigger stays quiet for at least cooldown requests.
func TriggerAlphaHysteresis(alpha, cooldown int64) PolicyTrigger {
	return policy.AlphaHysteresis(alpha, cooldown)
}

// TriggerFirst fires on each of the first m served requests and never
// again (frozen-after-warmup).
func TriggerFirst(m int64) PolicyTrigger { return policy.First(m) }

// AdjusterSplay is the full k-splay adjustment of the paper's online
// networks.
func AdjusterSplay() PolicyAdjuster { return policy.Splay() }

// AdjusterSemiSplay restricts the repertoire to single k-semi-splay
// steps (the rotation-repertoire ablation).
func AdjusterSemiSplay() PolicyAdjuster { return policy.SemiSplay() }

// AdjusterNone never restructures (compose with TriggerNever for a
// frozen topology).
func AdjusterNone() PolicyAdjuster { return policy.None() }

// AdjusterRebuild recomputes the topology from the demand observed
// since the last adjustment and swaps it in, charging the link churn of
// the swap; name labels the builder in composition reports.
func AdjusterRebuild(name string, b RebuildBuilder) PolicyAdjuster {
	return policy.Rebuild(name, b)
}

// NewKArySplayNet constructs a k-ary SplayNet on n nodes with a balanced
// initial topology.
func NewKArySplayNet(n, k int) (*KArySplayNet, error) { return karynet.New(n, k) }

// NewKArySplayNetFromTree wraps an arbitrary valid initial topology.
func NewKArySplayNetFromTree(t *Tree) *KArySplayNet { return karynet.NewFromTree(t) }

// NewCentroidSplayNet constructs a (k+1)-SplayNet on n nodes (n ≥ 3).
func NewCentroidSplayNet(n, k int) (*CentroidSplayNet, error) { return centroidnet.New(n, k) }

// NewSplayNet constructs the binary SplayNet baseline on n nodes.
func NewSplayNet(n int) (*SplayNet, error) { return splaynet.New(n) }

// NewLazyNet constructs a partially reactive k-ary network that rebuilds a
// demand-aware topology whenever the routing cost since the last rebuild
// reaches alpha.
func NewLazyNet(n, k int, alpha int64) (*LazyNet, error) { return lazynet.New(n, k, alpha) }

// NewStaticNet wraps a static tree topology as a Network.
func NewStaticNet(name string, t *Tree) *StaticNet { return statictree.NewNet(name, t) }

// NewBalancedTree builds the weakly-complete k-ary search tree on n nodes.
func NewBalancedTree(n, k int) (*Tree, error) { return core.NewBalanced(n, k) }

// NewPathTree builds the degenerate path topology (worst-case start).
func NewPathTree(n, k int) (*Tree, error) { return core.NewPath(n, k) }

// NewRandomTree builds a random valid k-ary search tree network.
func NewRandomTree(n, k int, seed int64) (*Tree, error) { return core.NewRandom(n, k, seed) }

// OptimalStaticTree computes the optimal static routing-based k-ary search
// tree for a demand (Theorem 2; O(n³·k) time) and its total distance. It
// is a one-shot wrapper over OptimalSolver; sweep arities through one
// NewOptimalSolver to share the per-demand precomputation.
func OptimalStaticTree(d *Demand, k int) (*Tree, int64, error) { return statictree.Optimal(d, k) }

// OptimalSolver answers OptimalStaticTree queries for one demand at any
// arity, building the O(n²) boundary-traffic matrix once and recycling the
// DP tables across calls. It owns its scratch: serialize Optimal calls
// (the DP fill itself is parallel) or build one solver per goroutine.
type OptimalSolver = statictree.Solver

// OptimalSolverOption configures NewOptimalSolver: SolverWithoutPruning
// selects the exhaustive reference DP (pruning is exact, so this is a
// debugging aid), SolverWorkers bounds the fill's parallelism.
type OptimalSolverOption = statictree.SolverOption

// SolverWithoutPruning disables the admissible-bound root pruning.
func SolverWithoutPruning() OptimalSolverOption { return statictree.WithoutPruning() }

// SolverWorkers bounds the DP fill's worker count (default GOMAXPROCS).
func SolverWorkers(n int) OptimalSolverOption { return statictree.WithSolverWorkers(n) }

// NewOptimalSolver builds a reusable solver for the demand's optimal
// static trees (see OptimalSolver).
func NewOptimalSolver(d *Demand, opts ...OptimalSolverOption) (*OptimalSolver, error) {
	return statictree.NewSolver(d, opts...)
}

// OptimalUniformTree computes the optimal static k-ary search tree for the
// uniform workload (Theorem 4; O(n²·k) time) and its total distance. It is
// a one-shot wrapper over statictree's UniformSolver; the Remark 10 grid
// reuses one solver per node count.
func OptimalUniformTree(n, k int) (*Tree, int64, error) { return statictree.OptimalUniform(n, k) }

// CentroidTree builds the centroid k-ary search tree in O(n) (Theorem 8);
// it matches the uniform optimum on every instance we tested (Remark 10).
func CentroidTree(n, k int) (*Tree, error) { return statictree.Centroid(n, k) }

// FullTree builds the weakly-complete k-ary tree baseline.
func FullTree(n, k int) (*Tree, error) { return statictree.Full(n, k) }

// WeightBalancedTree builds a demand-aware k-ary tree by Mehlhorn-style
// weighted bisection — an approximation for instances beyond the cubic
// DP's reach (see the package documentation for its guarantees).
func WeightBalancedTree(d *Demand, k int) (*Tree, int64, error) {
	return statictree.WeightBalanced(d, k)
}

// TotalDistance evaluates Σ d_T(u,v)·D[u,v] for a static topology.
func TotalDistance(t *Tree, d *Demand) int64 { return statictree.TotalDistance(t, d) }

// TotalDistanceUniform evaluates Σ_{u<v} d_T(u,v) in O(n).
func TotalDistanceUniform(t *Tree) int64 { return statictree.TotalDistanceUniform(t) }

// UniformWorkload draws m uniform requests over n nodes.
func UniformWorkload(n, m int, seed int64) Trace { return workload.Uniform(n, m, seed) }

// TemporalWorkload draws m requests repeating the previous one with
// probability p (the paper's synthetic workloads, Tables 4–7).
func TemporalWorkload(n, m int, p float64, seed int64) Trace {
	return workload.Temporal(n, m, p, seed)
}

// HPCWorkload generates the stencil/collective trace substituting for the
// paper's DOE HPC dataset.
func HPCWorkload(n, m int, seed int64) Trace { return workload.HPCLike(n, m, seed) }

// ProjecToRWorkload generates the sparse skewed trace substituting for the
// paper's ProjecToR dataset.
func ProjecToRWorkload(n, m int, seed int64) Trace { return workload.ProjecToRLike(n, m, seed) }

// FacebookWorkload generates the wide heavy-tailed trace substituting for
// the paper's Facebook dataset.
func FacebookWorkload(n, m int, seed int64) Trace { return workload.FacebookLike(n, m, seed) }

// ZipfWorkload draws skewed endpoints with exponent s.
func ZipfWorkload(n, m int, s float64, seed int64) Trace { return workload.Zipf(n, m, s, seed) }

// UniformGen, TemporalGen, HPCGen, ProjectorGen, FacebookGen and ZipfGen
// are the streaming forms of the trace constructors above: same seed,
// bit-identical stream, no materialized slice.
func UniformGen(n, m int, seed int64) Generator { return workload.UniformGen(n, m, seed) }

// TemporalGen streams the paper's synthetic temporal-locality workload.
func TemporalGen(n, m int, p float64, seed int64) Generator {
	return workload.TemporalGen(n, m, p, seed)
}

// HPCGen streams the HPC-substitute workload.
func HPCGen(n, m int, seed int64) Generator { return workload.HPCGen(n, m, seed) }

// ProjectorGen streams the ProjecToR-substitute workload.
func ProjectorGen(n, m int, seed int64) Generator { return workload.ProjectorGen(n, m, seed) }

// FacebookGen streams the Facebook-substitute workload.
func FacebookGen(n, m int, seed int64) Generator { return workload.FacebookGen(n, m, seed) }

// ZipfGen streams the Zipf workload.
func ZipfGen(n, m int, s float64, seed int64) Generator { return workload.ZipfGen(n, m, s, seed) }

// HotspotGen streams the YCSB hotspot workload: a hotFrac fraction of the
// nodes receives a hotOpn fraction of the endpoint draws.
func HotspotGen(n, m int, hotFrac, hotOpn float64, seed int64) Generator {
	return workload.HotspotGen(n, m, hotFrac, hotOpn, seed)
}

// ExponentialGen streams endpoints decaying exponentially over permuted
// ranks (rate s over the whole node space).
func ExponentialGen(n, m int, s float64, seed int64) Generator {
	return workload.ExponentialGen(n, m, s, seed)
}

// LatestGen streams recency-driven endpoints (Zipf(s) stack distance over
// a move-to-front list): temporal locality over nodes with a drifting hot
// set.
func LatestGen(n, m int, s float64, seed int64) Generator {
	return workload.LatestGen(n, m, s, seed)
}

// SequentialGen streams the deterministic lexicographic sweep over all
// ordered pairs (seedless; the uniform worst case for demand-awareness).
func SequentialGen(n, m int) Generator { return workload.SequentialGen(n, m) }

// HistogramGen streams endpoints following an explicit node-popularity
// histogram (weights[i] is node i+1's relative popularity).
func HistogramGen(n, m int, weights []float64, seed int64) (Generator, error) {
	return workload.HistogramGen(n, m, weights, seed)
}

// PhasedGen chains (generator, duration) phases into one drifting stream:
// flash crowds, diurnal skew rotation and hot-set drift as data.
func PhasedGen(label string, phases []Phase) (Generator, error) {
	return workload.PhasedGen(label, phases)
}

// CollectTrace materializes a generator's stream into a Trace.
func CollectTrace(g Generator) (Trace, error) { return workload.Collect(g) }

// DemandFromTrace aggregates a trace into its demand matrix.
func DemandFromTrace(tr Trace) *Demand { return workload.DemandFromTrace(tr) }

// UniformDemand is the finite uniform workload (every pair once).
func UniformDemand(n int) *Demand { return workload.UniformDemand(n) }

// MeasureTrace computes locality/skew/sparsity statistics of a trace.
func MeasureTrace(tr Trace) Stats { return workload.Measure(tr) }

// EntropyBound evaluates the Theorem 13 cost bound for a trace.
func EntropyBound(tr Trace) float64 { return workload.EntropyBound(tr) }

// WriteTraceCSV serializes a trace (see cmd/ksantrace).
func WriteTraceCSV(w io.Writer, tr Trace) error { return workload.WriteCSV(w, tr) }

// ReadTraceCSV parses a trace written by WriteTraceCSV, materializing it.
func ReadTraceCSV(r io.Reader) (Trace, error) { return workload.ReadCSV(r) }

// OpenTraceCSV opens a trace file as a streaming Generator: rows are read
// per pass, line-numbered errors preserved, and the file is never loaded
// whole.
func OpenTraceCSV(path string) (Generator, error) { return workload.OpenCSV(path) }

// WriteTraceCSVFrom streams a generator to CSV without materializing it.
func WriteTraceCSVFrom(w io.Writer, g Generator) error { return workload.WriteCSVFrom(w, g) }

// MeasureStream computes trace statistics from a generator's stream in
// one pass, in memory proportional to the demand (distinct pairs), not
// the trace length.
func MeasureStream(g Generator) (Stats, error) { return workload.MeasureStream(g) }

// EntropyBoundStream evaluates the Theorem 13 cost bound from a
// generator's stream in one pass.
func EntropyBoundStream(g Generator) (float64, error) { return workload.EntropyBoundStream(g) }

// Engine is the streaming simulation engine: context cancellation,
// warmup/measurement windows, per-window cost time-series, routing
// percentiles, progress callbacks, and deterministic parallel grid
// execution. Construct with NewEngine.
type Engine = engine.Engine

// EngineOption configures an Engine (see WithWorkers, WithWarmup,
// WithWindow, WithProgress, WithValidation, WithLinkChurn).
type EngineOption = engine.Option

// EngineResult is the extended per-run result of the streaming engine; it
// embeds the classic Result and adds percentiles, warmup accounting,
// link churn, throughput and the per-window cost time-series.
type EngineResult = engine.Result

// WindowSample is one point of a run's per-window cost time-series.
type WindowSample = engine.WindowSample

// EngineProgress is a progress-callback event of the streaming engine.
type EngineProgress = engine.Progress

// NetworkSpec declares one network design of a declarative grid.
type NetworkSpec = engine.NetworkSpec

// TraceSpec declares one trace of a declarative grid.
type TraceSpec = engine.TraceSpec

// BatchServer is the optional Network extension for static topologies
// whose request slices the engine may evaluate in concurrent shards.
// Since the policy layer, carrying ServeBatch on a type is not alone a
// commitment: networks that also implement BatchGate (every PolicyNet
// does) are batch-capable only when Batchable reports true — assert
// both before calling ServeBatch, as the engine does.
type BatchServer = sim.BatchServer

// BatchGate refines BatchServer for networks whose batch capability is
// a runtime property: a PolicyNet is only safely shardable when its
// trigger can never fire (a frozen composition). ServeBatch on a
// non-batchable composition panics.
type BatchGate = sim.BatchGate

// NewEngine constructs a streaming simulation engine.
func NewEngine(opts ...EngineOption) *Engine { return engine.New(opts...) }

// WithWorkers bounds the engine's worker pool (default GOMAXPROCS).
func WithWorkers(n int) EngineOption { return engine.WithWorkers(n) }

// WithWarmup excludes the first n requests of each trace from measurement.
func WithWarmup(n int) EngineOption { return engine.WithWarmup(n) }

// WithWindow samples a cost time-series point every w measured requests.
func WithWindow(w int) EngineOption { return engine.WithWindow(w) }

// WithProgress installs a progress callback (calls are serialized).
func WithProgress(fn func(EngineProgress)) EngineOption { return engine.WithProgress(fn) }

// WithValidation toggles trace validation (default on).
func WithValidation(on bool) EngineOption { return engine.WithValidation(on) }

// WithLinkChurn enables physical link-churn accounting where available.
func WithLinkChurn(on bool) EngineOption { return engine.WithLinkChurn(on) }

// TraceSpecOf adapts a workload Trace to a grid TraceSpec.
func TraceSpecOf(tr Trace) TraceSpec {
	return TraceSpec{Name: tr.Name, N: tr.N, Reqs: tr.Reqs}
}

// TraceSpecFor adapts a streaming Generator to a grid TraceSpec: every
// cell serving it takes its own independent pass over the shared stream.
func TraceSpecFor(g Generator) TraceSpec { return engine.TraceSpecFor(g) }

// NetworkDef declares one network design by registered kind — the
// serializable counterpart of NetworkSpec. Builtin kinds: kary, centroid,
// splaynet, lazy, full, centroid-tree, uniform-opt; see the field docs on
// the underlying type for the parameters each reads.
type NetworkDef = spec.NetworkDef

// PolicyDef selects a trigger × adjuster composition for a NetworkDef's
// topology, making the policy plane file-addressable (triggers: always,
// never, every, first, alpha; adjusters: splay, semi-splay, rebuild-wb,
// rebuild-opt, none — availability depends on the kind).
type PolicyDef = spec.PolicyDef

// TraceDef declares one workload trace by registered kind — the
// serializable counterpart of TraceSpec. Builtin kinds: uniform, temporal,
// hpc, projector, facebook, zipf, hotspot, exponential, latest,
// sequential, histogram, csv, and phased (a list of sub-trace defs chained
// into one drifting stream).
type TraceDef = spec.TraceDef

// EngineDef is the serializable subset of the engine options (workers,
// warmup, window, link churn); zero values mean engine defaults.
type EngineDef = spec.EngineDef

// Experiment is a complete, JSON-round-trippable grid description:
// Networks × Traces evaluated under Engine options. Encode writes the
// canonical document; DecodeExperiment parses and validates one; Resolve
// turns it into RunGrid/Stream inputs, constructing each trace's
// streaming generator exactly once however many grid cells share it (each
// cell takes its own pass; no trace is materialized).
type Experiment = spec.Experiment

// Cell is one finished cell of a streamed grid (see Stream).
type Cell = engine.Cell

// RegisterNetwork adds a network kind to the experiment taxonomy, making
// custom designs addressable from experiment files. It panics on a
// duplicate kind (registration is an init-time affair, like sql.Register).
func RegisterNetwork(kind string, build func(NetworkDef) (NetworkSpec, error)) {
	spec.RegisterNetwork(kind, build)
}

// RegisterTrace adds a trace kind to the experiment taxonomy. The builder
// resolves a def to its streaming Generator and is called exactly once
// per experiment resolution — the generator is the shared factory whose
// passes the grid cells stream, so it must be deterministic (every pass
// identical). It panics on a duplicate kind.
func RegisterTrace(kind string, build func(TraceDef) (Generator, error)) {
	spec.RegisterTrace(kind, build)
}

// NetworkKinds returns the registered network kinds, sorted.
func NetworkKinds() []string { return spec.NetworkKinds() }

// TraceKinds returns the registered trace kinds, sorted.
func TraceKinds() []string { return spec.TraceKinds() }

// DecodeExperiment parses and validates a JSON experiment document (the
// format Encode writes; unknown fields are rejected).
func DecodeExperiment(r io.Reader) (*Experiment, error) { return spec.Decode(r) }

// Stream evaluates the cross product of networks × traces on a bounded
// worker pool and yields each cell as it finishes, in completion order,
// together with that cell's error (nil, a construction/validation
// failure, or ctx.Err() alongside the partial result). Cell results are
// deterministic across worker counts; only completion order is not.
// Breaking out of the loop stops the evaluation.
//
// On cancellation, cells that were never dispatched are not yielded at
// all: a stream that ends cleanly has covered the whole grid only if ctx
// is still alive, so — like bufio.Scanner.Err — check ctx.Err() after the
// loop (RunGrid does exactly that).
func Stream(ctx context.Context, networks []NetworkSpec, traces []TraceSpec, opts ...EngineOption) iter.Seq2[Cell, error] {
	return engine.New(opts...).Stream(ctx, networks, traces)
}

// FailedNetwork lets a custom NetworkSpec.Make (or a RegisterNetwork
// builder's Make) report a construction error despite Make's error-free
// signature: return FailedNetwork(err) and the grid yields err as that
// cell's error instead of a generic nil-network message.
func FailedNetwork(err error) Network { return engine.FailedNetwork(err) }

// RunGrid evaluates the cross product of networks × traces on a bounded
// worker pool, deterministically: out[i][j] is networks[i] on traces[j].
func RunGrid(ctx context.Context, networks []NetworkSpec, traces []TraceSpec, opts ...EngineOption) ([][]EngineResult, error) {
	return engine.New(opts...).RunGrid(ctx, networks, traces)
}

// Run serves a request sequence on a network and aggregates its cost. It
// is the historical entry point, now a thin wrapper over the streaming
// engine; results are bit-identical to the seed loop. Run panics with a
// descriptive error if the trace references endpoints outside 1..net.N()
// (the engine's Run returns the error instead — the documented trade for
// keeping this signature).
func Run(net Network, reqs []Request) Result {
	res, err := engine.New().Run(context.Background(), net, reqs)
	if err != nil {
		panic(err)
	}
	return res.Result
}

// RunAll serves the same requests on independently constructed networks
// concurrently and returns results in input order. Like Run it is a thin
// wrapper over the streaming engine's grid runner and panics on invalid
// traces.
func RunAll(makers []func() Network, reqs []Request) []Result {
	nets := make([]NetworkSpec, len(makers))
	for i, mk := range makers {
		mk := mk
		nets[i] = NetworkSpec{Make: func(int) sim.Network { return mk() }}
	}
	grid, err := engine.New().RunGrid(context.Background(), nets, []TraceSpec{{Reqs: reqs}})
	if err != nil {
		panic(err)
	}
	out := make([]Result, len(makers))
	for i := range grid {
		out[i] = grid[i][0].Result
	}
	return out
}
